// Command ccserve runs the HTTP connected-component labeling service.
//
// Usage:
//
//	ccserve [-addr :8377] [-workers 0] [-queue 0] [-threads 0]
//	        [-max-bytes 67108864] [-level 0.5]
//
// The server labels images POSTed to /v1/label (PBM/PGM/PNG body; the
// response format follows the Accept header: JSON component statistics,
// a PGM or PNG label map, or a CCL1 label stream) on a bounded worker
// pool, answering 429 when the queue is full. /healthz is a liveness
// probe and /metrics exposes request counters and cumulative per-phase
// timings in Prometheus text format. SIGINT or SIGTERM triggers a
// graceful shutdown.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.CCServe(os.Args[1:], os.Stdout, os.Stderr))
}
