// Command ccserve runs the HTTP connected-component labeling service.
//
// Usage:
//
//	ccserve [-addr :8377] [-workers 0] [-queue 0] [-threads 0]
//	        [-max-bytes 67108864] [-level 0.5] [-alg paremsp]
//	        [-jobs] [-job-ttl 15m] [-job-shards 0] [-job-max-bytes 0]
//	        [-log-level info] [-log-format text] [-debug-addr ""]
//
// The server labels images POSTed to /v1/label (PBM/PGM/PNG body; the
// response format follows the Accept header: JSON component statistics,
// a PGM or PNG label map, or a CCL1 label stream) on a bounded worker
// pool, answering 429 with a latency-derived Retry-After when the queue
// is full. ?mode=gray labels gray levels directly (exact-value
// components; ?mode=gray-delta&delta=N for tolerance-N components) and
// ?contours=true adds each component's boundary polyline to the JSON
// response. POST /v1/stats streams raw PBM/PGM through the out-of-core
// band labeler and returns component statistics. POST /v1/volume labels a
// stack of concatenated raw-PGM frames as one 26-connected 3-D volume.
// Every /v1/* error is a JSON envelope {"error":{"code","message"}}.
//
// POST /v1/jobs is the asynchronous job API (disable with -jobs=false):
// a single payload or a multipart/form-data batch is accepted with 202
// and labeled in the background; poll GET /v1/jobs/{id}, fetch
// GET /v1/jobs/{id}/result, and DELETE /v1/jobs/{id} when done. ?kind=
// selects the workload (labels, stats, contours, gray, volume). Identical
// submissions (same bytes, kind, mode, algorithm, connectivity, level and
// delta) deduplicate to the same job, and finished results are retained
// for -job-ttl before a background sweeper evicts them from the
// -job-shards sharded store; total retained result memory is capped at
// -job-max-bytes (default 512 MiB), evicting oldest results first beyond
// it.
//
// /healthz is a liveness probe and /metrics exposes request counters,
// latency and per-phase histograms, approximate latency percentiles and
// job-state gauges in Prometheus text format. SIGINT or SIGTERM triggers
// a graceful shutdown.
//
// Observability: every request is tagged with an X-Request-ID (an inbound
// header is honored and echoed, otherwise one is generated), /v1/label
// responses carry a Server-Timing header with per-phase durations, and
// structured logs — access lines, job lifecycle events, startup and
// shutdown progress — go to stderr at -log-level in -log-format (text or
// json). -debug-addr starts a second, operator-only listener serving
// /debug/pprof/ profiles and /debug/requests, a JSON dump of the most
// recent per-request phase traces (filter with ?id=<request id>, bound
// with ?n=). Keep -debug-addr on loopback or an internal network.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.CCServe(os.Args[1:], os.Stdout, os.Stderr))
}
