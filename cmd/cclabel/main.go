// Command cclabel labels the connected components of a binary image file.
//
// Usage:
//
//	cclabel [-alg paremsp] [-threads 0] [-conn 8] [-level 0.5]
//	        [-o labels.pgm] [-stats] [-contours] input.{pbm,pgm,png}
//
// The input format is detected from the file extension (.pbm/.pgm via the
// Netpbm decoder, .png via the PNG decoder); grayscale input is binarized at
// -level (im2bw semantics). With -o, the final labels are written as a PGM
// or PNG (by extension); -stats prints per-component statistics and
// -contours prints boundary perimeters.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.CCLabel(os.Args[1:], os.Stdout, os.Stderr))
}
