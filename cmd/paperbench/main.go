// Command paperbench regenerates the tables and figures of the paper's
// evaluation section (Tables II-IV, Figures 3-5) plus a weak-scaling
// experiment, on synthetic surrogates of the paper's datasets, and is the
// engine behind the repository's performance trajectory: a declarative
// experiment grid, a scaling-curve analyzer, and a gating regression diff.
//
// Usage:
//
//	paperbench [-exp all|table2|table3|table4|fig3|fig4|fig5|weak]
//	           [-scale 0.02] [-repeats 3] [-warmup 1]
//	paperbench -json report.json [-scale 0.05]
//	paperbench -grid experiments.json [-tag pr7] [-json BENCH_pr7.json]
//	paperbench [-grid ...] -diff BENCH_seed.json [-regress 0.25]
//	           [-regress-policy perf_policy.json]
//	paperbench -analyze BENCH_pr7.json [-baseline BENCH_seed.json] [-out dir]
//
// -json skips the tables and instead writes a machine-readable benchmark
// report (per-algorithm ns/op, allocs/op, bytes/op per dataset class, raw
// per-repeat samples, and environment metadata: go version, GOMAXPROCS,
// CPU count, git revision). BENCH_seed.json at the repository root is such
// a report at -scale 0.05; BENCH_pr7.json is the current grid baseline.
//
// -grid runs the experiment grid declared in a config file (see
// experiments.json: algorithms x dataset classes x GOMAXPROCS values x
// repeats). Sequential algorithms collapse the thread axis; parallel
// algorithms get one row per pinned GOMAXPROCS value plus an unpinned
// (library-default) row comparable with flat reports. Explicit -scale,
// -repeats and -warmup flags override the config, so CI can shrink the
// checked-in grid to a smoke run without a second config file.
//
// -diff runs the benchmark (flat or -grid) and compares ns/op per
// configuration against a baseline report, exiting 3 on regressions
// beyond tolerance. -regress sets the default tolerance; -regress-policy
// points at a JSON policy with per-benchmark overrides and an allowlist
// for accepted regressions. Configurations present on only one side are
// reported as added/removed, never as errors.
//
// -analyze digests a report offline: per-configuration medians with 95%
// confidence intervals, speedup-vs-threads curves (against both the
// 1-thread self point and the best sequential baseline), and parallel
// efficiency. -baseline adds a trajectory section diffing two reports;
// -out writes analysis.md, configs.csv and scaling.csv instead of
// printing markdown to stdout.
//
// scale shrinks the pixel counts linearly: the paper's 465.2 MB NLCD image
// becomes 465.2*scale MB. At -scale 1 the sweep needs several GB of memory
// and many minutes, matching the paper's Cray XE6 runs in size.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.PaperBench(os.Args[1:], os.Stdout, os.Stderr))
}
