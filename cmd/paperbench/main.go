// Command paperbench regenerates the tables and figures of the paper's
// evaluation section (Tables II-IV, Figures 3-5) plus a weak-scaling
// experiment, on synthetic surrogates of the paper's datasets.
//
// Usage:
//
//	paperbench [-exp all|table2|table3|table4|fig3|fig4|fig5|weak]
//	           [-scale 0.02] [-repeats 3] [-warmup 1]
//	paperbench -json report.json [-scale 0.05]
//
// -json skips the tables and instead writes a machine-readable benchmark
// report (per-algorithm ns/op, allocs/op, bytes/op per dataset class);
// BENCH_seed.json at the repository root is such a report at -scale 0.05,
// kept as the baseline for perf-trajectory diffs.
//
// scale shrinks the pixel counts linearly: the paper's 465.2 MB NLCD image
// becomes 465.2*scale MB. At -scale 1 the sweep needs several GB of memory
// and many minutes, matching the paper's Cray XE6 runs in size.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.PaperBench(os.Args[1:], os.Stdout, os.Stderr))
}
