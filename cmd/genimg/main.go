// Command genimg emits synthetic benchmark images (the paper-dataset
// surrogates of internal/dataset) as PBM files.
//
// Usage:
//
//	genimg -kind landcover -w 2048 -h 2048 -seed 1 -o image.pbm
//
// Kinds: noise, checker, stripes, blobs, serpentine, rings, landcover,
// aerial, texture, text, misc. Kind-specific knobs have sensible defaults;
// see -help.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.GenImg(os.Args[1:], os.Stdout, os.Stderr))
}
