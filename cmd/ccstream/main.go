// Command ccstream labels a raw PBM (P4) or raw PGM (P5) image with the
// out-of-core band labeler: only one fixed-height band of pixels stays
// resident (independent of image height), per-component statistics
// accumulate during the pass, provisional labels spill to a scratch file,
// and the result is written as a CCL1 label stream (see internal/stream for
// the format).
//
// Usage:
//
//	ccstream -o labels.ccl [-band rows] [-stats] huge.pbm
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.CCStream(os.Args[1:], os.Stdout, os.Stderr))
}
