// Command ccstream labels a raw PBM (P4) image with the out-of-core
// streaming labeler: only O(width) pixel rows stay resident, provisional
// labels spill to a scratch file, and the result is written as a CCL1 label
// stream (see internal/stream for the format).
//
// Usage:
//
//	ccstream -o labels.ccl huge.pbm
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.CCStream(os.Args[1:], os.Stdout, os.Stderr))
}
