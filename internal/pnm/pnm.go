// Package pnm reads and writes the Netpbm formats the experiment pipeline
// uses for image exchange: PBM bitmaps (P1 plain / P4 raw) map directly onto
// binary images, PGM graymaps (P2 plain / P5 raw) are binarized with the
// im2bw(0.5) threshold the paper applies to its datasets. PNG import (via
// the standard library) covers the common interchange case.
//
// Convention note: in PBM, 1 is black. Following the paper's convention that
// object pixels are 1 and the binarized examples show dark objects on light
// background, PBM bit 1 decodes to foreground 1.
package pnm

import (
	"bufio"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math/bits"
	"strconv"

	"repro/internal/binimg"
)

// maxDimension guards against absurd headers in untrusted files.
const maxDimension = 1 << 20

// Decode reads a PBM (P1/P4) or PGM (P2/P5) stream into a binary image.
// Grayscale pixels are binarized with threshold level (im2bw semantics:
// luminance fraction strictly greater than level becomes foreground).
func Decode(r io.Reader, level float64) (*binimg.Image, error) {
	im := &binimg.Image{}
	if err := DecodeInto(r, level, im); err != nil {
		return nil, err
	}
	return im, nil
}

// DecodeInto is Decode into a caller-provided image, reshaped with Reset so
// its pixel buffer is reused when large enough. Long-lived servers decode
// request bodies into pooled images this way.
func DecodeInto(r io.Reader, level float64, dst *binimg.Image) error {
	br := bufio.NewReader(r)
	magic, err := readToken(br)
	if err != nil {
		return fmt.Errorf("pnm: reading magic: %w", err)
	}
	switch magic {
	case "P1", "P4":
		return decodePBM(br, magic == "P4", dst)
	case "P2", "P5":
		return decodePGM(br, magic == "P5", level, dst)
	default:
		return fmt.Errorf("pnm: unsupported magic %q (want P1, P2, P4 or P5)", magic)
	}
}

func decodePBM(br *bufio.Reader, raw bool, im *binimg.Image) error {
	w, h, err := readDims(br)
	if err != nil {
		return err
	}
	im.Reset(w, h)
	if raw {
		// readToken consumed the single post-header whitespace byte, so the
		// packed rows start immediately: each row padded to a whole number
		// of bytes, MSB first.
		stride := (w + 7) / 8
		rowBuf := make([]byte, stride)
		for y := 0; y < h; y++ {
			if _, err := io.ReadFull(br, rowBuf); err != nil {
				return fmt.Errorf("pnm: P4 row %d: %w", y, err)
			}
			for x := 0; x < w; x++ {
				if rowBuf[x/8]&(0x80>>(x%8)) != 0 {
					im.Pix[y*w+x] = 1
				}
			}
		}
		return nil
	}
	for i := 0; i < w*h; i++ {
		tok, err := readToken(br)
		if err != nil {
			return fmt.Errorf("pnm: P1 pixel %d: %w", i, err)
		}
		switch tok {
		case "0":
			// background
		case "1":
			im.Pix[i] = 1
		default:
			return fmt.Errorf("pnm: P1 pixel %d: invalid token %q", i, tok)
		}
	}
	return nil
}

// DecodePBMBitmapInto decodes a raw PBM (P4) stream directly into a packed
// 1-bit-per-pixel bitmap, reshaped with Reset. P4 rows are already bit-packed
// (MSB first within each byte), so each row is copied packed-to-packed — one
// Reverse8 per byte reorders into the bitmap's LSB-first words, and the
// row's tail padding bits are masked to preserve the Bitmap invariant —
// instead of being unpacked to a byte per pixel. This is the fast ingest path
// for the bit-packed labelers (BREMSP/PBREMSP): the byte raster is never
// materialized.
func DecodePBMBitmapInto(r io.Reader, dst *binimg.Bitmap) error {
	br := bufio.NewReader(r)
	magic, err := readToken(br)
	if err != nil {
		return fmt.Errorf("pnm: reading magic: %w", err)
	}
	if magic != "P4" {
		return fmt.Errorf("pnm: bitmap decode wants raw PBM magic P4, got %q", magic)
	}
	w, h, err := readDims(br)
	if err != nil {
		return err
	}
	dst.Reset(w, h)
	stride := (w + 7) / 8
	if stride == 0 {
		return nil // zero-width image: nothing follows the header
	}
	rowBuf := make([]byte, stride)
	tail := dst.TailMask()
	for y := 0; y < h; y++ {
		if _, err := io.ReadFull(br, rowBuf); err != nil {
			return fmt.Errorf("pnm: P4 row %d: %w", y, err)
		}
		packP4Row(dst.Words[y*dst.WordsPerRow:(y+1)*dst.WordsPerRow], rowBuf, tail)
	}
	return nil
}

// packP4Row reorders one raw-PBM row (MSB-first within each byte) into a
// row of zeroed LSB-first bitmap words — one Reverse8 per byte — and masks
// the row's padding bits with tail to preserve the Bitmap tail-bits-zero
// invariant. Shared by the whole-image and band decoders.
func packP4Row(words []uint64, rowBuf []byte, tail uint64) {
	for i, bb := range rowBuf {
		if bb != 0 {
			words[i>>3] |= uint64(bits.Reverse8(bb)) << (uint(i&7) * 8)
		}
	}
	if len(words) > 0 {
		words[len(words)-1] &= tail
	}
}

func decodePGM(br *bufio.Reader, raw bool, level float64, im *binimg.Image) error {
	w, h, err := readDims(br)
	if err != nil {
		return err
	}
	maxVal, err := readMaxVal(br)
	if err != nil {
		return err
	}
	im.Reset(w, h)
	thresh := level * float64(maxVal)
	if raw {
		bytesPer := 1
		if maxVal > 255 {
			bytesPer = 2
		}
		buf := make([]byte, w*bytesPer)
		for y := 0; y < h; y++ {
			if _, err := io.ReadFull(br, buf); err != nil {
				return fmt.Errorf("pnm: P5 row %d: %w", y, err)
			}
			for x := 0; x < w; x++ {
				var v int
				if bytesPer == 2 {
					v = int(buf[2*x])<<8 | int(buf[2*x+1])
				} else {
					v = int(buf[x])
				}
				if float64(v) > thresh {
					im.Pix[y*w+x] = 1
				}
			}
		}
		return nil
	}
	for i := 0; i < w*h; i++ {
		tok, err := readToken(br)
		if err != nil {
			return fmt.Errorf("pnm: P2 pixel %d: %w", i, err)
		}
		v, err := strconv.Atoi(tok)
		if err != nil || v < 0 || v > maxVal {
			return fmt.Errorf("pnm: P2 pixel %d: invalid value %q", i, tok)
		}
		if float64(v) > thresh {
			im.Pix[i] = 1
		}
	}
	return nil
}

// readDims reads and validates the width and height tokens.
func readDims(br *bufio.Reader) (int, int, error) {
	wTok, err := readToken(br)
	if err != nil {
		return 0, 0, fmt.Errorf("pnm: reading width: %w", err)
	}
	hTok, err := readToken(br)
	if err != nil {
		return 0, 0, fmt.Errorf("pnm: reading height: %w", err)
	}
	w, err := strconv.Atoi(wTok)
	if err != nil || w < 0 || w > maxDimension {
		return 0, 0, fmt.Errorf("pnm: invalid width %q", wTok)
	}
	h, err := strconv.Atoi(hTok)
	if err != nil || h < 0 || h > maxDimension {
		return 0, 0, fmt.Errorf("pnm: invalid height %q", hTok)
	}
	return w, h, nil
}

// readToken returns the next whitespace-delimited token, skipping '#'
// comments (which run to end of line), per the Netpbm grammar.
func readToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case b == '#' && len(tok) == 0:
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

// EncodePBM writes im as a PBM bitmap: raw packed P4 when raw is true,
// plain-text P1 otherwise.
func EncodePBM(w io.Writer, im *binimg.Image, raw bool) error {
	bw := bufio.NewWriter(w)
	if raw {
		fmt.Fprintf(bw, "P4\n%d %d\n", im.Width, im.Height)
		stride := (im.Width + 7) / 8
		rowBuf := make([]byte, stride)
		for y := 0; y < im.Height; y++ {
			for i := range rowBuf {
				rowBuf[i] = 0
			}
			for x := 0; x < im.Width; x++ {
				if im.Pix[y*im.Width+x] != 0 {
					rowBuf[x/8] |= 0x80 >> (x % 8)
				}
			}
			if _, err := bw.Write(rowBuf); err != nil {
				return fmt.Errorf("pnm: writing P4 row %d: %w", y, err)
			}
		}
		return bw.Flush()
	}
	fmt.Fprintf(bw, "P1\n%d %d\n", im.Width, im.Height)
	for y := 0; y < im.Height; y++ {
		for x := 0; x < im.Width; x++ {
			if x > 0 {
				bw.WriteByte(' ')
			}
			bw.WriteByte('0' + im.Pix[y*im.Width+x])
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// EncodePGM writes a label map as a raw P5 graymap for quick visual
// inspection: background is 0 and labels cycle through 64..255, so adjacent
// components are usually distinguishable.
func EncodePGM(w io.Writer, lm *binimg.LabelMap) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P5\n%d %d\n255\n", lm.Width, lm.Height)
	for _, v := range lm.L {
		if v == 0 {
			bw.WriteByte(0)
		} else {
			bw.WriteByte(byte(64 + (v-1)%192))
		}
	}
	return bw.Flush()
}

// DecodePNG reads a PNG stream and binarizes it with the im2bw(level)
// semantics the paper uses: the pixel's luminance (Rec. 601, as computed by
// the standard library's grayscale conversion) strictly greater than
// level*65535 becomes foreground.
func DecodePNG(r io.Reader, level float64) (*binimg.Image, error) {
	im := &binimg.Image{}
	if err := DecodePNGInto(r, level, im); err != nil {
		return nil, err
	}
	return im, nil
}

// DecodePNGInto is DecodePNG into a caller-provided image, reshaped with
// Reset so its pixel buffer is reused when large enough. (The intermediate
// image.Image the standard decoder builds is still allocated per call.)
func DecodePNGInto(r io.Reader, level float64, dst *binimg.Image) error {
	src, err := png.Decode(r)
	if err != nil {
		return fmt.Errorf("pnm: decoding png: %w", err)
	}
	b := src.Bounds()
	dst.Reset(b.Dx(), b.Dy())
	thresh := level * 65535
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			g := color.Gray16Model.Convert(src.At(x, y)).(color.Gray16)
			if float64(g.Y) > thresh {
				dst.Pix[(y-b.Min.Y)*dst.Width+(x-b.Min.X)] = 1
			}
		}
	}
	return nil
}

// EncodePNG writes a label map as a grayscale PNG (same palette rule as
// EncodePGM).
func EncodePNG(w io.Writer, lm *binimg.LabelMap) error {
	img := image.NewGray(image.Rect(0, 0, lm.Width, lm.Height))
	for i, v := range lm.L {
		if v != 0 {
			img.Pix[i] = byte(64 + (v-1)%192)
		}
	}
	return png.Encode(w, img)
}
