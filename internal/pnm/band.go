package pnm

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"

	"repro/internal/binimg"
)

// BandReader decodes a raw PBM (P4) or raw PGM (P5) stream incrementally, a
// fixed number of rows at a time, into a bit-packed bitmap. It is the ingest
// side of the out-of-core band labeler (internal/band): only one band of
// pixels is ever resident, so the image height does not bound memory.
//
// P4 rows are already bit-packed and are reordered packed-to-packed; P5 rows
// are binarized with the im2bw threshold the whole-image decoders use
// (luminance fraction strictly greater than level becomes foreground).
type BandReader struct {
	br     *bufio.Reader
	width  int
	height int
	raw4   bool // true = P4, false = P5
	maxVal int  // P5 only
	level  float64
	y      int // rows already delivered
	rowBuf []byte
}

// NewBandReader reads the PNM header from r and prepares incremental row
// decoding. Only the raw formats are supported: band decoding needs a known
// bytes-per-row layout, which the plain (ASCII) formats do not have.
func NewBandReader(r io.Reader, level float64) (*BandReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := readToken(br)
	if err != nil {
		return nil, fmt.Errorf("pnm: reading magic: %w", err)
	}
	b := &BandReader{br: br, level: level}
	switch magic {
	case "P4":
		b.raw4 = true
	case "P5":
	default:
		return nil, fmt.Errorf("pnm: band reader wants raw PBM (P4) or raw PGM (P5), got %q", magic)
	}
	b.width, b.height, err = readDims(br)
	if err != nil {
		return nil, err
	}
	if b.raw4 {
		b.rowBuf = make([]byte, (b.width+7)/8)
		return b, nil
	}
	maxTok, err := readToken(br)
	if err != nil {
		return nil, fmt.Errorf("pnm: reading maxval: %w", err)
	}
	b.maxVal, err = strconv.Atoi(maxTok)
	if err != nil || b.maxVal < 1 || b.maxVal > 65535 {
		return nil, fmt.Errorf("pnm: invalid maxval %q", maxTok)
	}
	bytesPer := 1
	if b.maxVal > 255 {
		bytesPer = 2
	}
	b.rowBuf = make([]byte, b.width*bytesPer)
	return b, nil
}

// Width returns the image width from the header.
func (b *BandReader) Width() int { return b.width }

// Height returns the image height from the header.
func (b *BandReader) Height() int { return b.height }

// ReadBand decodes the next band of up to maxRows rows into dst (reshaped
// with Reset, so one bitmap can be reused for every band) and returns the
// number of rows delivered. After the final row it returns (0, io.EOF).
func (b *BandReader) ReadBand(dst *binimg.Bitmap, maxRows int) (int, error) {
	if maxRows <= 0 {
		return 0, fmt.Errorf("pnm: ReadBand maxRows %d, want >= 1", maxRows)
	}
	rows := b.height - b.y
	if rows == 0 {
		return 0, io.EOF
	}
	if rows > maxRows {
		rows = maxRows
	}
	dst.Reset(b.width, rows)
	tail := dst.TailMask()
	thresh := b.level * float64(b.maxVal)
	for i := 0; i < rows; i++ {
		if _, err := io.ReadFull(b.br, b.rowBuf); err != nil {
			return 0, fmt.Errorf("pnm: %s row %d: %w", b.format(), b.y+i, err)
		}
		words := dst.Row(i)
		if b.raw4 {
			packP4Row(words, b.rowBuf, tail)
			continue
		}
		bytesPer := len(b.rowBuf) / max(b.width, 1)
		for x := 0; x < b.width; x++ {
			var v int
			if bytesPer == 2 {
				v = int(b.rowBuf[2*x])<<8 | int(b.rowBuf[2*x+1])
			} else {
				v = int(b.rowBuf[x])
			}
			if float64(v) > thresh {
				words[x>>6] |= 1 << (uint(x) & 63)
			}
		}
	}
	b.y += rows
	return rows, nil
}

func (b *BandReader) format() string {
	if b.raw4 {
		return "P4"
	}
	return "P5"
}

// NewBandReaderBytes is NewBandReader over an in-memory encoding; tests and
// benchmarks stream generated images this way.
func NewBandReaderBytes(data []byte, level float64) (*BandReader, error) {
	return NewBandReader(bytes.NewReader(data), level)
}
