// Gray-preserving and volumetric decoders for the extension workloads: the
// gray-level labeler consumes PGM/PNG rasters without binarization, and the
// 3D labeler consumes a stack of concatenated raw-PGM frames (multi-frame
// P5) as z-slices.

package pnm

import (
	"bufio"
	"fmt"
	"image/color"
	"image/png"
	"io"
	"strconv"

	"repro/internal/grayccl"
	"repro/internal/vol3d"
)

// DecodeGrayInto reads a PGM (P2 plain / P5 raw) stream into a caller-
// provided gray image (reshaped with Reset), preserving gray values instead
// of binarizing. Samples are scaled to the full 8-bit range: v*255/maxval,
// so 16-bit graymaps lose precision but keep their relative ordering.
func DecodeGrayInto(r io.Reader, dst *grayccl.Image) error {
	br := bufio.NewReader(r)
	magic, err := readToken(br)
	if err != nil {
		return fmt.Errorf("pnm: reading magic: %w", err)
	}
	if magic != "P2" && magic != "P5" {
		return fmt.Errorf("pnm: gray decode wants PGM magic P2 or P5, got %q", magic)
	}
	w, h, err := readDims(br)
	if err != nil {
		return err
	}
	maxVal, err := readMaxVal(br)
	if err != nil {
		return err
	}
	dst.Reset(w, h)
	if magic == "P5" {
		bytesPer := 1
		if maxVal > 255 {
			bytesPer = 2
		}
		buf := make([]byte, w*bytesPer)
		for y := 0; y < h; y++ {
			if _, err := io.ReadFull(br, buf); err != nil {
				return fmt.Errorf("pnm: P5 row %d: %w", y, err)
			}
			for x := 0; x < w; x++ {
				var v int
				if bytesPer == 2 {
					v = int(buf[2*x])<<8 | int(buf[2*x+1])
				} else {
					v = int(buf[x])
				}
				dst.Pix[y*w+x] = uint8(v * 255 / maxVal)
			}
		}
		return nil
	}
	for i := 0; i < w*h; i++ {
		tok, err := readToken(br)
		if err != nil {
			return fmt.Errorf("pnm: P2 pixel %d: %w", i, err)
		}
		v, err := strconv.Atoi(tok)
		if err != nil || v < 0 || v > maxVal {
			return fmt.Errorf("pnm: P2 pixel %d: invalid value %q", i, tok)
		}
		dst.Pix[i] = uint8(v * 255 / maxVal)
	}
	return nil
}

// DecodePNGGrayInto reads a PNG stream into a caller-provided gray image
// (reshaped with Reset), taking each pixel's Rec. 601 luminance scaled to
// 8 bits — the gray analogue of DecodePNGInto.
func DecodePNGGrayInto(r io.Reader, dst *grayccl.Image) error {
	src, err := png.Decode(r)
	if err != nil {
		return fmt.Errorf("pnm: decoding png: %w", err)
	}
	b := src.Bounds()
	dst.Reset(b.Dx(), b.Dy())
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			g := color.Gray16Model.Convert(src.At(x, y)).(color.Gray16)
			dst.Pix[(y-b.Min.Y)*dst.Width+(x-b.Min.X)] = uint8(g.Y >> 8)
		}
	}
	return nil
}

// DecodeVolumeInto reads a multi-frame raw-PGM stream — concatenated P5
// graymaps, one per z-slice, all with identical dimensions — into a caller-
// provided volume (buffer reused when large enough). Each frame is binarized
// with the same im2bw semantics as DecodeInto: luminance fraction strictly
// greater than level becomes an object voxel. The frame count becomes the
// volume's depth; at least one frame is required.
func DecodeVolumeInto(r io.Reader, level float64, dst *vol3d.Volume) error {
	br := bufio.NewReader(r)
	w, h, d := 0, 0, 0
	vox := dst.Vox[:0]
	var buf []byte
	for {
		magic, err := readToken(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("pnm: frame %d: reading magic: %w", d, err)
		}
		if magic != "P5" {
			return fmt.Errorf("pnm: volume frames must be raw PGM (P5), frame %d has magic %q", d, magic)
		}
		fw, fh, err := readDims(br)
		if err != nil {
			return fmt.Errorf("pnm: frame %d: %w", d, err)
		}
		maxVal, err := readMaxVal(br)
		if err != nil {
			return fmt.Errorf("pnm: frame %d: %w", d, err)
		}
		if d == 0 {
			w, h = fw, fh
		} else if fw != w || fh != h {
			return fmt.Errorf("pnm: frame %d is %dx%d, want %dx%d (all z-slices must share dimensions)", d, fw, fh, w, h)
		}
		bytesPer := 1
		if maxVal > 255 {
			bytesPer = 2
		}
		if cap(buf) < w*bytesPer {
			buf = make([]byte, w*bytesPer)
		}
		buf = buf[:w*bytesPer]
		thresh := level * float64(maxVal)
		for y := 0; y < h; y++ {
			if _, err := io.ReadFull(br, buf); err != nil {
				return fmt.Errorf("pnm: frame %d row %d: %w", d, y, err)
			}
			for x := 0; x < w; x++ {
				var v int
				if bytesPer == 2 {
					v = int(buf[2*x])<<8 | int(buf[2*x+1])
				} else {
					v = int(buf[x])
				}
				if float64(v) > thresh {
					vox = append(vox, 1)
				} else {
					vox = append(vox, 0)
				}
			}
		}
		d++
	}
	if d == 0 {
		return fmt.Errorf("pnm: volume stream holds no P5 frames")
	}
	dst.W, dst.H, dst.D, dst.Vox = w, h, d, vox
	return nil
}

// readMaxVal reads and validates the PGM maxval token.
func readMaxVal(br *bufio.Reader) (int, error) {
	maxTok, err := readToken(br)
	if err != nil {
		return 0, fmt.Errorf("pnm: reading maxval: %w", err)
	}
	maxVal, err := strconv.Atoi(maxTok)
	if err != nil || maxVal < 1 || maxVal > 65535 {
		return 0, fmt.Errorf("pnm: invalid maxval %q", maxTok)
	}
	return maxVal, nil
}

// EncodeGrayPGM writes a gray image as a raw P5 graymap — the inverse of
// DecodeGrayInto, used by tests and tools to build gray request bodies.
func EncodeGrayPGM(w io.Writer, im *grayccl.Image) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P5\n%d %d\n255\n", im.Width, im.Height)
	if _, err := bw.Write(im.Pix); err != nil {
		return err
	}
	return bw.Flush()
}
