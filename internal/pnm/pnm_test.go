package pnm_test

import (
	"bytes"
	"image"
	"image/color"
	"image/png"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/binimg"
	"repro/internal/dataset"
	"repro/internal/pnm"
)

func TestDecodeP1(t *testing.T) {
	src := "P1\n# a comment\n3 2\n1 0 1\n0 1 0\n"
	im, err := pnm.Decode(strings.NewReader(src), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := binimg.MustParse("#.#\n.#.")
	if !im.Equal(want) {
		t.Fatalf("decoded:\n%s\nwant:\n%s", im, want)
	}
}

func TestDecodeP1CompactDigits(t *testing.T) {
	// P1 allows unseparated digits? The strict grammar requires whitespace;
	// our reader requires separated tokens and must reject glued digits.
	src := "P1\n2 1\n10\n"
	if _, err := pnm.Decode(strings.NewReader(src), 0.5); err == nil {
		t.Fatal("glued P1 digits accepted")
	}
}

func TestDecodeP2Threshold(t *testing.T) {
	// maxval 255, level 0.5 -> threshold 127.5: 127 bg, 128 fg.
	src := "P2\n4 1\n255\n0 127 128 255\n"
	im, err := pnm.Decode(strings.NewReader(src), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{0, 0, 1, 1}
	for i, wv := range want {
		if im.Pix[i] != wv {
			t.Fatalf("pixel %d = %d, want %d", i, im.Pix[i], wv)
		}
	}
}

func TestDecodeP5SixteenBit(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("P5\n2 1\n65535\n")
	buf.Write([]byte{0x00, 0x00, 0xFF, 0xFF}) // 0 and 65535
	im, err := pnm.Decode(&buf, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if im.Pix[0] != 0 || im.Pix[1] != 1 {
		t.Fatalf("16-bit decode wrong: %v", im.Pix)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"bad magic":       "P7\n1 1\n0\n",
		"missing dims":    "P1\n3\n",
		"negative width":  "P1\n-1 2\n",
		"huge width":      "P1\n99999999 2\n",
		"bad pixel":       "P1\n1 1\n7\n",
		"bad maxval":      "P2\n1 1\n0\n5\n",
		"truncated P4":    "P4\n16 2\n\x00",
		"truncated P5":    "P5\n4 4\n255\nxy",
		"pgm value range": "P2\n1 1\n255\n300\n",
	}
	for name, src := range cases {
		if _, err := pnm.Decode(strings.NewReader(src), 0.5); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPBMRoundTripBothForms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 1+rng.Intn(40), 1+rng.Intn(40)
		im := binimg.New(w, h)
		for i := range im.Pix {
			im.Pix[i] = uint8(rng.Intn(2))
		}
		for _, raw := range []bool{false, true} {
			var buf bytes.Buffer
			if err := pnm.EncodePBM(&buf, im, raw); err != nil {
				return false
			}
			back, err := pnm.Decode(&buf, 0.5)
			if err != nil || !back.Equal(im) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestP4PacksRowPadding(t *testing.T) {
	// Width 9 needs 2 bytes per row; padding bits must be ignored.
	im := binimg.New(9, 2)
	im.Set(8, 0, 1)
	im.Set(0, 1, 1)
	var buf bytes.Buffer
	if err := pnm.EncodePBM(&buf, im, true); err != nil {
		t.Fatal(err)
	}
	// Header "P4\n9 2\n" + 4 data bytes.
	wantLen := len("P4\n9 2\n") + 4
	if buf.Len() != wantLen {
		t.Fatalf("P4 size = %d, want %d", buf.Len(), wantLen)
	}
	back, err := pnm.Decode(&buf, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(im) {
		t.Fatalf("round trip:\n%s\nwant:\n%s", back, im)
	}
}

func TestEncodePGMLabelPalette(t *testing.T) {
	lm := binimg.NewLabelMap(3, 1)
	lm.Set(1, 0, 1)
	lm.Set(2, 0, 500)
	var buf bytes.Buffer
	if err := pnm.EncodePGM(&buf, lm); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	pixels := data[len(data)-3:]
	if pixels[0] != 0 {
		t.Fatal("background must encode to 0")
	}
	if pixels[1] < 64 || pixels[2] < 64 {
		t.Fatal("labels must encode to >= 64")
	}
}

func TestDecodePNG(t *testing.T) {
	src := image.NewGray(image.Rect(0, 0, 3, 1))
	src.SetGray(0, 0, color.Gray{Y: 0})
	src.SetGray(1, 0, color.Gray{Y: 100})
	src.SetGray(2, 0, color.Gray{Y: 200})
	var buf bytes.Buffer
	if err := png.Encode(&buf, src); err != nil {
		t.Fatal(err)
	}
	im, err := pnm.DecodePNG(&buf, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if im.Pix[0] != 0 || im.Pix[1] != 0 || im.Pix[2] != 1 {
		t.Fatalf("png binarization wrong: %v", im.Pix)
	}
}

func TestDecodePNGColorUsesLuminance(t *testing.T) {
	src := image.NewRGBA(image.Rect(0, 0, 2, 1))
	src.Set(0, 0, color.RGBA{R: 255, A: 255})                 // dark-ish red
	src.Set(1, 0, color.RGBA{R: 255, G: 255, B: 255, A: 255}) // white
	var buf bytes.Buffer
	if err := png.Encode(&buf, src); err != nil {
		t.Fatal(err)
	}
	im, err := pnm.DecodePNG(&buf, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Rec. 601 luma of pure red is ~0.30 -> background at level 0.5.
	if im.Pix[0] != 0 || im.Pix[1] != 1 {
		t.Fatalf("luminance binarization wrong: %v", im.Pix)
	}
}

func TestEncodePNGRoundTripMask(t *testing.T) {
	img := dataset.Blobs(32, 24, 5, 2, 4, 7)
	lm := binimg.NewLabelMap(32, 24)
	for i, v := range img.Pix {
		if v != 0 {
			lm.L[i] = 1
		}
	}
	var buf bytes.Buffer
	if err := pnm.EncodePNG(&buf, lm); err != nil {
		t.Fatal(err)
	}
	back, err := pnm.DecodePNG(&buf, 0.1) // any label byte (>=64) exceeds 0.1*65535
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(img) {
		t.Fatal("png label mask round trip failed")
	}
}

func TestDecodeBadPNG(t *testing.T) {
	if _, err := pnm.DecodePNG(strings.NewReader("not a png"), 0.5); err == nil {
		t.Fatal("garbage accepted as png")
	}
}

// TestDecodePBMBitmapInto checks the packed P4 fast path against the
// byte-unpacking decoder across word-boundary widths, and that the full
// round trip (encode P4 -> bitmap decode -> encode P4) is byte-identical
// to the byte-raster path.
func TestDecodePBMBitmapInto(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bm := &binimg.Bitmap{} // reused across sizes: exercises Reset pooling
	for _, w := range []int{1, 7, 8, 9, 63, 64, 65, 100, 128, 129} {
		for _, h := range []int{1, 3, 17} {
			img := binimg.New(w, h)
			for i := range img.Pix {
				if rng.Intn(2) == 1 {
					img.Pix[i] = 1
				}
			}
			var buf bytes.Buffer
			if err := pnm.EncodePBM(&buf, img, true); err != nil {
				t.Fatal(err)
			}
			raw := buf.Bytes()

			if err := pnm.DecodePBMBitmapInto(bytes.NewReader(raw), bm); err != nil {
				t.Fatalf("%dx%d: %v", w, h, err)
			}
			if got := bm.ToImage(); !got.Equal(img) {
				t.Fatalf("%dx%d: bitmap decode disagrees with source\ngot:\n%s\nwant:\n%s", w, h, got, img)
			}
			tail := bm.TailMask()
			for y := 0; y < h; y++ {
				row := bm.Row(y)
				if row[len(row)-1]&^tail != 0 {
					t.Fatalf("%dx%d row %d: padding bits survived decode", w, h, y)
				}
			}

			var back bytes.Buffer
			if err := pnm.EncodePBM(&back, bm.ToImage(), true); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back.Bytes(), raw) {
				t.Fatalf("%dx%d: P4 round trip through bitmap not byte-identical", w, h)
			}
		}
	}
}

func TestDecodePBMBitmapIntoRejectsNonP4(t *testing.T) {
	for _, src := range []string{"P1\n2 2\n1 0\n0 1\n", "P5\n2 2\n255\nabcd", "Px\n"} {
		if err := pnm.DecodePBMBitmapInto(strings.NewReader(src), &binimg.Bitmap{}); err == nil {
			t.Fatalf("accepted %q", src[:2])
		}
	}
}

func TestDecodePBMBitmapIntoTruncated(t *testing.T) {
	if err := pnm.DecodePBMBitmapInto(strings.NewReader("P4\n16 4\n\x01\x02"), &binimg.Bitmap{}); err == nil {
		t.Fatal("truncated P4 accepted")
	}
}
