package experiments_test

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

// tinyConfig keeps the runner tests fast: the smallest images the spec
// machinery allows, one repetition.
var tinyConfig = experiments.Config{Scale: 0.001, Repeats: 1, Warmup: 0}

func TestSmallClassesSpecs(t *testing.T) {
	classes := experiments.SmallClasses(0.01)
	for _, class := range []string{"Aerial", "Texture", "Misc"} {
		specs := classes[class]
		if len(specs) != 4 {
			t.Fatalf("%s has %d specs, want 4", class, len(specs))
		}
		for _, spec := range specs {
			img := spec.Build()
			if img.Width < 16 || img.Height < 16 {
				t.Fatalf("%s built degenerate image %dx%d", spec.Name, img.Width, img.Height)
			}
			if err := img.Validate(); err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
			// Determinism: rebuilding gives the identical image.
			if !img.Equal(spec.Build()) {
				t.Fatalf("%s not deterministic", spec.Name)
			}
		}
	}
}

func TestNLCDImagesMatchTable3(t *testing.T) {
	specs := experiments.NLCDImages(0.005)
	if len(specs) != 6 {
		t.Fatalf("NLCD has %d specs, want 6", len(specs))
	}
	for i, spec := range specs {
		if spec.SizeMB != experiments.NLCDSizesMB[i] {
			t.Fatalf("spec %d nominal size %v, want %v", i, spec.SizeMB, experiments.NLCDSizesMB[i])
		}
	}
	// Sizes must be strictly increasing like the paper's Table III.
	for i := 1; i < len(specs); i++ {
		a, b := specs[i-1].Build(), specs[i].Build()
		if a.SizeBytes() >= b.SizeBytes() {
			t.Fatalf("scaled sizes not increasing: %d then %d", a.SizeBytes(), b.SizeBytes())
		}
	}
}

func TestAllClassesCoversClassOrder(t *testing.T) {
	classes := experiments.AllClasses(0.001)
	for _, class := range experiments.ClassOrder {
		if len(classes[class]) == 0 {
			t.Fatalf("class %s empty", class)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	var sb strings.Builder
	experiments.Table2(&sb, tinyConfig)
	out := sb.String()
	for _, want := range []string{"Table II", "CCLLRPC", "ARemSP", "NLCD", "Average"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table II output missing %q:\n%s", want, out)
		}
	}
	// 4 classes x 3 stat rows + header + separator.
	if lines := strings.Count(out, "\n"); lines < 14 {
		t.Fatalf("Table II too short (%d lines):\n%s", lines, out)
	}
}

func TestTable3Renders(t *testing.T) {
	var sb strings.Builder
	experiments.Table3(&sb, tinyConfig)
	out := sb.String()
	for _, want := range []string{"Table III", "image_1", "image_6", "465.20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table III output missing %q:\n%s", want, out)
		}
	}
}

func TestTable4Renders(t *testing.T) {
	var sb strings.Builder
	experiments.Table4(&sb, tinyConfig)
	out := sb.String()
	for _, want := range []string{"Table IV", "NLCD", "Min", "Max"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table IV output missing %q:\n%s", want, out)
		}
	}
	for _, th := range experiments.Table4Threads {
		if !strings.Contains(out, string(rune('0'+th/10))+string(rune('0'+th%10))) &&
			!strings.Contains(out, string(rune('0'+th))) {
			t.Fatalf("Table IV missing thread column %d:\n%s", th, out)
		}
	}
}

func TestFig4Renders(t *testing.T) {
	var sb strings.Builder
	experiments.Fig4(&sb, tinyConfig)
	out := sb.String()
	for _, want := range []string{"Figure 4", "Aerial", "Misc", "Texture", "T=24"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure 4 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig5Renders(t *testing.T) {
	var sb strings.Builder
	experiments.Fig5(&sb, tinyConfig)
	out := sb.String()
	for _, want := range []string{"Figure 5", "image_6", "local", "local+merge", "T=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure 5 output missing %q:\n%s", want, out)
		}
	}
	// T=1 speedups are 1.00 by construction.
	if !strings.Contains(out, "1.00") {
		t.Fatalf("Figure 5 missing unit baseline:\n%s", out)
	}
}

func TestFig3Renders(t *testing.T) {
	var sb strings.Builder
	experiments.Fig3(&sb, tinyConfig)
	out := sb.String()
	for _, want := range []string{"Figure 3", "grayscale", "binary", "Components"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure 3 output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationsRenders(t *testing.T) {
	var sb strings.Builder
	experiments.Ablations(&sb, tinyConfig)
	out := sb.String()
	for _, want := range []string{"Ablations", "REMSP (paper)", "lock-free CAS", "row chunks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablations output missing %q:\n%s", want, out)
		}
	}
}

func TestWeakScalingRenders(t *testing.T) {
	var sb strings.Builder
	experiments.WeakScaling(&sb, tinyConfig)
	out := sb.String()
	for _, want := range []string{"Weak scaling", "Efficiency", "24"} {
		if !strings.Contains(out, want) {
			t.Fatalf("weak-scaling output missing %q:\n%s", want, out)
		}
	}
}
