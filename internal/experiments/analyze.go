package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// ConfigKey identifies one measured grid configuration: an algorithm over a
// dataset class at a thread count (0 = library default).
type ConfigKey struct {
	Algorithm string
	Class     string
	Threads   int
}

// String renders the key in the compact ALG/Class[@T] form the diff and
// policy machinery share.
func (k ConfigKey) String() string {
	if k.Threads == 0 {
		return k.Algorithm + "/" + k.Class
	}
	return fmt.Sprintf("%s/%s@%d", k.Algorithm, k.Class, k.Threads)
}

// ConfigStat is the per-configuration aggregate the analyzer derives from a
// report row: median and mean over the repeat samples, the sample extremes,
// and a normal-approximation 95% confidence interval on the mean. Rows
// without per-repeat samples (pre-grid reports) collapse to their single
// ns/op point.
type ConfigStat struct {
	ConfigKey
	Pixels      int64
	N           int // samples behind the aggregates
	MedianNs    int64
	MeanNs      int64
	MinNs       int64
	MaxNs       int64
	CI95LoNs    int64
	CI95HiNs    int64
	AllocsPerOp int64
}

// Analysis is a statistically digested BenchReport, ready for the table and
// curve writers.
type Analysis struct {
	Report *BenchReport
	Stats  []ConfigStat // report order
	byKey  map[ConfigKey]*ConfigStat
}

// Analyze aggregates every row of the report. Duplicate keys keep the first
// occurrence (grid configs are unique by construction).
func Analyze(rep *BenchReport) *Analysis {
	a := &Analysis{Report: rep, byKey: make(map[ConfigKey]*ConfigStat, len(rep.Results))}
	for _, r := range rep.Results {
		key := ConfigKey{r.Algorithm, r.Class, r.Threads}
		if _, dup := a.byKey[key]; dup {
			continue
		}
		st := statFromResult(key, r)
		a.Stats = append(a.Stats, st)
		a.byKey[key] = &a.Stats[len(a.Stats)-1]
	}
	return a
}

// Stat looks up one configuration's aggregate; nil when the report did not
// measure it.
func (a *Analysis) Stat(key ConfigKey) *ConfigStat { return a.byKey[key] }

// statFromResult computes the per-config statistics from the row's repeat
// samples, falling back to the single ns/op point for sample-less rows.
func statFromResult(key ConfigKey, r BenchResult) ConfigStat {
	st := ConfigStat{ConfigKey: key, Pixels: r.Pixels, AllocsPerOp: r.AllocsPerOp}
	samples := r.SampleNs
	if len(samples) == 0 {
		samples = []int64{r.NsPerOp}
	}
	st.N = len(samples)
	st.MedianNs = medianInt64(samples)
	st.MinNs, st.MaxNs = samples[0], samples[0]
	var sum float64
	for _, s := range samples {
		if s < st.MinNs {
			st.MinNs = s
		}
		if s > st.MaxNs {
			st.MaxNs = s
		}
		sum += float64(s)
	}
	mean := sum / float64(st.N)
	st.MeanNs = int64(mean)
	if st.N > 1 {
		var sq float64
		for _, s := range samples {
			d := float64(s) - mean
			sq += d * d
		}
		sd := math.Sqrt(sq / float64(st.N-1))
		half := 1.96 * sd / math.Sqrt(float64(st.N))
		st.CI95LoNs = int64(mean - half)
		st.CI95HiNs = int64(mean + half)
	} else {
		st.CI95LoNs, st.CI95HiNs = st.MeanNs, st.MeanNs
	}
	return st
}

// SeqBaselines maps each parallel algorithm to the sequential algorithm the
// paper measures its speedup against: the parallel variant of a scan should
// beat the best sequential run of the *same* scan, not merely its own
// single-threaded self.
var SeqBaselines = map[string]string{
	"PAREMSP": "ARemSP",
	"PBREMSP": "BREMSP",
}

// ScalingPoint is one thread count on a speedup-vs-threads curve.
type ScalingPoint struct {
	Threads int
	// MedianNs is the parallel algorithm's median at this thread count.
	MedianNs int64
	// SpeedupVsSeq is sequential-baseline median / this median; 0 when the
	// report has no baseline row for the class.
	SpeedupVsSeq float64
	// SpeedupSelf is the algorithm's own lowest-thread-count median / this
	// median (1.0 at the curve's first point by construction).
	SpeedupSelf float64
	// Efficiency is SpeedupVsSeq / Threads (parallel efficiency; 1.0 is
	// ideal linear scaling), falling back to SpeedupSelf / Threads when no
	// sequential baseline exists.
	Efficiency float64
}

// ScalingCurve is the speedup-vs-threads trajectory of one parallel
// algorithm over one class — the shape of the paper's headline figure.
type ScalingCurve struct {
	Algorithm string
	Baseline  string // sequential baseline algorithm, "" if absent
	Class     string
	Points    []ScalingPoint // ascending thread count, pinned rows only
}

// ScalingCurves derives every curve the report supports: for each parallel
// algorithm with pinned-thread rows (Threads > 0), one curve per class.
// Library-default rows (Threads == 0) stay out — an unpinned measurement
// has no x-coordinate on a threads axis.
func (a *Analysis) ScalingCurves() []ScalingCurve {
	type curveKey struct{ alg, class string }
	points := make(map[curveKey][]*ConfigStat)
	var order []curveKey
	for i := range a.Stats {
		st := &a.Stats[i]
		if st.Threads <= 0 {
			continue
		}
		k := curveKey{st.Algorithm, st.Class}
		if _, seen := points[k]; !seen {
			order = append(order, k)
		}
		points[k] = append(points[k], st)
	}
	curves := make([]ScalingCurve, 0, len(order))
	for _, k := range order {
		pts := points[k]
		sort.Slice(pts, func(i, j int) bool { return pts[i].Threads < pts[j].Threads })
		curve := ScalingCurve{Algorithm: k.alg, Class: k.class}
		var seqNs int64
		if baseAlg, ok := SeqBaselines[k.alg]; ok {
			if st := a.Stat(ConfigKey{baseAlg, k.class, 0}); st != nil {
				curve.Baseline = baseAlg
				seqNs = st.MedianNs
			}
		}
		selfNs := pts[0].MedianNs
		for _, st := range pts {
			p := ScalingPoint{Threads: st.Threads, MedianNs: st.MedianNs}
			if st.MedianNs > 0 {
				if seqNs > 0 {
					p.SpeedupVsSeq = float64(seqNs) / float64(st.MedianNs)
				}
				if selfNs > 0 {
					p.SpeedupSelf = float64(selfNs) / float64(st.MedianNs)
				}
			}
			ref := p.SpeedupVsSeq
			if ref == 0 {
				ref = p.SpeedupSelf
			}
			p.Efficiency = ref / float64(st.Threads)
			curve.Points = append(curve.Points, p)
		}
		curves = append(curves, curve)
	}
	return curves
}

// TrajectoryEntry is one configuration measured by both reports of a
// trajectory diff.
type TrajectoryEntry struct {
	Key    ConfigKey
	BaseNs int64
	CurNs  int64
	// Ratio is CurNs / BaseNs: > 1 slower than the baseline, < 1 faster.
	Ratio float64
}

// Trajectory summarizes how performance moved between two reports: the
// per-configuration median ratios over the shared keys, plus the
// configurations only one side measured.
type Trajectory struct {
	Entries []TrajectoryEntry // shared keys, worst ratio first
	Added   []ConfigKey       // measured only by the current report
	Removed []ConfigKey       // measured only by the baseline report
}

// ComputeTrajectory diffs two analyses. Keys whose pixel counts differ (a
// scale mismatch) are excluded from Entries and reported on both the Added
// and Removed lists, because their ns are incomparable in either direction.
func ComputeTrajectory(base, cur *Analysis) *Trajectory {
	tr := &Trajectory{}
	for i := range cur.Stats {
		st := &cur.Stats[i]
		bst := base.Stat(st.ConfigKey)
		if bst == nil || bst.Pixels != st.Pixels {
			tr.Added = append(tr.Added, st.ConfigKey)
			continue
		}
		if bst.MedianNs <= 0 {
			continue
		}
		tr.Entries = append(tr.Entries, TrajectoryEntry{
			Key:    st.ConfigKey,
			BaseNs: bst.MedianNs,
			CurNs:  st.MedianNs,
			Ratio:  float64(st.MedianNs) / float64(bst.MedianNs),
		})
	}
	for i := range base.Stats {
		st := &base.Stats[i]
		if cst := cur.Stat(st.ConfigKey); cst == nil || cst.Pixels != st.Pixels {
			tr.Removed = append(tr.Removed, st.ConfigKey)
		}
	}
	sort.SliceStable(tr.Entries, func(i, j int) bool { return tr.Entries[i].Ratio > tr.Entries[j].Ratio })
	return tr
}

// ms renders nanoseconds as milliseconds with three decimals.
func ms(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) }

// WriteMarkdown renders the full analysis as a markdown document: the run
// environment, the per-configuration statistics, the speedup-vs-threads
// scaling tables (the paper's headline figure as numbers), the parallel
// efficiency tables, and — when baseline is non-nil — the trajectory
// against it.
func (a *Analysis) WriteMarkdown(w io.Writer, baseline *Analysis) error {
	rep := a.Report
	tag := rep.Tag
	if tag == "" {
		tag = "(untagged)"
	}
	fmt.Fprintf(w, "# Benchmark analysis: %s\n\n", tag)
	fmt.Fprintf(w, "- go %s, GOMAXPROCS %d", strings.TrimPrefix(rep.GoVersion, "go"), rep.GOMAXPROCS)
	if rep.NumCPU > 0 {
		fmt.Fprintf(w, ", %d CPU(s)", rep.NumCPU)
	}
	if rep.GOOS != "" {
		fmt.Fprintf(w, ", %s/%s", rep.GOOS, rep.GOARCH)
	}
	fmt.Fprintln(w)
	if rep.GitRev != "" {
		fmt.Fprintf(w, "- git revision %s\n", rep.GitRev)
	}
	fmt.Fprintf(w, "- scale %g, %d repeat(s) per configuration\n\n", rep.Scale, rep.Repeats)

	fmt.Fprintln(w, "## Per-configuration statistics")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Algorithm | Class | Threads | Median ms | Mean ms | Min ms | Max ms | 95% CI ms | Allocs/op |")
	fmt.Fprintln(w, "|---|---|--:|--:|--:|--:|--:|--:|--:|")
	for i := range a.Stats {
		st := &a.Stats[i]
		threads := "default"
		if st.Threads > 0 {
			threads = fmt.Sprintf("%d", st.Threads)
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s | %s | %s–%s | %d |\n",
			st.Algorithm, st.Class, threads, ms(st.MedianNs), ms(st.MeanNs),
			ms(st.MinNs), ms(st.MaxNs), ms(st.CI95LoNs), ms(st.CI95HiNs), st.AllocsPerOp)
	}
	fmt.Fprintln(w)

	curves := a.ScalingCurves()
	writeCurveTables(w, curves, "## Speedup vs threads",
		"Speedup of the parallel algorithm against its sequential baseline (self-relative when no baseline row exists); the paper's core scaling claim.",
		func(p ScalingPoint) float64 {
			if p.SpeedupVsSeq > 0 {
				return p.SpeedupVsSeq
			}
			return p.SpeedupSelf
		})
	writeCurveTables(w, curves, "## Parallel efficiency",
		"Speedup divided by thread count; 1.00 is ideal linear scaling.",
		func(p ScalingPoint) float64 { return p.Efficiency })

	if baseline != nil {
		writeTrajectoryMarkdown(w, ComputeTrajectory(baseline, a), baseline.Report, rep)
	}
	return nil
}

// writeCurveTables renders one markdown table per parallel algorithm: rows
// are classes, columns are thread counts, cells come from the value
// extractor.
func writeCurveTables(w io.Writer, curves []ScalingCurve, title, caption string, value func(ScalingPoint) float64) {
	byAlg := map[string][]ScalingCurve{}
	var algOrder []string
	threadSet := map[int]bool{}
	for _, c := range curves {
		if _, seen := byAlg[c.Algorithm]; !seen {
			algOrder = append(algOrder, c.Algorithm)
		}
		byAlg[c.Algorithm] = append(byAlg[c.Algorithm], c)
		for _, p := range c.Points {
			threadSet[p.Threads] = true
		}
	}
	if len(algOrder) == 0 {
		return
	}
	threads := make([]int, 0, len(threadSet))
	for th := range threadSet {
		threads = append(threads, th)
	}
	sort.Ints(threads)

	fmt.Fprintf(w, "%s\n\n%s\n\n", title, caption)
	for _, alg := range algOrder {
		algCurves := byAlg[alg]
		base := algCurves[0].Baseline
		if base == "" {
			base = alg + " @ lowest thread count"
		}
		fmt.Fprintf(w, "### %s (baseline: %s)\n\n", alg, base)
		fmt.Fprint(w, "| Class |")
		for _, th := range threads {
			fmt.Fprintf(w, " T=%d |", th)
		}
		fmt.Fprint(w, "\n|---|")
		for range threads {
			fmt.Fprint(w, "--:|")
		}
		fmt.Fprintln(w)
		for _, c := range algCurves {
			fmt.Fprintf(w, "| %s |", c.Class)
			byThreads := map[int]ScalingPoint{}
			for _, p := range c.Points {
				byThreads[p.Threads] = p
			}
			for _, th := range threads {
				if p, ok := byThreads[th]; ok {
					fmt.Fprintf(w, " %.2f |", value(p))
				} else {
					fmt.Fprint(w, " – |")
				}
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
}

// writeTrajectoryMarkdown renders the trajectory section of the analysis
// document.
func writeTrajectoryMarkdown(w io.Writer, tr *Trajectory, baseRep, curRep *BenchReport) {
	baseTag, curTag := baseRep.Tag, curRep.Tag
	if baseTag == "" {
		baseTag = "baseline"
	}
	if curTag == "" {
		curTag = "current"
	}
	fmt.Fprintf(w, "## Trajectory: %s → %s\n\n", baseTag, curTag)
	var faster, slower, flat int
	for _, e := range tr.Entries {
		switch {
		case e.Ratio > 1.05:
			slower++
		case e.Ratio < 0.95:
			faster++
		default:
			flat++
		}
	}
	fmt.Fprintf(w, "%d shared configuration(s): %d faster (>5%%), %d slower (>5%%), %d flat; %d added, %d removed.\n\n",
		len(tr.Entries), faster, slower, flat, len(tr.Added), len(tr.Removed))
	if len(tr.Entries) > 0 {
		fmt.Fprintln(w, "| Configuration | Base ms | Current ms | Ratio |")
		fmt.Fprintln(w, "|---|--:|--:|--:|")
		for _, e := range tr.Entries {
			fmt.Fprintf(w, "| %s | %s | %s | %.2f |\n", e.Key, ms(e.BaseNs), ms(e.CurNs), e.Ratio)
		}
		fmt.Fprintln(w)
	}
	writeKeyList(w, "Added (no baseline measurement)", tr.Added)
	writeKeyList(w, "Removed (no longer measured)", tr.Removed)
}

func writeKeyList(w io.Writer, title string, keys []ConfigKey) {
	if len(keys) == 0 {
		return
	}
	fmt.Fprintf(w, "### %s\n\n", title)
	for _, k := range keys {
		fmt.Fprintf(w, "- %s\n", k)
	}
	fmt.Fprintln(w)
}

// WriteConfigsCSV renders the per-configuration statistics as CSV (one row
// per configuration, ns units, machine-consumable mirror of the markdown
// table).
func (a *Analysis) WriteConfigsCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "algorithm,class,threads,pixels,samples,median_ns,mean_ns,min_ns,max_ns,ci95_lo_ns,ci95_hi_ns,allocs_per_op"); err != nil {
		return err
	}
	for i := range a.Stats {
		st := &a.Stats[i]
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			st.Algorithm, st.Class, st.Threads, st.Pixels, st.N, st.MedianNs, st.MeanNs,
			st.MinNs, st.MaxNs, st.CI95LoNs, st.CI95HiNs, st.AllocsPerOp); err != nil {
			return err
		}
	}
	return nil
}

// WriteScalingCSV renders the scaling curves as CSV (one row per curve
// point).
func (a *Analysis) WriteScalingCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "algorithm,baseline,class,threads,median_ns,speedup_vs_seq,speedup_self,efficiency"); err != nil {
		return err
	}
	for _, c := range a.ScalingCurves() {
		for _, p := range c.Points {
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%d,%.4f,%.4f,%.4f\n",
				c.Algorithm, c.Baseline, c.Class, p.Threads, p.MedianNs,
				p.SpeedupVsSeq, p.SpeedupSelf, p.Efficiency); err != nil {
				return err
			}
		}
	}
	return nil
}
