package experiments

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"repro/internal/baseline"
	"repro/internal/binimg"
	"repro/internal/core"
)

// BenchResult is one machine-readable benchmark row: one algorithm over one
// dataset class.
type BenchResult struct {
	Algorithm   string `json:"algorithm"`
	Class       string `json:"class"`
	Pixels      int64  `json:"pixels"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// BenchReport is the envelope cmd/paperbench -json writes. BENCH_seed.json
// at the repository root is one of these, produced at -scale 0.05; future
// changes diff their own run against it to track the perf trajectory
// (ns/op values are machine-relative, allocs/op are not).
type BenchReport struct {
	Scale      float64       `json:"scale"`
	Repeats    int           `json:"repeats"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []BenchResult `json:"results"`
}

// benchAlgs is the algorithm column set of the JSON benchmark: the paper's
// sequential algorithms plus the bit-packed pair, with the parallel ones at
// GOMAXPROCS.
var benchAlgs = []struct {
	Name string
	Run  func(*binimg.Image) (*binimg.LabelMap, int)
}{
	{"CCLLRPC", baseline.CCLLRPC},
	{"CCLRemSP", core.CCLREMSP},
	{"ARun", baseline.ARUN},
	{"ARemSP", core.AREMSP},
	{"BREMSP", core.BREMSP},
	{"PAREMSP", func(im *binimg.Image) (*binimg.LabelMap, int) { return core.PAREMSP(im, 0) }},
	{"PBREMSP", func(im *binimg.Image) (*binimg.LabelMap, int) { return core.PBREMSP(im, 0) }},
}

// BenchJSON measures every benchmark algorithm over every dataset class at
// cfg and writes one BenchReport as indented JSON.
func BenchJSON(w io.Writer, cfg Config) error {
	report := RunBench(cfg)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// RunBench measures every benchmark algorithm over every dataset class at
// cfg and returns the report; BenchJSON and the regression differ
// (cmd/paperbench -diff) both consume it.
func RunBench(cfg Config) *BenchReport {
	report := &BenchReport{
		Scale:      cfg.Scale,
		Repeats:    cfg.Repeats,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	classes := AllClasses(cfg.Scale)
	for _, class := range ClassOrder {
		imgs := make([]*binimg.Image, 0, len(classes[class]))
		var pixels int64
		for _, spec := range classes[class] {
			img := spec.Build()
			pixels += int64(len(img.Pix))
			imgs = append(imgs, img)
		}
		for _, alg := range benchAlgs {
			run := func() {
				for _, img := range imgs {
					alg.Run(img)
				}
			}
			for i := 0; i < cfg.Warmup; i++ {
				run()
			}
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			t0 := time.Now()
			for i := 0; i < cfg.Repeats; i++ {
				run()
			}
			elapsed := time.Since(t0)
			runtime.ReadMemStats(&m1)
			rep := int64(cfg.Repeats)
			report.Results = append(report.Results, BenchResult{
				Algorithm:   alg.Name,
				Class:       class,
				Pixels:      pixels,
				NsPerOp:     elapsed.Nanoseconds() / rep,
				AllocsPerOp: int64(m1.Mallocs-m0.Mallocs) / rep,
				BytesPerOp:  int64(m1.TotalAlloc-m0.TotalAlloc) / rep,
			})
		}
	}
	return report
}
