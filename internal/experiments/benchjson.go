package experiments

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"repro/internal/binimg"
)

// BenchResult is one machine-readable benchmark row: one algorithm over one
// dataset class at one thread count.
type BenchResult struct {
	Algorithm string `json:"algorithm"`
	Class     string `json:"class"`
	// Threads is the pinned GOMAXPROCS / algorithm thread count of a grid
	// row; 0 (omitted) means the library default, which is what the flat
	// RunBench rows and the pre-grid BENCH_seed.json use.
	Threads     int   `json:"threads,omitempty"`
	Pixels      int64 `json:"pixels"`
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// SampleNs holds the per-repeat wall times behind NsPerOp when the row
	// came from the grid runner; the analyzer derives medians and
	// confidence intervals from it. Absent in flat RunBench rows.
	SampleNs []int64 `json:"sample_ns,omitempty"`
}

// BenchReport is the envelope cmd/paperbench -json writes. BENCH_seed.json
// at the repository root is one of these, produced at -scale 0.05; future
// changes diff their own run against it to track the perf trajectory
// (ns/op values are machine-relative, allocs/op are not). Grid runs
// (cmd/paperbench -grid) add the self-describing environment fields so a
// checked-in BENCH_<tag>.json records where its numbers came from.
type BenchReport struct {
	Tag        string        `json:"tag,omitempty"`
	Scale      float64       `json:"scale"`
	Repeats    int           `json:"repeats"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu,omitempty"`
	GOOS       string        `json:"goos,omitempty"`
	GOARCH     string        `json:"goarch,omitempty"`
	GitRev     string        `json:"git_rev,omitempty"`
	Results    []BenchResult `json:"results"`
}

// BenchJSON measures every benchmark algorithm over every dataset class at
// cfg and writes one BenchReport as indented JSON.
func BenchJSON(w io.Writer, cfg Config) error {
	report := RunBench(cfg)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// RunBench measures every benchmark algorithm over every dataset class at
// cfg and returns the report; BenchJSON and the regression differ
// (cmd/paperbench -diff) both consume it.
func RunBench(cfg Config) *BenchReport {
	report := &BenchReport{
		Scale:      cfg.Scale,
		Repeats:    cfg.Repeats,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	classes := AllClasses(cfg.Scale)
	for _, class := range ClassOrder {
		imgs := make([]*binimg.Image, 0, len(classes[class]))
		var pixels int64
		for _, spec := range classes[class] {
			img := spec.Build()
			pixels += int64(len(img.Pix))
			imgs = append(imgs, img)
		}
		for _, alg := range GridAlgs {
			run := func() {
				for _, img := range imgs {
					alg.Run(img, 0)
				}
			}
			for i := 0; i < cfg.Warmup; i++ {
				run()
			}
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			t0 := time.Now()
			for i := 0; i < cfg.Repeats; i++ {
				run()
			}
			elapsed := time.Since(t0)
			runtime.ReadMemStats(&m1)
			rep := int64(cfg.Repeats)
			report.Results = append(report.Results, BenchResult{
				Algorithm:   alg.Name,
				Class:       class,
				Pixels:      pixels,
				NsPerOp:     elapsed.Nanoseconds() / rep,
				AllocsPerOp: int64(m1.Mallocs-m0.Mallocs) / rep,
				BytesPerOp:  int64(m1.TotalAlloc-m0.TotalAlloc) / rep,
			})
		}
	}
	return report
}
