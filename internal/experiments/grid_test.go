package experiments_test

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestReadGridConfigValidation(t *testing.T) {
	good := `{"tag":"t","scale":0.01,"repeats":2,"warmup":1,
		"algorithms":["BREMSP","PBREMSP"],"classes":["Aerial"],"gomaxprocs":[1,2]}`
	cfg, err := experiments.ReadGridConfig(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Tag != "t" || cfg.Scale != 0.01 || len(cfg.Algorithms) != 2 || cfg.GOMAXPROCS[1] != 2 {
		t.Fatalf("config = %+v", cfg)
	}
	for name, bad := range map[string]string{
		"zero scale":     `{"scale":0,"repeats":1}`,
		"huge scale":     `{"scale":2,"repeats":1}`,
		"zero repeats":   `{"scale":0.01,"repeats":0}`,
		"bad warmup":     `{"scale":0.01,"repeats":1,"warmup":-1}`,
		"unknown alg":    `{"scale":0.01,"repeats":1,"algorithms":["Nope"]}`,
		"unknown class":  `{"scale":0.01,"repeats":1,"classes":["Nope"]}`,
		"neg gomaxprocs": `{"scale":0.01,"repeats":1,"gomaxprocs":[-1]}`,
		"unknown field":  `{"scale":0.01,"repeats":1,"classess":["Aerial"]}`,
		"not json":       `{nope`,
	} {
		if _, err := experiments.ReadGridConfig(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
}

func TestRunGridSweep(t *testing.T) {
	cfg := &experiments.GridConfig{
		Tag:        "test-grid",
		Scale:      0.001,
		Repeats:    2,
		Warmup:     0,
		Algorithms: []string{"BREMSP", "PBREMSP"},
		Classes:    []string{"Aerial"},
		GOMAXPROCS: []int{2, 1}, // deliberately unsorted
	}
	before := runtime.GOMAXPROCS(0)
	rep := experiments.RunGrid(cfg, experiments.GridMeta{GitRev: "deadbeef"})
	if after := runtime.GOMAXPROCS(0); after != before {
		t.Fatalf("GOMAXPROCS leaked: %d -> %d", before, after)
	}
	if rep.Tag != "test-grid" || rep.GitRev != "deadbeef" || rep.NumCPU != runtime.NumCPU() ||
		rep.GOOS != runtime.GOOS || rep.GoVersion != runtime.Version() {
		t.Fatalf("report metadata = %+v", rep)
	}
	// BREMSP is sequential (one row, threads 0); PBREMSP sweeps [1, 2].
	want := []string{"BREMSP/Aerial", "PBREMSP/Aerial@1", "PBREMSP/Aerial@2"}
	if len(rep.Results) != len(want) {
		t.Fatalf("got %d rows, want %d: %+v", len(rep.Results), len(want), rep.Results)
	}
	for i, r := range rep.Results {
		key := experiments.ConfigKey{Algorithm: r.Algorithm, Class: r.Class, Threads: r.Threads}
		if key.String() != want[i] {
			t.Fatalf("row %d = %s, want %s", i, key, want[i])
		}
		if len(r.SampleNs) != cfg.Repeats {
			t.Fatalf("row %s has %d samples, want %d", key, len(r.SampleNs), cfg.Repeats)
		}
		if r.NsPerOp <= 0 || r.Pixels <= 0 {
			t.Fatalf("row %s has empty measurement: %+v", key, r)
		}
		// NsPerOp is the median repeat: it must be one of the samples.
		found := false
		for _, s := range r.SampleNs {
			if s == r.NsPerOp {
				found = true
			}
		}
		if !found {
			t.Fatalf("row %s NsPerOp %d not among samples %v", key, r.NsPerOp, r.SampleNs)
		}
	}
}

func TestRunGridMetaTagOverride(t *testing.T) {
	cfg := &experiments.GridConfig{
		Tag: "config-tag", Scale: 0.001, Repeats: 1,
		Algorithms: []string{"CCLRemSP"}, Classes: []string{"Misc"},
	}
	rep := experiments.RunGrid(cfg, experiments.GridMeta{Tag: "cli-tag"})
	if rep.Tag != "cli-tag" {
		t.Fatalf("tag = %q, want cli-tag", rep.Tag)
	}
	if len(rep.Results) != 1 || rep.Results[0].Threads != 0 {
		t.Fatalf("results = %+v", rep.Results)
	}
}

// TestRunGridDefaultAxes pins the defaulting rules: empty algorithm/class
// selections mean "all", an empty thread axis means the single
// library-default point.
func TestRunGridDefaultAxes(t *testing.T) {
	cfg := &experiments.GridConfig{Scale: 0.001, Repeats: 1}
	rep := experiments.RunGrid(cfg, experiments.GridMeta{})
	wantRows := len(experiments.GridAlgs) * len(experiments.ClassOrder)
	if len(rep.Results) != wantRows {
		t.Fatalf("got %d rows, want %d (all algorithms x all classes, one thread point)", len(rep.Results), wantRows)
	}
	for _, r := range rep.Results {
		if r.Threads != 0 {
			t.Fatalf("default axis produced pinned row %+v", r)
		}
	}
}
