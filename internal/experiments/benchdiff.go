package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ReadBenchReport decodes a BenchReport previously written by BenchJSON
// (e.g. the checked-in BENCH_seed.json).
func ReadBenchReport(r io.Reader) (*BenchReport, error) {
	var rep BenchReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("experiments: decoding bench report: %w", err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("experiments: bench report has no results")
	}
	return &rep, nil
}

// Regression is one configuration whose ns/op worsened beyond its tolerance
// when a fresh run is compared against a baseline report.
type Regression struct {
	Key    ConfigKey
	BaseNs int64
	CurNs  int64
	// Ratio is CurNs / BaseNs (1.30 = 30% slower than the baseline).
	Ratio float64
	// Tolerance is the threshold this pair was judged against.
	Tolerance float64
	// Allowed marks a regression on the policy's allowlist: reported, but
	// not gating.
	Allowed bool
}

// Policy tunes the regression gate per benchmark. The zero value applies
// DefaultTolerance to everything (and a zero DefaultTolerance means the
// caller's flag-level tolerance is used instead).
type Policy struct {
	// DefaultTolerance is the ns/op regression tolerance applied to every
	// configuration without an override (0.25 = fail beyond +25%).
	DefaultTolerance float64 `json:"default_tolerance"`
	// Overrides maps configuration keys — "ALG/Class" or "ALG/Class@T",
	// see ConfigKey.String — to their own tolerance. Benchmarks known to be
	// noisy get looser thresholds without loosening the whole gate.
	Overrides map[string]float64 `json:"overrides"`
	// Allow lists configuration keys whose regressions are reported but
	// never fail the gate: the escape hatch for an accepted, understood
	// slowdown (remove the entry once the baseline is regenerated).
	Allow []string `json:"allow"`
}

// ReadPolicy decodes and validates a regression policy file.
func ReadPolicy(r io.Reader) (*Policy, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Policy
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("experiments: decoding regression policy: %w", err)
	}
	if p.DefaultTolerance < 0 {
		return nil, fmt.Errorf("experiments: policy default_tolerance %v < 0", p.DefaultTolerance)
	}
	for key, tol := range p.Overrides {
		if tol <= 0 {
			return nil, fmt.Errorf("experiments: policy override %q has non-positive tolerance %v", key, tol)
		}
	}
	return &p, nil
}

// tolerance resolves the threshold for one configuration.
func (p *Policy) tolerance(key ConfigKey) float64 {
	if p == nil {
		return 0
	}
	if tol, ok := p.Overrides[key.String()]; ok {
		return tol
	}
	return p.DefaultTolerance
}

// allowed reports whether the key is on the escape-hatch allowlist.
func (p *Policy) allowed(key ConfigKey) bool {
	if p == nil {
		return false
	}
	for _, k := range p.Allow {
		if k == key.String() {
			return true
		}
	}
	return false
}

// DiffSummary is the outcome of comparing a fresh report against a
// baseline: the regressions beyond tolerance (worst first, allowlisted ones
// flagged rather than omitted), how many pairs were actually compared, and
// the configurations only one side measured. Added/Removed exist because
// grids evolve between PRs — a changed benchmark set must be visible, not
// an error and not silence.
type DiffSummary struct {
	Regressions []Regression
	Compared    int
	Added       []ConfigKey // in cur only (or pixel-count mismatch)
	Removed     []ConfigKey // in base only (or pixel-count mismatch)
}

// Gating returns the regressions that should fail a gate: beyond tolerance
// and not allowlisted.
func (d *DiffSummary) Gating() []Regression {
	gating := make([]Regression, 0, len(d.Regressions))
	for _, r := range d.Regressions {
		if !r.Allowed {
			gating = append(gating, r)
		}
	}
	return gating
}

// DiffReports compares a fresh report against a baseline. A pair is
// comparable when both reports measured the same ConfigKey (algorithm,
// class, threads) over the same pixel count with a positive baseline ns/op;
// everything else lands on the Added/Removed lists (a -scale mismatch makes
// ns/op incomparable, so mismatched pixel counts count as both added and
// removed). tolerance is the default threshold; a non-nil policy overrides
// it per configuration and supplies the allowlist. Callers should treat
// Compared == 0 as "no check happened", not as a pass. ns/op is
// machine-relative, so a diff is only meaningful when both reports come
// from the same machine class.
func DiffReports(base, cur *BenchReport, tolerance float64, policy *Policy) *DiffSummary {
	type baseRow struct {
		ns, pixels int64
		matched    bool
	}
	baseNs := make(map[ConfigKey]*baseRow, len(base.Results))
	baseOrder := make([]ConfigKey, 0, len(base.Results))
	for _, r := range base.Results {
		key := ConfigKey{r.Algorithm, r.Class, r.Threads}
		if _, dup := baseNs[key]; dup {
			continue
		}
		baseNs[key] = &baseRow{ns: r.NsPerOp, pixels: r.Pixels}
		baseOrder = append(baseOrder, key)
	}
	d := &DiffSummary{}
	for _, r := range cur.Results {
		key := ConfigKey{r.Algorithm, r.Class, r.Threads}
		br, ok := baseNs[key]
		if !ok || br.pixels != r.Pixels {
			d.Added = append(d.Added, key)
			continue
		}
		br.matched = true
		if br.ns <= 0 {
			continue
		}
		d.Compared++
		tol := tolerance
		if policy != nil && policy.tolerance(key) > 0 {
			tol = policy.tolerance(key)
		}
		ratio := float64(r.NsPerOp) / float64(br.ns)
		if ratio > 1+tol {
			d.Regressions = append(d.Regressions, Regression{
				Key:       key,
				BaseNs:    br.ns,
				CurNs:     r.NsPerOp,
				Ratio:     ratio,
				Tolerance: tol,
				Allowed:   policy.allowed(key),
			})
		}
	}
	for _, key := range baseOrder {
		if !baseNs[key].matched {
			d.Removed = append(d.Removed, key)
		}
	}
	sort.Slice(d.Regressions, func(i, j int) bool { return d.Regressions[i].Ratio > d.Regressions[j].Ratio })
	return d
}
