package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ReadBenchReport decodes a BenchReport previously written by BenchJSON
// (e.g. the checked-in BENCH_seed.json).
func ReadBenchReport(r io.Reader) (*BenchReport, error) {
	var rep BenchReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("experiments: decoding bench report: %w", err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("experiments: bench report has no results")
	}
	return &rep, nil
}

// Regression is one algorithm x class pair whose ns/op worsened beyond the
// tolerance when a fresh run is compared against a baseline report.
type Regression struct {
	Algorithm string
	Class     string
	BaseNs    int64
	CurNs     int64
	// Ratio is CurNs / BaseNs (1.30 = 30% slower than the baseline).
	Ratio float64
}

// DiffReports compares a fresh report against a baseline and returns the
// pairs whose ns/op regressed by more than tolerance (0.25 = +25%), sorted
// worst first, plus the number of pairs actually compared. Pairs present in
// only one report are skipped — algorithms come and go across PRs — as are
// baseline rows with a non-positive ns/op and pairs measured over different
// pixel counts (a -scale mismatch makes the ns/op incomparable); callers
// should treat compared == 0 as "no check happened", not as a pass. ns/op
// is machine-relative, so a diff is only meaningful when both reports come
// from the same machine (CI compares two runs of the same job class).
func DiffReports(base, cur *BenchReport, tolerance float64) (regs []Regression, compared int) {
	type key struct{ alg, class string }
	type baseRow struct{ ns, pixels int64 }
	baseNs := make(map[key]baseRow, len(base.Results))
	for _, r := range base.Results {
		baseNs[key{r.Algorithm, r.Class}] = baseRow{r.NsPerOp, r.Pixels}
	}
	for _, r := range cur.Results {
		br, ok := baseNs[key{r.Algorithm, r.Class}]
		b := br.ns
		if !ok || b <= 0 || br.pixels != r.Pixels {
			continue
		}
		compared++
		ratio := float64(r.NsPerOp) / float64(b)
		if ratio > 1+tolerance {
			regs = append(regs, Regression{
				Algorithm: r.Algorithm,
				Class:     r.Class,
				BaseNs:    b,
				CurNs:     r.NsPerOp,
				Ratio:     ratio,
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Ratio > regs[j].Ratio })
	return regs, compared
}
