package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/baseline"
	"repro/internal/binimg"
	"repro/internal/core"
)

// GridAlg is one algorithm the grid runner can sweep. Sequential algorithms
// ignore the thread axis (they are measured once per class, with Threads
// recorded as 0); parallel ones are measured at every configured GOMAXPROCS
// value, plus once at the library default when the config lists 0.
type GridAlg struct {
	Name     string
	Parallel bool
	Run      func(img *binimg.Image, threads int) (*binimg.LabelMap, int)
}

// GridAlgs is the closed algorithm registry of the grid runner, in the
// column order of the flat RunBench report (the paper's sequential
// algorithms, the bit-packed pair, and the two parallel algorithms).
var GridAlgs = []GridAlg{
	{"CCLLRPC", false, func(im *binimg.Image, _ int) (*binimg.LabelMap, int) { return baseline.CCLLRPC(im) }},
	{"CCLRemSP", false, func(im *binimg.Image, _ int) (*binimg.LabelMap, int) { return core.CCLREMSP(im) }},
	{"ARun", false, func(im *binimg.Image, _ int) (*binimg.LabelMap, int) { return baseline.ARUN(im) }},
	{"ARemSP", false, func(im *binimg.Image, _ int) (*binimg.LabelMap, int) { return core.AREMSP(im) }},
	{"BREMSP", false, func(im *binimg.Image, _ int) (*binimg.LabelMap, int) { return core.BREMSP(im) }},
	{"PAREMSP", true, core.PAREMSP},
	{"PBREMSP", true, core.PBREMSP},
}

// gridAlgByName resolves a registry entry; ok is false for unknown names.
func gridAlgByName(name string) (GridAlg, bool) {
	for _, a := range GridAlgs {
		if a.Name == name {
			return a, true
		}
	}
	return GridAlg{}, false
}

// GridConfig is the declarative experiment grid cmd/paperbench -grid runs:
// the checked-in experiments.json at the repository root is one of these.
// The sweep is algorithm × class × gomaxprocs × repeats; sequential
// algorithms collapse the thread axis.
type GridConfig struct {
	// Tag names the run; the emitted report carries it (BENCH_<tag>.json by
	// convention).
	Tag string `json:"tag"`
	// Scale is the image-size scale factor in (0, 1] (see Config.Scale).
	Scale float64 `json:"scale"`
	// Repeats is the number of timed repetitions per configuration (>= 1).
	Repeats int `json:"repeats"`
	// Warmup is the number of untimed runs before the timed ones.
	Warmup int `json:"warmup"`
	// Algorithms selects registry entries by name; empty means all of
	// GridAlgs.
	Algorithms []string `json:"algorithms"`
	// Classes selects dataset classes from ClassOrder; empty means all.
	Classes []string `json:"classes"`
	// GOMAXPROCS is the thread axis for parallel algorithms: each value T>0
	// pins runtime.GOMAXPROCS(T) and the algorithm's thread count for the
	// measurement; 0 measures at the library default (unpinned), producing
	// rows comparable with the flat RunBench report. Empty means [0].
	GOMAXPROCS []int `json:"gomaxprocs"`
}

// ReadGridConfig decodes and validates a GridConfig. Unknown fields are
// rejected so a typoed axis name fails loudly instead of silently shrinking
// the sweep.
func ReadGridConfig(r io.Reader) (*GridConfig, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cfg GridConfig
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("experiments: decoding grid config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// Validate checks the config against the registry and the axis domains.
func (cfg *GridConfig) Validate() error {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		return fmt.Errorf("experiments: grid scale %v out of (0, 1]", cfg.Scale)
	}
	if cfg.Repeats < 1 {
		return fmt.Errorf("experiments: grid repeats %d < 1", cfg.Repeats)
	}
	if cfg.Warmup < 0 {
		return fmt.Errorf("experiments: grid warmup %d < 0", cfg.Warmup)
	}
	for _, name := range cfg.Algorithms {
		if _, ok := gridAlgByName(name); !ok {
			return fmt.Errorf("experiments: unknown grid algorithm %q", name)
		}
	}
	for _, class := range cfg.Classes {
		found := false
		for _, known := range ClassOrder {
			if class == known {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("experiments: unknown grid class %q (want one of %v)", class, ClassOrder)
		}
	}
	for _, th := range cfg.GOMAXPROCS {
		if th < 0 {
			return fmt.Errorf("experiments: grid gomaxprocs value %d < 0", th)
		}
	}
	return nil
}

// algorithms returns the selected registry entries in registry order.
func (cfg *GridConfig) algorithms() []GridAlg {
	if len(cfg.Algorithms) == 0 {
		return GridAlgs
	}
	selected := make(map[string]bool, len(cfg.Algorithms))
	for _, name := range cfg.Algorithms {
		selected[name] = true
	}
	algs := make([]GridAlg, 0, len(cfg.Algorithms))
	for _, a := range GridAlgs {
		if selected[a.Name] {
			algs = append(algs, a)
		}
	}
	return algs
}

// classes returns the selected class names in ClassOrder.
func (cfg *GridConfig) classes() []string {
	if len(cfg.Classes) == 0 {
		return ClassOrder
	}
	selected := make(map[string]bool, len(cfg.Classes))
	for _, class := range cfg.Classes {
		selected[class] = true
	}
	out := make([]string, 0, len(cfg.Classes))
	for _, class := range ClassOrder {
		if selected[class] {
			out = append(out, class)
		}
	}
	return out
}

// threadAxis returns the GOMAXPROCS axis, defaulting to the single
// library-default point, deduplicated and sorted with 0 first.
func (cfg *GridConfig) threadAxis() []int {
	if len(cfg.GOMAXPROCS) == 0 {
		return []int{0}
	}
	seen := make(map[int]bool, len(cfg.GOMAXPROCS))
	axis := make([]int, 0, len(cfg.GOMAXPROCS))
	for _, th := range cfg.GOMAXPROCS {
		if !seen[th] {
			seen[th] = true
			axis = append(axis, th)
		}
	}
	sort.Ints(axis)
	return axis
}

// GridMeta carries run identity the config itself cannot know: the CLI
// resolves the git revision and may override the tag.
type GridMeta struct {
	Tag    string // overrides cfg.Tag when non-empty
	GitRev string // short git revision, best effort
	// Progress, when non-nil, receives one line per finished configuration
	// so multi-minute sweeps show life on stderr.
	Progress io.Writer
}

// RunGrid executes the config's full sweep and returns the self-describing
// report. Every configuration is measured cfg.Repeats times after
// cfg.Warmup untimed runs; the row's NsPerOp is the median repeat (robust
// to a stray scheduler hiccup) and the raw repeats ride along in SampleNs
// for the analyzer. Parallel algorithms additionally pin
// runtime.GOMAXPROCS to the row's thread count for the duration of the
// measurement, so the thread axis constrains real CPU parallelism rather
// than just the algorithm's goroutine count.
func RunGrid(cfg *GridConfig, meta GridMeta) *BenchReport {
	tag := meta.Tag
	if tag == "" {
		tag = cfg.Tag
	}
	report := &BenchReport{
		Tag:        tag,
		Scale:      cfg.Scale,
		Repeats:    cfg.Repeats,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GitRev:     meta.GitRev,
	}
	classes := AllClasses(cfg.Scale)
	axis := cfg.threadAxis()
	for _, class := range cfg.classes() {
		imgs := make([]*binimg.Image, 0, len(classes[class]))
		var pixels int64
		for _, spec := range classes[class] {
			img := spec.Build()
			pixels += int64(len(img.Pix))
			imgs = append(imgs, img)
		}
		for _, alg := range cfg.algorithms() {
			ths := axis
			if !alg.Parallel {
				ths = []int{0}
			}
			for _, th := range ths {
				row := measureGridConfig(alg, imgs, th, cfg.Repeats, cfg.Warmup)
				row.Class = class
				row.Pixels = pixels
				report.Results = append(report.Results, row)
				if meta.Progress != nil {
					fmt.Fprintf(meta.Progress, "grid: %-10s %-8s T=%d  %s/op\n",
						row.Algorithm, row.Class, row.Threads, time.Duration(row.NsPerOp))
				}
			}
		}
	}
	return report
}

// measureGridConfig times one algorithm × image-set × thread-count cell.
func measureGridConfig(alg GridAlg, imgs []*binimg.Image, threads, repeats, warmup int) BenchResult {
	if threads > 0 {
		prev := runtime.GOMAXPROCS(threads)
		defer runtime.GOMAXPROCS(prev)
	}
	run := func() {
		for _, img := range imgs {
			alg.Run(img, threads)
		}
	}
	for i := 0; i < warmup; i++ {
		run()
	}
	samples := make([]int64, repeats)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := range samples {
		t0 := time.Now()
		run()
		samples[i] = time.Since(t0).Nanoseconds()
	}
	runtime.ReadMemStats(&m1)
	rep := int64(repeats)
	return BenchResult{
		Algorithm:   alg.Name,
		Threads:     threads,
		NsPerOp:     medianInt64(samples),
		AllocsPerOp: int64(m1.Mallocs-m0.Mallocs) / rep,
		BytesPerOp:  int64(m1.TotalAlloc-m0.TotalAlloc) / rep,
		SampleNs:    samples,
	}
}

// medianInt64 returns the median of a non-empty sample set (lower middle
// for even counts), without mutating the input.
func medianInt64(samples []int64) int64 {
	sorted := make([]int64, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(len(sorted)-1)/2]
}
