package experiments_test

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func report(rows ...experiments.BenchResult) *experiments.BenchReport {
	return &experiments.BenchReport{Scale: 0.05, Repeats: 1, Results: rows}
}

func row(alg, class string, ns int64) experiments.BenchResult {
	return experiments.BenchResult{Algorithm: alg, Class: class, NsPerOp: ns}
}

func TestDiffReports(t *testing.T) {
	base := report(
		row("BREMSP", "Aerial", 1000),
		row("BREMSP", "Texture", 1000),
		row("ARemSP", "Aerial", 2000),
		row("Gone", "Aerial", 500),
		row("Zero", "Aerial", 0),
	)
	cur := report(
		row("BREMSP", "Aerial", 1600),  // +60%: regression
		row("BREMSP", "Texture", 1200), // +20%: within tolerance
		row("ARemSP", "Aerial", 2600),  // +30%: regression
		row("New", "Aerial", 900),      // not in baseline: ignored
		row("Zero", "Aerial", 900),     // zero baseline: ignored
	)
	scaled := row("Gone", "Aerial", 5000) // would regress, but measured at another scale
	scaled.Pixels = 999
	cur.Results = append(cur.Results, scaled)
	regs, compared := experiments.DiffReports(base, cur, 0.25)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions %+v, want 2", len(regs), regs)
	}
	if compared != 3 { // the two BREMSP rows + ARemSP; New/Zero/scaled skipped
		t.Fatalf("compared %d pairs, want 3", compared)
	}
	// Sorted worst first.
	if regs[0].Algorithm != "BREMSP" || regs[0].Class != "Aerial" || regs[0].Ratio != 1.6 {
		t.Fatalf("worst regression = %+v", regs[0])
	}
	if regs[1].Algorithm != "ARemSP" || regs[1].CurNs != 2600 {
		t.Fatalf("second regression = %+v", regs[1])
	}
	if got, _ := experiments.DiffReports(base, cur, 0.75); len(got) != 0 {
		t.Fatalf("tolerance 0.75: got %+v, want none", got)
	}
	if _, n := experiments.DiffReports(report(row("X", "Y", 5)), cur, 0.25); n != 0 {
		t.Fatalf("disjoint reports compared %d pairs, want 0", n)
	}
}

func TestReadBenchReportRejectsGarbage(t *testing.T) {
	if _, err := experiments.ReadBenchReport(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage decoded without error")
	}
	if _, err := experiments.ReadBenchReport(strings.NewReader(`{"results":[]}`)); err == nil {
		t.Fatal("empty report accepted")
	}
}
