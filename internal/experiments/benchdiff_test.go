package experiments_test

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func report(rows ...experiments.BenchResult) *experiments.BenchReport {
	return &experiments.BenchReport{Scale: 0.05, Repeats: 1, Results: rows}
}

func row(alg, class string, ns int64) experiments.BenchResult {
	return experiments.BenchResult{Algorithm: alg, Class: class, NsPerOp: ns}
}

func trow(alg, class string, threads int, ns int64) experiments.BenchResult {
	return experiments.BenchResult{Algorithm: alg, Class: class, Threads: threads, NsPerOp: ns}
}

func TestDiffReports(t *testing.T) {
	base := report(
		row("BREMSP", "Aerial", 1000),
		row("BREMSP", "Texture", 1000),
		row("ARemSP", "Aerial", 2000),
		row("Gone", "Aerial", 500),
		row("Zero", "Aerial", 0),
	)
	cur := report(
		row("BREMSP", "Aerial", 1600),  // +60%: regression
		row("BREMSP", "Texture", 1200), // +20%: within tolerance
		row("ARemSP", "Aerial", 2600),  // +30%: regression
		row("New", "Aerial", 900),      // not in baseline: added
		row("Zero", "Aerial", 900),     // zero baseline: ignored
	)
	scaled := row("Gone", "Aerial", 5000) // would regress, but measured at another scale
	scaled.Pixels = 999
	cur.Results = append(cur.Results, scaled)
	d := experiments.DiffReports(base, cur, 0.25, nil)
	if len(d.Regressions) != 2 {
		t.Fatalf("got %d regressions %+v, want 2", len(d.Regressions), d.Regressions)
	}
	if d.Compared != 3 { // the two BREMSP rows + ARemSP; New/Zero/scaled skipped
		t.Fatalf("compared %d pairs, want 3", d.Compared)
	}
	// Sorted worst first.
	if r := d.Regressions[0]; r.Key.Algorithm != "BREMSP" || r.Key.Class != "Aerial" || r.Ratio != 1.6 {
		t.Fatalf("worst regression = %+v", r)
	}
	if r := d.Regressions[1]; r.Key.Algorithm != "ARemSP" || r.CurNs != 2600 {
		t.Fatalf("second regression = %+v", r)
	}
	// The evolved set is reported, not an error: New appears as added (plus
	// the rescaled Gone row), and Gone/Zero-at-new-pixels as removed.
	wantAdded := []string{"New/Aerial", "Gone/Aerial"}
	if len(d.Added) != len(wantAdded) {
		t.Fatalf("added = %v, want %v", d.Added, wantAdded)
	}
	for i, k := range d.Added {
		if k.String() != wantAdded[i] {
			t.Fatalf("added[%d] = %s, want %s", i, k, wantAdded[i])
		}
	}
	if len(d.Removed) != 1 || d.Removed[0].String() != "Gone/Aerial" {
		t.Fatalf("removed = %v, want [Gone/Aerial]", d.Removed)
	}
	if got := experiments.DiffReports(base, cur, 0.75, nil); len(got.Regressions) != 0 {
		t.Fatalf("tolerance 0.75: got %+v, want none", got.Regressions)
	}
	if d := experiments.DiffReports(report(row("X", "Y", 5)), cur, 0.25, nil); d.Compared != 0 {
		t.Fatalf("disjoint reports compared %d pairs, want 0", d.Compared)
	}
}

func TestDiffReportsThreadsAware(t *testing.T) {
	base := report(
		trow("PBREMSP", "NLCD", 1, 4000),
		trow("PBREMSP", "NLCD", 4, 1500),
	)
	cur := report(
		trow("PBREMSP", "NLCD", 1, 4100), // fine
		trow("PBREMSP", "NLCD", 4, 3000), // 2x: regression at T=4 only
		trow("PBREMSP", "NLCD", 8, 1000), // new thread count: added
	)
	d := experiments.DiffReports(base, cur, 0.25, nil)
	if d.Compared != 2 {
		t.Fatalf("compared %d, want 2", d.Compared)
	}
	if len(d.Regressions) != 1 || d.Regressions[0].Key.String() != "PBREMSP/NLCD@4" {
		t.Fatalf("regressions = %+v, want exactly PBREMSP/NLCD@4", d.Regressions)
	}
	if len(d.Added) != 1 || d.Added[0].String() != "PBREMSP/NLCD@8" {
		t.Fatalf("added = %v, want [PBREMSP/NLCD@8]", d.Added)
	}
}

func TestDiffReportsPolicy(t *testing.T) {
	base := report(
		row("BREMSP", "Aerial", 1000),
		row("ARemSP", "Aerial", 1000),
		trow("PBREMSP", "NLCD", 4, 1000),
	)
	cur := report(
		row("BREMSP", "Aerial", 1400),    // +40%: over default 0.25, under override 0.5
		row("ARemSP", "Aerial", 1400),    // +40%: allowlisted
		trow("PBREMSP", "NLCD", 4, 1400), // +40%: gating
	)
	policy := &experiments.Policy{
		DefaultTolerance: 0.25,
		Overrides:        map[string]float64{"BREMSP/Aerial": 0.5},
		Allow:            []string{"ARemSP/Aerial"},
	}
	d := experiments.DiffReports(base, cur, 0.25, policy)
	if len(d.Regressions) != 2 {
		t.Fatalf("regressions = %+v, want 2 (allowlisted + gating)", d.Regressions)
	}
	gating := d.Gating()
	if len(gating) != 1 || gating[0].Key.String() != "PBREMSP/NLCD@4" {
		t.Fatalf("gating = %+v, want exactly PBREMSP/NLCD@4", gating)
	}
	var sawAllowed bool
	for _, r := range d.Regressions {
		if r.Key.String() == "ARemSP/Aerial" {
			if !r.Allowed {
				t.Fatalf("ARemSP/Aerial should be allowlisted: %+v", r)
			}
			sawAllowed = true
		}
	}
	if !sawAllowed {
		t.Fatal("allowlisted regression missing from report")
	}
}

func TestReadPolicy(t *testing.T) {
	p, err := experiments.ReadPolicy(strings.NewReader(
		`{"default_tolerance": 0.3, "overrides": {"BREMSP/NLCD@4": 0.5}, "allow": ["ARun/Misc"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.DefaultTolerance != 0.3 || p.Overrides["BREMSP/NLCD@4"] != 0.5 || p.Allow[0] != "ARun/Misc" {
		t.Fatalf("policy = %+v", p)
	}
	for _, bad := range []string{
		`{"default_tolerance": -1}`,
		`{"overrides": {"X/Y": 0}}`,
		`{"unknown_knob": 1}`,
		`{not json`,
	} {
		if _, err := experiments.ReadPolicy(strings.NewReader(bad)); err == nil {
			t.Fatalf("policy %q accepted", bad)
		}
	}
}

func TestReadBenchReportRejectsGarbage(t *testing.T) {
	if _, err := experiments.ReadBenchReport(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage decoded without error")
	}
	if _, err := experiments.ReadBenchReport(strings.NewReader(`{"results":[]}`)); err == nil {
		t.Fatal("empty report accepted")
	}
}
