// Package experiments defines the paper's evaluation workloads and the
// runners that regenerate every table and figure of the evaluation section
// (Tables II-IV, Figures 3-5). cmd/paperbench is a thin CLI over this
// package, and the repository-root benchmarks reuse the same image specs so
// `go test -bench` and the CLI measure identical workloads.
//
// Dataset substitution (DESIGN.md §4): the USC-SIPI classes and the NLCD
// rasters are regenerated synthetically at the same binarized-image regimes.
// Every spec is deterministic. The `scale` parameter shrinks pixel *counts*
// linearly (the paper's 465.2 MB image at scale 0.1 becomes 46.5 MB) so the
// full sweep stays runnable on small machines; the experiment *shape*
// (relative algorithm ranking, speedup-vs-size trends) is scale-stable.
package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/baseline"
	"repro/internal/binimg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/harness"
)

// ImageSpec lazily describes one benchmark image.
type ImageSpec struct {
	Name   string
	Class  string
	SizeMB float64 // nominal binary-raster size at scale 1
	Build  func() *binimg.Image
}

// dims returns width/height for a square image of the given raster size in
// MB scaled by scale (1 MB = 2^20 one-byte pixels).
func dims(sizeMB, scale float64) (int, int) {
	pixels := sizeMB * scale * (1 << 20)
	side := int(math.Round(math.Sqrt(pixels)))
	if side < 16 {
		side = 16
	}
	return side, side
}

// SmallClasses builds the three small-image classes (the paper's USC-SIPI
// surrogates, each image <= 1 MB at scale 1).
func SmallClasses(scale float64) map[string][]ImageSpec {
	classes := map[string][]ImageSpec{}
	add := func(class string, sizeMB float64, seed int64, build func(w, h int, seed int64) *binimg.Image) {
		w, h := dims(sizeMB, scale)
		classes[class] = append(classes[class], ImageSpec{
			Name:   fmt.Sprintf("%s_%02d", class, len(classes[class])+1),
			Class:  class,
			SizeMB: sizeMB,
			Build:  func() *binimg.Image { return build(w, h, seed) },
		})
	}
	for i, sizeMB := range []float64{0.25, 0.5, 0.75, 1.0} {
		add("Aerial", sizeMB, int64(100+i), dataset.Aerial)
		add("Texture", sizeMB, int64(200+i), dataset.Texture)
		add("Misc", sizeMB, int64(300+i), dataset.Misc)
	}
	return classes
}

// NLCDSizesMB are the six NLCD raster sizes of Table III.
var NLCDSizesMB = []float64{12, 33, 37.31, 116.30, 132.03, 465.20}

// NLCDImages builds the six land-cover surrogates of Table III at the given
// scale.
func NLCDImages(scale float64) []ImageSpec {
	specs := make([]ImageSpec, len(NLCDSizesMB))
	for i, sizeMB := range NLCDSizesMB {
		w, h := dims(sizeMB, scale)
		seed := int64(400 + i)
		specs[i] = ImageSpec{
			Name:   fmt.Sprintf("image_%d", i+1),
			Class:  "NLCD",
			SizeMB: sizeMB,
			Build: func() *binimg.Image {
				return dataset.LandCover(w, h, maxInt(32, w/64), 0.5, seed)
			},
		}
	}
	return specs
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ClassOrder is the row order of Tables II and IV.
var ClassOrder = []string{"Aerial", "Texture", "Misc", "NLCD"}

// AllClasses merges the small classes and NLCD into the paper's four rows.
func AllClasses(scale float64) map[string][]ImageSpec {
	classes := SmallClasses(scale)
	classes["NLCD"] = NLCDImages(scale)
	return classes
}

// SequentialAlgs is the column order of Table II.
var SequentialAlgs = []struct {
	Name string
	Run  func(*binimg.Image) (*binimg.LabelMap, int)
}{
	{"CCLLRPC", baseline.CCLLRPC},
	{"CCLRemSP", core.CCLREMSP},
	{"ARun", baseline.ARUN},
	{"ARemSP", core.AREMSP},
}

// Config bundles the sweep parameters shared by the runners.
type Config struct {
	Scale   float64 // image-size scale factor (1.0 = the paper's sizes)
	Repeats int     // timed repetitions per image
	Warmup  int     // untimed warmup runs per image
}

// DefaultConfig is a laptop-friendly sweep (NLCD largest ≈ 9.3 MB).
var DefaultConfig = Config{Scale: 0.02, Repeats: 3, Warmup: 1}

// Table2 regenerates Table II: min/average/max execution time (ms) of the
// four sequential algorithms over each dataset class.
func Table2(w io.Writer, cfg Config) {
	fmt.Fprintf(w, "Table II: sequential execution times [msec] (scale %.3g, %s)\n",
		cfg.Scale, harness.EnvBanner())
	tbl := harness.NewTable("Image type", "Stat", "CCLLRPC", "CCLRemSP", "ARun", "ARemSP")
	classes := AllClasses(cfg.Scale)
	for _, class := range ClassOrder {
		stats := make([]harness.MinAvgMax, len(SequentialAlgs))
		for a, alg := range SequentialAlgs {
			var samples []harness.Sample
			for _, spec := range classes[class] {
				img := spec.Build()
				samples = append(samples, harness.Measure(cfg.Repeats, cfg.Warmup, func() {
					alg.Run(img)
				}))
			}
			stats[a] = harness.Aggregate(samples)
		}
		rows := []struct {
			stat string
			get  func(harness.MinAvgMax) time.Duration
		}{
			{"Min", func(s harness.MinAvgMax) time.Duration { return s.Min }},
			{"Average", func(s harness.MinAvgMax) time.Duration { return s.Avg }},
			{"Max", func(s harness.MinAvgMax) time.Duration { return s.Max }},
		}
		for _, r := range rows {
			cells := []string{class, r.stat}
			for _, s := range stats {
				cells = append(cells, harness.Msec(r.get(s)))
			}
			tbl.AddRow(cells...)
		}
	}
	tbl.Render(w)
}

// Table3 regenerates Table III: the NLCD image inventory with nominal and
// scaled sizes.
func Table3(w io.Writer, cfg Config) {
	fmt.Fprintf(w, "Table III: NLCD images and their sizes [MB] (scale %.3g)\n", cfg.Scale)
	tbl := harness.NewTable("Image name", "Paper size", "Scaled size", "Pixels")
	for _, spec := range NLCDImages(cfg.Scale) {
		img := spec.Build()
		tbl.AddRow(spec.Name,
			fmt.Sprintf("%.2f", spec.SizeMB),
			fmt.Sprintf("%.2f", float64(img.SizeBytes())/(1<<20)),
			fmt.Sprintf("%dx%d", img.Width, img.Height))
	}
	tbl.Render(w)
}

// Table4Threads is the thread-count column set of Table IV.
var Table4Threads = []int{2, 6, 16, 24}

// Table4 regenerates Table IV: min/average/max PAREMSP execution time (ms)
// per dataset class for each thread count.
func Table4(w io.Writer, cfg Config) {
	fmt.Fprintf(w, "Table IV: PAREMSP execution times [msec] (scale %.3g, %s)\n",
		cfg.Scale, harness.EnvBanner())
	header := []string{"Image type", "Stat"}
	for _, th := range Table4Threads {
		header = append(header, fmt.Sprintf("%d", th))
	}
	tbl := harness.NewTable(header...)
	classes := AllClasses(cfg.Scale)
	for _, class := range ClassOrder {
		stats := make([]harness.MinAvgMax, len(Table4Threads))
		for ti, th := range Table4Threads {
			var samples []harness.Sample
			for _, spec := range classes[class] {
				img := spec.Build()
				samples = append(samples, harness.Measure(cfg.Repeats, cfg.Warmup, func() {
					core.PAREMSP(img, th)
				}))
			}
			stats[ti] = harness.Aggregate(samples)
		}
		for _, r := range []struct {
			stat string
			get  func(harness.MinAvgMax) time.Duration
		}{
			{"Min", func(s harness.MinAvgMax) time.Duration { return s.Min }},
			{"Average", func(s harness.MinAvgMax) time.Duration { return s.Avg }},
			{"Max", func(s harness.MinAvgMax) time.Duration { return s.Max }},
		} {
			cells := []string{class, r.stat}
			for _, s := range stats {
				cells = append(cells, harness.Msec(r.get(s)))
			}
			tbl.AddRow(cells...)
		}
	}
	tbl.Render(w)
}

// Fig4Threads is the x-axis of Figure 4.
var Fig4Threads = []int{2, 6, 8, 16, 24}

// Fig4 regenerates Figure 4: PAREMSP speedup (vs sequential AREMSP) for the
// three small-image classes, averaged per class, at each thread count.
func Fig4(w io.Writer, cfg Config) {
	fmt.Fprintf(w, "Figure 4: speedup vs threads, small classes (scale %.3g, %s)\n",
		cfg.Scale, harness.EnvBanner())
	header := []string{"Class"}
	for _, th := range Fig4Threads {
		header = append(header, fmt.Sprintf("T=%d", th))
	}
	tbl := harness.NewTable(header...)
	xt := make([]float64, len(Fig4Threads))
	for i, th := range Fig4Threads {
		xt[i] = float64(th)
	}
	chart := harness.NewChart("", "threads", "speedup vs sequential AREMSP", xt)
	for _, class := range []string{"Aerial", "Misc", "Texture"} {
		specs := SmallClasses(cfg.Scale)[class]
		cells := []string{class}
		var series []float64
		// Per-class mean sequential time.
		var seq []harness.Sample
		imgs := make([]*binimg.Image, len(specs))
		for i, spec := range specs {
			imgs[i] = spec.Build()
			seq = append(seq, harness.Measure(cfg.Repeats, cfg.Warmup, func() {
				core.AREMSP(imgs[i])
			}))
		}
		seqAvg := harness.Aggregate(seq).Avg
		for _, th := range Fig4Threads {
			var par []harness.Sample
			for _, img := range imgs {
				img := img
				par = append(par, harness.Measure(cfg.Repeats, cfg.Warmup, func() {
					core.PAREMSP(img, th)
				}))
			}
			parAvg := harness.Aggregate(par).Avg
			sp := harness.Speedup(seqAvg, parAvg)
			series = append(series, sp)
			cells = append(cells, fmt.Sprintf("%.2f", sp))
		}
		tbl.AddRow(cells...)
		chart.AddSeries(class, series)
	}
	tbl.Render(w)
	fmt.Fprintln(w)
	chart.Render(w)
}

// Fig5Threads is the x-axis of Figure 5.
var Fig5Threads = []int{1, 2, 4, 6, 8, 12, 16, 20, 24}

// Fig5 regenerates Figure 5: per NLCD image, the speedup of PAREMSP's local
// phase (5a) and local+merge (5b) relative to the one-thread run of the same
// phases, at each thread count.
func Fig5(w io.Writer, cfg Config) {
	fmt.Fprintf(w, "Figure 5: NLCD speedup vs threads (scale %.3g, %s)\n",
		cfg.Scale, harness.EnvBanner())
	header := []string{"Image", "Size MB", "Phase"}
	for _, th := range Fig5Threads {
		header = append(header, fmt.Sprintf("T=%d", th))
	}
	tbl := harness.NewTable(header...)
	xt := make([]float64, len(Fig5Threads))
	for i, th := range Fig5Threads {
		xt[i] = float64(th)
	}
	chartLocal := harness.NewChart("(a) local", "threads", "speedup", xt)
	chartLM := harness.NewChart("(b) local + merge", "threads", "speedup", xt)
	for _, spec := range NLCDImages(cfg.Scale) {
		img := spec.Build()
		local := make([]time.Duration, len(Fig5Threads))
		localMerge := make([]time.Duration, len(Fig5Threads))
		for ti, th := range Fig5Threads {
			var bestLocal, bestLM time.Duration
			for r := 0; r < cfg.Repeats; r++ {
				_, _, times := core.PAREMSPTimed(img, core.Options{Threads: th})
				if r == 0 || times.Local() < bestLocal {
					bestLocal = times.Local()
				}
				if r == 0 || times.LocalMerge() < bestLM {
					bestLM = times.LocalMerge()
				}
			}
			local[ti] = bestLocal
			localMerge[ti] = bestLM
		}
		rowLocal := []string{spec.Name, fmt.Sprintf("%.2f", spec.SizeMB), "local"}
		rowLM := []string{spec.Name, fmt.Sprintf("%.2f", spec.SizeMB), "local+merge"}
		var serLocal, serLM []float64
		for ti := range Fig5Threads {
			spLocal := harness.Speedup(local[0], local[ti])
			spLM := harness.Speedup(localMerge[0], localMerge[ti])
			serLocal = append(serLocal, spLocal)
			serLM = append(serLM, spLM)
			rowLocal = append(rowLocal, fmt.Sprintf("%.2f", spLocal))
			rowLM = append(rowLM, fmt.Sprintf("%.2f", spLM))
		}
		tbl.AddRow(rowLocal...)
		tbl.AddRow(rowLM...)
		chartLocal.AddSeries(spec.Name, serLocal)
		chartLM.AddSeries(spec.Name, serLM)
	}
	tbl.Render(w)
	fmt.Fprintln(w)
	chartLocal.Render(w)
	fmt.Fprintln(w)
	chartLM.Render(w)
}

// WeakScaling is an experiment beyond the paper: problem size grows with
// the thread count (a fixed per-thread quantum of land-cover raster), so
// ideal behavior is *constant* time per row. The paper only reports strong
// scaling (fixed size, Figures 4-5); weak scaling separates algorithmic
// overhead growth from memory-bandwidth saturation.
func WeakScaling(w io.Writer, cfg Config) {
	fmt.Fprintf(w, "Weak scaling (beyond paper): constant %.1f MB of raster per thread (scale %.3g, %s)\n",
		8*cfg.Scale, cfg.Scale, harness.EnvBanner())
	tbl := harness.NewTable("Threads", "Image", "Total ms", "Scan ms", "Efficiency")
	var baseline time.Duration
	for _, th := range []int{1, 2, 4, 8, 16, 24} {
		wpx, hpx := dims(8*float64(th), cfg.Scale)
		img := dataset.LandCover(wpx, hpx, maxInt(32, wpx/64), 0.5, int64(500+th))
		var best core.PhaseTimes
		for r := 0; r < cfg.Repeats; r++ {
			_, _, times := core.PAREMSPTimed(img, core.Options{Threads: th})
			if r == 0 || times.Total() < best.Total() {
				best = times
			}
		}
		if th == 1 {
			baseline = best.Total()
		}
		eff := 0.0
		if best.Total() > 0 {
			eff = baseline.Seconds() / best.Total().Seconds()
		}
		tbl.AddRow(fmt.Sprintf("%d", th),
			fmt.Sprintf("%dx%d", wpx, hpx),
			harness.Msec(best.Total()),
			harness.Msec(best.Scan),
			fmt.Sprintf("%.2f", eff))
	}
	tbl.Render(w)
}

// Ablations runs the design-choice comparisons of DESIGN.md §6 on the
// largest NLCD surrogate and prints one table per question (the text mirror
// of the BenchmarkAblation* families, for readers who do not drive
// `go test -bench`).
func Ablations(w io.Writer, cfg Config) {
	specs := NLCDImages(cfg.Scale)
	img := specs[len(specs)-1].Build()
	fmt.Fprintf(w, "Ablations on %s (%dx%d, scale %.3g, %s)\n",
		specs[len(specs)-1].Name, img.Width, img.Height, cfg.Scale, harness.EnvBanner())

	measure := func(f func()) time.Duration {
		return harness.Measure(cfg.Repeats, cfg.Warmup, f).Min()
	}

	tbl := harness.NewTable("Question", "Variant", "Best ms")
	// 1. Union-find under a fixed pair-row scan.
	tbl.AddRow("union-find (pair scan fixed)", "REMSP (paper)",
		harness.Msec(measure(func() { core.AREMSP(img) })))
	tbl.AddRow("", "He rtable (ARUN)",
		harness.Msec(measure(func() { baseline.ARUN(img) })))
	// 2. Scan strategy under fixed REMSP.
	tbl.AddRow("scan (REMSP fixed)", "pair-row (paper)",
		harness.Msec(measure(func() { core.AREMSP(img) })))
	tbl.AddRow("", "decision tree",
		harness.Msec(measure(func() { core.CCLREMSP(img) })))
	// 3. Boundary merger.
	tbl.AddRow("boundary merger (24 threads)", "locked (paper)",
		harness.Msec(measure(func() {
			core.PAREMSPTimed(img, core.Options{Threads: 24, Merger: core.MergerLocked})
		})))
	tbl.AddRow("", "lock-free CAS",
		harness.Msec(measure(func() {
			core.PAREMSPTimed(img, core.Options{Threads: 24, Merger: core.MergerCAS})
		})))
	// 4. Relabel pass.
	tbl.AddRow("final relabel (24 threads)", "parallel (paper)",
		harness.Msec(measure(func() {
			core.PAREMSPTimed(img, core.Options{Threads: 24})
		})))
	tbl.AddRow("", "sequential",
		harness.Msec(measure(func() {
			core.PAREMSPTimed(img, core.Options{Threads: 24, SequentialRelabel: true})
		})))
	// 5. Decomposition.
	tbl.AddRow("decomposition (24 workers)", "row chunks (paper)",
		harness.Msec(measure(func() { core.PAREMSP(img, 24) })))
	tbl.AddRow("", "tiles 6x4",
		harness.Msec(measure(func() { core.PAREMSP2D(img, 6, 4, 24) })))
	tbl.AddRow("", "tiles 4x6",
		harness.Msec(measure(func() { core.PAREMSP2D(img, 4, 6, 24) })))
	tbl.Render(w)
}

// Fig3 demonstrates the grayscale-to-binary conversion of Figure 3: it
// synthesizes a grayscale raster, binarizes it at level 0.5 with the im2bw
// rule, and reports the before/after statistics.
func Fig3(w io.Writer, cfg Config) {
	width, height := dims(0.25, cfg.Scale)
	gray := make([]uint8, width*height)
	// A radial gradient with texture: mimics a natural photograph's
	// luminance distribution well enough to show the threshold in action.
	cx, cy := float64(width)/2, float64(height)/2
	maxD := math.Hypot(cx, cy)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			d := math.Hypot(float64(x)-cx, float64(y)-cy) / maxD
			tex := 0.15 * math.Sin(float64(x)/3.0) * math.Cos(float64(y)/5.0)
			v := (1 - d) + tex
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			gray[y*width+x] = uint8(v * 255)
		}
	}
	img, err := binimg.FromGray(width, height, gray, 0.5)
	if err != nil {
		fmt.Fprintf(w, "fig3: %v\n", err)
		return
	}
	_, n := core.AREMSP(img)
	fmt.Fprintf(w, "Figure 3: im2bw(0.5) conversion demo\n")
	tbl := harness.NewTable("Stage", "Pixels", "Foreground", "Density", "Components")
	tbl.AddRow("grayscale", fmt.Sprintf("%dx%d", width, height), "-", "-", "-")
	tbl.AddRow("binary", fmt.Sprintf("%dx%d", width, height),
		fmt.Sprintf("%d", img.ForegroundCount()),
		fmt.Sprintf("%.3f", img.Density()),
		fmt.Sprintf("%d", n))
	tbl.Render(w)
}
