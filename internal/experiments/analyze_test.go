package experiments_test

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// fixtureReport is a hand-written grid report with arithmetic simple enough
// to verify by eye: BREMSP is the sequential baseline for PBREMSP, which
// halves its time from one thread to two and stalls at four.
func fixtureReport() *experiments.BenchReport {
	srow := func(alg, class string, threads int, pixels int64, samples ...int64) experiments.BenchResult {
		r := trow(alg, class, threads, samples[(len(samples)-1)/2])
		r.Pixels = pixels
		r.SampleNs = samples
		r.AllocsPerOp = 7
		return r
	}
	return &experiments.BenchReport{
		Tag:        "fixture",
		Scale:      0.05,
		Repeats:    3,
		GoVersion:  "go1.23.0",
		GOMAXPROCS: 4,
		NumCPU:     4,
		GOOS:       "linux",
		GOARCH:     "amd64",
		GitRev:     "abc1234",
		Results: []experiments.BenchResult{
			srow("BREMSP", "Aerial", 0, 1000, 1_000_000, 1_200_000, 1_100_000),
			srow("PBREMSP", "Aerial", 1, 1000, 1_000_000, 1_300_000, 1_000_000),
			srow("PBREMSP", "Aerial", 2, 1000, 500_000, 500_000, 500_000),
			srow("PBREMSP", "Aerial", 4, 1000, 400_000, 400_000, 400_000),
			// No sequential BREMSP row for Texture: the curve falls back to
			// self-relative speedup.
			srow("PBREMSP", "Texture", 1, 2000, 2_000_000, 2_000_000, 2_000_000),
			srow("PBREMSP", "Texture", 2, 2000, 1_000_000, 1_000_000, 1_000_000),
			// A sample-less legacy row (pre-grid report shape).
			{Algorithm: "ARemSP", Class: "Aerial", NsPerOp: 900_000, Pixels: 1000},
		},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestAnalyzeStats(t *testing.T) {
	a := experiments.Analyze(fixtureReport())
	st := a.Stat(experiments.ConfigKey{Algorithm: "BREMSP", Class: "Aerial"})
	if st == nil {
		t.Fatal("BREMSP/Aerial missing from analysis")
	}
	if st.N != 3 || st.MedianNs != 1_100_000 || st.MeanNs != 1_100_000 ||
		st.MinNs != 1_000_000 || st.MaxNs != 1_200_000 {
		t.Fatalf("BREMSP/Aerial stat = %+v", st)
	}
	// Samples {1.0, 1.1, 1.2}ms: sd = 100000, CI half-width = 1.96·sd/√3
	// (endpoints truncate from float independently).
	half := 1.96 * 100_000 / math.Sqrt(3)
	wantLo, wantHi := int64(1_100_000-half), int64(1_100_000+half)
	if st.CI95LoNs != wantLo || st.CI95HiNs != wantHi {
		t.Fatalf("CI = [%d, %d], want [%d, %d]", st.CI95LoNs, st.CI95HiNs, wantLo, wantHi)
	}
	// Sample-less legacy row: point statistics, degenerate CI.
	legacy := a.Stat(experiments.ConfigKey{Algorithm: "ARemSP", Class: "Aerial"})
	if legacy == nil || legacy.N != 1 || legacy.MedianNs != 900_000 ||
		legacy.CI95LoNs != 900_000 || legacy.CI95HiNs != 900_000 {
		t.Fatalf("legacy stat = %+v", legacy)
	}
}

func TestScalingCurves(t *testing.T) {
	curves := experiments.Analyze(fixtureReport()).ScalingCurves()
	if len(curves) != 2 {
		t.Fatalf("got %d curves, want 2: %+v", len(curves), curves)
	}
	aerial := curves[0]
	if aerial.Algorithm != "PBREMSP" || aerial.Class != "Aerial" || aerial.Baseline != "BREMSP" {
		t.Fatalf("curve 0 = %+v", aerial)
	}
	if len(aerial.Points) != 3 {
		t.Fatalf("aerial points = %+v", aerial.Points)
	}
	// Seq median 1.1ms over 1.0/0.5/0.4ms.
	wantSeq := []float64{1.1, 2.2, 2.75}
	for i, p := range aerial.Points {
		if math.Abs(p.SpeedupVsSeq-wantSeq[i]) > 1e-9 {
			t.Errorf("aerial point %d speedup = %v, want %v", i, p.SpeedupVsSeq, wantSeq[i])
		}
		if math.Abs(p.Efficiency-wantSeq[i]/float64(p.Threads)) > 1e-9 {
			t.Errorf("aerial point %d efficiency = %v", i, p.Efficiency)
		}
	}
	texture := curves[1]
	if texture.Baseline != "" {
		t.Fatalf("texture curve has unexpected baseline %q", texture.Baseline)
	}
	if texture.Points[1].SpeedupSelf != 2.0 || texture.Points[1].Efficiency != 1.0 {
		t.Fatalf("texture point 1 = %+v", texture.Points[1])
	}
}

// TestSpeedupAtLowestThreadCountIsOne is the analyzer's anchor property:
// every curve's self-relative speedup is exactly 1.0 at its first point, and
// when the grid actually measured one thread, the point sits at T=1. Run on
// the fixture and on a real (tiny) grid sweep.
func TestSpeedupAtLowestThreadCountIsOne(t *testing.T) {
	reports := map[string]*experiments.BenchReport{"fixture": fixtureReport()}
	if !testing.Short() {
		cfg := &experiments.GridConfig{
			Scale: 0.001, Repeats: 2,
			Algorithms: []string{"BREMSP", "PBREMSP"},
			Classes:    []string{"Aerial"},
			GOMAXPROCS: []int{1, 2},
		}
		reports["grid"] = experiments.RunGrid(cfg, experiments.GridMeta{})
	}
	const tol = 1e-9
	for name, rep := range reports {
		for _, c := range experiments.Analyze(rep).ScalingCurves() {
			if len(c.Points) == 0 {
				t.Fatalf("%s: curve %s/%s has no points", name, c.Algorithm, c.Class)
			}
			p0 := c.Points[0]
			if math.Abs(p0.SpeedupSelf-1.0) > tol {
				t.Errorf("%s: %s/%s self speedup at T=%d is %v, want 1.0",
					name, c.Algorithm, c.Class, p0.Threads, p0.SpeedupSelf)
			}
			if p0.Threads == 1 && math.Abs(p0.Efficiency-math.Max(p0.SpeedupVsSeq, p0.SpeedupSelf)) > tol &&
				p0.SpeedupVsSeq == 0 {
				t.Errorf("%s: %s/%s efficiency at T=1 is %v, want its speedup",
					name, c.Algorithm, c.Class, p0.Efficiency)
			}
		}
	}
}

func TestAnalysisGoldens(t *testing.T) {
	cur := experiments.Analyze(fixtureReport())

	// The trajectory baseline: same grid, uniformly slower PBREMSP rows plus
	// one configuration the current report no longer measures.
	baseRep := fixtureReport()
	baseRep.Tag = "fixture-base"
	for i := range baseRep.Results {
		r := &baseRep.Results[i]
		if r.Algorithm == "PBREMSP" {
			r.NsPerOp = r.NsPerOp * 2
			for j := range r.SampleNs {
				r.SampleNs[j] *= 2
			}
		}
	}
	gone := trow("CCLLRPC", "Aerial", 0, 3_000_000)
	gone.Pixels = 1000
	baseRep.Results = append(baseRep.Results, gone)
	base := experiments.Analyze(baseRep)

	var md bytes.Buffer
	if err := cur.WriteMarkdown(&md, base); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "analysis_golden.md", md.Bytes())

	var configs bytes.Buffer
	if err := cur.WriteConfigsCSV(&configs); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "configs_golden.csv", configs.Bytes())

	var scaling bytes.Buffer
	if err := cur.WriteScalingCSV(&scaling); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "scaling_golden.csv", scaling.Bytes())
}

func TestComputeTrajectory(t *testing.T) {
	cur := experiments.Analyze(fixtureReport())
	baseRep := fixtureReport()
	// Rescale one row's pixels: incomparable, so it must show up as both
	// added and removed.
	baseRep.Results[0].Pixels = 999
	base := experiments.Analyze(baseRep)
	tr := experiments.ComputeTrajectory(base, cur)
	if len(tr.Added) != 1 || tr.Added[0].String() != "BREMSP/Aerial" {
		t.Fatalf("added = %v", tr.Added)
	}
	if len(tr.Removed) != 1 || tr.Removed[0].String() != "BREMSP/Aerial" {
		t.Fatalf("removed = %v", tr.Removed)
	}
	if len(tr.Entries) != len(cur.Stats)-1 {
		t.Fatalf("entries = %+v", tr.Entries)
	}
	for _, e := range tr.Entries {
		if e.Ratio != 1.0 {
			t.Fatalf("identical reports produced ratio %v for %s", e.Ratio, e.Key)
		}
	}
}
