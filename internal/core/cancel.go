// Cooperative cancellation entry points. Every *IntoCtx function is its
// non-ctx counterpart with the long row loops — scan and relabel, which
// together dominate the runtime — polling ctx's done channel every few dozen
// rows and aborting with ctx.Err(). The polls are amortized per row block
// (scan.DecisionTreeUntil and friends poll every 64 rows; the relabel helpers
// below rewrite 64 rows between polls), are allocation-free, and cost one
// predicted branch per row when ctx can never be canceled
// (context.Background().Done() is nil), so the non-ctx entry points keep
// their benchmarked performance — see BenchmarkCancelCheck.
//
// The flatten and boundary-merge phases are not polled internally: they touch
// the equivalence table, not the raster, and are a small fraction of total
// time. The parallel drivers check the context between phases instead.
//
// A canceled labeling leaves lm and sc in an undefined (but reusable — every
// entry point Resets them) state; callers must discard the result.

package core

import (
	"context"

	"repro/internal/binimg"
	"repro/internal/scan"
	"repro/internal/unionfind"
)

// relabelPollRows matches the scan layer's poll amortization: 64 rows of
// relabel work between done-channel polls.
const relabelPollRows = 64

// ctxDone returns ctx's done channel; nil (never cancels) for a nil ctx.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// cancelErr returns ctx's error once its done channel closed, defaulting to
// context.Canceled for the pathological case of a closed channel with no
// recorded error.
func cancelErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.Canceled
}

// stopped reports whether done is closed without blocking; a nil done never
// stops.
func stopped(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// CCLREMSPIntoCtx is CCLREMSPInto with cooperative cancellation.
func CCLREMSPIntoCtx(ctx context.Context, img *binimg.Image, lm *binimg.LabelMap, sc *Scratch) (int, error) {
	if sc == nil {
		sc = &Scratch{}
	}
	lm.Reset(img.Width, img.Height)
	done := ctxDone(ctx)
	sink := &RemSink{p: sc.parents(scan.MaxProvisionalLabels(img.Width, img.Height))}
	if !scan.DecisionTreeUntil(img, lm, sink, 0, img.Height, done) {
		return 0, cancelErr(ctx)
	}
	n := unionfind.Flatten(sink.p, sink.count)
	if !relabelSeqUntil(lm, sink.p, done) {
		return 0, cancelErr(ctx)
	}
	return int(n), nil
}

// AREMSPIntoCtx is AREMSPInto with cooperative cancellation.
func AREMSPIntoCtx(ctx context.Context, img *binimg.Image, lm *binimg.LabelMap, sc *Scratch) (int, error) {
	if sc == nil {
		sc = &Scratch{}
	}
	lm.Reset(img.Width, img.Height)
	done := ctxDone(ctx)
	sink := &RemSink{p: sc.parents(scan.MaxProvisionalLabels(img.Width, img.Height))}
	if !scan.PairRowsUntil(img, lm, sink, 0, img.Height, done) {
		return 0, cancelErr(ctx)
	}
	n := unionfind.Flatten(sink.p, sink.count)
	if !relabelSeqUntil(lm, sink.p, done) {
		return 0, cancelErr(ctx)
	}
	return int(n), nil
}

// relabelSeqUntil is relabelSeq polling done every relabelPollRows rows;
// reports whether it ran to completion.
func relabelSeqUntil(lm *binimg.LabelMap, p []Label, done <-chan struct{}) bool {
	if done == nil {
		relabelSeq(lm, p)
		return true
	}
	return relabelSliceUntil(lm.L, p, relabelBlock(lm.Width), done)
}

// relabelBlock converts the per-row poll budget into a flat element count,
// with a floor so degenerate widths don't poll per handful of pixels.
func relabelBlock(w int) int {
	block := relabelPollRows * w
	if block < 1<<12 {
		block = 1 << 12
	}
	return block
}

// relabelSliceUntil rewrites provisional labels in part through p in blocks
// of block elements, polling done between blocks; reports whether it ran to
// completion.
func relabelSliceUntil(part, p []Label, block int, done <-chan struct{}) bool {
	for lo := 0; lo < len(part); lo += block {
		if stopped(done) {
			return false
		}
		hi := lo + block
		if hi > len(part) {
			hi = len(part)
		}
		seg := part[lo:hi]
		for i, v := range seg {
			if v != 0 {
				seg[i] = p[v]
			}
		}
	}
	return true
}

// relabelRunsUntil is relabelRuns polling done every relabelPollRows rows;
// reports whether it ran to completion.
func relabelRunsUntil(lm *binimg.LabelMap, p []Label, rs *scan.RunSet, done <-chan struct{}) bool {
	if done == nil {
		relabelRuns(lm, p, rs)
		return true
	}
	l := lm.L
	w := lm.Width
	for i, rows := 0, rs.Rows(); i < rows; i++ {
		if i%relabelPollRows == 0 && stopped(done) {
			return false
		}
		y := rs.Row0 + i
		base := y * w
		for _, r := range rs.RowRuns(y) {
			final := p[r.Label]
			seg := l[base+int(r.Start) : base+int(r.End)]
			for k := range seg {
				seg[k] = final
			}
		}
	}
	return true
}
