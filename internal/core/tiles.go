package core

import (
	"runtime"
	"sync"

	"repro/internal/binimg"
	"repro/internal/scan"
	"repro/internal/unionfind"
)

// PAREMSP2D is a 2D-decomposition variant of PAREMSP: instead of the
// paper's row-wise chunks, the image is cut into a tilesX x tilesY grid.
// Each tile is scanned independently (pair-row scan clipped to the tile,
// drawing labels from a disjoint range); afterwards every horizontal and
// vertical tile seam is merged with the concurrent union, then sparse
// flatten and parallel relabel run as in PAREMSP.
//
// This is the decomposition ablation DESIGN.md §6 calls for: 2D tiling
// shortens seams relative to full-width rows when the image is much wider
// than tall, at the cost of a column-clipped scan (the row scan streams
// whole cache lines; the tile scan does not). PAREMSP2D(img, 1, threads)
// degenerates to PAREMSP's decomposition.
func PAREMSP2D(img *binimg.Image, tilesX, tilesY, threads int) (*binimg.LabelMap, int) {
	w, h := img.Width, img.Height
	lm := binimg.NewLabelMap(w, h)
	if w == 0 || h == 0 {
		return lm, 0
	}
	if tilesX < 1 {
		tilesX = 1
	}
	if tilesY < 1 {
		tilesY = 1
	}
	if tilesX > w {
		tilesX = w
	}
	// Tile rows must align to row pairs, like PAREMSP's chunks.
	numPairs := (h + 1) / 2
	if tilesY > numPairs {
		tilesY = numPairs
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}

	xBounds := splitEven(w, tilesX)
	yBounds := make([]int, tilesY+1)
	base, rem := numPairs/tilesY, numPairs%tilesY
	pair := 0
	for ty := 0; ty < tilesY; ty++ {
		yBounds[ty] = pair * 2
		pair += base
		if ty < rem {
			pair++
		}
	}
	yBounds[tilesY] = h

	// Disjoint per-tile label ranges sized for the largest tile.
	maxTileW, maxTileH := 0, 0
	for tx := 0; tx < tilesX; tx++ {
		if tw := xBounds[tx+1] - xBounds[tx]; tw > maxTileW {
			maxTileW = tw
		}
	}
	for ty := 0; ty < tilesY; ty++ {
		if th := yBounds[ty+1] - yBounds[ty]; th > maxTileH {
			maxTileH = th
		}
	}
	stride := Label(scan.MaxProvisionalLabels(maxTileW, maxTileH))
	numTiles := tilesX * tilesY
	p := make([]Label, Label(numTiles)*stride+1)

	// Phase I: scan tiles on a bounded worker pool.
	type tile struct{ tx, ty int }
	tiles := make(chan tile, numTiles)
	for ty := 0; ty < tilesY; ty++ {
		for tx := 0; tx < tilesX; tx++ {
			tiles <- tile{tx, ty}
		}
	}
	close(tiles)
	var wg sync.WaitGroup
	workers := threads
	if workers > numTiles {
		workers = numTiles
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tiles {
				offset := Label(t.ty*tilesX+t.tx) * stride
				sink := NewRemSinkShared(p, offset)
				pairRowsTile(img, lm, sink,
					xBounds[t.tx], xBounds[t.tx+1], yBounds[t.ty], yBounds[t.ty+1])
			}
		}()
	}
	wg.Wait()

	// Phase II: seam merges.
	lt := unionfind.NewLockTable(0)
	merge := func(x, y Label) { unionfind.MergeLocked(p, lt, x, y) }
	for _, row := range yBounds[1:tilesY] {
		row := row
		wg.Add(1)
		go func() {
			defer wg.Done()
			mergeBoundaryRow(img, lm, merge, row)
		}()
	}
	for _, col := range xBounds[1:tilesX] {
		col := col
		wg.Add(1)
		go func() {
			defer wg.Done()
			mergeBoundaryCol(img, lm, merge, col)
		}()
	}
	wg.Wait()

	n := unionfind.FlattenSparse(p, Label(len(p)-1))
	if threads == 1 {
		relabelSeq(lm, p)
	} else {
		relabelParUntil(lm, p, threads, nil)
	}
	return lm, int(n)
}

// splitEven returns n+1 boundaries dividing [0, total) into n near-equal
// ranges.
func splitEven(total, n int) []int {
	bounds := make([]int, n+1)
	base, rem := total/n, total%n
	pos := 0
	for i := 0; i < n; i++ {
		bounds[i] = pos
		pos += base
		if i < rem {
			pos++
		}
	}
	bounds[n] = total
	return bounds
}

// mergeBoundaryCol unites every foreground pixel of the given tile-start
// column with its foreground neighbors in the column to the left (left,
// up-left, down-left) — the vertical-seam analogue of mergeBoundaryRow.
func mergeBoundaryCol(img *binimg.Image, lm *binimg.LabelMap, merge func(x, y Label), col int) {
	w, h := img.Width, img.Height
	pix := img.Pix
	lab := lm.L
	for y := 0; y < h; y++ {
		i := y*w + col
		if pix[i] == 0 {
			continue
		}
		le := lab[i]
		if pix[i-1] != 0 { // left
			merge(le, lab[i-1])
			continue // the left pixel's own column covers the diagonals
		}
		if y > 0 && pix[i-w-1] != 0 { // up-left
			merge(le, lab[i-w-1])
		}
		if y+1 < h && pix[i+w-1] != 0 { // down-left
			merge(le, lab[i+w-1])
		}
	}
}

// pairRowsTile is scan.PairRows clipped to the column range
// [colStart, colEnd): columns outside the tile are treated as out-of-image,
// exactly as rows above rowStart are.
func pairRowsTile(img *binimg.Image, lm *binimg.LabelMap, sink scan.Sink, colStart, colEnd, rowStart, rowEnd int) {
	w := img.Width
	pix := img.Pix
	lab := lm.L
	for r := rowStart; r < rowEnd; r += 2 {
		row := r * w
		up := row - w
		down := row + w
		hasUp := r > rowStart
		hasG := r+1 < rowEnd
		for x := colStart; x < colEnd; x++ {
			e := pix[row+x]
			var g uint8
			if hasG {
				g = pix[down+x]
			}
			if e != 0 {
				var a, b, c, d, f uint8
				if hasUp {
					b = pix[up+x]
					if x > colStart {
						a = pix[up+x-1]
					}
					if x+1 < colEnd {
						c = pix[up+x+1]
					}
				}
				if x > colStart {
					d = pix[row+x-1]
					if hasG {
						f = pix[down+x-1]
					}
				}
				var le Label
				if d == 0 {
					switch {
					case b != 0:
						le = lab[up+x]
						if f != 0 {
							le = sink.Merge(le, lab[down+x-1])
						}
					case f != 0:
						le = lab[down+x-1]
						if a != 0 {
							le = sink.Merge(le, lab[up+x-1])
						}
						if c != 0 {
							le = sink.Merge(le, lab[up+x+1])
						}
					case a != 0:
						le = lab[up+x-1]
						if c != 0 {
							le = sink.Merge(le, lab[up+x+1])
						}
					case c != 0:
						le = lab[up+x+1]
					default:
						le = sink.NewLabel()
					}
				} else {
					le = lab[row+x-1]
					if b == 0 && c != 0 {
						le = sink.Merge(le, lab[up+x+1])
					}
				}
				lab[row+x] = le
				if g != 0 {
					lab[down+x] = le
				}
			} else if g != 0 {
				var lg Label
				switch {
				case x > colStart && pix[row+x-1] != 0: // d
					lg = lab[row+x-1]
				case x > colStart && pix[down+x-1] != 0: // f
					lg = lab[down+x-1]
				default:
					lg = sink.NewLabel()
				}
				lab[down+x] = lg
			}
		}
	}
}
