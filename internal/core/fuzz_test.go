package core_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/binimg"
	"repro/internal/core"
	"repro/internal/stats"
)

// FuzzLabelersAgainstFloodFill decodes arbitrary bytes into an image (width
// from the first byte, pixels from the rest) and checks all three core
// algorithms against the flood-fill oracle. The seed corpus runs as part of
// `go test`; `go test -fuzz=FuzzLabelersAgainstFloodFill ./internal/core`
// explores further.
func FuzzLabelersAgainstFloodFill(f *testing.F) {
	f.Add([]byte{3, 1, 0, 1, 0, 1, 0, 1, 0, 1})
	f.Add([]byte{1, 1, 1, 1})
	f.Add([]byte{8, 0xFF, 0x00, 0xAA, 0x55})
	f.Add([]byte{5})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		w := int(data[0])%32 + 1
		body := data[1:]
		if len(body) > 32*32 {
			body = body[:32*32]
		}
		h := (len(body) + w - 1) / w
		if h == 0 {
			return
		}
		img := binimg.New(w, h)
		for i := range body {
			img.Pix[i] = body[i] & 1
		}
		ref, nRef := baseline.FloodFill(img, baseline.Conn8)
		for name, run := range map[string]func(*binimg.Image) (*binimg.LabelMap, int){
			"AREMSP":   core.AREMSP,
			"CCLREMSP": core.CCLREMSP,
			"PAREMSP3": func(im *binimg.Image) (*binimg.LabelMap, int) { return core.PAREMSP(im, 3) },
		} {
			lm, n := run(img)
			if n != nRef {
				t.Fatalf("%s: %d components, oracle %d\n%s", name, n, nRef, img)
			}
			if err := stats.Equivalent(lm, ref); err != nil {
				t.Fatalf("%s: %v\n%s", name, err, img)
			}
		}
	})
}
