package core_test

import (
	"testing"

	"repro/internal/binimg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// TestScratchReuseAcrossSizes drives one Scratch (and one LabelMap) through
// a shrinking-then-growing sequence of image shapes with every *Into entry
// point. Reuse must never leak state between calls: the parent array, the
// retained bitmap (whose tail-bits-zero invariant must hold after a Reset
// to a narrower raster), and the per-chunk run buffers are all recycled, so
// any stale byte shows up as a wrong partition. Each result is structurally
// validated against the image it claims to label.
func TestScratchReuseAcrossSizes(t *testing.T) {
	shapes := []struct{ w, h int }{
		{200, 150}, // large first, so every retained buffer is oversized below
		{5, 3},
		{64, 64},
		{3, 200},
		{129, 7},
		{1, 1},
		{150, 90},
		{65, 65},
	}
	algs := []struct {
		name string
		run  func(img *binimg.Image, lm *binimg.LabelMap, sc *core.Scratch) int
	}{
		{"AREMSP", core.AREMSPInto},
		{"CCLREMSP", core.CCLREMSPInto},
		{"BREMSP", core.BREMSPInto},
		{"PAREMSP", func(img *binimg.Image, lm *binimg.LabelMap, sc *core.Scratch) int {
			n, _ := core.PAREMSPTimedInto(img, lm, sc, core.Options{Threads: 3})
			return n
		}},
		{"PBREMSP", func(img *binimg.Image, lm *binimg.LabelMap, sc *core.Scratch) int {
			n, _ := core.PBREMSPTimedInto(img, lm, sc, core.Options{Threads: 3})
			return n
		}},
	}
	for _, alg := range algs {
		alg := alg
		t.Run(alg.name, func(t *testing.T) {
			sc := &core.Scratch{}
			lm := &binimg.LabelMap{}
			seed := int64(11)
			for round := 0; round < 2; round++ { // second round reuses warm buffers
				for _, s := range shapes {
					seed++
					img := dataset.UniformNoise(s.w, s.h, 0.55, seed)
					n := alg.run(img, lm, sc)
					if err := stats.Validate(img, lm, n, true); err != nil {
						t.Fatalf("round %d, %dx%d: %v", round, s.w, s.h, err)
					}
				}
			}
		})
	}
}

// TestScratchReuseAcrossAlgorithms interleaves the bit-packed and pixel
// algorithms on the same Scratch at alternating sizes — the service's
// pooled-scratch pattern, where one worker serves requests of any shape and
// algorithm back to back.
func TestScratchReuseAcrossAlgorithms(t *testing.T) {
	sc := &core.Scratch{}
	lm := &binimg.LabelMap{}
	big := dataset.UniformNoise(180, 120, 0.5, 5)
	small := dataset.UniformNoise(66, 9, 0.5, 6)
	steps := []struct {
		name string
		img  *binimg.Image
		run  func(img *binimg.Image, lm *binimg.LabelMap, sc *core.Scratch) int
	}{
		{"BREMSP/big", big, core.BREMSPInto},
		{"AREMSP/small", small, core.AREMSPInto},
		{"PBREMSP/big", big, func(img *binimg.Image, l *binimg.LabelMap, s *core.Scratch) int {
			n, _ := core.PBREMSPTimedInto(img, l, s, core.Options{Threads: 4})
			return n
		}},
		{"BREMSP/small", small, core.BREMSPInto},
		{"PAREMSP/big", big, func(img *binimg.Image, l *binimg.LabelMap, s *core.Scratch) int {
			n, _ := core.PAREMSPTimedInto(img, l, s, core.Options{Threads: 2})
			return n
		}},
		{"BREMSP/big", big, core.BREMSPInto},
	}
	for _, st := range steps {
		n := st.run(st.img, lm, sc)
		if err := stats.Validate(st.img, lm, n, true); err != nil {
			t.Fatalf("%s: %v", st.name, err)
		}
	}
}
