// Package core implements the paper's contributions: the sequential two-pass
// CCL algorithms CCLREMSP (decision-tree scan + REM's union-find with
// splicing) and AREMSP (two-rows-at-a-time scan + REMSP), and the parallel
// algorithm PAREMSP (chunked AREMSP scan + concurrent boundary merge +
// flatten + relabel).
package core

import (
	"context"

	"repro/internal/binimg"
	"repro/internal/scan"
	"repro/internal/unionfind"
)

// Label aliases the repository-wide label type.
type Label = binimg.Label

// RemSink records label equivalences in a REM parent array; it is the sink
// that turns a scan strategy into a *REMSP algorithm. It implements
// scan.Sink.
//
// A sink created with offset > 0 draws labels from [offset+1, ...); PAREMSP
// gives each chunk a disjoint range this way (paper Alg. 7: "count <- start
// x col"). The shared parent array is only written at indices the owning
// chunk creates, so concurrent chunk scans are data-race-free.
type RemSink struct {
	p     []Label
	count Label // last label handed out; next is count+1
}

// NewRemSink allocates a parent array for at most maxLabels labels, slot 0
// reserved for background.
func NewRemSink(maxLabels int) *RemSink {
	return &RemSink{p: make([]Label, maxLabels+1)}
}

// NewRemSinkShared wraps a shared parent array, handing out labels starting
// at offset+1.
func NewRemSinkShared(p []Label, offset Label) *RemSink {
	return &RemSink{p: p, count: offset}
}

// NewLabel creates the next provisional label: count++, p[count] = count
// (paper Alg. 6 lines 26-28).
func (s *RemSink) NewLabel() Label {
	s.count++
	s.p[s.count] = s.count
	return s.count
}

// Merge is REM's union with splicing (paper Alg. 2).
func (s *RemSink) Merge(x, y Label) Label {
	return unionfind.MergeRemSP(s.p, x, y)
}

// Count returns the highest label handed out.
func (s *RemSink) Count() Label { return s.count }

// Parents exposes the parent array for the flatten pass.
func (s *RemSink) Parents() []Label { return s.p }

// Scratch holds the reusable equivalence buffers behind the *Into entry
// points. A zero Scratch is ready to use; reusing one across calls amortizes
// the parent-array allocation, the dominant non-raster allocation of every
// REMSP algorithm. For the bit-packed algorithms (BREMSP, PBREMSP) it
// additionally retains the packed bitmap and the per-chunk run buffers. A
// Scratch must not be shared by concurrent labelings.
type Scratch struct {
	p    []Label
	lt   *unionfind.LockTable
	bm   *binimg.Bitmap
	runs []*scan.RunSet
}

// parents returns a zeroed parent array with n+1 slots (slot 0 is the
// background), growing the retained buffer only when needed. Zeroing is
// required by FlattenSparse, which treats p[i] == 0 as "label never created".
func (s *Scratch) parents(n int) []Label {
	if cap(s.p) < n+1 {
		s.p = make([]Label, n+1)
	} else {
		s.p = s.p[:n+1]
		clear(s.p)
	}
	return s.p
}

// lockTable returns a retained lock table with the requested stripe count
// (0 selects the default). A table whose run has completed has every stripe
// unlocked, so reuse across labelings is safe.
func (s *Scratch) lockTable(stripes int) *unionfind.LockTable {
	want := stripes
	if want == 0 {
		want = unionfind.DefaultLockStripes
	}
	if s.lt == nil || s.lt.Stripes() != want {
		s.lt = unionfind.NewLockTable(stripes)
	}
	return s.lt
}

// Parents returns a zeroed parent array with n+1 slots from the retained
// buffer, exactly as the internal entry points obtain theirs. Exported for
// the extension labelers (gray-level, 3D volume), which share a Scratch's
// parent buffer with the binary algorithms: the buffer grows to the largest
// request and is reused across modes.
func (s *Scratch) Parents(n int) []Label { return s.parents(n) }

// LockTable returns the retained stripe-lock table (0 stripes selects the
// default), for the extension labelers' concurrent boundary merges.
func (s *Scratch) LockTable(stripes int) *unionfind.LockTable { return s.lockTable(stripes) }

// bitmap returns the retained packed raster.
func (s *Scratch) bitmap() *binimg.Bitmap {
	if s.bm == nil {
		s.bm = &binimg.Bitmap{}
	}
	return s.bm
}

// runSets returns n retained run buffers (one per chunk; BREMSP uses one).
func (s *Scratch) runSets(n int) []*scan.RunSet {
	for len(s.runs) < n {
		s.runs = append(s.runs, &scan.RunSet{})
	}
	return s.runs[:n]
}

// CCLREMSP is the paper's Algorithm 1: decision-tree scan phase, FLATTEN
// analysis phase, labeling phase. Returns the final label map (consecutive
// labels 1..n, background 0) and n.
func CCLREMSP(img *binimg.Image) (*binimg.LabelMap, int) {
	lm := &binimg.LabelMap{}
	n := CCLREMSPInto(img, lm, nil)
	return lm, n
}

// CCLREMSPInto is CCLREMSP labeling into a caller-provided label map (reshaped
// with Reset) and drawing equivalence buffers from sc (nil allocates fresh
// ones). Returns the component count.
func CCLREMSPInto(img *binimg.Image, lm *binimg.LabelMap, sc *Scratch) int {
	n, _ := CCLREMSPIntoCtx(context.Background(), img, lm, sc)
	return n
}

// AREMSP is the paper's Algorithm 5: two-rows-at-a-time scan phase (Alg. 6),
// FLATTEN analysis phase (Alg. 3), labeling phase. This is the paper's best
// sequential algorithm and the one PAREMSP parallelizes.
func AREMSP(img *binimg.Image) (*binimg.LabelMap, int) {
	lm := &binimg.LabelMap{}
	n := AREMSPInto(img, lm, nil)
	return lm, n
}

// AREMSPInto is AREMSP labeling into a caller-provided label map (reshaped
// with Reset) and drawing equivalence buffers from sc (nil allocates fresh
// ones). Returns the component count.
func AREMSPInto(img *binimg.Image, lm *binimg.LabelMap, sc *Scratch) int {
	n, _ := AREMSPIntoCtx(context.Background(), img, lm, sc)
	return n
}

// relabelSeq rewrites provisional labels to final labels through the
// flattened parent array (labeling phase: label(e) <- p[label(e)]).
func relabelSeq(lm *binimg.LabelMap, p []Label) {
	for i, v := range lm.L {
		if v != 0 {
			lm.L[i] = p[v]
		}
	}
}
