package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/binimg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// ctxAlgs enumerates every context-aware entry point under one signature.
var ctxAlgs = []struct {
	name string
	run  func(ctx context.Context, img *binimg.Image, lm *binimg.LabelMap, sc *core.Scratch) (int, error)
}{
	{"CCLREMSP", core.CCLREMSPIntoCtx},
	{"AREMSP", core.AREMSPIntoCtx},
	{"BREMSP", core.BREMSPIntoCtx},
	{"PAREMSP", func(ctx context.Context, img *binimg.Image, lm *binimg.LabelMap, sc *core.Scratch) (int, error) {
		n, _, err := core.PAREMSPTimedIntoCtx(ctx, img, lm, sc, core.Options{Threads: 3})
		return n, err
	}},
	{"PBREMSP", func(ctx context.Context, img *binimg.Image, lm *binimg.LabelMap, sc *core.Scratch) (int, error) {
		n, _, err := core.PBREMSPTimedIntoCtx(ctx, img, lm, sc, core.Options{Threads: 3})
		return n, err
	}},
}

// TestCtxBackgroundMatchesPlain: with a never-canceled context every Ctx
// entry point must agree with its plain counterpart — the polling is
// behavior-neutral when nothing fires.
func TestCtxBackgroundMatchesPlain(t *testing.T) {
	img := dataset.UniformNoise(257, 131, 0.5, 7)
	for _, alg := range ctxAlgs {
		t.Run(alg.name, func(t *testing.T) {
			lm, sc := &binimg.LabelMap{}, &core.Scratch{}
			n, err := alg.run(context.Background(), img, lm, sc)
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if verr := stats.Validate(img, lm, n, true); verr != nil {
				t.Fatalf("validate: %v", verr)
			}
		})
	}
}

// TestCtxPreCanceled: a context that is already dead stops every algorithm
// at its first poll point with the context's error and n == 0.
func TestCtxPreCanceled(t *testing.T) {
	// Tall enough that every path crosses at least one 64-row poll boundary.
	img := dataset.UniformNoise(128, 300, 0.5, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range ctxAlgs {
		t.Run(alg.name, func(t *testing.T) {
			lm, sc := &binimg.LabelMap{}, &core.Scratch{}
			n, err := alg.run(ctx, img, lm, sc)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if n != 0 {
				t.Fatalf("n = %d after cancellation, want 0", n)
			}
		})
	}
}

// TestCtxBuffersReusableAfterCancel: a canceled labeling leaves lm and sc in
// an undefined but reusable state — the very next call with a live context
// must produce a fully correct labeling from the same buffers.
func TestCtxBuffersReusableAfterCancel(t *testing.T) {
	poison := dataset.UniformNoise(300, 300, 0.6, 9)
	img := dataset.UniformNoise(150, 97, 0.5, 10)
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range ctxAlgs {
		t.Run(alg.name, func(t *testing.T) {
			lm, sc := &binimg.LabelMap{}, &core.Scratch{}
			if _, err := alg.run(dead, poison, lm, sc); !errors.Is(err, context.Canceled) {
				t.Fatalf("poison run: err = %v, want context.Canceled", err)
			}
			n, err := alg.run(context.Background(), img, lm, sc)
			if err != nil {
				t.Fatalf("reuse run: %v", err)
			}
			if verr := stats.Validate(img, lm, n, true); verr != nil {
				t.Fatalf("reuse after cancel left stale state: %v", verr)
			}
		})
	}
}

// TestCtxDeadlinePropagates: the error reported is the context's own —
// DeadlineExceeded for an expired deadline, not a generic cancellation.
func TestCtxDeadlinePropagates(t *testing.T) {
	img := dataset.UniformNoise(128, 300, 0.5, 11)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	lm, sc := &binimg.LabelMap{}, &core.Scratch{}
	if _, err := core.CCLREMSPIntoCtx(ctx, img, lm, sc); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// BenchmarkCancelCheck measures the cost of the cancellation polling on the
// sequential hot path: the Ctx variant under a never-canceled context versus
// the plain entry point. The per-row nil-channel check must stay in the
// noise (the perf gate compares the *Into numbers against the baseline
// report with this code compiled in).
func BenchmarkCancelCheck(b *testing.B) {
	img := dataset.UniformNoise(1024, 1024, 0.5, 12)
	lm, sc := &binimg.LabelMap{}, &core.Scratch{}
	b.Run("plain", func(b *testing.B) {
		b.SetBytes(int64(img.Width * img.Height))
		for i := 0; i < b.N; i++ {
			core.CCLREMSPInto(img, lm, sc)
		}
	})
	b.Run("ctx-background", func(b *testing.B) {
		ctx := context.Background()
		b.SetBytes(int64(img.Width * img.Height))
		for i := 0; i < b.N; i++ {
			if _, err := core.CCLREMSPIntoCtx(ctx, img, lm, sc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ctx-live-cancelable", func(b *testing.B) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		b.SetBytes(int64(img.Width * img.Height))
		for i := 0; i < b.N; i++ {
			if _, err := core.CCLREMSPIntoCtx(ctx, img, lm, sc); err != nil {
				b.Fatal(err)
			}
		}
	})
}
