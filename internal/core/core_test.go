package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/binimg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// checkAgainstReference validates lm structurally and against flood fill.
func checkAgainstReference(t *testing.T, img *binimg.Image, lm *binimg.LabelMap, n int) {
	t.Helper()
	if err := stats.Validate(img, lm, n, true); err != nil {
		t.Fatalf("validate: %v\nimage:\n%s\nlabels:\n%s", err, img, lm)
	}
	ref, nRef := baseline.FloodFill(img, baseline.Conn8)
	if n != nRef {
		t.Fatalf("components = %d, reference %d\nimage:\n%s", n, nRef, img)
	}
	if err := stats.Equivalent(lm, ref); err != nil {
		t.Fatalf("equivalence: %v\nimage:\n%s", err, img)
	}
}

var fixtures = map[string]string{
	"single pixel":    "#",
	"lone background": ".",
	"two diagonal":    "#.\n.#",
	"anti-diagonal":   ".#\n#.",
	"u-turn": `
		#.#
		#.#
		###`,
	"w-shape": `
		#.#.#
		#.#.#
		##.##`,
	"stairs": `
		#....
		.#...
		..#..
		...#.
		....#`,
	"frame": `
		#####
		#...#
		#.#.#
		#...#
		#####`,
	"comb": `
		#.#.#.#
		#.#.#.#
		#######`,
	"inverse comb": `
		#######
		#.#.#.#
		#.#.#.#`,
	"two rows":      "###\n###",
	"single row":    "##.##",
	"single column": "#\n#\n.\n#",
	"merge cascade": `
		#.#.#.#.
		........
		########`,
}

func TestCCLREMSPFixtures(t *testing.T) {
	for name, art := range fixtures {
		img := binimg.MustParse(art)
		lm, n := core.CCLREMSP(img)
		t.Run(name, func(t *testing.T) { checkAgainstReference(t, img, lm, n) })
	}
}

func TestAREMSPFixtures(t *testing.T) {
	for name, art := range fixtures {
		img := binimg.MustParse(art)
		lm, n := core.AREMSP(img)
		t.Run(name, func(t *testing.T) { checkAgainstReference(t, img, lm, n) })
	}
}

func TestPAREMSPFixtures(t *testing.T) {
	for name, art := range fixtures {
		img := binimg.MustParse(art)
		for _, threads := range []int{1, 2, 3, 8} {
			lm, n := core.PAREMSP(img, threads)
			t.Run(name, func(t *testing.T) { checkAgainstReference(t, img, lm, n) })
		}
	}
}

func randomImage(rng *rand.Rand, maxW, maxH int) *binimg.Image {
	w, h := 1+rng.Intn(maxW), 1+rng.Intn(maxH)
	img := binimg.New(w, h)
	density := rng.Float64()
	for i := range img.Pix {
		if rng.Float64() < density {
			img.Pix[i] = 1
		}
	}
	return img
}

func TestPropertyCCLREMSPMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		img := randomImage(rng, 40, 40)
		lm, n := core.CCLREMSP(img)
		ref, nRef := baseline.FloodFill(img, baseline.Conn8)
		return n == nRef && stats.Equivalent(lm, ref) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAREMSPMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		img := randomImage(rng, 40, 40)
		lm, n := core.AREMSP(img)
		ref, nRef := baseline.FloodFill(img, baseline.Conn8)
		return n == nRef && stats.Equivalent(lm, ref) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestAREMSPEqualsCCLREMSPPartition: the paper's two sequential algorithms
// must compute identical partitions on everything.
func TestAREMSPEqualsCCLREMSPPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		img := randomImage(rng, 50, 50)
		a, na := core.AREMSP(img)
		b, nb := core.CCLREMSP(img)
		return na == nb && stats.Equivalent(a, b) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPAREMSPMatchesSequential is the core parallel-correctness
// property: PAREMSP at any thread count computes AREMSP's partition.
func TestPropertyPAREMSPMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		img := randomImage(rng, 60, 60)
		ref, nRef := core.AREMSP(img)
		threads := 1 + rng.Intn(16)
		lm, n := core.PAREMSP(img, threads)
		return n == nRef && stats.Equivalent(lm, ref) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPAREMSPAllThreadCountsOddAndEvenHeights(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, h := range []int{1, 2, 3, 4, 5, 7, 8, 16, 17, 31, 32, 33} {
		img := binimg.New(23, h)
		for i := range img.Pix {
			img.Pix[i] = uint8(rng.Intn(2))
		}
		ref, nRef := core.AREMSP(img)
		for threads := 1; threads <= 26; threads++ {
			lm, n := core.PAREMSP(img, threads)
			if n != nRef {
				t.Fatalf("h=%d threads=%d: n=%d want %d", h, threads, n, nRef)
			}
			if err := stats.Equivalent(lm, ref); err != nil {
				t.Fatalf("h=%d threads=%d: %v", h, threads, err)
			}
		}
	}
}

func TestPAREMSPMergerVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	img := binimg.New(64, 64)
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(2))
	}
	ref, nRef := core.AREMSP(img)
	for _, opt := range []core.Options{
		{Threads: 8, Merger: core.MergerLocked},
		{Threads: 8, Merger: core.MergerCAS},
		{Threads: 8, Merger: core.MergerLocked, LockStripes: 8},
		{Threads: 8, SequentialBoundary: true},
		{Threads: 8, SequentialRelabel: true},
	} {
		lm, n, times := core.PAREMSPTimed(img, opt)
		if n != nRef {
			t.Fatalf("opt %+v: n=%d want %d", opt, n, nRef)
		}
		if err := stats.Equivalent(lm, ref); err != nil {
			t.Fatalf("opt %+v: %v", opt, err)
		}
		if times.Total() <= 0 {
			t.Fatalf("opt %+v: non-positive total time %v", opt, times)
		}
		if times.LocalMerge() != times.Scan+times.Merge {
			t.Fatalf("LocalMerge accounting wrong: %+v", times)
		}
	}
}

func TestPAREMSPDegenerate(t *testing.T) {
	for _, tc := range []struct {
		name string
		img  *binimg.Image
	}{
		{"empty 0x0", binimg.New(0, 0)},
		{"zero width", binimg.New(0, 5)},
		{"zero height", binimg.New(5, 0)},
		{"1x1 bg", binimg.New(1, 1)},
		{"1x1 fg", binimg.MustParse("#")},
		{"1xN", binimg.MustParse("#\n#\n.\n#\n#")},
		{"Nx1", binimg.MustParse("##..###")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			lm, n := core.PAREMSP(tc.img, 4)
			if tc.img.Width == 0 || tc.img.Height == 0 {
				if n != 0 {
					t.Fatalf("n = %d, want 0", n)
				}
				return
			}
			checkAgainstReference(t, tc.img, lm, n)
		})
	}
}

// TestPAREMSPThreadsExceedingRows: more threads than row pairs must clamp.
func TestPAREMSPThreadsExceedingRows(t *testing.T) {
	img := binimg.MustParse("###\n#.#\n###")
	lm, n := core.PAREMSP(img, 64)
	checkAgainstReference(t, img, lm, n)
}

// TestGeneratedDatasets runs the full algorithm family on every dataset
// generator — integration coverage on realistic workloads.
func TestGeneratedDatasets(t *testing.T) {
	images := map[string]*binimg.Image{
		"noise50":   dataset.UniformNoise(97, 83, 0.5, 1),
		"noise90":   dataset.UniformNoise(64, 64, 0.9, 2),
		"noise10":   dataset.UniformNoise(64, 64, 0.1, 3),
		"checker1":  dataset.Checkerboard(50, 50, 1),
		"checker3":  dataset.Checkerboard(50, 50, 3),
		"stripesH":  dataset.Stripes(60, 40, 2, 3, false),
		"stripesV":  dataset.Stripes(60, 40, 2, 3, true),
		"blobs":     dataset.Blobs(80, 80, 12, 2, 9, 4),
		"spiral":    dataset.Serpentine(81, 81, 2, 3),
		"rings":     dataset.ConcentricRings(64, 64, 2, 3),
		"landcover": dataset.LandCover(96, 96, 24, 0.5, 5),
		"aerial":    dataset.Aerial(96, 96, 6),
		"texture":   dataset.Texture(72, 72, 7),
		"misc":      dataset.Misc(90, 90, 8),
		"text":      dataset.Text(120, 60, "GO", 2, 9),
	}
	for name, img := range images {
		img := img
		t.Run(name, func(t *testing.T) {
			ref, nRef := baseline.FloodFill(img, baseline.Conn8)
			for algName, f := range map[string]func(*binimg.Image) (*binimg.LabelMap, int){
				"CCLREMSP": core.CCLREMSP,
				"AREMSP":   core.AREMSP,
				"PAREMSP4": func(im *binimg.Image) (*binimg.LabelMap, int) { return core.PAREMSP(im, 4) },
				"PAREMSP7": func(im *binimg.Image) (*binimg.LabelMap, int) { return core.PAREMSP(im, 7) },
			} {
				lm, n := f(img)
				if n != nRef {
					t.Fatalf("%s: n = %d, reference %d", algName, n, nRef)
				}
				if err := stats.Equivalent(lm, ref); err != nil {
					t.Fatalf("%s: %v", algName, err)
				}
				if err := stats.Validate(img, lm, n, true); err != nil {
					t.Fatalf("%s: %v", algName, err)
				}
			}
		})
	}
}

// TestRemSinkSharedOffsets pins the disjoint-range contract.
func TestRemSinkSharedOffsets(t *testing.T) {
	p := make([]core.Label, 32)
	a := core.NewRemSinkShared(p, 0)
	b := core.NewRemSinkShared(p, 10)
	if a.NewLabel() != 1 || a.NewLabel() != 2 {
		t.Fatal("offset-0 sink must hand out 1, 2, ...")
	}
	if b.NewLabel() != 11 || b.NewLabel() != 12 {
		t.Fatal("offset-10 sink must hand out 11, 12, ...")
	}
	if p[1] != 1 || p[11] != 11 {
		t.Fatal("NewLabel must initialize p[count] = count")
	}
	if p[3] != 0 || p[10] != 0 {
		t.Fatal("untouched slots must stay 0 for FlattenSparse")
	}
}

func TestMergerKindString(t *testing.T) {
	if core.MergerLocked.String() != "locked" || core.MergerCAS.String() != "cas" {
		t.Fatal("MergerKind names wrong")
	}
	if core.MergerKind(9).String() == "" {
		t.Fatal("unknown MergerKind must still print")
	}
}
