package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/binimg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestPAREMSP2DFixtures(t *testing.T) {
	for name, art := range fixtures {
		img := binimg.MustParse(art)
		for _, grid := range [][2]int{{1, 1}, {2, 2}, {3, 2}, {4, 4}} {
			lm, n := core.PAREMSP2D(img, grid[0], grid[1], 4)
			t.Run(name, func(t *testing.T) { checkAgainstReference(t, img, lm, n) })
		}
	}
}

func TestPropertyPAREMSP2DMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		img := randomImage(rng, 60, 60)
		ref, nRef := core.AREMSP(img)
		lm, n := core.PAREMSP2D(img, 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(8))
		return n == nRef && stats.Equivalent(lm, ref) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPAREMSP2DGridSweep(t *testing.T) {
	img := dataset.UniformNoise(97, 61, 0.5, 5)
	ref, nRef := core.AREMSP(img)
	for tilesX := 1; tilesX <= 7; tilesX++ {
		for tilesY := 1; tilesY <= 7; tilesY++ {
			lm, n := core.PAREMSP2D(img, tilesX, tilesY, 6)
			if n != nRef {
				t.Fatalf("grid %dx%d: n=%d want %d", tilesX, tilesY, n, nRef)
			}
			if err := stats.Equivalent(lm, ref); err != nil {
				t.Fatalf("grid %dx%d: %v", tilesX, tilesY, err)
			}
		}
	}
}

func TestPAREMSP2DDegenerate(t *testing.T) {
	// Grids exceeding the image must clamp; zero-sized images return 0.
	img := binimg.MustParse("##\n##")
	lm, n := core.PAREMSP2D(img, 50, 50, 8)
	checkAgainstReference(t, img, lm, n)
	if _, n := core.PAREMSP2D(binimg.New(0, 0), 2, 2, 2); n != 0 {
		t.Fatal("0x0 image must have 0 components")
	}
	wide := dataset.UniformNoise(300, 2, 0.5, 1)
	ref, nRef := core.AREMSP(wide)
	lm, n = core.PAREMSP2D(wide, 8, 8, 8) // tilesY clamps to 1 pair
	if n != nRef {
		t.Fatalf("wide image: n=%d want %d", n, nRef)
	}
	if err := stats.Equivalent(lm, ref); err != nil {
		t.Fatal(err)
	}
}

// TestPAREMSP2DSeamHeavy stresses seams: vertical and horizontal stripes
// crossing every tile boundary.
func TestPAREMSP2DSeamHeavy(t *testing.T) {
	for _, vertical := range []bool{false, true} {
		img := dataset.Stripes(96, 96, 1, 1, vertical)
		ref, nRef := core.AREMSP(img)
		lm, n := core.PAREMSP2D(img, 5, 5, 8)
		if n != nRef {
			t.Fatalf("stripes vertical=%v: n=%d want %d", vertical, n, nRef)
		}
		if err := stats.Equivalent(lm, ref); err != nil {
			t.Fatal(err)
		}
	}
}
