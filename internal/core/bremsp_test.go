package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/binimg"
	"repro/internal/core"
	"repro/internal/stats"
)

// TestBitScanDifferential is the property test for the bit-packed pipeline:
// BREMSP and PBREMSP must produce label maps equivalent (up to relabeling)
// to CCLREMSP on random images across the density range 1-99%, non-word-
// multiple widths, and degenerate 1-pixel-tall/wide rasters.
func TestBitScanDifferential(t *testing.T) {
	widths := []int{1, 3, 17, 63, 64, 65, 127, 129}
	heights := []int{1, 2, 3, 31, 64}
	densities := []float64{0.01, 0.05, 0.25, 0.50, 0.75, 0.95, 0.99}
	rng := rand.New(rand.NewSource(42))
	for _, w := range widths {
		for _, h := range heights {
			for _, d := range densities {
				img := binimg.New(w, h)
				for i := range img.Pix {
					if rng.Float64() < d {
						img.Pix[i] = 1
					}
				}
				ref, nRef := core.CCLREMSP(img)
				checkLabeling(t, "BREMSP", img, ref, nRef, func() (*binimg.LabelMap, int) {
					return core.BREMSP(img)
				})
				for _, threads := range []int{1, 2, 3, 7} {
					checkLabeling(t, "PBREMSP", img, ref, nRef, func() (*binimg.LabelMap, int) {
						return core.PBREMSP(img, threads)
					})
				}
			}
		}
	}
}

func checkLabeling(t *testing.T, name string, img *binimg.Image, ref *binimg.LabelMap, nRef int, run func() (*binimg.LabelMap, int)) {
	t.Helper()
	lm, n := run()
	if n != nRef {
		t.Fatalf("%s on %dx%d: %d components, want %d\n%s", name, img.Width, img.Height, n, nRef, img)
	}
	if err := stats.Equivalent(lm, ref); err != nil {
		t.Fatalf("%s on %dx%d: %v\n%s\ngot:\n%s\nwant:\n%s", name, img.Width, img.Height, err, img, lm, ref)
	}
	if err := stats.Validate(img, lm, n, true); err != nil {
		t.Fatalf("%s on %dx%d: %v\n%s", name, img.Width, img.Height, err, img)
	}
}

// TestBitScanFixtures pins the structured cases where run merging differs
// most from pixel scanning.
func TestBitScanFixtures(t *testing.T) {
	cases := []struct {
		name string
		art  string
		want int
	}{
		{"empty", `...`, 0},
		{"full row", `#####`, 1},
		{"single pixel column", `
			#
			.
			#`, 2},
		{"diagonal", `
			#..
			.#.
			..#`, 1},
		{"bridge", `
			##.##
			..#..
			##.##`, 1},
		{"nested rings", `
			#######
			#.....#
			#.###.#
			#.#.#.#
			#.###.#
			#.....#
			#######`, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := binimg.MustParse(tc.art)
			if _, n := core.BREMSP(img); n != tc.want {
				t.Errorf("BREMSP: %d components, want %d", n, tc.want)
			}
			if _, n := core.PBREMSP(img, 3); n != tc.want {
				t.Errorf("PBREMSP: %d components, want %d", n, tc.want)
			}
		})
	}
}

// TestBREMSPScratchReuse relabels differently-sized images through one
// Scratch and label map, the service engine's pooling pattern.
func TestBREMSPScratchReuse(t *testing.T) {
	sc := &core.Scratch{}
	lm := &binimg.LabelMap{}
	rng := rand.New(rand.NewSource(7))
	for _, dim := range [][2]int{{65, 65}, {5, 5}, {128, 32}, {1, 9}, {33, 77}} {
		img := binimg.New(dim[0], dim[1])
		for i := range img.Pix {
			if rng.Float64() < 0.5 {
				img.Pix[i] = 1
			}
		}
		ref, nRef := baseline.FloodFill(img, baseline.Conn8)
		if n := core.BREMSPInto(img, lm, sc); n != nRef {
			t.Fatalf("BREMSPInto %dx%d: %d components, want %d", dim[0], dim[1], n, nRef)
		}
		if err := stats.Equivalent(lm, ref); err != nil {
			t.Fatalf("BREMSPInto %dx%d: %v", dim[0], dim[1], err)
		}
		if n, _ := core.PBREMSPTimedInto(img, lm, sc, core.Options{Threads: 4}); n != nRef {
			t.Fatalf("PBREMSPTimedInto %dx%d: %d components, want %d", dim[0], dim[1], n, nRef)
		}
		if err := stats.Equivalent(lm, ref); err != nil {
			t.Fatalf("PBREMSPTimedInto %dx%d: %v", dim[0], dim[1], err)
		}
	}
}

// FuzzBitScanAgainstFloodFill mirrors FuzzLabelersAgainstFloodFill for the
// bit-packed algorithms.
func FuzzBitScanAgainstFloodFill(f *testing.F) {
	f.Add([]byte{3, 1, 0, 1, 0, 1, 0, 1, 0, 1})
	f.Add([]byte{1, 1, 1, 1})
	f.Add([]byte{8, 0xFF, 0x00, 0xAA, 0x55})
	f.Add([]byte{31, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		w := int(data[0])%96 + 1 // cross the 64-pixel word boundary regularly
		body := data[1:]
		if len(body) > 96*32 {
			body = body[:96*32]
		}
		h := (len(body) + w - 1) / w
		if h == 0 {
			return
		}
		img := binimg.New(w, h)
		for i := range body {
			img.Pix[i] = body[i] & 1
		}
		ref, nRef := baseline.FloodFill(img, baseline.Conn8)
		for name, run := range map[string]func(*binimg.Image) (*binimg.LabelMap, int){
			"BREMSP":   core.BREMSP,
			"PBREMSP3": func(im *binimg.Image) (*binimg.LabelMap, int) { return core.PBREMSP(im, 3) },
		} {
			lm, n := run(img)
			if n != nRef {
				t.Fatalf("%s: %d components, oracle %d\n%s", name, n, nRef, img)
			}
			if err := stats.Equivalent(lm, ref); err != nil {
				t.Fatalf("%s: %v\n%s", name, err, img)
			}
		}
	})
}
