package core

import "testing"

// TestChunkStartsInvariants pins the chunk geometry PAREMSP's correctness
// rests on: chunks cover [0, h) exactly, every chunk starts on an even row
// (whole row pairs), and pair counts differ by at most one across chunks.
func TestChunkStartsInvariants(t *testing.T) {
	for h := 1; h <= 70; h++ {
		numPairs := (h + 1) / 2
		for threads := 1; threads <= numPairs; threads++ {
			starts := chunkStarts(numPairs, threads, h)
			if len(starts) != threads+1 {
				t.Fatalf("h=%d threads=%d: %d boundaries, want %d", h, threads, len(starts), threads+1)
			}
			if starts[0] != 0 || starts[threads] != h {
				t.Fatalf("h=%d threads=%d: range [%d, %d), want [0, %d)", h, threads, starts[0], starts[threads], h)
			}
			minPairs, maxPairs := 1<<30, 0
			for c := 0; c < threads; c++ {
				if starts[c]%2 != 0 {
					t.Fatalf("h=%d threads=%d: chunk %d starts on odd row %d", h, threads, c, starts[c])
				}
				if starts[c+1] <= starts[c] {
					t.Fatalf("h=%d threads=%d: empty chunk %d (%d..%d)", h, threads, c, starts[c], starts[c+1])
				}
				pairs := (starts[c+1] - starts[c] + 1) / 2
				if pairs < minPairs {
					minPairs = pairs
				}
				if pairs > maxPairs {
					maxPairs = pairs
				}
			}
			if maxPairs-minPairs > 1 {
				t.Fatalf("h=%d threads=%d: pair counts unbalanced (%d..%d)", h, threads, minPairs, maxPairs)
			}
		}
	}
}

// TestMergeFuncVariants exercises both merger constructors directly.
func TestMergeFuncVariants(t *testing.T) {
	p := []Label{0, 1, 2, 3}
	merge := mergeFunc(Options{Merger: MergerCAS}, p, &Scratch{})
	merge(2, 3)
	if p[3] != 2 {
		t.Fatalf("CAS merge did not unite: %v", p)
	}
	p2 := []Label{0, 1, 2, 3}
	mergeL := mergeFunc(Options{Merger: MergerLocked, LockStripes: 8}, p2, &Scratch{})
	mergeL(1, 3)
	if p2[3] != 1 {
		t.Fatalf("locked merge did not unite: %v", p2)
	}
}
