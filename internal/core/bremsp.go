// Bit-packed variants of the paper's algorithms (beyond the paper): BREMSP is
// AREMSP with the byte-per-pixel scan replaced by a word-parallel run scan
// over a 1-bit-per-pixel raster, and PBREMSP parallelizes it with PAREMSP's
// chunked disjoint-label-range / boundary-merge / flatten machinery. The scan
// phase — which dominates PAREMSP's runtime (the paper's Fig. 5a plots its
// speedup alone) — touches 64 pixels per word load and calls the union-find
// sink per run instead of per pixel, and the labeling phase writes the final
// raster run-by-run instead of pixel-by-pixel.

package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/binimg"
	"repro/internal/scan"
	"repro/internal/unionfind"
)

// BREMSP is the bit-packed sequential algorithm: pack to 1 bpp, run-based
// scan (sink per run), FLATTEN, run-by-run labeling. Returns the final label
// map (consecutive labels 1..n, background 0) and n.
func BREMSP(img *binimg.Image) (*binimg.LabelMap, int) {
	lm := &binimg.LabelMap{}
	n := BREMSPInto(img, lm, nil)
	return lm, n
}

// BREMSPInto is BREMSP labeling into a caller-provided label map (reshaped
// with Reset) and drawing the bitmap, run and equivalence buffers from sc
// (nil allocates fresh ones). Returns the component count.
func BREMSPInto(img *binimg.Image, lm *binimg.LabelMap, sc *Scratch) int {
	n, _ := BREMSPIntoCtx(context.Background(), img, lm, sc)
	return n
}

// BREMSPIntoCtx is BREMSPInto with cooperative cancellation (the packing pass
// runs at memcpy speed and is not polled; the scan and relabel passes are).
func BREMSPIntoCtx(ctx context.Context, img *binimg.Image, lm *binimg.LabelMap, sc *Scratch) (int, error) {
	if sc == nil {
		sc = &Scratch{}
	}
	bm := sc.bitmap()
	bm.FromImage(img)
	return BREMSPBitmapIntoCtx(ctx, bm, lm, sc)
}

// BREMSPBitmapInto is BREMSP over an already-packed bitmap — the entry point
// for callers that hold the packed raster natively (the service's PBM P4 fast
// path decodes straight into one, skipping the byte raster entirely).
func BREMSPBitmapInto(bm *binimg.Bitmap, lm *binimg.LabelMap, sc *Scratch) int {
	n, _ := BREMSPBitmapIntoCtx(context.Background(), bm, lm, sc)
	return n
}

// BREMSPBitmapIntoCtx is BREMSPBitmapInto with cooperative cancellation.
func BREMSPBitmapIntoCtx(ctx context.Context, bm *binimg.Bitmap, lm *binimg.LabelMap, sc *Scratch) (int, error) {
	if sc == nil {
		sc = &Scratch{}
	}
	lm.Reset(bm.Width, bm.Height)
	if bm.Width == 0 || bm.Height == 0 {
		return 0, nil
	}
	done := ctxDone(ctx)
	sink := &RemSink{p: sc.parents(scan.MaxRunLabels(bm.Width, bm.Height))}
	rs := sc.runSets(1)[0]
	if !scan.RunsUntil(bm, sink, 0, bm.Height, rs, done) {
		return 0, cancelErr(ctx)
	}
	n := unionfind.Flatten(sink.p, sink.count)
	if !relabelRunsUntil(lm, sink.p, rs, done) {
		return 0, cancelErr(ctx)
	}
	return int(n), nil
}

// PBREMSP labels img with the parallel bit-packed algorithm and default
// options. Returns the final label map (consecutive labels 1..n, background
// 0) and n.
func PBREMSP(img *binimg.Image, threads int) (*binimg.LabelMap, int) {
	lm := &binimg.LabelMap{}
	n, _ := PBREMSPTimedInto(img, lm, nil, Options{Threads: threads})
	return lm, n
}

// PBREMSPTimed is PBREMSP with explicit options and per-phase timings.
func PBREMSPTimed(img *binimg.Image, opt Options) (*binimg.LabelMap, int, PhaseTimes) {
	lm := &binimg.LabelMap{}
	n, times := PBREMSPTimedInto(img, lm, nil, opt)
	return lm, n, times
}

// PBREMSPTimedInto is PBREMSP labeling into a caller-provided label map and
// drawing every reusable buffer from sc. Each chunk packs its own rows into
// the shared bitmap (rows never share words, so the packing is race-free)
// before scanning them, so the packing cost parallelizes with the scan and is
// reported inside the Scan phase.
func PBREMSPTimedInto(img *binimg.Image, lm *binimg.LabelMap, sc *Scratch, opt Options) (int, PhaseTimes) {
	n, times, _ := PBREMSPTimedIntoCtx(context.Background(), img, lm, sc, opt)
	return n, times
}

// PBREMSPTimedIntoCtx is PBREMSPTimedInto with cooperative cancellation: the
// chunked scans and relabels poll ctx per row block and the driver checks ctx
// between phases. A canceled run returns ctx's error with the phase times
// accumulated so far.
func PBREMSPTimedIntoCtx(ctx context.Context, img *binimg.Image, lm *binimg.LabelMap, sc *Scratch, opt Options) (int, PhaseTimes, error) {
	if sc == nil {
		sc = &Scratch{}
	}
	bm := sc.bitmap()
	bm.Reset(img.Width, img.Height)
	return pbremsp(ctx, bm, img, lm, sc, opt)
}

// PBREMSPBitmapTimedInto is PBREMSPTimedInto over an already-packed bitmap.
func PBREMSPBitmapTimedInto(bm *binimg.Bitmap, lm *binimg.LabelMap, sc *Scratch, opt Options) (int, PhaseTimes) {
	n, times, _ := PBREMSPBitmapTimedIntoCtx(context.Background(), bm, lm, sc, opt)
	return n, times
}

// PBREMSPBitmapTimedIntoCtx is PBREMSPBitmapTimedInto with cooperative
// cancellation.
func PBREMSPBitmapTimedIntoCtx(ctx context.Context, bm *binimg.Bitmap, lm *binimg.LabelMap, sc *Scratch, opt Options) (int, PhaseTimes, error) {
	if sc == nil {
		sc = &Scratch{}
	}
	return pbremsp(ctx, bm, nil, lm, sc, opt)
}

// pbremsp is the shared parallel driver. When src is non-nil each chunk packs
// its rows of src into bm (already Reset) before scanning.
//
// Phase I divides the rows into Threads chunks and runs the run-based scan on
// every chunk concurrently, each chunk recording its labeled runs into its
// own RunSet. Chunk label ranges are disjoint (the chunk starting at row r
// draws from r*RunLabelStride(w)), so the shared parent array needs no
// synchronization during the scan. Phase II merges across chunk seams at run
// granularity: the first-row runs of every chunk but the first are united
// with the overlapping last-row runs of the chunk above using the concurrent
// MERGER. Phase III runs the sparse FLATTEN; phase IV writes the final label
// map run-by-run.
func pbremsp(ctx context.Context, bm *binimg.Bitmap, src *binimg.Image, lm *binimg.LabelMap, sc *Scratch, opt Options) (int, PhaseTimes, error) {
	threads := opt.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	w, h := bm.Width, bm.Height
	lm.Reset(w, h)
	if w == 0 || h == 0 {
		return 0, PhaseTimes{}, nil
	}
	if threads > h {
		threads = h
	}
	starts := rowChunkStarts(h, threads)

	stride := Label(scan.RunLabelStride(w))
	maxLabel := Label(h) * stride
	p := sc.parents(int(maxLabel))
	runSets := sc.runSets(threads)

	done := ctxDone(ctx)
	var times PhaseTimes
	var stop atomic.Bool

	// Phase I: concurrent chunk packs + run scans.
	t0 := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < threads; c++ {
		rowStart, rowEnd := starts[c], starts[c+1]
		rs := runSets[c]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if src != nil {
				bm.FromImageRows(src, rowStart, rowEnd)
			}
			sink := NewRemSinkShared(p, Label(rowStart)*stride)
			if !scan.RunsUntil(bm, sink, rowStart, rowEnd, rs, done) {
				stop.Store(true)
			}
		}()
	}
	wg.Wait()
	times.Scan = time.Since(t0)
	if stop.Load() {
		return 0, times, cancelErr(ctx)
	}

	// Phase II: run-granular boundary merges.
	t0 = time.Now()
	merge := mergeFunc(opt, p, sc)
	mergeChunk := func(c int) {
		row := starts[c]
		scan.MergeRuns(runSets[c].RowRuns(row), runSets[c-1].RowRuns(row-1), merge)
	}
	if opt.SequentialBoundary {
		for c := 1; c < threads; c++ {
			mergeChunk(c)
		}
	} else {
		for c := 1; c < threads; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				mergeChunk(c)
			}()
		}
		wg.Wait()
	}
	times.Merge = time.Since(t0)
	if stopped(done) {
		return 0, times, cancelErr(ctx)
	}

	// Phase III: FLATTEN over the sparse label space.
	t0 = time.Now()
	n := unionfind.FlattenSparse(p, maxLabel)
	times.Flatten = time.Since(t0)
	if stopped(done) {
		return 0, times, cancelErr(ctx)
	}

	// Phase IV: run-by-run relabel, one goroutine per chunk.
	t0 = time.Now()
	if opt.SequentialRelabel || threads == 1 {
		for c := 0; c < threads; c++ {
			if !relabelRunsUntil(lm, p, runSets[c], done) {
				stop.Store(true)
				break
			}
		}
	} else {
		for c := 0; c < threads; c++ {
			rs := runSets[c]
			wg.Add(1)
			go func() {
				defer wg.Done()
				if !relabelRunsUntil(lm, p, rs, done) {
					stop.Store(true)
				}
			}()
		}
		wg.Wait()
	}
	times.Relabel = time.Since(t0)
	if stop.Load() {
		return 0, times, cancelErr(ctx)
	}

	return int(n), times, nil
}

// rowChunkStarts splits h rows over threads chunks as evenly as possible
// (len = threads+1; no row-pair constraint — the run scan is single-row).
func rowChunkStarts(h, threads int) []int {
	starts := make([]int, threads+1)
	base, rem := h/threads, h%threads
	row := 0
	for c := 0; c < threads; c++ {
		starts[c] = row
		row += base
		if c < rem {
			row++
		}
	}
	starts[threads] = h
	return starts
}

// relabelRuns writes final labels into lm for every run of rs: one parent
// lookup and one contiguous fill per run instead of a lookup per pixel
// (labeling phase, run-granular).
func relabelRuns(lm *binimg.LabelMap, p []Label, rs *scan.RunSet) {
	l := lm.L
	w := lm.Width
	for i, rows := 0, rs.Rows(); i < rows; i++ {
		y := rs.Row0 + i
		base := y * w
		for _, r := range rs.RowRuns(y) {
			final := p[r.Label]
			seg := l[base+int(r.Start) : base+int(r.End)]
			for k := range seg {
				seg[k] = final
			}
		}
	}
}
