package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/binimg"
	"repro/internal/scan"
	"repro/internal/unionfind"
)

// MergerKind selects the concurrent union used in PAREMSP's boundary phase.
type MergerKind int

// Boundary-merge implementations.
const (
	// MergerLocked is the paper's Algorithm 8: lock-based concurrent REM
	// union (OpenMP lock array reproduced with striped sync.Mutex).
	MergerLocked MergerKind = iota
	// MergerCAS is the idiomatic lock-free variant built on
	// atomic.CompareAndSwapInt32 (ablation alternative).
	MergerCAS
)

// String names the merger for benchmark output.
func (m MergerKind) String() string {
	switch m {
	case MergerLocked:
		return "locked"
	case MergerCAS:
		return "cas"
	default:
		return fmt.Sprintf("MergerKind(%d)", int(m))
	}
}

// Options configures PAREMSP.
type Options struct {
	// Threads is the number of worker goroutines (the paper's OpenMP thread
	// count). 0 selects runtime.GOMAXPROCS(0).
	Threads int
	// Merger selects the concurrent boundary union (default MergerLocked,
	// the paper's choice).
	Merger MergerKind
	// LockStripes sizes the striped lock table for MergerLocked; 0 selects
	// unionfind.DefaultLockStripes. Must be a power of two.
	LockStripes int
	// SequentialBoundary forces the boundary merge loops onto one goroutine
	// (ablation; the paper parallelizes them with "pragma omp for").
	SequentialBoundary bool
	// SequentialRelabel forces the final labeling pass onto one goroutine
	// (ablation; the paper parallelizes it).
	SequentialRelabel bool
}

// PhaseTimes records per-phase wall time of one PAREMSP run. The paper's
// Fig. 5a plots speedup of Scan ("local") alone; Fig. 5b plots
// Scan+Merge ("local + merge").
type PhaseTimes struct {
	Scan    time.Duration // phase I: chunked AREMSP scans
	Merge   time.Duration // phase II: boundary-row merges
	Flatten time.Duration // phase III: FLATTEN over the label space
	Relabel time.Duration // phase IV: provisional -> final rewrite
}

// Total returns the sum of all phases.
func (p PhaseTimes) Total() time.Duration {
	return p.Scan + p.Merge + p.Flatten + p.Relabel
}

// Local returns the paper's "local" quantity (scan phase only, Fig. 5a).
func (p PhaseTimes) Local() time.Duration { return p.Scan }

// LocalMerge returns the paper's "local + merge" quantity (Fig. 5b).
func (p PhaseTimes) LocalMerge() time.Duration { return p.Scan + p.Merge }

// PAREMSP labels img with the paper's parallel algorithm (Algorithm 7) and
// default options. Returns the final label map (consecutive labels 1..n,
// background 0) and n.
func PAREMSP(img *binimg.Image, threads int) (*binimg.LabelMap, int) {
	lm, n, _ := PAREMSPTimed(img, Options{Threads: threads})
	return lm, n
}

// PAREMSPTimed is PAREMSP with explicit options and per-phase timings.
//
// Phase I divides the image row-wise into Threads chunks of whole row pairs
// (the scan processes two rows at a time) and runs the AREMSP scan on every
// chunk concurrently. Chunk label ranges are disjoint: the chunk starting at
// row r draws provisional labels from (r/2)*stride+1 where stride is the
// per-row-pair label budget, so no two pixels share a provisional label
// across chunks and the shared parent array needs no synchronization during
// the scan.
//
// Phase II merges across chunk seams: for every boundary row (the first row
// of every chunk but the first) and every foreground pixel e there, its
// already-labeled neighbors b, a, c in the row above belong to the previous
// chunk; each adjacency is united with the concurrent MERGER. Boundary rows
// are processed in parallel.
//
// Phase III runs FLATTEN (sparse form: untouched label slots are skipped so
// final labels stay consecutive). Phase IV rewrites the label raster.
func PAREMSPTimed(img *binimg.Image, opt Options) (*binimg.LabelMap, int, PhaseTimes) {
	lm := &binimg.LabelMap{}
	n, times := PAREMSPTimedInto(img, lm, nil, opt)
	return lm, n, times
}

// PAREMSPTimedInto is PAREMSPTimed labeling into a caller-provided label map
// (reshaped with Reset) and drawing the shared parent array from sc (nil
// allocates a fresh one). Reusing lm and sc across calls makes sustained
// labeling allocation-free; this is the entry point the service layer's
// buffer pools feed.
func PAREMSPTimedInto(img *binimg.Image, lm *binimg.LabelMap, sc *Scratch, opt Options) (int, PhaseTimes) {
	n, times, _ := PAREMSPTimedIntoCtx(context.Background(), img, lm, sc, opt)
	return n, times
}

// PAREMSPTimedIntoCtx is PAREMSPTimedInto with cooperative cancellation: the
// chunked scans and relabels poll ctx per row block and the driver checks ctx
// between phases. A canceled run returns ctx's error with the phase times
// accumulated so far.
func PAREMSPTimedIntoCtx(ctx context.Context, img *binimg.Image, lm *binimg.LabelMap, sc *Scratch, opt Options) (int, PhaseTimes, error) {
	threads := opt.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if sc == nil {
		sc = &Scratch{}
	}
	w, h := img.Width, img.Height
	lm.Reset(w, h)
	if w == 0 || h == 0 {
		return 0, PhaseTimes{}, nil
	}

	// Chunk geometry: numiter row pairs split across threads, each chunk an
	// even number of rows (paper Alg. 7 lines 2-7). A short image caps the
	// useful thread count.
	numPairs := (h + 1) / 2
	if threads > numPairs {
		threads = numPairs
	}
	starts := chunkStarts(numPairs, threads, h)

	stride := Label(scan.RowPairLabelStride(w))
	maxLabel := Label(numPairs) * stride
	p := sc.parents(int(maxLabel))

	done := ctxDone(ctx)
	var times PhaseTimes
	var stop atomic.Bool

	// Phase I: concurrent chunk scans.
	t0 := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < len(starts)-1; c++ {
		rowStart, rowEnd := starts[c], starts[c+1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			offset := Label(rowStart/2) * stride
			sink := NewRemSinkShared(p, offset)
			if !scan.PairRowsUntil(img, lm, sink, rowStart, rowEnd, done) {
				stop.Store(true)
			}
		}()
	}
	wg.Wait()
	times.Scan = time.Since(t0)
	if stop.Load() {
		return 0, times, cancelErr(ctx)
	}

	// Phase II: boundary merges.
	t0 = time.Now()
	merge := mergeFunc(opt, p, sc)
	boundaries := starts[1 : len(starts)-1]
	if opt.SequentialBoundary {
		for _, row := range boundaries {
			mergeBoundaryRow(img, lm, merge, row)
		}
	} else {
		for _, row := range boundaries {
			row := row
			wg.Add(1)
			go func() {
				defer wg.Done()
				mergeBoundaryRow(img, lm, merge, row)
			}()
		}
		wg.Wait()
	}
	times.Merge = time.Since(t0)
	if stopped(done) {
		return 0, times, cancelErr(ctx)
	}

	// Phase III: FLATTEN over the sparse label space.
	t0 = time.Now()
	n := unionfind.FlattenSparse(p, maxLabel)
	times.Flatten = time.Since(t0)
	if stopped(done) {
		return 0, times, cancelErr(ctx)
	}

	// Phase IV: relabel.
	t0 = time.Now()
	var relabeled bool
	if opt.SequentialRelabel || threads == 1 {
		relabeled = relabelSeqUntil(lm, p, done)
	} else {
		relabeled = relabelParUntil(lm, p, threads, done)
	}
	times.Relabel = time.Since(t0)
	if !relabeled {
		return 0, times, cancelErr(ctx)
	}

	return int(n), times, nil
}

// chunkStarts splits numPairs row pairs over threads chunks as evenly as
// possible and returns the chunk start rows plus the terminal row h
// (len = threads+1). Every chunk gets an even number of rows except possibly
// the last when h is odd.
func chunkStarts(numPairs, threads, h int) []int {
	starts := make([]int, threads+1)
	base, rem := numPairs/threads, numPairs%threads
	pair := 0
	for c := 0; c < threads; c++ {
		starts[c] = pair * 2
		pair += base
		if c < rem {
			pair++
		}
	}
	starts[threads] = h
	return starts
}

// mergeFunc returns the configured concurrent union bound to p, drawing the
// lock table from sc so repeated labelings reuse it.
func mergeFunc(opt Options, p []Label, sc *Scratch) func(x, y Label) {
	switch opt.Merger {
	case MergerCAS:
		return func(x, y Label) { unionfind.MergeCAS(p, x, y) }
	default:
		lt := sc.lockTable(opt.LockStripes)
		return func(x, y Label) { unionfind.MergeLocked(p, lt, x, y) }
	}
}

// mergeBoundaryRow unites every foreground pixel of the given chunk-start
// row with its foreground neighbors b, a, c in the row above (which belongs
// to the previous chunk). This is the paper's Alg. 7 lines 10-20.
func mergeBoundaryRow(img *binimg.Image, lm *binimg.LabelMap, merge func(x, y Label), row int) {
	w := img.Width
	pix := img.Pix
	lab := lm.L
	base := row * w
	up := base - w
	for x := 0; x < w; x++ {
		if pix[base+x] == 0 {
			continue
		}
		le := lab[base+x]
		if pix[up+x] != 0 { // b
			merge(le, lab[up+x])
			continue // b's row-above neighbors already cover a and c
		}
		if x > 0 && pix[up+x-1] != 0 { // a
			merge(le, lab[up+x-1])
		}
		if x+1 < w && pix[up+x+1] != 0 { // c
			merge(le, lab[up+x+1])
		}
	}
}

// relabelParUntil rewrites provisional labels to final labels with threads
// goroutines over row bands, each polling done per row block; reports whether
// every band ran to completion.
func relabelParUntil(lm *binimg.LabelMap, p []Label, threads int, done <-chan struct{}) bool {
	l := lm.L
	n := len(l)
	chunk := (n + threads - 1) / threads
	block := relabelBlock(lm.Width)
	var wg sync.WaitGroup
	var stop atomic.Bool
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(part []Label) {
			defer wg.Done()
			if !relabelSliceUntil(part, p, block, done) {
				stop.Store(true)
			}
		}(l[lo:hi])
	}
	wg.Wait()
	return !stop.Load()
}
