package equiv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/unionfind"
)

func TestNewLabelConsecutive(t *testing.T) {
	tb := New(4)
	if tb.Count() != 0 {
		t.Fatalf("fresh Count = %d, want 0", tb.Count())
	}
	for want := Label(1); want <= 4; want++ {
		if got := tb.NewLabel(); got != want {
			t.Fatalf("NewLabel = %d, want %d", got, want)
		}
	}
	if tb.Count() != 4 {
		t.Fatalf("Count = %d, want 4", tb.Count())
	}
}

func TestFreshLabelsAreSingletons(t *testing.T) {
	tb := New(3)
	a, b := tb.NewLabel(), tb.NewLabel()
	if tb.Rep(a) != a || tb.Rep(b) != b {
		t.Fatal("fresh labels are not their own representatives")
	}
	if got := tb.SetMembers(a); len(got) != 1 || got[0] != a {
		t.Fatalf("SetMembers(%d) = %v", a, got)
	}
}

func TestResolveSmallerRepWins(t *testing.T) {
	tb := New(4)
	a := tb.NewLabel() // 1
	b := tb.NewLabel() // 2
	if r := tb.Resolve(b, a); r != a {
		t.Fatalf("Resolve rep = %d, want %d", r, a)
	}
	if tb.Rep(b) != a {
		t.Fatalf("Rep(%d) = %d, want %d", b, tb.Rep(b), a)
	}
}

func TestResolveIdempotent(t *testing.T) {
	tb := New(4)
	a, b := tb.NewLabel(), tb.NewLabel()
	tb.Resolve(a, b)
	members := tb.SetMembers(a)
	tb.Resolve(a, b)
	tb.Resolve(b, a)
	after := tb.SetMembers(a)
	if len(members) != len(after) {
		t.Fatalf("re-resolving changed the set: %v -> %v", members, after)
	}
}

func TestResolveMergesLists(t *testing.T) {
	tb := New(6)
	for i := 0; i < 6; i++ {
		tb.NewLabel()
	}
	tb.Resolve(1, 3)
	tb.Resolve(2, 4)
	tb.Resolve(3, 2) // merges {1,3} and {2,4}
	got := tb.SetMembers(1)
	if len(got) != 4 {
		t.Fatalf("merged set = %v, want 4 members", got)
	}
	for _, m := range got {
		if tb.Rep(m) != 1 {
			t.Fatalf("member %d has rep %d, want 1", m, tb.Rep(m))
		}
	}
	if tb.Rep(5) != 5 || tb.Rep(6) != 6 {
		t.Fatal("untouched labels disturbed")
	}
}

func TestRepIsAlwaysMinimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		tb := New(n)
		for i := 0; i < n; i++ {
			tb.NewLabel()
		}
		for k := 0; k < 2*n; k++ {
			tb.Resolve(Label(1+rng.Intn(n)), Label(1+rng.Intn(n)))
		}
		for l := Label(1); l <= Label(n); l++ {
			r := tb.Rep(l)
			if r > l {
				return false // representative must be the set minimum
			}
			for _, m := range tb.SetMembers(l) {
				if m < r {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMatchesUnionFind drives the He table and REMSP with identical merges
// and compares the partitions.
func TestMatchesUnionFind(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(150)
		tb := New(n)
		p := make([]Label, n+1)
		for i := range p {
			p[i] = Label(i)
		}
		for i := 0; i < n; i++ {
			tb.NewLabel()
		}
		for k := 0; k < 2*n; k++ {
			x, y := Label(1+rng.Intn(n)), Label(1+rng.Intn(n))
			tb.Resolve(x, y)
			unionfind.MergeRemSP(p, x, y)
		}
		for k := 0; k < 4*n; k++ {
			a, b := Label(1+rng.Intn(n)), Label(1+rng.Intn(n))
			if (tb.Rep(a) == tb.Rep(b)) != unionfind.Same(p, a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFlattenConsecutive(t *testing.T) {
	tb := New(5)
	for i := 0; i < 5; i++ {
		tb.NewLabel()
	}
	tb.Resolve(1, 3)
	tb.Resolve(4, 5)
	n := tb.Flatten()
	if n != 3 {
		t.Fatalf("Flatten = %d, want 3", n)
	}
	want := map[Label]Label{1: 1, 2: 2, 3: 1, 4: 3, 5: 3}
	for l, w := range want {
		if tb.Rep(l) != w {
			t.Fatalf("after Flatten Rep(%d) = %d, want %d", l, tb.Rep(l), w)
		}
	}
}

func TestFlattenEmpty(t *testing.T) {
	tb := New(0)
	if n := tb.Flatten(); n != 0 {
		t.Fatalf("Flatten of empty table = %d, want 0", n)
	}
}

// TestFlattenMatchesUnionFindFlatten: identical merge histories must produce
// identical final label assignments across the two equivalence machineries
// (both number sets by their minimum member, in increasing order).
func TestFlattenMatchesUnionFindFlatten(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		tb := New(n)
		p := make([]Label, n+1)
		for i := range p {
			p[i] = Label(i)
		}
		for i := 0; i < n; i++ {
			tb.NewLabel()
		}
		for k := 0; k < 2*n; k++ {
			x, y := Label(1+rng.Intn(n)), Label(1+rng.Intn(n))
			tb.Resolve(x, y)
			unionfind.MergeRemSP(p, x, y)
		}
		nt := tb.Flatten()
		np := unionfind.Flatten(p, Label(n))
		if nt != np {
			return false
		}
		for l := Label(1); l <= Label(n); l++ {
			if tb.Rep(l) != p[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
