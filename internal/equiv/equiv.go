// Package equiv implements the label-equivalence data structure of
// He-Chao-Suzuki (IEEE TIP 2008), used by the RUN and ARUN baseline
// algorithms: three linear arrays instead of a parent-pointer union-find.
//
//   - rtable[l]: the representative (smallest) label of the set containing l,
//     maintained eagerly — resolving is O(1) lookups during the scan.
//   - next[l]: the next label in l's set, or -1 at the end.
//   - tail[r]: the last label of the set whose representative is r.
//
// A Resolve(u, v) that actually merges walks the larger-representative set's
// linked list, relabeling each member's rtable entry, then splices that list
// onto the smaller set's tail. Cost is linear in the merged-away set, which
// is why union-find (REMSP) beats it on merge-heavy inputs — exactly the
// effect Table II measures.
package equiv

import "repro/internal/binimg"

// Label aliases the repository-wide label type.
type Label = binimg.Label

// Table is the three-array equivalence structure. Label 0 is reserved for
// background and never enters any set.
type Table struct {
	rtable []Label
	next   []Label
	tail   []Label
}

// New returns a table with capacity preallocated for n labels.
func New(n int) *Table {
	t := &Table{
		rtable: make([]Label, 1, n+1),
		next:   make([]Label, 1, n+1),
		tail:   make([]Label, 1, n+1),
	}
	// Slot 0: background. rtable[0]=0 so background lookups stay 0.
	return t
}

// NewLabel creates the next provisional label as a fresh singleton set and
// returns it. Labels are handed out consecutively starting at 1.
func (t *Table) NewLabel() Label {
	l := Label(len(t.rtable))
	t.rtable = append(t.rtable, l)
	t.next = append(t.next, -1)
	t.tail = append(t.tail, l)
	return l
}

// Count returns the number of provisional labels created so far.
func (t *Table) Count() Label { return Label(len(t.rtable) - 1) }

// Rep returns the current representative of l's set in O(1).
func (t *Table) Rep(l Label) Label { return t.rtable[l] }

// Resolve records that u and v are equivalent, merging their sets so the
// smaller representative survives. Returns the surviving representative.
func (t *Table) Resolve(u, v Label) Label {
	ru, rv := t.rtable[u], t.rtable[v]
	if ru == rv {
		return ru
	}
	if ru > rv {
		ru, rv = rv, ru
	}
	// Relabel every member of rv's set, then splice its list after ru's tail.
	for i := rv; i != -1; i = t.next[i] {
		t.rtable[i] = ru
	}
	t.next[t.tail[ru]] = rv
	t.tail[ru] = t.tail[rv]
	return ru
}

// Flatten assigns consecutive final labels 1..n to the representatives and
// rewrites rtable so rtable[l] is l's final label. Mirrors the paper's
// FLATTEN postconditions so RUN/ARUN and the REMSP-based algorithms produce
// directly comparable label maps. Returns n.
func (t *Table) Flatten() Label {
	count := t.Count()
	final := make([]Label, count+1)
	var k Label = 1
	for l := Label(1); l <= count; l++ {
		r := t.rtable[l]
		if r == l {
			final[l] = k
			k++
		}
	}
	for l := Label(1); l <= count; l++ {
		t.rtable[l] = final[t.rtable[l]]
	}
	return k - 1
}

// SetMembers returns the members of l's set in list order (for tests).
func (t *Table) SetMembers(l Label) []Label {
	var out []Label
	for i := t.rtable[l]; i != -1; i = t.next[i] {
		out = append(out, i)
	}
	return out
}
