//go:build !race

package band_test

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
