//go:build race

package band_test

// raceEnabled reports whether the race detector is compiled in; the memory
// acceptance test skips under it (instrumentation multiplies both the
// runtime and every allocation, invalidating the heap bound).
const raceEnabled = true
