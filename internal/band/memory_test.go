package band_test

import (
	"io"
	"runtime"
	"testing"

	"repro/internal/band"
	"repro/internal/pnm"
	"repro/internal/scan"
)

// stripeP4 generates a synthetic raw-PBM stream on the fly — header first,
// then height copies of one repeating row — so the test never materializes
// the input (a 16384^2 image is 32 MiB packed, 256 MiB as a byte raster).
// The pattern is vertical stripes with one foreground column every eight
// pixels: every component spans the full image height and therefore crosses
// every band seam.
type stripeP4 struct {
	header []byte
	row    []byte
	hdrOff int
	rowOff int
	rows   int // rows not yet fully emitted
}

func newStripeP4(w, h int) *stripeP4 {
	row := make([]byte, (w+7)/8)
	for i := range row {
		row[i] = 0x80 // P4 is MSB-first: bit 0x80 is pixel x%8 == 0
	}
	return &stripeP4{
		header: []byte("P4\n" + itoa(w) + " " + itoa(h) + "\n"),
		row:    row,
		rows:   h,
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func (s *stripeP4) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if s.hdrOff < len(s.header) {
			c := copy(p[n:], s.header[s.hdrOff:])
			s.hdrOff += c
			n += c
			continue
		}
		if s.rows == 0 {
			if n == 0 {
				return 0, io.EOF
			}
			return n, nil
		}
		c := copy(p[n:], s.row[s.rowOff:])
		s.rowOff += c
		n += c
		if s.rowOff == len(s.row) {
			s.rowOff = 0
			s.rows--
		}
	}
	return n, nil
}

// TestStreamFixedMemory16k is the acceptance test for the streaming memory
// model: labeling a synthetic 16384x16384 P4 input (268M pixels; the byte
// raster alone would be 256 MiB, the label map 1 GiB) must allocate less
// than 3x the working set of ONE band — bitmap, run set, and band-local
// equivalence tables. The band engine allocates each buffer once and reuses
// it, so the cumulative allocation reported by runtime.ReadMemStats bounds
// the peak heap: peak <= baseline + (TotalAlloc after - TotalAlloc before).
func TestStreamFixedMemory16k(t *testing.T) {
	if testing.Short() {
		t.Skip("268M-pixel stream; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation invalidates the allocation bound")
	}
	const w, h = 16384, 16384
	const bandRows = band.DefaultBandRows

	// One band's working set. Runs: the stripe pattern has one run per 8
	// pixels per row; the run buffer grows geometrically, so allow 2x its
	// final size for append garbage. The equivalence tables (pl and glob,
	// one Label each per possible run of a band) are the O(equivalence
	// table) term of the memory model.
	var (
		bitmapBytes = int64((w / 64) * 8 * bandRows)
		tableBytes  = int64(2 * 4 * (scan.MaxRunLabels(w, bandRows) + 1)) // pl + glob
		runBytes    = int64(2 * 12 * (w / 8) * bandRows)
		seamBytes   = int64(12 * (w / 8))
		bandBytes   = bitmapBytes + tableBytes + runBytes + seamBytes
	)

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)

	src, err := pnm.NewBandReader(newStripeP4(w, h), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := band.Stream(src, band.Options{BandRows: bandRows})
	if err != nil {
		t.Fatal(err)
	}

	runtime.ReadMemStats(&m1)
	allocated := int64(m1.TotalAlloc - m0.TotalAlloc)
	if allocated >= 3*bandBytes {
		t.Errorf("streaming a %dx%d image allocated %d bytes, want < 3x one band (%d)",
			w, h, allocated, 3*bandBytes)
	}
	t.Logf("allocated %.1f MiB for a %.0f MiB (packed) input; one band = %.1f MiB",
		float64(allocated)/(1<<20), float64(w/8*h)/(1<<20), float64(bandBytes)/(1<<20))

	// The stripe image is fully analyzable by hand: w/8 components, each a
	// full-height 1-pixel-wide column.
	if res.NumComponents != w/8 {
		t.Fatalf("%d components, want %d", res.NumComponents, w/8)
	}
	if res.ForegroundPixels != int64(w/8)*h {
		t.Fatalf("%d foreground pixels, want %d", res.ForegroundPixels, int64(w/8)*h)
	}
	for i, c := range res.Components {
		x := 8 * i
		want := band.ComponentStats{
			Label: band.Label(i + 1),
			Area:  h,
			MinX:  x, MinY: 0, MaxX: x, MaxY: h - 1,
			CentroidX: float64(x), CentroidY: float64(h-1) / 2,
			Runs: h,
		}
		if c != want {
			t.Fatalf("component %d:\n got %+v\nwant %+v", i, c, want)
		}
	}
}
