// Package band labels rasters far larger than memory by consuming them as
// fixed-height row bands: each band is labeled with BREMSP's word-parallel
// run scan, and consecutive bands are stitched by unioning the runs of the
// two seam rows. Peak memory is O(one band + the per-band equivalence table),
// independent of the image height, so a 100k-row raster streams through the
// same few megabytes a single band needs.
//
// # Seam-merge invariant
//
// The only coupling between two consecutive bands is the pair of rows at
// their boundary: the last row of band k and the first row of band k+1.
// Under 8-connectivity, a component crosses the boundary iff a foreground
// run [s, e) of the first row of band k+1 overlaps a run [ps, pe) of the
// last row of band k with pe >= s and ps <= e — exactly the overlap
// criterion scan.Runs applies between adjacent rows inside a band, executed
// here by scan.MergeRuns over the retained seam runs. Because every
// within-band equivalence is already resolved before the seam merge (the
// band's parent array is flattened first), unioning the seam runs is
// sufficient: no pixel, run, or label of an earlier row can introduce a
// connection the seam rows do not witness.
//
// Per band the labeler:
//
//  1. run-scans the band in its own local label space (scan.Runs with a REM
//     sink over a band-sized parent array, reused across bands);
//  2. flattens the local equivalences (unionfind.Flatten);
//  3. unions the band's first-row runs with the previous band's seam runs
//     (scan.MergeRuns), attaching local roots to global component ids and
//     merging global ids that the seam proves equivalent;
//  4. folds every run into the per-component statistics accumulator — area,
//     bounding box, centroid sums, run count — so no label raster is ever
//     materialized;
//  5. retains the last row's runs, relabeled with global ids, as the seam
//     for the next band.
//
// Global state grows only with the number of components discovered (plus
// one retired id per cross-band merge), which is proportional to the result
// the caller asked for, never with the pixel count.
package band

import (
	"context"
	"fmt"
	"io"

	"repro/internal/binimg"
	"repro/internal/core"
	"repro/internal/scan"
	"repro/internal/unionfind"
)

// Label aliases the repository-wide label type.
type Label = binimg.Label

// DefaultBandRows is the band height used when Options.BandRows is zero:
// large enough that the per-band flatten and seam costs are amortized over
// many rows, small enough that typical large rasters stay in tens of
// megabytes — the per-band working set is dominated by the equivalence
// tables at ~4*width*rows bytes (about 17 MiB for a 16384-pixel-wide
// image). Extremely wide rasters should pick a smaller band.
const DefaultBandRows = 256

// Source delivers an image as consecutive row bands. pnm.BandReader is the
// production implementation (raw P4/P5 ingest).
type Source interface {
	// Width returns the image width in pixels.
	Width() int
	// Height returns the image height in pixels.
	Height() int
	// ReadBand decodes the next band of up to maxRows rows into dst
	// (reshaped with Reset) and returns the rows delivered; (0, io.EOF)
	// after the last row.
	ReadBand(dst *binimg.Bitmap, maxRows int) (int, error)
}

// Options configures Stream.
type Options struct {
	// BandRows is the band height in rows; 0 selects DefaultBandRows.
	BandRows int
	// EmitRow, when non-nil, is called once per image row, in row order,
	// with the row's foreground runs. Run labels are band-local; resolve
	// maps one to the component's provisional global id, which Result.
	// FinalLabel converts to the final 1..NumComponents numbering once the
	// stream completes. cmd/ccstream spills rows this way to produce a
	// CCL1 label stream in two sequential passes.
	EmitRow func(y int, runs []binimg.Run, resolve func(Label) Label) error
	// Ctx, when non-nil, cancels the stream cooperatively: Stream checks it
	// between bands (the natural row-block granularity of this package) and
	// returns its error once it is done. nil never cancels.
	Ctx context.Context
}

// ComponentStats is the per-component result of a streamed labeling: the
// statistics of stats.Component plus the foreground run count, computed
// run-by-run during the band scans without a label raster.
type ComponentStats struct {
	// Label is the final component number, 1..NumComponents in discovery
	// (band, then raster) order.
	Label Label
	// Area is the component's pixel count.
	Area int64
	// MinX, MinY, MaxX, MaxY are the bounding box (inclusive).
	MinX, MinY, MaxX, MaxY int
	// CentroidX, CentroidY are the mean foreground coordinates.
	CentroidX, CentroidY float64
	// Runs counts the component's maximal horizontal foreground runs.
	Runs int64
}

// Result is the outcome of one streamed labeling.
type Result struct {
	// Width, Height are the image dimensions from the source header.
	Width, Height int
	// NumComponents is the number of 8-connected components.
	NumComponents int
	// Components holds per-component statistics, indexed by Label-1.
	Components []ComponentStats
	// ForegroundPixels is the total object-pixel count (the sum of areas).
	ForegroundPixels int64

	finalOf []Label
}

// FinalLabel maps a provisional global id observed through Options.EmitRow
// to the component's final label (1..NumComponents); 0 for out-of-range ids.
func (r *Result) FinalLabel(g Label) Label {
	if g <= 0 || int(g) >= len(r.finalOf) {
		return 0
	}
	return r.finalOf[g]
}

// Stream labels the image delivered by src band by band and returns its
// component statistics. The source's full raster is never resident: only the
// current band's bitmap, run set and parent array, the seam runs, and the
// per-component accumulators are held.
func Stream(src Source, opt Options) (*Result, error) {
	w, h := src.Width(), src.Height()
	bandRows := opt.BandRows
	if bandRows <= 0 {
		bandRows = DefaultBandRows
	}
	if h > 0 && bandRows > h {
		bandRows = h
	}
	l := newLabeler(w, bandRows)
	var done <-chan struct{}
	if opt.Ctx != nil {
		done = opt.Ctx.Done()
	}
	var bm binimg.Bitmap
	y := 0
	for y < h {
		if done != nil {
			select {
			case <-done:
				return nil, opt.Ctx.Err()
			default:
			}
		}
		n, err := src.ReadBand(&bm, bandRows)
		if n > 0 {
			if bm.Width != w || bm.Height != n || n > bandRows {
				return nil, fmt.Errorf("band: source delivered a %dx%d band, want %dx%d (max %d rows)",
					bm.Width, bm.Height, w, n, bandRows)
			}
			if err2 := l.addBand(y, &bm, opt.EmitRow); err2 != nil {
				return nil, err2
			}
			y += n
		}
		if err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		if n == 0 {
			break
		}
	}
	if y != h {
		return nil, fmt.Errorf("band: source delivered %d of %d rows", y, h)
	}
	return l.finish(w, h), nil
}

// acc accumulates one component's statistics; it lives at the component's
// global DSU root and is folded into the winner on every cross-band merge.
type acc struct {
	area, sumX, sumY, runs int64
	minX, minY             int32
	maxX, maxY             int32
}

func (a *acc) addRun(y, s, e int) {
	n := int64(e - s)
	a.area += n
	a.sumX += n * int64(s+e-1) / 2 // sum of s..e-1; n*(s+e-1) is always even
	a.sumY += n * int64(y)
	a.runs++
	if int32(s) < a.minX {
		a.minX = int32(s)
	}
	if int32(e-1) > a.maxX {
		a.maxX = int32(e - 1)
	}
	if int32(y) < a.minY {
		a.minY = int32(y)
	}
	if int32(y) > a.maxY {
		a.maxY = int32(y)
	}
}

func (a *acc) fold(b *acc) {
	a.area += b.area
	a.sumX += b.sumX
	a.sumY += b.sumY
	a.runs += b.runs
	if b.minX < a.minX {
		a.minX = b.minX
	}
	if b.maxX > a.maxX {
		a.maxX = b.maxX
	}
	if b.minY < a.minY {
		a.minY = b.minY
	}
	if b.maxY > a.maxY {
		a.maxY = b.maxY
	}
}

// labeler is the streaming engine. Per-band buffers (pl, glob, rs) are sized
// once for the band height and reused; global state (gp, st) grows with the
// component count only.
type labeler struct {
	w, bandRows int

	pl   []Label      // band-local REM parent array
	glob []Label      // band-local root -> provisional global id
	rs   scan.RunSet  // band-local labeled runs
	seam []binimg.Run // previous band's last row, Label = global id

	gp []Label // global DSU over provisional component ids; gp[0] unused
	st []acc   // per-global-id statistics, valid at DSU roots
}

func newLabeler(w, bandRows int) *labeler {
	n := scan.MaxRunLabels(w, bandRows)
	return &labeler{
		w:        w,
		bandRows: bandRows,
		pl:       make([]Label, n+1),
		glob:     make([]Label, n+1),
		gp:       make([]Label, 1, 64),
		st:       make([]acc, 1, 64),
	}
}

func (l *labeler) gfind(x Label) Label {
	gp := l.gp
	for gp[x] != x {
		gp[x] = gp[gp[x]] // path halving
		x = gp[x]
	}
	return x
}

// gunion unites two distinct global roots, folding the loser's statistics
// into the winner. The smaller (earlier-discovered) id wins, which keeps the
// final numbering in discovery order.
func (l *labeler) gunion(a, b Label) Label {
	if a > b {
		a, b = b, a
	}
	l.gp[b] = a
	l.st[a].fold(&l.st[b])
	return a
}

func (l *labeler) newGlobal() Label {
	g := Label(len(l.gp))
	l.gp = append(l.gp, g)
	l.st = append(l.st, acc{
		minX: int32(l.w), minY: int32(1 << 30),
		maxX: -1, maxY: -1,
	})
	return g
}

// addBand labels one band whose first row is absolute row y0 (steps 1-5 of
// the package comment).
func (l *labeler) addBand(y0 int, bm *binimg.Bitmap, emit func(int, []binimg.Run, func(Label) Label) error) error {
	rows := bm.Height

	// 1. Band-local run scan. Labels restart at 1 every band; the parent
	// array needs no clearing because the sink initializes each label it
	// creates and the flatten sweeps only labels 1..count.
	sink := core.NewRemSinkShared(l.pl, 0)
	scan.Runs(bm, sink, 0, rows, &l.rs)

	// 2. Resolve within-band equivalences: pl[lab] is now the compact local
	// root id (1..nloc) of every provisional label.
	nloc := unionfind.Flatten(l.pl, sink.Count())

	// 3. Seam merge: attach local roots to global components.
	glob := l.glob[:nloc+1]
	clear(glob)
	if y0 > 0 && len(l.seam) > 0 {
		scan.MergeRuns(l.rs.RowRuns(0), l.seam, func(x, y Label) {
			lr := l.pl[x]
			g := l.gfind(y)
			if glob[lr] == 0 {
				glob[lr] = g
				return
			}
			if r := l.gfind(glob[lr]); r != g {
				glob[lr] = l.gunion(r, g)
			} else {
				glob[lr] = r
			}
		})
	}
	for lr := Label(1); lr <= nloc; lr++ {
		if glob[lr] == 0 {
			glob[lr] = l.newGlobal()
		}
	}

	// 4. Fold every run into its component's accumulator; emit rows.
	resolve := func(lab Label) Label { return l.gfind(glob[l.pl[lab]]) }
	for i := 0; i < rows; i++ {
		y := y0 + i
		runs := l.rs.RowRuns(i)
		for _, r := range runs {
			g := l.gfind(glob[l.pl[r.Label]])
			l.st[g].addRun(y, int(r.Start), int(r.End))
		}
		if emit != nil {
			if err := emit(y, runs, resolve); err != nil {
				return err
			}
		}
	}

	// 5. Retain the last row as the next seam, in global ids.
	l.seam = append(l.seam[:0], l.rs.RowRuns(rows-1)...)
	for i := range l.seam {
		l.seam[i].Label = l.gfind(glob[l.pl[l.seam[i].Label]])
	}
	return nil
}

func (l *labeler) finish(w, h int) *Result {
	res := &Result{Width: w, Height: h}
	finalOf := make([]Label, len(l.gp))
	var n Label
	for g := 1; g < len(l.gp); g++ {
		if l.gp[g] == Label(g) {
			n++
			finalOf[g] = n
		}
	}
	comps := make([]ComponentStats, 0, n)
	for g := 1; g < len(l.gp); g++ {
		if finalOf[g] == 0 {
			finalOf[g] = finalOf[l.gfind(Label(g))]
			continue
		}
		a := &l.st[g]
		res.ForegroundPixels += a.area
		comps = append(comps, ComponentStats{
			Label: finalOf[g],
			Area:  a.area,
			MinX:  int(a.minX), MinY: int(a.minY),
			MaxX: int(a.maxX), MaxY: int(a.maxY),
			CentroidX: float64(a.sumX) / float64(a.area),
			CentroidY: float64(a.sumY) / float64(a.area),
			Runs:      a.runs,
		})
	}
	res.NumComponents = int(n)
	res.Components = comps
	res.finalOf = finalOf
	return res
}
