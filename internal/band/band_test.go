package band_test

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"repro/internal/band"
	"repro/internal/baseline"
	"repro/internal/binimg"
	"repro/internal/dataset"
	"repro/internal/harness"
	"repro/internal/pnm"
	"repro/internal/stats"
)

// streamImage runs img through the full production path: P4 encode,
// pnm.BandReader ingest, band.Stream at the given band height.
func streamImage(t *testing.T, img *binimg.Image, bandRows int) *band.Result {
	t.Helper()
	var buf bytes.Buffer
	if err := pnm.EncodePBM(&buf, img, true); err != nil {
		t.Fatal(err)
	}
	src, err := pnm.NewBandReaderBytes(buf.Bytes(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := band.Stream(src, band.Options{BandRows: bandRows})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// wholeImageStats computes the oracle statistics from a flood-fill labeling:
// area, bounding box and centroid exactly as stats.Components reports them,
// plus the per-component count of maximal horizontal runs.
func wholeImageStats(img *binimg.Image) []band.ComponentStats {
	lm, n := baseline.FloodFill(img, baseline.Conn8)
	comps := stats.Components(lm)
	runs := make([]int64, n+1)
	for y := 0; y < img.Height; y++ {
		row := y * img.Width
		for x := 0; x < img.Width; x++ {
			if img.Pix[row+x] != 0 && (x == 0 || img.Pix[row+x-1] == 0) {
				runs[lm.L[row+x]]++
			}
		}
	}
	out := make([]band.ComponentStats, 0, n)
	for _, c := range comps {
		out = append(out, band.ComponentStats{
			Area: int64(c.Area),
			MinX: c.MinX, MinY: c.MinY, MaxX: c.MaxX, MaxY: c.MaxY,
			CentroidX: c.CentroidX, CentroidY: c.CentroidY,
			Runs: runs[c.Label],
		})
	}
	return out
}

// canonical sorts component statistics into a numbering-independent order
// and zeroes the labels so two labelings can be compared field by field.
func canonical(comps []band.ComponentStats) []band.ComponentStats {
	out := append([]band.ComponentStats(nil), comps...)
	for i := range out {
		out[i].Label = 0
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.MinY != b.MinY:
			return a.MinY < b.MinY
		case a.MinX != b.MinX:
			return a.MinX < b.MinX
		case a.MaxY != b.MaxY:
			return a.MaxY < b.MaxY
		case a.MaxX != b.MaxX:
			return a.MaxX < b.MaxX
		case a.Area != b.Area:
			return a.Area < b.Area
		default:
			return a.Runs < b.Runs
		}
	})
	return out
}

func checkStream(t *testing.T, name string, img *binimg.Image, bandRows int) {
	t.Helper()
	res := streamImage(t, img, bandRows)
	if res.Width != img.Width || res.Height != img.Height {
		t.Errorf("%s/band%d: result shape %dx%d, want %dx%d",
			name, bandRows, res.Width, res.Height, img.Width, img.Height)
		return
	}
	want := wholeImageStats(img)
	if res.NumComponents != len(want) {
		t.Errorf("%s/band%d: %d components, oracle found %d", name, bandRows, res.NumComponents, len(want))
		return
	}
	got := canonical(res.Components)
	wc := canonical(want)
	for i := range wc {
		if got[i] != wc[i] {
			t.Errorf("%s/band%d: component %d stats differ:\n got %+v\nwant %+v",
				name, bandRows, i, got[i], wc[i])
			return
		}
	}
	var fg int64
	for _, c := range want {
		fg += c.Area
	}
	if res.ForegroundPixels != fg {
		t.Errorf("%s/band%d: %d foreground pixels, want %d", name, bandRows, res.ForegroundPixels, fg)
	}
}

// bandHeights returns the seam-stressing band heights for an image of height
// h: every boundary position (1), the minimal non-trivial band (2), an odd
// height that misaligns with everything (7), a word-ish height (64), and the
// whole image in one band (h).
func bandHeights(h int) []int {
	return []int{1, 2, 7, 64, max(h, 1)}
}

// TestStreamMatchesWholeImageOnCorpus is the acceptance gate: on every
// harness corpus image and every band height, LabelStream's component
// statistics equal whole-image labeling plus recomputed statistics.
func TestStreamMatchesWholeImageOnCorpus(t *testing.T) {
	for _, ci := range harness.Corpus() {
		for _, rows := range bandHeights(ci.Image.Height) {
			checkStream(t, ci.Name, ci.Image, rows)
		}
	}
}

// TestStreamSeamProperty fans the seam-stitching logic across random images:
// for each, all band heights must agree with the whole-image oracle.
func TestStreamSeamProperty(t *testing.T) {
	shapes := []struct{ w, h int }{
		{97, 53}, {128, 200}, {65, 129}, {1, 77}, {200, 1}, {64, 64},
	}
	densities := []float64{0.05, 0.35, 0.5, 0.65, 0.95}
	seed := int64(1)
	for _, s := range shapes {
		for _, d := range densities {
			seed++
			img := dataset.UniformNoise(s.w, s.h, d, seed)
			name := fmt.Sprintf("noise_%dx%d_d%.2f", s.w, s.h, d)
			for _, rows := range bandHeights(s.h) {
				checkStream(t, name, img, rows)
			}
		}
	}
	// Structured images exercise long-lived components that repeatedly
	// cross seams (serpentine: one component threading every band).
	structured := []struct {
		name string
		img  *binimg.Image
	}{
		{"serpentine", dataset.Serpentine(120, 90, 2, 3)},
		{"rings", dataset.ConcentricRings(121, 95, 2, 2)},
		{"checker", dataset.Checkerboard(90, 90, 1)},
	}
	for _, s := range structured {
		for _, rows := range bandHeights(s.img.Height) {
			checkStream(t, s.name, s.img, rows)
		}
	}
}

// TestStreamP5 checks the grayscale band path: a raw PGM is binarized at
// the streamed level exactly as the whole-image decoder binarizes it.
func TestStreamP5(t *testing.T) {
	const w, h = 50, 40
	gray := make([]uint8, w*h)
	for i := range gray {
		gray[i] = uint8((i * 7) % 256)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "P5\n%d %d\n255\n", w, h)
	buf.Write(gray)

	src, err := pnm.NewBandReaderBytes(buf.Bytes(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := band.Stream(src, band.Options{BandRows: 9})
	if err != nil {
		t.Fatal(err)
	}
	img, err := binimg.FromGray(w, h, gray, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := wholeImageStats(img)
	if res.NumComponents != len(want) {
		t.Fatalf("%d components, want %d", res.NumComponents, len(want))
	}
	got, wc := canonical(res.Components), canonical(want)
	for i := range wc {
		if got[i] != wc[i] {
			t.Fatalf("component %d stats differ:\n got %+v\nwant %+v", i, got[i], wc[i])
		}
	}
}

// TestStreamTruncatedInput confirms a short body fails cleanly rather than
// producing partial statistics.
func TestStreamTruncatedInput(t *testing.T) {
	img := dataset.UniformNoise(40, 40, 0.5, 3)
	var buf bytes.Buffer
	if err := pnm.EncodePBM(&buf, img, true); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-25]
	src, err := pnm.NewBandReaderBytes(data, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := band.Stream(src, band.Options{BandRows: 8}); err == nil {
		t.Fatal("truncated stream labeled without error")
	}
}
