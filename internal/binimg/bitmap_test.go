package binimg

import (
	"math/rand"
	"testing"
)

// bitmapWidths exercises the word-boundary cases: sub-word, exact-word,
// word+1, multi-word and odd widths.
var bitmapWidths = []int{1, 2, 3, 7, 31, 63, 64, 65, 127, 128, 129, 200}

func randomImage(w, h int, density float64, seed int64) *Image {
	rng := rand.New(rand.NewSource(seed))
	im := New(w, h)
	for i := range im.Pix {
		if rng.Float64() < density {
			im.Pix[i] = 1
		}
	}
	return im
}

func TestBitmapRoundTrip(t *testing.T) {
	for _, w := range bitmapWidths {
		for _, h := range []int{1, 2, 5, 64} {
			for _, density := range []float64{0, 0.1, 0.5, 0.9, 1} {
				im := randomImage(w, h, density, int64(w*1000+h))
				bm := &Bitmap{}
				bm.FromImage(im)
				got := bm.ToImage()
				if !im.Equal(got) {
					t.Fatalf("%dx%d density %.1f: round trip mismatch", w, h, density)
				}
			}
		}
	}
}

func TestBitmapPaddingInvariant(t *testing.T) {
	for _, w := range bitmapWidths {
		im := randomImage(w, 3, 1, int64(w))
		bm := &Bitmap{}
		bm.FromImage(im)
		tail := bm.TailMask()
		for y := 0; y < bm.Height; y++ {
			row := bm.Row(y)
			if last := row[len(row)-1]; last&^tail != 0 {
				t.Fatalf("width %d row %d: tail bits set: %064b", w, y, last)
			}
		}
		if got, want := bm.ForegroundCount(), im.ForegroundCount(); got != want {
			t.Fatalf("width %d: ForegroundCount %d, want %d", w, got, want)
		}
	}
}

func TestBitmapAtSet(t *testing.T) {
	bm := NewBitmap(70, 3)
	bm.Set(0, 0, 1)
	bm.Set(63, 1, 1)
	bm.Set(64, 1, 1)
	bm.Set(69, 2, 1)
	for _, p := range [][3]int{{0, 0, 1}, {63, 1, 1}, {64, 1, 1}, {69, 2, 1}, {1, 0, 0}, {65, 1, 0}} {
		if got := bm.At(p[0], p[1]); got != uint8(p[2]) {
			t.Errorf("At(%d,%d) = %d, want %d", p[0], p[1], got, p[2])
		}
	}
	bm.Set(64, 1, 0)
	if bm.At(64, 1) != 0 {
		t.Error("Set(64,1,0) did not clear the pixel")
	}
}

// naiveRuns extracts runs by per-pixel scanning of the byte raster.
func naiveRuns(im *Image, y int) []Run {
	var runs []Run
	row := im.Pix[y*im.Width : (y+1)*im.Width]
	x := 0
	for x < im.Width {
		if row[x] == 0 {
			x++
			continue
		}
		s := x
		for x < im.Width && row[x] != 0 {
			x++
		}
		runs = append(runs, Run{Start: int32(s), End: int32(x)})
	}
	return runs
}

func TestBitmapAppendRowRuns(t *testing.T) {
	for _, w := range bitmapWidths {
		for _, density := range []float64{0, 0.05, 0.3, 0.5, 0.8, 0.97, 1} {
			im := randomImage(w, 8, density, int64(w)*31+int64(density*100))
			bm := &Bitmap{}
			bm.FromImage(im)
			for y := 0; y < im.Height; y++ {
				got := bm.AppendRowRuns(nil, y)
				want := naiveRuns(im, y)
				if len(got) != len(want) {
					t.Fatalf("w=%d density=%.2f row %d: %d runs, want %d\n%v\n%v",
						w, density, y, len(got), len(want), got, want)
				}
				for i := range got {
					if got[i].Start != want[i].Start || got[i].End != want[i].End {
						t.Fatalf("w=%d density=%.2f row %d run %d: [%d,%d), want [%d,%d)",
							w, density, y, i, got[i].Start, got[i].End, want[i].Start, want[i].End)
					}
				}
			}
		}
	}
}

func TestBitmapResetReuse(t *testing.T) {
	bm := NewBitmap(128, 4)
	for i := range bm.Words {
		bm.Words[i] = ^uint64(0)
	}
	bm.Reset(65, 2)
	if bm.WordsPerRow != 2 || len(bm.Words) != 4 {
		t.Fatalf("Reset(65,2): WordsPerRow=%d len=%d", bm.WordsPerRow, len(bm.Words))
	}
	for i, w := range bm.Words {
		if w != 0 {
			t.Fatalf("Reset left word %d = %x", i, w)
		}
	}
	if bm.ForegroundCount() != 0 {
		t.Fatal("Reset bitmap not empty")
	}
}

func TestBitmapEmptyAndDensity(t *testing.T) {
	bm := NewBitmap(0, 0)
	if bm.Density() != 0 || bm.ForegroundCount() != 0 {
		t.Fatal("empty bitmap should have zero density")
	}
	if runs := bm.AppendRowRuns(nil, 0); len(runs) != 0 {
		t.Fatal("unexpected runs on empty bitmap")
	}
}
