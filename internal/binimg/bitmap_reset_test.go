package binimg

import "testing"

// TestBitmapResetNarrowerKeepsTailInvariant reuses one word buffer across a
// shrink-then-grow shape sequence with every pixel set in between. Reset to
// a narrower raster must re-establish the tail-bits-zero invariant (stale
// set bits beyond the new width would leak into run extraction and
// ForegroundCount) and a wider Reset must not resurrect old pixels.
func TestBitmapResetNarrowerKeepsTailInvariant(t *testing.T) {
	bm := NewBitmap(130, 4)
	fill := func() {
		for i := range bm.Words {
			bm.Words[i] = ^uint64(0)
		}
		for y := 0; y < bm.Height; y++ {
			row := bm.Row(y)
			if len(row) > 0 {
				row[len(row)-1] &= bm.TailMask()
			}
		}
	}
	fill()
	if got, want := bm.ForegroundCount(), 130*4; got != want {
		t.Fatalf("full 130x4: %d foreground, want %d", got, want)
	}

	for _, shape := range []struct{ w, h int }{
		{65, 4}, {64, 2}, {63, 7}, {1, 3}, {129, 5}, {130, 4},
	} {
		bm.Reset(shape.w, shape.h)
		if got := bm.ForegroundCount(); got != 0 {
			t.Fatalf("Reset(%d,%d): %d stale foreground pixels", shape.w, shape.h, got)
		}
		for y := 0; y < shape.h; y++ {
			row := bm.Row(y)
			if len(row) == 0 {
				continue
			}
			if stale := row[len(row)-1] &^ bm.TailMask(); stale != 0 {
				t.Fatalf("Reset(%d,%d): row %d tail bits %#x", shape.w, shape.h, y, stale)
			}
			if runs := bm.AppendRowRuns(nil, y); len(runs) != 0 {
				t.Fatalf("Reset(%d,%d): row %d has stale runs %v", shape.w, shape.h, y, runs)
			}
		}
		// A single pixel at the right edge must extract as exactly one run.
		bm.Set(shape.w-1, 0, 1)
		runs := bm.AppendRowRuns(nil, 0)
		if len(runs) != 1 || runs[0].Start != int32(shape.w-1) || runs[0].End != int32(shape.w) {
			t.Fatalf("Reset(%d,%d): edge pixel runs %v", shape.w, shape.h, runs)
		}
		fill()
	}
}
