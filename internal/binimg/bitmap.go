package binimg

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Run is a maximal horizontal span of foreground pixels within one row:
// pixels [Start, End) of the row are foreground, pixel Start-1 and pixel End
// (when in range) are background. Label is the provisional label a run-based
// scan assigns to the run (0 until assigned).
type Run struct {
	Start int32
	End   int32
	Label Label
}

// Bitmap is a bit-packed binary raster: one bit per pixel, 64 pixels per
// word, each row padded to a whole number of words. Row y occupies
// Words[y*WordsPerRow : (y+1)*WordsPerRow]; pixel x of the row is bit x%64
// (LSB-first) of word x/64, so a row scans left-to-right with
// bits.TrailingZeros64.
//
// Padding invariant: the tail bits of each row's last word (bit positions
// >= Width%64, when Width is not a multiple of 64) are always 0. Every
// constructor and mutator in this package maintains the invariant; code that
// writes Words directly must mask the last word of each row with TailMask.
// Run extraction relies on it: a run can only remain open across the
// whole-word loop when the row ends exactly on a word boundary.
type Bitmap struct {
	Width       int
	Height      int
	WordsPerRow int
	Words       []uint64
}

// NewBitmap returns a zeroed (all-background) bitmap of the given dimensions.
// It panics if either dimension is negative.
func NewBitmap(width, height int) *Bitmap {
	b := &Bitmap{}
	b.Reset(width, height)
	return b
}

// Reset reshapes the bitmap to width x height and zeroes every pixel, reusing
// the existing word buffer when it has capacity. Long-lived servers reset
// pooled bitmaps between requests instead of allocating one per request.
// It panics if either dimension is negative.
func (b *Bitmap) Reset(width, height int) {
	if width < 0 || height < 0 {
		panic(fmt.Sprintf("binimg: negative dimensions %dx%d", width, height))
	}
	wpr := (width + 63) >> 6
	n := wpr * height
	if cap(b.Words) < n {
		b.Words = make([]uint64, n)
	} else {
		b.Words = b.Words[:n]
		clear(b.Words)
	}
	b.Width, b.Height, b.WordsPerRow = width, height, wpr
}

// TailMask returns the mask of valid bits in the last word of each row: all
// ones when Width is a multiple of 64, otherwise the low Width%64 bits.
func (b *Bitmap) TailMask() uint64 {
	if r := uint(b.Width) & 63; r != 0 {
		return (1 << r) - 1
	}
	return ^uint64(0)
}

// Row returns the packed words of row y.
func (b *Bitmap) Row(y int) []uint64 {
	return b.Words[y*b.WordsPerRow : (y+1)*b.WordsPerRow]
}

// At returns the pixel at (x, y). It panics on out-of-range coordinates.
func (b *Bitmap) At(x, y int) uint8 {
	if x < 0 || x >= b.Width || y < 0 || y >= b.Height {
		panic(fmt.Sprintf("binimg: Bitmap.At(%d,%d) out of range %dx%d", x, y, b.Width, b.Height))
	}
	return uint8(b.Words[y*b.WordsPerRow+x>>6] >> (uint(x) & 63) & 1)
}

// Set writes the pixel at (x, y). It panics on out-of-range coordinates or a
// value other than 0 or 1.
func (b *Bitmap) Set(x, y int, v uint8) {
	if x < 0 || x >= b.Width || y < 0 || y >= b.Height {
		panic(fmt.Sprintf("binimg: Bitmap.Set(%d,%d) out of range %dx%d", x, y, b.Width, b.Height))
	}
	if v > 1 {
		panic(fmt.Sprintf("binimg: Bitmap.Set value %d, want 0 or 1", v))
	}
	w := &b.Words[y*b.WordsPerRow+x>>6]
	bit := uint64(1) << (uint(x) & 63)
	if v != 0 {
		*w |= bit
	} else {
		*w &^= bit
	}
}

// lsbGather packs the low bit of each of the 8 bytes of v into the low 8 bits
// of the result (byte k's LSB becomes bit k). The multiply routes bit 8k to
// bit 56-7k+8k = 56+k; the shift drops everything below.
func lsbGather(v uint64) uint64 {
	return (v & 0x0101010101010101) * 0x0102040810204080 >> 56
}

// FromImage reshapes the bitmap to im's dimensions and packs its pixels,
// eight at a time via the byte-gather multiply above.
func (b *Bitmap) FromImage(im *Image) {
	b.Reset(im.Width, im.Height)
	for y := 0; y < im.Height; y++ {
		b.packRow(im, y)
	}
}

// FromImageRows packs rows [y0, y1) of im into a bitmap already Reset to im's
// dimensions, leaving other rows untouched. Rows never share words, so
// concurrent callers packing disjoint row ranges are data-race-free; PBREMSP's
// chunk scans pack their own rows this way.
func (b *Bitmap) FromImageRows(im *Image, y0, y1 int) {
	for y := y0; y < y1; y++ {
		b.packRow(im, y)
	}
}

func (b *Bitmap) packRow(im *Image, y int) {
	w := im.Width
	row := im.Pix[y*w : (y+1)*w]
	words := b.Words[y*b.WordsPerRow:]
	x := 0
	for ; x+8 <= w; x += 8 {
		m := lsbGather(binary.LittleEndian.Uint64(row[x : x+8]))
		words[x>>6] |= m << (uint(x) & 63)
	}
	for ; x < w; x++ {
		if row[x] != 0 {
			words[x>>6] |= 1 << (uint(x) & 63)
		}
	}
}

// ToImage unpacks the bitmap into a fresh one-byte-per-pixel image.
func (b *Bitmap) ToImage() *Image {
	im := &Image{}
	b.ToImageInto(im)
	return im
}

// ToImageInto is ToImage into a caller-provided image, reshaped with Reset so
// its pixel buffer is reused when large enough.
func (b *Bitmap) ToImageInto(im *Image) {
	im.Reset(b.Width, b.Height)
	w := b.Width
	for y := 0; y < b.Height; y++ {
		row := im.Pix[y*w : (y+1)*w]
		words := b.Words[y*b.WordsPerRow:]
		for x := range row {
			row[x] = uint8(words[x>>6] >> (uint(x) & 63) & 1)
		}
	}
}

// AppendRowRuns appends the foreground runs of row y to dst (Label zero) and
// returns the extended slice. Each word is consumed with two math/bits
// operations per run boundary — TrailingZeros64 finds the next run start,
// TrailingZeros64 of the complement finds its end — so a row costs O(words +
// runs) instead of O(pixels).
func (b *Bitmap) AppendRowRuns(dst []Run, y int) []Run {
	words := b.Words[y*b.WordsPerRow : (y+1)*b.WordsPerRow]
	open := -1 // start of a run that crossed the previous word boundary
	for wi, w64 := range words {
		base := wi << 6
		if open >= 0 {
			if w64 == ^uint64(0) {
				continue // the run spans this entire word
			}
			z := bits.TrailingZeros64(^w64)
			dst = append(dst, Run{Start: int32(open), End: int32(base + z)})
			open = -1
			w64 &^= (1 << uint(z)) - 1
		}
		for w64 != 0 {
			s := bits.TrailingZeros64(w64)
			n := bits.TrailingZeros64(^(w64 >> uint(s)))
			if s+n >= 64 {
				open = base + s
				break
			}
			dst = append(dst, Run{Start: int32(base + s), End: int32(base + s + n)})
			w64 &^= ((1 << uint(n)) - 1) << uint(s)
		}
	}
	if open >= 0 {
		// By the padding invariant this only happens when the run reaches the
		// final valid bit of the row, so it ends at Width.
		dst = append(dst, Run{Start: int32(open), End: int32(b.Width)})
	}
	return dst
}

// ForegroundCount returns the number of object pixels, one OnesCount64 per
// word (the padding invariant keeps tail bits out of the count).
func (b *Bitmap) ForegroundCount() int {
	n := 0
	for _, w := range b.Words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Density returns the fraction of pixels that are foreground, in [0, 1].
// An empty bitmap has density 0.
func (b *Bitmap) Density() float64 {
	if b.Width == 0 || b.Height == 0 {
		return 0
	}
	return float64(b.ForegroundCount()) / float64(b.Width*b.Height)
}

// Equal reports whether two bitmaps have identical dimensions and pixels.
func (b *Bitmap) Equal(other *Bitmap) bool {
	if b.Width != other.Width || b.Height != other.Height {
		return false
	}
	for i, w := range b.Words {
		if w != other.Words[i] {
			return false
		}
	}
	return true
}
