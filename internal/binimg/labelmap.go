package binimg

import (
	"fmt"
	"strings"
)

// Label is the provisional/final label type used throughout the repository.
// int32 keeps the parent array and the label raster cache-compact; the paper's
// largest image (465.2 MB = 487,784,448 pixels) still fits: the parallel label
// space is bounded by pixel count, well below MaxInt32.
type Label = int32

// LabelMap is an integer raster of the same shape as an Image. L[y*Width+x]
// holds the label of pixel (x, y); 0 means background.
type LabelMap struct {
	Width  int
	Height int
	L      []Label
}

// NewLabelMap returns a zeroed label map of the given dimensions.
func NewLabelMap(width, height int) *LabelMap {
	if width < 0 || height < 0 {
		panic(fmt.Sprintf("binimg: negative dimensions %dx%d", width, height))
	}
	return &LabelMap{Width: width, Height: height, L: make([]Label, width*height)}
}

// Reset reshapes the label map to width x height and zeroes every label,
// reusing the existing buffer when it has capacity. The labelers' *Into entry
// points call this, so pooled label maps are reusable across differently
// sized requests. It panics if either dimension is negative.
func (lm *LabelMap) Reset(width, height int) {
	if width < 0 || height < 0 {
		panic(fmt.Sprintf("binimg: negative dimensions %dx%d", width, height))
	}
	n := width * height
	if cap(lm.L) < n {
		lm.L = make([]Label, n)
	} else {
		lm.L = lm.L[:n]
		clear(lm.L)
	}
	lm.Width, lm.Height = width, height
}

// At returns the label at (x, y). It panics on out-of-range coordinates.
func (lm *LabelMap) At(x, y int) Label {
	if x < 0 || x >= lm.Width || y < 0 || y >= lm.Height {
		panic(fmt.Sprintf("binimg: LabelMap.At(%d,%d) out of range %dx%d", x, y, lm.Width, lm.Height))
	}
	return lm.L[y*lm.Width+x]
}

// Set writes the label at (x, y). It panics on out-of-range coordinates.
func (lm *LabelMap) Set(x, y int, v Label) {
	if x < 0 || x >= lm.Width || y < 0 || y >= lm.Height {
		panic(fmt.Sprintf("binimg: LabelMap.Set(%d,%d) out of range %dx%d", x, y, lm.Width, lm.Height))
	}
	lm.L[y*lm.Width+x] = v
}

// Clone returns a deep copy of the label map.
func (lm *LabelMap) Clone() *LabelMap {
	l := make([]Label, len(lm.L))
	copy(l, lm.L)
	return &LabelMap{Width: lm.Width, Height: lm.Height, L: l}
}

// Max returns the largest label present in the map (0 for an all-background
// map).
func (lm *LabelMap) Max() Label {
	var max Label
	for _, v := range lm.L {
		if v > max {
			max = v
		}
	}
	return max
}

// Distinct returns the number of distinct non-zero labels present.
func (lm *LabelMap) Distinct() int {
	seen := make(map[Label]struct{})
	for _, v := range lm.L {
		if v != 0 {
			seen[v] = struct{}{}
		}
	}
	return len(seen)
}

// Mask returns the binary image whose foreground is exactly the non-zero
// labels of the map. Labeling an image and masking the result must return
// the original image; tests rely on this round trip.
func (lm *LabelMap) Mask() *Image {
	im := New(lm.Width, lm.Height)
	for i, v := range lm.L {
		if v != 0 {
			im.Pix[i] = 1
		}
	}
	return im
}

// String renders small label maps for test failure messages: background as
// '.', labels 1..9 as digits, 10..35 as 'a'..'z', larger labels as '+'.
func (lm *LabelMap) String() string {
	var b strings.Builder
	for y := 0; y < lm.Height; y++ {
		for x := 0; x < lm.Width; x++ {
			v := lm.L[y*lm.Width+x]
			switch {
			case v == 0:
				b.WriteByte('.')
			case v <= 9:
				b.WriteByte(byte('0' + v))
			case v <= 35:
				b.WriteByte(byte('a' + v - 10))
			default:
				b.WriteByte('+')
			}
		}
		if y != lm.Height-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
