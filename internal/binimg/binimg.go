// Package binimg provides the binary-image raster type used by every CCL
// algorithm in this repository, plus the label-map raster the algorithms
// produce.
//
// A binary image stores one byte per pixel in row-major order: 0 is a
// background pixel, 1 is an object (foreground) pixel. This mirrors the
// paper's convention ("we consider value of object pixel as 1 and value of
// background pixel as 0") and keeps the scan-phase inner loops branch-cheap:
// neighbor tests compile to a single byte load and compare.
//
// Bitmap is the bit-packed alternative (1 bit per pixel, 64-bit words, rows
// padded to whole words) consumed by the run-based scans: 64 pixels per word
// load, runs extracted with math/bits. Its padding invariant — the tail bits
// of each row's last word are always 0 — is documented on the type.
package binimg

import (
	"fmt"
	"strings"
)

// Image is a binary raster of Width x Height pixels. Pix holds exactly
// Width*Height bytes in row-major order; every byte is 0 or 1.
type Image struct {
	Width  int
	Height int
	Pix    []uint8
}

// New returns a zeroed (all-background) image of the given dimensions.
// It panics if either dimension is negative.
func New(width, height int) *Image {
	if width < 0 || height < 0 {
		panic(fmt.Sprintf("binimg: negative dimensions %dx%d", width, height))
	}
	return &Image{Width: width, Height: height, Pix: make([]uint8, width*height)}
}

// Reset reshapes the image to width x height and zeroes every pixel, reusing
// the existing pixel buffer when it has capacity. Long-lived servers reset
// pooled images between requests instead of allocating a raster per request.
// It panics if either dimension is negative.
func (im *Image) Reset(width, height int) {
	if width < 0 || height < 0 {
		panic(fmt.Sprintf("binimg: negative dimensions %dx%d", width, height))
	}
	n := width * height
	if cap(im.Pix) < n {
		im.Pix = make([]uint8, n)
	} else {
		im.Pix = im.Pix[:n]
		clear(im.Pix)
	}
	im.Width, im.Height = width, height
}

// FromPix wraps an existing pixel slice without copying. The slice must hold
// exactly width*height bytes, each 0 or 1 (not validated; see Validate).
func FromPix(width, height int, pix []uint8) (*Image, error) {
	if width < 0 || height < 0 {
		return nil, fmt.Errorf("binimg: negative dimensions %dx%d", width, height)
	}
	if len(pix) != width*height {
		return nil, fmt.Errorf("binimg: pixel buffer has %d bytes, want %d", len(pix), width*height)
	}
	return &Image{Width: width, Height: height, Pix: pix}, nil
}

// Validate reports the first pixel whose value is neither 0 nor 1, or nil if
// the raster is a well-formed binary image.
func (im *Image) Validate() error {
	if len(im.Pix) != im.Width*im.Height {
		return fmt.Errorf("binimg: pixel buffer has %d bytes, want %d", len(im.Pix), im.Width*im.Height)
	}
	for i, v := range im.Pix {
		if v > 1 {
			return fmt.Errorf("binimg: pixel (%d,%d) has value %d, want 0 or 1", i%im.Width, i/im.Width, v)
		}
	}
	return nil
}

// At returns the pixel at (x, y). It panics on out-of-range coordinates, like
// a slice index would.
func (im *Image) At(x, y int) uint8 {
	if x < 0 || x >= im.Width || y < 0 || y >= im.Height {
		panic(fmt.Sprintf("binimg: At(%d,%d) out of range %dx%d", x, y, im.Width, im.Height))
	}
	return im.Pix[y*im.Width+x]
}

// AtOr returns the pixel at (x, y), or def when (x, y) lies outside the
// image. Border-heavy scan code uses this to treat out-of-image neighbors as
// background.
func (im *Image) AtOr(x, y int, def uint8) uint8 {
	if x < 0 || x >= im.Width || y < 0 || y >= im.Height {
		return def
	}
	return im.Pix[y*im.Width+x]
}

// Set writes the pixel at (x, y). It panics on out-of-range coordinates or a
// value other than 0 or 1.
func (im *Image) Set(x, y int, v uint8) {
	if x < 0 || x >= im.Width || y < 0 || y >= im.Height {
		panic(fmt.Sprintf("binimg: Set(%d,%d) out of range %dx%d", x, y, im.Width, im.Height))
	}
	if v > 1 {
		panic(fmt.Sprintf("binimg: Set value %d, want 0 or 1", v))
	}
	im.Pix[y*im.Width+x] = v
}

// InBounds reports whether (x, y) addresses a pixel of the image.
func (im *Image) InBounds(x, y int) bool {
	return x >= 0 && x < im.Width && y >= 0 && y < im.Height
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	pix := make([]uint8, len(im.Pix))
	copy(pix, im.Pix)
	return &Image{Width: im.Width, Height: im.Height, Pix: pix}
}

// Fill sets every pixel to v (0 or 1).
func (im *Image) Fill(v uint8) {
	if v > 1 {
		panic(fmt.Sprintf("binimg: Fill value %d, want 0 or 1", v))
	}
	for i := range im.Pix {
		im.Pix[i] = v
	}
}

// ForegroundCount returns the number of object pixels.
func (im *Image) ForegroundCount() int {
	n := 0
	for _, v := range im.Pix {
		if v != 0 {
			n++
		}
	}
	return n
}

// Density returns the fraction of pixels that are foreground, in [0, 1].
// An empty image has density 0.
func (im *Image) Density() float64 {
	if len(im.Pix) == 0 {
		return 0
	}
	return float64(im.ForegroundCount()) / float64(len(im.Pix))
}

// SizeBytes returns the in-memory size of the raster in bytes (one byte per
// pixel). The paper reports dataset sizes in MB of binary raster; this is the
// matching quantity.
func (im *Image) SizeBytes() int { return len(im.Pix) }

// Invert flips every pixel in place: background becomes foreground and vice
// versa.
func (im *Image) Invert() {
	for i, v := range im.Pix {
		im.Pix[i] = 1 - v
	}
}

// Equal reports whether two images have identical dimensions and pixels.
func (im *Image) Equal(other *Image) bool {
	if im.Width != other.Width || im.Height != other.Height {
		return false
	}
	for i, v := range im.Pix {
		if v != other.Pix[i] {
			return false
		}
	}
	return true
}

// SubImage returns a deep copy of the rectangle [x0,x0+w) x [y0,y0+h).
// It panics if the rectangle is not fully contained in the image.
func (im *Image) SubImage(x0, y0, w, h int) *Image {
	if x0 < 0 || y0 < 0 || w < 0 || h < 0 || x0+w > im.Width || y0+h > im.Height {
		panic(fmt.Sprintf("binimg: SubImage(%d,%d,%d,%d) out of range %dx%d", x0, y0, w, h, im.Width, im.Height))
	}
	out := New(w, h)
	for y := 0; y < h; y++ {
		copy(out.Pix[y*w:(y+1)*w], im.Pix[(y0+y)*im.Width+x0:(y0+y)*im.Width+x0+w])
	}
	return out
}

// Pad returns a copy of the image with a border of n background pixels added
// on every side.
func (im *Image) Pad(n int) *Image {
	if n < 0 {
		panic("binimg: negative padding")
	}
	out := New(im.Width+2*n, im.Height+2*n)
	for y := 0; y < im.Height; y++ {
		copy(out.Pix[(y+n)*out.Width+n:(y+n)*out.Width+n+im.Width], im.Pix[y*im.Width:(y+1)*im.Width])
	}
	return out
}

// Transpose returns a new image with x and y swapped.
func (im *Image) Transpose() *Image {
	out := New(im.Height, im.Width)
	for y := 0; y < im.Height; y++ {
		row := im.Pix[y*im.Width : (y+1)*im.Width]
		for x, v := range row {
			out.Pix[x*out.Width+y] = v
		}
	}
	return out
}

// FlipH returns a new image mirrored left-to-right.
func (im *Image) FlipH() *Image {
	out := New(im.Width, im.Height)
	for y := 0; y < im.Height; y++ {
		for x := 0; x < im.Width; x++ {
			out.Pix[y*im.Width+(im.Width-1-x)] = im.Pix[y*im.Width+x]
		}
	}
	return out
}

// FlipV returns a new image mirrored top-to-bottom.
func (im *Image) FlipV() *Image {
	out := New(im.Width, im.Height)
	for y := 0; y < im.Height; y++ {
		copy(out.Pix[(im.Height-1-y)*im.Width:(im.Height-y)*im.Width], im.Pix[y*im.Width:(y+1)*im.Width])
	}
	return out
}

// FromGray binarizes a grayscale raster (one byte per pixel, 0..255) with the
// semantics of MATLAB's im2bw: luminance strictly greater than level*255
// becomes foreground (1), everything else background (0). The paper binarizes
// all datasets with level 0.5.
func FromGray(width, height int, gray []uint8, level float64) (*Image, error) {
	if len(gray) != width*height {
		return nil, fmt.Errorf("binimg: gray buffer has %d bytes, want %d", len(gray), width*height)
	}
	thresh := level * 255
	out := New(width, height)
	for i, v := range gray {
		if float64(v) > thresh {
			out.Pix[i] = 1
		}
	}
	return out, nil
}

// Parse builds an image from an ASCII art string: '#' and '1' are foreground,
// '.', '0' and ' ' are background; rows are separated by newlines. Leading
// and trailing blank lines are ignored; all rows must have the same width.
// This is the test suite's raster literal syntax.
func Parse(art string) (*Image, error) {
	lines := strings.Split(art, "\n")
	// Trim leading/trailing blank lines.
	for len(lines) > 0 && strings.TrimSpace(lines[0]) == "" {
		lines = lines[1:]
	}
	for len(lines) > 0 && strings.TrimSpace(lines[len(lines)-1]) == "" {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return New(0, 0), nil
	}
	width := len(strings.TrimSpace(lines[0]))
	im := New(width, len(lines))
	for y, line := range lines {
		line = strings.TrimSpace(line)
		if len(line) != width {
			return nil, fmt.Errorf("binimg: row %d has width %d, want %d", y, len(line), width)
		}
		for x, c := range line {
			switch c {
			case '#', '1':
				im.Pix[y*width+x] = 1
			case '.', '0', ' ':
				// background
			default:
				return nil, fmt.Errorf("binimg: row %d has invalid rune %q", y, c)
			}
		}
	}
	return im, nil
}

// MustParse is Parse but panics on error; intended for test fixtures.
func MustParse(art string) *Image {
	im, err := Parse(art)
	if err != nil {
		panic(err)
	}
	return im
}

// String renders the image as ASCII art with '#' for foreground and '.' for
// background, one row per line.
func (im *Image) String() string {
	var b strings.Builder
	b.Grow((im.Width + 1) * im.Height)
	for y := 0; y < im.Height; y++ {
		for x := 0; x < im.Width; x++ {
			if im.Pix[y*im.Width+x] != 0 {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		if y != im.Height-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
