package binimg

import "testing"

func TestLabelMapBasics(t *testing.T) {
	lm := NewLabelMap(4, 3)
	if lm.Width != 4 || lm.Height != 3 || len(lm.L) != 12 {
		t.Fatalf("bad shape: %dx%d len %d", lm.Width, lm.Height, len(lm.L))
	}
	lm.Set(2, 1, 7)
	if lm.At(2, 1) != 7 {
		t.Fatal("Set/At round trip failed")
	}
	if lm.Max() != 7 {
		t.Fatalf("Max = %d, want 7", lm.Max())
	}
	if lm.Distinct() != 1 {
		t.Fatalf("Distinct = %d, want 1", lm.Distinct())
	}
}

func TestLabelMapPanics(t *testing.T) {
	lm := NewLabelMap(2, 2)
	for _, f := range []func(){
		func() { lm.At(2, 0) },
		func() { lm.At(0, -1) },
		func() { lm.Set(-1, 0, 1) },
		func() { NewLabelMap(-1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLabelMapClone(t *testing.T) {
	lm := NewLabelMap(2, 2)
	lm.Set(0, 0, 3)
	cl := lm.Clone()
	cl.Set(0, 0, 5)
	if lm.At(0, 0) != 3 {
		t.Fatal("clone aliases original")
	}
	if cl.Width != 2 || cl.Height != 2 {
		t.Fatal("clone lost shape")
	}
}

func TestLabelMapMask(t *testing.T) {
	lm := NewLabelMap(3, 2)
	lm.Set(0, 0, 1)
	lm.Set(2, 1, 9)
	mask := lm.Mask()
	want := MustParse("#..\n..#")
	if !mask.Equal(want) {
		t.Fatalf("Mask:\n%s\nwant:\n%s", mask, want)
	}
}

func TestLabelMapDistinctAndMaxEmpty(t *testing.T) {
	lm := NewLabelMap(3, 3)
	if lm.Max() != 0 || lm.Distinct() != 0 {
		t.Fatalf("empty map: Max=%d Distinct=%d, want 0,0", lm.Max(), lm.Distinct())
	}
}

func TestLabelMapString(t *testing.T) {
	lm := NewLabelMap(4, 1)
	lm.Set(1, 0, 5)
	lm.Set(2, 0, 12)
	lm.Set(3, 0, 100)
	if got := lm.String(); got != ".5c+" {
		t.Fatalf("String = %q, want .5c+", got)
	}
}
