package binimg

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	im := New(7, 3)
	if im.Width != 7 || im.Height != 3 {
		t.Fatalf("dimensions = %dx%d, want 7x3", im.Width, im.Height)
	}
	if len(im.Pix) != 21 {
		t.Fatalf("len(Pix) = %d, want 21", len(im.Pix))
	}
	for i, v := range im.Pix {
		if v != 0 {
			t.Fatalf("Pix[%d] = %d, want 0", i, v)
		}
	}
	if im.ForegroundCount() != 0 {
		t.Fatalf("ForegroundCount = %d, want 0", im.ForegroundCount())
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestNewZeroSized(t *testing.T) {
	for _, dims := range [][2]int{{0, 0}, {0, 5}, {5, 0}} {
		im := New(dims[0], dims[1])
		if len(im.Pix) != 0 {
			t.Errorf("New(%d,%d): len(Pix) = %d, want 0", dims[0], dims[1], len(im.Pix))
		}
		if im.Density() != 0 {
			t.Errorf("New(%d,%d): Density = %v, want 0", dims[0], dims[1], im.Density())
		}
	}
}

func TestFromPix(t *testing.T) {
	pix := []uint8{0, 1, 1, 0, 0, 1}
	im, err := FromPix(3, 2, pix)
	if err != nil {
		t.Fatal(err)
	}
	if im.At(1, 0) != 1 || im.At(0, 1) != 0 || im.At(2, 1) != 1 {
		t.Fatalf("unexpected pixels: %v", im.Pix)
	}
	// FromPix must not copy.
	pix[0] = 1
	if im.At(0, 0) != 1 {
		t.Fatal("FromPix copied the buffer; want zero-copy wrap")
	}
}

func TestFromPixErrors(t *testing.T) {
	if _, err := FromPix(3, 2, make([]uint8, 5)); err == nil {
		t.Error("short buffer accepted")
	}
	if _, err := FromPix(-1, 2, nil); err == nil {
		t.Error("negative width accepted")
	}
}

func TestValidate(t *testing.T) {
	im := New(4, 4)
	if err := im.Validate(); err != nil {
		t.Fatalf("fresh image invalid: %v", err)
	}
	im.Pix[5] = 7
	if err := im.Validate(); err == nil {
		t.Fatal("pixel value 7 passed validation")
	}
	im.Pix[5] = 1
	im.Pix = im.Pix[:15]
	if err := im.Validate(); err == nil {
		t.Fatal("truncated buffer passed validation")
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	im := New(5, 4)
	im.Set(2, 3, 1)
	im.Set(0, 0, 1)
	im.Set(4, 0, 1)
	if im.At(2, 3) != 1 || im.At(0, 0) != 1 || im.At(4, 0) != 1 {
		t.Fatal("Set/At round trip failed")
	}
	im.Set(2, 3, 0)
	if im.At(2, 3) != 0 {
		t.Fatal("clearing a pixel failed")
	}
	if got := im.ForegroundCount(); got != 2 {
		t.Fatalf("ForegroundCount = %d, want 2", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	im := New(3, 3)
	for _, pt := range [][2]int{{-1, 0}, {0, -1}, {3, 0}, {0, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", pt[0], pt[1])
				}
			}()
			im.At(pt[0], pt[1])
		}()
	}
}

func TestAtOr(t *testing.T) {
	im := New(2, 2)
	im.Set(1, 1, 1)
	if im.AtOr(1, 1, 0) != 1 {
		t.Error("AtOr in-bounds returned wrong value")
	}
	if im.AtOr(-1, 0, 0) != 0 {
		t.Error("AtOr(-1,0) should return default 0")
	}
	if im.AtOr(2, 5, 1) != 1 {
		t.Error("AtOr out-of-bounds should return given default")
	}
}

func TestSetPanicsOnBadValue(t *testing.T) {
	im := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Set(_, _, 2) did not panic")
		}
	}()
	im.Set(0, 0, 2)
}

func TestCloneIndependence(t *testing.T) {
	im := MustParse("##.\n.#.")
	cl := im.Clone()
	if !im.Equal(cl) {
		t.Fatal("clone differs from original")
	}
	cl.Set(2, 0, 1)
	if im.At(2, 0) != 0 {
		t.Fatal("mutating clone changed original")
	}
}

func TestFillAndInvert(t *testing.T) {
	im := New(4, 3)
	im.Fill(1)
	if im.ForegroundCount() != 12 {
		t.Fatalf("after Fill(1), count = %d, want 12", im.ForegroundCount())
	}
	im.Invert()
	if im.ForegroundCount() != 0 {
		t.Fatalf("after Invert, count = %d, want 0", im.ForegroundCount())
	}
	im.Set(1, 1, 1)
	im.Invert()
	if im.ForegroundCount() != 11 || im.At(1, 1) != 0 {
		t.Fatal("Invert did not flip selectively")
	}
}

func TestDensity(t *testing.T) {
	im := New(10, 10)
	for i := 0; i < 25; i++ {
		im.Pix[i*4] = 1
	}
	if d := im.Density(); d != 0.25 {
		t.Fatalf("Density = %v, want 0.25", d)
	}
}

func TestSubImage(t *testing.T) {
	im := MustParse(`
		####
		#..#
		#..#
		####`)
	sub := im.SubImage(1, 1, 2, 2)
	if sub.Width != 2 || sub.Height != 2 || sub.ForegroundCount() != 0 {
		t.Fatalf("interior SubImage wrong: %s", sub)
	}
	edge := im.SubImage(0, 0, 4, 1)
	if edge.ForegroundCount() != 4 {
		t.Fatalf("top-row SubImage wrong: %s", edge)
	}
}

func TestSubImagePanicsOutOfRange(t *testing.T) {
	im := New(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("SubImage out of range did not panic")
		}
	}()
	im.SubImage(2, 2, 3, 3)
}

func TestPad(t *testing.T) {
	im := MustParse("##\n##")
	p := im.Pad(2)
	if p.Width != 6 || p.Height != 6 {
		t.Fatalf("padded dimensions = %dx%d, want 6x6", p.Width, p.Height)
	}
	if p.ForegroundCount() != 4 {
		t.Fatalf("padded count = %d, want 4", p.ForegroundCount())
	}
	if p.At(2, 2) != 1 || p.At(3, 3) != 1 || p.At(1, 1) != 0 {
		t.Fatalf("padding misplaced content:\n%s", p)
	}
}

func TestTranspose(t *testing.T) {
	im := MustParse("#..\n##.")
	tr := im.Transpose()
	if tr.Width != 2 || tr.Height != 3 {
		t.Fatalf("transposed dims %dx%d, want 2x3", tr.Width, tr.Height)
	}
	want := MustParse("##\n.#\n..")
	if !tr.Equal(want) {
		t.Fatalf("Transpose:\n%s\nwant:\n%s", tr, want)
	}
	if !tr.Transpose().Equal(im) {
		t.Fatal("double transpose is not identity")
	}
}

func TestFlip(t *testing.T) {
	im := MustParse("#..\n.#.")
	if !im.FlipH().Equal(MustParse("..#\n.#.")) {
		t.Errorf("FlipH wrong:\n%s", im.FlipH())
	}
	if !im.FlipV().Equal(MustParse(".#.\n#..")) {
		t.Errorf("FlipV wrong:\n%s", im.FlipV())
	}
	if !im.FlipH().FlipH().Equal(im) {
		t.Error("double FlipH is not identity")
	}
	if !im.FlipV().FlipV().Equal(im) {
		t.Error("double FlipV is not identity")
	}
}

func TestFromGrayIm2bwSemantics(t *testing.T) {
	// im2bw(level): luminance > level*255 -> 1. At level 0.5 the threshold is
	// 127.5, so 127 -> 0 and 128 -> 1.
	gray := []uint8{0, 127, 128, 255}
	im, err := FromGray(4, 1, gray, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{0, 0, 1, 1}
	for i, w := range want {
		if im.Pix[i] != w {
			t.Errorf("Pix[%d] = %d, want %d (gray=%d)", i, im.Pix[i], w, gray[i])
		}
	}
}

func TestFromGrayLevelExtremes(t *testing.T) {
	gray := []uint8{0, 100, 255}
	im0, _ := FromGray(3, 1, gray, 0)
	if im0.ForegroundCount() != 2 { // only gray 0 stays background at level 0
		t.Errorf("level 0: count = %d, want 2", im0.ForegroundCount())
	}
	im1, _ := FromGray(3, 1, gray, 1)
	if im1.ForegroundCount() != 0 { // nothing exceeds 255
		t.Errorf("level 1: count = %d, want 0", im1.ForegroundCount())
	}
}

func TestFromGraySizeMismatch(t *testing.T) {
	if _, err := FromGray(2, 2, []uint8{1, 2, 3}, 0.5); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestParseAndString(t *testing.T) {
	art := "#.#\n.#.\n#.#"
	im := MustParse(art)
	if im.String() != art {
		t.Fatalf("round trip:\n%s\nwant:\n%s", im.String(), art)
	}
	if im.ForegroundCount() != 5 {
		t.Fatalf("count = %d, want 5", im.ForegroundCount())
	}
}

func TestParseAlternateRunes(t *testing.T) {
	a := MustParse("10\n01")
	b := MustParse("#.\n.#")
	if !a.Equal(b) {
		t.Fatal("'1'/'0' and '#'/'.' parse differently")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("##\n#"); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := Parse("#x"); err == nil {
		t.Error("invalid rune accepted")
	}
}

func TestParseBlankLinesTrimmed(t *testing.T) {
	im := MustParse("\n\n##\n##\n\n")
	if im.Width != 2 || im.Height != 2 {
		t.Fatalf("dims = %dx%d, want 2x2", im.Width, im.Height)
	}
}

func TestParseEmpty(t *testing.T) {
	im := MustParse("")
	if im.Width != 0 || im.Height != 0 {
		t.Fatalf("empty parse gave %dx%d", im.Width, im.Height)
	}
}

func TestEqualMismatchedDims(t *testing.T) {
	if New(2, 3).Equal(New(3, 2)) {
		t.Fatal("images with different dims reported equal")
	}
}

// Property: Parse(im.String()) == im for random images.
func TestPropertyStringParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 1+rng.Intn(40), 1+rng.Intn(40)
		im := New(w, h)
		for i := range im.Pix {
			im.Pix[i] = uint8(rng.Intn(2))
		}
		back, err := Parse(im.String())
		return err == nil && back.Equal(im)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pad(n) keeps foreground count and density scales accordingly.
func TestPropertyPadPreservesForeground(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 1+rng.Intn(30), 1+rng.Intn(30)
		im := New(w, h)
		for i := range im.Pix {
			im.Pix[i] = uint8(rng.Intn(2))
		}
		n := rng.Intn(4)
		p := im.Pad(n)
		return p.ForegroundCount() == im.ForegroundCount() &&
			p.Width == w+2*n && p.Height == h+2*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Transpose preserves foreground count; FlipH/FlipV are involutions.
func TestPropertyTransformInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 1+rng.Intn(30), 1+rng.Intn(30)
		im := New(w, h)
		for i := range im.Pix {
			im.Pix[i] = uint8(rng.Intn(2))
		}
		return im.Transpose().ForegroundCount() == im.ForegroundCount() &&
			im.FlipH().FlipH().Equal(im) &&
			im.FlipV().FlipV().Equal(im)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStringOnWideImage(t *testing.T) {
	im := New(3, 1)
	im.Set(1, 0, 1)
	if got := im.String(); got != ".#." {
		t.Fatalf("String = %q, want .#.", got)
	}
	if !strings.Contains(New(2, 2).String(), "\n") {
		t.Fatal("multi-row String missing newline")
	}
}
