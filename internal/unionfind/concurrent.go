package unionfind

import (
	"sync"
	"sync/atomic"
)

// LockTable is the lock array used by the concurrent lock-based REM union
// ("MERGER", Algorithm 8 of the paper, after Patwary-Refsnes-Manne IPDPS'12).
// The paper locks individual nodes (omp_set_lock(&lock_array[root])); a
// per-node sync.Mutex array for a half-gigabyte image would cost more memory
// than the image itself, so the table stripes: node i maps to lock i&mask.
// Striping only ever *adds* mutual exclusion, so the algorithm's correctness
// argument (re-check root-ness under the lock, retry on change) is preserved.
type LockTable struct {
	locks []sync.Mutex
	mask  Label
}

// DefaultLockStripes is the lock-table size used when callers pass 0.
const DefaultLockStripes = 1 << 14

// NewLockTable builds a lock table with the given number of stripes, which
// must be a power of two (0 selects DefaultLockStripes).
func NewLockTable(stripes int) *LockTable {
	if stripes == 0 {
		stripes = DefaultLockStripes
	}
	if stripes < 1 || stripes&(stripes-1) != 0 {
		panic("unionfind: lock stripes must be a power of two")
	}
	return &LockTable{locks: make([]sync.Mutex, stripes), mask: Label(stripes - 1)}
}

// Stripes returns the number of lock stripes.
func (lt *LockTable) Stripes() int { return len(lt.locks) }

func (lt *LockTable) lock(i Label)   { lt.locks[i&lt.mask].Lock() }
func (lt *LockTable) unlock(i Label) { lt.locks[i&lt.mask].Unlock() }

// MergeLocked is the concurrent lock-based REM union with splicing —
// Algorithm 8 ("MERGER") of the paper. Multiple goroutines may call it on the
// same parent array concurrently, provided all of them use the same lock
// table and the array is only mutated through MergeLocked/MergeCAS for the
// duration of the phase.
//
// Reads of p outside the lock may observe stale parents; the algorithm
// re-checks root-ness after acquiring the lock and retries from its current
// position if another goroutine got there first, exactly as in the paper.
// The splicing writes outside the lock (p[rootx] = p[rooty]) are benign in
// the paper's OpenMP model; under the Go memory model they must be atomic to
// avoid torn reads, so all accesses go through sync/atomic.
func MergeLocked(p []Label, lt *LockTable, x, y Label) Label {
	rootx, rooty := x, y
	for {
		px := atomic.LoadInt32(&p[rootx])
		py := atomic.LoadInt32(&p[rooty])
		if px == py {
			return px
		}
		if px > py {
			if rootx == px { // rootx looks like a root
				lt.lock(rootx)
				success := false
				if atomic.LoadInt32(&p[rootx]) == rootx { // still a root?
					atomic.StoreInt32(&p[rootx], py)
					success = true
				}
				lt.unlock(rootx)
				if success {
					return py
				}
				continue // lost the race; re-read and carry on
			}
			// Interior node: splice and climb, as in the sequential REMSP.
			atomic.StoreInt32(&p[rootx], py)
			rootx = px
		} else {
			if rooty == py {
				lt.lock(rooty)
				success := false
				if atomic.LoadInt32(&p[rooty]) == rooty {
					atomic.StoreInt32(&p[rooty], px)
					success = true
				}
				lt.unlock(rooty)
				if success {
					return px
				}
				continue
			}
			atomic.StoreInt32(&p[rooty], px)
			rooty = py
		}
	}
}

// MergeCAS is a lock-free variant of the concurrent REM union: the
// "re-check root-ness under the lock, then write" step becomes a single
// compare-and-swap. This is the idiomatic Go rendering of MERGER and is
// benchmarked against MergeLocked in the merger ablation.
//
// The interior splicing write is also a CAS (from the observed parent) so a
// concurrent change is never overwritten backwards; on CAS failure the climb
// simply re-reads.
func MergeCAS(p []Label, x, y Label) Label {
	rootx, rooty := x, y
	for {
		px := atomic.LoadInt32(&p[rootx])
		py := atomic.LoadInt32(&p[rooty])
		if px == py {
			return px
		}
		if px > py {
			if rootx == px {
				if atomic.CompareAndSwapInt32(&p[rootx], rootx, py) {
					return py
				}
				continue
			}
			atomic.CompareAndSwapInt32(&p[rootx], px, py)
			rootx = px
		} else {
			if rooty == py {
				if atomic.CompareAndSwapInt32(&p[rooty], rooty, px) {
					return px
				}
				continue
			}
			atomic.CompareAndSwapInt32(&p[rooty], py, px)
			rooty = py
		}
	}
}
