package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewUnknownVariant(t *testing.T) {
	if _, err := New("nope", 4); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew on bad variant did not panic")
		}
	}()
	MustNew("nope", 4)
}

func TestAllVariantsConstructible(t *testing.T) {
	for _, v := range AllVariants() {
		d := MustNew(v, 8)
		if d.Name() != v {
			t.Errorf("variant %q reports Name %q", v, d.Name())
		}
		if d.Len() != 0 {
			t.Errorf("variant %q starts with Len %d", v, d.Len())
		}
		a, b := d.MakeSet(), d.MakeSet()
		if a == b {
			t.Errorf("variant %q: MakeSet returned duplicate index", v)
		}
		if d.Find(a) == d.Find(b) {
			t.Errorf("variant %q: fresh singletons share a root", v)
		}
		d.Union(a, b)
		if d.Find(a) != d.Find(b) {
			t.Errorf("variant %q: union did not unite", v)
		}
		if d.Len() != 2 {
			t.Errorf("variant %q: Len = %d, want 2", v, d.Len())
		}
	}
}

// TestVariantsAgreeWithOracle runs every variant against the quick-find
// oracle under random operation sequences.
func TestVariantsAgreeWithOracle(t *testing.T) {
	for _, v := range AllVariants() {
		if v == VariantQuickFind {
			continue
		}
		v := v
		t.Run(v, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				n := 2 + rng.Intn(120)
				d := MustNew(v, n)
				oracle := MustNew(VariantQuickFind, n)
				for i := 0; i < n; i++ {
					d.MakeSet()
					oracle.MakeSet()
				}
				for k := 0; k < 2*n; k++ {
					x, y := Label(rng.Intn(n)), Label(rng.Intn(n))
					d.Union(x, y)
					oracle.Union(x, y)
				}
				for k := 0; k < 4*n; k++ {
					a, b := Label(rng.Intn(n)), Label(rng.Intn(n))
					if (d.Find(a) == d.Find(b)) != (oracle.Find(a) == oracle.Find(b)) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUnionReturnsRoot(t *testing.T) {
	for _, v := range AllVariants() {
		d := MustNew(v, 8)
		for i := 0; i < 8; i++ {
			d.MakeSet()
		}
		r := d.Union(3, 5)
		if d.Find(3) != r || d.Find(5) != r {
			t.Errorf("variant %q: Union returned %d but Find gives %d/%d", v, r, d.Find(3), d.Find(5))
		}
		if got := d.Union(3, 5); got != r {
			t.Errorf("variant %q: repeated Union returned %d, want %d", v, got, r)
		}
	}
}

func TestRemDSUParentsInvariant(t *testing.T) {
	d := MustNew(VariantRemSP, 32).(*RemDSU)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 32; i++ {
		d.MakeSet()
	}
	for k := 0; k < 100; k++ {
		d.Union(Label(rng.Intn(32)), Label(rng.Intn(32)))
	}
	for i, v := range d.Parents() {
		if int(v) > i {
			t.Fatalf("REM invariant violated: p[%d] = %d", i, v)
		}
	}
}

func TestQuickFindUnionRelabelsAll(t *testing.T) {
	d := MustNew(VariantQuickFind, 6)
	for i := 0; i < 6; i++ {
		d.MakeSet()
	}
	d.Union(0, 1)
	d.Union(2, 3)
	d.Union(1, 3) // merges {0,1} and {2,3}
	for _, x := range []Label{0, 1, 2, 3} {
		if d.Find(x) != 0 {
			t.Fatalf("Find(%d) = %d, want 0", x, d.Find(x))
		}
	}
	if d.Find(4) == 0 || d.Find(5) == 0 {
		t.Fatal("untouched elements joined set 0")
	}
}

// TestRankBounded checks the logarithmic-height guarantee of link-by-rank
// without compression: after n-1 unions the find path length is <= log2(n).
func TestRankBounded(t *testing.T) {
	const n = 1024
	d := MustNew(VariantRankNC, n).(*rankDSU)
	for i := 0; i < n; i++ {
		d.MakeSet()
	}
	rng := rand.New(rand.NewSource(42))
	for k := 0; k < 4*n; k++ {
		d.Union(Label(rng.Intn(n)), Label(rng.Intn(n)))
	}
	for i := 0; i < n; i++ {
		depth := 0
		x := Label(i)
		for d.p[x] != x {
			x = d.p[x]
			depth++
			if depth > 10 { // log2(1024)
				t.Fatalf("find path from %d exceeds log2(n)", i)
			}
		}
	}
}
