package unionfind

// Flatten resolves the equivalence array p in place and assigns consecutive
// final labels 1..n to the set representatives. This is Algorithm 3 of the
// paper ("FLATTEN"): a single forward sweep that works because REM unions
// preserve p[i] <= i, so when the sweep reaches i, p[p[i]] already holds the
// final label of i's representative.
//
// p[0] is the background slot and must stay 0; the sweep covers labels
// 1..count inclusive. It returns the number of distinct final labels n.
func Flatten(p []Label, count Label) Label {
	var k Label = 1
	for i := Label(1); i <= count; i++ {
		if p[i] < i {
			p[i] = p[p[i]]
		} else {
			p[i] = k
			k++
		}
	}
	return k - 1
}

// FlattenSparse is Flatten for the parallel algorithm's sparse label space:
// provisional labels are drawn from disjoint per-chunk ranges, so most slots
// of p were never created. Slots never created hold 0 (and slot i==0 itself
// is background); they are skipped so that final labels remain consecutive.
//
// A created slot always satisfies 1 <= p[i] <= i, so p[i] == 0 is an
// unambiguous "never created" marker.
func FlattenSparse(p []Label, count Label) Label {
	var k Label = 1
	for i := Label(1); i <= count; i++ {
		switch {
		case p[i] == 0:
			// label i was never assigned by any chunk's scan
		case p[i] < i:
			p[i] = p[p[i]]
		default:
			p[i] = k
			k++
		}
	}
	return k - 1
}
