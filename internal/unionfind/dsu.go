package unionfind

import "fmt"

// DSU is the object-style disjoint-set API used by the general-purpose
// wrappers and the union-find ablation benchmarks. The CCL scan loops do not
// go through this interface; they call the free functions directly.
type DSU interface {
	// MakeSet appends a new singleton set and returns its element index.
	MakeSet() Label
	// Find returns the representative of x's set (may compress paths).
	Find(x Label) Label
	// Union unites the sets of x and y and returns the resulting root.
	Union(x, y Label) Label
	// Len returns the number of elements ever created.
	Len() int
	// Name identifies the variant in benchmark output.
	Name() string
}

// Variant names accepted by New.
const (
	VariantRemSP     = "remsp"     // REM's algorithm with splicing (the paper's choice)
	VariantRemPH     = "remph"     // REM's linking with path halving on find
	VariantRankPC    = "rankpc"    // link-by-rank + full path compression (CCLLRPC's choice)
	VariantRankPS    = "rankps"    // link-by-rank + path splitting
	VariantRankPH    = "rankph"    // link-by-rank + path halving
	VariantRankNC    = "ranknc"    // link-by-rank, no compression
	VariantSizePC    = "sizepc"    // link-by-size + full path compression
	VariantIndexPC   = "indexpc"   // link-by-index (smaller index wins) + path compression
	VariantQuickFind = "quickfind" // O(n) union oracle used for cross-checking
)

// AllVariants lists every DSU variant, in the order the ablation tables use.
func AllVariants() []string {
	return []string{
		VariantRemSP, VariantRemPH, VariantRankPC, VariantRankPS,
		VariantRankPH, VariantRankNC, VariantSizePC, VariantIndexPC,
		VariantQuickFind,
	}
}

// New constructs a DSU of the named variant with capacity preallocated for n
// elements (elements are still created one at a time with MakeSet).
func New(variant string, n int) (DSU, error) {
	switch variant {
	case VariantRemSP:
		return &RemDSU{p: make([]Label, 0, n), splice: true}, nil
	case VariantRemPH:
		return &RemDSU{p: make([]Label, 0, n), splice: false}, nil
	case VariantRankPC:
		return newRankDSU(n, findKindCompress, linkKindRank), nil
	case VariantRankPS:
		return newRankDSU(n, findKindSplit, linkKindRank), nil
	case VariantRankPH:
		return newRankDSU(n, findKindHalve, linkKindRank), nil
	case VariantRankNC:
		return newRankDSU(n, findKindNaive, linkKindRank), nil
	case VariantSizePC:
		return newRankDSU(n, findKindCompress, linkKindSize), nil
	case VariantIndexPC:
		return newRankDSU(n, findKindCompress, linkKindIndex), nil
	case VariantQuickFind:
		return &QuickFindDSU{id: make([]Label, 0, n)}, nil
	default:
		return nil, fmt.Errorf("unionfind: unknown variant %q", variant)
	}
}

// MustNew is New but panics on error.
func MustNew(variant string, n int) DSU {
	d, err := New(variant, n)
	if err != nil {
		panic(err)
	}
	return d
}

// RemDSU wraps the REM parent array in the DSU interface. With splice=true,
// Union is MergeRemSP (the paper's REMSP); with splice=false, linking is by
// index and Find uses path halving.
type RemDSU struct {
	p      []Label
	splice bool
}

// MakeSet appends a singleton.
func (d *RemDSU) MakeSet() Label {
	x := Label(len(d.p))
	d.p = append(d.p, x)
	return x
}

// Find returns the representative (the minimum element of the set, by the
// REM invariant).
func (d *RemDSU) Find(x Label) Label {
	if d.splice {
		return FindRoot(d.p, x)
	}
	return FindHalve(d.p, x)
}

// Union merges the two sets.
func (d *RemDSU) Union(x, y Label) Label {
	if d.splice {
		return MergeRemSP(d.p, x, y)
	}
	rx, ry := FindHalve(d.p, x), FindHalve(d.p, y)
	if rx == ry {
		return rx
	}
	if rx < ry {
		d.p[ry] = rx
		return rx
	}
	d.p[rx] = ry
	return ry
}

// Len returns the element count.
func (d *RemDSU) Len() int { return len(d.p) }

// Name identifies the variant.
func (d *RemDSU) Name() string {
	if d.splice {
		return VariantRemSP
	}
	return VariantRemPH
}

// Parents exposes the raw parent array (for white-box tests).
func (d *RemDSU) Parents() []Label { return d.p }

type findKind uint8
type linkKind uint8

const (
	findKindCompress findKind = iota
	findKindSplit
	findKindHalve
	findKindNaive
)

const (
	linkKindRank linkKind = iota
	linkKindSize
	linkKindIndex
)

// rankDSU implements the classical array-based union-find family:
// link-by-rank / link-by-size / link-by-index crossed with path compression /
// splitting / halving / none. CCLLRPC uses link-by-rank + path compression.
type rankDSU struct {
	p    []Label
	aux  []int32 // rank (linkKindRank) or size (linkKindSize); unused for index
	find findKind
	link linkKind
}

func newRankDSU(n int, f findKind, l linkKind) *rankDSU {
	return &rankDSU{p: make([]Label, 0, n), aux: make([]int32, 0, n), find: f, link: l}
}

func (d *rankDSU) MakeSet() Label {
	x := Label(len(d.p))
	d.p = append(d.p, x)
	if d.link == linkKindSize {
		d.aux = append(d.aux, 1)
	} else {
		d.aux = append(d.aux, 0)
	}
	return x
}

func (d *rankDSU) Find(x Label) Label {
	switch d.find {
	case findKindCompress:
		return FindCompress(d.p, x)
	case findKindSplit:
		return FindSplit(d.p, x)
	case findKindHalve:
		return FindHalve(d.p, x)
	default:
		return FindRoot(d.p, x)
	}
}

func (d *rankDSU) Union(x, y Label) Label {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return rx
	}
	switch d.link {
	case linkKindRank:
		if d.aux[rx] < d.aux[ry] {
			rx, ry = ry, rx
		}
		d.p[ry] = rx
		if d.aux[rx] == d.aux[ry] {
			d.aux[rx]++
		}
		return rx
	case linkKindSize:
		if d.aux[rx] < d.aux[ry] {
			rx, ry = ry, rx
		}
		d.p[ry] = rx
		d.aux[rx] += d.aux[ry]
		return rx
	default: // linkKindIndex: smaller index becomes the root
		if rx > ry {
			rx, ry = ry, rx
		}
		d.p[ry] = rx
		return rx
	}
}

func (d *rankDSU) Len() int { return len(d.p) }

func (d *rankDSU) Name() string {
	switch {
	case d.link == linkKindRank && d.find == findKindCompress:
		return VariantRankPC
	case d.link == linkKindRank && d.find == findKindSplit:
		return VariantRankPS
	case d.link == linkKindRank && d.find == findKindHalve:
		return VariantRankPH
	case d.link == linkKindRank && d.find == findKindNaive:
		return VariantRankNC
	case d.link == linkKindSize:
		return VariantSizePC
	default:
		return VariantIndexPC
	}
}

// QuickFindDSU is the O(n)-union oracle: every element stores its set id
// directly, so Find is exact by construction. Tests cross-check every other
// variant against it.
type QuickFindDSU struct {
	id []Label
}

// MakeSet appends a singleton.
func (d *QuickFindDSU) MakeSet() Label {
	x := Label(len(d.id))
	d.id = append(d.id, x)
	return x
}

// Find returns the stored set id.
func (d *QuickFindDSU) Find(x Label) Label { return d.id[x] }

// Union relabels the larger-id set to the smaller id.
func (d *QuickFindDSU) Union(x, y Label) Label {
	ix, iy := d.id[x], d.id[y]
	if ix == iy {
		return ix
	}
	if ix > iy {
		ix, iy = iy, ix
	}
	for i, v := range d.id {
		if v == iy {
			d.id[i] = ix
		}
	}
	return ix
}

// Len returns the element count.
func (d *QuickFindDSU) Len() int { return len(d.id) }

// Name identifies the variant.
func (d *QuickFindDSU) Name() string { return VariantQuickFind }
