package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFlattenSingletons(t *testing.T) {
	// Labels 1..4, no merges: flatten must number them 1..4.
	p := []Label{0, 1, 2, 3, 4}
	n := Flatten(p, 4)
	if n != 4 {
		t.Fatalf("n = %d, want 4", n)
	}
	for i := 1; i <= 4; i++ {
		if p[i] != Label(i) {
			t.Fatalf("p[%d] = %d, want %d", i, p[i], i)
		}
	}
}

func TestFlattenMergedPair(t *testing.T) {
	p := []Label{0, 1, 2, 3}
	MergeRemSP(p, 2, 3) // {2,3} with root 2
	n := Flatten(p, 3)
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
	if p[1] != 1 || p[2] != 2 || p[3] != 2 {
		t.Fatalf("flattened p = %v, want [0 1 2 2]", p)
	}
}

func TestFlattenRenumbersConsecutively(t *testing.T) {
	// Sets {1,3}, {2}, {4,5}: final labels must be 1,2,3 in first-seen order.
	p := []Label{0, 1, 2, 3, 4, 5}
	MergeRemSP(p, 1, 3)
	MergeRemSP(p, 4, 5)
	n := Flatten(p, 5)
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
	want := []Label{0, 1, 2, 1, 3, 3}
	for i, w := range want {
		if p[i] != w {
			t.Fatalf("p = %v, want %v", p, want)
		}
	}
}

func TestFlattenZeroCount(t *testing.T) {
	p := []Label{0}
	if n := Flatten(p, 0); n != 0 {
		t.Fatalf("n = %d, want 0", n)
	}
}

// Property: after Flatten, labels are exactly 1..n, members of one original
// set share one final label, and members of different sets get different
// final labels.
func TestPropertyFlattenPartitionFaithful(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		count := 1 + rng.Intn(120)
		p := make([]Label, count+1)
		for i := range p {
			p[i] = Label(i)
		}
		oracle := MustNew(VariantQuickFind, count+1)
		for i := 0; i <= count; i++ {
			oracle.MakeSet()
		}
		for k := 0; k < count; k++ {
			x := Label(1 + rng.Intn(count))
			y := Label(1 + rng.Intn(count))
			MergeRemSP(p, x, y)
			oracle.Union(x, y)
		}
		n := Flatten(p, Label(count))
		// Surjectivity onto 1..n and consistency with the oracle partition.
		seen := make(map[Label]bool)
		for i := 1; i <= count; i++ {
			if p[i] < 1 || p[i] > n {
				return false
			}
			seen[p[i]] = true
			for j := 1; j < i; j++ {
				sameOracle := oracle.Find(Label(i)) == oracle.Find(Label(j))
				if sameOracle != (p[i] == p[j]) {
					return false
				}
			}
		}
		return len(seen) == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFlattenSparseSkipsUncreated(t *testing.T) {
	// Labels 2 and 5 created (simulating two chunks with offsets), merged.
	p := make([]Label, 8)
	p[2] = 2
	p[5] = 5
	MergeRemSP(p, 2, 5)
	n := FlattenSparse(p, 7)
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
	if p[2] != 1 || p[5] != 1 {
		t.Fatalf("p = %v, want p[2]=p[5]=1", p)
	}
	if p[1] != 0 || p[3] != 0 || p[4] != 0 || p[6] != 0 || p[7] != 0 {
		t.Fatalf("uncreated slots disturbed: %v", p)
	}
}

func TestFlattenSparseConsecutive(t *testing.T) {
	// Created labels 1, 4, 6; {4,6} merged. Final labels must be 1 and 2.
	p := make([]Label, 7)
	p[1] = 1
	p[4] = 4
	p[6] = 6
	MergeRemSP(p, 4, 6)
	n := FlattenSparse(p, 6)
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
	if p[1] != 1 || p[4] != 2 || p[6] != 2 {
		t.Fatalf("p = %v", p)
	}
}

func TestFlattenSparseEqualsFlattenOnDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		count := 1 + rng.Intn(100)
		a := make([]Label, count+1)
		for i := range a {
			a[i] = Label(i)
		}
		for k := 0; k < count; k++ {
			MergeRemSP(a, Label(1+rng.Intn(count)), Label(1+rng.Intn(count)))
		}
		b := append([]Label(nil), a...)
		na := Flatten(a, Label(count))
		nb := FlattenSparse(b, Label(count))
		if na != nb {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
