package unionfind

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

func TestNewLockTableDefaults(t *testing.T) {
	lt := NewLockTable(0)
	if lt.Stripes() != DefaultLockStripes {
		t.Fatalf("Stripes = %d, want %d", lt.Stripes(), DefaultLockStripes)
	}
	lt8 := NewLockTable(8)
	if lt8.Stripes() != 8 {
		t.Fatalf("Stripes = %d, want 8", lt8.Stripes())
	}
}

func TestNewLockTableRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 12, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLockTable(%d) did not panic", n)
				}
			}()
			NewLockTable(n)
		}()
	}
}

func TestMergeLockedSequentialMatchesRemSP(t *testing.T) {
	// Used from a single goroutine, MergeLocked must produce the same
	// partition as the sequential REMSP.
	rng := rand.New(rand.NewSource(11))
	const n = 300
	seq := identity(n)
	conc := identity(n)
	lt := NewLockTable(64)
	for k := 0; k < 2*n; k++ {
		x, y := Label(rng.Intn(n)), Label(rng.Intn(n))
		MergeRemSP(seq, x, y)
		MergeLocked(conc, lt, x, y)
	}
	for i := 0; i < n-1; i++ {
		if Same(seq, Label(i), Label(i+1)) != Same(conc, Label(i), Label(i+1)) {
			t.Fatalf("partitions diverge at %d", i)
		}
	}
}

func TestMergeCASSequentialMatchesRemSP(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 300
	seq := identity(n)
	conc := identity(n)
	for k := 0; k < 2*n; k++ {
		x, y := Label(rng.Intn(n)), Label(rng.Intn(n))
		MergeRemSP(seq, x, y)
		MergeCAS(conc, x, y)
	}
	for i := 0; i < n-1; i++ {
		if Same(seq, Label(i), Label(i+1)) != Same(conc, Label(i), Label(i+1)) {
			t.Fatalf("partitions diverge at %d", i)
		}
	}
}

// stressConcurrent merges a fixed random edge list from many goroutines and
// verifies the final partition against a sequential oracle over the same
// edges. Run with -race to exercise the memory-model claims.
func stressConcurrent(t *testing.T, mergeFn func(p []Label, x, y Label)) {
	t.Helper()
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 200 + rng.Intn(800)
		edges := make([][2]Label, 4*n)
		for i := range edges {
			edges[i] = [2]Label{Label(rng.Intn(n)), Label(rng.Intn(n))}
		}

		oracle := identity(n)
		for _, e := range edges {
			MergeRemSP(oracle, e[0], e[1])
		}

		p := identity(n)
		var wg sync.WaitGroup
		chunk := (len(edges) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, len(edges))
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(part [][2]Label) {
				defer wg.Done()
				for _, e := range part {
					mergeFn(p, e[0], e[1])
				}
			}(edges[lo:hi])
		}
		wg.Wait()

		for i := 0; i < n-1; i++ {
			a, b := Label(i), Label(i+1)
			if Same(p, a, b) != Same(oracle, a, b) {
				t.Fatalf("trial %d: concurrent partition differs from oracle at (%d,%d)", trial, a, b)
			}
		}
		// The REM invariant must also survive concurrency.
		for i, v := range p {
			if int(v) > i {
				t.Fatalf("trial %d: p[%d] = %d violates REM invariant", trial, i, v)
			}
		}
	}
}

func TestMergeLockedConcurrentStress(t *testing.T) {
	lt := NewLockTable(1 << 10)
	stressConcurrent(t, func(p []Label, x, y Label) { MergeLocked(p, lt, x, y) })
}

func TestMergeCASConcurrentStress(t *testing.T) {
	stressConcurrent(t, func(p []Label, x, y Label) { MergeCAS(p, x, y) })
}

// TestConcurrentDisjointRanges mimics PAREMSP's boundary phase: goroutines
// merge across the seams of disjoint label ranges.
func TestConcurrentDisjointRanges(t *testing.T) {
	const chunks = 8
	const per = 100
	n := chunks * per
	p := identity(n)
	// Pre-merge within chunks sequentially (the "scan" phase).
	for c := 0; c < chunks; c++ {
		base := c * per
		for i := 1; i < per; i++ {
			MergeRemSP(p, Label(base), Label(base+i))
		}
	}
	// Concurrent boundary merges: join chunk c to chunk c+1.
	lt := NewLockTable(256)
	var wg sync.WaitGroup
	for c := 0; c < chunks-1; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			MergeLocked(p, lt, Label(c*per+per-1), Label((c+1)*per))
		}(c)
	}
	wg.Wait()
	root := FindRoot(p, 0)
	for i := 0; i < n; i++ {
		if FindRoot(p, Label(i)) != root {
			t.Fatalf("element %d not merged into the single component", i)
		}
	}
}
