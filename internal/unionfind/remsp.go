// Package unionfind implements the disjoint-set (union-find) machinery the
// paper builds on: REM's algorithm with splicing ("REMSP", Patwary-Blair-
// Manne, SEA 2010; Dijkstra 1976), the concurrent lock-based variant
// ("MERGER", Patwary-Refsnes-Manne, IPDPS 2012) used by PAREMSP's boundary
// phase, an idiomatic lock-free CAS variant, and a family of classical
// variants (link-by-rank/size with path compression/splitting/halving) used
// by the CCLLRPC baseline and by the union-find ablation benchmarks.
//
// All hot-path operations are free functions over a raw parent slice
// ([]int32) rather than interface methods, so the CCL scan loops inline them;
// the DSU wrapper types in dsu.go provide the general-purpose object API.
//
// REM invariant: for every node x, p[x] <= x. Unions always point the larger
// index at the smaller, so parent chains strictly decrease, which is what
// makes the FLATTEN pass (flatten.go) a single forward sweep.
package unionfind

import "repro/internal/binimg"

// Label is the node/label index type (int32, aliased from binimg).
type Label = binimg.Label

// MergeRemSP unites the sets containing x and y using REM's algorithm with
// splicing and returns the root of the united tree. This is Algorithm 2 of
// the paper, verbatim.
//
// The splicing compression: when rootx must climb to p[rootx], the old parent
// is remembered in z, p[rootx] is redirected to p[rooty] (making the subtree
// rooted at rootx a sibling of rooty), and the climb continues from z. Every
// traversed node gets a strictly smaller parent, so later finds are cheaper,
// and no second pass is needed.
func MergeRemSP(p []Label, x, y Label) Label {
	rootx, rooty := x, y
	for p[rootx] != p[rooty] {
		if p[rootx] > p[rooty] {
			if rootx == p[rootx] {
				p[rootx] = p[rooty]
				return p[rootx]
			}
			z := p[rootx]
			p[rootx] = p[rooty]
			rootx = z
		} else {
			if rooty == p[rooty] {
				p[rooty] = p[rootx]
				return p[rootx]
			}
			z := p[rooty]
			p[rooty] = p[rootx]
			rooty = z
		}
	}
	return p[rootx]
}

// FindRoot follows parent pointers to the root of x's tree without modifying
// the structure.
func FindRoot(p []Label, x Label) Label {
	for p[x] != x {
		x = p[x]
	}
	return x
}

// FindCompress follows parent pointers to the root and fully compresses the
// traversed path (two-pass path compression).
func FindCompress(p []Label, x Label) Label {
	root := x
	for p[root] != root {
		root = p[root]
	}
	for p[x] != root {
		x, p[x] = p[x], root
	}
	return root
}

// FindHalve follows parent pointers to the root using path halving: every
// other node on the path is pointed at its grandparent. Single pass.
func FindHalve(p []Label, x Label) Label {
	for p[x] != x {
		p[x] = p[p[x]]
		x = p[x]
	}
	return x
}

// FindSplit follows parent pointers to the root using path splitting: every
// node on the path is pointed at its grandparent. Single pass.
func FindSplit(p []Label, x Label) Label {
	for p[x] != x {
		x, p[x] = p[x], p[p[x]]
	}
	return x
}

// Same reports whether x and y are currently in the same set, without
// modifying the structure.
func Same(p []Label, x, y Label) bool {
	return FindRoot(p, x) == FindRoot(p, y)
}
