package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// identity returns a parent array p[i] = i of length n.
func identity(n int) []Label {
	p := make([]Label, n)
	for i := range p {
		p[i] = Label(i)
	}
	return p
}

func TestMergeRemSPBasic(t *testing.T) {
	p := identity(6)
	root := MergeRemSP(p, 2, 4)
	if root != 2 {
		t.Fatalf("Merge(2,4) root = %d, want 2 (smaller index wins)", root)
	}
	if !Same(p, 2, 4) {
		t.Fatal("2 and 4 not in the same set after merge")
	}
	if Same(p, 2, 3) {
		t.Fatal("3 spuriously merged")
	}
}

func TestMergeRemSPIdempotent(t *testing.T) {
	p := identity(4)
	MergeRemSP(p, 1, 3)
	before := append([]Label(nil), p...)
	MergeRemSP(p, 1, 3)
	MergeRemSP(p, 3, 1)
	for i := range p {
		if p[i] != before[i] {
			t.Fatalf("re-merging changed p[%d]: %d -> %d", i, before[i], p[i])
		}
	}
}

func TestMergeRemSPSelf(t *testing.T) {
	p := identity(3)
	if root := MergeRemSP(p, 1, 1); root != 1 {
		t.Fatalf("Merge(1,1) = %d, want 1", root)
	}
}

func TestMergeRemSPChain(t *testing.T) {
	// Merge a chain n-1..0 pairwise; everything must end up with root 0.
	const n = 64
	p := identity(n)
	for i := n - 1; i > 0; i-- {
		MergeRemSP(p, Label(i), Label(i-1))
	}
	for i := 0; i < n; i++ {
		if FindRoot(p, Label(i)) != 0 {
			t.Fatalf("FindRoot(%d) = %d, want 0", i, FindRoot(p, Label(i)))
		}
	}
}

// TestRemInvariant checks p[x] <= x after arbitrary merge sequences — the
// property that makes Flatten a single forward sweep.
func TestRemInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		p := identity(n)
		for k := 0; k < 3*n; k++ {
			MergeRemSP(p, Label(rng.Intn(n)), Label(rng.Intn(n)))
		}
		for i, v := range p {
			if int(v) > i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeRemSPMatchesOracle drives MergeRemSP and the quick-find oracle
// with identical random operation sequences and compares the resulting
// partitions.
func TestMergeRemSPMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(150)
		p := identity(n)
		oracle := MustNew(VariantQuickFind, n)
		for i := 0; i < n; i++ {
			oracle.MakeSet()
		}
		for k := 0; k < 2*n; k++ {
			x, y := Label(rng.Intn(n)), Label(rng.Intn(n))
			MergeRemSP(p, x, y)
			oracle.Union(x, y)
		}
		// Partitions agree iff same-set relations agree on sampled pairs and
		// on all adjacent pairs.
		for i := 0; i < n-1; i++ {
			a, b := Label(i), Label(i+1)
			if Same(p, a, b) != (oracle.Find(a) == oracle.Find(b)) {
				return false
			}
		}
		for k := 0; k < 4*n; k++ {
			a, b := Label(rng.Intn(n)), Label(rng.Intn(n))
			if Same(p, a, b) != (oracle.Find(a) == oracle.Find(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFindVariantsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		p := identity(n)
		for k := 0; k < 2*n; k++ {
			MergeRemSP(p, Label(rng.Intn(n)), Label(rng.Intn(n)))
		}
		for i := 0; i < n; i++ {
			want := FindRoot(p, Label(i))
			pc := append([]Label(nil), p...)
			ph := append([]Label(nil), p...)
			ps := append([]Label(nil), p...)
			if FindCompress(pc, Label(i)) != want ||
				FindHalve(ph, Label(i)) != want ||
				FindSplit(ps, Label(i)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFindCompressFlattensPath verifies that after FindCompress every node on
// the traversed path points directly at the root.
func TestFindCompressFlattensPath(t *testing.T) {
	// Hand-build a chain 5 -> 4 -> 3 -> 2 -> 1 -> 0.
	p := []Label{0, 0, 1, 2, 3, 4}
	if got := FindCompress(p, 5); got != 0 {
		t.Fatalf("FindCompress(5) = %d, want 0", got)
	}
	for i := 1; i <= 5; i++ {
		if p[i] != 0 {
			t.Fatalf("after compression p[%d] = %d, want 0", i, p[i])
		}
	}
}

func TestFindHalveShortensPath(t *testing.T) {
	p := []Label{0, 0, 1, 2, 3, 4}
	FindHalve(p, 5)
	// Path halving points every other node at its grandparent.
	if p[5] != 3 || p[3] != 1 {
		t.Fatalf("halving result %v, want p[5]=3 p[3]=1", p)
	}
}

func TestFindSplitShortensPath(t *testing.T) {
	p := []Label{0, 0, 1, 2, 3, 4}
	FindSplit(p, 5)
	// Path splitting points *every* node at its grandparent.
	if p[5] != 3 || p[4] != 2 || p[3] != 1 || p[2] != 0 {
		t.Fatalf("splitting result %v", p)
	}
}
