package faultinject

import (
	"testing"
	"time"
)

func TestDisarmedIsInert(t *testing.T) {
	Reset()
	if Armed() {
		t.Fatal("Armed() = true after Reset")
	}
	for _, p := range Points() {
		if Fire(p) {
			t.Fatalf("%s fired while disarmed", p)
		}
		if d := Delay(p); d != 0 {
			t.Fatalf("%s requested delay %v while disarmed", p, d)
		}
		if n := Fired(p); n != 0 {
			t.Fatalf("%s reports %d fires while disarmed", p, n)
		}
	}
}

func TestEveryNth(t *testing.T) {
	defer Reset()
	Arm(QueueFull, Spec{Every: 3})
	var fires []int
	for i := 1; i <= 10; i++ {
		if Fire(QueueFull) {
			fires = append(fires, i)
		}
	}
	want := []int{3, 6, 9}
	if len(fires) != len(want) {
		t.Fatalf("fired on calls %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fired on calls %v, want %v", fires, want)
		}
	}
	if n := Fired(QueueFull); n != 3 {
		t.Fatalf("Fired = %d, want 3", n)
	}
}

func TestTimesBudget(t *testing.T) {
	defer Reset()
	Arm(WorkerPanic, Spec{Times: 2})
	var fired int
	for i := 0; i < 10; i++ {
		if Fire(WorkerPanic) {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times with Times=2", fired)
	}
	if n := Fired(WorkerPanic); n != 2 {
		t.Fatalf("Fired = %d, want 2", n)
	}
}

func TestDelaySpec(t *testing.T) {
	defer Reset()
	Arm(WorkerStall, Spec{Every: 2, Delay: 5 * time.Millisecond})
	if d := Delay(WorkerStall); d != 0 {
		t.Fatalf("call 1 requested delay %v, want 0 (Every=2)", d)
	}
	if d := Delay(WorkerStall); d != 5*time.Millisecond {
		t.Fatalf("call 2 requested delay %v, want 5ms", d)
	}
}

func TestDisarmKeepsFiredReadable(t *testing.T) {
	defer Reset()
	Arm(DecodeError, Spec{})
	Fire(DecodeError)
	Fire(DecodeError)
	Disarm(DecodeError)
	if Fire(DecodeError) {
		t.Fatal("fired after Disarm")
	}
	if n := Fired(DecodeError); n != 2 {
		t.Fatalf("Fired = %d after Disarm, want 2", n)
	}
	if Armed() {
		t.Fatal("Armed() = true with the only point disarmed")
	}
}

func TestRearmRestartsCounters(t *testing.T) {
	defer Reset()
	Arm(DecodeError, Spec{})
	Fire(DecodeError)
	Arm(DecodeError, Spec{Every: 2})
	if n := Fired(DecodeError); n != 0 {
		t.Fatalf("Fired = %d after re-Arm, want 0", n)
	}
	if Fire(DecodeError) {
		t.Fatal("call 1 fired with Every=2 after re-Arm")
	}
	if !Fire(DecodeError) {
		t.Fatal("call 2 did not fire with Every=2")
	}
}

func TestArmFromEnv(t *testing.T) {
	defer Reset()
	err := ArmFromEnv("worker-panic:every=7:times=3,worker-stall:delay=50ms,queue-full")
	if err != nil {
		t.Fatal(err)
	}
	if !Armed() {
		t.Fatal("nothing armed")
	}
	for i := 0; i < 6; i++ {
		if Fire(WorkerPanic) {
			t.Fatalf("worker-panic fired on call %d with every=7", i+1)
		}
	}
	if !Fire(WorkerPanic) {
		t.Fatal("worker-panic did not fire on call 7")
	}
	if d := Delay(WorkerStall); d != 50*time.Millisecond {
		t.Fatalf("worker-stall delay = %v, want 50ms", d)
	}
	if !Fire(QueueFull) {
		t.Fatal("bare point did not fire on every call")
	}
}

func TestArmFromEnvRejectsBadInput(t *testing.T) {
	defer Reset()
	for _, bad := range []string{
		"no-such-point",
		"worker-panic:every=0",
		"worker-panic:every=x",
		"worker-stall:delay=fast",
		"worker-panic:times",
		"worker-panic:bogus=1",
	} {
		if err := ArmFromEnv(bad); err == nil {
			t.Errorf("ArmFromEnv(%q) = nil error", bad)
		}
		if Armed() {
			t.Fatalf("ArmFromEnv(%q) armed something despite the error", bad)
		}
	}
	if err := ArmFromEnv("  "); err != nil {
		t.Fatalf("blank spec: %v", err)
	}
}

// BenchmarkDisarmedFire documents the production cost of a wired failpoint:
// one atomic load.
func BenchmarkDisarmedFire(b *testing.B) {
	Reset()
	for i := 0; i < b.N; i++ {
		if Fire(WorkerPanic) {
			b.Fatal("fired while disarmed")
		}
	}
}
