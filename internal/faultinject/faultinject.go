// Package faultinject provides process-local failpoints for chaos testing
// the labeling service: named points in the engine and HTTP handlers call
// Fire/Delay, which do nothing (one atomic load, no allocation) until a test
// or the CCSERVE_FAULTS environment variable arms them.
//
// Each armed point carries a Spec: fire on every Nth eligible call, stop
// after a fire budget, and (for the stall points) how long to sleep. Fired
// counts are recorded so chaos tests can assert that observed failures —
// e.g. the worker-panic metric — exactly match the injected ones.
//
// The package is intentionally global (failpoints cut across layers that
// share no plumbing) and intended for tests and supervised chaos runs only;
// Reset restores the fully disarmed state.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Point names an injection site.
type Point string

// The failpoints wired into the service.
const (
	// DecodeError makes the request decode path fail before any raster is
	// produced (exercises the sync 400 path and immediately-failed jobs).
	DecodeError Point = "decode-error"
	// WorkerStall delays a worker for Spec.Delay before it computes
	// (exercises timeouts, drain waiting and queue backpressure).
	WorkerStall Point = "worker-stall"
	// WorkerPanic panics inside a worker's compute (exercises panic
	// isolation, quarantine and the worker_panics_total metric).
	WorkerPanic Point = "worker-panic"
	// EncodeSlow delays the sync result encode for Spec.Delay (exercises
	// slow-client behavior under drain).
	EncodeSlow Point = "encode-slow"
	// QueueFull rejects an admission as if the engine queue were full
	// (exercises 429 bursts and Retry-After).
	QueueFull Point = "queue-full"
)

// Points lists every failpoint the service wires up.
func Points() []Point {
	return []Point{DecodeError, WorkerStall, WorkerPanic, EncodeSlow, QueueFull}
}

// Spec configures an armed failpoint.
type Spec struct {
	// Every fires the point on every Nth eligible call; 0 or 1 means every
	// call.
	Every int
	// Times caps the number of fires; 0 means unlimited.
	Times int
	// Delay is how long the stall points sleep when they fire.
	Delay time.Duration
}

type state struct {
	spec     Spec
	disarmed bool
	hits     int64
	fired    int64
}

var (
	// armedCount is the fast-path gate: zero means every Fire/Delay call is
	// one atomic load and an immediate return. It counts armed (not
	// disarmed) table entries.
	armedCount atomic.Int32
	mu         sync.Mutex
	table      map[Point]*state
)

// Armed reports whether any failpoint is armed. The zero-cost fast path for
// call sites that want to skip building arguments.
func Armed() bool { return armedCount.Load() != 0 }

// Arm installs (or replaces) the spec for p. Counters restart at zero.
func Arm(p Point, s Spec) {
	mu.Lock()
	defer mu.Unlock()
	if table == nil {
		table = make(map[Point]*state)
	}
	if st, ok := table[p]; !ok || st.disarmed {
		armedCount.Add(1)
	}
	table[p] = &state{spec: s}
}

// Disarm stops p from firing but keeps its fired count readable until Reset.
func Disarm(p Point) {
	mu.Lock()
	defer mu.Unlock()
	if st, ok := table[p]; ok && !st.disarmed {
		st.disarmed = true
		armedCount.Add(-1)
	}
}

// Reset disarms every point and forgets all counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	table = nil
	armedCount.Store(0)
}

// Fire reports whether p fires on this call. Disarmed points never fire and
// cost one atomic load when nothing at all is armed.
func Fire(p Point) bool {
	if armedCount.Load() == 0 {
		return false
	}
	_, fired := hit(p)
	return fired
}

// Delay returns how long p wants this call to sleep (0 when it does not
// fire). The caller sleeps; points with a zero Spec.Delay never request one.
func Delay(p Point) time.Duration {
	if armedCount.Load() == 0 {
		return 0
	}
	sp, fired := hit(p)
	if !fired {
		return 0
	}
	return sp.Delay
}

// Fired returns how many times p has fired since it was last armed.
func Fired(p Point) int64 {
	mu.Lock()
	defer mu.Unlock()
	if st, ok := table[p]; ok {
		return st.fired
	}
	return 0
}

// hit advances p's counters and decides whether this call fires.
func hit(p Point) (Spec, bool) {
	mu.Lock()
	defer mu.Unlock()
	st, ok := table[p]
	if !ok || st.disarmed {
		return Spec{}, false
	}
	st.hits++
	every := st.spec.Every
	if every < 1 {
		every = 1
	}
	if st.hits%int64(every) != 0 {
		return Spec{}, false
	}
	if st.spec.Times > 0 && st.fired >= int64(st.spec.Times) {
		return Spec{}, false
	}
	st.fired++
	return st.spec, true
}

// ArmFromEnv arms failpoints from a CCSERVE_FAULTS-style string:
//
//	point[:key=value]...[,point[:key=value]...]...
//
// where key is every, times or delay (a time.Duration), e.g.
//
//	worker-panic:every=7:times=3,worker-stall:delay=50ms
//
// An empty string arms nothing. Unknown points or options are an error (and
// nothing from the string is armed).
func ArmFromEnv(v string) error {
	v = strings.TrimSpace(v)
	if v == "" {
		return nil
	}
	known := make(map[Point]bool)
	for _, p := range Points() {
		known[p] = true
	}
	type armReq struct {
		p Point
		s Spec
	}
	var reqs []armReq
	for _, part := range strings.Split(v, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		p := Point(fields[0])
		if !known[p] {
			return fmt.Errorf("faultinject: unknown failpoint %q (have %s)", fields[0], pointNames())
		}
		var s Spec
		for _, f := range fields[1:] {
			key, val, ok := strings.Cut(f, "=")
			if !ok {
				return fmt.Errorf("faultinject: %s: option %q is not key=value", p, f)
			}
			switch key {
			case "every":
				n, err := strconv.Atoi(val)
				if err != nil || n < 1 {
					return fmt.Errorf("faultinject: %s: every=%q is not a positive integer", p, val)
				}
				s.Every = n
			case "times":
				n, err := strconv.Atoi(val)
				if err != nil || n < 1 {
					return fmt.Errorf("faultinject: %s: times=%q is not a positive integer", p, val)
				}
				s.Times = n
			case "delay":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return fmt.Errorf("faultinject: %s: delay=%q is not a duration", p, val)
				}
				s.Delay = d
			default:
				return fmt.Errorf("faultinject: %s: unknown option %q (want every, times or delay)", p, key)
			}
		}
		reqs = append(reqs, armReq{p, s})
	}
	for _, r := range reqs {
		Arm(r.p, r.s)
	}
	return nil
}

func pointNames() string {
	var names []string
	for _, p := range Points() {
		names = append(names, string(p))
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
