// Package stats computes connected-component statistics from label maps and
// provides the labeling validators the test suite is built on: structural
// validation (is this a correct CCL result for this image?) and equivalence
// (do two labelings encode the same partition?).
package stats

import (
	"fmt"
	"sort"

	"repro/internal/binimg"
)

// Label aliases the repository-wide label type.
type Label = binimg.Label

// Component aggregates the per-component measurements downstream
// applications consume (the paper's motivating uses: inspection, target
// recognition, medical image analysis).
type Component struct {
	Label     Label
	Area      int // pixel count
	MinX      int // bounding box
	MinY      int
	MaxX      int // inclusive
	MaxY      int
	CentroidX float64
	CentroidY float64
}

// Width returns the bounding-box width of the component.
func (c Component) Width() int { return c.MaxX - c.MinX + 1 }

// Height returns the bounding-box height of the component.
func (c Component) Height() int { return c.MaxY - c.MinY + 1 }

// BBoxArea returns the bounding-box area.
func (c Component) BBoxArea() int { return c.Width() * c.Height() }

// Extent returns Area / BBoxArea, a standard compactness measure in (0, 1].
func (c Component) Extent() float64 { return float64(c.Area) / float64(c.BBoxArea()) }

// Components computes per-component statistics from a label map whose labels
// are consecutive 1..n (the postcondition of every labeler in this
// repository). The result is indexed by label-1.
func Components(lm *binimg.LabelMap) []Component {
	n := int(lm.Max())
	out := make([]Component, n)
	for i := range out {
		out[i] = Component{Label: Label(i + 1), MinX: lm.Width, MinY: lm.Height, MaxX: -1, MaxY: -1}
	}
	var sumX, sumY []int64
	sumX = make([]int64, n)
	sumY = make([]int64, n)
	for y := 0; y < lm.Height; y++ {
		row := y * lm.Width
		for x := 0; x < lm.Width; x++ {
			v := lm.L[row+x]
			if v == 0 {
				continue
			}
			c := &out[v-1]
			c.Area++
			if x < c.MinX {
				c.MinX = x
			}
			if x > c.MaxX {
				c.MaxX = x
			}
			if y < c.MinY {
				c.MinY = y
			}
			if y > c.MaxY {
				c.MaxY = y
			}
			sumX[v-1] += int64(x)
			sumY[v-1] += int64(y)
		}
	}
	for i := range out {
		if out[i].Area > 0 {
			out[i].CentroidX = float64(sumX[i]) / float64(out[i].Area)
			out[i].CentroidY = float64(sumY[i]) / float64(out[i].Area)
		}
	}
	return out
}

// AreaHistogram buckets component areas: hist[k] counts components with
// 2^k <= area < 2^(k+1) (hist[0] counts area 1).
func AreaHistogram(comps []Component) []int {
	var hist []int
	for _, c := range comps {
		k := 0
		for a := c.Area; a > 1; a >>= 1 {
			k++
		}
		for len(hist) <= k {
			hist = append(hist, 0)
		}
		hist[k]++
	}
	return hist
}

// LargestComponent returns the component with the largest area, or a zero
// Component when there are none.
func LargestComponent(comps []Component) Component {
	var best Component
	for _, c := range comps {
		if c.Area > best.Area {
			best = c
		}
	}
	return best
}

// RelabelByArea renumbers a consecutive labeling in place so that label 1 is
// the largest component, label 2 the second largest, and so on (ties broken
// by the original label, i.e. raster order). Downstream tooling routinely
// wants "the k biggest objects"; after this pass they are labels 1..k.
func RelabelByArea(lm *binimg.LabelMap, n int) {
	if n == 0 {
		return
	}
	areas := make([]int, n+1)
	for _, v := range lm.L {
		if v != 0 {
			areas[v]++
		}
	}
	order := make([]Label, n)
	for i := range order {
		order[i] = Label(i + 1)
	}
	sort.SliceStable(order, func(i, j int) bool { return areas[order[i]] > areas[order[j]] })
	remap := make([]Label, n+1)
	for rank, old := range order {
		remap[old] = Label(rank + 1)
	}
	for i, v := range lm.L {
		if v != 0 {
			lm.L[i] = remap[v]
		}
	}
}

// Validate checks that lm is a structurally correct consecutive labeling of
// img under the given connectivity:
//
//  1. lm and img have identical shape;
//  2. background pixels are labeled 0 and foreground pixels non-zero;
//  3. labels present are exactly 1..n with n == claimed;
//  4. adjacent foreground pixels share a label (no split components);
//  5. every label induces one connected region (no fused components) —
//     verified against a flood fill of the masked image.
//
// Conditions 4 and 5 together mean lm is *the* correct partition.
func Validate(img *binimg.Image, lm *binimg.LabelMap, claimed int, conn8 bool) error {
	if img.Width != lm.Width || img.Height != lm.Height {
		return fmt.Errorf("stats: shape mismatch image %dx%d vs labels %dx%d",
			img.Width, img.Height, lm.Width, lm.Height)
	}
	present := make(map[Label]bool)
	for i, v := range img.Pix {
		switch {
		case v == 0 && lm.L[i] != 0:
			return fmt.Errorf("stats: background pixel %d labeled %d", i, lm.L[i])
		case v != 0 && lm.L[i] == 0:
			return fmt.Errorf("stats: foreground pixel %d unlabeled", i)
		case v != 0:
			present[lm.L[i]] = true
		}
	}
	if len(present) != claimed {
		return fmt.Errorf("stats: %d distinct labels, claimed %d", len(present), claimed)
	}
	for l := Label(1); l <= Label(claimed); l++ {
		if !present[l] {
			return fmt.Errorf("stats: labels not consecutive: %d missing", l)
		}
	}
	// Adjacent foreground pixels must agree.
	w, h := img.Width, img.Height
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			if img.Pix[i] == 0 {
				continue
			}
			check := func(nx, ny int) error {
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					return nil
				}
				j := ny*w + nx
				if img.Pix[j] != 0 && lm.L[j] != lm.L[i] {
					return fmt.Errorf("stats: adjacent pixels (%d,%d)=%d and (%d,%d)=%d differ",
						x, y, lm.L[i], nx, ny, lm.L[j])
				}
				return nil
			}
			if err := check(x+1, y); err != nil {
				return err
			}
			if err := check(x, y+1); err != nil {
				return err
			}
			if conn8 {
				if err := check(x+1, y+1); err != nil {
					return err
				}
				if err := check(x-1, y+1); err != nil {
					return err
				}
			}
		}
	}
	// No fused components: the number of connected components (computed
	// independently) must equal the number of labels.
	if got := countComponents(img, conn8); got != claimed {
		return fmt.Errorf("stats: image has %d components, labeling claims %d", got, claimed)
	}
	return nil
}

// countComponents is an independent flood-fill counter (duplicated from the
// baseline package deliberately: the validator must not share code with the
// algorithms it validates).
func countComponents(img *binimg.Image, conn8 bool) int {
	w, h := img.Width, img.Height
	seen := make([]bool, w*h)
	stack := make([]int, 0, 256)
	n := 0
	for s, v := range img.Pix {
		if v == 0 || seen[s] {
			continue
		}
		n++
		seen[s] = true
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := i%w, i/w
			push := func(nx, ny int) {
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					return
				}
				j := ny*w + nx
				if img.Pix[j] != 0 && !seen[j] {
					seen[j] = true
					stack = append(stack, j)
				}
			}
			push(x-1, y)
			push(x+1, y)
			push(x, y-1)
			push(x, y+1)
			if conn8 {
				push(x-1, y-1)
				push(x+1, y-1)
				push(x-1, y+1)
				push(x+1, y+1)
			}
		}
	}
	return n
}

// Equivalent reports whether two label maps encode the same partition of the
// same foreground, i.e. there is a bijection between their label sets that
// maps one onto the other. Different algorithms may number components
// differently (scan order differs), so tests compare with this rather than
// raw equality.
func Equivalent(a, b *binimg.LabelMap) error {
	if a.Width != b.Width || a.Height != b.Height {
		return fmt.Errorf("stats: shape mismatch %dx%d vs %dx%d", a.Width, a.Height, b.Width, b.Height)
	}
	ab := make(map[Label]Label)
	ba := make(map[Label]Label)
	for i := range a.L {
		la, lb := a.L[i], b.L[i]
		if (la == 0) != (lb == 0) {
			return fmt.Errorf("stats: foreground mismatch at pixel %d: %d vs %d", i, la, lb)
		}
		if la == 0 {
			continue
		}
		if m, ok := ab[la]; ok && m != lb {
			return fmt.Errorf("stats: label %d maps to both %d and %d", la, m, lb)
		}
		ab[la] = lb
		if m, ok := ba[lb]; ok && m != la {
			return fmt.Errorf("stats: label %d mapped from both %d and %d", lb, m, la)
		}
		ba[lb] = la
	}
	return nil
}
