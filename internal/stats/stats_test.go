package stats_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/binimg"
	"repro/internal/core"
	"repro/internal/stats"
)

func TestComponentsBasic(t *testing.T) {
	img := binimg.MustParse(`
		##...
		##...
		....#`)
	lm, n := baseline.FloodFill(img, baseline.Conn8)
	comps := stats.Components(lm)
	if len(comps) != n || n != 2 {
		t.Fatalf("len(comps) = %d, n = %d, want 2", len(comps), n)
	}
	sq := comps[0]
	if sq.Area != 4 || sq.MinX != 0 || sq.MaxX != 1 || sq.MinY != 0 || sq.MaxY != 1 {
		t.Fatalf("square component wrong: %+v", sq)
	}
	if sq.CentroidX != 0.5 || sq.CentroidY != 0.5 {
		t.Fatalf("square centroid (%v,%v), want (0.5,0.5)", sq.CentroidX, sq.CentroidY)
	}
	if sq.Width() != 2 || sq.Height() != 2 || sq.BBoxArea() != 4 || sq.Extent() != 1 {
		t.Fatalf("square geometry wrong: %+v", sq)
	}
	dot := comps[1]
	if dot.Area != 1 || dot.MinX != 4 || dot.MinY != 2 {
		t.Fatalf("dot component wrong: %+v", dot)
	}
}

func TestComponentsEmpty(t *testing.T) {
	lm := binimg.NewLabelMap(5, 5)
	if comps := stats.Components(lm); len(comps) != 0 {
		t.Fatalf("empty map produced %d components", len(comps))
	}
}

func TestComponentsAreaSumsToForeground(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	img := binimg.New(40, 40)
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(2))
	}
	lm, _ := core.AREMSP(img)
	total := 0
	for _, c := range stats.Components(lm) {
		total += c.Area
	}
	if total != img.ForegroundCount() {
		t.Fatalf("areas sum to %d, want %d", total, img.ForegroundCount())
	}
}

func TestAreaHistogram(t *testing.T) {
	comps := []stats.Component{{Area: 1}, {Area: 1}, {Area: 2}, {Area: 3}, {Area: 8}}
	hist := stats.AreaHistogram(comps)
	// area 1 -> bucket 0; areas 2,3 -> bucket 1; area 8 -> bucket 3.
	want := []int{2, 2, 0, 1}
	if len(hist) != len(want) {
		t.Fatalf("hist = %v, want %v", hist, want)
	}
	for i := range want {
		if hist[i] != want[i] {
			t.Fatalf("hist = %v, want %v", hist, want)
		}
	}
}

func TestLargestComponent(t *testing.T) {
	comps := []stats.Component{{Label: 1, Area: 3}, {Label: 2, Area: 9}, {Label: 3, Area: 5}}
	if got := stats.LargestComponent(comps); got.Label != 2 {
		t.Fatalf("LargestComponent = %+v, want label 2", got)
	}
	if got := stats.LargestComponent(nil); got.Area != 0 {
		t.Fatalf("LargestComponent(nil) = %+v", got)
	}
}

func TestValidateAcceptsCorrectLabeling(t *testing.T) {
	img := binimg.MustParse("#.#\n.#.\n#.#")
	lm, n := baseline.FloodFill(img, baseline.Conn8)
	if err := stats.Validate(img, lm, n, true); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	img := binimg.MustParse("##.\n...\n..#")
	lm, n := baseline.FloodFill(img, baseline.Conn8) // labels: 1 and 2

	cases := []struct {
		name    string
		mutate  func(*binimg.LabelMap) (*binimg.LabelMap, int)
		errPart string
	}{
		{"shape mismatch", func(m *binimg.LabelMap) (*binimg.LabelMap, int) {
			return binimg.NewLabelMap(2, 2), n
		}, "shape"},
		{"labeled background", func(m *binimg.LabelMap) (*binimg.LabelMap, int) {
			m.Set(2, 0, 1)
			return m, n
		}, "background"},
		{"unlabeled foreground", func(m *binimg.LabelMap) (*binimg.LabelMap, int) {
			m.Set(0, 0, 0)
			return m, n
		}, "unlabeled"},
		{"wrong count", func(m *binimg.LabelMap) (*binimg.LabelMap, int) {
			return m, 3
		}, "claimed"},
		{"non-consecutive", func(m *binimg.LabelMap) (*binimg.LabelMap, int) {
			m.Set(2, 2, 9) // component 2 renamed to 9
			return m, 2
		}, "consecutive"},
		{"split component", func(m *binimg.LabelMap) (*binimg.LabelMap, int) {
			m.Set(1, 0, 2) // half of component 1 renamed
			return m, 2
		}, "differ"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, claimed := tc.mutate(lm.Clone())
			err := stats.Validate(img, m, claimed, true)
			if err == nil {
				t.Fatalf("mutation accepted")
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("error %q does not mention %q", err, tc.errPart)
			}
		})
	}
}

func TestValidateDetectsFusedComponents(t *testing.T) {
	// Two separate components given the same label: adjacency checks pass
	// (no adjacent disagreeing pixels), only the component count exposes it.
	img := binimg.MustParse("#...#")
	lm := binimg.NewLabelMap(5, 1)
	lm.Set(0, 0, 1)
	lm.Set(4, 0, 1)
	if err := stats.Validate(img, lm, 1, true); err == nil {
		t.Fatal("fused labeling accepted")
	}
}

func TestEquivalentAcceptsRelabeling(t *testing.T) {
	img := binimg.MustParse("#.#\n...\n#.#")
	a, _ := baseline.FloodFill(img, baseline.Conn8)
	b := a.Clone()
	// Permute labels 1..4 -> 4,3,2,1.
	for i, v := range b.L {
		if v != 0 {
			b.L[i] = 5 - v
		}
	}
	if err := stats.Equivalent(a, b); err != nil {
		t.Fatal(err)
	}
}

func TestEquivalentRejections(t *testing.T) {
	img := binimg.MustParse("#.#")
	a, _ := baseline.FloodFill(img, baseline.Conn8)

	// Foreground mismatch.
	b := a.Clone()
	b.L[0] = 0
	if err := stats.Equivalent(a, b); err == nil {
		t.Fatal("foreground mismatch accepted")
	}

	// Non-injective mapping: two labels in a map to one label in b.
	b = a.Clone()
	b.L[2] = b.L[0]
	if err := stats.Equivalent(a, b); err == nil {
		t.Fatal("fusing map accepted")
	}

	// Non-functional mapping: one label in a maps to two labels in b.
	c := binimg.NewLabelMap(3, 1)
	c.L[0] = 1
	c.L[2] = 2
	d := binimg.NewLabelMap(3, 1)
	d.L[0] = 1
	d.L[2] = 1
	if err := stats.Equivalent(d, c); err == nil {
		t.Fatal("splitting map accepted")
	}

	// Shape mismatch.
	if err := stats.Equivalent(a, binimg.NewLabelMap(2, 2)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
