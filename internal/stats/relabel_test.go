package stats_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/binimg"
	"repro/internal/stats"
)

func TestRelabelByAreaOrdering(t *testing.T) {
	img := binimg.MustParse(`
		#....###
		.....###
		##......`)
	lm, n := baseline.FloodFill(img, baseline.Conn8) // raster order: 1px, 6px, 2px
	stats.RelabelByArea(lm, n)
	comps := stats.Components(lm)
	if comps[0].Area != 6 || comps[1].Area != 2 || comps[2].Area != 1 {
		t.Fatalf("areas after relabel: %d %d %d, want 6 2 1",
			comps[0].Area, comps[1].Area, comps[2].Area)
	}
}

func TestRelabelByAreaTieStability(t *testing.T) {
	img := binimg.MustParse("#.#")
	lm, n := baseline.FloodFill(img, baseline.Conn8)
	stats.RelabelByArea(lm, n)
	// Equal areas: raster order preserved.
	if lm.At(0, 0) != 1 || lm.At(2, 0) != 2 {
		t.Fatalf("tie order changed: %s", lm)
	}
}

func TestRelabelByAreaEmpty(t *testing.T) {
	lm := binimg.NewLabelMap(4, 4)
	stats.RelabelByArea(lm, 0) // must not panic
	if lm.Max() != 0 {
		t.Fatal("empty map disturbed")
	}
}

// Property: RelabelByArea preserves the partition and produces non-increasing
// areas over labels 1..n.
func TestPropertyRelabelByArea(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 1+rng.Intn(30), 1+rng.Intn(30)
		img := binimg.New(w, h)
		for i := range img.Pix {
			img.Pix[i] = uint8(rng.Intn(2))
		}
		lm, n := baseline.FloodFill(img, baseline.Conn8)
		orig := lm.Clone()
		stats.RelabelByArea(lm, n)
		if stats.Equivalent(orig, lm) != nil {
			return false
		}
		if err := stats.Validate(img, lm, n, true); err != nil {
			return false
		}
		comps := stats.Components(lm)
		for i := 1; i < len(comps); i++ {
			if comps[i].Area > comps[i-1].Area {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
