package harness_test

import (
	"testing"

	paremsp "repro"
	"repro/internal/harness"
)

// TestAlgorithmConformance is the differential conformance suite: every
// algorithm the library exposes is run over every corpus image and must
// produce the flood-fill oracle's partition (label numbering may differ)
// with the same component count. This is the one place where all twelve
// algorithms face the same inputs.
func TestAlgorithmConformance(t *testing.T) {
	corpus := harness.Corpus()
	for _, alg := range paremsp.Algorithms() {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			for _, ci := range corpus {
				want, err := paremsp.Label(ci.Image, paremsp.Options{Algorithm: paremsp.AlgFloodFill})
				if err != nil {
					t.Fatalf("%s: oracle: %v", ci.Name, err)
				}
				got, err := paremsp.Label(ci.Image, paremsp.Options{Algorithm: alg})
				if err != nil {
					t.Fatalf("%s: %v", ci.Name, err)
				}
				if got.NumComponents != want.NumComponents {
					t.Errorf("%s: %d components, oracle found %d", ci.Name, got.NumComponents, want.NumComponents)
					continue
				}
				if err := paremsp.Equivalent(got.Labels, want.Labels); err != nil {
					t.Errorf("%s: partition differs from oracle: %v", ci.Name, err)
				}
			}
		})
	}
}

// TestAlgorithmConformanceThreads re-runs the parallel algorithms at
// awkward thread counts (1, 3, and more threads than rows) over the corpus;
// chunk-boundary bugs hide at exactly these shapes.
func TestAlgorithmConformanceThreads(t *testing.T) {
	corpus := harness.Corpus()
	for _, alg := range []paremsp.Algorithm{paremsp.AlgPAREMSP, paremsp.AlgPBREMSP} {
		for _, threads := range []int{1, 3, 1000} {
			for _, ci := range corpus {
				want, err := paremsp.Label(ci.Image, paremsp.Options{Algorithm: paremsp.AlgFloodFill})
				if err != nil {
					t.Fatalf("%s: oracle: %v", ci.Name, err)
				}
				got, err := paremsp.Label(ci.Image, paremsp.Options{Algorithm: alg, Threads: threads})
				if err != nil {
					t.Fatalf("%s/%s/t%d: %v", alg, ci.Name, threads, err)
				}
				if got.NumComponents != want.NumComponents {
					t.Errorf("%s/%s/t%d: %d components, oracle found %d",
						alg, ci.Name, threads, got.NumComponents, want.NumComponents)
					continue
				}
				if err := paremsp.Equivalent(got.Labels, want.Labels); err != nil {
					t.Errorf("%s/%s/t%d: partition differs: %v", alg, ci.Name, threads, err)
				}
			}
		}
	}
}
