package harness

import (
	"fmt"

	"repro/internal/binimg"
	"repro/internal/dataset"
)

// CorpusImage is one entry of the shared conformance corpus.
type CorpusImage struct {
	Name  string
	Image *binimg.Image
}

// Corpus returns the shared generated corpus the differential test suites
// run every algorithm over: uniform noise at densities 1/25/50/75/99% in
// widths that straddle the 64-bit word boundary of the bit-packed scans
// (1, 63, 64, 65) plus a wider raster, and the degenerate shapes — empty,
// 1-pixel, 1-row, 1-column, all-foreground, all-background — where scan
// masks and run extraction have their edge cases. Generation is
// deterministic, so every suite sees the same pixels.
func Corpus() []CorpusImage {
	var out []CorpusImage
	densities := []int{1, 25, 50, 75, 99}
	widths := []int{1, 63, 64, 65, 150}
	for _, d := range densities {
		for _, w := range widths {
			h := 40
			if w == 1 {
				h = 200 // keep 1-wide rasters tall enough to form columns
			}
			seed := int64(d*1000 + w)
			out = append(out, CorpusImage{
				Name:  fmt.Sprintf("noise_d%02d_w%d", d, w),
				Image: dataset.UniformNoise(w, h, float64(d)/100, seed),
			})
		}
	}

	onePixelFG := binimg.New(1, 1)
	onePixelFG.Pix[0] = 1
	allFG := binimg.New(65, 33)
	for i := range allFG.Pix {
		allFG.Pix[i] = 1
	}
	out = append(out,
		CorpusImage{Name: "empty_0x0", Image: binimg.New(0, 0)},
		CorpusImage{Name: "pixel_bg", Image: binimg.New(1, 1)},
		CorpusImage{Name: "pixel_fg", Image: onePixelFG},
		CorpusImage{Name: "row_1", Image: dataset.UniformNoise(130, 1, 0.5, 7)},
		CorpusImage{Name: "col_1", Image: dataset.UniformNoise(1, 130, 0.5, 8)},
		CorpusImage{Name: "all_fg", Image: allFG},
		CorpusImage{Name: "all_bg", Image: binimg.New(65, 33)},
		CorpusImage{Name: "checker_1", Image: dataset.Checkerboard(67, 41, 1)},
		CorpusImage{Name: "stripes_v", Image: dataset.Stripes(129, 37, 1, 1, true)},
	)
	return out
}
