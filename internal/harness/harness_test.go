package harness_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

func sample(ds ...time.Duration) harness.Sample {
	return harness.Sample{Runs: ds}
}

func TestSampleStatistics(t *testing.T) {
	s := sample(4*time.Millisecond, 1*time.Millisecond, 3*time.Millisecond, 2*time.Millisecond)
	if s.Min() != 1*time.Millisecond {
		t.Errorf("Min = %v", s.Min())
	}
	if s.Max() != 4*time.Millisecond {
		t.Errorf("Max = %v", s.Max())
	}
	if s.Mean() != 2500*time.Microsecond {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Median() != 2500*time.Microsecond {
		t.Errorf("Median = %v", s.Median())
	}
	odd := sample(5*time.Millisecond, 1*time.Millisecond, 3*time.Millisecond)
	if odd.Median() != 3*time.Millisecond {
		t.Errorf("odd Median = %v", odd.Median())
	}
}

func TestSampleEmpty(t *testing.T) {
	var s harness.Sample
	if s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Median() != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample statistics must be zero")
	}
}

func TestStddev(t *testing.T) {
	s := sample(time.Second, time.Second, time.Second)
	if s.Stddev() != 0 {
		t.Errorf("constant sample stddev = %v", s.Stddev())
	}
	s2 := sample(1*time.Second, 3*time.Second)
	// Sample stddev of {1, 3} seconds is sqrt(2).
	if got := s2.Stddev(); got < 1.414 || got > 1.415 {
		t.Errorf("stddev = %v, want ~1.4142", got)
	}
}

func TestMeasureCountsAndWarmup(t *testing.T) {
	calls := 0
	s := harness.Measure(5, 2, func() { calls++ })
	if calls != 7 {
		t.Fatalf("f called %d times, want 7 (5 timed + 2 warmup)", calls)
	}
	if len(s.Runs) != 5 {
		t.Fatalf("recorded %d runs, want 5", len(s.Runs))
	}
}

func TestAggregate(t *testing.T) {
	agg := harness.Aggregate([]harness.Sample{
		sample(2 * time.Millisecond),                   // mean 2ms
		sample(4*time.Millisecond, 6*time.Millisecond), // mean 5ms
		sample(10 * time.Millisecond),                  // mean 10ms
	})
	if agg.Min != 2*time.Millisecond || agg.Max != 10*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", agg.Min, agg.Max)
	}
	if agg.Avg != 5666666*time.Nanosecond {
		t.Fatalf("Avg = %v", agg.Avg)
	}
	if (harness.Aggregate(nil) != harness.MinAvgMax{}) {
		t.Fatal("empty aggregate must be zero")
	}
}

func TestMsec(t *testing.T) {
	if got := harness.Msec(1234567 * time.Nanosecond); got != "1.23" {
		t.Fatalf("Msec = %q, want 1.23", got)
	}
}

func TestSpeedup(t *testing.T) {
	if s := harness.Speedup(10*time.Second, 2*time.Second); s != 5 {
		t.Fatalf("Speedup = %v, want 5", s)
	}
	if s := harness.Speedup(time.Second, 0); s != 0 {
		t.Fatalf("Speedup with zero denominator = %v, want 0", s)
	}
}

func TestTableRender(t *testing.T) {
	tb := harness.NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name ") {
		t.Fatalf("header misaligned: %q", lines[0])
	}
	if !strings.Contains(lines[1], "-----") {
		t.Fatalf("missing separator: %q", lines[1])
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tb.NumRows())
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := harness.NewTable("a", "b", "c")
	tb.AddRow("only")
	var sb strings.Builder
	tb.Render(&sb)
	if !strings.Contains(sb.String(), "only") {
		t.Fatal("short row lost")
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := harness.NewTable("name", "note")
	tb.AddRow("x,y", `say "hi"`)
	var sb strings.Builder
	tb.RenderCSV(&sb)
	out := sb.String()
	if !strings.Contains(out, `"x,y"`) {
		t.Fatalf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Fatalf("quote cell not escaped: %s", out)
	}
}

func TestEnvBanner(t *testing.T) {
	b := harness.EnvBanner()
	if !strings.Contains(b, "GOMAXPROCS") || !strings.Contains(b, "go1") {
		t.Fatalf("banner missing fields: %q", b)
	}
}
