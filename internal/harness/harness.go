// Package harness provides the measurement machinery the paper-reproduction
// benchmarks are built on: repeated timing with warmup, min/average/max
// aggregation (the statistics Tables II and IV report), speedup series
// (Figures 4 and 5), and aligned-table / CSV rendering.
package harness

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Sample aggregates repeated duration measurements.
type Sample struct {
	Runs []time.Duration
}

// Measure times f repeated times (after warmup un-timed runs) and collects
// the samples.
func Measure(repeats, warmup int, f func()) Sample {
	for i := 0; i < warmup; i++ {
		f()
	}
	s := Sample{Runs: make([]time.Duration, 0, repeats)}
	for i := 0; i < repeats; i++ {
		start := time.Now()
		f()
		s.Runs = append(s.Runs, time.Since(start))
	}
	return s
}

// Min returns the fastest run (0 when empty).
func (s Sample) Min() time.Duration {
	if len(s.Runs) == 0 {
		return 0
	}
	m := s.Runs[0]
	for _, d := range s.Runs[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

// Max returns the slowest run (0 when empty).
func (s Sample) Max() time.Duration {
	if len(s.Runs) == 0 {
		return 0
	}
	m := s.Runs[0]
	for _, d := range s.Runs[1:] {
		if d > m {
			m = d
		}
	}
	return m
}

// Mean returns the average run (0 when empty).
func (s Sample) Mean() time.Duration {
	if len(s.Runs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.Runs {
		sum += d
	}
	return sum / time.Duration(len(s.Runs))
}

// Median returns the median run (0 when empty).
func (s Sample) Median() time.Duration {
	if len(s.Runs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.Runs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Stddev returns the sample standard deviation in seconds (0 for fewer than
// two runs).
func (s Sample) Stddev() float64 {
	if len(s.Runs) < 2 {
		return 0
	}
	mean := s.Mean().Seconds()
	var acc float64
	for _, d := range s.Runs {
		diff := d.Seconds() - mean
		acc += diff * diff
	}
	return math.Sqrt(acc / float64(len(s.Runs)-1))
}

// MinAvgMax groups the three statistics the paper's tables report.
type MinAvgMax struct {
	Min, Avg, Max time.Duration
}

// Aggregate reduces a set of per-image samples to the dataset-class
// statistics of Tables II/IV: Min is the minimum over images of the per-image
// mean, Avg the average of means, Max the maximum of means.
func Aggregate(samples []Sample) MinAvgMax {
	if len(samples) == 0 {
		return MinAvgMax{}
	}
	out := MinAvgMax{Min: time.Duration(math.MaxInt64)}
	var sum time.Duration
	for _, s := range samples {
		m := s.Mean()
		if m < out.Min {
			out.Min = m
		}
		if m > out.Max {
			out.Max = m
		}
		sum += m
	}
	out.Avg = sum / time.Duration(len(samples))
	return out
}

// Msec renders a duration in the paper's unit (milliseconds, two decimals).
func Msec(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e6)
}

// Speedup returns base/parallel as a float (0 when parallel is 0).
func Speedup(base, parallel time.Duration) float64 {
	if parallel <= 0 {
		return 0
	}
	return base.Seconds() / parallel.Seconds()
}

// Table renders aligned console tables for the experiment binaries.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// RenderCSV writes the table as CSV (simple quoting: cells containing commas
// or quotes are quoted).
func (t *Table) RenderCSV(w io.Writer) {
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// EnvBanner describes the measurement environment, mirroring the paper's
// "Experiments" preamble (their Cray XE6 node; our host).
func EnvBanner() string {
	return fmt.Sprintf("go %s, GOMAXPROCS=%d, NumCPU=%d",
		runtime.Version(), runtime.GOMAXPROCS(0), runtime.NumCPU())
}
