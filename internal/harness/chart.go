package harness

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart renders multi-series line data as an ASCII plot, so the experiment
// binaries can draw Figures 4 and 5 the way the paper presents them (speedup
// on the y axis, thread count on the x axis, one glyph per series) without
// any plotting dependency.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	XTicks []float64
	series []chartSeries
	Height int // plot rows; 0 selects 16
	Width  int // plot columns; 0 selects 60
}

type chartSeries struct {
	name   string
	glyph  byte
	points []float64 // y value per XTicks entry; NaN = missing
}

// seriesGlyphs are assigned to series in order.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// NewChart creates a chart over the given x tick positions.
func NewChart(title, xLabel, yLabel string, xTicks []float64) *Chart {
	return &Chart{Title: title, XLabel: xLabel, YLabel: yLabel, XTicks: xTicks}
}

// AddSeries appends a named series; points must align with XTicks (use NaN
// for missing values).
func (c *Chart) AddSeries(name string, points []float64) {
	glyph := seriesGlyphs[len(c.series)%len(seriesGlyphs)]
	c.series = append(c.series, chartSeries{name: name, glyph: glyph, points: points})
}

// Render draws the chart.
func (c *Chart) Render(w io.Writer) {
	height := c.Height
	if height <= 0 {
		height = 16
	}
	width := c.Width
	if width <= 0 {
		width = 60
	}
	if len(c.XTicks) == 0 || len(c.series) == 0 {
		fmt.Fprintf(w, "%s\n(no data)\n", c.Title)
		return
	}

	// Y range across all series (always include 0).
	yMin, yMax := 0.0, 0.0
	for _, s := range c.series {
		for _, v := range s.points {
			if math.IsNaN(v) {
				continue
			}
			if v > yMax {
				yMax = v
			}
			if v < yMin {
				yMin = v
			}
		}
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	xMin, xMax := c.XTicks[0], c.XTicks[len(c.XTicks)-1]
	if xMax == xMin {
		xMax = xMin + 1
	}

	col := func(x float64) int {
		return int(math.Round((x - xMin) / (xMax - xMin) * float64(width-1)))
	}
	rowOf := func(y float64) int {
		return int(math.Round((yMax - y) / (yMax - yMin) * float64(height-1)))
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range c.series {
		for i, v := range s.points {
			if math.IsNaN(v) || i >= len(c.XTicks) {
				continue
			}
			r, cx := rowOf(v), col(c.XTicks[i])
			if r >= 0 && r < height && cx >= 0 && cx < width {
				grid[r][cx] = s.glyph
			}
		}
	}

	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
	}
	yTop := fmt.Sprintf("%.1f", yMax)
	yBot := fmt.Sprintf("%.1f", yMin)
	margin := len(yTop)
	if len(yBot) > margin {
		margin = len(yBot)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", margin)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", margin, yTop)
		case height - 1:
			label = fmt.Sprintf("%*s", margin, yBot)
		case (height - 1) / 2:
			mid := fmt.Sprintf("%.1f", (yMax+yMin)/2)
			label = fmt.Sprintf("%*s", margin, mid)
		}
		fmt.Fprintf(w, "%s |%s\n", label, strings.TrimRight(string(grid[r]), " "))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", width))

	// X tick labels (the row may extend slightly past the plot so the last
	// tick is not clipped).
	ticks := []byte(strings.Repeat(" ", width+4))
	for _, x := range c.XTicks {
		lbl := strconv(x)
		pos := col(x)
		for i := 0; i < len(lbl); i++ {
			p := pos + i
			if p >= 0 && p < len(ticks) {
				ticks[p] = lbl[i]
			}
		}
	}
	fmt.Fprintf(w, "%s  %s  (%s)\n", strings.Repeat(" ", margin), strings.TrimRight(string(ticks), " "), c.XLabel)

	// Legend.
	parts := make([]string, len(c.series))
	for i, s := range c.series {
		parts[i] = fmt.Sprintf("%c %s", s.glyph, s.name)
	}
	fmt.Fprintf(w, "%s  legend: %s; y = %s\n", strings.Repeat(" ", margin), strings.Join(parts, ", "), c.YLabel)
}

// strconv formats a tick without trailing zeros.
func strconv(x float64) string {
	if x == math.Trunc(x) {
		return fmt.Sprintf("%d", int(x))
	}
	return fmt.Sprintf("%.1f", x)
}
