package harness_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/harness"
)

func TestChartRenderBasics(t *testing.T) {
	c := harness.NewChart("Speedup", "threads", "speedup", []float64{1, 2, 4, 8})
	c.AddSeries("image_1", []float64{1, 1.9, 3.6, 6.8})
	c.AddSeries("image_2", []float64{1, 1.7, 3.1, 5.2})
	var sb strings.Builder
	c.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Speedup", "legend:", "* image_1", "o image_2", "(threads)", "6.8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// The top row must carry the max value label.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "6.8") {
		t.Fatalf("top y label wrong: %q", lines[1])
	}
}

func TestChartHandlesNaN(t *testing.T) {
	c := harness.NewChart("t", "x", "y", []float64{1, 2, 3})
	c.AddSeries("s", []float64{1, math.NaN(), 3})
	var sb strings.Builder
	c.Render(&sb) // must not panic
	if !strings.Contains(sb.String(), "legend") {
		t.Fatal("render incomplete")
	}
}

func TestChartEmpty(t *testing.T) {
	c := harness.NewChart("empty", "x", "y", nil)
	var sb strings.Builder
	c.Render(&sb)
	if !strings.Contains(sb.String(), "no data") {
		t.Fatalf("empty chart output: %q", sb.String())
	}
}

func TestChartConstantSeries(t *testing.T) {
	c := harness.NewChart("c", "x", "y", []float64{1, 2})
	c.AddSeries("flat", []float64{0, 0})
	var sb strings.Builder
	c.Render(&sb) // zero range must not divide by zero
	if sb.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestChartGlyphPlacementMonotone(t *testing.T) {
	// An increasing series must place later points on higher rows (smaller
	// row index).
	c := harness.NewChart("", "x", "y", []float64{1, 2, 3, 4})
	c.AddSeries("up", []float64{1, 2, 3, 4})
	c.Height = 8
	c.Width = 40
	var sb strings.Builder
	c.Render(&sb)
	lines := strings.Split(sb.String(), "\n")
	firstStar, lastStar := -1, -1
	for i, ln := range lines {
		if strings.Contains(ln, "*") {
			if firstStar == -1 {
				firstStar = i
			}
			lastStar = i
		}
	}
	if firstStar == -1 || firstStar == lastStar {
		t.Fatalf("stars not spread over rows:\n%s", sb.String())
	}
}
