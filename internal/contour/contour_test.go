package contour_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/binimg"
	"repro/internal/contour"
	"repro/internal/dataset"
)

func labelOf(t *testing.T, art string) (*binimg.LabelMap, int) {
	t.Helper()
	img := binimg.MustParse(art)
	lm, n := baseline.FloodFill(img, baseline.Conn8)
	return lm, n
}

func TestTraceSinglePixel(t *testing.T) {
	lm, _ := labelOf(t, ".....\n..#..\n.....")
	pts := contour.Trace(lm, 1)
	if len(pts) != 1 || pts[0] != (contour.Point{X: 2, Y: 1}) {
		t.Fatalf("points = %v", pts)
	}
	if contour.Perimeter(pts) != 0 {
		t.Fatalf("single-pixel perimeter = %v", contour.Perimeter(pts))
	}
}

func TestTraceSquare(t *testing.T) {
	lm, _ := labelOf(t, `
		....
		.##.
		.##.
		....`)
	pts := contour.Trace(lm, 1)
	if len(pts) != 4 {
		t.Fatalf("square contour has %d points: %v", len(pts), pts)
	}
	min, max := contour.BoundingBox(pts)
	if min != (contour.Point{X: 1, Y: 1}) || max != (contour.Point{X: 2, Y: 2}) {
		t.Fatalf("bbox = %v..%v", min, max)
	}
	if p := contour.Perimeter(pts); p != 4 {
		t.Fatalf("perimeter = %v, want 4", p)
	}
}

func TestTraceLine(t *testing.T) {
	lm, _ := labelOf(t, "####")
	pts := contour.Trace(lm, 1)
	// Moore tracing walks a 1-px line out and back: 0,1,2,3,2,1.
	if len(pts) != 6 {
		t.Fatalf("line contour has %d points: %v", len(pts), pts)
	}
	if pts[0] != (contour.Point{X: 0, Y: 0}) || pts[3] != (contour.Point{X: 3, Y: 0}) {
		t.Fatalf("line walk wrong: %v", pts)
	}
}

func TestTraceRingOuterBoundaryOnly(t *testing.T) {
	lm, _ := labelOf(t, `
		#####
		#...#
		#.#.#
		#...#
		#####`)
	// Ring + center dot = 2 components; the ring's outer contour must be
	// its 16 outer pixels, not the hole boundary.
	pts := contour.Trace(lm, 1)
	if len(pts) != 16 {
		t.Fatalf("ring outer contour has %d points", len(pts))
	}
	for _, p := range pts {
		if p.X != 0 && p.X != 4 && p.Y != 0 && p.Y != 4 {
			t.Fatalf("interior pixel %v on outer contour", p)
		}
	}
}

func TestTraceAllCoversEveryComponent(t *testing.T) {
	lm, n := labelOf(t, `
		#..#..##
		........
		.###....
		........
		#.#.#.#.`)
	cs := contour.TraceAll(lm, n)
	if len(cs) != n {
		t.Fatalf("TraceAll returned %d contours, want %d", len(cs), n)
	}
	for i, c := range cs {
		if c.Label != binimg.Label(i+1) {
			t.Fatalf("contour %d has label %d", i, c.Label)
		}
		if len(c.Points) == 0 {
			t.Fatalf("component %d has empty contour", c.Label)
		}
		for _, p := range c.Points {
			if lm.At(p.X, p.Y) != c.Label {
				t.Fatalf("contour point %v not on component %d", p, c.Label)
			}
		}
	}
}

func TestTraceMissingLabel(t *testing.T) {
	lm, _ := labelOf(t, "#")
	if pts := contour.Trace(lm, 99); pts != nil {
		t.Fatalf("missing label returned %v", pts)
	}
}

// TestPropertyContourLiesOnBoundary: every traced point must have at least
// one non-component 8-neighbor (or touch the image edge), and every
// component must yield a non-empty contour whose points carry its label.
func TestPropertyContourLiesOnBoundary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 2+rng.Intn(24), 2+rng.Intn(24)
		img := binimg.New(w, h)
		for i := range img.Pix {
			if rng.Float64() < 0.55 {
				img.Pix[i] = 1
			}
		}
		lm, n := baseline.FloodFill(img, baseline.Conn8)
		for _, c := range contour.TraceAll(lm, n) {
			if len(c.Points) == 0 {
				return false
			}
			for _, p := range c.Points {
				if lm.At(p.X, p.Y) != c.Label {
					return false
				}
				boundary := p.X == 0 || p.X == w-1 || p.Y == 0 || p.Y == h-1
				if !boundary {
					for dy := -1; dy <= 1 && !boundary; dy++ {
						for dx := -1; dx <= 1; dx++ {
							if lm.At(p.X+dx, p.Y+dy) != c.Label {
								boundary = true
								break
							}
						}
					}
				}
				if !boundary {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPerimeterOfDiskScalesLinearly: doubling a disk's radius roughly
// doubles its traced perimeter (sanity of the crack-length estimate).
func TestPerimeterOfDiskScalesLinearly(t *testing.T) {
	per := func(r int) float64 {
		img := dataset.Blobs(6*r, 6*r, 0, 1, 1, 0) // empty canvas
		// Draw one centered disk by brute force.
		for y := 0; y < img.Height; y++ {
			for x := 0; x < img.Width; x++ {
				dx, dy := x-3*r, y-3*r
				if dx*dx+dy*dy <= r*r {
					img.Set(x, y, 1)
				}
			}
		}
		lm, _ := baseline.FloodFill(img, baseline.Conn8)
		return contour.Perimeter(contour.Trace(lm, 1))
	}
	p10, p20 := per(10), per(20)
	ratio := p20 / p10
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("perimeter ratio %v for radius doubling, want ~2", ratio)
	}
}

func TestBoundingBoxEmpty(t *testing.T) {
	min, max := contour.BoundingBox(nil)
	if min != (contour.Point{}) || max != (contour.Point{}) {
		t.Fatal("empty bbox must be zero")
	}
}
