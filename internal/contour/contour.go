// Package contour extracts component boundaries from labeled images —
// the downstream geometry step of the inspection/recognition pipelines the
// paper motivates, and the core operation of the contour-tracing CCL family
// (Chang-Chen-Lu) the paper's related work cites.
//
// Trace follows the outer boundary of each component with Moore
// neighborhood tracing (8-connectivity, consistent with the labelers):
// starting from the component's raster-first pixel, it walks the boundary
// clockwise, emitting each boundary pixel once per visit, until it returns
// to the start pixel entering from the start direction (Jacob's stopping
// criterion).
package contour

import (
	"context"

	"repro/internal/binimg"
)

// pollRows matches the labelers' poll amortization: 64 raster rows of seed
// scanning between done-channel polls.
const pollRows = 64

// Point is a pixel coordinate.
type Point struct {
	X, Y int
}

// Contour is the ordered outer boundary of one component.
type Contour struct {
	Label  binimg.Label
	Points []Point
}

// moore lists the 8 neighbors in clockwise order starting from west.
var moore = [8]Point{
	{-1, 0}, {-1, -1}, {0, -1}, {1, -1}, {1, 0}, {1, 1}, {0, 1}, {-1, 1},
}

// TraceAll extracts the outer contour of every component in a label map
// with consecutive labels 1..n, indexed by label-1.
func TraceAll(lm *binimg.LabelMap, n int) []Contour {
	out, _ := TraceAllCtx(context.Background(), lm, n)
	return out
}

// TraceAllCtx is TraceAll with cooperative cancellation: the seed scan polls
// ctx's done channel every pollRows rows and additionally after each traced
// component (one trace can walk the whole raster). On cancellation it
// returns nil and ctx's error.
func TraceAllCtx(ctx context.Context, lm *binimg.LabelMap, n int) ([]Contour, error) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	out := make([]Contour, n)
	seen := make([]bool, n)
	found := 0
	for y := 0; y < lm.Height && found < n; y++ {
		if done != nil && y%pollRows == 0 {
			select {
			case <-done:
				return nil, ctxErr(ctx)
			default:
			}
		}
		for x := 0; x < lm.Width && found < n; x++ {
			l := lm.L[y*lm.Width+x]
			if l == 0 || seen[l-1] {
				continue
			}
			seen[l-1] = true
			found++
			out[l-1] = Contour{Label: l, Points: trace(lm, l, x, y)}
			if done != nil {
				select {
				case <-done:
					return nil, ctxErr(ctx)
				default:
				}
			}
		}
	}
	return out, nil
}

// ctxErr returns ctx's error once its done channel closed, defaulting to
// context.Canceled.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.Canceled
}

// Trace extracts the outer contour of the component with the given label,
// or nil if the label is absent.
func Trace(lm *binimg.LabelMap, label binimg.Label) []Point {
	for y := 0; y < lm.Height; y++ {
		for x := 0; x < lm.Width; x++ {
			if lm.L[y*lm.Width+x] == label {
				return trace(lm, label, x, y)
			}
		}
	}
	return nil
}

// trace runs Moore boundary tracing from the component's raster-first pixel
// (sx, sy): by construction nothing of the component lies above or to the
// left of it, so entering from the west is a valid backtrack direction.
func trace(lm *binimg.LabelMap, label binimg.Label, sx, sy int) []Point {
	w, h := lm.Width, lm.Height
	at := func(x, y int) bool {
		return x >= 0 && x < w && y >= 0 && y < h && lm.L[y*w+x] == label
	}
	start := Point{sx, sy}
	points := []Point{start}

	// Single-pixel component: no neighbors.
	single := true
	for _, d := range moore {
		if at(sx+d.X, sy+d.Y) {
			single = false
			break
		}
	}
	if single {
		return points
	}

	// dir is the index in moore of the backtrack direction (where we came
	// from). We entered the start pixel from the west (index 0).
	cur := start
	dir := 0
	startDir := -1
	for {
		// Search clockwise from the backtrack direction for the next
		// component pixel.
		next := -1
		for i := 1; i <= 8; i++ {
			k := (dir + i) % 8
			if at(cur.X+moore[k].X, cur.Y+moore[k].Y) {
				next = k
				break
			}
		}
		if next < 0 {
			return points // unreachable for multi-pixel components
		}
		if cur == start {
			if startDir == -1 {
				startDir = next
			} else if next == startDir {
				// Jacob's criterion: back at start, leaving the same way.
				return points
			}
		}
		cur = Point{cur.X + moore[next].X, cur.Y + moore[next].Y}
		if cur == start && startDir != -1 {
			// Re-entered start; loop once more to check the exit direction.
		} else {
			points = append(points, cur)
		}
		// New backtrack direction: opposite of the direction we moved in.
		dir = (next + 4) % 8
	}
}

// Perimeter returns the boundary length of a contour counting unit steps as
// 1 and diagonal steps as sqrt(2), the standard crack-length estimate.
func Perimeter(points []Point) float64 {
	if len(points) < 2 {
		return 0
	}
	const sqrt2 = 1.4142135623730951
	total := 0.0
	for i := 1; i <= len(points); i++ {
		a := points[i-1]
		b := points[i%len(points)]
		if a.X != b.X && a.Y != b.Y {
			total += sqrt2
		} else if a != b {
			total++
		}
	}
	return total
}

// BoundingBox returns the min/max corners of a contour.
func BoundingBox(points []Point) (min, max Point) {
	if len(points) == 0 {
		return
	}
	min, max = points[0], points[0]
	for _, p := range points[1:] {
		if p.X < min.X {
			min.X = p.X
		}
		if p.Y < min.Y {
			min.Y = p.Y
		}
		if p.X > max.X {
			max.X = p.X
		}
		if p.Y > max.Y {
			max.Y = p.Y
		}
	}
	return
}
