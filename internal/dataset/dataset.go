// Package dataset generates the synthetic binary-image workloads that stand
// in for the paper's datasets (USC-SIPI Texture/Aerial/Miscellaneous and the
// US National Land Cover Database 2006), which are not redistributable in
// this offline environment. Every generator is deterministic in its seed.
//
// What matters for CCL cost is not the pictures themselves but the
// binarized-image statistics that drive the algorithms: foreground density,
// component count and size distribution, run-length distribution (merge
// traffic), and raster size. Each generator targets the regime of its class:
//
//   - Texture: high-frequency periodic/noisy fields — many small components,
//     heavy merge traffic.
//   - Aerial: cellular-automata terrain with road grids — medium components
//     with irregular boundaries.
//   - Miscellaneous: sparse blob/glyph scenes — few compact components.
//   - NLCD: multi-octave value-noise land cover — huge rasters, large
//     sprawling regions; the paper's scaling workload.
package dataset

import (
	"math"
	"math/rand"

	"repro/internal/binimg"
)

// UniformNoise fills a w x h image with i.i.d. foreground pixels at the
// given density in [0, 1]. Density 0.5 is the classic CCL stress case:
// maximal label-equivalence traffic under 8-connectivity.
func UniformNoise(w, h int, density float64, seed int64) *binimg.Image {
	rng := rand.New(rand.NewSource(seed))
	im := binimg.New(w, h)
	for i := range im.Pix {
		if rng.Float64() < density {
			im.Pix[i] = 1
		}
	}
	return im
}

// Checkerboard fills the image with an alternating cell pattern of the given
// cell size. cell=1 is the worst case for provisional-label creation under
// 4-connectivity and heavy diagonal-merge traffic under 8-connectivity.
func Checkerboard(w, h, cell int) *binimg.Image {
	if cell < 1 {
		panic("dataset: cell must be >= 1")
	}
	im := binimg.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if ((x/cell)+(y/cell))%2 == 0 {
				im.Pix[y*w+x] = 1
			}
		}
	}
	return im
}

// Stripes draws foreground bands of the given thickness separated by gap
// background rows (vertical=false) or columns (vertical=true).
func Stripes(w, h, thickness, gap int, vertical bool) *binimg.Image {
	if thickness < 1 || gap < 0 {
		panic("dataset: thickness must be >= 1 and gap >= 0")
	}
	im := binimg.New(w, h)
	period := thickness + gap
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := y % period
			if vertical {
				v = x % period
			}
			if v < thickness {
				im.Pix[y*w+x] = 1
			}
		}
	}
	return im
}

// Blobs scatters n filled disks with radii drawn uniformly from
// [rMin, rMax]. Disks may overlap (overlaps merge into one component).
func Blobs(w, h, n, rMin, rMax int, seed int64) *binimg.Image {
	if rMin < 1 || rMax < rMin {
		panic("dataset: need 1 <= rMin <= rMax")
	}
	rng := rand.New(rand.NewSource(seed))
	im := binimg.New(w, h)
	for i := 0; i < n; i++ {
		r := rMin + rng.Intn(rMax-rMin+1)
		cx := rng.Intn(w)
		cy := rng.Intn(h)
		fillDisk(im, cx, cy, r)
	}
	return im
}

func fillDisk(im *binimg.Image, cx, cy, r int) {
	for dy := -r; dy <= r; dy++ {
		y := cy + dy
		if y < 0 || y >= im.Height {
			continue
		}
		for dx := -r; dx <= r; dx++ {
			x := cx + dx
			if x < 0 || x >= im.Width {
				continue
			}
			if dx*dx+dy*dy <= r*r {
				im.Pix[y*im.Width+x] = 1
			}
		}
	}
}

// Serpentine draws one boustrophedon path: full-width horizontal bands of
// the given thickness separated by gap background rows, joined alternately
// at the right and left ends. The result is a single long snaking component
// — the pathological case for repeated-pass algorithms (label information
// must propagate along the whole path) and a deep-merge stress for
// union-find.
func Serpentine(w, h, thickness, gap int) *binimg.Image {
	if thickness < 1 || gap < 1 {
		panic("dataset: thickness and gap must be >= 1")
	}
	im := binimg.New(w, h)
	step := thickness + gap
	connectRight := true
	for y0 := 0; y0 < h; y0 += step {
		y1 := minInt(y0+thickness, h)
		for y := y0; y < y1; y++ {
			for x := 0; x < w; x++ {
				im.Pix[y*w+x] = 1
			}
		}
		// Connector to the next band, alternating sides.
		if y0+step < h {
			x0, x1 := maxInt(0, w-thickness), w
			if !connectRight {
				x0, x1 = 0, minInt(thickness, w)
			}
			for y := y1; y < minInt(y0+step, h); y++ {
				for x := x0; x < x1; x++ {
					im.Pix[y*w+x] = 1
				}
			}
			connectRight = !connectRight
		}
	}
	return im
}

// ConcentricRings draws nested square rings: many nested components whose
// equivalences resolve only at ring corners — a flatten/merge stress.
func ConcentricRings(w, h, thickness, gap int) *binimg.Image {
	if thickness < 1 || gap < 1 {
		panic("dataset: thickness and gap must be >= 1")
	}
	im := binimg.New(w, h)
	step := thickness + gap
	for inset := 0; inset*2 < minInt(w, h); inset += step {
		x0, y0, x1, y1 := inset, inset, w-1-inset, h-1-inset
		if x0 > x1 || y0 > y1 {
			break
		}
		for t := 0; t < thickness; t++ {
			drawFrame(im, x0+t, y0+t, x1-t, y1-t)
		}
	}
	return im
}

func drawFrame(im *binimg.Image, x0, y0, x1, y1 int) {
	if x0 > x1 || y0 > y1 || x0 < 0 || y0 < 0 || x1 >= im.Width || y1 >= im.Height {
		return
	}
	for x := x0; x <= x1; x++ {
		im.Pix[y0*im.Width+x] = 1
		im.Pix[y1*im.Width+x] = 1
	}
	for y := y0; y <= y1; y++ {
		im.Pix[y*im.Width+x0] = 1
		im.Pix[y*im.Width+x1] = 1
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// valueNoise computes seeded multi-octave bilinear value noise in [0, 1] at
// (x, y); the NLCD surrogate thresholds it. gridSize is the coarsest feature
// scale in pixels.
type valueNoise struct {
	seed    int64
	octaves int
	grid    float64
}

func (v valueNoise) lattice(ix, iy, octave int64) float64 {
	// SplitMix64-style hash of the lattice point -> [0, 1).
	z := uint64(v.seed) ^ uint64(ix)*0x9E3779B97F4A7C15 ^ uint64(iy)*0xC2B2AE3D27D4EB4F ^ uint64(octave)*0x165667B19E3779F9
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

func (v valueNoise) at(x, y float64) float64 {
	sum, amp, norm := 0.0, 1.0, 0.0
	scale := v.grid
	for o := 0; o < v.octaves; o++ {
		gx, gy := x/scale, y/scale
		ix, iy := math.Floor(gx), math.Floor(gy)
		fx, fy := gx-ix, gy-iy
		// Smoothstep fade.
		fx = fx * fx * (3 - 2*fx)
		fy = fy * fy * (3 - 2*fy)
		i64x, i64y := int64(ix), int64(iy)
		v00 := v.lattice(i64x, i64y, int64(o))
		v10 := v.lattice(i64x+1, i64y, int64(o))
		v01 := v.lattice(i64x, i64y+1, int64(o))
		v11 := v.lattice(i64x+1, i64y+1, int64(o))
		val := v00*(1-fx)*(1-fy) + v10*fx*(1-fy) + v01*(1-fx)*fy + v11*fx*fy
		sum += val * amp
		norm += amp
		amp *= 0.5
		scale /= 2
		if scale < 1 {
			break
		}
	}
	return sum / norm
}

// LandCover is the NLCD 2006 surrogate: thresholded multi-octave value
// noise. level plays the role of im2bw's 0.5 threshold on the grayscale
// land-cover raster; featureScale sets the coarsest region size in pixels.
// The result has large sprawling regions with fractal boundaries — the load
// profile of the paper's big-image scaling runs.
func LandCover(w, h int, featureScale int, level float64, seed int64) *binimg.Image {
	if featureScale < 2 {
		panic("dataset: featureScale must be >= 2")
	}
	vn := valueNoise{seed: seed, octaves: 5, grid: float64(featureScale)}
	im := binimg.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if vn.at(float64(x), float64(y)) > level {
				im.Pix[y*w+x] = 1
			}
		}
	}
	return im
}

// Aerial is the USC-SIPI "Aerial" surrogate: cellular-automata terrain
// (4-5 rule cave generation over seeded noise) overlaid with a sparse road
// grid — mid-sized irregular components cut by thin linear structures.
func Aerial(w, h int, seed int64) *binimg.Image {
	rng := rand.New(rand.NewSource(seed))
	im := binimg.New(w, h)
	for i := range im.Pix {
		if rng.Float64() < 0.46 {
			im.Pix[i] = 1
		}
	}
	// Smooth with the 4-5 rule: a pixel becomes foreground if 5+ of its 3x3
	// neighborhood (counting itself) are foreground.
	for iter := 0; iter < 4; iter++ {
		next := make([]uint8, len(im.Pix))
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				n := 0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						nx, ny := x+dx, y+dy
						if nx < 0 || nx >= w || ny < 0 || ny >= h {
							n++ // borders count as land
							continue
						}
						n += int(im.Pix[ny*w+nx])
					}
				}
				if n >= 5 {
					next[y*w+x] = 1
				}
			}
		}
		im.Pix = next
	}
	// Road grid: background streets every ~64 pixels cut the terrain.
	roadPeriod := maxInt(32, minInt(w, h)/8)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x%roadPeriod < 2 || y%roadPeriod < 2 {
				im.Pix[y*w+x] = 0
			}
		}
	}
	return im
}

// glyph5x7 is a tiny bitmap font used by Text; each glyph is 5 columns by
// 7 rows, encoded row-major as 35 bits.
var glyph5x7 = map[rune][7]uint8{
	'A': {0b01110, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001},
	'B': {0b11110, 0b10001, 0b10001, 0b11110, 0b10001, 0b10001, 0b11110},
	'C': {0b01110, 0b10001, 0b10000, 0b10000, 0b10000, 0b10001, 0b01110},
	'E': {0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b11111},
	'G': {0b01110, 0b10001, 0b10000, 0b10111, 0b10001, 0b10001, 0b01110},
	'I': {0b01110, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},
	'L': {0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b11111},
	'M': {0b10001, 0b11011, 0b10101, 0b10101, 0b10001, 0b10001, 0b10001},
	'N': {0b10001, 0b11001, 0b10101, 0b10011, 0b10001, 0b10001, 0b10001},
	'O': {0b01110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110},
	'P': {0b11110, 0b10001, 0b10001, 0b11110, 0b10000, 0b10000, 0b10000},
	'R': {0b11110, 0b10001, 0b10001, 0b11110, 0b10100, 0b10010, 0b10001},
	'S': {0b01111, 0b10000, 0b10000, 0b01110, 0b00001, 0b00001, 0b11110},
	'T': {0b11111, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100},
	' ': {},
}

// Text renders the given string repeatedly across the image at the given
// pixel scale (each glyph cell is 5*scale x 7*scale with one glyph-column of
// spacing) — the OCR/character-recognition workload class. Unsupported runes
// render as spaces.
func Text(w, h int, s string, scale int, seed int64) *binimg.Image {
	if scale < 1 {
		panic("dataset: scale must be >= 1")
	}
	im := binimg.New(w, h)
	if len(s) == 0 {
		return im
	}
	rng := rand.New(rand.NewSource(seed))
	cellW, cellH := 6*scale, 9*scale
	runes := []rune(s)
	for y0 := rng.Intn(cellH / 2); y0+7*scale <= h; y0 += cellH {
		for i, x0 := 0, rng.Intn(cellW/2); x0+5*scale <= w; i, x0 = i+1, x0+cellW {
			g := glyph5x7[runes[i%len(runes)]]
			for gy := 0; gy < 7; gy++ {
				for gx := 0; gx < 5; gx++ {
					if g[gy]&(1<<(4-gx)) == 0 {
						continue
					}
					for sy := 0; sy < scale; sy++ {
						for sx := 0; sx < scale; sx++ {
							im.Pix[(y0+gy*scale+sy)*w+x0+gx*scale+sx] = 1
						}
					}
				}
			}
		}
	}
	return im
}

// Misc is the USC-SIPI "Miscellaneous" surrogate: a sparse scene mixing
// blobs and text glyphs — few, compact components.
func Misc(w, h int, seed int64) *binimg.Image {
	im := Blobs(w, h, maxInt(4, w*h/20000), 3, maxInt(4, minInt(w, h)/12), seed)
	txt := Text(w, h, "PAREMSP", maxInt(1, minInt(w, h)/96), seed+1)
	for i, v := range txt.Pix {
		if v != 0 {
			im.Pix[i] = 1
		}
	}
	return im
}

// Texture is the USC-SIPI "Texture" surrogate: thresholded high-frequency
// value noise — dense, small-grained components with heavy merge traffic.
func Texture(w, h int, seed int64) *binimg.Image {
	vn := valueNoise{seed: seed, octaves: 3, grid: 6}
	im := binimg.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if vn.at(float64(x), float64(y)) > 0.5 {
				im.Pix[y*w+x] = 1
			}
		}
	}
	return im
}
