package dataset_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/dataset"
)

func TestUniformNoiseDeterministicAndDense(t *testing.T) {
	a := dataset.UniformNoise(100, 100, 0.5, 7)
	b := dataset.UniformNoise(100, 100, 0.5, 7)
	if !a.Equal(b) {
		t.Fatal("same seed produced different images")
	}
	c := dataset.UniformNoise(100, 100, 0.5, 8)
	if a.Equal(c) {
		t.Fatal("different seeds produced identical images")
	}
	if d := a.Density(); d < 0.45 || d > 0.55 {
		t.Fatalf("density %v far from 0.5", d)
	}
	if d := dataset.UniformNoise(100, 100, 0, 1).Density(); d != 0 {
		t.Fatalf("density-0 noise has foreground %v", d)
	}
	if d := dataset.UniformNoise(100, 100, 1, 1).Density(); d != 1 {
		t.Fatalf("density-1 noise has background %v", d)
	}
}

func TestCheckerboardStructure(t *testing.T) {
	im := dataset.Checkerboard(8, 8, 1)
	if im.At(0, 0) != 1 || im.At(1, 0) != 0 || im.At(1, 1) != 1 {
		t.Fatal("cell-1 checkerboard wrong")
	}
	if im.ForegroundCount() != 32 {
		t.Fatalf("count = %d, want 32", im.ForegroundCount())
	}
	im3 := dataset.Checkerboard(9, 9, 3)
	if im3.At(0, 0) != 1 || im3.At(2, 2) != 1 || im3.At(3, 0) != 0 {
		t.Fatal("cell-3 checkerboard wrong")
	}
}

func TestStripesComponentCount(t *testing.T) {
	// 40 rows, thickness 2, gap 3 -> stripes at y%5<2: rows 0-1, 5-6, ...
	im := dataset.Stripes(30, 40, 2, 3, false)
	_, n := baseline.FloodFill(im, baseline.Conn8)
	if n != 8 {
		t.Fatalf("horizontal stripes: %d components, want 8", n)
	}
	imv := dataset.Stripes(40, 30, 2, 3, true)
	_, nv := baseline.FloodFill(imv, baseline.Conn8)
	if nv != 8 {
		t.Fatalf("vertical stripes: %d components, want 8", nv)
	}
}

func TestBlobsWithinBounds(t *testing.T) {
	im := dataset.Blobs(50, 50, 10, 2, 6, 3)
	if im.ForegroundCount() == 0 {
		t.Fatal("blobs produced empty image")
	}
	if err := im.Validate(); err != nil {
		t.Fatal(err)
	}
	_, n := baseline.FloodFill(im, baseline.Conn8)
	if n < 1 || n > 10 {
		t.Fatalf("blob count %d outside [1, 10]", n)
	}
}

func TestSerpentineSingleComponent(t *testing.T) {
	for _, size := range []int{21, 41, 81} {
		im := dataset.Serpentine(size, size, 2, 3)
		_, n := baseline.FloodFill(im, baseline.Conn8)
		if n != 1 {
			t.Fatalf("serpentine %dx%d has %d components, want 1", size, size, n)
		}
	}
}

func TestConcentricRingsComponentCount(t *testing.T) {
	// 32x32, thickness 1, gap 3: rings at insets 0, 4, 8, 12 -> 4 components.
	im := dataset.ConcentricRings(32, 32, 1, 3)
	_, n := baseline.FloodFill(im, baseline.Conn8)
	if n != 4 {
		t.Fatalf("rings: %d components, want 4", n)
	}
}

func TestLandCoverDeterministicAndBalanced(t *testing.T) {
	a := dataset.LandCover(128, 128, 32, 0.5, 9)
	b := dataset.LandCover(128, 128, 32, 0.5, 9)
	if !a.Equal(b) {
		t.Fatal("same seed produced different land cover")
	}
	d := a.Density()
	if d < 0.2 || d > 0.8 {
		t.Fatalf("land-cover density %v implausible for level 0.5", d)
	}
	// Raising the threshold must not increase foreground.
	hi := dataset.LandCover(128, 128, 32, 0.7, 9)
	if hi.ForegroundCount() > a.ForegroundCount() {
		t.Fatal("higher threshold produced more foreground")
	}
}

func TestAerialHasRoadsAndTerrain(t *testing.T) {
	im := dataset.Aerial(128, 128, 4)
	d := im.Density()
	if d < 0.1 || d > 0.9 {
		t.Fatalf("aerial density %v implausible", d)
	}
	// Road rows are background: y = 0 and 1 are roads (y%period < 2).
	for x := 0; x < im.Width; x++ {
		if im.At(x, 0) != 0 || im.At(x, 1) != 0 {
			t.Fatal("road rows not cleared")
		}
	}
	if !im.Equal(dataset.Aerial(128, 128, 4)) {
		t.Fatal("aerial not deterministic")
	}
}

func TestTextureGrain(t *testing.T) {
	im := dataset.Texture(96, 96, 11)
	_, n := baseline.FloodFill(im, baseline.Conn8)
	if n < 5 {
		t.Fatalf("texture has only %d components; expected fine grain", n)
	}
	if !im.Equal(dataset.Texture(96, 96, 11)) {
		t.Fatal("texture not deterministic")
	}
}

func TestTextRendersGlyphs(t *testing.T) {
	im := dataset.Text(64, 32, "I", 1, 1)
	if im.ForegroundCount() == 0 {
		t.Fatal("text image empty")
	}
	empty := dataset.Text(64, 32, "", 1, 1)
	if empty.ForegroundCount() != 0 {
		t.Fatal("empty string rendered pixels")
	}
	// Unknown runes render as spaces.
	spaces := dataset.Text(64, 32, "@@@", 1, 1)
	if spaces.ForegroundCount() != 0 {
		t.Fatal("unsupported runes rendered pixels")
	}
}

func TestMiscMixesContent(t *testing.T) {
	im := dataset.Misc(128, 128, 21)
	if im.ForegroundCount() == 0 {
		t.Fatal("misc image empty")
	}
	_, n := baseline.FloodFill(im, baseline.Conn8)
	if n < 2 {
		t.Fatalf("misc scene has %d components; expected several", n)
	}
}

func TestGeneratorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"checkerboard cell 0":   func() { dataset.Checkerboard(4, 4, 0) },
		"stripes thickness 0":   func() { dataset.Stripes(4, 4, 0, 1, false) },
		"blobs rMin 0":          func() { dataset.Blobs(4, 4, 1, 0, 2, 1) },
		"blobs rMax < rMin":     func() { dataset.Blobs(4, 4, 1, 3, 2, 1) },
		"spiral gap 0":          func() { dataset.Serpentine(4, 4, 1, 0) },
		"rings thickness 0":     func() { dataset.ConcentricRings(4, 4, 0, 1) },
		"landcover small scale": func() { dataset.LandCover(4, 4, 1, 0.5, 1) },
		"text scale 0":          func() { dataset.Text(4, 4, "A", 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAllGeneratorsProduceValidBinaryImages(t *testing.T) {
	images := []interface {
		Validate() error
	}{
		dataset.UniformNoise(33, 17, 0.3, 1),
		dataset.Checkerboard(33, 17, 2),
		dataset.Stripes(33, 17, 1, 2, true),
		dataset.Blobs(33, 17, 5, 1, 3, 1),
		dataset.Serpentine(33, 17, 1, 2),
		dataset.ConcentricRings(33, 17, 1, 2),
		dataset.LandCover(33, 17, 8, 0.5, 1),
		dataset.Aerial(64, 64, 1),
		dataset.Texture(33, 17, 1),
		dataset.Text(33, 17, "GO", 1, 1),
		dataset.Misc(33, 17, 1),
	}
	for i, im := range images {
		if err := im.Validate(); err != nil {
			t.Errorf("generator %d: %v", i, err)
		}
	}
}
