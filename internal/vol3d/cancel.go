// Cooperative cancellation entry points, mirroring internal/core's contract:
// every *IntoCtx function is its non-ctx counterpart labeling into a
// caller-provided label volume and drawing its equivalence buffer from a
// caller-provided parent slice, with the long voxel loops (scan and relabel)
// polling ctx's done channel every few dozen raster rows. The
// boundary-plane merge and flatten phases are not polled internally — they
// touch the equivalence table, not the raster — so the parallel driver
// checks the context between phases instead.
//
// A canceled labeling leaves lv in an undefined (but reusable) state; callers
// must discard the result.

package vol3d

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/binimg"
	"repro/internal/unionfind"
)

// pollRows matches the core/scan layers' poll amortization: 64 raster rows
// of work between done-channel polls.
const pollRows = 64

// ctxDone returns ctx's done channel; nil (never cancels) for a nil ctx.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// cancelErr returns ctx's error once its done channel closed, defaulting to
// context.Canceled.
func cancelErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.Canceled
}

// stopped reports whether done is closed without blocking; a nil done never
// stops.
func stopped(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// Reset reshapes v to w×h×d, reusing the voxel buffer when large enough;
// contents are zeroed. Long-lived servers decode request bodies into pooled
// volumes this way.
func (v *Volume) Reset(w, h, d int) {
	if w < 0 || h < 0 || d < 0 {
		panic(fmt.Sprintf("vol3d: negative dimensions %dx%dx%d", w, h, d))
	}
	n := w * h * d
	if cap(v.Vox) < n {
		v.Vox = make([]uint8, n)
	} else {
		v.Vox = v.Vox[:n]
		clear(v.Vox)
	}
	v.W, v.H, v.D = w, h, d
}

// Reset reshapes lv to w×h×d, reusing the label buffer when large enough;
// contents are zeroed.
func (lv *LabelVolume) Reset(w, h, d int) {
	if w < 0 || h < 0 || d < 0 {
		panic(fmt.Sprintf("vol3d: negative dimensions %dx%dx%d", w, h, d))
	}
	n := w * h * d
	if cap(lv.L) < n {
		lv.L = make([]binimg.Label, n)
	} else {
		lv.L = lv.L[:n]
		clear(lv.L)
	}
	lv.W, lv.H, lv.D = w, h, d
}

// checkParents panics when the caller-provided parent slice cannot hold the
// labels this volume may create; p must also be zeroed
// (core.Scratch.Parents guarantees both).
func checkParents(p []binimg.Label, need int) {
	if len(p) < need+1 {
		panic(fmt.Sprintf("vol3d: parent slice holds %d labels, need %d", len(p)-1, need))
	}
}

// LabelIntoCtx is Label into a caller-provided label volume (reshaped with
// Reset) with cooperative cancellation. p must be a zeroed parent slice with
// at least MaxLabels3D(w,h,d)+1 slots —
// core.Scratch.Parents(MaxLabels3D(w,h,d)) provides one.
func LabelIntoCtx(ctx context.Context, vol *Volume, lv *LabelVolume, p []binimg.Label) (int, error) {
	lv.Reset(vol.W, vol.H, vol.D)
	if len(vol.Vox) == 0 {
		return 0, nil
	}
	checkParents(p, MaxLabels3D(vol.W, vol.H, vol.D))
	done := ctxDone(ctx)
	count, ok := scanRange(vol, lv, p, 0, 0, vol.D, done)
	if !ok {
		return 0, cancelErr(ctx)
	}
	n := unionfind.Flatten(p, count)
	if !relabelVolUntil(lv.L, p, vol.W, done) {
		return 0, cancelErr(ctx)
	}
	return int(n), nil
}

// PLabelIntoCtx is PLabel into a caller-provided label volume with
// cooperative cancellation. p must be a zeroed parent slice with at least
// MaxLabels3D(w,h,d)+1 slots (the per-plane-pair strides sum to exactly that
// bound); lt is the stripe-lock table for the boundary-plane merges (nil
// allocates a default one).
func PLabelIntoCtx(ctx context.Context, vol *Volume, lv *LabelVolume, p []binimg.Label, lt *unionfind.LockTable, threads int) (int, error) {
	w, h, d := vol.W, vol.H, vol.D
	lv.Reset(w, h, d)
	if len(vol.Vox) == 0 {
		return 0, nil
	}
	numPairs := (d + 1) / 2
	if threads <= 0 || threads > numPairs {
		threads = numPairs
	}
	if threads < 1 {
		threads = 1
	}

	// Per z-plane pair label budget, mirroring PAREMSP's per-row-pair stride.
	stride := binimg.Label(((w + 1) / 2) * ((h + 1) / 2))
	maxLabel := binimg.Label(numPairs) * stride
	checkParents(p, int(maxLabel))
	done := ctxDone(ctx)

	starts := make([]int, threads+1)
	base, rem := numPairs/threads, numPairs%threads
	pair := 0
	for c := 0; c < threads; c++ {
		starts[c] = pair * 2
		pair += base
		if c < rem {
			pair++
		}
	}
	starts[threads] = d

	var canceled atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < threads; c++ {
		zStart, zEnd := starts[c], starts[c+1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			offset := binimg.Label(zStart/2) * stride
			if _, ok := scanRange(vol, lv, p, offset, zStart, zEnd, done); !ok {
				canceled.Store(true)
			}
		}()
	}
	wg.Wait()
	if canceled.Load() {
		return 0, cancelErr(ctx)
	}

	if lt == nil {
		lt = unionfind.NewLockTable(0)
	}
	for _, z := range starts[1:threads] {
		z := z
		wg.Add(1)
		go func() {
			defer wg.Done()
			mergeBoundaryPlane(vol, lv, p, lt, z)
		}()
	}
	wg.Wait()
	if stopped(done) {
		return 0, cancelErr(ctx)
	}

	n := unionfind.FlattenSparse(p, maxLabel)
	if !relabelParUntil(lv, p, threads, done) {
		return 0, cancelErr(ctx)
	}
	return int(n), nil
}

// relabelVolUntil rewrites provisional labels through p in blocks of
// pollRows raster rows, polling done between blocks; reports whether it ran
// to completion.
func relabelVolUntil(l, p []binimg.Label, w int, done <-chan struct{}) bool {
	if done == nil {
		for i, v := range l {
			if v != 0 {
				l[i] = p[v]
			}
		}
		return true
	}
	block := pollRows * w
	if block < 1<<12 {
		block = 1 << 12
	}
	for lo := 0; lo < len(l); lo += block {
		if stopped(done) {
			return false
		}
		hi := lo + block
		if hi > len(l) {
			hi = len(l)
		}
		seg := l[lo:hi]
		for i, v := range seg {
			if v != 0 {
				seg[i] = p[v]
			}
		}
	}
	return true
}
