// Package vol3d extends the paper's two-pass CCL machinery to 3D binary
// volumes (the medical-image and cluster-analysis settings the paper's
// introduction and related work cite): a forward raster scan over voxels
// that examines the 13 already-visited neighbors of the 26-neighborhood,
// records equivalences in REM's union-find with splicing, flattens, and
// relabels — plus a parallel version that slabs the volume along z exactly
// the way PAREMSP chunks rows, merging slab-boundary planes with the
// concurrent lock-based REM union.
package vol3d

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/binimg"
	"repro/internal/unionfind"
)

// Volume is a binary voxel grid: Vox holds W*H*D bytes, x-fastest then y
// then z; 0 is background, 1 is an object voxel.
type Volume struct {
	W, H, D int
	Vox     []uint8
}

// NewVolume returns a zeroed volume.
func NewVolume(w, h, d int) *Volume {
	if w < 0 || h < 0 || d < 0 {
		panic(fmt.Sprintf("vol3d: negative dimensions %dx%dx%d", w, h, d))
	}
	return &Volume{W: w, H: h, D: d, Vox: make([]uint8, w*h*d)}
}

// At returns the voxel at (x, y, z); it panics out of range.
func (v *Volume) At(x, y, z int) uint8 {
	if x < 0 || x >= v.W || y < 0 || y >= v.H || z < 0 || z >= v.D {
		panic(fmt.Sprintf("vol3d: At(%d,%d,%d) out of range %dx%dx%d", x, y, z, v.W, v.H, v.D))
	}
	return v.Vox[(z*v.H+y)*v.W+x]
}

// Set writes the voxel at (x, y, z); it panics out of range or on a value
// other than 0 or 1.
func (v *Volume) Set(x, y, z int, val uint8) {
	if x < 0 || x >= v.W || y < 0 || y >= v.H || z < 0 || z >= v.D {
		panic(fmt.Sprintf("vol3d: Set(%d,%d,%d) out of range %dx%dx%d", x, y, z, v.W, v.H, v.D))
	}
	if val > 1 {
		panic(fmt.Sprintf("vol3d: Set value %d, want 0 or 1", val))
	}
	v.Vox[(z*v.H+y)*v.W+x] = val
}

// ForegroundCount returns the number of object voxels.
func (v *Volume) ForegroundCount() int {
	n := 0
	for _, b := range v.Vox {
		if b != 0 {
			n++
		}
	}
	return n
}

// LabelVolume is the label raster for a volume; 0 is background.
type LabelVolume struct {
	W, H, D int
	L       []binimg.Label
}

// NewLabelVolume returns a zeroed label volume.
func NewLabelVolume(w, h, d int) *LabelVolume {
	return &LabelVolume{W: w, H: h, D: d, L: make([]binimg.Label, w*h*d)}
}

// At returns the label at (x, y, z).
func (lv *LabelVolume) At(x, y, z int) binimg.Label {
	return lv.L[(z*lv.H+y)*lv.W+x]
}

// MaxLabels3D bounds the provisional labels a 26-connected scan can create:
// new-label voxels form an independent set in the 26-neighborhood graph, at
// most ceil(w/2)*ceil(h/2)*ceil(d/2).
func MaxLabels3D(w, h, d int) int {
	return ((w + 1) / 2) * ((h + 1) / 2) * ((d + 1) / 2)
}

// visited13 lists the 13 neighbor offsets scanned before the current voxel
// in x-fastest raster order: the 9 voxels of the previous z-plane's 3x3
// window, the 3 upper voxels of the current plane, and the left voxel.
var visited13 = [13][3]int{
	{-1, -1, -1}, {0, -1, -1}, {1, -1, -1},
	{-1, 0, -1}, {0, 0, -1}, {1, 0, -1},
	{-1, 1, -1}, {0, 1, -1}, {1, 1, -1},
	{-1, -1, 0}, {0, -1, 0}, {1, -1, 0},
	{-1, 0, 0},
}

// scanRange labels the z-slab [zStart, zEnd) of vol into lv, drawing labels
// from offset+1 in the shared parent array p; planes below zStart are never
// read. Polls done every pollRows raster rows. Returns the last label used
// and whether it ran to completion.
func scanRange(vol *Volume, lv *LabelVolume, p []binimg.Label, offset binimg.Label, zStart, zEnd int, done <-chan struct{}) (binimg.Label, bool) {
	w, h := vol.W, vol.H
	vox := vol.Vox
	lab := lv.L
	count := offset
	rows := 0
	for z := zStart; z < zEnd; z++ {
		for y := 0; y < h; y++ {
			if rows%pollRows == 0 && stopped(done) {
				return count, false
			}
			rows++
			base := (z*h + y) * w
			for x := 0; x < w; x++ {
				if vox[base+x] == 0 {
					continue
				}
				var le binimg.Label
				for _, off := range visited13 {
					nx, ny, nz := x+off[0], y+off[1], z+off[2]
					if nx < 0 || nx >= w || ny < 0 || ny >= h || nz < zStart {
						continue
					}
					ni := (nz*h+ny)*w + nx
					if vox[ni] == 0 {
						continue
					}
					if le == 0 {
						le = lab[ni]
					} else if lab[ni] != le {
						le = unionfind.MergeRemSP(p, le, lab[ni])
					}
				}
				if le == 0 {
					count++
					p[count] = count
					le = count
				}
				lab[base+x] = le
			}
		}
	}
	return count, true
}

// Label computes the 26-connected components of vol with the sequential
// two-pass algorithm. Labels are consecutive 1..n; returns the label volume
// and n.
func Label(vol *Volume) (*LabelVolume, int) {
	lv := NewLabelVolume(vol.W, vol.H, vol.D)
	p := make([]binimg.Label, MaxLabels3D(vol.W, vol.H, vol.D)+1)
	n, _ := LabelIntoCtx(context.Background(), vol, lv, p)
	return lv, n
}

// PLabel is the PAREMSP construction applied along z: the volume is slabbed
// into even-thickness z-ranges scanned concurrently with disjoint label
// ranges; each slab-boundary plane is merged against the plane below it with
// the concurrent lock-based REM union; sparse flatten; parallel relabel.
func PLabel(vol *Volume, threads int) (*LabelVolume, int) {
	lv := NewLabelVolume(vol.W, vol.H, vol.D)
	p := make([]binimg.Label, MaxLabels3D(vol.W, vol.H, vol.D)+1)
	n, _ := PLabelIntoCtx(context.Background(), vol, lv, p, nil, threads)
	return lv, n
}

// mergeBoundaryPlane unites every foreground voxel of plane z with its
// foreground neighbors in plane z-1 (the 3x3 window below).
func mergeBoundaryPlane(vol *Volume, lv *LabelVolume, p []binimg.Label, lt *unionfind.LockTable, z int) {
	w, h := vol.W, vol.H
	vox := vol.Vox
	lab := lv.L
	for y := 0; y < h; y++ {
		base := (z*h + y) * w
		for x := 0; x < w; x++ {
			if vox[base+x] == 0 {
				continue
			}
			le := lab[base+x]
			for dy := -1; dy <= 1; dy++ {
				ny := y + dy
				if ny < 0 || ny >= h {
					continue
				}
				below := ((z-1)*h + ny) * w
				for dx := -1; dx <= 1; dx++ {
					nx := x + dx
					if nx < 0 || nx >= w {
						continue
					}
					if vox[below+nx] != 0 {
						unionfind.MergeLocked(p, lt, le, lab[below+nx])
					}
				}
			}
		}
	}
}

// relabelParUntil rewrites provisional labels to final labels in parallel,
// each goroutine polling done every pollRows raster rows; reports whether
// every chunk ran to completion.
func relabelParUntil(lv *LabelVolume, p []binimg.Label, threads int, done <-chan struct{}) bool {
	l := lv.L
	n := len(l)
	chunk := (n + threads - 1) / threads
	var canceled atomic.Bool
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(part []binimg.Label) {
			defer wg.Done()
			if !relabelVolUntil(part, p, lv.W, done) {
				canceled.Store(true)
			}
		}(l[lo:hi])
	}
	wg.Wait()
	return !canceled.Load()
}

// FloodFill is the 3D reference labeler. conn26 selects 26-connectivity;
// false selects 6-connectivity (face neighbors only).
func FloodFill(vol *Volume, conn26 bool) (*LabelVolume, int) {
	w, h, d := vol.W, vol.H, vol.D
	lv := NewLabelVolume(w, h, d)
	vox := vol.Vox
	lab := lv.L
	var next binimg.Label
	stack := make([]int32, 0, 1024)
	for s, b := range vox {
		if b == 0 || lab[s] != 0 {
			continue
		}
		next++
		lab[s] = next
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			i := int(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			x := i % w
			y := (i / w) % h
			z := i / (w * h)
			for dz := -1; dz <= 1; dz++ {
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						if dx == 0 && dy == 0 && dz == 0 {
							continue
						}
						if !conn26 && dx*dx+dy*dy+dz*dz != 1 {
							continue
						}
						nx, ny, nz := x+dx, y+dy, z+dz
						if nx < 0 || nx >= w || ny < 0 || ny >= h || nz < 0 || nz >= d {
							continue
						}
						j := (nz*h+ny)*w + nx
						if vox[j] != 0 && lab[j] == 0 {
							lab[j] = next
							stack = append(stack, int32(j))
						}
					}
				}
			}
		}
	}
	return lv, int(next)
}

// ComponentSizes returns the voxel count of each component, indexed by
// label-1, for a label volume with consecutive labels 1..n.
func ComponentSizes(lv *LabelVolume, n int) []int {
	sizes := make([]int, n)
	for _, v := range lv.L {
		if v != 0 {
			sizes[v-1]++
		}
	}
	return sizes
}

// SpansZ reports whether the component with the given label touches both the
// z=0 and z=D-1 planes — the percolation question cluster analyses ask.
func SpansZ(lv *LabelVolume, label binimg.Label) bool {
	w, h := lv.W, lv.H
	touchesBottom, touchesTop := false, false
	for i := 0; i < w*h; i++ {
		if lv.L[i] == label {
			touchesBottom = true
			break
		}
	}
	topBase := (lv.D - 1) * w * h
	for i := 0; i < w*h; i++ {
		if lv.L[topBase+i] == label {
			touchesTop = true
			break
		}
	}
	return touchesBottom && touchesTop
}
