package vol3d_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vol3d"
)

func randomVolume(rng *rand.Rand, maxSide int) *vol3d.Volume {
	w, h, d := 1+rng.Intn(maxSide), 1+rng.Intn(maxSide), 1+rng.Intn(maxSide)
	vol := vol3d.NewVolume(w, h, d)
	density := rng.Float64()
	for i := range vol.Vox {
		if rng.Float64() < density {
			vol.Vox[i] = 1
		}
	}
	return vol
}

// equivalent checks that two label volumes encode the same partition.
func equivalent(a, b *vol3d.LabelVolume) bool {
	if len(a.L) != len(b.L) {
		return false
	}
	ab := map[int32]int32{}
	ba := map[int32]int32{}
	for i := range a.L {
		la, lb := a.L[i], b.L[i]
		if (la == 0) != (lb == 0) {
			return false
		}
		if la == 0 {
			continue
		}
		if m, ok := ab[la]; ok && m != lb {
			return false
		}
		if m, ok := ba[lb]; ok && m != la {
			return false
		}
		ab[la] = lb
		ba[lb] = la
	}
	return true
}

func TestLabelKnownVolumes(t *testing.T) {
	// Two 1x1x1 clusters at opposite corners of a 3x3x3 volume: distinct
	// under both connectivities.
	vol := vol3d.NewVolume(3, 3, 3)
	vol.Set(0, 0, 0, 1)
	vol.Set(2, 2, 2, 1)
	if _, n := vol3d.Label(vol); n != 2 {
		t.Fatalf("corners: n = %d, want 2", n)
	}
	// Diagonal touch: (0,0,0) and (1,1,1) are 26-adjacent but not 6-adjacent.
	diag := vol3d.NewVolume(2, 2, 2)
	diag.Set(0, 0, 0, 1)
	diag.Set(1, 1, 1, 1)
	if _, n := vol3d.Label(diag); n != 1 {
		t.Fatalf("26-diag: n = %d, want 1", n)
	}
	if _, n := vol3d.FloodFill(diag, false); n != 2 {
		t.Fatalf("6-conn diag: n = %d, want 2", n)
	}
}

func TestLabelFullAndEmpty(t *testing.T) {
	full := vol3d.NewVolume(4, 5, 6)
	for i := range full.Vox {
		full.Vox[i] = 1
	}
	lv, n := vol3d.Label(full)
	if n != 1 {
		t.Fatalf("full volume: n = %d, want 1", n)
	}
	for _, v := range lv.L {
		if v != 1 {
			t.Fatal("full volume not uniformly labeled")
		}
	}
	empty := vol3d.NewVolume(4, 5, 6)
	if _, n := vol3d.Label(empty); n != 0 {
		t.Fatalf("empty volume: n = %d, want 0", n)
	}
	if _, n := vol3d.Label(vol3d.NewVolume(0, 0, 0)); n != 0 {
		t.Fatal("0x0x0 volume must have 0 components")
	}
}

func TestPropertyLabelMatchesFloodFill(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vol := randomVolume(rng, 12)
		lv, n := vol3d.Label(vol)
		ref, nRef := vol3d.FloodFill(vol, true)
		return n == nRef && equivalent(lv, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPLabelMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vol := randomVolume(rng, 14)
		ref, nRef := vol3d.Label(vol)
		lv, n := vol3d.PLabel(vol, 1+rng.Intn(8))
		return n == nRef && equivalent(lv, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPLabelThreadSweepOddDepths(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, d := range []int{1, 2, 3, 5, 8, 9} {
		vol := vol3d.NewVolume(7, 6, d)
		for i := range vol.Vox {
			vol.Vox[i] = uint8(rng.Intn(2))
		}
		ref, nRef := vol3d.FloodFill(vol, true)
		for threads := 1; threads <= 10; threads++ {
			lv, n := vol3d.PLabel(vol, threads)
			if n != nRef {
				t.Fatalf("d=%d threads=%d: n=%d want %d", d, threads, n, nRef)
			}
			if !equivalent(lv, ref) {
				t.Fatalf("d=%d threads=%d: partitions differ", d, threads)
			}
		}
	}
}

func TestSixVsTwentySixConnectivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vol := randomVolume(rng, 10)
		_, n26 := vol3d.FloodFill(vol, true)
		_, n6 := vol3d.FloodFill(vol, false)
		return n6 >= n26
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentSizes(t *testing.T) {
	vol := vol3d.NewVolume(4, 1, 1)
	vol.Set(0, 0, 0, 1)
	vol.Set(2, 0, 0, 1)
	vol.Set(3, 0, 0, 1)
	lv, n := vol3d.Label(vol)
	sizes := vol3d.ComponentSizes(lv, n)
	if n != 2 || sizes[0] != 1 || sizes[1] != 2 {
		t.Fatalf("n = %d, sizes = %v", n, sizes)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != vol.ForegroundCount() {
		t.Fatalf("sizes sum %d, want %d", total, vol.ForegroundCount())
	}
}

func TestSpansZ(t *testing.T) {
	vol := vol3d.NewVolume(3, 3, 4)
	// A column through all z at (1,1), plus a loose voxel at z=0.
	for z := 0; z < 4; z++ {
		vol.Set(1, 1, z, 1)
	}
	vol.Set(0, 0, 0, 1) // 26-adjacent to the column? (0,0,0)-(1,1,0): yes!
	// Move it away so it stays separate.
	vol.Set(0, 0, 0, 0)
	lv, n := vol3d.Label(vol)
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
	if !vol3d.SpansZ(lv, 1) {
		t.Fatal("column must span z")
	}
	flat := vol3d.NewVolume(3, 3, 4)
	flat.Set(1, 1, 0, 1)
	lvf, _ := vol3d.Label(flat)
	if vol3d.SpansZ(lvf, 1) {
		t.Fatal("single voxel cannot span z")
	}
}

func TestVolumeAccessors(t *testing.T) {
	vol := vol3d.NewVolume(3, 4, 5)
	vol.Set(2, 3, 4, 1)
	if vol.At(2, 3, 4) != 1 || vol.At(0, 0, 0) != 0 {
		t.Fatal("Set/At round trip failed")
	}
	if vol.ForegroundCount() != 1 {
		t.Fatalf("count = %d, want 1", vol.ForegroundCount())
	}
	lv, _ := vol3d.Label(vol)
	if lv.At(2, 3, 4) != 1 {
		t.Fatal("LabelVolume.At wrong")
	}
	for _, f := range []func(){
		func() { vol.At(3, 0, 0) },
		func() { vol.Set(0, 4, 0, 1) },
		func() { vol.Set(0, 0, 0, 2) },
		func() { vol3d.NewVolume(-1, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMaxLabels3DBound(t *testing.T) {
	// Isolated voxels at even coordinates realize the bound.
	vol := vol3d.NewVolume(5, 5, 5)
	count := 0
	for z := 0; z < 5; z += 2 {
		for y := 0; y < 5; y += 2 {
			for x := 0; x < 5; x += 2 {
				vol.Set(x, y, z, 1)
				count++
			}
		}
	}
	if want := vol3d.MaxLabels3D(5, 5, 5); want != 27 || count != want {
		t.Fatalf("MaxLabels3D = %d, isolated count = %d, want 27", want, count)
	}
	_, n := vol3d.Label(vol) // must not overflow the parent array
	if n != 27 {
		t.Fatalf("n = %d, want 27", n)
	}
}
