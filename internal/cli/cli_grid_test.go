package cli_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cli"
	"repro/internal/experiments"
)

// writeGridConfig drops a small grid config file and returns its path.
func writeGridConfig(t *testing.T, cfg experiments.GridConfig) string {
	t.Helper()
	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "experiments.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPaperBenchGridJSON(t *testing.T) {
	grid := writeGridConfig(t, experiments.GridConfig{
		Tag: "grid-test", Scale: 0.001, Repeats: 2, Warmup: 0,
		Algorithms: []string{"BREMSP", "PBREMSP"},
		Classes:    []string{"Aerial"},
		GOMAXPROCS: []int{1, 2},
	})
	outPath := filepath.Join(t.TempDir(), "report.json")
	var out, errw bytes.Buffer
	code := cli.PaperBench([]string{"-grid", grid, "-json", outPath}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stdout: %s, stderr: %s", code, out.String(), errw.String())
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := experiments.ReadBenchReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tag != "grid-test" || rep.GoVersion == "" || rep.NumCPU == 0 {
		t.Fatalf("report metadata = tag %q, go %q, cpus %d", rep.Tag, rep.GoVersion, rep.NumCPU)
	}
	// BREMSP collapses the thread axis, PBREMSP sweeps it.
	if len(rep.Results) != 3 {
		t.Fatalf("got %d rows, want 3: %+v", len(rep.Results), rep.Results)
	}
	// The sweep logs progress per configuration on stderr.
	if got := strings.Count(errw.String(), "grid:"); got != 3 {
		t.Fatalf("progress lines = %d, want 3: %s", got, errw.String())
	}
}

// TestPaperBenchGridFlagOverride pins the CI contract: explicit -scale /
// -repeats flags beat the checked-in config so the PR smoke run can reuse
// experiments.json at a tiny scale.
func TestPaperBenchGridFlagOverride(t *testing.T) {
	grid := writeGridConfig(t, experiments.GridConfig{
		Tag: "override", Scale: 0.9, Repeats: 9, Warmup: 9,
		Algorithms: []string{"CCLRemSP"}, Classes: []string{"Misc"},
	})
	outPath := filepath.Join(t.TempDir(), "report.json")
	var out, errw bytes.Buffer
	code := cli.PaperBench([]string{"-grid", grid, "-json", outPath,
		"-scale", "0.001", "-repeats", "2", "-warmup", "0"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := experiments.ReadBenchReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scale != 0.001 || rep.Repeats != 2 {
		t.Fatalf("flags did not override config: scale %v, repeats %d", rep.Scale, rep.Repeats)
	}
	if len(rep.Results) != 1 || len(rep.Results[0].SampleNs) != 2 {
		t.Fatalf("results = %+v", rep.Results)
	}
}

func TestPaperBenchGridErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := cli.PaperBench([]string{"-grid", "/nonexistent.json"}, &out, &errw); code != 1 {
		t.Errorf("missing grid config: exit %d, want 1", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"scale": 0.01, "repeats": 1, "algorithms": ["Nope"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	errw.Reset()
	if code := cli.PaperBench([]string{"-grid", bad}, &out, &errw); code != 1 {
		t.Errorf("invalid grid config: exit %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "unknown grid algorithm") {
		t.Errorf("stderr missing validation error: %s", errw.String())
	}
}

func TestPaperBenchAnalyze(t *testing.T) {
	grid := writeGridConfig(t, experiments.GridConfig{
		Tag: "analyze-test", Scale: 0.001, Repeats: 2, Warmup: 0,
		Algorithms: []string{"BREMSP", "PBREMSP"},
		Classes:    []string{"Aerial"},
		GOMAXPROCS: []int{1, 2},
	})
	repPath := filepath.Join(t.TempDir(), "report.json")
	var out, errw bytes.Buffer
	if code := cli.PaperBench([]string{"-grid", grid, "-json", repPath}, &out, &errw); code != 0 {
		t.Fatalf("grid run failed: %s", errw.String())
	}

	// Markdown to stdout.
	out.Reset()
	errw.Reset()
	if code := cli.PaperBench([]string{"-analyze", repPath}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	for _, want := range []string{
		"# Benchmark analysis: analyze-test",
		"## Per-configuration statistics",
		"## Speedup vs threads",
		"### PBREMSP (baseline: BREMSP)",
		"## Parallel efficiency",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("markdown missing %q:\n%s", want, out.String())
		}
	}

	// File output with a self-trajectory.
	outDir := filepath.Join(t.TempDir(), "analysis")
	out.Reset()
	if code := cli.PaperBench([]string{"-analyze", repPath, "-baseline", repPath, "-out", outDir}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	md, err := os.ReadFile(filepath.Join(outDir, "analysis.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "## Trajectory:") {
		t.Errorf("analysis.md missing trajectory section:\n%s", md)
	}
	for _, name := range []string{"configs.csv", "scaling.csv"} {
		raw, err := os.ReadFile(filepath.Join(outDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if lines := strings.Count(string(raw), "\n"); lines < 2 {
			t.Errorf("%s has only %d line(s)", name, lines)
		}
	}

	// A report against itself can never regress: -grid -diff wiring.
	out.Reset()
	errw.Reset()
	if code := cli.PaperBench([]string{"-analyze", "/nonexistent.json"}, &out, &errw); code != 1 {
		t.Errorf("missing report: exit %d, want 1", code)
	}
}
