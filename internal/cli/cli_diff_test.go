package cli_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cli"
	"repro/internal/experiments"
)

// writeBaseline runs the tiny benchmark once and writes it back with every
// ns/op scaled, producing a deterministic baseline that a fresh run is
// guaranteed to beat (scale up) or regress against (scale down) regardless
// of machine noise.
func writeBaseline(t *testing.T, scaleNs int64, div bool) string {
	t.Helper()
	report := experiments.RunBench(experiments.Config{Scale: 0.001, Repeats: 1, Warmup: 0})
	for i := range report.Results {
		if div {
			report.Results[i].NsPerOp /= scaleNs
			if report.Results[i].NsPerOp == 0 {
				report.Results[i].NsPerOp = 1
			}
		} else {
			report.Results[i].NsPerOp *= scaleNs
		}
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	raw, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPaperBenchDiffClean(t *testing.T) {
	base := writeBaseline(t, 1000, false) // baseline 1000x slower: cannot regress
	var out, errw bytes.Buffer
	code := cli.PaperBench([]string{"-scale", "0.001", "-repeats", "1", "-warmup", "0", "-diff", base}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stdout: %s, stderr: %s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "no gating ns/op regressions") {
		t.Fatalf("unexpected output: %s", out.String())
	}
}

// TestPaperBenchDiffPolicyAllowlist verifies the escape hatch end to end: a
// run that regresses on every pair exits clean when every configuration is
// allowlisted, and the allowlisted regressions are still reported.
func TestPaperBenchDiffPolicyAllowlist(t *testing.T) {
	base := writeBaseline(t, 1000, true) // baseline 1000x faster: every pair regresses
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var rep experiments.BenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	policy := experiments.Policy{DefaultTolerance: 0.25}
	for _, r := range rep.Results {
		policy.Allow = append(policy.Allow,
			experiments.ConfigKey{Algorithm: r.Algorithm, Class: r.Class, Threads: r.Threads}.String())
	}
	policyPath := filepath.Join(t.TempDir(), "policy.json")
	praw, err := json.Marshal(policy)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(policyPath, praw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	code := cli.PaperBench([]string{"-scale", "0.001", "-repeats", "1", "-warmup", "0",
		"-diff", base, "-regress-policy", policyPath}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stdout: %s, stderr: %s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "allowlisted regression") {
		t.Fatalf("allowlisted regressions not reported: %s", out.String())
	}
}

func TestPaperBenchDiffRegression(t *testing.T) {
	base := writeBaseline(t, 1000, true) // baseline 1000x faster: every pair regresses
	var out, errw bytes.Buffer
	code := cli.PaperBench([]string{"-scale", "0.001", "-repeats", "1", "-warmup", "0", "-diff", base}, &out, &errw)
	if code != 3 {
		t.Fatalf("exit %d, want 3; stdout: %s, stderr: %s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "regression(s)") {
		t.Fatalf("unexpected output: %s", out.String())
	}
}

func TestPaperBenchDiffErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := cli.PaperBench([]string{"-diff", "/nonexistent.json"}, &out, &errw); code != 1 {
		t.Errorf("missing baseline: exit %d, want 1", code)
	}
	if code := cli.PaperBench([]string{"-diff", "x.json", "-regress", "0"}, &out, &errw); code != 2 {
		t.Errorf("bad -regress: exit %d, want 2", code)
	}
}
