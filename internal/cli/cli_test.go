package cli_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	paremsp "repro"
	"repro/internal/cli"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/stream"
)

// writePBM writes a small deterministic test image and returns its path.
func writePBM(t *testing.T) string {
	t.Helper()
	img := dataset.Blobs(64, 48, 6, 2, 5, 3)
	path := filepath.Join(t.TempDir(), "input.pbm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := paremsp.EncodePBM(f, img, true); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCCLabelBasic(t *testing.T) {
	path := writePBM(t)
	var out, errw bytes.Buffer
	code := cli.CCLabel([]string{"-alg", "aremsp", path}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	s := out.String()
	if !strings.Contains(s, "components") || !strings.Contains(s, "64x48") {
		t.Fatalf("unexpected output:\n%s", s)
	}
}

func TestCCLabelStatsAndContours(t *testing.T) {
	path := writePBM(t)
	var out, errw bytes.Buffer
	code := cli.CCLabel([]string{"-alg", "floodfill", "-stats", "-contours", path}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	s := out.String()
	if !strings.Contains(s, "centroid") || !strings.Contains(s, "perimeter") {
		t.Fatalf("missing stats/contours sections:\n%s", s)
	}
}

func TestCCLabelWritesOutput(t *testing.T) {
	path := writePBM(t)
	outPath := filepath.Join(t.TempDir(), "labels.pgm")
	var out, errw bytes.Buffer
	code := cli.CCLabel([]string{"-o", outPath, path}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("P5\n")) {
		t.Fatalf("output is not a PGM: %q", data[:8])
	}
	// PNG output too.
	pngPath := filepath.Join(t.TempDir(), "labels.png")
	if code := cli.CCLabel([]string{"-o", pngPath, path}, &out, &errw); code != 0 {
		t.Fatalf("png exit %d", code)
	}
	if fi, err := os.Stat(pngPath); err != nil || fi.Size() == 0 {
		t.Fatal("png output missing or empty")
	}
}

func TestCCLabelErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := cli.CCLabel([]string{}, &out, &errw); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := cli.CCLabel([]string{"/nonexistent/x.pbm"}, &out, &errw); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	path := writePBM(t)
	if code := cli.CCLabel([]string{"-alg", "bogus", path}, &out, &errw); code != 1 {
		t.Errorf("bad algorithm: exit %d, want 1", code)
	}
	txt := filepath.Join(t.TempDir(), "x.txt")
	os.WriteFile(txt, []byte("hi"), 0o644)
	if code := cli.CCLabel([]string{txt}, &out, &errw); code != 1 {
		t.Errorf("bad extension: exit %d, want 1", code)
	}
	if code := cli.CCLabel([]string{"-o", filepath.Join(t.TempDir(), "x.bmp"), path}, &out, &errw); code != 1 {
		t.Errorf("bad output extension: exit %d, want 1", code)
	}
}

func TestGenImgToFileAndRoundTrip(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "gen.pbm")
	var out, errw bytes.Buffer
	code := cli.GenImg([]string{"-kind", "serpentine", "-w", "64", "-h", "40", "-o", outPath}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	img, err := paremsp.DecodePNM(f, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if img.Width != 64 || img.Height != 40 {
		t.Fatalf("generated %dx%d, want 64x40", img.Width, img.Height)
	}
	// A serpentine is one component.
	res, err := paremsp.Label(img, paremsp.Options{Algorithm: paremsp.AlgAREMSP})
	if err != nil || res.NumComponents != 1 {
		t.Fatalf("serpentine components = %d (err %v), want 1", res.NumComponents, err)
	}
}

func TestGenImgAllKindsToStdout(t *testing.T) {
	for _, kind := range []string{"noise", "checker", "stripes", "blobs", "serpentine",
		"rings", "landcover", "aerial", "texture", "text", "misc"} {
		var out, errw bytes.Buffer
		code := cli.GenImg([]string{"-kind", kind, "-w", "48", "-h", "32"}, &out, &errw)
		if code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", kind, code, errw.String())
		}
		img, err := paremsp.DecodePNM(bytes.NewReader(out.Bytes()), 0.5)
		if err != nil {
			t.Fatalf("%s: decode: %v", kind, err)
		}
		if img.Width != 48 || img.Height != 32 {
			t.Fatalf("%s: got %dx%d", kind, img.Width, img.Height)
		}
	}
}

func TestGenImgUnknownKind(t *testing.T) {
	var out, errw bytes.Buffer
	if code := cli.GenImg([]string{"-kind", "bogus"}, &out, &errw); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestPaperBenchSingleExperiments(t *testing.T) {
	for exp, want := range map[string]string{
		"table3": "Table III",
		"fig3":   "Figure 3",
		"weak":   "Weak scaling",
	} {
		var out, errw bytes.Buffer
		code := cli.PaperBench([]string{"-exp", exp, "-scale", "0.001", "-repeats", "1", "-warmup", "0"}, &out, &errw)
		if code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", exp, code, errw.String())
		}
		if !strings.Contains(out.String(), want) {
			t.Fatalf("%s output missing %q:\n%s", exp, want, out.String())
		}
	}
}

func TestPaperBenchBadFlags(t *testing.T) {
	var out, errw bytes.Buffer
	if code := cli.PaperBench([]string{"-scale", "3"}, &out, &errw); code != 2 {
		t.Errorf("scale 3: exit %d, want 2", code)
	}
	if code := cli.PaperBench([]string{"-repeats", "0"}, &out, &errw); code != 2 {
		t.Errorf("repeats 0: exit %d, want 2", code)
	}
	if code := cli.PaperBench([]string{"-exp", "bogus"}, &out, &errw); code != 2 {
		t.Errorf("bogus experiment: exit %d, want 2", code)
	}
	if code := cli.PaperBench([]string{"-badflag"}, &out, &errw); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

func TestCCStreamRoundTrip(t *testing.T) {
	path := writePBM(t)
	outPath := filepath.Join(t.TempDir(), "labels.ccl")
	var out, errw bytes.Buffer
	code := cli.CCStream([]string{"-o", outPath, path}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "components") {
		t.Fatalf("unexpected output: %s", out.String())
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lm, n, err := stream.ReadLabels(f)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 || lm.Width != 64 || lm.Height != 48 {
		t.Fatalf("bad label stream: %dx%d, %d components", lm.Width, lm.Height, n)
	}
}

func TestCCStreamErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := cli.CCStream([]string{}, &out, &errw); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := cli.CCStream([]string{"/nonexistent.pbm"}, &out, &errw); code != 1 {
		t.Errorf("missing input: exit %d, want 1", code)
	}
}

func TestCCServeBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-nonsense"},
		{"positional"},
		{"-max-bytes", "-5"},
		{"-level", "0"},
		{"-level", "1.5"},
		{"-job-ttl", "-1s"},
		{"-job-ttl", "0s"},
		{"-job-shards", "-3"},
		{"-job-max-bytes", "-1"},
		{"-job-store", "sqlite"}, // durable backend without -job-dir
		{"-job-store", "nonsense", "-job-dir", "/tmp"},
		{"-log-level", "loud"},
		{"-log-format", "xml"},
	} {
		var stdout, stderr bytes.Buffer
		if code := cli.CCServe(args, &stdout, &stderr); code != 2 {
			t.Fatalf("CCServe(%v) = %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}

func TestPaperBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out, errw bytes.Buffer
	code := cli.PaperBench([]string{"-json", path, "-scale", "0.001", "-repeats", "1", "-warmup", "0"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report experiments.BenchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, raw)
	}
	if report.Scale != 0.001 || len(report.Results) == 0 {
		t.Fatalf("unexpected report: %+v", report)
	}
	seen := map[string]bool{}
	for _, r := range report.Results {
		seen[r.Algorithm] = true
		if r.NsPerOp <= 0 || r.Pixels <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
	}
	for _, want := range []string{"ARemSP", "BREMSP", "PAREMSP", "PBREMSP"} {
		if !seen[want] {
			t.Fatalf("report missing algorithm %s (have %v)", want, seen)
		}
	}
}

func TestPaperBenchJSONStdout(t *testing.T) {
	var out, errw bytes.Buffer
	if code := cli.PaperBench([]string{"-json", "-", "-scale", "0.001", "-repeats", "1", "-warmup", "0"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	var report experiments.BenchReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("stdout not JSON: %v", err)
	}
}

func TestCCServeRejectsUnknownAlg(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := cli.CCServe([]string{"-alg", "nonsense"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown -alg") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}
