// Package cli implements the command-line tools (cclabel, genimg,
// paperbench, ccstream, ccserve) as testable Run functions; the cmd/* mains
// are thin wrappers.
// Each Run parses its own flags from args (excluding the program name),
// writes human output to stdout and diagnostics to stderr, and returns a
// process exit code.
package cli

import (
	"cmp"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"slices"
	"strings"
	"syscall"
	"time"

	paremsp "repro"
	"repro/internal/binimg"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/jobs"
	"repro/internal/pnm"
	"repro/internal/service"
	"repro/internal/stream"
)

// CCLabel implements the cclabel command: label a PBM/PGM/PNG file.
func CCLabel(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cclabel", flag.ContinueOnError)
	fs.SetOutput(stderr)
	alg := fs.String("alg", string(paremsp.AlgPAREMSP), "algorithm: "+algList())
	threads := fs.Int("threads", 0, "worker goroutines for paremsp (0 = all CPUs)")
	conn := fs.Int("conn", 8, "connectivity: 4 or 8")
	level := fs.Float64("level", 0.5, "binarization threshold for grayscale input")
	out := fs.String("o", "", "write labels to this .pgm or .png file")
	showStats := fs.Bool("stats", false, "print per-component statistics")
	showContours := fs.Bool("contours", false, "print per-component contour perimeters")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: cclabel [flags] input.{pbm,pgm,png}")
		fs.PrintDefaults()
		return 2
	}
	path := fs.Arg(0)
	img, err := readImage(path, *level)
	if err != nil {
		fmt.Fprintln(stderr, "cclabel:", err)
		return 1
	}

	start := time.Now()
	res, err := paremsp.Label(img, paremsp.Options{
		Algorithm:    paremsp.Algorithm(*alg),
		Threads:      *threads,
		Connectivity: *conn,
	})
	if err != nil {
		fmt.Fprintln(stderr, "cclabel:", err)
		return 1
	}
	elapsed := time.Since(start)

	fmt.Fprintf(stdout, "%s: %dx%d, %d foreground pixels (density %.3f)\n",
		filepath.Base(path), img.Width, img.Height, img.ForegroundCount(), img.Density())
	fmt.Fprintf(stdout, "%s found %d components in %v\n", *alg, res.NumComponents, elapsed)
	if p := res.Phases; p.Total() > 0 {
		fmt.Fprintf(stdout, "phases: scan %v, merge %v, flatten %v, relabel %v\n",
			p.Scan, p.Merge, p.Flatten, p.Relabel)
	}

	if *showStats {
		fmt.Fprintln(stdout, "label  area  bbox              centroid")
		for _, c := range paremsp.ComponentsOf(res.Labels) {
			fmt.Fprintf(stdout, "%5d %5d  (%d,%d)-(%d,%d)  (%.1f, %.1f)\n",
				c.Label, c.Area, c.MinX, c.MinY, c.MaxX, c.MaxY, c.CentroidX, c.CentroidY)
		}
	}
	if *showContours {
		fmt.Fprintln(stdout, "label  boundary-pixels  perimeter")
		for _, c := range paremsp.TraceContours(res.Labels, res.NumComponents) {
			fmt.Fprintf(stdout, "%5d  %15d  %9.1f\n",
				c.Label, len(c.Points), paremsp.ContourPerimeter(c.Points))
		}
	}

	if *out != "" {
		if err := writeLabels(*out, res.Labels); err != nil {
			fmt.Fprintln(stderr, "cclabel:", err)
			return 1
		}
		fmt.Fprintf(stdout, "labels written to %s\n", *out)
	}
	return 0
}

func algList() string {
	names := make([]string, 0, 9)
	for _, a := range paremsp.Algorithms() {
		names = append(names, string(a))
	}
	return strings.Join(names, ", ")
}

func readImage(path string, level float64) (*paremsp.Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".pbm", ".pgm":
		return paremsp.DecodePNM(f, level)
	case ".png":
		return paremsp.DecodePNG(f, level)
	default:
		return nil, fmt.Errorf("unsupported input extension %q (want .pbm, .pgm or .png)", filepath.Ext(path))
	}
}

func writeLabels(path string, lm *paremsp.LabelMap) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".pgm":
		return paremsp.EncodeLabelsPGM(f, lm)
	case ".png":
		return paremsp.EncodeLabelsPNG(f, lm)
	default:
		return fmt.Errorf("unsupported output extension %q (want .pgm or .png)", filepath.Ext(path))
	}
}

// GenImg implements the genimg command: emit a synthetic dataset as PBM.
func GenImg(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("genimg", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kind := fs.String("kind", "landcover", "generator: noise, checker, stripes, blobs, serpentine, rings, landcover, aerial, texture, text, misc")
	width := fs.Int("w", 1024, "image width")
	height := fs.Int("h", 1024, "image height")
	seed := fs.Int64("seed", 1, "generator seed")
	density := fs.Float64("density", 0.5, "noise: foreground density")
	cell := fs.Int("cell", 4, "checker: cell size")
	thickness := fs.Int("thickness", 2, "stripes/serpentine/rings: stroke thickness")
	gap := fs.Int("gap", 3, "stripes/serpentine/rings: gap")
	count := fs.Int("count", 32, "blobs: blob count")
	scale := fs.Int("scale", 2, "text: glyph scale / landcover: feature scale divisor")
	text := fs.String("text", "PAREMSP", "text: string to render")
	out := fs.String("o", "", "output .pbm path (default stdout)")
	raw := fs.Bool("raw", true, "write raw P4 (false = plain P1)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var img *binimg.Image
	switch *kind {
	case "noise":
		img = dataset.UniformNoise(*width, *height, *density, *seed)
	case "checker":
		img = dataset.Checkerboard(*width, *height, *cell)
	case "stripes":
		img = dataset.Stripes(*width, *height, *thickness, *gap, false)
	case "blobs":
		img = dataset.Blobs(*width, *height, *count, 2, max(3, min(*width, *height)/12), *seed)
	case "serpentine":
		img = dataset.Serpentine(*width, *height, *thickness, *gap)
	case "rings":
		img = dataset.ConcentricRings(*width, *height, *thickness, *gap)
	case "landcover":
		img = dataset.LandCover(*width, *height, max(2, min(*width, *height)/max(1, *scale*16)), 0.5, *seed)
	case "aerial":
		img = dataset.Aerial(*width, *height, *seed)
	case "texture":
		img = dataset.Texture(*width, *height, *seed)
	case "text":
		img = dataset.Text(*width, *height, *text, *scale, *seed)
	case "misc":
		img = dataset.Misc(*width, *height, *seed)
	default:
		fmt.Fprintf(stderr, "genimg: unknown kind %q\n", *kind)
		return 2
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "genimg:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := paremsp.EncodePBM(w, img, *raw); err != nil {
		fmt.Fprintln(stderr, "genimg:", err)
		return 1
	}
	if *out != "" {
		fmt.Fprintf(stderr, "genimg: wrote %s (%dx%d, density %.3f)\n",
			*out, img.Width, img.Height, img.Density())
	}
	return 0
}

// CCStream implements the ccstream command: label a raw PBM (P4) or raw PGM
// (P5) file with the out-of-core band labeler. The image streams through
// fixed-height row bands (O(band) resident memory, independent of image
// height); per-component statistics accumulate during the pass, and the
// label raster — whose final numbering is only known once the stream
// completes — spills as provisional ids to a scratch file that a second
// sequential pass rewrites into a CCL1 label stream.
func CCStream(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccstream", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "labels.ccl", "output CCL1 label-stream path")
	bandRows := fs.Int("band", 0, "band height in rows (0 = default)")
	level := fs.Float64("level", 0.5, "binarization threshold for raw PGM input")
	showStats := fs.Bool("stats", false, "print per-component statistics")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: ccstream [-o labels.ccl] [-band rows] input.{pbm,pgm}")
		fs.PrintDefaults()
		return 2
	}
	in, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "ccstream:", err)
		return 1
	}
	defer in.Close()
	spill, err := os.CreateTemp(filepath.Dir(*out), "ccstream-spill-*")
	if err != nil {
		fmt.Fprintln(stderr, "ccstream:", err)
		return 1
	}
	defer os.Remove(spill.Name())
	defer spill.Close()
	outF, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(stderr, "ccstream:", err)
		return 1
	}
	defer outF.Close()

	start := time.Now()
	src, err := pnm.NewBandReader(in, *level)
	if err != nil {
		fmt.Fprintln(stderr, "ccstream:", err)
		return 1
	}
	// Ctrl-C / SIGTERM cancels the labeling at the next band boundary
	// instead of leaving a partial output file behind silently.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := stream.LabelBands(ctx, src, spill, outF, *bandRows)
	if err != nil {
		fmt.Fprintln(stderr, "ccstream:", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s: %d components in %v; labels written to %s\n",
		filepath.Base(fs.Arg(0)), res.NumComponents, time.Since(start).Round(time.Millisecond), *out)
	if *showStats {
		fmt.Fprintln(stdout, "label  area  runs  bbox              centroid")
		for _, c := range res.Components {
			fmt.Fprintf(stdout, "%5d %5d %5d  (%d,%d)-(%d,%d)  (%.1f, %.1f)\n",
				c.Label, c.Area, c.Runs, c.MinX, c.MinY, c.MaxX, c.MaxY, c.CentroidX, c.CentroidY)
		}
	}
	return 0
}

// newServeLogger builds ccserve's structured logger from the -log-level
// and -log-format flags, writing to stderr (stdout stays human output).
func newServeLogger(stderr io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// jobEventLogger adapts the job store's lifecycle hook to slog: terminal
// transitions (done, failed, evicted) log at Info, the chattier
// submitted/started/dedup ones at Debug.
func jobEventLogger(logger *slog.Logger) func(jobs.Event) {
	return func(ev jobs.Event) {
		level := slog.LevelDebug
		switch ev.Type {
		case jobs.EventDone, jobs.EventFailed, jobs.EventEvicted:
			level = slog.LevelInfo
		}
		if !logger.Enabled(context.Background(), level) {
			return
		}
		attrs := make([]slog.Attr, 0, 5)
		attrs = append(attrs, slog.String("id", ev.ID), slog.String("kind", string(ev.Kind)))
		if ev.Wait > 0 {
			attrs = append(attrs, slog.Duration("queue_wait", ev.Wait))
		}
		if ev.Run > 0 {
			attrs = append(attrs, slog.Duration("run", ev.Run))
		}
		if ev.Err != "" {
			attrs = append(attrs, slog.String("error", ev.Err))
		}
		logger.LogAttrs(context.Background(), level, "job "+ev.Type, attrs...)
	}
}

// CCServe implements the ccserve command: run the HTTP labeling service on a
// bounded worker pool until SIGINT/SIGTERM, then drain gracefully — admission
// flips to 503 (with /healthz reporting "draining" so load balancers rotate
// the instance out), queued-but-unstarted jobs are canceled, running jobs get
// up to -drain-timeout to finish, and stragglers are force-canceled at their
// next poll point before the listener closes.
func CCServe(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8377", "listen address")
	workers := fs.Int("workers", 0, "labeling workers (0 = all CPUs)")
	queue := fs.Int("queue", 0, "queued requests beyond in-flight before 429 (0 = 2x workers)")
	threads := fs.Int("threads", 0, "default paremsp threads per request (0 = CPUs/workers)")
	maxBytes := fs.Int64("max-bytes", 64<<20, "largest accepted image body in bytes")
	level := fs.Float64("level", 0.5, "default binarization threshold for grayscale input, in (0, 1); per-request ?level= accepts [0, 1)")
	alg := fs.String("alg", "", "default algorithm for requests without ?alg= (default paremsp): "+algList())
	jobsOn := fs.Bool("jobs", true, "enable the asynchronous job API (/v1/jobs)")
	jobTTL := fs.Duration("job-ttl", 15*time.Minute, "retain finished job results this long before eviction")
	jobShards := fs.Int("job-shards", 0, "job store shard count (0 = 16)")
	jobMaxBytes := fs.Int64("job-max-bytes", 0, "cap on retained job-result bytes; oldest results evicted beyond it (0 = 512 MiB)")
	jobStore := fs.String("job-store", jobs.BackendMemory, "job store backend: memory (jobs lost on restart) or sqlite (durable journal + result blobs under -job-dir; results spill to disk instead of evicting)")
	jobDir := fs.String("job-dir", "", "directory for the durable job store (required with -job-store=sqlite)")
	reqTimeout := fs.Duration("request-timeout", 0, "cancel a synchronous labeling and answer 504 after this long (0 = no server-side timeout)")
	jobTimeoutFlag := fs.Duration("job-timeout", 0, "cancel an async job that has not reached a terminal state after this long (0 = no timeout)")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "on SIGTERM/SIGINT, wait this long for running jobs before force-canceling them")
	logLevel := fs.String("log-level", "info", "structured-log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "structured-log format on stderr: text or json")
	debugAddr := fs.String("debug-addr", "", "optional operator listener serving /debug/pprof/ and /debug/requests (keep off the public network; empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: ccserve [flags]")
		fs.PrintDefaults()
		return 2
	}
	if *maxBytes <= 0 {
		fmt.Fprintln(stderr, "ccserve: -max-bytes must be positive")
		return 2
	}
	if *level <= 0 || *level >= 1 {
		fmt.Fprintln(stderr, "ccserve: -level must be in (0, 1)")
		return 2
	}
	if *alg != "" && !slices.Contains(paremsp.Algorithms(), paremsp.Algorithm(*alg)) {
		fmt.Fprintf(stderr, "ccserve: unknown -alg %q (want %s)\n", *alg, algList())
		return 2
	}
	if *jobsOn && *jobTTL <= 0 {
		fmt.Fprintln(stderr, "ccserve: -job-ttl must be positive")
		return 2
	}
	if *jobShards < 0 {
		fmt.Fprintln(stderr, "ccserve: -job-shards must be >= 0")
		return 2
	}
	if *jobMaxBytes < 0 {
		fmt.Fprintln(stderr, "ccserve: -job-max-bytes must be >= 0")
		return 2
	}
	durableStore := *jobStore != "" && *jobStore != jobs.BackendMemory
	if *jobsOn && durableStore && *jobDir == "" {
		fmt.Fprintf(stderr, "ccserve: -job-store=%s requires -job-dir\n", *jobStore)
		return 2
	}
	if *reqTimeout < 0 || *jobTimeoutFlag < 0 {
		fmt.Fprintln(stderr, "ccserve: -request-timeout and -job-timeout must be >= 0")
		return 2
	}
	if *drainTimeout <= 0 {
		fmt.Fprintln(stderr, "ccserve: -drain-timeout must be positive")
		return 2
	}
	logger, err := newServeLogger(stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(stderr, "ccserve:", err)
		return 2
	}
	if env := os.Getenv("CCSERVE_FAULTS"); env != "" {
		if err := faultinject.ArmFromEnv(env); err != nil {
			fmt.Fprintln(stderr, "ccserve:", err)
			return 2
		}
		logger.Warn("fault injection armed (chaos mode; not for production)", "faults", env)
	}

	var store *jobs.Store
	if *jobsOn {
		store, err = jobs.Open(jobs.Options{
			Backend:        *jobStore,
			Dir:            *jobDir,
			Shards:         *jobShards,
			TTL:            *jobTTL,
			MaxResultBytes: *jobMaxBytes,
			OnEvent:        jobEventLogger(logger),
		})
		if err != nil {
			fmt.Fprintln(stderr, "ccserve:", err)
			return 2
		}
		defer store.Close()
	}
	eng := service.NewEngine(service.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		Threads:    *threads,
		OnPanic: func(v any, stack []byte) {
			logger.Error("worker panic contained", "panic", fmt.Sprint(v), "stack", string(stack))
		},
	})
	obs := service.NewObs(logger, 0)
	// baseCtx parents every async job: canceling it at drain time stops
	// queued and straggling jobs at their next poll point.
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	handler := service.NewHandler(eng, service.HandlerConfig{
		MaxImageBytes:    *maxBytes,
		Level:            *level,
		DefaultAlgorithm: paremsp.Algorithm(*alg),
		Jobs:             store,
		Obs:              obs,
		RequestTimeout:   *reqTimeout,
		JobTimeout:       *jobTimeoutFlag,
		BaseContext:      baseCtx,
	})
	// A durable store replayed its journal at Open; resubmit everything
	// that was queued or running at the last shutdown before the listener
	// accepts traffic, so recovered jobs queue ahead of new load.
	if store != nil && store.Durable() {
		requeued, canceled := handler.RecoverJobs()
		logger.Info("job recovery complete", "requeued", requeued, "canceled", canceled)
	}
	srv := &http.Server{
		Handler: handler,
		// Streaming endpoints (/v1/stats) read the body on a pool worker, so
		// a stalled client holds labeling capacity; bound at least the header
		// phase. Body-read time is bounded by -max-bytes plus the deployment's
		// load balancer / reverse proxy timeouts.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		eng.Close()
		fmt.Fprintln(stderr, "ccserve:", err)
		return 1
	}

	// The debug listener is separate from the public one so pprof and the
	// request-trace dump can bind to loopback while the service faces the
	// world.
	var debugLn net.Listener
	var debugSrv *http.Server
	if *debugAddr != "" {
		debugLn, err = net.Listen("tcp", *debugAddr)
		if err != nil {
			ln.Close()
			eng.Close()
			fmt.Fprintln(stderr, "ccserve:", err)
			return 1
		}
		debugSrv = &http.Server{Handler: service.NewDebugHandler(obs), ReadHeaderTimeout: 10 * time.Second}
		go debugSrv.Serve(debugLn)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	jobsState := "off"
	if store != nil {
		jobsState = fmt.Sprintf("%s, ttl %v", *jobStore, store.TTL())
	}
	fmt.Fprintf(stdout, "ccserve: listening on %s (%d workers, queue %d, jobs %s)\n",
		ln.Addr(), eng.Workers(), eng.QueueDepth(), jobsState)
	startAttrs := []slog.Attr{
		slog.String("addr", ln.Addr().String()),
		slog.Int("workers", eng.Workers()),
		slog.Int("queue", eng.QueueDepth()),
		slog.Int("threads", *threads),
		slog.Int64("max_bytes", *maxBytes),
		slog.Float64("level", *level),
		slog.String("alg", cmp.Or(*alg, string(paremsp.AlgPAREMSP))),
		slog.Bool("jobs", store != nil),
		slog.Duration("request_timeout", *reqTimeout),
		slog.Duration("job_timeout", *jobTimeoutFlag),
		slog.Duration("drain_timeout", *drainTimeout),
	}
	if store != nil {
		startAttrs = append(startAttrs,
			slog.String("job_store", *jobStore),
			slog.Duration("job_ttl", store.TTL()),
			slog.Int("job_shards", *jobShards),
			slog.Int64("job_max_bytes", *jobMaxBytes))
		if durableStore {
			startAttrs = append(startAttrs, slog.String("job_dir", *jobDir))
		}
	}
	if debugLn != nil {
		startAttrs = append(startAttrs, slog.String("debug_addr", debugLn.Addr().String()))
	}
	logger.LogAttrs(context.Background(), slog.LevelInfo, "ccserve listening", startAttrs...)

	select {
	case err := <-errCh:
		eng.Close()
		fmt.Fprintln(stderr, "ccserve:", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(stdout, "ccserve: shutting down (draining)")
	logger.Info("shutting down", "reason", "signal", "drain_timeout", *drainTimeout)
	drainStart := time.Now()
	// Drain order: admission off first (the listener keeps answering, with
	// 503 + Retry-After and /healthz reporting "draining", so load balancers
	// rotate the instance out before the port vanishes), then give running
	// jobs -drain-timeout to finish while queued-but-unstarted ones are
	// rejected, then force-cancel stragglers via the jobs' base context, and
	// only then close the listener.
	handler.StartDrain()
	drained := eng.Drain(*drainTimeout)
	if !drained {
		logger.Warn("drain timeout lapsed; force-canceling running jobs", "timeout", *drainTimeout)
	}
	baseCancel()
	sdCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	code := 0
	if err := srv.Shutdown(sdCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "ccserve: shutdown:", err)
		logger.Error("shutdown", "error", err)
		code = 1
	}
	if debugSrv != nil {
		debugSrv.Shutdown(sdCtx)
	}
	eng.Close()
	snap := eng.Snapshot()
	logger.Info("drain complete",
		"graceful", drained,
		"drain_ns", time.Since(drainStart).Nanoseconds(),
		"requests", snap.Requests,
		"completed", snap.Completed,
		"canceled", snap.Canceled,
		"worker_panics", snap.Panics)
	fmt.Fprintln(stdout, "ccserve: stopped")
	return code
}

// reportDiff prints the outcome of a regression diff and returns the
// process exit code: 0 clean, 3 on gating regressions, 1 when nothing was
// comparable. Configurations present on only one side are reported, not
// errors — benchmark grids evolve between PRs, and the gate compares the
// intersection.
func reportDiff(stdout, stderr io.Writer, base, cur *experiments.BenchReport, basePath string, tolerance float64, policy *experiments.Policy) int {
	d := experiments.DiffReports(base, cur, tolerance, policy)
	if len(d.Added) > 0 {
		fmt.Fprintf(stdout, "paperbench: %d configuration(s) not in %s (new or rescaled, not compared):\n", len(d.Added), basePath)
		for _, k := range d.Added {
			fmt.Fprintf(stdout, "  + %s\n", k)
		}
	}
	if len(d.Removed) > 0 {
		fmt.Fprintf(stdout, "paperbench: %d baseline configuration(s) not measured by this run:\n", len(d.Removed))
		for _, k := range d.Removed {
			fmt.Fprintf(stdout, "  - %s\n", k)
		}
	}
	if d.Compared == 0 {
		fmt.Fprintf(stderr, "paperbench: no comparable pairs between this run and %s (different -scale or algorithm set?)\n", basePath)
		return 1
	}
	gating := d.Gating()
	for _, r := range d.Regressions {
		if r.Allowed {
			fmt.Fprintf(stdout, "paperbench: allowlisted regression %s %d -> %d ns/op (%.2fx, tolerance +%.0f%%)\n",
				r.Key, r.BaseNs, r.CurNs, r.Ratio, r.Tolerance*100)
		}
	}
	if len(gating) == 0 {
		fmt.Fprintf(stdout, "paperbench: no gating ns/op regressions vs %s (%d pairs compared)\n", basePath, d.Compared)
		return 0
	}
	fmt.Fprintf(stdout, "paperbench: %d ns/op regression(s) vs %s:\n", len(gating), basePath)
	for _, r := range gating {
		fmt.Fprintf(stdout, "  %-24s %12d -> %12d ns/op (%.2fx, tolerance +%.0f%%)\n",
			r.Key, r.BaseNs, r.CurNs, r.Ratio, r.Tolerance*100)
	}
	return 3
}

// readReportFile loads a BenchReport from disk.
func readReportFile(path string) (*experiments.BenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return experiments.ReadBenchReport(f)
}

// gitRev resolves the short revision of the working tree, best effort: a
// grid report self-describes where its numbers came from, but a missing git
// binary (or a tarball checkout) must not break a benchmark run.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// paperBenchAnalyze implements the -analyze mode: digest a report into
// markdown + CSV tables, optionally with a trajectory against -baseline.
func paperBenchAnalyze(path, basePath, outDir string, stdout, stderr io.Writer) int {
	rep, err := readReportFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "paperbench:", err)
		return 1
	}
	analysis := experiments.Analyze(rep)
	var baseline *experiments.Analysis
	if basePath != "" {
		base, err := readReportFile(basePath)
		if err != nil {
			fmt.Fprintln(stderr, "paperbench:", err)
			return 1
		}
		baseline = experiments.Analyze(base)
	}
	if outDir == "" {
		analysis.WriteMarkdown(stdout, baseline)
		return 0
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fmt.Fprintln(stderr, "paperbench:", err)
		return 1
	}
	writeOne := func(name string, render func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(outDir, name))
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	files := []struct {
		name   string
		render func(io.Writer) error
	}{
		{"analysis.md", func(w io.Writer) error { return analysis.WriteMarkdown(w, baseline) }},
		{"configs.csv", analysis.WriteConfigsCSV},
		{"scaling.csv", analysis.WriteScalingCSV},
	}
	for _, file := range files {
		if err := writeOne(file.name, file.render); err != nil {
			fmt.Fprintln(stderr, "paperbench:", err)
			return 1
		}
	}
	fmt.Fprintf(stdout, "paperbench: analysis written to %s (analysis.md, configs.csv, scaling.csv)\n", outDir)
	return 0
}

// PaperBench implements the paperbench command: regenerate the paper's
// tables and figures, run the experiments.json benchmark grid, analyze a
// benchmark report, or gate on a regression diff.
func PaperBench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment: all, table2, table3, table4, fig3, fig4, fig5, weak, ablations")
	scale := fs.Float64("scale", experiments.DefaultConfig.Scale, "image-size scale factor (1.0 = paper sizes); overrides the -grid config when set explicitly")
	repeats := fs.Int("repeats", experiments.DefaultConfig.Repeats, "timed repetitions per image; overrides the -grid config when set explicitly")
	warmup := fs.Int("warmup", experiments.DefaultConfig.Warmup, "untimed warmup runs per image; overrides the -grid config when set explicitly")
	jsonOut := fs.String("json", "", "write machine-readable per-algorithm ns/op + allocs to this file ('-' = stdout) instead of running -exp")
	gridPath := fs.String("grid", "", "run the experiment grid in this config file (e.g. experiments.json) instead of the flat benchmark; combines with -json and -diff")
	tag := fs.String("tag", "", "tag recorded in the -grid report (default: the config's tag)")
	diffPath := fs.String("diff", "", "run the benchmark (flat or -grid) and compare it against this baseline report (e.g. BENCH_seed.json); exit 3 on regressions beyond tolerance")
	regress := fs.Float64("regress", 0.25, "default ns/op regression tolerance for -diff (0.25 = fail beyond +25%)")
	policyPath := fs.String("regress-policy", "", "per-benchmark tolerance + allowlist policy file for -diff (e.g. perf_policy.json)")
	analyzePath := fs.String("analyze", "", "analyze this benchmark report (medians/CIs, scaling curves, efficiency) instead of running anything")
	basePath := fs.String("baseline", "", "with -analyze: add a trajectory section diffing against this report")
	outDir := fs.String("out", "", "with -analyze: write analysis.md, configs.csv and scaling.csv into this directory (default: markdown to stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *scale <= 0 || *scale > 1 {
		fmt.Fprintln(stderr, "paperbench: -scale must be in (0, 1]")
		return 2
	}
	if *repeats < 1 {
		fmt.Fprintln(stderr, "paperbench: -repeats must be >= 1")
		return 2
	}
	if *regress <= 0 {
		fmt.Fprintln(stderr, "paperbench: -regress must be positive")
		return 2
	}

	if *analyzePath != "" {
		return paperBenchAnalyze(*analyzePath, *basePath, *outDir, stdout, stderr)
	}

	cfg := experiments.Config{Scale: *scale, Repeats: *repeats, Warmup: *warmup}

	if *jsonOut != "" || *diffPath != "" || *gridPath != "" {
		var report *experiments.BenchReport
		if *gridPath != "" {
			f, err := os.Open(*gridPath)
			if err != nil {
				fmt.Fprintln(stderr, "paperbench:", err)
				return 1
			}
			gridCfg, err := experiments.ReadGridConfig(f)
			f.Close()
			if err != nil {
				fmt.Fprintln(stderr, "paperbench:", err)
				return 1
			}
			// Explicit flags override the config's knobs, so CI can run the
			// checked-in grid at a smoke scale without a second config file.
			if explicit["scale"] {
				gridCfg.Scale = *scale
			}
			if explicit["repeats"] {
				gridCfg.Repeats = *repeats
			}
			if explicit["warmup"] {
				gridCfg.Warmup = *warmup
			}
			report = experiments.RunGrid(gridCfg, experiments.GridMeta{
				Tag:      *tag,
				GitRev:   gitRev(),
				Progress: stderr,
			})
		} else {
			report = experiments.RunBench(cfg)
		}
		if *jsonOut != "" {
			out := stdout
			if *jsonOut != "-" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					fmt.Fprintln(stderr, "paperbench:", err)
					return 1
				}
				defer f.Close()
				out = f
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(report); err != nil {
				fmt.Fprintln(stderr, "paperbench:", err)
				return 1
			}
			if *jsonOut != "-" {
				fmt.Fprintf(stdout, "paperbench: benchmark report written to %s\n", *jsonOut)
			}
		}
		if *diffPath != "" {
			base, err := readReportFile(*diffPath)
			if err != nil {
				fmt.Fprintln(stderr, "paperbench:", err)
				return 1
			}
			var policy *experiments.Policy
			if *policyPath != "" {
				pf, err := os.Open(*policyPath)
				if err != nil {
					fmt.Fprintln(stderr, "paperbench:", err)
					return 1
				}
				policy, err = experiments.ReadPolicy(pf)
				pf.Close()
				if err != nil {
					fmt.Fprintln(stderr, "paperbench:", err)
					return 1
				}
			}
			return reportDiff(stdout, stderr, base, report, *diffPath, *regress, policy)
		}
		return 0
	}

	runners := map[string]func(){
		"table2":    func() { experiments.Table2(stdout, cfg) },
		"table3":    func() { experiments.Table3(stdout, cfg) },
		"table4":    func() { experiments.Table4(stdout, cfg) },
		"fig3":      func() { experiments.Fig3(stdout, cfg) },
		"fig4":      func() { experiments.Fig4(stdout, cfg) },
		"fig5":      func() { experiments.Fig5(stdout, cfg) },
		"weak":      func() { experiments.WeakScaling(stdout, cfg) },
		"ablations": func() { experiments.Ablations(stdout, cfg) },
	}
	order := []string{"fig3", "table2", "table3", "table4", "fig4", "fig5", "weak", "ablations"}

	if *exp == "all" {
		for i, name := range order {
			if i > 0 {
				fmt.Fprintln(stdout)
			}
			runners[name]()
		}
		return 0
	}
	run, ok := runners[strings.ToLower(*exp)]
	if !ok {
		fmt.Fprintf(stderr, "paperbench: unknown experiment %q (want all, %s)\n",
			*exp, strings.Join(order, ", "))
		return 2
	}
	run()
	return 0
}
