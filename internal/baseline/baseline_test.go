package baseline_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/binimg"
	"repro/internal/dataset"
	"repro/internal/stats"
)

func randomImage(rng *rand.Rand, maxW, maxH int) *binimg.Image {
	w, h := 1+rng.Intn(maxW), 1+rng.Intn(maxH)
	img := binimg.New(w, h)
	density := rng.Float64()
	for i := range img.Pix {
		if rng.Float64() < density {
			img.Pix[i] = 1
		}
	}
	return img
}

func TestFloodFillKnownCases(t *testing.T) {
	cases := []struct {
		art   string
		want8 int
		want4 int
	}{
		{"#", 1, 1},
		{".", 0, 0},
		{"#.\n.#", 1, 2},        // diagonal: one 8-conn, two 4-conn
		{"#.#\n.#.\n#.#", 1, 5}, // X pattern
		{"##\n##", 1, 1},
		{"#.#", 2, 2},
		{"###\n#.#\n###", 1, 1}, // ring
		{"#....#", 2, 2},
	}
	for _, tc := range cases {
		img := binimg.MustParse(tc.art)
		if _, n := baseline.FloodFill(img, baseline.Conn8); n != tc.want8 {
			t.Errorf("8-conn components of\n%s\n= %d, want %d", img, n, tc.want8)
		}
		if _, n := baseline.FloodFill(img, baseline.Conn4); n != tc.want4 {
			t.Errorf("4-conn components of\n%s\n= %d, want %d", img, n, tc.want4)
		}
	}
}

func TestFloodFillRasterOrderLabels(t *testing.T) {
	img := binimg.MustParse(`
		#..#
		#..#
		....
		#..#`)
	lm, n := baseline.FloodFill(img, baseline.Conn8)
	if n != 4 {
		t.Fatalf("n = %d, want 4", n)
	}
	// Components numbered by first pixel in raster order.
	if lm.At(0, 0) != 1 || lm.At(3, 0) != 2 || lm.At(0, 3) != 3 || lm.At(3, 3) != 4 {
		t.Fatalf("labels not in raster order:\n%s", lm)
	}
}

func TestFloodFillValidates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		img := randomImage(rng, 30, 30)
		lm8, n8 := baseline.FloodFill(img, baseline.Conn8)
		lm4, n4 := baseline.FloodFill(img, baseline.Conn4)
		return stats.Validate(img, lm8, n8, true) == nil &&
			stats.Validate(img, lm4, n4, false) == nil &&
			n4 >= n8 // 4-conn never has fewer components
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCountComponents(t *testing.T) {
	img := dataset.Blobs(40, 40, 6, 2, 4, 3)
	_, n := baseline.FloodFill(img, baseline.Conn8)
	if got := baseline.CountComponents(img, baseline.Conn8); got != n {
		t.Fatalf("CountComponents = %d, want %d", got, n)
	}
}

// algs8 is the 8-connected baseline family under test.
var algs8 = map[string]func(*binimg.Image) (*binimg.LabelMap, int){
	"CCLLRPC":  baseline.CCLLRPC,
	"ARUN":     baseline.ARUN,
	"RUN":      baseline.RUN,
	"Classic8": baseline.Classic8,
	"MultiPass8": func(im *binimg.Image) (*binimg.LabelMap, int) {
		return baseline.MultiPass(im, baseline.Conn8)
	},
}

func TestBaselinesMatchFloodFill(t *testing.T) {
	for name, f := range algs8 {
		name, f := name, f
		t.Run(name, func(t *testing.T) {
			check := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				img := randomImage(rng, 36, 36)
				lm, n := f(img)
				ref, nRef := baseline.FloodFill(img, baseline.Conn8)
				return n == nRef && stats.Equivalent(lm, ref) == nil &&
					stats.Validate(img, lm, n, true) == nil
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBaselines4ConnMatchFloodFill(t *testing.T) {
	for name, f := range map[string]func(*binimg.Image) (*binimg.LabelMap, int){
		"Classic4": baseline.Classic4,
		"MultiPass4": func(im *binimg.Image) (*binimg.LabelMap, int) {
			return baseline.MultiPass(im, baseline.Conn4)
		},
	} {
		name, f := name, f
		t.Run(name, func(t *testing.T) {
			check := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				img := randomImage(rng, 36, 36)
				lm, n := f(img)
				ref, nRef := baseline.FloodFill(img, baseline.Conn4)
				return n == nRef && stats.Equivalent(lm, ref) == nil
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBaselinesOnStructuredWorkloads exercises every baseline on the
// generator suite, including the spiral that is pathological for MultiPass.
func TestBaselinesOnStructuredWorkloads(t *testing.T) {
	images := map[string]*binimg.Image{
		"spiral":  dataset.Serpentine(61, 61, 1, 2),
		"rings":   dataset.ConcentricRings(48, 48, 1, 2),
		"checker": dataset.Checkerboard(32, 32, 1),
		"noise":   dataset.UniformNoise(64, 48, 0.5, 42),
		"text":    dataset.Text(80, 40, "RUN", 1, 2),
	}
	for imgName, img := range images {
		ref, nRef := baseline.FloodFill(img, baseline.Conn8)
		for algName, f := range algs8 {
			lm, n := f(img)
			if n != nRef {
				t.Errorf("%s on %s: n = %d, want %d", algName, imgName, n, nRef)
				continue
			}
			if err := stats.Equivalent(lm, ref); err != nil {
				t.Errorf("%s on %s: %v", algName, imgName, err)
			}
		}
	}
}

// TestRUNHandlesRunGeometry pins run-specific edge cases: runs touching only
// diagonally, runs spanning the full row, adjacent runs in one row.
func TestRUNHandlesRunGeometry(t *testing.T) {
	cases := []string{
		"########",                     // one full-width run
		"##.##.##",                     // three runs in one row
		"##......\n..######",           // diagonal touch at x=2 via 8-conn window
		"...##...\n##....##",           // one upper run bridges two lower runs
		"#.......\n.#......\n..#.....", // diagonal staircase of 1-runs
		"##.##\n..#..",                 // lower run merges two upper runs
	}
	for _, art := range cases {
		img := binimg.MustParse(art)
		lm, n := baseline.RUN(img)
		ref, nRef := baseline.FloodFill(img, baseline.Conn8)
		if n != nRef {
			t.Errorf("RUN on\n%s\nn = %d, want %d", img, n, nRef)
			continue
		}
		if err := stats.Equivalent(lm, ref); err != nil {
			t.Errorf("RUN on\n%s\n%v", img, err)
		}
	}
}

// TestMultiPassSpiralTerminates: the spiral forces many propagation passes;
// the algorithm must still converge to one component.
func TestMultiPassSpiralTerminates(t *testing.T) {
	img := dataset.Serpentine(41, 41, 1, 2)
	_, n := baseline.MultiPass(img, baseline.Conn8)
	_, nRef := baseline.FloodFill(img, baseline.Conn8)
	if n != nRef {
		t.Fatalf("MultiPass spiral: n = %d, want %d", n, nRef)
	}
}

func TestRankPCSinkFlattenPostconditions(t *testing.T) {
	s := baseline.NewRankPCSink(16)
	a, b, c := s.NewLabel(), s.NewLabel(), s.NewLabel()
	d := s.NewLabel()
	s.Merge(a, c)
	s.Merge(b, d)
	n := s.Flatten()
	if n != 2 {
		t.Fatalf("Flatten = %d, want 2", n)
	}
	// Sets numbered by smallest member: {1,3} -> 1, {2,4} -> 2.
	if s.Lookup(a) != 1 || s.Lookup(c) != 1 || s.Lookup(b) != 2 || s.Lookup(d) != 2 {
		t.Fatalf("lookups: %d %d %d %d", s.Lookup(a), s.Lookup(b), s.Lookup(c), s.Lookup(d))
	}
}

func TestHeSinkFlattenPostconditions(t *testing.T) {
	s := baseline.NewHeSink(16)
	a, b, c := s.NewLabel(), s.NewLabel(), s.NewLabel()
	s.Merge(a, c)
	n := s.Flatten()
	if n != 2 {
		t.Fatalf("Flatten = %d, want 2", n)
	}
	if s.Lookup(a) != 1 || s.Lookup(c) != 1 || s.Lookup(b) != 2 {
		t.Fatalf("lookups: %d %d %d", s.Lookup(a), s.Lookup(b), s.Lookup(c))
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
}
