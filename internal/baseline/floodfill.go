// Package baseline implements the CCL algorithms the paper compares against
// (CCLLRPC, ARUN, RUN, the repeated-pass algorithm) plus the flood-fill
// reference labeler that every other algorithm in the repository is verified
// against.
package baseline

import (
	"repro/internal/binimg"
)

// Connectivity selects 4- or 8-connectedness. The paper's algorithms use
// 8-connectivity exclusively; the reference and classic algorithms support
// both.
type Connectivity int

// Supported connectivities.
const (
	Conn4 Connectivity = 4
	Conn8 Connectivity = 8
)

// FloodFill labels img by explicit-stack flood fill, assigning consecutive
// labels 1..n in raster order of each component's first pixel. It is the
// correctness oracle: simple enough to be obviously right, with no shared
// machinery with the two-pass algorithms. Returns the label map and n.
func FloodFill(img *binimg.Image, conn Connectivity) (*binimg.LabelMap, int) {
	w, h := img.Width, img.Height
	lm := binimg.NewLabelMap(w, h)
	pix := img.Pix
	lab := lm.L
	var next binimg.Label = 1
	queue := make([]int32, 0, 1024)

	for start, v := range pix {
		if v == 0 || lab[start] != 0 {
			continue
		}
		lab[start] = next
		queue = append(queue[:0], int32(start))
		for len(queue) > 0 {
			idx := int(queue[len(queue)-1])
			queue = queue[:len(queue)-1]
			x, y := idx%w, idx/w
			visit := func(nx, ny int) {
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					return
				}
				ni := ny*w + nx
				if pix[ni] != 0 && lab[ni] == 0 {
					lab[ni] = next
					queue = append(queue, int32(ni))
				}
			}
			visit(x-1, y)
			visit(x+1, y)
			visit(x, y-1)
			visit(x, y+1)
			if conn == Conn8 {
				visit(x-1, y-1)
				visit(x+1, y-1)
				visit(x-1, y+1)
				visit(x+1, y+1)
			}
		}
		next++
	}
	return lm, int(next - 1)
}

// CountComponents returns only the component count of img under conn,
// without materializing a label map (uses FloodFill internally).
func CountComponents(img *binimg.Image, conn Connectivity) int {
	_, n := FloodFill(img, conn)
	return n
}
