package baseline

import (
	"repro/internal/binimg"
	"repro/internal/equiv"
	"repro/internal/unionfind"
)

// Label aliases the repository-wide label type.
type Label = binimg.Label

// RankPCSink is the label-equivalence recorder of the CCLLRPC baseline:
// array-based union-find with link-by-rank and full path compression, the
// technique the paper attributes to Wu-Otoo-Suzuki. It implements scan.Sink.
type RankPCSink struct {
	p     []Label
	rank  []int32
	count Label
}

// NewRankPCSink preallocates for at most maxLabels provisional labels.
// Slot 0 is the background and is never used.
func NewRankPCSink(maxLabels int) *RankPCSink {
	return &RankPCSink{
		p:    make([]Label, maxLabels+1),
		rank: make([]int32, maxLabels+1),
	}
}

// NewLabel creates the next provisional label.
func (s *RankPCSink) NewLabel() Label {
	s.count++
	s.p[s.count] = s.count
	return s.count
}

// Merge unites the sets of x and y by rank, compressing both find paths, and
// returns the surviving root.
func (s *RankPCSink) Merge(x, y Label) Label {
	rx := unionfind.FindCompress(s.p, x)
	ry := unionfind.FindCompress(s.p, y)
	if rx == ry {
		return rx
	}
	if s.rank[rx] < s.rank[ry] {
		rx, ry = ry, rx
	}
	s.p[ry] = rx
	if s.rank[rx] == s.rank[ry] {
		s.rank[rx]++
	}
	return rx
}

// Count returns the number of provisional labels created.
func (s *RankPCSink) Count() Label { return s.count }

// Flatten resolves all equivalences and renumbers the sets consecutively
// 1..n, rewriting p so p[l] is l's final label. Unlike REM's forests,
// rank-linked forests do not satisfy p[i] <= i, so the paper's single-sweep
// FLATTEN does not apply; this is the general two-sweep equivalent with the
// same postconditions (consecutive labels, ordered by smallest member).
func (s *RankPCSink) Flatten() Label {
	final := make([]Label, s.count+1)
	var k Label = 1
	// Increasing-l sweep: a set's smallest member reaches its root first, so
	// final labels are ordered by smallest member, matching unionfind.Flatten.
	for l := Label(1); l <= s.count; l++ {
		r := unionfind.FindCompress(s.p, l)
		if final[r] == 0 {
			final[r] = k
			k++
		}
	}
	// FindCompress(l) left every p[l] pointing directly at its root, so the
	// rewrite is a flat per-slot lookup.
	for l := Label(1); l <= s.count; l++ {
		s.p[l] = final[s.p[l]]
	}
	return k - 1
}

// Lookup returns the final label of provisional label l after Flatten.
func (s *RankPCSink) Lookup(l Label) Label { return s.p[l] }

// HeSink adapts the He-Chao-Suzuki rtable/next/tail equivalence table
// (package equiv) to scan.Sink; it is the label machinery of the ARUN and
// RUN baselines.
type HeSink struct {
	T *equiv.Table
}

// NewHeSink preallocates for at most maxLabels provisional labels.
func NewHeSink(maxLabels int) *HeSink {
	return &HeSink{T: equiv.New(maxLabels)}
}

// NewLabel creates the next provisional label.
func (s *HeSink) NewLabel() Label { return s.T.NewLabel() }

// Merge resolves the equivalence of x and y, returning the representative.
func (s *HeSink) Merge(x, y Label) Label { return s.T.Resolve(x, y) }

// Count returns the number of provisional labels created.
func (s *HeSink) Count() Label { return s.T.Count() }

// Flatten renumbers consecutively; Lookup then maps provisional to final.
func (s *HeSink) Flatten() Label { return s.T.Flatten() }

// Lookup returns the final label of provisional label l after Flatten.
func (s *HeSink) Lookup(l Label) Label { return s.T.Rep(l) }
