package baseline

import (
	"repro/internal/binimg"
)

// MultiPass is the repeated-pass ("multi-pass") labeling algorithm the
// paper's related-work section describes: every foreground pixel starts with
// a unique label, then alternating forward and backward raster passes
// propagate the minimum label over each pixel's full neighborhood until a
// pass changes nothing. Worst-case pass count is proportional to component
// geometry (spirals are pathological), which is exactly why two-pass
// algorithms exist; it serves as the slow outside-the-family baseline.
// Returns the label map with consecutive final labels 1..n and n.
func MultiPass(img *binimg.Image, conn Connectivity) (*binimg.LabelMap, int) {
	w, h := img.Width, img.Height
	lm := binimg.NewLabelMap(w, h)
	pix := img.Pix
	lab := lm.L

	for i, v := range pix {
		if v != 0 {
			lab[i] = Label(i + 1)
		}
	}

	// minNeighbor returns the smallest non-zero label in the full
	// neighborhood of (x, y) including the pixel itself.
	minNeighbor := func(x, y int) Label {
		best := lab[y*w+x]
		consider := func(nx, ny int) {
			if nx < 0 || nx >= w || ny < 0 || ny >= h {
				return
			}
			if l := lab[ny*w+nx]; l != 0 && l < best {
				best = l
			}
		}
		consider(x-1, y)
		consider(x+1, y)
		consider(x, y-1)
		consider(x, y+1)
		if conn == Conn8 {
			consider(x-1, y-1)
			consider(x+1, y-1)
			consider(x-1, y+1)
			consider(x+1, y+1)
		}
		return best
	}

	for {
		changed := false
		// Forward pass.
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := y*w + x
				if pix[i] == 0 {
					continue
				}
				if m := minNeighbor(x, y); m < lab[i] {
					lab[i] = m
					changed = true
				}
			}
		}
		// Backward pass.
		for y := h - 1; y >= 0; y-- {
			for x := w - 1; x >= 0; x-- {
				i := y*w + x
				if pix[i] == 0 {
					continue
				}
				if m := minNeighbor(x, y); m < lab[i] {
					lab[i] = m
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	// Renumber consecutively in raster order of first appearance.
	final := make(map[Label]Label)
	var k Label
	for i, v := range lab {
		if v == 0 {
			continue
		}
		f, ok := final[v]
		if !ok {
			k++
			f = k
			final[v] = f
		}
		lab[i] = f
	}
	return lm, int(k)
}
