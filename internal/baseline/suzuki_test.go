package baseline_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/binimg"
	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestSuzukiKnownCases(t *testing.T) {
	cases := []struct {
		art   string
		want8 int
	}{
		{"#", 1},
		{".", 0},
		{"#.\n.#", 1},
		{"#.#\n.#.\n#.#", 1},
		{"#...#", 2},
		{"###\n#.#\n###", 1},
	}
	for _, tc := range cases {
		img := binimg.MustParse(tc.art)
		lm, n := baseline.Suzuki(img, baseline.Conn8)
		if n != tc.want8 {
			t.Errorf("Suzuki components of\n%s\n= %d, want %d", img, n, tc.want8)
			continue
		}
		if err := stats.Validate(img, lm, n, true); err != nil {
			t.Errorf("Suzuki on\n%s\n%v", img, err)
		}
	}
}

func TestPropertySuzukiMatchesFloodFill(t *testing.T) {
	for _, conn := range []baseline.Connectivity{baseline.Conn4, baseline.Conn8} {
		conn := conn
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			img := randomImage(rng, 30, 30)
			lm, n := baseline.Suzuki(img, conn)
			ref, nRef := baseline.FloodFill(img, conn)
			return n == nRef && stats.Equivalent(lm, ref) == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Fatalf("conn %d: %v", conn, err)
		}
	}
}

// TestSuzukiSerpentineConverges: the serpentine is the multipass
// pathological case; Suzuki's table must still converge to one component
// (and, unlike plain MultiPass, in a bounded handful of sweeps).
func TestSuzukiSerpentineConverges(t *testing.T) {
	img := dataset.Serpentine(81, 81, 1, 2)
	lm, n := baseline.Suzuki(img, baseline.Conn8)
	if n != 1 {
		t.Fatalf("serpentine: n = %d, want 1", n)
	}
	if err := stats.Validate(img, lm, n, true); err != nil {
		t.Fatal(err)
	}
}

func TestSuzukiOnStructuredWorkloads(t *testing.T) {
	for name, img := range map[string]*binimg.Image{
		"checker": dataset.Checkerboard(40, 40, 1),
		"rings":   dataset.ConcentricRings(48, 48, 1, 2),
		"noise":   dataset.UniformNoise(64, 48, 0.5, 13),
		"blobs":   dataset.Blobs(64, 64, 10, 2, 6, 14),
	} {
		lm, n := baseline.Suzuki(img, baseline.Conn8)
		ref, nRef := baseline.FloodFill(img, baseline.Conn8)
		if n != nRef {
			t.Errorf("%s: n = %d, want %d", name, n, nRef)
			continue
		}
		if err := stats.Equivalent(lm, ref); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
