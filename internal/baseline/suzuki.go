package baseline

import (
	"repro/internal/binimg"
)

// Suzuki is the table-accelerated multi-pass algorithm of
// Suzuki-Horiba-Sugie (CVIU 2003), the related-work baseline the paper
// contrasts with two-pass methods: alternating forward and backward raster
// passes propagate labels, but a one-dimensional connection table T keeps
// the transitive closure of discovered equivalences between passes, which
// bounds the pass count by component geometry far more tightly than the
// plain repeated-pass algorithm (MultiPass). Labels stabilize when a full
// forward+backward sweep changes nothing.
//
// Each pass computes, per foreground pixel, the minimum of T-resolved labels
// over the scan mask (the four already-visited neighbors in scan direction
// plus the pixel itself), assigns it, and lowers T entries for every mask
// label accordingly.
func Suzuki(img *binimg.Image, conn Connectivity) (*binimg.LabelMap, int) {
	w, h := img.Width, img.Height
	lm := binimg.NewLabelMap(w, h)
	pix := img.Pix
	lab := lm.L

	// Initial forward pass: provisional labels with table recording.
	t := make([]Label, 1, w*h/2+2)
	var count Label

	resolve := func(l Label) Label {
		for t[l] != l {
			l = t[l]
		}
		return l
	}

	// maskMin returns the minimum resolved label over the already-visited
	// neighbors of (x, y) in the given scan direction, or 0 if none.
	maskMin := func(x, y int, forward bool) Label {
		var best Label
		consider := func(nx, ny int) {
			if nx < 0 || nx >= w || ny < 0 || ny >= h {
				return
			}
			l := lab[ny*w+nx]
			if l == 0 {
				return
			}
			l = resolve(l)
			if best == 0 || l < best {
				best = l
			}
		}
		if forward {
			consider(x-1, y)
			consider(x, y-1)
			if conn == Conn8 {
				consider(x-1, y-1)
				consider(x+1, y-1)
			}
		} else {
			consider(x+1, y)
			consider(x, y+1)
			if conn == Conn8 {
				consider(x+1, y+1)
				consider(x-1, y+1)
			}
		}
		return best
	}

	// lower records that every labeled mask neighbor of (x, y) (and the
	// pixel itself) is equivalent to m, by lowering table entries.
	lower := func(x, y int, m Label, forward bool) {
		update := func(nx, ny int) {
			if nx < 0 || nx >= w || ny < 0 || ny >= h {
				return
			}
			l := lab[ny*w+nx]
			if l == 0 {
				return
			}
			r := resolve(l)
			if r != m {
				t[r] = m
			}
		}
		if forward {
			update(x-1, y)
			update(x, y-1)
			if conn == Conn8 {
				update(x-1, y-1)
				update(x+1, y-1)
			}
		} else {
			update(x+1, y)
			update(x, y+1)
			if conn == Conn8 {
				update(x+1, y+1)
				update(x-1, y+1)
			}
		}
	}

	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			if pix[i] == 0 {
				continue
			}
			if m := maskMin(x, y, true); m != 0 {
				lower(x, y, m, true)
				lab[i] = m
			} else {
				count++
				t = append(t, count)
				lab[i] = count
			}
		}
	}

	// Alternating passes until stable.
	for {
		changed := false
		// Backward pass.
		for y := h - 1; y >= 0; y-- {
			for x := w - 1; x >= 0; x-- {
				i := y*w + x
				if pix[i] == 0 {
					continue
				}
				cur := resolve(lab[i])
				m := maskMin(x, y, false)
				if m != 0 && m < cur {
					lower(x, y, m, false)
					t[cur] = m
					cur = m
					changed = true
				}
				if lab[i] != cur {
					lab[i] = cur
					changed = true
				}
			}
		}
		// Forward pass.
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := y*w + x
				if pix[i] == 0 {
					continue
				}
				cur := resolve(lab[i])
				m := maskMin(x, y, true)
				if m != 0 && m < cur {
					lower(x, y, m, true)
					t[cur] = m
					cur = m
					changed = true
				}
				if lab[i] != cur {
					lab[i] = cur
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	// Consecutive renumbering (first-seen in raster order of resolved
	// labels, matching the other algorithms' postcondition).
	final := make([]Label, count+1)
	var k Label
	for i, v := range lab {
		if v == 0 {
			continue
		}
		r := resolve(v)
		if final[r] == 0 {
			k++
			final[r] = k
		}
		lab[i] = final[r]
	}
	return lm, int(k)
}
