package baseline

import (
	"repro/internal/binimg"
	"repro/internal/equiv"
	"repro/internal/scan"
)

// runSpan is a maximal horizontal run of foreground pixels with its
// provisional label.
type runSpan struct {
	y          int32
	start, end int32 // [start, end) in x
	label      Label
}

// RUN is the He-Chao-Suzuki 2008 run-based two-scan algorithm: the first
// pass decomposes each row into maximal horizontal runs of foreground pixels
// and resolves equivalences between each run and the runs of the previous
// row it touches (8-connectivity widens the touch window by one pixel on
// each side); the second pass paints every recorded run with its final
// label. Runs, not pixels, carry provisional labels, so merge traffic is far
// lower than pixel-based scans on long-run images.
func RUN(img *binimg.Image) (*binimg.LabelMap, int) {
	w, h := img.Width, img.Height
	lm := binimg.NewLabelMap(w, h)
	table := equiv.New(scan.MaxProvisionalLabels(w, h))
	pix := img.Pix

	runs := make([]runSpan, 0, 1024)
	prevLo := 0 // index into runs of the previous row's first run
	for y := 0; y < h; y++ {
		row := y * w
		curLo := len(runs)
		for x := 0; x < w; {
			if pix[row+x] == 0 {
				x++
				continue
			}
			start := x
			for x < w && pix[row+x] != 0 {
				x++
			}
			// 8-connectivity: the run touches previous-row runs overlapping
			// the window [start-1, end+1).
			lo, hi := int32(start-1), int32(x+1)
			var label Label
			for i := prevLo; i < curLo; i++ {
				pr := &runs[i]
				if pr.end <= lo {
					continue
				}
				if pr.start >= hi {
					break
				}
				if label == 0 {
					label = table.Rep(pr.label)
				} else {
					label = table.Resolve(label, pr.label)
				}
			}
			if label == 0 {
				label = table.NewLabel()
			}
			runs = append(runs, runSpan{y: int32(y), start: int32(start), end: int32(x), label: label})
		}
		prevLo = curLo
	}

	n := table.Flatten()

	// Second pass: paint runs with final labels.
	for i := range runs {
		r := &runs[i]
		final := table.Rep(r.label)
		base := int(r.y) * w
		for x := r.start; x < r.end; x++ {
			lm.L[base+int(x)] = final
		}
	}
	return lm, int(n)
}
