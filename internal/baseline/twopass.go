package baseline

import (
	"repro/internal/binimg"
	"repro/internal/scan"
)

// CCLLRPC is the Wu-Otoo-Suzuki two-pass algorithm as characterized by the
// paper: decision-tree scan (Fig. 2) + array union-find with link-by-rank and
// path compression. Returns the final label map and the component count.
func CCLLRPC(img *binimg.Image) (*binimg.LabelMap, int) {
	lm := binimg.NewLabelMap(img.Width, img.Height)
	sink := NewRankPCSink(scan.MaxProvisionalLabels(img.Width, img.Height))
	scan.DecisionTree(img, lm, sink, 0, img.Height)
	n := sink.Flatten()
	relabel(lm, sink.Lookup)
	return lm, int(n)
}

// ARUN is the He-Chao-Suzuki 2012 two-scan algorithm as characterized by the
// paper: two-rows-at-a-time scan (Alg. 6's strategy) + the rtable/next/tail
// equivalence structure.
func ARUN(img *binimg.Image) (*binimg.LabelMap, int) {
	lm := binimg.NewLabelMap(img.Width, img.Height)
	sink := NewHeSink(scan.MaxProvisionalLabels(img.Width, img.Height))
	scan.PairRows(img, lm, sink, 0, img.Height)
	n := sink.Flatten()
	relabel(lm, sink.Lookup)
	return lm, int(n)
}

// Classic8 is the Rosenfeld two-pass scan (all four visited neighbors
// examined, no decision tree) paired with the rank+PC union-find. It is the
// scan-strategy ablation baseline: CCLLRPC minus the decision tree.
func Classic8(img *binimg.Image) (*binimg.LabelMap, int) {
	lm := binimg.NewLabelMap(img.Width, img.Height)
	sink := NewRankPCSink(scan.MaxProvisionalLabels(img.Width, img.Height))
	scan.AllNeighbors8(img, lm, sink, 0, img.Height)
	n := sink.Flatten()
	relabel(lm, sink.Lookup)
	return lm, int(n)
}

// Classic4 is the 4-connected classic two-pass algorithm.
func Classic4(img *binimg.Image) (*binimg.LabelMap, int) {
	lm := binimg.NewLabelMap(img.Width, img.Height)
	sink := NewRankPCSink(scan.MaxProvisionalLabels4(img.Width, img.Height))
	scan.AllNeighbors4(img, lm, sink, 0, img.Height)
	n := sink.Flatten()
	relabel(lm, sink.Lookup)
	return lm, int(n)
}

// relabel rewrites every provisional label through lookup; background (0)
// stays 0.
func relabel(lm *binimg.LabelMap, lookup func(Label) Label) {
	for i, v := range lm.L {
		if v != 0 {
			lm.L[i] = lookup(v)
		}
	}
}
