// Package jobs implements the asynchronous batch-job subsystem of the
// labeling service: a sharded in-memory store of submitted labelings with
// content-hash deduplication and TTL eviction of finished results.
//
// A job's ID is the SHA-256 of its request tuple — input bytes, algorithm,
// connectivity, binarization level and output kind (see Key) — so the ID
// doubles as the dedup key: submitting an identical request finds the
// existing job and returns its cached result instead of recomputing.
// Jobs move queued → running → done/failed/canceled. Finished jobs (results
// and failures alike) are retained for the store's TTL and then evicted by a
// background sweeper goroutine; a Get after the deadline evicts lazily, so
// expiry is observable without waiting for the next sweep tick. Queued and
// running jobs are never evicted.
package jobs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/band"
	"repro/internal/binimg"
	"repro/internal/core"
	"repro/internal/stats"
)

// State is a job's lifecycle state.
type State string

// Job lifecycle states. A job is created queued, moves to running when a
// pool worker picks it up, and ends done (result available), failed
// (Job.Err explains why) or canceled (its context ended first).
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
	// StateCanceled marks a job whose context was canceled before it
	// completed — client timeout, -job-timeout, or server drain. Like
	// failed, a canceled job is replaced on resubmission.
	StateCanceled State = "canceled"
)

// Finished reports whether s is a terminal state (done, failed or canceled).
func (s State) Finished() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Kind is what a job computes: a full labeling (results renderable as
// JSON/PGM/PNG/CCL1) or streaming component statistics (JSON only).
type Kind string

// Job kinds.
const (
	KindLabels Kind = "labels"
	KindStats  Kind = "stats"
)

// Result is a finished job's payload. Exactly one of Labels and Stats is
// set, matching the job's Kind; both are immutable once stored.
type Result struct {
	// Labels is the label raster of a KindLabels job.
	Labels *binimg.LabelMap
	// Components caches a KindLabels job's per-component statistics,
	// computed once at completion so result fetches never rescan the
	// raster on the serving goroutine.
	Components []stats.Component
	// Stats is the streaming statistics of a KindStats job.
	Stats *band.Result

	// NumComponents, Width, Height and Density describe the labeled image
	// for either kind.
	NumComponents int
	Width, Height int
	Density       float64
	// BandRows is the band height a KindStats job streamed with (0 = the
	// default); execution detail only, deliberately outside the dedup key.
	BandRows int
	// DecodeNs is how long the submission spent decoding the input before
	// the job was admitted; surfaced in the status trace, outside the
	// dedup key like BandRows.
	DecodeNs int64
	// Phases holds per-phase times when the parallel algorithms produced
	// the labeling; zero otherwise.
	Phases core.PhaseTimes
}

// Job is a point-in-time snapshot of one stored job. Get and CreateOrGet
// return copies, so fields never change under the caller; Result is shared
// but immutable once the job is done.
type Job struct {
	// ID is the job's content-hash identifier (see Key).
	ID string
	// Gen is the entry's creation generation, unique per CreateOrGet that
	// creates (or replaces) the entry. The transition methods target a
	// generation, so a stale goroutine finishing a deleted-then-resubmitted
	// job cannot touch the replacement entry that reuses its ID.
	Gen uint64
	// Kind is what the job computes.
	Kind Kind
	// State is the lifecycle state at snapshot time.
	State State
	// QueuePos is the approximate engine queue length (including this job)
	// when the job was admitted; 0 before admission completes.
	QueuePos int
	// Err is the failure reason of a failed job.
	Err string
	// Created, Started and Finished are the transition times; Started and
	// Finished are zero until the job reaches the corresponding state.
	Created, Started, Finished time.Time
	// ExpiresAt is when the sweeper may evict the job; zero while the job
	// is queued or running.
	ExpiresAt time.Time
	// Result is the payload of a done job, nil otherwise.
	Result *Result
}

// Key derives a job ID from the request tuple: the output kind, the
// resolved algorithm name, the connectivity, the binarization level and the
// raw input bytes, hashed with SHA-256 and truncated to the first 128 bits
// (32 hex characters). Identical tuples hash to the same ID, which is how
// deduplication works; anything that changes the output (a different
// algorithm, a different threshold for grayscale input) must be part of the
// tuple, while knobs that only change the execution (thread count, band
// height) must not be. Callers should pass level 0 for inputs the level
// cannot affect (raw PBM) so those submissions dedup across levels.
func Key(kind Kind, alg string, conn int, level float64, body []byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%d\x00", kind, alg, conn)
	var lv [8]byte
	binary.LittleEndian.PutUint64(lv[:], math.Float64bits(level))
	h.Write(lv[:])
	h.Write(body)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// Event is one job lifecycle transition, delivered to Options.OnEvent.
// Wait and Run are filled where the transition implies them (Wait on
// started and later, Run on done/failed of a job that started).
type Event struct {
	// Type is the transition: submitted, dedup, started, done, failed or
	// evicted.
	Type string
	// ID and Kind identify the job.
	ID   string
	Kind Kind
	// Err is the failure reason on failed events.
	Err string
	// Wait is the queued → running duration; Run is running → finished.
	Wait, Run time.Duration
}

// Event types.
const (
	EventSubmitted = "submitted"
	EventDedup     = "dedup"
	EventStarted   = "started"
	EventDone      = "done"
	EventFailed    = "failed"
	EventCanceled  = "canceled"
	EventEvicted   = "evicted"
)

// Options sizes a Store.
type Options struct {
	// Shards is the number of mutex-sharded job maps. 0 selects 16.
	Shards int
	// TTL is how long finished jobs (and their results) are retained.
	// 0 selects 15 minutes.
	TTL time.Duration
	// SweepEvery is the background sweeper's period. 0 selects TTL/4,
	// clamped to [100ms, 1m].
	SweepEvery time.Duration
	// MaxResultBytes caps the total bytes the store retains: result
	// payloads (label rasters dominate at 4 bytes per pixel) plus a fixed
	// per-entry overhead, so floods of tiny or failed jobs are bounded
	// too, not just large results. When a transition pushes the total
	// over the cap, the oldest finished jobs are evicted down to a low
	//-water mark, so the store stays bounded even under a stream of
	// distinct (non-dedupable) submissions that TTL alone would retain
	// for minutes. 0 selects 512 MiB.
	MaxResultBytes int64
	// OnEvent, when non-nil, is called — outside the store's locks, on
	// whatever goroutine drove the transition — for every job lifecycle
	// event. The labeling service wires it to the structured logger. The
	// hook must not block: it runs on request and sweeper goroutines.
	OnEvent func(Event)
}

// entryOverheadBytes is the per-entry charge against MaxResultBytes: an
// approximation of the Job struct, its strings, and map bookkeeping. It
// makes entry count — not only result payload — answer to the cap.
const entryOverheadBytes = 512

// Counts is a point-in-time census of the store, for the /metrics endpoint:
// per-state gauges plus cumulative submission, dedup-hit and eviction
// counters.
type Counts struct {
	Queued, Running, Done, Failed, Canceled int64
	Submitted                               int64
	DedupHits                               int64
	Evicted                                 int64
	// ResultBytes is the estimated memory currently pinned by retained
	// results (bounded by Options.MaxResultBytes plus one result).
	ResultBytes int64
}

// entry is the store's mutable record behind the Job snapshots. size is
// the retained-byte accounting of the entry's result (0 until done).
type entry struct {
	job  Job
	size int64
}

type shard struct {
	mu   sync.Mutex
	jobs map[string]*entry
}

// Store keeps jobs in N mutex-sharded maps keyed by job ID. All methods are
// safe for concurrent use; NewStore starts the TTL sweeper and Close stops
// it (the store itself remains usable after Close, only eviction becomes
// lazy).
type Store struct {
	shards   []shard
	ttl      time.Duration
	maxBytes int64
	onEvent  func(Event)

	// retained is the total result bytes currently held across shards.
	retained atomic.Int64
	// gen issues Job.Gen values.
	gen atomic.Uint64

	submitted atomic.Int64
	dedupHits atomic.Int64
	evicted   atomic.Int64

	// Per-state gauges, maintained at every transition (always under the
	// owning shard's lock) so Counts never scans the shards — a /metrics
	// scrape must not stall submissions behind an O(jobs) walk.
	queued, running, done, failed, canceled atomic.Int64

	// now is the clock, injected via newStore so tests drive TTL expiry.
	now func() time.Time

	stopOnce sync.Once
	stop     chan struct{}
	swept    sync.WaitGroup
}

// NewStore builds a store per opt and starts its sweeper goroutine.
func NewStore(opt Options) *Store {
	return newStore(opt, time.Now)
}

// newStore is NewStore with an injectable clock; the clock must be set
// before the sweeper goroutine starts, so tests use this instead of
// overwriting the field afterwards.
func newStore(opt Options, now func() time.Time) *Store {
	n := opt.Shards
	if n <= 0 {
		n = 16
	}
	ttl := opt.TTL
	if ttl <= 0 {
		ttl = 15 * time.Minute
	}
	sweep := opt.SweepEvery
	if sweep <= 0 {
		sweep = ttl / 4
		if sweep < 100*time.Millisecond {
			sweep = 100 * time.Millisecond
		}
		if sweep > time.Minute {
			sweep = time.Minute
		}
	}
	maxBytes := opt.MaxResultBytes
	if maxBytes <= 0 {
		maxBytes = 512 << 20
	}
	s := &Store{
		shards:   make([]shard, n),
		ttl:      ttl,
		maxBytes: maxBytes,
		onEvent:  opt.OnEvent,
		now:      now,
		stop:     make(chan struct{}),
	}
	for i := range s.shards {
		s.shards[i].jobs = make(map[string]*entry)
	}
	s.swept.Add(1)
	go s.sweeper(sweep)
	return s
}

// Close stops the background sweeper. It does not drop stored jobs; Get
// still evicts expired ones lazily.
func (s *Store) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.swept.Wait()
}

// TTL returns the store's retention for finished jobs.
func (s *Store) TTL() time.Duration { return s.ttl }

func (s *Store) shardFor(id string) *shard {
	// Inline FNV-1a: shardFor runs on every store operation and the
	// hash.Hash32 from fnv.New32a would heap-allocate each time.
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return &s.shards[h%uint32(len(s.shards))]
}

func (s *Store) stateGauge(st State) *atomic.Int64 {
	switch st {
	case StateQueued:
		return &s.queued
	case StateRunning:
		return &s.running
	case StateDone:
		return &s.done
	case StateCanceled:
		return &s.canceled
	default:
		return &s.failed
	}
}

// shift accounts one job moving between states; "" means created/removed.
func (s *Store) shift(from, to State) {
	if from != "" {
		s.stateGauge(from).Add(-1)
	}
	if to != "" {
		s.stateGauge(to).Add(1)
	}
}

// emit delivers ev to the OnEvent hook. Every call site fires after the
// owning shard's lock is released, so a hook that re-enters the store
// cannot deadlock; nil-hook stores pay one branch.
func (s *Store) emit(ev Event) {
	if s.onEvent != nil {
		s.onEvent(ev)
	}
}

// evictedEvent builds the eviction event for a dropped job snapshot.
func evictedEvent(j *Job) Event {
	return Event{Type: EventEvicted, ID: j.ID, Kind: j.Kind, Err: j.Err}
}

// dropLocked removes the already-looked-up entry from sh, which the caller
// holds locked, unwinding its gauge and retained-byte accounting.
func (s *Store) dropLocked(sh *shard, id string, e *entry) {
	delete(sh.jobs, id)
	s.retained.Add(-e.size)
	s.shift(e.job.State, "")
}

// resultBytes estimates how much memory a retained result pins: the label
// raster dominates at 4 bytes per pixel; stats components are ~64 bytes
// each.
func resultBytes(r *Result) int64 {
	if r == nil {
		return 0
	}
	var n int64
	if r.Labels != nil {
		n += int64(cap(r.Labels.L)) * 4
	}
	n += int64(len(r.Components)) * 64
	if r.Stats != nil {
		n += int64(len(r.Stats.Components)) * 64
	}
	return n
}

// CreateOrGet is the dedup gate: if a live job with this ID exists, it
// returns that job's snapshot and existed=true (a dedup hit — queued,
// running and done jobs all count). Otherwise it creates a fresh queued job
// and returns existed=false; a failed, canceled or expired job under the
// same ID is replaced rather than returned, so clients can retry.
func (s *Store) CreateOrGet(id string, kind Kind) (Job, bool) {
	sh := s.shardFor(id)
	now := s.now()
	var events [2]Event
	nev := 0
	sh.mu.Lock()
	if e, ok := sh.jobs[id]; ok {
		expired := !e.job.ExpiresAt.IsZero() && now.After(e.job.ExpiresAt)
		retryable := e.job.State == StateFailed || e.job.State == StateCanceled
		if !retryable && !expired {
			s.dedupHits.Add(1)
			j := e.job
			sh.mu.Unlock()
			s.emit(Event{Type: EventDedup, ID: j.ID, Kind: j.Kind})
			return j, true
		}
		if expired {
			s.evicted.Add(1)
			events[nev] = evictedEvent(&e.job)
			nev++
		}
		// Failed, canceled or expired: drop it and replace with a fresh job.
		s.dropLocked(sh, id, e)
	}
	e := &entry{
		job:  Job{ID: id, Gen: s.gen.Add(1), Kind: kind, State: StateQueued, Created: now},
		size: entryOverheadBytes,
	}
	sh.jobs[id] = e
	s.submitted.Add(1)
	s.retained.Add(entryOverheadBytes)
	s.shift("", StateQueued)
	j := e.job
	sh.mu.Unlock()
	events[nev] = Event{Type: EventSubmitted, ID: id, Kind: kind}
	nev++
	for i := 0; i < nev; i++ {
		s.emit(events[i])
	}
	return j, false
}

// SetQueuePos records the engine queue position observed when the job was
// admitted; a no-op if the job (that exact generation) is gone.
func (s *Store) SetQueuePos(id string, gen uint64, pos int) {
	s.update(id, gen, func(j *Job) { j.QueuePos = pos })
}

// Start moves a queued job to running; a no-op if the job (that exact
// generation) is gone.
func (s *Store) Start(id string, gen uint64) {
	var ev Event
	s.update(id, gen, func(j *Job) {
		if j.State == StateQueued {
			s.shift(StateQueued, StateRunning)
			j.State = StateRunning
			j.Started = s.now()
			ev = Event{Type: EventStarted, ID: j.ID, Kind: j.Kind, Wait: j.Started.Sub(j.Created)}
		}
	})
	if ev.Type != "" {
		s.emit(ev)
	}
}

// Complete moves a job to done with its result and arms TTL eviction; a
// no-op if the job was deleted while running (the result is dropped), or
// if the entry under this ID is a different generation (the job was
// deleted and an identical submission recreated it — that submission's own
// computation delivers its result). If the retained results now exceed the
// store's byte cap, the oldest finished jobs are evicted to make room.
func (s *Store) Complete(id string, gen uint64, r *Result) {
	sh := s.shardFor(id)
	var ev Event
	sh.mu.Lock()
	if e, ok := sh.jobs[id]; ok && e.job.Gen == gen && !e.job.State.Finished() {
		s.shift(e.job.State, StateDone)
		e.job.State = StateDone
		e.job.Result = r
		e.job.Finished = s.now()
		e.job.ExpiresAt = e.job.Finished.Add(s.ttl)
		e.size += resultBytes(r)
		s.retained.Add(resultBytes(r))
		ev = Event{Type: EventDone, ID: id, Kind: e.job.Kind}
		if !e.job.Started.IsZero() {
			ev.Wait = e.job.Started.Sub(e.job.Created)
			ev.Run = e.job.Finished.Sub(e.job.Started)
		}
	}
	sh.mu.Unlock()
	if ev.Type != "" {
		s.emit(ev)
	}
	if s.retained.Load() > s.maxBytes {
		s.evictOverflow()
	}
}

// evictOverflow evicts finished jobs oldest-first until the retained
// bytes drop to a low-water mark (90% of the cap, so a store sitting at
// the cap does not rescan on every completion — each scan buys ~10% of
// the cap in headroom), always sparing the most recently finished job (so
// the submission that triggered the overflow still serves its result at
// least once — the cap can transiently overshoot by that one result).
// Best effort: candidates are snapshotted shard by shard, so a racing
// Complete may briefly exceed the cap too.
func (s *Store) evictOverflow() {
	lowWater := s.maxBytes / 10 * 9
	type cand struct {
		id       string
		sh       *shard
		finished time.Time
	}
	var cands []cand
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id, e := range sh.jobs {
			if e.job.State.Finished() {
				cands = append(cands, cand{id, sh, e.job.Finished})
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].finished.Before(cands[j].finished) })
	for _, c := range cands[:max(len(cands)-1, 0)] {
		if s.retained.Load() <= lowWater {
			return
		}
		c.sh.mu.Lock()
		e, ok := c.sh.jobs[c.id]
		if ok && e.job.State.Finished() {
			ev := evictedEvent(&e.job)
			s.dropLocked(c.sh, c.id, e)
			s.evicted.Add(1)
			c.sh.mu.Unlock()
			s.emit(ev)
			continue
		}
		c.sh.mu.Unlock()
	}
}

// Fail moves a job to failed with err as the reason and arms TTL eviction;
// a no-op if the job was deleted while running or superseded by a newer
// generation (see Complete).
func (s *Store) Fail(id string, gen uint64, err error) {
	var ev Event
	s.update(id, gen, func(j *Job) {
		if j.State.Finished() {
			return
		}
		s.shift(j.State, StateFailed)
		j.State = StateFailed
		j.Err = err.Error()
		j.Finished = s.now()
		j.ExpiresAt = j.Finished.Add(s.ttl)
		ev = Event{Type: EventFailed, ID: j.ID, Kind: j.Kind, Err: j.Err}
		if !j.Started.IsZero() {
			ev.Wait = j.Started.Sub(j.Created)
			ev.Run = j.Finished.Sub(j.Started)
		}
	})
	if ev.Type != "" {
		s.emit(ev)
	}
	// Failed entries carry no result but still occupy their overhead
	// charge; a flood of them must trigger eviction like results do.
	if s.retained.Load() > s.maxBytes {
		s.evictOverflow()
	}
}

// Cancel moves a job to canceled with err (the context error that stopped
// it) as the reason and arms TTL eviction. Same no-op semantics as Fail for
// deleted or superseded jobs; queued jobs canceled by a drain move straight
// from queued to canceled.
func (s *Store) Cancel(id string, gen uint64, err error) {
	var ev Event
	s.update(id, gen, func(j *Job) {
		if j.State.Finished() {
			return
		}
		s.shift(j.State, StateCanceled)
		j.State = StateCanceled
		j.Err = err.Error()
		j.Finished = s.now()
		j.ExpiresAt = j.Finished.Add(s.ttl)
		ev = Event{Type: EventCanceled, ID: j.ID, Kind: j.Kind, Err: j.Err}
		if !j.Started.IsZero() {
			ev.Wait = j.Started.Sub(j.Created)
			ev.Run = j.Finished.Sub(j.Started)
		}
	})
	if ev.Type != "" {
		s.emit(ev)
	}
	if s.retained.Load() > s.maxBytes {
		s.evictOverflow()
	}
}

func (s *Store) update(id string, gen uint64, f func(*Job)) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	if e, ok := sh.jobs[id]; ok && e.job.Gen == gen {
		f(&e.job)
	}
	sh.mu.Unlock()
}

// Get returns a snapshot of the job, evicting it first if its TTL has
// lapsed (so expiry is observable without waiting for the sweeper).
func (s *Store) Get(id string) (Job, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	e, ok := sh.jobs[id]
	if !ok {
		sh.mu.Unlock()
		return Job{}, false
	}
	if !e.job.ExpiresAt.IsZero() && s.now().After(e.job.ExpiresAt) {
		ev := evictedEvent(&e.job)
		s.dropLocked(sh, id, e)
		s.evicted.Add(1)
		sh.mu.Unlock()
		s.emit(ev)
		return Job{}, false
	}
	j := e.job
	sh.mu.Unlock()
	return j, true
}

// Remove deletes the job, reporting whether it existed. Removing a running
// job is allowed: its eventual Complete/Fail becomes a no-op and the result
// is dropped.
func (s *Store) Remove(id string) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	e, ok := sh.jobs[id]
	if ok {
		s.dropLocked(sh, id, e)
	}
	sh.mu.Unlock()
	return ok
}

// Len returns the number of stored jobs across all shards.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.jobs)
		sh.mu.Unlock()
	}
	return n
}

// Counts reads the per-state gauges and cumulative counters. O(1): the
// gauges are maintained at every transition, never by scanning.
func (s *Store) Counts() Counts {
	return Counts{
		Queued:      s.queued.Load(),
		Running:     s.running.Load(),
		Done:        s.done.Load(),
		Failed:      s.failed.Load(),
		Canceled:    s.canceled.Load(),
		Submitted:   s.submitted.Load(),
		DedupHits:   s.dedupHits.Load(),
		Evicted:     s.evicted.Load(),
		ResultBytes: s.retained.Load(),
	}
}

func (s *Store) sweeper(every time.Duration) {
	defer s.swept.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.sweep()
		}
	}
}

// sweep evicts every finished job whose TTL has lapsed.
func (s *Store) sweep() {
	now := s.now()
	var events []Event
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id, e := range sh.jobs {
			if !e.job.ExpiresAt.IsZero() && now.After(e.job.ExpiresAt) {
				events = append(events, evictedEvent(&e.job))
				s.dropLocked(sh, id, e)
				s.evicted.Add(1)
			}
		}
		sh.mu.Unlock()
	}
	for _, ev := range events {
		s.emit(ev)
	}
}
