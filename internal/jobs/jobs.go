// Package jobs implements the asynchronous batch-job subsystem of the
// labeling service: a store of submitted labelings with content-hash
// deduplication, TTL eviction of finished results, and pluggable backends
// behind two narrow interfaces — MetaStore for generation-aware job
// metadata and BlobStore for result payloads (and, on durable backends, the
// persisted request inputs that make restart recovery possible).
//
// A job's ID is the SHA-256 of its request tuple — input bytes, algorithm,
// connectivity, binarization level and output kind (see Key) — so the ID
// doubles as the dedup key: submitting an identical request finds the
// existing job and returns its cached result instead of recomputing.
// Jobs move queued → running → done/failed/canceled. Finished jobs (results
// and failures alike) are retained for the store's TTL and then evicted by a
// background sweeper goroutine; a Get after the deadline evicts lazily, so
// expiry is observable without waiting for the next sweep tick. Queued and
// running jobs are never evicted.
//
// Two backends exist. BackendMemory (the default) keeps everything in
// sharded in-process maps: fastest, lost on restart, and MaxResultBytes
// overflow must evict finished jobs. BackendSQLite keeps metadata in a
// WAL-journaled file and result payloads in a content-addressed blob
// directory: a SIGKILL'd process reopens the store, serves every finished
// result byte-identical, and resubmits interrupted jobs (see Recover);
// MaxResultBytes overflow spills RAM copies to disk instead of evicting.
package jobs

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/band"
	"repro/internal/binimg"
	"repro/internal/contour"
	"repro/internal/core"
	"repro/internal/stats"
)

// State is a job's lifecycle state.
type State string

// Job lifecycle states. A job is created queued, moves to running when a
// pool worker picks it up, and ends done (result available), failed
// (Job.Err explains why) or canceled (its context ended first).
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
	// StateCanceled marks a job whose context was canceled before it
	// completed — client timeout, -job-timeout, server drain, DELETE of a
	// queued/running job, or durable-store recovery that could not resubmit
	// it. Like failed, a canceled job is replaced on resubmission.
	StateCanceled State = "canceled"
)

// Finished reports whether s is a terminal state (done, failed or canceled).
func (s State) Finished() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Kind is what a job computes: a full labeling (results renderable as
// JSON/PGM/PNG/CCL1), streaming component statistics (JSON only), a
// labeling plus per-component boundary polylines (JSON only), a gray-level
// labeling (JSON/PGM), or a volumetric labeling (JSON only). The kind is
// part of the dedup key, so one body submitted under different kinds always
// yields distinct jobs.
type Kind string

// Job kinds.
const (
	KindLabels   Kind = "labels"
	KindStats    Kind = "stats"
	KindContours Kind = "contours"
	KindGray     Kind = "gray"
	KindVolume   Kind = "volume"
)

// ResultInfo is the small summary of a finished result that lives with the
// job metadata (and is journaled by the durable backend), so job status can
// be served without touching the payload blob.
type ResultInfo struct {
	// NumComponents, Width, Height and Density describe the labeled image
	// for either kind.
	NumComponents int     `json:"nc,omitempty"`
	Width         int     `json:"w,omitempty"`
	Height        int     `json:"h,omitempty"`
	Density       float64 `json:"density,omitempty"`
	// Depth is the z-slice count of a KindVolume job's labeled volume.
	Depth int `json:"d,omitempty"`
	// BandRows is the band height a KindStats job streamed with (0 = the
	// default); execution detail only, deliberately outside the dedup key.
	BandRows int `json:"band_rows,omitempty"`
	// DecodeNs is how long the submission spent decoding the input before
	// the job was admitted; surfaced in the status trace, outside the
	// dedup key like BandRows.
	DecodeNs int64 `json:"decode_ns,omitempty"`
	// Phases holds per-phase times when the parallel algorithms produced
	// the labeling; zero otherwise.
	Phases core.PhaseTimes `json:"phases,omitempty"`
}

// Result is a finished job's payload; the fields matching the job's Kind
// are set and immutable once stored. The embedded ResultInfo summary is
// also copied into Job.Info at completion.
type Result struct {
	ResultInfo

	// Labels is the label raster of a KindLabels, KindContours or KindGray
	// job.
	Labels *binimg.LabelMap
	// Components caches a labeling job's per-component statistics,
	// computed once at completion so result fetches never rescan the
	// raster on the serving goroutine.
	Components []stats.Component
	// Stats is the streaming statistics of a KindStats job.
	Stats *band.Result
	// Contours caches a KindContours job's per-component boundary
	// polylines, traced once at completion.
	Contours []contour.Contour
	// VolumeSizes caches a KindVolume job's per-component voxel counts,
	// indexed by label-1 (the volume raster itself is not retained — only
	// the summary the result endpoint serves).
	VolumeSizes []int
}

// Params captures how to re-run a submission: everything the service needs
// besides the raw input bytes to decode and resubmit the job. The durable
// backend journals it at creation so queued jobs survive a restart.
type Params struct {
	// Alg, Conn and Level are part of the dedup key (see Key).
	Alg   string  `json:"alg,omitempty"`
	Conn  int     `json:"conn,omitempty"`
	Level float64 `json:"level,omitempty"`
	// Mode and Delta select the labeling predicate of the mode-polymorphic
	// kinds (gray, gray-delta, volume); both enter the dedup key through
	// the kind and algorithm-slot normalization (see the root package's
	// JobKeyMode). Empty means binary.
	Mode  string `json:"mode,omitempty"`
	Delta uint8  `json:"delta,omitempty"`
	// Threads and BandRows are execution knobs outside the dedup key.
	Threads  int `json:"threads,omitempty"`
	BandRows int `json:"band_rows,omitempty"`
	// ContentType is the submitted body's media type, needed to pick the
	// decoder again on recovery.
	ContentType string `json:"content_type,omitempty"`
}

// Job is a point-in-time snapshot of one stored job. Get and CreateOrGet
// return copies, so fields never change under the caller. The result
// payload itself is not part of the snapshot — fetch it with Store.Result.
type Job struct {
	// ID is the job's content-hash identifier (see Key).
	ID string
	// Gen is the entry's creation generation, unique per CreateOrGet that
	// creates (or replaces) the entry. The transition methods target a
	// generation, so a stale goroutine finishing a deleted-then-resubmitted
	// job cannot touch the replacement entry that reuses its ID.
	Gen uint64
	// Kind is what the job computes.
	Kind Kind
	// State is the lifecycle state at snapshot time.
	State State
	// QueuePos is the approximate engine queue length (including this job)
	// when the job was admitted; 0 before admission completes.
	QueuePos int
	// Err is the failure reason of a failed or canceled job.
	Err string
	// Params is the submission tuple needed to re-run the job.
	Params Params
	// Created, Started and Finished are the transition times; Started and
	// Finished are zero until the job reaches the corresponding state.
	Created, Started, Finished time.Time
	// ExpiresAt is when the sweeper may evict the job; zero while the job
	// is queued or running.
	ExpiresAt time.Time
	// Info summarizes the result of a done job, nil otherwise.
	Info *ResultInfo
}

// Key derives a job ID from the request tuple: the output kind, the
// resolved algorithm name, the connectivity, the binarization level and the
// raw input bytes, hashed with SHA-256 and truncated to the first 128 bits
// (32 hex characters). Identical tuples hash to the same ID, which is how
// deduplication works; anything that changes the output (a different
// algorithm, a different threshold for grayscale input) must be part of the
// tuple, while knobs that only change the execution (thread count, band
// height) must not be. Callers should pass level 0 for inputs the level
// cannot affect (raw PBM) so those submissions dedup across levels.
func Key(kind Kind, alg string, conn int, level float64, body []byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%d\x00", kind, alg, conn)
	var lv [8]byte
	binary.LittleEndian.PutUint64(lv[:], math.Float64bits(level))
	h.Write(lv[:])
	h.Write(body)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// Event is one job lifecycle transition, delivered to Options.OnEvent.
// Wait and Run are filled where the transition implies them (Wait on
// started and later, Run on done/failed of a job that started).
type Event struct {
	// Type is the transition: submitted, dedup, started, done, failed or
	// evicted.
	Type string
	// ID and Kind identify the job.
	ID   string
	Kind Kind
	// Err is the failure reason on failed events.
	Err string
	// Wait is the queued → running duration; Run is running → finished.
	Wait, Run time.Duration
}

// Event types.
const (
	EventSubmitted = "submitted"
	EventDedup     = "dedup"
	EventStarted   = "started"
	EventDone      = "done"
	EventFailed    = "failed"
	EventCanceled  = "canceled"
	EventEvicted   = "evicted"
)

// Backend selectors for Options.Backend.
const (
	// BackendMemory keeps everything in process memory (the default).
	BackendMemory = "memory"
	// BackendSQLite selects the durable backend: job metadata in a
	// WAL-journaled single-file store under Options.Dir, result payloads
	// and pending inputs in a content-addressed blob directory beside it.
	// The module builds with zero third-party dependencies, so no SQLite
	// driver is linked — the embedded journal provides the same durability
	// contract (fsynced ordered writes, crash recovery by replay), and the
	// name matches the ccserve -job-store=sqlite flag.
	BackendSQLite = "sqlite"
	// BackendDisk is an alias for BackendSQLite.
	BackendDisk = "disk"
)

// Options sizes a Store.
type Options struct {
	// Backend selects the storage backend: BackendMemory ("" or "memory")
	// or BackendSQLite ("sqlite"/"disk", durable; requires Dir).
	Backend string
	// Dir is the durable backend's directory: a meta.wal journal, a blobs/
	// subdirectory and a LOCK file flock-ed exclusively while the store is
	// open — a second process opening the same Dir fails fast instead of
	// corrupting the journal. Ignored by the memory backend.
	Dir string
	// Shards is the number of mutex-sharded job maps. 0 selects 16.
	Shards int
	// TTL is how long finished jobs (and their results) are retained.
	// 0 selects 15 minutes.
	TTL time.Duration
	// SweepEvery is the background sweeper's period. 0 selects TTL/4,
	// clamped to [100ms, 1m].
	SweepEvery time.Duration
	// MaxResultBytes caps the bytes the store keeps resident in memory:
	// result payloads (label rasters dominate at 4 bytes per pixel) plus a
	// fixed per-entry overhead, so floods of tiny or failed jobs are
	// bounded too, not just large results. 0 selects 512 MiB.
	//
	// When a transition pushes the total over the cap, the durable backend
	// first spills result payloads to disk (oldest first, down to a 90%
	// low-water mark) — nothing is lost, spilled results are re-read on
	// fetch. The memory backend has nowhere to spill, so it evicts the
	// oldest finished jobs instead, always sparing the most recently
	// finished one so the submission that triggered the overflow still
	// serves its result at least once.
	//
	// The memory bound is therefore NOT a hard cap. Precisely: after an
	// eviction pass, resident bytes ≤ 0.9·MaxResultBytes + the size of the
	// single most recently finished result + entryOverheadBytes for every
	// live (queued/running) job, which eviction never touches. One result
	// larger than the cap pins memory above the cap until a newer result
	// finishes (the next pass then evicts it) or its TTL lapses. On the
	// durable backend the exemption does not apply — the newest result's
	// RAM copy is spilled like any other, so resident payload bytes drop
	// all the way to the target.
	MaxResultBytes int64
	// OnEvent, when non-nil, is called — outside the store's locks, on
	// whatever goroutine drove the transition — for every job lifecycle
	// event. The labeling service wires it to the structured logger. The
	// hook must not block: it runs on request and sweeper goroutines.
	OnEvent func(Event)
}

// entryOverheadBytes is the per-entry charge against MaxResultBytes: an
// approximation of the Job struct, its strings, and map bookkeeping. It
// makes entry count — not only result payload — answer to the cap.
const entryOverheadBytes = 512

// Counts is a point-in-time census of the store, for the /metrics endpoint:
// per-state gauges plus cumulative submission, dedup-hit and eviction
// counters.
type Counts struct {
	Queued, Running, Done, Failed, Canceled int64
	Submitted                               int64
	DedupHits                               int64
	Evicted                                 int64
	// ResultBytes is the estimated memory currently resident: entry
	// overhead plus RAM result payloads (see Options.MaxResultBytes for
	// the precise bound).
	ResultBytes int64
	// DiskBytes is the durable backend's on-disk payload footprint
	// (result blobs + pending inputs); 0 on the memory backend.
	DiskBytes int64
	// Spilled counts results whose RAM copy was dropped under byte
	// pressure while the disk copy was kept (durable backend only).
	Spilled int64
	// Recovered and RecoveryCanceled count the startup-recovery outcomes:
	// interrupted jobs successfully resubmitted vs. canceled because their
	// input was lost or resubmission failed.
	Recovered, RecoveryCanceled int64
	// JournalErrors counts durable-journal append failures (write or fsync;
	// ENOSPC is the classic cause). Nonzero means the on-disk journal has
	// diverged from the serving state: a restart may lose or resurrect
	// jobs. 0 on the memory backend.
	JournalErrors int64
}

// journalHealth is implemented by MetaStores that journal transitions and
// can report append failures; the façade polls it for Counts.
type journalHealth interface{ JournalErrors() int64 }

// Store is the job store façade: it owns the clock, TTL policy, sweeper
// goroutine, event emission, byte-cap policy and the cancel registry, and
// delegates record keeping to a MetaStore and payload keeping to a
// BlobStore. All methods are safe for concurrent use; Open/NewStore start
// the TTL sweeper and Close stops it (the store itself remains usable after
// Close, only eviction becomes lazy).
type Store struct {
	meta    MetaStore
	blobs   BlobStore
	durable bool

	ttl      time.Duration
	maxBytes int64
	onEvent  func(Event)

	submitted        atomic.Int64
	dedupHits        atomic.Int64
	evicted          atomic.Int64
	recovered        atomic.Int64
	recoveryCanceled atomic.Int64

	// cancels maps job ID → the in-flight computation's context cancel, so
	// Remove can release the worker promptly instead of letting the doomed
	// computation run to a generation-check no-op.
	cancelMu sync.Mutex
	cancels  map[string]cancelReg

	// evictRaceHook, when non-nil, runs between candidate ranking and each
	// eviction attempt; tests use it to race a resubmission against the
	// stale snapshot.
	evictRaceHook func(id string)

	// now is the clock, injected via open so tests drive TTL expiry.
	now func() time.Time

	// lock is the durable backend's exclusive store-directory flock, held
	// from open until Close; nil on the memory backend.
	lock *os.File

	stopOnce sync.Once
	stop     chan struct{}
	swept    sync.WaitGroup
	closed   atomic.Bool
}

type cancelReg struct {
	gen    uint64
	cancel context.CancelFunc
}

// NewStore builds a memory-backed store per opt and starts its sweeper
// goroutine. It panics if opt selects a non-memory backend — those can fail
// to open, so use Open for backend-selected construction.
func NewStore(opt Options) *Store {
	if opt.Backend != "" && opt.Backend != BackendMemory {
		panic("jobs: NewStore is memory-only; use Open for durable backends")
	}
	s, err := open(opt, time.Now)
	if err != nil {
		// Unreachable: the memory backend has no failure modes.
		panic(err)
	}
	return s
}

// Open builds a store per opt — memory or durable according to opt.Backend
// — and starts its sweeper goroutine. Opening the durable backend replays
// the journal: finished jobs come back finished with their results
// fetchable, interrupted (queued or running) jobs come back queued awaiting
// Recover, and expired or orphaned state is dropped.
func Open(opt Options) (*Store, error) {
	return open(opt, time.Now)
}

// open is Open with an injectable clock; the clock must be set before the
// sweeper goroutine starts, so tests use this instead of overwriting the
// field afterwards.
func open(opt Options, now func() time.Time) (*Store, error) {
	n := opt.Shards
	if n <= 0 {
		n = 16
	}
	ttl := opt.TTL
	if ttl <= 0 {
		ttl = 15 * time.Minute
	}
	sweep := opt.SweepEvery
	if sweep <= 0 {
		sweep = ttl / 4
		if sweep < 100*time.Millisecond {
			sweep = 100 * time.Millisecond
		}
		if sweep > time.Minute {
			sweep = time.Minute
		}
	}
	maxBytes := opt.MaxResultBytes
	if maxBytes <= 0 {
		maxBytes = 512 << 20
	}
	s := &Store{
		durable:  false,
		ttl:      ttl,
		maxBytes: maxBytes,
		onEvent:  opt.OnEvent,
		cancels:  make(map[string]cancelReg),
		now:      now,
		stop:     make(chan struct{}),
	}
	switch opt.Backend {
	case "", BackendMemory:
		s.meta = newMemMeta(n)
		s.blobs = newMemBlobs()
	case BackendSQLite, BackendDisk:
		if opt.Dir == "" {
			return nil, fmt.Errorf("jobs: backend %q requires Options.Dir", opt.Backend)
		}
		if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("jobs: create store dir: %w", err)
		}
		lock, err := lockDir(opt.Dir)
		if err != nil {
			return nil, err
		}
		dm, err := openDurMeta(filepath.Join(opt.Dir, "meta.wal"), n, now())
		if err != nil {
			unlockDir(lock)
			return nil, err
		}
		fb, err := openFSBlobs(filepath.Join(opt.Dir, "blobs"))
		if err != nil {
			dm.Close()
			unlockDir(lock)
			return nil, err
		}
		// Adopt exactly the blobs the replayed metadata still references
		// (results of done jobs, inputs of interrupted ones); everything
		// else on disk is an orphan from a crash window.
		keepRes := make(map[string]uint64)
		keepIn := make(map[string]uint64)
		for _, j := range dm.mem.snapshot(func(*Job) bool { return true }) {
			switch j.State {
			case StateDone:
				keepRes[j.ID] = j.Gen
			case StateQueued:
				keepIn[j.ID] = j.Gen
			}
		}
		if err := fb.reconcile(keepRes, keepIn); err != nil {
			dm.Close()
			unlockDir(lock)
			return nil, err
		}
		s.meta = dm
		s.blobs = fb
		s.lock = lock
		s.durable = true
	default:
		return nil, fmt.Errorf("jobs: unknown backend %q", opt.Backend)
	}
	s.swept.Add(1)
	go s.sweeper(sweep)
	return s, nil
}

// Close stops the background sweeper and releases backend resources. It
// does not drop stored jobs; Get still evicts expired ones lazily, and the
// durable backend's state remains on disk for the next Open. Mutations
// arriving after Close — typically terminal transitions from job
// goroutines still unwinding during shutdown — are no-ops: on the durable
// backend their journal records and blob deletions could no longer be
// applied consistently, and the next Open recovers those jobs instead.
func (s *Store) Close() {
	s.closed.Store(true)
	s.stopOnce.Do(func() { close(s.stop) })
	s.swept.Wait()
	s.meta.Close()
	s.blobs.Close()
	unlockDir(s.lock)
}

// TTL returns the store's retention for finished jobs.
func (s *Store) TTL() time.Duration { return s.ttl }

// Durable reports whether the store survives a process restart (and so
// whether Recover has anything to do).
func (s *Store) Durable() bool { return s.durable }

// emit delivers ev to the OnEvent hook. Every call site fires after the
// backend's locks are released, so a hook that re-enters the store cannot
// deadlock; nil-hook stores pay one branch.
func (s *Store) emit(ev Event) {
	if s.onEvent != nil {
		s.onEvent(ev)
	}
}

// evictedEvent builds the eviction event for a dropped job snapshot.
func evictedEvent(j *Job) Event {
	return Event{Type: EventEvicted, ID: j.ID, Kind: j.Kind, Err: j.Err}
}

// dropBlobs releases a dropped job's payloads (result and pending input).
func (s *Store) dropBlobs(j *Job) {
	s.blobs.Delete(j.ID, j.Gen)
	s.blobs.DeleteInput(j.ID, j.Gen)
}

// resultBytes estimates how much memory a retained result pins: the label
// raster dominates at 4 bytes per pixel; stats components are ~64 bytes
// each; contour points are two ints (16 bytes); volume sizes one int each.
func resultBytes(r *Result) int64 {
	if r == nil {
		return 0
	}
	var n int64
	if r.Labels != nil {
		n += int64(cap(r.Labels.L)) * 4
	}
	n += int64(len(r.Components)) * 64
	if r.Stats != nil {
		n += int64(len(r.Stats.Components)) * 64
	}
	for i := range r.Contours {
		n += int64(len(r.Contours[i].Points))*16 + 32
	}
	n += int64(len(r.VolumeSizes)) * 8
	return n
}

// memBytes is the resident-byte census the cap polices: per-entry overhead
// plus RAM result payloads.
func (s *Store) memBytes() int64 {
	return int64(s.meta.Len())*entryOverheadBytes + s.blobs.Stats().MemBytes
}

// CreateOrGet is the dedup gate: if a live job with this ID exists, it
// returns that job's snapshot and existed=true (a dedup hit — queued,
// running and done jobs all count). Otherwise it creates a fresh queued job
// and returns existed=false; a failed, canceled or expired job under the
// same ID is replaced rather than returned, so clients can retry. The input
// bytes are persisted by durable backends so the job can be resubmitted
// after a restart; the memory backend discards them.
func (s *Store) CreateOrGet(id string, kind Kind, p Params, input []byte) (Job, bool) {
	now := s.now()
	j, existed, replaced := s.meta.CreateOrGet(id, kind, p, now)
	if existed {
		s.dedupHits.Add(1)
		s.emit(Event{Type: EventDedup, ID: j.ID, Kind: j.Kind})
		return j, true
	}
	if replaced != nil {
		s.dropBlobs(replaced)
		if !replaced.ExpiresAt.IsZero() && now.After(replaced.ExpiresAt) {
			s.evicted.Add(1)
			s.emit(evictedEvent(replaced))
		}
	}
	if len(input) > 0 {
		// Best effort: if the input cannot be persisted the job still runs
		// now; it just cannot be resubmitted after a crash (recovery then
		// cancels it as "input lost").
		s.blobs.PutInput(id, j.Gen, input)
	}
	s.submitted.Add(1)
	s.emit(Event{Type: EventSubmitted, ID: id, Kind: kind})
	return j, false
}

// SetQueuePos records the engine queue position observed when the job was
// admitted; a no-op if the job (that exact generation) is gone.
func (s *Store) SetQueuePos(id string, gen uint64, pos int) {
	s.meta.SetQueuePos(id, gen, pos)
}

// Start moves a queued job to running; a no-op if the job (that exact
// generation) is gone.
func (s *Store) Start(id string, gen uint64) {
	if s.closed.Load() {
		return
	}
	if j, ok := s.meta.Start(id, gen, s.now()); ok {
		s.emit(Event{Type: EventStarted, ID: j.ID, Kind: j.Kind, Wait: j.Started.Sub(j.Created)})
	}
}

// Complete moves a job to done with its result and arms TTL eviction; a
// no-op if the job was deleted while running (the result is dropped), or
// if the entry under this ID is a different generation (the job was
// deleted and an identical submission recreated it — that submission's own
// computation delivers its result). The payload is stored before the state
// flips, so a done job always has a fetchable result — on the durable
// backend it is on disk before done is journaled. If resident bytes now
// exceed the store's cap, payloads are spilled (durable) or the oldest
// finished jobs evicted (memory) to make room.
func (s *Store) Complete(id string, gen uint64, r *Result) {
	if s.closed.Load() {
		return
	}
	if err := s.blobs.Put(id, gen, r); err != nil {
		s.Fail(id, gen, fmt.Errorf("persist result: %w", err))
		return
	}
	info := r.ResultInfo
	now := s.now()
	j, ok := s.meta.Complete(id, gen, &info, now, now.Add(s.ttl))
	if !ok {
		// Deleted or superseded while running: drop the orphan payload.
		s.blobs.Delete(id, gen)
		return
	}
	s.blobs.DeleteInput(id, gen)
	s.unregisterCancel(id, gen)
	ev := Event{Type: EventDone, ID: id, Kind: j.Kind}
	if !j.Started.IsZero() {
		ev.Wait = j.Started.Sub(j.Created)
		ev.Run = j.Finished.Sub(j.Started)
	}
	s.emit(ev)
	s.checkOverflow()
}

// Fail moves a job to failed with err as the reason and arms TTL eviction;
// a no-op if the job was deleted while running or superseded by a newer
// generation (see Complete).
func (s *Store) Fail(id string, gen uint64, err error) {
	if s.closed.Load() {
		return
	}
	now := s.now()
	j, ok := s.meta.Fail(id, gen, err.Error(), now, now.Add(s.ttl))
	if !ok {
		return
	}
	s.blobs.DeleteInput(id, gen)
	s.unregisterCancel(id, gen)
	ev := Event{Type: EventFailed, ID: j.ID, Kind: j.Kind, Err: j.Err}
	if !j.Started.IsZero() {
		ev.Wait = j.Started.Sub(j.Created)
		ev.Run = j.Finished.Sub(j.Started)
	}
	s.emit(ev)
	// Failed entries carry no result but still occupy their overhead
	// charge; a flood of them must trigger eviction like results do.
	s.checkOverflow()
}

// Cancel moves a job to canceled with err (the context error that stopped
// it) as the reason and arms TTL eviction. Same no-op semantics as Fail for
// deleted or superseded jobs; queued jobs canceled by a drain move straight
// from queued to canceled.
func (s *Store) Cancel(id string, gen uint64, err error) {
	if s.closed.Load() {
		return
	}
	now := s.now()
	j, ok := s.meta.Cancel(id, gen, err.Error(), now, now.Add(s.ttl))
	if !ok {
		return
	}
	s.blobs.DeleteInput(id, gen)
	s.unregisterCancel(id, gen)
	ev := Event{Type: EventCanceled, ID: j.ID, Kind: j.Kind, Err: j.Err}
	if !j.Started.IsZero() {
		ev.Wait = j.Started.Sub(j.Created)
		ev.Run = j.Finished.Sub(j.Started)
	}
	s.emit(ev)
	s.checkOverflow()
}

// checkOverflow enforces MaxResultBytes: spill first (durable backends
// release payload RAM without losing anything), evict finished entries only
// if spilling was not enough (the memory backend, or an entry-overhead
// flood).
func (s *Store) checkOverflow() {
	if s.memBytes() <= s.maxBytes {
		return
	}
	// Scan down to a low-water mark (90% of the cap) so a store sitting at
	// the cap does not rescan on every completion — each pass buys ~10% of
	// the cap in headroom.
	lowWater := s.maxBytes / 10 * 9
	target := lowWater - int64(s.meta.Len())*entryOverheadBytes
	if target < 0 {
		target = 0
	}
	s.blobs.Shed(target)
	if s.memBytes() <= s.maxBytes {
		return
	}
	s.evictOverflow(lowWater)
}

// evictOverflow evicts finished jobs oldest-first until resident bytes drop
// to the low-water mark, always sparing the most recently finished job (so
// the submission that triggered the overflow still serves its result at
// least once — the cap can transiently overshoot by that one result; see
// Options.MaxResultBytes for the precise bound). Best effort: candidates
// are a lock-released snapshot, so each drop rechecks the candidate's
// generation and state under the shard lock — a job resubmitted (same
// content-hash ID, new generation) and even re-completed since the snapshot
// is not evicted on the stale ranking.
func (s *Store) evictOverflow(lowWater int64) {
	cands := s.meta.Finished()
	if len(cands) == 0 {
		return
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Finished.Before(cands[j].Finished) })
	for i := range cands[:len(cands)-1] {
		if s.memBytes() <= lowWater {
			return
		}
		c := &cands[i]
		if s.evictRaceHook != nil {
			s.evictRaceHook(c.ID)
		}
		if j, ok := s.meta.Evict(c.ID, c.Gen); ok {
			s.dropBlobs(&j)
			s.evicted.Add(1)
			s.emit(evictedEvent(&j))
		}
	}
}

// Get returns a snapshot of the job, evicting it first if its TTL has
// lapsed (so expiry is observable without waiting for the sweeper). After
// Close the eviction is skipped — mutations after Close are no-ops (see
// Close): on the durable backend the journal can no longer record the
// eviction, so deleting the blobs here would leave the next Open
// resurrecting a done job whose result is gone. Expired jobs still read as
// not-found; the next Open sweeps them consistently.
func (s *Store) Get(id string) (Job, bool) {
	j, ok := s.meta.Get(id)
	if !ok {
		return Job{}, false
	}
	if !j.ExpiresAt.IsZero() && s.now().After(j.ExpiresAt) {
		if !s.closed.Load() {
			if dropped, ok := s.meta.Evict(id, j.Gen); ok {
				s.dropBlobs(&dropped)
				s.evicted.Add(1)
				s.emit(evictedEvent(&dropped))
			}
		}
		return Job{}, false
	}
	return j, true
}

// Result fetches a done job's payload from the blob store — from RAM when
// resident, from disk when the durable backend spilled it. ErrNoBlob if the
// job is unknown, not done, or its result was evicted.
func (s *Store) Result(id string) (*Result, error) {
	j, ok := s.Get(id)
	if !ok || j.State != StateDone {
		return nil, ErrNoBlob
	}
	return s.blobs.Open(id, j.Gen)
}

// Remove deletes the job, reporting whether it existed. Removing a queued
// or running job also cancels its computation's context, releasing the
// engine worker promptly — the eventual Complete/Fail/Cancel from the
// unwinding goroutine is a generation-checked no-op.
func (s *Store) Remove(id string) bool {
	if s.closed.Load() {
		return false
	}
	j, ok := s.meta.Remove(id)
	if !ok {
		return false
	}
	s.dropBlobs(&j)
	s.fireCancel(id, j.Gen)
	return true
}

// RegisterCancel associates the in-flight computation's context cancel with
// the job, so Remove can stop the computation instead of orphaning it. If
// that generation is already gone (a Remove raced admission), cancel runs
// immediately. The registration is dropped automatically when the job
// reaches a terminal state; the owner keeps responsibility for calling
// cancel on its own exit path (a double cancel is harmless).
func (s *Store) RegisterCancel(id string, gen uint64, cancel context.CancelFunc) {
	if cancel == nil {
		return
	}
	s.cancelMu.Lock()
	j, ok := s.meta.Get(id)
	if !ok || j.Gen != gen || j.State.Finished() {
		s.cancelMu.Unlock()
		cancel()
		return
	}
	s.cancels[id] = cancelReg{gen: gen, cancel: cancel}
	s.cancelMu.Unlock()
}

// unregisterCancel drops the registration without invoking it (the job
// finished on its own; its owner unwinds the context).
func (s *Store) unregisterCancel(id string, gen uint64) {
	s.cancelMu.Lock()
	if reg, ok := s.cancels[id]; ok && reg.gen == gen {
		delete(s.cancels, id)
	}
	s.cancelMu.Unlock()
}

// fireCancel pops the registration and invokes it.
func (s *Store) fireCancel(id string, gen uint64) {
	s.cancelMu.Lock()
	reg, ok := s.cancels[id]
	if ok && reg.gen == gen {
		delete(s.cancels, id)
	}
	s.cancelMu.Unlock()
	if ok && reg.gen == gen {
		reg.cancel()
	}
}

// Recover resubmits every interrupted job a durable backend replayed:
// queued snapshots (jobs that were queued or running at the crash) are
// handed to resubmit along with their persisted input bytes. A job whose
// input was lost, or whose resubmission fails (engine queue full, decode
// error), is canceled with a "recovery:" reason — the documented terminal
// state clients observe after a restart that could not re-run their job.
// On the memory backend Recover is a no-op (a fresh store holds nothing).
func (s *Store) Recover(resubmit func(j Job, input []byte) error) (requeued, canceled int) {
	for _, j := range s.meta.Queued() {
		input, err := s.blobs.Input(j.ID, j.Gen)
		if err != nil {
			s.Cancel(j.ID, j.Gen, fmt.Errorf("recovery: input lost"))
			canceled++
			continue
		}
		if err := resubmit(j, input); err != nil {
			s.Cancel(j.ID, j.Gen, fmt.Errorf("recovery: %w", err))
			canceled++
			continue
		}
		requeued++
	}
	s.recovered.Add(int64(requeued))
	s.recoveryCanceled.Add(int64(canceled))
	return requeued, canceled
}

// Len returns the number of stored jobs.
func (s *Store) Len() int { return s.meta.Len() }

// Counts reads the per-state gauges and cumulative counters. Near-O(1):
// the gauges are maintained at every transition, never by scanning.
func (s *Store) Counts() Counts {
	queued, running, done, failed, canceled := s.meta.StateCounts()
	bs := s.blobs.Stats()
	var journalErrs int64
	if jh, ok := s.meta.(journalHealth); ok {
		journalErrs = jh.JournalErrors()
	}
	return Counts{
		Queued:           queued,
		Running:          running,
		Done:             done,
		Failed:           failed,
		Canceled:         canceled,
		Submitted:        s.submitted.Load(),
		DedupHits:        s.dedupHits.Load(),
		Evicted:          s.evicted.Load(),
		ResultBytes:      int64(s.meta.Len())*entryOverheadBytes + bs.MemBytes,
		DiskBytes:        bs.DiskBytes,
		Spilled:          bs.Spilled,
		Recovered:        s.recovered.Load(),
		RecoveryCanceled: s.recoveryCanceled.Load(),
		JournalErrors:    journalErrs,
	}
}

func (s *Store) sweeper(every time.Duration) {
	defer s.swept.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.sweep()
		}
	}
}

// sweep evicts every finished job whose TTL has lapsed.
func (s *Store) sweep() {
	dropped := s.meta.Sweep(s.now())
	for i := range dropped {
		j := &dropped[i]
		s.dropBlobs(j)
		s.evicted.Add(1)
		s.emit(evictedEvent(j))
	}
}
