//go:build unix

package jobs

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// flockSupported reports whether lockDir actually enforces exclusivity on
// this platform (tests skip the contention assertion where it cannot).
const flockSupported = true

// lockDir takes an exclusive advisory flock on a LOCK file inside the store
// directory and fails fast if another process already holds it. Two
// processes sharing a store directory would interleave journal appends,
// race compaction renames and reconcile away each other's blobs as orphans,
// so exclusivity is a correctness requirement, not a courtesy. The kernel
// releases the lock when the descriptor closes — including on SIGKILL — so
// a crash never leaves a stale lock behind.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: open store lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobs: store dir %s is already in use by another process (flock: %w)", dir, err)
	}
	return f, nil
}

// unlockDir releases a lockDir lock; closing the descriptor drops the flock.
func unlockDir(f *os.File) {
	if f != nil {
		f.Close()
	}
}
