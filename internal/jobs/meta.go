package jobs

import (
	"sync"
	"sync/atomic"
	"time"
)

// MetaStore is the job metadata store: generation-aware lifecycle records
// keyed by content-hash job ID. Implementations must be safe for concurrent
// use. The in-memory sharded map (memMeta) is the default backend; the
// durable backend (durMeta) decorates it with a write-ahead journal so the
// same lifecycle logic runs once and the journal only records what applied.
//
// Transition methods return the post-transition snapshot and whether the
// transition applied; a transition targeting a missing ID or a stale
// generation is a no-op (applied=false). Timestamps are passed in by the
// caller (the Store façade owns the clock), which keeps implementations
// clock-free and makes journal replay exact.
type MetaStore interface {
	// CreateOrGet is the dedup gate: a live entry under id is returned with
	// existed=true; a failed, canceled or expired one is replaced by a fresh
	// queued job (returned via replaced so the caller can release its blobs
	// and account the eviction).
	CreateOrGet(id string, kind Kind, p Params, now time.Time) (j Job, existed bool, replaced *Job)
	// SetQueuePos records the engine queue position observed at admission.
	SetQueuePos(id string, gen uint64, pos int)
	// Start moves a queued job to running.
	Start(id string, gen uint64, now time.Time) (Job, bool)
	// Complete moves an unfinished job to done with its result summary.
	Complete(id string, gen uint64, info *ResultInfo, now, expires time.Time) (Job, bool)
	// Fail moves an unfinished job to failed.
	Fail(id string, gen uint64, msg string, now, expires time.Time) (Job, bool)
	// Cancel moves an unfinished job to canceled.
	Cancel(id string, gen uint64, msg string, now, expires time.Time) (Job, bool)
	// Get returns a snapshot; it applies no expiry logic (the façade does).
	Get(id string) (Job, bool)
	// Remove deletes the job regardless of state.
	Remove(id string) (Job, bool)
	// Evict deletes the job only if that exact generation is still present
	// and finished — the recheck that makes byte-cap eviction safe against
	// a job being resubmitted and re-completed behind a stale candidate
	// ranking.
	Evict(id string, gen uint64) (Job, bool)
	// Sweep drops every finished job whose expiry precedes now and returns
	// the dropped snapshots.
	Sweep(now time.Time) []Job
	// Finished and Queued snapshot the jobs in those states (Finished spans
	// done, failed and canceled); used for eviction ranking and recovery.
	Finished() []Job
	Queued() []Job
	// Len is the number of stored jobs.
	Len() int
	// StateCounts reads the per-state gauges (O(1), never a scan).
	StateCounts() (queued, running, done, failed, canceled int64)
	// Close releases backend resources (files, handles). The in-memory
	// implementation is a no-op.
	Close() error
}

// memMeta is the default MetaStore: N mutex-sharded maps with per-state
// gauges maintained at every transition so a census never scans the shards.
type memMeta struct {
	shards []metaShard
	// gen issues Job.Gen values; the durable backend seeds it past the
	// largest replayed generation.
	gen atomic.Uint64

	queued, running, done, failed, canceled atomic.Int64
}

type metaShard struct {
	mu   sync.Mutex
	jobs map[string]*Job
}

func newMemMeta(shards int) *memMeta {
	m := &memMeta{shards: make([]metaShard, shards)}
	for i := range m.shards {
		m.shards[i].jobs = make(map[string]*Job)
	}
	return m
}

func (m *memMeta) shardFor(id string) *metaShard {
	// Inline FNV-1a: shardFor runs on every store operation and the
	// hash.Hash32 from fnv.New32a would heap-allocate each time.
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return &m.shards[h%uint32(len(m.shards))]
}

func (m *memMeta) stateGauge(st State) *atomic.Int64 {
	switch st {
	case StateQueued:
		return &m.queued
	case StateRunning:
		return &m.running
	case StateDone:
		return &m.done
	case StateCanceled:
		return &m.canceled
	default:
		return &m.failed
	}
}

// shift accounts one job moving between states; "" means created/removed.
func (m *memMeta) shift(from, to State) {
	if from != "" {
		m.stateGauge(from).Add(-1)
	}
	if to != "" {
		m.stateGauge(to).Add(1)
	}
}

func (m *memMeta) CreateOrGet(id string, kind Kind, p Params, now time.Time) (Job, bool, *Job) {
	sh := m.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if j, ok := sh.jobs[id]; ok {
		expired := !j.ExpiresAt.IsZero() && now.After(j.ExpiresAt)
		retryable := j.State == StateFailed || j.State == StateCanceled
		if !retryable && !expired {
			return *j, true, nil
		}
		// Failed, canceled or expired: replace with a fresh job and hand the
		// old snapshot back so the caller can release its blobs.
		repl := *j
		delete(sh.jobs, id)
		m.shift(repl.State, "")
		fresh := m.createLocked(sh, id, kind, p, now)
		return fresh, false, &repl
	}
	return m.createLocked(sh, id, kind, p, now), false, nil
}

func (m *memMeta) createLocked(sh *metaShard, id string, kind Kind, p Params, now time.Time) Job {
	j := &Job{ID: id, Gen: m.gen.Add(1), Kind: kind, State: StateQueued, Created: now, Params: p}
	sh.jobs[id] = j
	m.shift("", StateQueued)
	return *j
}

// install places a replayed job snapshot directly, gauges included; the
// durable backend uses it during journal replay (no events, no journaling).
func (m *memMeta) install(j Job) {
	sh := m.shardFor(j.ID)
	sh.mu.Lock()
	if old, ok := sh.jobs[j.ID]; ok {
		m.shift(old.State, "")
	}
	cp := j
	sh.jobs[j.ID] = &cp
	m.shift("", j.State)
	sh.mu.Unlock()
	// Keep the generation counter ahead of every installed entry.
	for {
		cur := m.gen.Load()
		if j.Gen <= cur || m.gen.CompareAndSwap(cur, j.Gen) {
			return
		}
	}
}

// mutate runs f on the entry if id exists at exactly gen, returning the
// post-mutation snapshot and whether f reported the transition applied.
func (m *memMeta) mutate(id string, gen uint64, f func(*Job) bool) (Job, bool) {
	sh := m.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	j, ok := sh.jobs[id]
	if !ok || j.Gen != gen {
		return Job{}, false
	}
	if !f(j) {
		return Job{}, false
	}
	return *j, true
}

func (m *memMeta) SetQueuePos(id string, gen uint64, pos int) {
	m.mutate(id, gen, func(j *Job) bool { j.QueuePos = pos; return true })
}

func (m *memMeta) Start(id string, gen uint64, now time.Time) (Job, bool) {
	return m.mutate(id, gen, func(j *Job) bool {
		if j.State != StateQueued {
			return false
		}
		m.shift(StateQueued, StateRunning)
		j.State = StateRunning
		j.Started = now
		return true
	})
}

func (m *memMeta) finish(id string, gen uint64, to State, msg string, info *ResultInfo, now, expires time.Time) (Job, bool) {
	return m.mutate(id, gen, func(j *Job) bool {
		if j.State.Finished() {
			return false
		}
		m.shift(j.State, to)
		j.State = to
		j.Err = msg
		j.Info = info
		j.Finished = now
		j.ExpiresAt = expires
		return true
	})
}

func (m *memMeta) Complete(id string, gen uint64, info *ResultInfo, now, expires time.Time) (Job, bool) {
	return m.finish(id, gen, StateDone, "", info, now, expires)
}

func (m *memMeta) Fail(id string, gen uint64, msg string, now, expires time.Time) (Job, bool) {
	return m.finish(id, gen, StateFailed, msg, nil, now, expires)
}

func (m *memMeta) Cancel(id string, gen uint64, msg string, now, expires time.Time) (Job, bool) {
	return m.finish(id, gen, StateCanceled, msg, nil, now, expires)
}

func (m *memMeta) Get(id string) (Job, bool) {
	sh := m.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if j, ok := sh.jobs[id]; ok {
		return *j, true
	}
	return Job{}, false
}

func (m *memMeta) Remove(id string) (Job, bool) {
	sh := m.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	j, ok := sh.jobs[id]
	if !ok {
		return Job{}, false
	}
	delete(sh.jobs, id)
	m.shift(j.State, "")
	return *j, true
}

func (m *memMeta) Evict(id string, gen uint64) (Job, bool) {
	sh := m.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	j, ok := sh.jobs[id]
	// The generation and state recheck under the shard lock: a candidate
	// ranked from a released-lock snapshot may have been deleted and
	// resubmitted (same content-hash ID, new generation) and even completed
	// again — its fresh result must not be dropped on the stale "oldest"
	// ranking.
	if !ok || j.Gen != gen || !j.State.Finished() {
		return Job{}, false
	}
	delete(sh.jobs, id)
	m.shift(j.State, "")
	return *j, true
}

func (m *memMeta) Sweep(now time.Time) []Job {
	var dropped []Job
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for id, j := range sh.jobs {
			if !j.ExpiresAt.IsZero() && now.After(j.ExpiresAt) {
				dropped = append(dropped, *j)
				delete(sh.jobs, id)
				m.shift(j.State, "")
			}
		}
		sh.mu.Unlock()
	}
	return dropped
}

func (m *memMeta) snapshot(keep func(*Job) bool) []Job {
	var out []Job
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, j := range sh.jobs {
			if keep(j) {
				out = append(out, *j)
			}
		}
		sh.mu.Unlock()
	}
	return out
}

func (m *memMeta) Finished() []Job {
	return m.snapshot(func(j *Job) bool { return j.State.Finished() })
}

func (m *memMeta) Queued() []Job {
	return m.snapshot(func(j *Job) bool { return j.State == StateQueued })
}

func (m *memMeta) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += len(sh.jobs)
		sh.mu.Unlock()
	}
	return n
}

func (m *memMeta) StateCounts() (queued, running, done, failed, canceled int64) {
	return m.queued.Load(), m.running.Load(), m.done.Load(),
		m.failed.Load(), m.canceled.Load()
}

func (m *memMeta) Close() error { return nil }
