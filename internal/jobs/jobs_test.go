package jobs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/binimg"
)

// newTestStore builds a store whose clock the test controls. The sweeper
// still runs on wall time but sees the fake clock, so tests advance expiry
// deterministically; the clock is injected before the sweeper starts so
// there is no unsynchronized write to s.now.
func newTestStore(t *testing.T, opt Options) (*Store, *fakeClock) {
	t.Helper()
	clk := &fakeClock{t: time.Now()}
	s := newStore(opt, clk.Now)
	t.Cleanup(s.Close)
	return s, clk
}

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestKeyTupleSensitivity(t *testing.T) {
	body := []byte("P4\n5 4\nxxx")
	base := Key(KindLabels, "paremsp", 8, 0, body)
	if got := Key(KindLabels, "paremsp", 8, 0, body); got != base {
		t.Fatalf("identical tuples hash differently: %s vs %s", got, base)
	}
	for name, other := range map[string]string{
		"kind": Key(KindStats, "paremsp", 8, 0, body),
		"alg":  Key(KindLabels, "bremsp", 8, 0, body),
		"conn": Key(KindLabels, "paremsp", 4, 0, body),
		"lvl":  Key(KindLabels, "paremsp", 8, 0.25, body),
		"body": Key(KindLabels, "paremsp", 8, 0, []byte("P4\n5 4\nyyy")),
	} {
		if other == base {
			t.Errorf("changing %s did not change the key", name)
		}
	}
	if len(base) != 32 {
		t.Fatalf("key length %d, want 32 hex chars", len(base))
	}
}

func TestCreateOrGetDedup(t *testing.T) {
	s, _ := newTestStore(t, Options{Shards: 4, TTL: time.Hour})
	id := Key(KindLabels, "paremsp", 8, 0, []byte("img"))

	j, existed := s.CreateOrGet(id, KindLabels)
	if existed {
		t.Fatal("first CreateOrGet reported an existing job")
	}
	if j.State != StateQueued || j.ID != id {
		t.Fatalf("fresh job = %+v", j)
	}

	// Queued, running and done jobs all dedup.
	for _, step := range []func(){
		func() {},
		func() { s.Start(id, j.Gen) },
		func() { s.Complete(id, j.Gen, &Result{NumComponents: 3}) },
	} {
		step()
		if _, existed := s.CreateOrGet(id, KindLabels); !existed {
			t.Fatalf("dedup miss after %v", s.mustState(t, id))
		}
	}
	if got := s.Counts(); got.DedupHits != 3 || got.Submitted != 1 {
		t.Fatalf("counts = %+v, want 3 dedup hits / 1 submitted", got)
	}

	// A failed job is replaced by a resubmission, not returned.
	id2 := Key(KindLabels, "paremsp", 8, 0, []byte("bad"))
	jb, _ := s.CreateOrGet(id2, KindLabels)
	s.Fail(id2, jb.Gen, errors.New("boom"))
	j2, existed := s.CreateOrGet(id2, KindLabels)
	if existed {
		t.Fatal("failed job deduplicated; want replacement")
	}
	if j2.State != StateQueued || j2.Err != "" {
		t.Fatalf("replacement job = %+v", j2)
	}
}

// mustState fetches the job's state for test diagnostics.
func (s *Store) mustState(t *testing.T, id string) State {
	t.Helper()
	j, ok := s.Get(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	return j.State
}

func TestLifecycleTransitions(t *testing.T) {
	s, clk := newTestStore(t, Options{TTL: time.Minute})
	id := "job-1"
	created, _ := s.CreateOrGet(id, KindStats)
	gen := created.Gen

	j, _ := s.Get(id)
	if j.State != StateQueued || !j.Started.IsZero() || !j.ExpiresAt.IsZero() {
		t.Fatalf("queued snapshot = %+v", j)
	}

	s.SetQueuePos(id, gen, 7)
	s.Start(id, gen)
	j, _ = s.Get(id)
	if j.State != StateRunning || j.QueuePos != 7 || j.Started.IsZero() {
		t.Fatalf("running snapshot = %+v", j)
	}
	// Start is idempotent: a second Start must not reset the timestamp.
	started := j.Started
	clk.Advance(time.Second)
	s.Start(id, gen)
	if j, _ = s.Get(id); !j.Started.Equal(started) {
		t.Fatal("second Start moved the started timestamp")
	}

	res := &Result{NumComponents: 2, Width: 5, Height: 4}
	s.Complete(id, gen, res)
	j, _ = s.Get(id)
	if j.State != StateDone || j.Result != res || j.Finished.IsZero() {
		t.Fatalf("done snapshot = %+v", j)
	}
	if want := j.Finished.Add(time.Minute); !j.ExpiresAt.Equal(want) {
		t.Fatalf("ExpiresAt = %v, want finished+TTL %v", j.ExpiresAt, want)
	}

	// Terminal states are sticky: a late Fail must not clobber the result.
	s.Fail(id, gen, errors.New("late"))
	if j, _ = s.Get(id); j.State != StateDone {
		t.Fatalf("late Fail overwrote done: %+v", j)
	}
}

// TestStaleGenerationIgnored covers the delete-while-running + resubmit
// race: the first computation's completion targets the old generation and
// must not touch the replacement entry that reuses the content-hash ID.
func TestStaleGenerationIgnored(t *testing.T) {
	s, _ := newTestStore(t, Options{TTL: time.Hour})
	old, _ := s.CreateOrGet("id", KindStats)
	s.Start("id", old.Gen)
	s.Remove("id") // client deletes the running job
	fresh, existed := s.CreateOrGet("id", KindStats)
	if existed || fresh.Gen == old.Gen {
		t.Fatalf("replacement = %+v (existed %v), want a fresh generation", fresh, existed)
	}

	// The stale goroutine finishes: none of its transitions may land.
	s.Start("id", old.Gen)
	s.Complete("id", old.Gen, &Result{BandRows: 7})
	s.Fail("id", old.Gen, errors.New("stale"))
	j, ok := s.Get("id")
	if !ok || j.State != StateQueued || j.Result != nil || !j.Started.IsZero() {
		t.Fatalf("stale transitions leaked into replacement: %+v", j)
	}

	// The replacement's own completion still works.
	s.Complete("id", fresh.Gen, &Result{BandRows: 64})
	if j, _ := s.Get("id"); j.State != StateDone || j.Result.BandRows != 64 {
		t.Fatalf("replacement completion = %+v", j)
	}
}

func TestCompleteAfterRemoveIsDropped(t *testing.T) {
	s, _ := newTestStore(t, Options{})
	jg, _ := s.CreateOrGet("gone", KindLabels)
	if !s.Remove("gone") {
		t.Fatal("Remove reported missing job")
	}
	s.Complete("gone", jg.Gen, &Result{}) // must not resurrect
	if _, ok := s.Get("gone"); ok {
		t.Fatal("Complete resurrected a removed job")
	}
	if s.Remove("gone") {
		t.Fatal("second Remove reported success")
	}
}

func TestGetLazyExpiry(t *testing.T) {
	s, clk := newTestStore(t, Options{TTL: time.Minute})
	ja, _ := s.CreateOrGet("a", KindLabels)
	s.Complete("a", ja.Gen, &Result{})
	if _, ok := s.Get("a"); !ok {
		t.Fatal("job expired before TTL")
	}
	clk.Advance(time.Minute + time.Second)
	if _, ok := s.Get("a"); ok {
		t.Fatal("Get returned an expired job")
	}
	if got := s.Counts().Evicted; got != 1 {
		t.Fatalf("evicted = %d, want 1", got)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after eviction, want 0", s.Len())
	}
}

func TestExpiredJobIsReplacedOnResubmit(t *testing.T) {
	s, clk := newTestStore(t, Options{TTL: time.Minute})
	ja, _ := s.CreateOrGet("a", KindLabels)
	s.Complete("a", ja.Gen, &Result{NumComponents: 9})
	clk.Advance(2 * time.Minute)
	j, existed := s.CreateOrGet("a", KindLabels)
	if existed {
		t.Fatal("expired job deduplicated; want replacement")
	}
	if j.State != StateQueued || j.Result != nil {
		t.Fatalf("replacement = %+v", j)
	}
}

func TestSweeperEvicts(t *testing.T) {
	// Real clock here: the sweeper tick and the TTL race wall time.
	s := NewStore(Options{TTL: 30 * time.Millisecond, SweepEvery: 10 * time.Millisecond})
	defer s.Close()
	ja, _ := s.CreateOrGet("a", KindLabels)
	s.Complete("a", ja.Gen, &Result{})
	s.CreateOrGet("b", KindLabels) // queued: must survive every sweep

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := s.Get("a"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweeper never evicted the finished job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := s.Get("b"); !ok {
		t.Fatal("sweeper evicted a queued job")
	}
	if got := s.Counts().Evicted; got < 1 {
		t.Fatalf("evicted = %d, want >= 1", got)
	}
}

func TestCountsCensus(t *testing.T) {
	s, _ := newTestStore(t, Options{Shards: 3})
	gens := map[string]uint64{}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("q%d", i)
		j, _ := s.CreateOrGet(id, KindLabels)
		gens[id] = j.Gen
	}
	s.Start("q0", gens["q0"])
	s.Complete("q1", gens["q1"], &Result{})
	s.Fail("q2", gens["q2"], errors.New("x"))
	c := s.Counts()
	if c.Queued != 1 || c.Running != 1 || c.Done != 1 || c.Failed != 1 {
		t.Fatalf("census = %+v", c)
	}
	if c.Submitted != 4 {
		t.Fatalf("submitted = %d, want 4", c.Submitted)
	}
}

// TestResultByteCap checks overflow eviction: completing results past
// MaxResultBytes evicts the oldest finished jobs, sparing the newest.
func TestResultByteCap(t *testing.T) {
	// Each done entry charges entryOverheadBytes + 100 labels * 4 bytes.
	const perEntry = entryOverheadBytes + 400
	s, clk := newTestStore(t, Options{Shards: 2, TTL: time.Hour, MaxResultBytes: 2 * perEntry})
	mkRes := func() *Result {
		return &Result{Labels: &binimg.LabelMap{L: make([]binimg.Label, 100)}}
	}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("j%d", i)
		j, _ := s.CreateOrGet(id, KindLabels)
		s.Complete(id, j.Gen, mkRes())
		clk.Advance(time.Second) // distinct Finished times order the eviction
	}
	if got := s.Counts().ResultBytes; got > 2*perEntry+perEntry {
		t.Fatalf("retained %d bytes, want <= cap + one entry", got)
	}
	// The newest job must have survived; the oldest must be gone.
	if _, ok := s.Get("j3"); !ok {
		t.Fatal("newest result was evicted by the byte cap")
	}
	if _, ok := s.Get("j0"); ok {
		t.Fatal("oldest result survived past the byte cap")
	}
	if got := s.Counts().Evicted; got < 2 {
		t.Fatalf("evicted = %d, want >= 2", got)
	}
	// Removing jobs releases their bytes.
	before := s.Counts().ResultBytes
	s.Remove("j3")
	if got := s.Counts().ResultBytes; got != before-perEntry {
		t.Fatalf("ResultBytes after Remove = %d, want %d", got, before-perEntry)
	}
}

// TestFailedEntryFloodBounded: failed jobs carry no result payload but
// still charge their entry overhead, so a flood of them cannot grow the
// store past the byte cap (the metadata-DoS case).
func TestFailedEntryFloodBounded(t *testing.T) {
	const capBytes = 4 * entryOverheadBytes
	s, clk := newTestStore(t, Options{TTL: time.Hour, MaxResultBytes: capBytes})
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("f%d", i)
		j, _ := s.CreateOrGet(id, KindLabels)
		s.Fail(id, j.Gen, errors.New("synthetic"))
		clk.Advance(time.Second)
	}
	if got := s.Counts().ResultBytes; got > capBytes+entryOverheadBytes {
		t.Fatalf("retained %d bytes after failed-job flood, want <= cap + one entry", got)
	}
	if n := s.Len(); n >= 50 || n < 1 {
		t.Fatalf("store holds %d failed entries, want bounded by the cap", n)
	}
}

// TestStoreConcurrent hammers one store from many goroutines; run under
// go test -race this is the shard-locking correctness check.
func TestStoreConcurrent(t *testing.T) {
	s := NewStore(Options{Shards: 4, TTL: 50 * time.Millisecond, SweepEvery: 5 * time.Millisecond})
	defer s.Close()

	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := Key(KindLabels, "paremsp", 8, 0, []byte{byte(i % 16)})
				j, existed := s.CreateOrGet(id, KindLabels)
				if !existed {
					s.SetQueuePos(id, j.Gen, i)
					s.Start(id, j.Gen)
					if i%3 == 0 {
						s.Fail(id, j.Gen, errors.New("synthetic"))
					} else {
						s.Complete(id, j.Gen, &Result{NumComponents: i})
					}
				}
				s.Get(id)
				if (i+w)%7 == 0 {
					s.Remove(id)
				}
				s.Counts()
			}
		}()
	}
	wg.Wait()
}

// TestEventHook asserts every lifecycle transition reaches the OnEvent
// hook, in order, with wait/run durations on the terminal event — and that
// a hook that re-enters the store does not deadlock (events are emitted
// outside the shard locks).
func TestEventHook(t *testing.T) {
	var mu sync.Mutex
	var got []Event
	var s *Store
	clk := &fakeClock{t: time.Now()}
	s = newStore(Options{TTL: time.Minute, OnEvent: func(ev Event) {
		s.Counts() // re-entrancy: must not deadlock
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	}}, clk.Now)
	defer s.Close()

	id := "job-ev"
	j, existed := s.CreateOrGet(id, KindLabels)
	if existed {
		t.Fatal("fresh job reported as existing")
	}
	if _, existed = s.CreateOrGet(id, KindLabels); !existed {
		t.Fatal("dedup miss")
	}
	clk.Advance(10 * time.Millisecond)
	s.Start(id, j.Gen)
	clk.Advance(30 * time.Millisecond)
	s.Complete(id, j.Gen, &Result{NumComponents: 1})

	id2 := "job-fail"
	j2, _ := s.CreateOrGet(id2, KindStats)
	s.Start(id2, j2.Gen)
	s.Fail(id2, j2.Gen, errors.New("boom"))

	mu.Lock()
	defer mu.Unlock()
	types := make([]string, len(got))
	for i, ev := range got {
		types[i] = ev.Type
	}
	want := []string{
		EventSubmitted, EventDedup, EventStarted, EventDone,
		EventSubmitted, EventStarted, EventFailed,
	}
	if fmt.Sprint(types) != fmt.Sprint(want) {
		t.Fatalf("event sequence = %v, want %v", types, want)
	}
	done := got[3]
	if done.ID != id || done.Kind != KindLabels {
		t.Fatalf("done event = %+v", done)
	}
	if done.Wait != 10*time.Millisecond || done.Run != 30*time.Millisecond {
		t.Fatalf("done wait/run = %v/%v, want 10ms/30ms", done.Wait, done.Run)
	}
	if failed := got[6]; failed.Err != "boom" {
		t.Fatalf("failed event err = %q", failed.Err)
	}
}

// TestEventHookEviction asserts TTL sweeps report evicted jobs.
func TestEventHookEviction(t *testing.T) {
	var mu sync.Mutex
	evicted := map[string]bool{}
	s, clk := newTestStore(t, Options{TTL: time.Minute, SweepEvery: time.Hour, OnEvent: func(ev Event) {
		if ev.Type == EventEvicted {
			mu.Lock()
			evicted[ev.ID] = true
			mu.Unlock()
		}
	}})

	j, _ := s.CreateOrGet("old", KindLabels)
	s.Start("old", j.Gen)
	s.Complete("old", j.Gen, &Result{})
	clk.Advance(2 * time.Minute)
	if _, ok := s.Get("old"); ok {
		t.Fatal("expired job still visible")
	}
	mu.Lock()
	defer mu.Unlock()
	if !evicted["old"] {
		t.Fatal("lazy-expiry eviction did not reach the hook")
	}
}
