package jobs

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/binimg"
)

// testBackend returns the backend the suite runs against; CI sets
// CCSERVE_TEST_JOB_STORE=sqlite to exercise the durable backend with the
// same lifecycle tests.
func testBackend() string {
	if b := os.Getenv("CCSERVE_TEST_JOB_STORE"); b != "" {
		return b
	}
	return BackendMemory
}

func durableTest() bool { return testBackend() != BackendMemory }

// newTestStore builds a store whose clock the test controls. The sweeper
// still runs on wall time but sees the fake clock, so tests advance expiry
// deterministically; the clock is injected before the sweeper starts so
// there is no unsynchronized write to s.now.
func newTestStore(t *testing.T, opt Options) (*Store, *fakeClock) {
	t.Helper()
	if opt.Backend == "" {
		opt.Backend = testBackend()
	}
	if opt.Backend != BackendMemory && opt.Dir == "" {
		opt.Dir = t.TempDir()
	}
	clk := &fakeClock{t: time.Now()}
	s, err := open(opt, clk.Now)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(s.Close)
	return s, clk
}

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestKeyTupleSensitivity(t *testing.T) {
	body := []byte("P4\n5 4\nxxx")
	base := Key(KindLabels, "paremsp", 8, 0, body)
	if got := Key(KindLabels, "paremsp", 8, 0, body); got != base {
		t.Fatalf("identical tuples hash differently: %s vs %s", got, base)
	}
	for name, other := range map[string]string{
		"kind": Key(KindStats, "paremsp", 8, 0, body),
		"alg":  Key(KindLabels, "bremsp", 8, 0, body),
		"conn": Key(KindLabels, "paremsp", 4, 0, body),
		"lvl":  Key(KindLabels, "paremsp", 8, 0.25, body),
		"body": Key(KindLabels, "paremsp", 8, 0, []byte("P4\n5 4\nyyy")),
	} {
		if other == base {
			t.Errorf("changing %s did not change the key", name)
		}
	}
	if len(base) != 32 {
		t.Fatalf("key length %d, want 32 hex chars", len(base))
	}
}

func TestCreateOrGetDedup(t *testing.T) {
	s, _ := newTestStore(t, Options{Shards: 4, TTL: time.Hour})
	id := Key(KindLabels, "paremsp", 8, 0, []byte("img"))

	j, existed := s.CreateOrGet(id, KindLabels, Params{}, nil)
	if existed {
		t.Fatal("first CreateOrGet reported an existing job")
	}
	if j.State != StateQueued || j.ID != id {
		t.Fatalf("fresh job = %+v", j)
	}

	// Queued, running and done jobs all dedup.
	for _, step := range []func(){
		func() {},
		func() { s.Start(id, j.Gen) },
		func() { s.Complete(id, j.Gen, &Result{ResultInfo: ResultInfo{NumComponents: 3}}) },
	} {
		step()
		if _, existed := s.CreateOrGet(id, KindLabels, Params{}, nil); !existed {
			t.Fatalf("dedup miss after %v", s.mustState(t, id))
		}
	}
	if got := s.Counts(); got.DedupHits != 3 || got.Submitted != 1 {
		t.Fatalf("counts = %+v, want 3 dedup hits / 1 submitted", got)
	}

	// A failed job is replaced by a resubmission, not returned.
	id2 := Key(KindLabels, "paremsp", 8, 0, []byte("bad"))
	jb, _ := s.CreateOrGet(id2, KindLabels, Params{}, nil)
	s.Fail(id2, jb.Gen, errors.New("boom"))
	j2, existed := s.CreateOrGet(id2, KindLabels, Params{}, nil)
	if existed {
		t.Fatal("failed job deduplicated; want replacement")
	}
	if j2.State != StateQueued || j2.Err != "" {
		t.Fatalf("replacement job = %+v", j2)
	}
}

// mustState fetches the job's state for test diagnostics.
func (s *Store) mustState(t *testing.T, id string) State {
	t.Helper()
	j, ok := s.Get(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	return j.State
}

func TestLifecycleTransitions(t *testing.T) {
	s, clk := newTestStore(t, Options{TTL: time.Minute})
	id := "job-1"
	created, _ := s.CreateOrGet(id, KindStats, Params{}, nil)
	gen := created.Gen

	j, _ := s.Get(id)
	if j.State != StateQueued || !j.Started.IsZero() || !j.ExpiresAt.IsZero() {
		t.Fatalf("queued snapshot = %+v", j)
	}

	s.SetQueuePos(id, gen, 7)
	s.Start(id, gen)
	j, _ = s.Get(id)
	if j.State != StateRunning || j.QueuePos != 7 || j.Started.IsZero() {
		t.Fatalf("running snapshot = %+v", j)
	}
	// Start is idempotent: a second Start must not reset the timestamp.
	started := j.Started
	clk.Advance(time.Second)
	s.Start(id, gen)
	if j, _ = s.Get(id); !j.Started.Equal(started) {
		t.Fatal("second Start moved the started timestamp")
	}

	res := &Result{ResultInfo: ResultInfo{NumComponents: 2, Width: 5, Height: 4}}
	s.Complete(id, gen, res)
	j, _ = s.Get(id)
	if j.State != StateDone || j.Info == nil || j.Finished.IsZero() {
		t.Fatalf("done snapshot = %+v", j)
	}
	if j.Info.NumComponents != 2 || j.Info.Width != 5 || j.Info.Height != 4 {
		t.Fatalf("done info = %+v", j.Info)
	}
	if want := j.Finished.Add(time.Minute); !j.ExpiresAt.Equal(want) {
		t.Fatalf("ExpiresAt = %v, want finished+TTL %v", j.ExpiresAt, want)
	}
	got, err := s.Result(id)
	if err != nil || got.NumComponents != 2 {
		t.Fatalf("Result(%s) = %+v, %v", id, got, err)
	}

	// Terminal states are sticky: a late Fail must not clobber the result.
	s.Fail(id, gen, errors.New("late"))
	if j, _ = s.Get(id); j.State != StateDone {
		t.Fatalf("late Fail overwrote done: %+v", j)
	}
}

// TestStaleGenerationIgnored covers the delete-while-running + resubmit
// race: the first computation's completion targets the old generation and
// must not touch the replacement entry that reuses the content-hash ID.
func TestStaleGenerationIgnored(t *testing.T) {
	s, _ := newTestStore(t, Options{TTL: time.Hour})
	old, _ := s.CreateOrGet("id", KindStats, Params{}, nil)
	s.Start("id", old.Gen)
	s.Remove("id") // client deletes the running job
	fresh, existed := s.CreateOrGet("id", KindStats, Params{}, nil)
	if existed || fresh.Gen == old.Gen {
		t.Fatalf("replacement = %+v (existed %v), want a fresh generation", fresh, existed)
	}

	// The stale goroutine finishes: none of its transitions may land.
	s.Start("id", old.Gen)
	s.Complete("id", old.Gen, &Result{ResultInfo: ResultInfo{BandRows: 7}})
	s.Fail("id", old.Gen, errors.New("stale"))
	j, ok := s.Get("id")
	if !ok || j.State != StateQueued || j.Info != nil || !j.Started.IsZero() {
		t.Fatalf("stale transitions leaked into replacement: %+v", j)
	}
	if _, err := s.Result("id"); err == nil {
		t.Fatal("stale result is fetchable from the replacement")
	}

	// The replacement's own completion still works.
	s.Complete("id", fresh.Gen, &Result{ResultInfo: ResultInfo{BandRows: 64}})
	if j, _ := s.Get("id"); j.State != StateDone || j.Info.BandRows != 64 {
		t.Fatalf("replacement completion = %+v", j)
	}
}

func TestCompleteAfterRemoveIsDropped(t *testing.T) {
	s, _ := newTestStore(t, Options{})
	jg, _ := s.CreateOrGet("gone", KindLabels, Params{}, nil)
	if !s.Remove("gone") {
		t.Fatal("Remove reported missing job")
	}
	s.Complete("gone", jg.Gen, &Result{}) // must not resurrect
	if _, ok := s.Get("gone"); ok {
		t.Fatal("Complete resurrected a removed job")
	}
	if s.Remove("gone") {
		t.Fatal("second Remove reported success")
	}
}

func TestGetLazyExpiry(t *testing.T) {
	s, clk := newTestStore(t, Options{TTL: time.Minute})
	ja, _ := s.CreateOrGet("a", KindLabels, Params{}, nil)
	s.Complete("a", ja.Gen, &Result{})
	if _, ok := s.Get("a"); !ok {
		t.Fatal("job expired before TTL")
	}
	clk.Advance(time.Minute + time.Second)
	if _, ok := s.Get("a"); ok {
		t.Fatal("Get returned an expired job")
	}
	if got := s.Counts().Evicted; got != 1 {
		t.Fatalf("evicted = %d, want 1", got)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after eviction, want 0", s.Len())
	}
}

func TestExpiredJobIsReplacedOnResubmit(t *testing.T) {
	s, clk := newTestStore(t, Options{TTL: time.Minute})
	ja, _ := s.CreateOrGet("a", KindLabels, Params{}, nil)
	s.Complete("a", ja.Gen, &Result{ResultInfo: ResultInfo{NumComponents: 9}})
	clk.Advance(2 * time.Minute)
	j, existed := s.CreateOrGet("a", KindLabels, Params{}, nil)
	if existed {
		t.Fatal("expired job deduplicated; want replacement")
	}
	if j.State != StateQueued || j.Info != nil {
		t.Fatalf("replacement = %+v", j)
	}
}

func TestSweeperEvicts(t *testing.T) {
	// Real clock here: the sweeper tick and the TTL race wall time.
	s := NewStore(Options{TTL: 30 * time.Millisecond, SweepEvery: 10 * time.Millisecond})
	defer s.Close()
	ja, _ := s.CreateOrGet("a", KindLabels, Params{}, nil)
	s.Complete("a", ja.Gen, &Result{})
	s.CreateOrGet("b", KindLabels, Params{}, nil) // queued: must survive every sweep

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := s.Get("a"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweeper never evicted the finished job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := s.Get("b"); !ok {
		t.Fatal("sweeper evicted a queued job")
	}
	if got := s.Counts().Evicted; got < 1 {
		t.Fatalf("evicted = %d, want >= 1", got)
	}
}

func TestCountsCensus(t *testing.T) {
	s, _ := newTestStore(t, Options{Shards: 3})
	gens := map[string]uint64{}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("q%d", i)
		j, _ := s.CreateOrGet(id, KindLabels, Params{}, nil)
		gens[id] = j.Gen
	}
	s.Start("q0", gens["q0"])
	s.Complete("q1", gens["q1"], &Result{})
	s.Fail("q2", gens["q2"], errors.New("x"))
	c := s.Counts()
	if c.Queued != 1 || c.Running != 1 || c.Done != 1 || c.Failed != 1 {
		t.Fatalf("census = %+v", c)
	}
	if c.Submitted != 4 {
		t.Fatalf("submitted = %d, want 4", c.Submitted)
	}
}

// TestResultByteCap checks the MaxResultBytes overflow policy. On the
// memory backend, completing results past the cap evicts the oldest
// finished jobs, sparing the newest. On the durable backend nothing is
// evicted: RAM copies are spilled to disk and every result stays
// fetchable (the satellite-3 spill-not-exempt behaviour).
func TestResultByteCap(t *testing.T) {
	// Each done entry charges entryOverheadBytes + 100 labels * 4 bytes.
	const perEntry = entryOverheadBytes + 400
	capBytes := int64(2 * perEntry)
	if durableTest() {
		// The durable backend only evicts entries when overhead alone
		// overflows; give all four entries headroom so the payloads are
		// what busts the cap and spilling resolves it.
		capBytes = 4*entryOverheadBytes + 400
	}
	s, clk := newTestStore(t, Options{Shards: 2, TTL: time.Hour, MaxResultBytes: capBytes})
	mkRes := func() *Result {
		return &Result{Labels: &binimg.LabelMap{L: make([]binimg.Label, 100)}}
	}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("j%d", i)
		j, _ := s.CreateOrGet(id, KindLabels, Params{}, nil)
		s.Complete(id, j.Gen, mkRes())
		clk.Advance(time.Second) // distinct Finished times order the eviction
	}
	if durableTest() {
		// Spill, don't evict: all four jobs stay done, resident bytes obey
		// the cap, and spilled results still serve from disk.
		c := s.Counts()
		if c.Evicted != 0 || c.Spilled < 1 {
			t.Fatalf("durable overflow: %+v, want 0 evicted and >= 1 spilled", c)
		}
		for i := 0; i < 4; i++ {
			id := fmt.Sprintf("j%d", i)
			r, err := s.Result(id)
			if err != nil || len(r.Labels.L) != 100 {
				t.Fatalf("spilled Result(%s) = %v, %v", id, r, err)
			}
		}
		if got := s.Counts().ResultBytes; got > capBytes {
			t.Fatalf("resident %d bytes after spill, want <= cap", got)
		}
		return
	}
	if got := s.Counts().ResultBytes; got > 2*perEntry+perEntry {
		t.Fatalf("retained %d bytes, want <= cap + one entry", got)
	}
	// The newest job must have survived; the oldest must be gone.
	if _, ok := s.Get("j3"); !ok {
		t.Fatal("newest result was evicted by the byte cap")
	}
	if _, ok := s.Get("j0"); ok {
		t.Fatal("oldest result survived past the byte cap")
	}
	if got := s.Counts().Evicted; got < 2 {
		t.Fatalf("evicted = %d, want >= 2", got)
	}
	// Removing jobs releases their bytes.
	before := s.Counts().ResultBytes
	s.Remove("j3")
	if got := s.Counts().ResultBytes; got != before-perEntry {
		t.Fatalf("ResultBytes after Remove = %d, want %d", got, before-perEntry)
	}
}

// TestFailedEntryFloodBounded: failed jobs carry no result payload but
// still charge their entry overhead, so a flood of them cannot grow the
// store past the byte cap (the metadata-DoS case). Spilling cannot help
// here — there is no payload to spill — so this holds on both backends.
func TestFailedEntryFloodBounded(t *testing.T) {
	const capBytes = 4 * entryOverheadBytes
	s, clk := newTestStore(t, Options{TTL: time.Hour, MaxResultBytes: capBytes})
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("f%d", i)
		j, _ := s.CreateOrGet(id, KindLabels, Params{}, nil)
		s.Fail(id, j.Gen, errors.New("synthetic"))
		clk.Advance(time.Second)
	}
	if got := s.Counts().ResultBytes; got > capBytes+entryOverheadBytes {
		t.Fatalf("retained %d bytes after failed-job flood, want <= cap + one entry", got)
	}
	if n := s.Len(); n >= 50 || n < 1 {
		t.Fatalf("store holds %d failed entries, want bounded by the cap", n)
	}
}

// TestStoreConcurrent hammers one store from many goroutines; run under
// go test -race this is the shard-locking correctness check.
func TestStoreConcurrent(t *testing.T) {
	opt := Options{Shards: 4, TTL: 50 * time.Millisecond, SweepEvery: 5 * time.Millisecond,
		Backend: testBackend()}
	if durableTest() {
		opt.Dir = t.TempDir()
	}
	s, err := Open(opt)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()

	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := Key(KindLabels, "paremsp", 8, 0, []byte{byte(i % 16)})
				j, existed := s.CreateOrGet(id, KindLabels, Params{}, []byte{byte(i % 16)})
				if !existed {
					s.SetQueuePos(id, j.Gen, i)
					s.Start(id, j.Gen)
					if i%3 == 0 {
						s.Fail(id, j.Gen, errors.New("synthetic"))
					} else {
						s.Complete(id, j.Gen, &Result{ResultInfo: ResultInfo{NumComponents: i}})
					}
				}
				s.Get(id)
				s.Result(id)
				if (i+w)%7 == 0 {
					s.Remove(id)
				}
				s.Counts()
			}
		}()
	}
	wg.Wait()
}

// TestEventHook asserts every lifecycle transition reaches the OnEvent
// hook, in order, with wait/run durations on the terminal event — and that
// a hook that re-enters the store does not deadlock (events are emitted
// outside the shard locks).
func TestEventHook(t *testing.T) {
	var mu sync.Mutex
	var got []Event
	var s *Store
	clk := &fakeClock{t: time.Now()}
	opt := Options{TTL: time.Minute, Backend: testBackend(), OnEvent: func(ev Event) {
		s.Counts() // re-entrancy: must not deadlock
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	}}
	if durableTest() {
		opt.Dir = t.TempDir()
	}
	var err error
	s, err = open(opt, clk.Now)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()

	id := "job-ev"
	j, existed := s.CreateOrGet(id, KindLabels, Params{}, nil)
	if existed {
		t.Fatal("fresh job reported as existing")
	}
	if _, existed = s.CreateOrGet(id, KindLabels, Params{}, nil); !existed {
		t.Fatal("dedup miss")
	}
	clk.Advance(10 * time.Millisecond)
	s.Start(id, j.Gen)
	clk.Advance(30 * time.Millisecond)
	s.Complete(id, j.Gen, &Result{ResultInfo: ResultInfo{NumComponents: 1}})

	id2 := "job-fail"
	j2, _ := s.CreateOrGet(id2, KindStats, Params{}, nil)
	s.Start(id2, j2.Gen)
	s.Fail(id2, j2.Gen, errors.New("boom"))

	mu.Lock()
	defer mu.Unlock()
	types := make([]string, len(got))
	for i, ev := range got {
		types[i] = ev.Type
	}
	want := []string{
		EventSubmitted, EventDedup, EventStarted, EventDone,
		EventSubmitted, EventStarted, EventFailed,
	}
	if fmt.Sprint(types) != fmt.Sprint(want) {
		t.Fatalf("event sequence = %v, want %v", types, want)
	}
	done := got[3]
	if done.ID != id || done.Kind != KindLabels {
		t.Fatalf("done event = %+v", done)
	}
	if done.Wait != 10*time.Millisecond || done.Run != 30*time.Millisecond {
		t.Fatalf("done wait/run = %v/%v, want 10ms/30ms", done.Wait, done.Run)
	}
	if failed := got[6]; failed.Err != "boom" {
		t.Fatalf("failed event err = %q", failed.Err)
	}
}

// TestEventHookEviction asserts TTL sweeps report evicted jobs.
func TestEventHookEviction(t *testing.T) {
	var mu sync.Mutex
	evicted := map[string]bool{}
	s, clk := newTestStore(t, Options{TTL: time.Minute, SweepEvery: time.Hour, OnEvent: func(ev Event) {
		if ev.Type == EventEvicted {
			mu.Lock()
			evicted[ev.ID] = true
			mu.Unlock()
		}
	}})

	j, _ := s.CreateOrGet("old", KindLabels, Params{}, nil)
	s.Start("old", j.Gen)
	s.Complete("old", j.Gen, &Result{})
	clk.Advance(2 * time.Minute)
	if _, ok := s.Get("old"); ok {
		t.Fatal("expired job still visible")
	}
	mu.Lock()
	defer mu.Unlock()
	if !evicted["old"] {
		t.Fatal("lazy-expiry eviction did not reach the hook")
	}
}

// TestEvictStaleGenerationNoOp pins the satellite-1 bugfix at the MetaStore
// level: Evict carries the candidate's generation and must refuse to drop
// an entry that was replaced (same ID, new generation) after the candidate
// snapshot was taken.
func TestEvictStaleGenerationNoOp(t *testing.T) {
	s, _ := newTestStore(t, Options{TTL: time.Hour})
	old, _ := s.CreateOrGet("x", KindLabels, Params{}, nil)
	s.Complete("x", old.Gen, &Result{})

	// The job is deleted and resubmitted between candidate ranking and the
	// drop; the replacement completes with a fresh result.
	s.Remove("x")
	fresh, _ := s.CreateOrGet("x", KindLabels, Params{}, nil)
	s.Complete("x", fresh.Gen, &Result{ResultInfo: ResultInfo{NumComponents: 42}})

	if _, ok := s.meta.Evict("x", old.Gen); ok {
		t.Fatal("Evict dropped a fresh entry on a stale generation")
	}
	if j, ok := s.Get("x"); !ok || j.State != StateDone || j.Info.NumComponents != 42 {
		t.Fatalf("fresh result lost: %+v (ok=%v)", j, ok)
	}
	if _, ok := s.meta.Evict("x", fresh.Gen); !ok {
		t.Fatal("Evict refused the matching generation")
	}
}

// TestEvictOverflowRaceSparesFreshResult drives the same race through the
// real overflow path: while evictOverflow walks its lock-released candidate
// ranking, the oldest candidate is deleted, resubmitted and re-completed.
// The pass must skip it (stale generation) instead of evicting the fresh
// result — the pre-fix behaviour rechecked only State.Finished() and
// dropped it.
func TestEvictOverflowRaceSparesFreshResult(t *testing.T) {
	if durableTest() {
		t.Skip("overflow evicts entries only on the memory backend")
	}
	const perEntry = entryOverheadBytes + 400
	// Three finished jobs fit under the cap; the fourth pushes over, so the
	// overflow pass runs exactly once, after the race hook is armed.
	s, clk := newTestStore(t, Options{Shards: 2, TTL: time.Hour, MaxResultBytes: 3*perEntry + 100})
	mkRes := func(nc int) *Result {
		return &Result{
			ResultInfo: ResultInfo{NumComponents: nc},
			Labels:     &binimg.LabelMap{L: make([]binimg.Label, 100)},
		}
	}

	// "victim" is the oldest finished job, so it heads the eviction ranking.
	for i, id := range []string{"victim", "mid", "newest"} {
		j, _ := s.CreateOrGet(id, KindLabels, Params{}, nil)
		s.Complete(id, j.Gen, mkRes(i))
		clk.Advance(time.Second)
	}

	var raced bool
	s.evictRaceHook = func(id string) {
		if id != "victim" || raced {
			return
		}
		raced = true
		// The race: between ranking and drop, the victim is removed,
		// resubmitted under the same content-hash ID and completed again.
		// meta-level calls keep the hook re-entrancy-safe (the façade's
		// Complete would recurse into overflow handling).
		s.meta.Remove("victim")
		j, _, _ := s.meta.CreateOrGet("victim", KindLabels, Params{}, s.now())
		s.blobs.Put("victim", j.Gen, mkRes(99))
		info := &ResultInfo{NumComponents: 99}
		now := s.now()
		s.meta.Complete("victim", j.Gen, info, now, now.Add(s.ttl))
	}

	// Push past the cap: the overflow pass ranks [victim, mid, newest, ...]
	// and fires the hook before touching the victim.
	j, _ := s.CreateOrGet("overflow", KindLabels, Params{}, nil)
	s.Complete("overflow", j.Gen, mkRes(3))

	if !raced {
		t.Fatal("eviction race hook never fired")
	}
	got, ok := s.Get("victim")
	if !ok || got.State != StateDone || got.Info.NumComponents != 99 {
		t.Fatalf("fresh re-completed result was evicted on the stale ranking: %+v (ok=%v)", got, ok)
	}
	if r, err := s.Result("victim"); err != nil || r.NumComponents != 99 {
		t.Fatalf("fresh result payload lost: %+v, %v", r, err)
	}
}

// TestRemoveFiresRegisteredCancel pins the satellite-2 bugfix at the store
// level: Remove must invoke the registered context cancel so the in-flight
// computation stops burning a worker.
func TestRemoveFiresRegisteredCancel(t *testing.T) {
	s, _ := newTestStore(t, Options{TTL: time.Hour})
	j, _ := s.CreateOrGet("r", KindLabels, Params{}, nil)

	canceled := make(chan struct{})
	s.RegisterCancel("r", j.Gen, func() { close(canceled) })
	select {
	case <-canceled:
		t.Fatal("RegisterCancel fired immediately for a live job")
	default:
	}

	s.Remove("r")
	select {
	case <-canceled:
	default:
		t.Fatal("Remove did not cancel the in-flight computation")
	}

	// Registering against a gone generation cancels immediately.
	canceled2 := make(chan struct{})
	s.RegisterCancel("r", j.Gen, func() { close(canceled2) })
	select {
	case <-canceled2:
	default:
		t.Fatal("RegisterCancel for a removed job did not cancel immediately")
	}

	// A job that finishes normally drops its registration without firing.
	j2, _ := s.CreateOrGet("ok", KindLabels, Params{}, nil)
	fired := false
	s.RegisterCancel("ok", j2.Gen, func() { fired = true })
	s.Complete("ok", j2.Gen, &Result{})
	s.Remove("ok")
	if fired {
		t.Fatal("Remove fired the cancel of an already-finished job")
	}
}

// TestStaleCompleteDoesNotClobberFreshResult pins the blob half of the
// generation contract in the order TestStaleGenerationIgnored does not
// cover: the resubmitted job completes FIRST, then the stale goroutine
// finishes. The stale Put must not replace the fresh payload — and the
// stale Complete's cleanup Delete must not remove it — or the job reads
// done with a permanently unfetchable result.
func TestStaleCompleteDoesNotClobberFreshResult(t *testing.T) {
	s, _ := newTestStore(t, Options{TTL: time.Hour})
	old, _ := s.CreateOrGet("id", KindLabels, Params{}, []byte("in"))
	s.Start("id", old.Gen)
	s.Remove("id") // client deletes the running job...
	fresh, existed := s.CreateOrGet("id", KindLabels, Params{}, []byte("in"))
	if existed || fresh.Gen == old.Gen {
		t.Fatalf("replacement = %+v (existed %v), want a fresh generation", fresh, existed)
	}
	s.Start("id", fresh.Gen)
	s.Complete("id", fresh.Gen, labelsResult(10, 2)) // ...which re-completes first,
	s.Complete("id", old.Gen, labelsResult(10, 1))   // then the stale goroutine lands.

	j, ok := s.Get("id")
	if !ok || j.State != StateDone || j.Gen != fresh.Gen {
		t.Fatalf("job = %+v (ok=%v), want done at generation %d", j, ok, fresh.Gen)
	}
	r, err := s.Result("id")
	if err != nil {
		t.Fatalf("Result after stale complete: %v", err)
	}
	for k := range r.Labels.L {
		if r.Labels.L[k] != 2 {
			t.Fatalf("label[%d] = %d, want the fresh result's 2", k, r.Labels.L[k])
		}
	}
}
