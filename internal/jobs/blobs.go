package jobs

import (
	"errors"
	"sync"
)

// ErrNoBlob reports that a blob store holds no payload for the requested
// job/generation — the job was evicted, removed, or never completed.
var ErrNoBlob = errors.New("jobs: no stored result")

// BlobStats is a blob store census. MemBytes counts payload bytes resident
// in RAM, DiskBytes counts bytes on disk (results and retained inputs), and
// Spilled counts results whose RAM copy was dropped under memory pressure
// while the disk copy was kept.
type BlobStats struct {
	MemBytes  int64
	DiskBytes int64
	Spilled   int64
}

// BlobStore holds job result payloads and, on durable backends, the raw
// request inputs needed to resubmit queued jobs after a restart. All methods
// are safe for concurrent use. Payloads are keyed by (id, generation): a
// resubmitted job writes under a new generation and never collides with a
// stale one.
type BlobStore interface {
	// Put stores the result payload for (id, gen), replacing any previous
	// payload stored under the same id at the same or an older generation.
	// If the stored payload is a NEWER generation the put is dropped: the
	// caller is a stale completion racing a resubmitted job, and its
	// generation-checked metadata transition is about to no-op too — the
	// newer payload must survive the race.
	Put(id string, gen uint64, r *Result) error
	// Open returns the payload for (id, gen), reading it back from disk if
	// the RAM copy was spilled. ErrNoBlob if absent.
	Open(id string, gen uint64) (*Result, error)
	// Delete drops the payload (RAM and disk). Unknown keys are a no-op.
	Delete(id string, gen uint64)

	// PutInput persists the raw request body so the job can be resubmitted
	// after a restart; in-memory backends may discard it (a process restart
	// loses the store anyway).
	PutInput(id string, gen uint64, data []byte) error
	// Input returns the persisted request body, ErrNoBlob if absent.
	Input(id string, gen uint64) ([]byte, error)
	// DeleteInput drops the persisted request body.
	DeleteInput(id string, gen uint64)

	// Shed reduces resident payload memory to at most target bytes without
	// losing payloads, returning the bytes released. Backends that cannot
	// spill (memory) return 0, signalling the caller to fall back to entry
	// eviction.
	Shed(target int64) int64
	// Stats reports the byte census.
	Stats() BlobStats
	// Close releases backend resources.
	Close() error
}

// memBlobs keeps result payloads as live pointers in a mutex-guarded map.
// It cannot spill — Shed always returns 0 — so the Store façade bounds its
// memory by evicting whole entries, exactly the pre-refactor behaviour.
type memBlobs struct {
	mu       sync.Mutex
	results  map[string]memBlob
	memBytes int64
}

type memBlob struct {
	gen  uint64
	r    *Result
	size int64
}

func newMemBlobs() *memBlobs {
	return &memBlobs{results: make(map[string]memBlob)}
}

func (b *memBlobs) Put(id string, gen uint64, r *Result) error {
	size := resultBytes(r)
	b.mu.Lock()
	if old, ok := b.results[id]; ok {
		if old.gen > gen {
			// Stale completion racing a resubmitted job: the newer payload
			// wins (see BlobStore.Put).
			b.mu.Unlock()
			return nil
		}
		b.memBytes -= old.size
	}
	b.results[id] = memBlob{gen: gen, r: r, size: size}
	b.memBytes += size
	b.mu.Unlock()
	return nil
}

func (b *memBlobs) Open(id string, gen uint64) (*Result, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if bl, ok := b.results[id]; ok && bl.gen == gen {
		return bl.r, nil
	}
	return nil, ErrNoBlob
}

func (b *memBlobs) Delete(id string, gen uint64) {
	b.mu.Lock()
	if bl, ok := b.results[id]; ok && bl.gen == gen {
		b.memBytes -= bl.size
		delete(b.results, id)
	}
	b.mu.Unlock()
}

// PutInput is a no-op: the memory backend cannot outlive the process, so
// there is never a restart to resubmit for.
func (b *memBlobs) PutInput(string, uint64, []byte) error { return nil }

func (b *memBlobs) Input(string, uint64) ([]byte, error) { return nil, ErrNoBlob }

func (b *memBlobs) DeleteInput(string, uint64) {}

func (b *memBlobs) Shed(int64) int64 { return 0 }

func (b *memBlobs) Stats() BlobStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BlobStats{MemBytes: b.memBytes}
}

func (b *memBlobs) Close() error { return nil }
