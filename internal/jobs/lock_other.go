//go:build !unix

package jobs

import "os"

const flockSupported = false

// lockDir is a no-op on platforms without flock: single-process use of a
// store directory is then the operator's responsibility.
func lockDir(string) (*os.File, error) { return nil, nil }

func unlockDir(*os.File) {}
