package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// walRec is one journal line: a self-contained JSON record of a lifecycle
// transition. Only three ops exist — create, finish, remove — because only
// those must survive a crash. Start is deliberately not journaled: recovery
// re-queues interrupted jobs anyway, so a job that was running at the crash
// replays as queued, which is exactly the documented recovery semantics.
type walRec struct {
	Op   string `json:"op"` // "create" | "finish" | "remove"
	ID   string `json:"id"`
	Gen  uint64 `json:"gen,omitempty"`
	Kind Kind   `json:"kind,omitempty"`
	// finish-only fields.
	State State       `json:"state,omitempty"` // done | failed | canceled
	Err   string      `json:"err,omitempty"`
	Info  *ResultInfo `json:"info,omitempty"`
	// T is the transition time (create or finish), Exp the TTL deadline,
	// both unix nanoseconds.
	T   int64   `json:"t,omitempty"`
	Exp int64   `json:"exp,omitempty"`
	P   *Params `json:"p,omitempty"`
}

// durMeta is the durable MetaStore: it embeds the in-memory implementation
// for all reads and state logic and appends a fsynced journal record for
// every applied create/finish/remove, so replaying the journal rebuilds the
// exact metadata. mu serializes the memory transition with its journal
// append — without it two racing transitions could journal in the opposite
// order they applied, and a replay would resurrect the loser.
type durMeta struct {
	mem *memMeta

	mu      sync.Mutex
	f       *os.File
	path    string
	appends int // records since open/compaction, drives compaction

	// journalErrs counts append write/fsync failures (ENOSPC, yanked disk):
	// the in-memory state keeps serving, but the journal has diverged, so a
	// later restart may lose or resurrect jobs. Exported through Counts as
	// the ccserve_jobs_journal_errors_total metric; logOnce keeps a full
	// disk from turning into a log storm.
	journalErrs atomic.Int64
	logOnce     sync.Once
}

// openDurMeta opens (or creates) the journal at path and replays it.
// Finished jobs whose TTL already lapsed are not installed (their blobs are
// swept as orphans by the caller); everything else comes back exactly as
// journaled, with running-at-crash jobs as queued. A torn trailing record —
// the one crash artifact an append-only journal can have — is truncated; a
// torn or foreign record mid-file stops the replay there and truncates the
// rest, favouring serving the prefix over refusing to start.
func openDurMeta(path string, shards int, now time.Time) (*durMeta, error) {
	d := &durMeta{mem: newMemMeta(shards), path: path}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("jobs: read journal: %w", err)
	}
	jobs, maxGen, goodLen := replay(data)
	if goodLen < len(data) {
		if err := os.Truncate(path, int64(goodLen)); err != nil {
			return nil, fmt.Errorf("jobs: truncate torn journal: %w", err)
		}
	}
	live := 0
	for _, j := range jobs {
		if !j.ExpiresAt.IsZero() && now.After(j.ExpiresAt) {
			continue
		}
		d.mem.install(*j)
		live++
	}
	// Seed the generation counter past every journaled generation — also
	// the removed and expired ones, so a fresh entry never reuses a
	// generation that stale on-disk artifacts might still carry.
	for {
		cur := d.mem.gen.Load()
		if maxGen <= cur || d.mem.gen.CompareAndSwap(cur, maxGen) {
			break
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: open journal: %w", err)
	}
	d.f = f
	// Replay counts toward the compaction budget: a journal full of dead
	// records compacts on the first sweep instead of growing forever.
	d.appends = bytes.Count(data[:goodLen], []byte{'\n'})
	if live == 0 && d.appends > 0 {
		d.mu.Lock()
		d.compactLocked()
		d.mu.Unlock()
	}
	return d, nil
}

// replay decodes the journal into the surviving job set. It returns the
// byte length of the valid record prefix; callers truncate the file there.
func replay(data []byte) (jobs map[string]*Job, maxGen uint64, goodLen int) {
	jobs = make(map[string]*Job)
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn trailing record
		}
		line := data[off : off+nl]
		var rec walRec
		if err := json.Unmarshal(line, &rec); err != nil {
			break
		}
		if rec.Gen > maxGen {
			maxGen = rec.Gen
		}
		switch rec.Op {
		case "create":
			j := &Job{
				ID:      rec.ID,
				Gen:     rec.Gen,
				Kind:    rec.Kind,
				State:   StateQueued,
				Created: time.Unix(0, rec.T),
			}
			if rec.P != nil {
				j.Params = *rec.P
			}
			jobs[rec.ID] = j
		case "finish":
			if j, ok := jobs[rec.ID]; ok && j.Gen == rec.Gen {
				j.State = rec.State
				j.Err = rec.Err
				j.Info = rec.Info
				j.Finished = time.Unix(0, rec.T)
				if rec.Exp != 0 {
					j.ExpiresAt = time.Unix(0, rec.Exp)
				}
			}
		case "remove":
			delete(jobs, rec.ID)
		default:
			// Unknown op from a newer format: stop at the last understood
			// record rather than guessing.
			return jobs, maxGen, off
		}
		off += nl + 1
	}
	return jobs, maxGen, off
}

// appendLocked journals one record with write+fsync; callers hold d.mu so
// journal order matches apply order. The in-memory state remains
// authoritative when the append fails, but the failure is surfaced — logged
// once and counted — so operators notice the journal diverging before they
// rely on restart recovery.
func (d *durMeta) appendLocked(rec walRec) {
	if d.f == nil {
		return // closed: stragglers are documented no-ops, not journal errors
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return // walRec contains only marshalable fields; unreachable
	}
	line = append(line, '\n')
	if _, err := d.f.Write(line); err != nil {
		d.noteJournalError("write", err)
		return
	}
	if err := d.f.Sync(); err != nil {
		// The record reached the OS but maybe not the platter; the replayed
		// state after a crash may be missing it.
		d.noteJournalError("fsync", err)
		return
	}
	d.appends++
}

func (d *durMeta) noteJournalError(op string, err error) {
	d.journalErrs.Add(1)
	d.logOnce.Do(func() {
		slog.Error("jobs: journal append failed; in-memory state keeps serving but restart recovery may lose or resurrect jobs",
			"op", op, "path", d.path, "err", err)
	})
}

// JournalErrors reports how many journal appends have failed since open
// (the journalHealth hook the Store façade polls for Counts).
func (d *durMeta) JournalErrors() int64 { return d.journalErrs.Load() }

// compactLocked rewrites the journal as a minimal snapshot of the live job
// set (one create record per job, plus a finish record for finished ones),
// atomically via temp file + rename, and resets the append budget.
func (d *durMeta) compactLocked() {
	var buf bytes.Buffer
	n := 0
	for _, j := range d.mem.snapshot(func(*Job) bool { return true }) {
		p := j.Params
		line, err := json.Marshal(walRec{
			Op: "create", ID: j.ID, Gen: j.Gen, Kind: j.Kind,
			T: j.Created.UnixNano(), P: &p,
		})
		if err != nil {
			continue
		}
		buf.Write(line)
		buf.WriteByte('\n')
		n++
		if j.State.Finished() {
			line, err = json.Marshal(walRec{
				Op: "finish", ID: j.ID, Gen: j.Gen, State: j.State,
				Err: j.Err, Info: j.Info,
				T: j.Finished.UnixNano(), Exp: j.ExpiresAt.UnixNano(),
			})
			if err != nil {
				continue
			}
			buf.Write(line)
			buf.WriteByte('\n')
			n++
		}
	}
	tmp := d.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	f.Close()
	if err := os.Rename(tmp, d.path); err != nil {
		os.Remove(tmp)
		return
	}
	nf, err := os.OpenFile(d.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The snapshot replaced the journal but reopening failed; keep the
		// old handle (it appends to the unlinked file — durability degrades
		// to the snapshot until the next successful compaction).
		return
	}
	d.f.Close()
	d.f = nf
	d.appends = n
}

// maybeCompactLocked compacts once dead records dominate: the journal holds
// at least compactMinAppends records and at least 4x the live snapshot.
const compactMinAppends = 1024

func (d *durMeta) maybeCompactLocked() {
	if d.appends >= compactMinAppends && d.appends >= 4*(2*d.mem.Len()) {
		d.compactLocked()
	}
}

func (d *durMeta) CreateOrGet(id string, kind Kind, p Params, now time.Time) (Job, bool, *Job) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, existed, replaced := d.mem.CreateOrGet(id, kind, p, now)
	if !existed {
		// One create record both registers the fresh job and supersedes the
		// replaced one on replay (same ID, later record wins).
		pc := p
		d.appendLocked(walRec{
			Op: "create", ID: id, Gen: j.Gen, Kind: kind,
			T: now.UnixNano(), P: &pc,
		})
	}
	return j, existed, replaced
}

func (d *durMeta) SetQueuePos(id string, gen uint64, pos int) {
	d.mem.SetQueuePos(id, gen, pos) // ephemeral; not journaled
}

func (d *durMeta) Start(id string, gen uint64, now time.Time) (Job, bool) {
	return d.mem.Start(id, gen, now) // not journaled by design; see walRec
}

func (d *durMeta) finish(op State, id string, gen uint64, msg string, info *ResultInfo, now, expires time.Time,
	apply func() (Job, bool)) (Job, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := apply()
	if ok {
		d.appendLocked(walRec{
			Op: "finish", ID: id, Gen: gen, State: op, Err: msg, Info: info,
			T: now.UnixNano(), Exp: expires.UnixNano(),
		})
	}
	return j, ok
}

func (d *durMeta) Complete(id string, gen uint64, info *ResultInfo, now, expires time.Time) (Job, bool) {
	return d.finish(StateDone, id, gen, "", info, now, expires, func() (Job, bool) {
		return d.mem.Complete(id, gen, info, now, expires)
	})
}

func (d *durMeta) Fail(id string, gen uint64, msg string, now, expires time.Time) (Job, bool) {
	return d.finish(StateFailed, id, gen, msg, nil, now, expires, func() (Job, bool) {
		return d.mem.Fail(id, gen, msg, now, expires)
	})
}

func (d *durMeta) Cancel(id string, gen uint64, msg string, now, expires time.Time) (Job, bool) {
	return d.finish(StateCanceled, id, gen, msg, nil, now, expires, func() (Job, bool) {
		return d.mem.Cancel(id, gen, msg, now, expires)
	})
}

func (d *durMeta) Get(id string) (Job, bool) { return d.mem.Get(id) }

func (d *durMeta) Remove(id string) (Job, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.mem.Remove(id)
	if ok {
		d.appendLocked(walRec{Op: "remove", ID: id, Gen: j.Gen})
	}
	return j, ok
}

func (d *durMeta) Evict(id string, gen uint64) (Job, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.mem.Evict(id, gen)
	if ok {
		d.appendLocked(walRec{Op: "remove", ID: id, Gen: gen})
	}
	return j, ok
}

func (d *durMeta) Sweep(now time.Time) []Job {
	d.mu.Lock()
	defer d.mu.Unlock()
	dropped := d.mem.Sweep(now)
	for i := range dropped {
		d.appendLocked(walRec{Op: "remove", ID: dropped[i].ID, Gen: dropped[i].Gen})
	}
	d.maybeCompactLocked()
	return dropped
}

func (d *durMeta) Finished() []Job { return d.mem.Finished() }
func (d *durMeta) Queued() []Job   { return d.mem.Queued() }
func (d *durMeta) Len() int        { return d.mem.Len() }

func (d *durMeta) StateCounts() (queued, running, done, failed, canceled int64) {
	return d.mem.StateCounts()
}

func (d *durMeta) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.f == nil {
		return nil
	}
	d.f.Sync()
	err := d.f.Close()
	d.f = nil
	return err
}
