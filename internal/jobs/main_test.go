package jobs

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if any store goroutine (the TTL sweeper, event
// callbacks) outlives the tests.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
