package jobs

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

const (
	resExt = ".res"
	inExt  = ".in"
	// blobMagic versions the on-disk result encoding; a format change bumps
	// it and old files simply fail to open (the job is then re-runnable).
	blobMagic = "ccblob1\n"
)

// fsBlobs is the durable BlobStore: every payload is written through to a
// flat directory of content-addressed files (`<job-id>-<gen>.res` for gob-
// encoded results, `<job-id>-<gen>.in` for raw request inputs) with a
// temp-file + rename + fsync protocol, while completed results also stay
// resident in RAM for zero-copy serving. Under MaxResultBytes pressure the
// Store façade calls Shed, which drops resident copies oldest-first — the
// disk copy remains authoritative, so unlike the memory backend nothing is
// lost, only re-read on the next fetch.
type fsBlobs struct {
	dir string

	mu      sync.Mutex
	results map[string]*fsBlob
	inputs  map[string]fsInput
	// order records Put order for FIFO shedding; stale ids (deleted or
	// re-put) are skipped and periodically compacted away.
	order     []string
	memBytes  int64
	diskBytes int64
	spilled   int64
}

type fsBlob struct {
	gen      uint64
	r        *Result // resident copy; nil once spilled
	memSize  int64
	diskSize int64
}

type fsInput struct {
	gen  uint64
	size int64
}

// openFSBlobs creates/opens the blob directory. The directory is scanned and
// reconciled against live metadata by the Store's Open, not here.
func openFSBlobs(dir string) (*fsBlobs, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: blob dir: %w", err)
	}
	return &fsBlobs{
		dir:     dir,
		results: make(map[string]*fsBlob),
		inputs:  make(map[string]fsInput),
	}, nil
}

func (b *fsBlobs) resPath(id string, gen uint64) string {
	return filepath.Join(b.dir, id+"-"+strconv.FormatUint(gen, 10)+resExt)
}

func (b *fsBlobs) inPath(id string, gen uint64) string {
	return filepath.Join(b.dir, id+"-"+strconv.FormatUint(gen, 10)+inExt)
}

// parseBlobName splits "<id>-<gen>.<ext>"; ok=false for foreign files.
func parseBlobName(name string) (id string, gen uint64, isInput, ok bool) {
	switch {
	case strings.HasSuffix(name, resExt):
		name = strings.TrimSuffix(name, resExt)
	case strings.HasSuffix(name, inExt):
		name = strings.TrimSuffix(name, inExt)
		isInput = true
	default:
		return "", 0, false, false
	}
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return "", 0, false, false
	}
	gen, err := strconv.ParseUint(name[i+1:], 10, 64)
	if err != nil {
		return "", 0, false, false
	}
	return name[:i], gen, isInput, true
}

// reconcile scans the directory once at open: files matching a live
// (id, gen) from replayed metadata are adopted into the byte accounting
// (results start spilled — no RAM copy until first read); everything else
// is an orphan from a crash window and is deleted.
func (b *fsBlobs) reconcile(keepRes, keepIn map[string]uint64) error {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return fmt.Errorf("jobs: blob scan: %w", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		id, gen, isInput, ok := parseBlobName(name)
		live := false
		if ok {
			keep := keepRes
			if isInput {
				keep = keepIn
			}
			want, present := keep[id]
			live = present && want == gen
		}
		if !live {
			os.Remove(filepath.Join(b.dir, name))
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		if isInput {
			b.inputs[id] = fsInput{gen: gen, size: info.Size()}
		} else {
			b.results[id] = &fsBlob{gen: gen, diskSize: info.Size()}
		}
		b.diskBytes += info.Size()
	}
	return nil
}

// writeFile writes data atomically: temp file in the same directory, fsync,
// rename over the final name. A crash leaves either the old file or the new
// one, never a torn blob; stray temp files are swept by reconcile.
func (b *fsBlobs) writeFile(path string, data []byte) error {
	tmp, err := os.CreateTemp(b.dir, "tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

func (b *fsBlobs) Put(id string, gen uint64, r *Result) error {
	data, err := encodeResult(r)
	if err != nil {
		return err
	}
	if err := b.writeFile(b.resPath(id, gen), data); err != nil {
		return err
	}
	memSize := resultBytes(r)
	diskSize := int64(len(data))
	b.mu.Lock()
	if old, ok := b.results[id]; ok {
		if old.gen > gen {
			// Stale completion racing a resubmitted job: the newer payload
			// wins (see BlobStore.Put). The paths are gen-keyed, so the
			// just-written stale file never clobbered the newer one; discard
			// it.
			b.mu.Unlock()
			os.Remove(b.resPath(id, gen))
			return nil
		}
		b.memBytes -= old.memSize
		b.diskBytes -= old.diskSize
		if old.gen != gen {
			os.Remove(b.resPath(id, old.gen))
		}
	}
	b.results[id] = &fsBlob{gen: gen, r: r, memSize: memSize, diskSize: diskSize}
	b.order = append(b.order, id)
	b.memBytes += memSize
	b.diskBytes += diskSize
	b.compactOrderLocked()
	b.mu.Unlock()
	return nil
}

func (b *fsBlobs) Open(id string, gen uint64) (*Result, error) {
	b.mu.Lock()
	bl, ok := b.results[id]
	if !ok || bl.gen != gen {
		b.mu.Unlock()
		return nil, ErrNoBlob
	}
	if bl.r != nil {
		r := bl.r
		b.mu.Unlock()
		return r, nil
	}
	path := b.resPath(id, gen)
	b.mu.Unlock()
	// Spilled: decode from disk outside the lock. The copy is not re-admitted
	// to RAM — re-admission under byte pressure would just be shed again.
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, ErrNoBlob
	}
	return decodeResult(data)
}

func (b *fsBlobs) Delete(id string, gen uint64) {
	b.mu.Lock()
	if bl, ok := b.results[id]; ok && bl.gen == gen {
		b.memBytes -= bl.memSize
		b.diskBytes -= bl.diskSize
		delete(b.results, id)
	}
	b.mu.Unlock()
	os.Remove(b.resPath(id, gen))
}

func (b *fsBlobs) PutInput(id string, gen uint64, data []byte) error {
	if err := b.writeFile(b.inPath(id, gen), data); err != nil {
		return err
	}
	b.mu.Lock()
	if old, ok := b.inputs[id]; ok {
		if old.gen > gen {
			// Same newer-generation-wins rule as Put: a delayed persist for a
			// removed-and-resubmitted job must not clobber the input the
			// replacement needs for recovery.
			b.mu.Unlock()
			os.Remove(b.inPath(id, gen))
			return nil
		}
		b.diskBytes -= old.size
		if old.gen != gen {
			os.Remove(b.inPath(id, old.gen))
		}
	}
	b.inputs[id] = fsInput{gen: gen, size: int64(len(data))}
	b.diskBytes += int64(len(data))
	b.mu.Unlock()
	return nil
}

func (b *fsBlobs) Input(id string, gen uint64) ([]byte, error) {
	b.mu.Lock()
	in, ok := b.inputs[id]
	b.mu.Unlock()
	if !ok || in.gen != gen {
		return nil, ErrNoBlob
	}
	data, err := os.ReadFile(b.inPath(id, gen))
	if err != nil {
		return nil, ErrNoBlob
	}
	return data, nil
}

func (b *fsBlobs) DeleteInput(id string, gen uint64) {
	b.mu.Lock()
	if in, ok := b.inputs[id]; ok && in.gen == gen {
		b.diskBytes -= in.size
		delete(b.inputs, id)
	}
	b.mu.Unlock()
	os.Remove(b.inPath(id, gen))
}

// Shed drops resident result copies oldest-first until resident payload
// memory is at most target. Disk copies are untouched, so this is the spill
// (not evict) half of the MaxResultBytes policy: the job stays done and its
// result stays fetchable, only colder.
func (b *fsBlobs) Shed(target int64) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	released := int64(0)
	for i := 0; i < len(b.order) && b.memBytes > target; i++ {
		id := b.order[i]
		bl, ok := b.results[id]
		if !ok || bl.r == nil {
			continue
		}
		bl.r = nil
		b.memBytes -= bl.memSize
		released += bl.memSize
		bl.memSize = 0
		b.spilled++
	}
	b.compactOrderLocked()
	return released
}

// compactOrderLocked rebuilds the shed queue when stale entries dominate.
func (b *fsBlobs) compactOrderLocked() {
	if len(b.order) <= 2*len(b.results)+16 {
		return
	}
	live := b.order[:0]
	for _, id := range b.order {
		if bl, ok := b.results[id]; ok && bl.r != nil {
			live = append(live, id)
		}
	}
	b.order = live
}

func (b *fsBlobs) Stats() BlobStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BlobStats{MemBytes: b.memBytes, DiskBytes: b.diskBytes, Spilled: b.spilled}
}

func (b *fsBlobs) Close() error { return nil }

// encodeResult serializes a result payload: a magic/version line followed by
// the gob stream. Unexported fields (band.Result's internal relabeling
// scratch) are not encoded; nothing served over the job API needs them.
func encodeResult(r *Result) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(blobMagic)
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, fmt.Errorf("jobs: encode result: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeResult(data []byte) (*Result, error) {
	if !bytes.HasPrefix(data, []byte(blobMagic)) {
		return nil, fmt.Errorf("jobs: result blob: bad magic")
	}
	var r Result
	if err := gob.NewDecoder(bytes.NewReader(data[len(blobMagic):])).Decode(&r); err != nil {
		return nil, fmt.Errorf("jobs: decode result: %w", err)
	}
	return &r, nil
}
