package jobs

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/binimg"
)

// openDurable opens a durable store in dir with a controlled clock.
func openDurable(t *testing.T, dir string, clk *fakeClock, opt Options) *Store {
	t.Helper()
	opt.Backend = BackendSQLite
	opt.Dir = dir
	if opt.TTL == 0 {
		opt.TTL = time.Hour
	}
	s, err := open(opt, clk.Now)
	if err != nil {
		t.Fatalf("open durable store: %v", err)
	}
	return s
}

func labelsResult(n int, fill binimg.Label) *Result {
	l := make([]binimg.Label, n)
	for i := range l {
		l[i] = fill
	}
	return &Result{
		ResultInfo: ResultInfo{NumComponents: int(fill), Width: n, Height: 1},
		Labels:     &binimg.LabelMap{Width: n, Height: 1, L: l},
	}
}

// TestDurableReopenRecovery is the satellite-4 unit test: complete N jobs
// and leave M queued, reopen the store (the unit-level stand-in for
// SIGKILL — nothing is flushed beyond what every transition already
// fsynced), and assert finished results come back byte-identical and
// queued jobs reach a terminal state through Recover.
func TestDurableReopenRecovery(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Now()}
	s := openDurable(t, dir, clk, Options{})

	// N=3 completed jobs with distinct payloads.
	for i := 1; i <= 3; i++ {
		id := fmt.Sprintf("done-%d", i)
		j, _ := s.CreateOrGet(id, KindLabels, Params{Alg: "paremsp"}, []byte("input"))
		s.Start(id, j.Gen)
		s.Complete(id, j.Gen, labelsResult(50, binimg.Label(i)))
	}
	// M=2 interrupted jobs: one queued, one running at the "crash".
	jq, _ := s.CreateOrGet("interrupted-q", KindStats, Params{Alg: "paremsp", Level: 0.5}, []byte("queued-input"))
	jr, _ := s.CreateOrGet("interrupted-r", KindStats, Params{Alg: "paremsp"}, []byte("running-input"))
	s.Start("interrupted-r", jr.Gen)
	// One failed job: must come back failed, not be re-run.
	jf, _ := s.CreateOrGet("failed", KindLabels, Params{}, []byte("bad"))
	s.Fail("failed", jf.Gen, errors.New("boom"))

	// SIGKILL stand-in: drop the store without any orderly shutdown beyond
	// stopping the sweeper goroutine (Close writes nothing new).
	s.Close()

	s2 := openDurable(t, dir, clk, Options{})
	defer s2.Close()

	// Finished results are served byte-identical.
	for i := 1; i <= 3; i++ {
		id := fmt.Sprintf("done-%d", i)
		j, ok := s2.Get(id)
		if !ok || j.State != StateDone {
			t.Fatalf("reopened %s = %+v (ok=%v), want done", id, j, ok)
		}
		r, err := s2.Result(id)
		if err != nil {
			t.Fatalf("Result(%s) after reopen: %v", id, err)
		}
		want := labelsResult(50, binimg.Label(i))
		if r.NumComponents != want.NumComponents || len(r.Labels.L) != 50 {
			t.Fatalf("Result(%s) = %+v, want %+v", id, r.ResultInfo, want.ResultInfo)
		}
		for k := range r.Labels.L {
			if r.Labels.L[k] != want.Labels.L[k] {
				t.Fatalf("Result(%s) label[%d] = %d, want %d", id, k, r.Labels.L[k], want.Labels.L[k])
			}
		}
	}

	// The failed job replays failed with its reason.
	if j, ok := s2.Get("failed"); !ok || j.State != StateFailed || j.Err != "boom" {
		t.Fatalf("reopened failed job = %+v (ok=%v)", j, ok)
	}

	// Interrupted jobs replay as queued — including the one that was
	// running (Start is not journaled by design).
	for _, id := range []string{"interrupted-q", "interrupted-r"} {
		if j, ok := s2.Get(id); !ok || j.State != StateQueued {
			t.Fatalf("reopened %s = %+v (ok=%v), want queued", id, j, ok)
		}
	}
	if jq2, _ := s2.Get("interrupted-q"); jq2.Gen != jq.Gen || jq2.Params.Level != 0.5 {
		t.Fatalf("replayed job lost identity: %+v, want gen %d level 0.5", jq2, jq.Gen)
	}

	// Recover resubmits them with their persisted inputs; the resubmit
	// callback completes one and refuses the other, which must then reach
	// the documented canceled state.
	inputs := map[string]string{}
	requeued, canceled := s2.Recover(func(j Job, input []byte) error {
		inputs[j.ID] = string(input)
		if j.ID == "interrupted-r" {
			return errors.New("queue full")
		}
		s2.Complete(j.ID, j.Gen, labelsResult(10, 7))
		return nil
	})
	if requeued != 1 || canceled != 1 {
		t.Fatalf("Recover = (%d requeued, %d canceled), want (1, 1)", requeued, canceled)
	}
	if inputs["interrupted-q"] != "queued-input" || inputs["interrupted-r"] != "running-input" {
		t.Fatalf("recovery inputs = %+v, want the persisted request bodies", inputs)
	}
	if j, _ := s2.Get("interrupted-q"); j.State != StateDone {
		t.Fatalf("resubmitted job = %+v, want done", j)
	}
	if j, _ := s2.Get("interrupted-r"); j.State != StateCanceled || j.Err == "" {
		t.Fatalf("unresubmittable job = %+v, want canceled with a recovery reason", j)
	}
	c := s2.Counts()
	if c.Recovered != 1 || c.RecoveryCanceled != 1 {
		t.Fatalf("recovery counters = %+v, want 1/1", c)
	}

	// The generation counter moved past every replayed generation: a fresh
	// job never reuses one.
	fresh, _ := s2.CreateOrGet("fresh", KindLabels, Params{}, nil)
	if fresh.Gen <= jr.Gen {
		t.Fatalf("fresh generation %d not past replayed max %d", fresh.Gen, jr.Gen)
	}
}

// TestDurableRecoveryInputLost: a queued job whose persisted input vanished
// (crash window between journaling the create and persisting the input) is
// canceled with the documented "input lost" reason.
func TestDurableRecoveryInputLost(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Now()}
	s := openDurable(t, dir, clk, Options{})
	j, _ := s.CreateOrGet("lost", KindLabels, Params{}, []byte("body"))
	s.Close()

	// Simulate the crash window: the journal has the create record but the
	// input blob never hit the disk.
	if err := os.Remove(filepath.Join(dir, "blobs", fmt.Sprintf("lost-%d.in", j.Gen))); err != nil {
		t.Fatalf("remove input blob: %v", err)
	}

	s2 := openDurable(t, dir, clk, Options{})
	defer s2.Close()
	requeued, canceled := s2.Recover(func(Job, []byte) error {
		t.Fatal("resubmit called for a job with no input")
		return nil
	})
	if requeued != 0 || canceled != 1 {
		t.Fatalf("Recover = (%d, %d), want (0, 1)", requeued, canceled)
	}
	got, _ := s2.Get("lost")
	if got.State != StateCanceled || got.Err != "recovery: input lost" {
		t.Fatalf("job = %+v, want canceled with input-lost reason", got)
	}
}

// TestDurableSpillServesFromDisk: MaxResultBytes overflow on the durable
// backend spills RAM copies (satellite 3) — including the newest result,
// which the memory backend exempts — and spilled results decode from disk
// byte-identical.
func TestDurableSpillServesFromDisk(t *testing.T) {
	// The cap fits all five entries' overhead plus two resident payloads —
	// so overflow must be resolved by spilling payloads, never by evicting
	// entries (entry eviction only ever backstops overhead floods).
	const capBytes = 5*entryOverheadBytes + 2*400
	dir := t.TempDir()
	clk := &fakeClock{t: time.Now()}
	s := openDurable(t, dir, clk, Options{Shards: 2, MaxResultBytes: capBytes})
	defer s.Close()

	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("s%d", i)
		j, _ := s.CreateOrGet(id, KindLabels, Params{}, nil)
		s.Complete(id, j.Gen, labelsResult(100, binimg.Label(i+1)))
		clk.Advance(time.Second)
	}
	c := s.Counts()
	if c.Evicted != 0 {
		t.Fatalf("durable overflow evicted %d jobs, want spill only", c.Evicted)
	}
	if c.Spilled < 1 {
		t.Fatalf("spilled = %d, want >= 1", c.Spilled)
	}
	if c.ResultBytes > capBytes {
		t.Fatalf("resident %d bytes, want spilled to within the %d cap", c.ResultBytes, capBytes)
	}
	if c.DiskBytes == 0 {
		t.Fatal("disk bytes = 0 with results written through")
	}
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("s%d", i)
		r, err := s.Result(id)
		if err != nil {
			t.Fatalf("Result(%s): %v", id, err)
		}
		for k := range r.Labels.L {
			if r.Labels.L[k] != binimg.Label(i+1) {
				t.Fatalf("Result(%s) label[%d] = %d, want %d", id, k, r.Labels.L[k], i+1)
			}
		}
	}
}

// TestDurableTornTailTruncated: a torn final journal record (the crash
// artifact of an append in flight) is truncated on replay; every record
// before it survives.
func TestDurableTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Now()}
	s := openDurable(t, dir, clk, Options{})
	j, _ := s.CreateOrGet("ok", KindLabels, Params{}, nil)
	s.Complete("ok", j.Gen, labelsResult(10, 3))
	s.Close()

	walPath := filepath.Join(dir, "meta.wal")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"create","id":"torn","gen":9`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openDurable(t, dir, clk, Options{})
	defer s2.Close()
	if got, ok := s2.Get("ok"); !ok || got.State != StateDone {
		t.Fatalf("job before the torn record = %+v (ok=%v), want done", got, ok)
	}
	if _, ok := s2.Get("torn"); ok {
		t.Fatal("torn record materialized a job")
	}
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("torn")) {
		t.Fatal("torn record not truncated from the journal")
	}
}

// TestDurableRemoveSurvivesReopen: a removed job stays removed after
// reopen, and its blobs are gone from disk.
func TestDurableRemoveSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Now()}
	s := openDurable(t, dir, clk, Options{})
	j, _ := s.CreateOrGet("gone", KindLabels, Params{}, []byte("in"))
	s.Complete("gone", j.Gen, labelsResult(20, 1))
	s.Remove("gone")
	s.Close()

	s2 := openDurable(t, dir, clk, Options{})
	defer s2.Close()
	if _, ok := s2.Get("gone"); ok {
		t.Fatal("removed job resurrected by replay")
	}
	entries, err := os.ReadDir(filepath.Join(dir, "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("blob dir holds %d orphans after remove+reopen", len(entries))
	}
}

// TestDurableExpiredNotReplayed: finished jobs whose TTL lapsed while the
// process was down are not installed on reopen and their blobs are swept.
func TestDurableExpiredNotReplayed(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Now()}
	s := openDurable(t, dir, clk, Options{TTL: time.Minute})
	j, _ := s.CreateOrGet("stale", KindLabels, Params{}, nil)
	s.Complete("stale", j.Gen, labelsResult(10, 2))
	s.Close()

	clk.Advance(2 * time.Minute) // downtime exceeds the TTL
	s2 := openDurable(t, dir, clk, Options{TTL: time.Minute})
	defer s2.Close()
	if _, ok := s2.Get("stale"); ok {
		t.Fatal("expired job replayed past its TTL")
	}
	entries, err := os.ReadDir(filepath.Join(dir, "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("blob dir holds %d files for expired jobs", len(entries))
	}
}

// TestDurableJournalCompaction: a journal dominated by dead records is
// rewritten as a snapshot on sweep, so churn does not grow the file
// forever.
func TestDurableJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Now()}
	s := openDurable(t, dir, clk, Options{TTL: time.Minute, SweepEvery: time.Hour})
	defer s.Close()

	// Churn: create + fail + remove is three records per job, all dead.
	for i := 0; i < 400; i++ {
		id := fmt.Sprintf("churn-%d", i)
		j, _ := s.CreateOrGet(id, KindLabels, Params{}, nil)
		s.Fail(id, j.Gen, errors.New("x"))
		s.Remove(id)
	}
	// One survivor so the snapshot is non-trivial.
	j, _ := s.CreateOrGet("keep", KindLabels, Params{}, nil)
	s.Complete("keep", j.Gen, labelsResult(10, 1))

	walPath := filepath.Join(dir, "meta.wal")
	before, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	s.sweep() // nothing expired, but the sweep drives compaction
	after, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size()/4 {
		t.Fatalf("journal %d -> %d bytes after compaction, want a snapshot rewrite", before.Size(), after.Size())
	}
	// The compacted journal still replays the survivor.
	s.Close()
	s2 := openDurable(t, dir, clk, Options{TTL: time.Minute})
	defer s2.Close()
	if got, ok := s2.Get("keep"); !ok || got.State != StateDone {
		t.Fatalf("survivor after compaction = %+v (ok=%v)", got, ok)
	}
	if r, err := s2.Result("keep"); err != nil || r.NumComponents != 1 {
		t.Fatalf("survivor result after compaction: %+v, %v", r, err)
	}
}

// TestDurableStaleCompleteKeepsFreshBlobOnDisk: the durable variant of the
// stale-complete race — the stale Put must not delete the fresh
// generation's .res file, so the fresh result survives a reopen.
func TestDurableStaleCompleteKeepsFreshBlobOnDisk(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Now()}
	s := openDurable(t, dir, clk, Options{})
	old, _ := s.CreateOrGet("id", KindLabels, Params{}, []byte("in"))
	s.Start("id", old.Gen)
	s.Remove("id")
	fresh, _ := s.CreateOrGet("id", KindLabels, Params{}, []byte("in"))
	s.Start("id", fresh.Gen)
	s.Complete("id", fresh.Gen, labelsResult(10, 2))
	s.Complete("id", old.Gen, labelsResult(10, 1))
	s.Close()

	s2 := openDurable(t, dir, clk, Options{})
	defer s2.Close()
	r, err := s2.Result("id")
	if err != nil {
		t.Fatalf("Result after reopen: %v", err)
	}
	for k := range r.Labels.L {
		if r.Labels.L[k] != 2 {
			t.Fatalf("label[%d] = %d after reopen, want the fresh result's 2", k, r.Labels.L[k])
		}
	}
}

// TestDurableGetAfterCloseDoesNotEvict: mutations after Close are no-ops,
// and that must include Get's lazy TTL eviction — with the journal closed
// the eviction cannot be recorded, so deleting the blobs would leave the
// next Open resurrecting a done job with no result.
func TestDurableGetAfterCloseDoesNotEvict(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Now()}
	s := openDurable(t, dir, clk, Options{TTL: time.Minute})
	j, _ := s.CreateOrGet("late", KindLabels, Params{}, nil)
	s.Complete("late", j.Gen, labelsResult(10, 1))
	s.Close()

	clk.Advance(2 * time.Minute)
	if _, ok := s.Get("late"); ok {
		t.Fatal("expired job still served after Close")
	}
	if got := s.Counts().Evicted; got != 0 {
		t.Fatalf("post-Close Get evicted %d jobs, want 0", got)
	}
	resPath := filepath.Join(dir, "blobs", fmt.Sprintf("late-%d.res", j.Gen))
	if _, err := os.Stat(resPath); err != nil {
		t.Fatalf("post-Close Get removed the result blob: %v", err)
	}
}

// TestDurableJournalAppendErrorSurfaced: a failing journal append (the
// stand-in here is a read-only handle; in production ENOSPC or a yanked
// disk) must keep the in-memory state serving but be counted, so operators
// see the divergence in /metrics instead of discovering it at the next
// restart.
func TestDurableJournalAppendErrorSurfaced(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Now()}
	s := openDurable(t, dir, clk, Options{})
	defer s.Close()

	dm := s.meta.(*durMeta)
	ro, err := os.Open(filepath.Join(dir, "meta.wal"))
	if err != nil {
		t.Fatal(err)
	}
	dm.mu.Lock()
	good := dm.f
	dm.f = ro
	dm.mu.Unlock()

	j, _ := s.CreateOrGet("noisy", KindLabels, Params{}, nil)
	s.Fail("noisy", j.Gen, errors.New("x"))
	if got := s.Counts().JournalErrors; got != 2 {
		t.Fatalf("JournalErrors = %d, want 2 (create + finish)", got)
	}
	// The in-memory state stayed authoritative through the failures.
	if got, _ := s.Get("noisy"); got.State != StateFailed {
		t.Fatalf("job = %+v, want failed despite journal errors", got)
	}

	dm.mu.Lock()
	dm.f = good
	dm.mu.Unlock()
	ro.Close()
}

// TestDurableDirExclusiveLock: two stores must never share a directory —
// the second open fails fast while the first holds the flock, and Close
// releases it.
func TestDurableDirExclusiveLock(t *testing.T) {
	if !flockSupported {
		t.Skip("no flock on this platform")
	}
	dir := t.TempDir()
	clk := &fakeClock{t: time.Now()}
	s := openDurable(t, dir, clk, Options{})
	if _, err := open(Options{Backend: BackendSQLite, Dir: dir, TTL: time.Hour}, clk.Now); err == nil {
		t.Fatal("second open of a locked store dir succeeded")
	}
	s.Close()

	s2 := openDurable(t, dir, clk, Options{})
	s2.Close()
}
