package grayccl_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/binimg"
	"repro/internal/grayccl"
	"repro/internal/stats"
)

func randomGray(rng *rand.Rand, maxW, maxH, levels int) *grayccl.Image {
	w, h := 1+rng.Intn(maxW), 1+rng.Intn(maxH)
	img := grayccl.New(w, h)
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(levels))
	}
	return img
}

func TestLabelUniformImage(t *testing.T) {
	img := grayccl.New(7, 5)
	for i := range img.Pix {
		img.Pix[i] = 200
	}
	lm, n := grayccl.Label(img)
	if n != 1 {
		t.Fatalf("uniform image: n = %d, want 1", n)
	}
	for _, v := range lm.L {
		if v != 1 {
			t.Fatal("uniform image not uniformly labeled")
		}
	}
}

func TestLabelEveryPixelDistinct(t *testing.T) {
	// 4 gray levels in a pattern where no two 8-adjacent pixels are equal.
	img := grayccl.New(6, 6)
	for y := 0; y < 6; y++ {
		for x := 0; x < 6; x++ {
			img.Pix[y*6+x] = uint8((x%2)*2 + y%2*1 + (x%2)*(y%2))
		}
	}
	// Build explicitly: values (x%2, y%2) -> 0,1,2,3 distinct in every 2x2.
	for y := 0; y < 6; y++ {
		for x := 0; x < 6; x++ {
			img.Pix[y*6+x] = uint8(2*(y%2) + x%2)
		}
	}
	lm, n := grayccl.Label(img)
	ref, nRef := grayccl.FloodFill(img)
	if n != nRef {
		t.Fatalf("n = %d, reference %d", n, nRef)
	}
	if err := stats.Equivalent(lm, ref); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLabelMatchesFloodFill(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		img := randomGray(rng, 30, 30, 2+rng.Intn(5))
		lm, n := grayccl.Label(img)
		ref, nRef := grayccl.FloodFill(img)
		return n == nRef && stats.Equivalent(lm, ref) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPLabelMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		img := randomGray(rng, 40, 40, 2+rng.Intn(6))
		ref, nRef := grayccl.Label(img)
		lm, n := grayccl.PLabel(img, 1+rng.Intn(12))
		return n == nRef && stats.Equivalent(lm, ref) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPLabelThreadSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, h := range []int{1, 2, 3, 16, 17} {
		img := grayccl.New(19, h)
		for i := range img.Pix {
			img.Pix[i] = uint8(rng.Intn(3))
		}
		ref, nRef := grayccl.FloodFill(img)
		for threads := 1; threads <= 12; threads++ {
			lm, n := grayccl.PLabel(img, threads)
			if n != nRef {
				t.Fatalf("h=%d threads=%d: n=%d want %d", h, threads, n, nRef)
			}
			if err := stats.Equivalent(lm, ref); err != nil {
				t.Fatalf("h=%d threads=%d: %v", h, threads, err)
			}
		}
	}
}

// TestBinaryConsistency: on a two-level image, gray components = binary
// foreground components + binary background components (background regions
// are components too under gray semantics).
func TestBinaryConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 1+rng.Intn(30), 1+rng.Intn(30)
		bin := binimg.New(w, h)
		gray := grayccl.New(w, h)
		for i := range bin.Pix {
			v := uint8(rng.Intn(2))
			bin.Pix[i] = v
			gray.Pix[i] = v * 255
		}
		_, nGray := grayccl.Label(gray)
		_, nFg := baseline.FloodFill(bin, baseline.Conn8)
		inv := bin.Clone()
		inv.Invert()
		_, nBg := baseline.FloodFill(inv, baseline.Conn8)
		return nGray == nFg+nBg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLabelDeltaZeroEqualsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		img := randomGray(rng, 25, 25, 4)
		a, na := grayccl.LabelDelta(img, 0)
		b, nb := grayccl.Label(img)
		return na == nb && stats.Equivalent(a, b) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLabelDeltaMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		img := randomGray(rng, 25, 25, 256)
		prev := -1
		for _, delta := range []uint8{0, 8, 32, 128, 255} {
			_, n := grayccl.LabelDelta(img, delta)
			if prev != -1 && n > prev {
				return false // widening tolerance can only merge components
			}
			prev = n
		}
		return prev == 1 // delta 255 joins everything
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLabelDeltaRampTransitiveClosure(t *testing.T) {
	// A ramp 0,10,20,...,90: delta 10 connects all of it even though the
	// endpoints differ by 90.
	img := grayccl.New(10, 1)
	for x := 0; x < 10; x++ {
		img.Pix[x] = uint8(10 * x)
	}
	if _, n := grayccl.LabelDelta(img, 10); n != 1 {
		t.Fatalf("ramp with delta 10: n = %d, want 1", n)
	}
	if _, n := grayccl.LabelDelta(img, 9); n != 10 {
		t.Fatalf("ramp with delta 9: n = %d, want 10", n)
	}
}

func TestDegenerateImages(t *testing.T) {
	empty := grayccl.New(0, 0)
	if _, n := grayccl.Label(empty); n != 0 {
		t.Fatal("0x0 image must have 0 components")
	}
	if _, n := grayccl.PLabel(empty, 4); n != 0 {
		t.Fatal("0x0 parallel must have 0 components")
	}
	if _, n := grayccl.LabelDelta(empty, 5); n != 0 {
		t.Fatal("0x0 delta must have 0 components")
	}
	one := grayccl.New(1, 1)
	if _, n := grayccl.Label(one); n != 1 {
		t.Fatal("1x1 image must have 1 component")
	}
}

func TestImageAccessors(t *testing.T) {
	img := grayccl.New(3, 2)
	img.Set(2, 1, 77)
	if img.At(2, 1) != 77 {
		t.Fatal("Set/At round trip failed")
	}
	for _, f := range []func(){
		func() { img.At(3, 0) },
		func() { img.Set(0, 2, 1) },
		func() { grayccl.New(-1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestLabelsAreConsecutive pins the 1..n postcondition for all three
// labelers.
func TestLabelsAreConsecutive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	img := randomGray(rng, 40, 40, 5)
	for name, run := range map[string]func() (*binimg.LabelMap, int){
		"Label":      func() (*binimg.LabelMap, int) { return grayccl.Label(img) },
		"PLabel":     func() (*binimg.LabelMap, int) { return grayccl.PLabel(img, 7) },
		"LabelDelta": func() (*binimg.LabelMap, int) { return grayccl.LabelDelta(img, 1) },
	} {
		lm, n := run()
		seen := make(map[binimg.Label]bool)
		for _, v := range lm.L {
			if v < 1 || int(v) > n {
				t.Fatalf("%s: label %d outside 1..%d", name, v, n)
			}
			seen[v] = true
		}
		if len(seen) != n {
			t.Fatalf("%s: %d distinct labels, claimed %d", name, len(seen), n)
		}
	}
}
