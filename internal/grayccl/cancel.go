// Cooperative cancellation entry points, mirroring internal/core's contract:
// every *IntoCtx function is its non-ctx counterpart labeling into a
// caller-provided label map and drawing its equivalence buffer from a
// caller-provided parent slice, with the long row loops (scan and relabel)
// polling ctx's done channel every few dozen rows. The boundary-merge and
// flatten phases are not polled internally — they touch the equivalence
// table, not the raster — so the parallel driver checks the context between
// phases instead.
//
// A canceled labeling leaves lm in an undefined (but reusable) state; callers
// must discard the result.

package grayccl

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/binimg"
	"repro/internal/unionfind"
)

// pollRows matches the core/scan layers' poll amortization: 64 rows of work
// between done-channel polls.
const pollRows = 64

// ctxDone returns ctx's done channel; nil (never cancels) for a nil ctx.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// cancelErr returns ctx's error once its done channel closed, defaulting to
// context.Canceled.
func cancelErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.Canceled
}

// stopped reports whether done is closed without blocking; a nil done never
// stops.
func stopped(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// MaxLabels bounds the provisional labels either gray labeler can create for
// a w×h image. Gray labels have no independent-set bound — every pixel may
// open a component — so the parallel scan budgets 2*w labels per row pair,
// ceil(h/2) pairs; the sequential scan's w*h bound is never larger.
func MaxLabels(w, h int) int {
	return ((h + 1) / 2) * (2 * w)
}

// Reset reshapes im to width×height, reusing the pixel buffer when large
// enough (the binimg.Image contract); contents are zeroed.
func (im *Image) Reset(width, height int) {
	if width < 0 || height < 0 {
		panic(fmt.Sprintf("grayccl: negative dimensions %dx%d", width, height))
	}
	n := width * height
	if cap(im.Pix) < n {
		im.Pix = make([]uint8, n)
	} else {
		im.Pix = im.Pix[:n]
		clear(im.Pix)
	}
	im.Width, im.Height = width, height
}

// checkParents panics when the caller-provided parent slice cannot hold the
// labels this image may create; p must also be zeroed (core.Scratch.Parents
// guarantees both).
func checkParents(p []binimg.Label, need int) {
	if len(p) < need+1 {
		panic(fmt.Sprintf("grayccl: parent slice holds %d labels, need %d", len(p)-1, need))
	}
}

// LabelIntoCtx is Label into a caller-provided label map (reshaped with
// Reset) with cooperative cancellation. p must be a zeroed parent slice with
// at least MaxLabels(w,h)+1 slots — core.Scratch.Parents(MaxLabels(w,h))
// provides one.
func LabelIntoCtx(ctx context.Context, img *Image, lm *binimg.LabelMap, p []binimg.Label) (int, error) {
	w, h := img.Width, img.Height
	lm.Reset(w, h)
	if w == 0 || h == 0 {
		return 0, nil
	}
	checkParents(p, w*h)
	done := ctxDone(ctx)
	count, ok := grayPairRows(img, lm, p, 0, 0, h, done)
	if !ok {
		return 0, cancelErr(ctx)
	}
	n := unionfind.Flatten(p, count)
	if !relabelGrayUntil(lm.L, p, w, done) {
		return 0, cancelErr(ctx)
	}
	return int(n), nil
}

// PLabelIntoCtx is PLabel into a caller-provided label map with cooperative
// cancellation. p must be a zeroed parent slice with at least
// MaxLabels(w,h)+1 slots; lt is the stripe-lock table for the boundary
// merges (nil allocates a default one).
func PLabelIntoCtx(ctx context.Context, img *Image, lm *binimg.LabelMap, p []binimg.Label, lt *unionfind.LockTable, threads int) (int, error) {
	w, h := img.Width, img.Height
	lm.Reset(w, h)
	if w == 0 || h == 0 {
		return 0, nil
	}
	numPairs := (h + 1) / 2
	if threads <= 0 || threads > numPairs {
		threads = numPairs
	}
	if threads < 1 {
		threads = 1
	}

	// Gray labels have no independent-set bound: every pixel may be a
	// component, so each row pair budgets 2*w labels.
	stride := binimg.Label(2 * w)
	maxLabel := binimg.Label(numPairs) * stride
	checkParents(p, int(maxLabel))
	done := ctxDone(ctx)

	starts := make([]int, threads+1)
	base, rem := numPairs/threads, numPairs%threads
	pair := 0
	for c := 0; c < threads; c++ {
		starts[c] = pair * 2
		pair += base
		if c < rem {
			pair++
		}
	}
	starts[threads] = h

	var canceled atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < threads; c++ {
		rowStart, rowEnd := starts[c], starts[c+1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			offset := binimg.Label(rowStart/2) * stride
			if _, ok := grayPairRows(img, lm, p, offset, rowStart, rowEnd, done); !ok {
				canceled.Store(true)
			}
		}()
	}
	wg.Wait()
	if canceled.Load() {
		return 0, cancelErr(ctx)
	}

	if lt == nil {
		lt = unionfind.NewLockTable(0)
	}
	for _, row := range starts[1:threads] {
		row := row
		wg.Add(1)
		go func() {
			defer wg.Done()
			mergeGrayBoundary(img, lm, p, lt, row)
		}()
	}
	wg.Wait()
	if stopped(done) {
		return 0, cancelErr(ctx)
	}

	n := unionfind.FlattenSparse(p, maxLabel)
	if !relabelGrayUntil(lm.L, p, w, done) {
		return 0, cancelErr(ctx)
	}
	return int(n), nil
}

// LabelDeltaIntoCtx is LabelDelta into a caller-provided label map with
// cooperative cancellation. p must be a zeroed parent slice with at least
// MaxLabels(w,h)+1 slots.
func LabelDeltaIntoCtx(ctx context.Context, img *Image, lm *binimg.LabelMap, p []binimg.Label, delta uint8) (int, error) {
	w, h := img.Width, img.Height
	lm.Reset(w, h)
	if w == 0 || h == 0 {
		return 0, nil
	}
	checkParents(p, w*h)
	done := ctxDone(ctx)
	count, ok := deltaScan(img, lm, p, delta, done)
	if !ok {
		return 0, cancelErr(ctx)
	}
	n := unionfind.Flatten(p, count)
	if !relabelGrayUntil(lm.L, p, w, done) {
		return 0, cancelErr(ctx)
	}
	return int(n), nil
}

// relabelGrayUntil rewrites provisional labels through p in blocks of
// pollRows rows, polling done between blocks; reports whether it ran to
// completion. Gray label maps have no background, so every element maps.
func relabelGrayUntil(l, p []binimg.Label, w int, done <-chan struct{}) bool {
	if done == nil {
		for i, v := range l {
			l[i] = p[v]
		}
		return true
	}
	block := pollRows * w
	if block < 1<<12 {
		block = 1 << 12
	}
	for lo := 0; lo < len(l); lo += block {
		if stopped(done) {
			return false
		}
		hi := lo + block
		if hi > len(l) {
			hi = len(l)
		}
		seg := l[lo:hi]
		for i, v := range seg {
			seg[i] = p[v]
		}
	}
	return true
}
