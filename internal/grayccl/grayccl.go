// Package grayccl implements the grayscale extension the paper claims for
// its algorithms ("our algorithm can be easily extended to gray scale
// images"): connected component labeling over gray-level rasters, where two
// adjacent pixels (8-connectivity) belong to the same component iff they
// hold the same gray value. Every pixel is labeled — there is no background.
//
// The implementation is the paper's machinery with the foreground test
// generalized to value equality: the two-rows-at-a-time scan (Alg. 6) plus
// REM's union-find with splicing, and the chunked parallel version with
// concurrent boundary merging (Alg. 7/8). Equality is transitive, which is
// what lets the pair-scan's case analysis skip neighbors the way the binary
// algorithm does; the tolerance-based variant (LabelDelta) loses
// transitivity and therefore uses the exhaustive-neighbor scan.
package grayccl

import (
	"context"
	"fmt"

	"repro/internal/binimg"
	"repro/internal/unionfind"
)

// Image is a grayscale raster: one byte per pixel, row-major.
type Image struct {
	Width  int
	Height int
	Pix    []uint8
}

// New returns a zeroed grayscale image.
func New(width, height int) *Image {
	if width < 0 || height < 0 {
		panic(fmt.Sprintf("grayccl: negative dimensions %dx%d", width, height))
	}
	return &Image{Width: width, Height: height, Pix: make([]uint8, width*height)}
}

// At returns the pixel at (x, y); it panics out of range.
func (im *Image) At(x, y int) uint8 {
	if x < 0 || x >= im.Width || y < 0 || y >= im.Height {
		panic(fmt.Sprintf("grayccl: At(%d,%d) out of range %dx%d", x, y, im.Width, im.Height))
	}
	return im.Pix[y*im.Width+x]
}

// Set writes the pixel at (x, y); it panics out of range.
func (im *Image) Set(x, y int, v uint8) {
	if x < 0 || x >= im.Width || y < 0 || y >= im.Height {
		panic(fmt.Sprintf("grayccl: Set(%d,%d) out of range %dx%d", x, y, im.Width, im.Height))
	}
	im.Pix[y*im.Width+x] = v
}

// Label computes the gray-level connected components of img sequentially
// (pair-row scan + REMSP). Labels are consecutive 1..n; returns the label
// map and n.
func Label(img *Image) (*binimg.LabelMap, int) {
	lm := binimg.NewLabelMap(img.Width, img.Height)
	p := make([]binimg.Label, MaxLabels(img.Width, img.Height)+1)
	n, _ := LabelIntoCtx(context.Background(), img, lm, p)
	return lm, n
}

// PLabel is the parallel version of Label: row-pair chunks scanned
// concurrently with disjoint label ranges, boundary rows merged with the
// concurrent lock-based REM union, sparse flatten, relabel.
func PLabel(img *Image, threads int) (*binimg.LabelMap, int) {
	lm := binimg.NewLabelMap(img.Width, img.Height)
	p := make([]binimg.Label, MaxLabels(img.Width, img.Height)+1)
	n, _ := PLabelIntoCtx(context.Background(), img, lm, p, nil, threads)
	return lm, n
}

// grayPairRows is the pair-row scan of Alg. 6 with the foreground predicate
// generalized to gray-value equality. It labels rows [rowStart, rowEnd),
// drawing labels from offset+1 upward, polling done every pollRows row
// pairs. Returns the last label used and whether it ran to completion.
func grayPairRows(img *Image, lm *binimg.LabelMap, p []binimg.Label, offset binimg.Label, rowStart, rowEnd int, done <-chan struct{}) (binimg.Label, bool) {
	w := img.Width
	pix := img.Pix
	lab := lm.L
	count := offset
	newLabel := func() binimg.Label {
		count++
		p[count] = count
		return count
	}
	for r := rowStart; r < rowEnd; r += 2 {
		if (r-rowStart)%(2*pollRows) == 0 && stopped(done) {
			return count, false
		}
		row := r * w
		up := row - w
		down := row + w
		hasUp := r > rowStart
		hasG := r+1 < rowEnd
		for x := 0; x < w; x++ {
			e := pix[row+x]
			// Neighbor "present" now means "equal gray value".
			var a, b, c, d bool
			if hasUp {
				b = pix[up+x] == e
				if x > 0 {
					a = pix[up+x-1] == e
				}
				if x+1 < w {
					c = pix[up+x+1] == e
				}
			}
			var f bool
			if x > 0 {
				d = pix[row+x-1] == e
				if hasG {
					f = pix[down+x-1] == e
				}
			}
			var le binimg.Label
			if !d {
				switch {
				case b:
					le = lab[up+x]
					if f {
						le = unionfind.MergeRemSP(p, le, lab[down+x-1])
					}
				case f:
					le = lab[down+x-1]
					if a {
						le = unionfind.MergeRemSP(p, le, lab[up+x-1])
					}
					if c {
						le = unionfind.MergeRemSP(p, le, lab[up+x+1])
					}
				case a:
					le = lab[up+x-1]
					if c {
						le = unionfind.MergeRemSP(p, le, lab[up+x+1])
					}
				case c:
					le = lab[up+x+1]
				default:
					le = newLabel()
				}
			} else {
				le = lab[row+x-1]
				if !b && c {
					le = unionfind.MergeRemSP(p, le, lab[up+x+1])
				}
			}
			lab[row+x] = le

			if hasG {
				g := pix[down+x]
				if g == e {
					lab[down+x] = le
					continue
				}
				// g differs from e: its visited same-value neighbors are d
				// and f only.
				var lg binimg.Label
				dg := x > 0 && pix[row+x-1] == g
				fg := x > 0 && pix[down+x-1] == g
				switch {
				case dg && fg:
					lg = unionfind.MergeRemSP(p, lab[row+x-1], lab[down+x-1])
				case dg:
					lg = lab[row+x-1]
				case fg:
					lg = lab[down+x-1]
				default:
					lg = newLabel()
				}
				lab[down+x] = lg
			}
		}
	}
	return count, true
}

// mergeGrayBoundary unites each pixel of a chunk-start row with its
// equal-valued neighbors in the row above.
func mergeGrayBoundary(img *Image, lm *binimg.LabelMap, p []binimg.Label, lt *unionfind.LockTable, row int) {
	w := img.Width
	pix := img.Pix
	lab := lm.L
	base := row * w
	up := base - w
	for x := 0; x < w; x++ {
		e := pix[base+x]
		if pix[up+x] == e {
			unionfind.MergeLocked(p, lt, lab[base+x], lab[up+x])
			continue
		}
		if x > 0 && pix[up+x-1] == e {
			unionfind.MergeLocked(p, lt, lab[base+x], lab[up+x-1])
		}
		if x+1 < w && pix[up+x+1] == e {
			unionfind.MergeLocked(p, lt, lab[base+x], lab[up+x+1])
		}
	}
}

// LabelDelta labels components under the tolerance predicate
// |v(p) - v(q)| <= delta for adjacent pixels (8-connectivity), taking the
// transitive closure: a gradual ramp is one component even though its ends
// differ by more than delta. Tolerance is not transitive, so the exhaustive
// Rosenfeld scan is used (every visited neighbor examined and merged).
func LabelDelta(img *Image, delta uint8) (*binimg.LabelMap, int) {
	lm := binimg.NewLabelMap(img.Width, img.Height)
	p := make([]binimg.Label, MaxLabels(img.Width, img.Height)+1)
	n, _ := LabelDeltaIntoCtx(context.Background(), img, lm, p, delta)
	return lm, n
}

// deltaScan is LabelDelta's exhaustive Rosenfeld scan, polling done every
// pollRows rows. Returns the last label used and whether it completed.
func deltaScan(img *Image, lm *binimg.LabelMap, p []binimg.Label, delta uint8, done <-chan struct{}) (binimg.Label, bool) {
	w, h := img.Width, img.Height
	pix := img.Pix
	lab := lm.L
	var count binimg.Label
	near := func(a, b uint8) bool {
		if a > b {
			a, b = b, a
		}
		return b-a <= delta
	}
	for y := 0; y < h; y++ {
		if y%pollRows == 0 && stopped(done) {
			return count, false
		}
		row := y * w
		up := row - w
		for x := 0; x < w; x++ {
			e := pix[row+x]
			var le binimg.Label
			take := func(idx int) {
				if !near(pix[idx], e) {
					return
				}
				if le == 0 {
					le = lab[idx]
				} else if lab[idx] != le {
					le = unionfind.MergeRemSP(p, le, lab[idx])
				}
			}
			if x > 0 {
				take(row + x - 1)
			}
			if y > 0 {
				if x > 0 {
					take(up + x - 1)
				}
				take(up + x)
				if x+1 < w {
					take(up + x + 1)
				}
			}
			if le == 0 {
				count++
				p[count] = count
				le = count
			}
			lab[row+x] = le
		}
	}
	return count, true
}

// FloodFill is the gray-level reference labeler (exact equality,
// 8-connectivity), used to verify Label and PLabel.
func FloodFill(img *Image) (*binimg.LabelMap, int) {
	w, h := img.Width, img.Height
	lm := binimg.NewLabelMap(w, h)
	lab := lm.L
	pix := img.Pix
	var next binimg.Label
	stack := make([]int32, 0, 1024)
	for s := range pix {
		if lab[s] != 0 {
			continue
		}
		next++
		lab[s] = next
		v := pix[s]
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			i := int(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			x, y := i%w, i/w
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := x+dx, y+dy
					if nx < 0 || nx >= w || ny < 0 || ny >= h {
						continue
					}
					j := ny*w + nx
					if pix[j] == v && lab[j] == 0 {
						lab[j] = next
						stack = append(stack, int32(j))
					}
				}
			}
		}
	}
	return lm, int(next)
}
