// Package leakcheck fails a test binary whose goroutines outlive its tests —
// a dependency-free, goleak-style guard. A package opts in with
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// After the tests pass, Main snapshots every goroutine stack and fails the
// run if any goroutine executing this module's code (its stack mentions a
// repro/ function) is still alive once a grace period lapses. The grace
// period absorbs goroutines that are mid-exit — a worker that sent its last
// result but has not returned yet — while real leaks (a worker pool that was
// never Closed, a sweeper whose Store leaked) remain and fail loudly with
// their stacks printed.
//
// System, runtime and test-framework goroutines are ignored: they don't
// reference repro/ frames, and leaks we can act on necessarily do.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// module prefix that marks a goroutine as ours. Function symbols in
// runtime.Stack output are import-path-qualified ("repro/internal/...").
const modulePrefix = "repro/"

// Main runs the package's tests and then Check; a detected leak turns a
// passing run into exit code 1. Use from TestMain.
func Main(m interface{ Run() int }) {
	code := m.Run()
	if code == 0 {
		if err := Check(5 * time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// Check polls the goroutine table until no goroutine running this module's
// code remains or timeout lapses, then reports the survivors.
func Check(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var leaked []string
	for {
		leaked = leakedGoroutines()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("%d goroutine(s) still running %s code after %v:\n\n%s",
		len(leaked), modulePrefix, timeout, strings.Join(leaked, "\n\n"))
}

// leakedGoroutines snapshots all goroutine stacks and returns those that
// reference this module, excluding the caller's own goroutine (whose stack
// contains this package's frames).
func leakedGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if !strings.Contains(g, modulePrefix) {
			continue
		}
		// The goroutine running this check (TestMain → Main → Check).
		if strings.Contains(g, "leakcheck") {
			continue
		}
		out = append(out, g)
	}
	return out
}
