package stream_test

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pnm"
	"repro/internal/stats"
	"repro/internal/stream"
)

// memSeeker is an in-memory io.ReadWriteSeeker standing in for the spill
// file.
type memSeeker struct {
	buf []byte
	off int
}

func (m *memSeeker) Write(p []byte) (int, error) {
	if m.off+len(p) > len(m.buf) {
		m.buf = append(m.buf[:m.off], p...)
	} else {
		copy(m.buf[m.off:], p)
	}
	m.off += len(p)
	return len(p), nil
}

func (m *memSeeker) Read(p []byte) (int, error) {
	n := copy(p, m.buf[m.off:])
	m.off += n
	return n, nil
}

func (m *memSeeker) Seek(off int64, whence int) (int64, error) {
	m.off = int(off)
	return off, nil
}

// TestLabelBandsMatchesInMemory runs the band-streaming CCL1 pipeline over
// generated images at seam-stressing band heights and checks the decoded
// label stream against an in-memory labeling: same partition (up to
// renumbering), consecutive final labels, and matching component counts.
func TestLabelBandsMatchesInMemory(t *testing.T) {
	for _, tc := range []struct {
		name string
		w, h int
		d    float64
	}{
		{"noise_mid", 100, 70, 0.5},
		{"noise_sparse", 64, 64, 0.05},
		{"noise_dense", 65, 33, 0.95},
		{"one_row", 90, 1, 0.5},
		{"one_col", 1, 90, 0.5},
	} {
		img := dataset.UniformNoise(tc.w, tc.h, tc.d, 42)
		var pbm bytes.Buffer
		if err := pnm.EncodePBM(&pbm, img, true); err != nil {
			t.Fatal(err)
		}
		for _, bandRows := range []int{1, 3, 16, 0} {
			src, err := pnm.NewBandReaderBytes(pbm.Bytes(), 0.5)
			if err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			res, err := stream.LabelBands(context.Background(), src, &memSeeker{}, &out, bandRows)
			if err != nil {
				t.Fatalf("%s/band%d: %v", tc.name, bandRows, err)
			}
			lm, n, err := stream.ReadLabels(&out)
			if err != nil {
				t.Fatalf("%s/band%d: decoding output: %v", tc.name, bandRows, err)
			}
			if n != res.NumComponents {
				t.Fatalf("%s/band%d: header claims %d components, result %d", tc.name, bandRows, n, res.NumComponents)
			}
			if err := stats.Validate(img, lm, n, true); err != nil {
				t.Fatalf("%s/band%d: invalid labeling: %v", tc.name, bandRows, err)
			}
			want, wn := core.BREMSP(img)
			if wn != n {
				t.Fatalf("%s/band%d: %d components, in-memory found %d", tc.name, bandRows, n, wn)
			}
			if err := stats.Equivalent(lm, want); err != nil {
				t.Fatalf("%s/band%d: partition differs: %v", tc.name, bandRows, err)
			}
		}
	}
}
