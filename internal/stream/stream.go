// Package stream labels images too large to hold in memory as pixel
// rasters — the regime of the paper's NLCD experiments (up to 465.2 MB of
// binary raster) on machines without the paper's 32 GB node — and owns the
// CCL1 label-stream format those labelings are exchanged in.
//
// Two out-of-core labelers write CCL1:
//
//   - LabelBands (the cmd/ccstream path) drives the fixed-memory band
//     labeler of internal/band: resident memory is O(one band), independent
//     of the image height, and per-component statistics come back for free.
//   - LabelPBM is the original row-streaming decision-tree labeler below;
//     its parent array still grows with the full image (one slot per
//     possible provisional label, up to ceil(w/2)*ceil(h/2)), so LabelBands
//     supersedes it for very tall rasters.
//
// LabelPBM makes the classic two-pass structure out-of-core:
//
//	pass 1: the PBM (P4) stream is decoded row by row; the decision-tree
//	        scan runs with only two rows of pixels and two rows of labels
//	        resident, recording equivalences in a REM parent array and
//	        spilling each row's provisional labels to scratch storage;
//	pass 2: FLATTEN resolves the parent array, the spill is re-read
//	        sequentially, and final labels stream to the output.
//
// Resident memory is O(width) for the rows plus the parent array, whose
// length is bounded by the provisional-label count (at most
// ceil(w/2)*ceil(h/2) — see scan.MaxProvisionalLabels), not by the pixel
// count. The spill holds one int32 per pixel and is written and read
// strictly sequentially, so a file on disk serves.
//
// The output format ("CCL1") is a little-endian header {magic, width,
// height, components} followed by width*height int32 labels in raster
// order; ReadLabels decodes it back into a binimg.LabelMap.
package stream

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/band"
	"repro/internal/binimg"
	"repro/internal/scan"
	"repro/internal/unionfind"
)

// Magic identifies the CCL1 label-stream format.
const Magic = "CCL1"

// maxDimension guards against absurd headers.
const maxDimension = 1 << 20

// Label aliases the repository-wide label type.
type Label = binimg.Label

// LabelPBM labels the binary image arriving as a raw PBM (P4) stream on r,
// using spill as scratch storage, and writes the CCL1 label stream to out.
// Returns the component count.
//
// spill is written once front to back during pass 1, rewound, and read once
// during pass 2; an *os.File on a scratch directory is the intended
// implementation.
func LabelPBM(r io.Reader, spill io.ReadWriteSeeker, out io.Writer) (int, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	w, h, err := readP4Header(br)
	if err != nil {
		return 0, err
	}

	p := make([]Label, scan.MaxProvisionalLabels(w, h)+1)
	var count Label

	stride := (w + 7) / 8
	packed := make([]byte, stride)
	prevPix := make([]uint8, w)
	curPix := make([]uint8, w)
	prevLab := make([]Label, w)
	curLab := make([]Label, w)

	sw := bufio.NewWriterSize(spill, 1<<16)
	rowBytes := make([]byte, 4*w)

	for y := 0; y < h; y++ {
		if _, err := io.ReadFull(br, packed); err != nil {
			return 0, fmt.Errorf("stream: P4 row %d: %w", y, err)
		}
		for x := 0; x < w; x++ {
			if packed[x/8]&(0x80>>(x%8)) != 0 {
				curPix[x] = 1
			} else {
				curPix[x] = 0
			}
			curLab[x] = 0
		}

		// Decision-tree scan over the two resident rows (paper Fig. 2).
		for x := 0; x < w; x++ {
			if curPix[x] == 0 {
				continue
			}
			var a, b, c, d uint8
			if y > 0 {
				b = prevPix[x]
				if x > 0 {
					a = prevPix[x-1]
				}
				if x+1 < w {
					c = prevPix[x+1]
				}
			}
			if x > 0 {
				d = curPix[x-1]
			}
			var le Label
			switch {
			case b != 0:
				le = prevLab[x]
			case c != 0:
				switch {
				case a != 0:
					le = unionfind.MergeRemSP(p, prevLab[x+1], prevLab[x-1])
				case d != 0:
					le = unionfind.MergeRemSP(p, prevLab[x+1], curLab[x-1])
				default:
					le = prevLab[x+1]
				}
			case a != 0:
				le = prevLab[x-1]
			case d != 0:
				le = curLab[x-1]
			default:
				count++
				p[count] = count
				le = count
			}
			curLab[x] = le
		}

		for x := 0; x < w; x++ {
			binary.LittleEndian.PutUint32(rowBytes[4*x:], uint32(curLab[x]))
		}
		if _, err := sw.Write(rowBytes); err != nil {
			return 0, fmt.Errorf("stream: spilling row %d: %w", y, err)
		}
		prevPix, curPix = curPix, prevPix
		prevLab, curLab = curLab, prevLab
	}
	if err := sw.Flush(); err != nil {
		return 0, fmt.Errorf("stream: flushing spill: %w", err)
	}

	n := unionfind.Flatten(p, count)

	if _, err := spill.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("stream: rewinding spill: %w", err)
	}
	sr := bufio.NewReaderSize(spill, 1<<16)
	bw := bufio.NewWriterSize(out, 1<<16)
	if err := writeHeader(bw, w, h, int(n)); err != nil {
		return 0, err
	}
	for y := 0; y < h; y++ {
		if _, err := io.ReadFull(sr, rowBytes); err != nil {
			return 0, fmt.Errorf("stream: reading spill row %d: %w", y, err)
		}
		for x := 0; x < w; x++ {
			prov := Label(binary.LittleEndian.Uint32(rowBytes[4*x:]))
			binary.LittleEndian.PutUint32(rowBytes[4*x:], uint32(p[prov]))
		}
		if _, err := bw.Write(rowBytes); err != nil {
			return 0, fmt.Errorf("stream: writing row %d: %w", y, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return int(n), nil
}

// LabelBands labels the image delivered by src with the fixed-memory band
// labeler (internal/band) and writes a CCL1 label stream to out. During the
// single streaming pass each row's provisional global component ids spill to
// spill (written front to back, one int32 per pixel); once the stream
// completes — and the final component numbering is known — the spill is
// re-read sequentially and rewritten as final labels. Unlike LabelPBM, whose
// parent array grows with the full image (O(w*h/4) labels), resident memory
// here is O(one band + component table): the equivalence state resets every
// band and only the seam runs cross band boundaries.
//
// bandRows selects the band height (0 = band.DefaultBandRows). Returns the
// band labeler's result: component count plus per-component statistics.
//
// ctx cancels the labeling cooperatively: the band pass checks it between
// bands and the rewrite pass every 64 rows. Pass context.Background() (or
// nil) to never cancel.
func LabelBands(ctx context.Context, src band.Source, spill io.ReadWriteSeeker, out io.Writer, bandRows int) (*band.Result, error) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	w, h := src.Width(), src.Height()
	sw := bufio.NewWriterSize(spill, 1<<16)
	rowBytes := make([]byte, 4*w)
	emit := func(y int, runs []binimg.Run, resolve func(Label) Label) error {
		clear(rowBytes)
		for _, r := range runs {
			id := uint32(resolve(r.Label))
			for x := int(r.Start); x < int(r.End); x++ {
				binary.LittleEndian.PutUint32(rowBytes[4*x:], id)
			}
		}
		if _, err := sw.Write(rowBytes); err != nil {
			return fmt.Errorf("stream: spilling row %d: %w", y, err)
		}
		return nil
	}
	res, err := band.Stream(src, band.Options{BandRows: bandRows, EmitRow: emit, Ctx: ctx})
	if err != nil {
		return nil, err
	}
	if err := sw.Flush(); err != nil {
		return nil, fmt.Errorf("stream: flushing spill: %w", err)
	}
	if _, err := spill.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("stream: rewinding spill: %w", err)
	}
	sr := bufio.NewReaderSize(spill, 1<<16)
	bw := bufio.NewWriterSize(out, 1<<16)
	if err := writeHeader(bw, w, h, res.NumComponents); err != nil {
		return nil, err
	}
	for y := 0; y < h; y++ {
		if done != nil && y%64 == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		if _, err := io.ReadFull(sr, rowBytes); err != nil {
			return nil, fmt.Errorf("stream: reading spill row %d: %w", y, err)
		}
		for x := 0; x < w; x++ {
			prov := Label(binary.LittleEndian.Uint32(rowBytes[4*x:]))
			binary.LittleEndian.PutUint32(rowBytes[4*x:], uint32(res.FinalLabel(prov)))
		}
		if _, err := bw.Write(rowBytes); err != nil {
			return nil, fmt.Errorf("stream: writing row %d: %w", y, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return res, nil
}

func readP4Header(br *bufio.Reader) (int, int, error) {
	tok := func() (string, error) {
		var t []byte
		for {
			b, err := br.ReadByte()
			if err != nil {
				return "", err
			}
			switch {
			case b == '#' && len(t) == 0:
				if _, err := br.ReadString('\n'); err != nil {
					return "", err
				}
			case b == ' ' || b == '\t' || b == '\n' || b == '\r':
				if len(t) > 0 {
					return string(t), nil
				}
			default:
				t = append(t, b)
			}
		}
	}
	magic, err := tok()
	if err != nil {
		return 0, 0, fmt.Errorf("stream: reading magic: %w", err)
	}
	if magic != "P4" {
		return 0, 0, fmt.Errorf("stream: want raw PBM (P4), got %q", magic)
	}
	var w, h int
	for _, dst := range []*int{&w, &h} {
		t, err := tok()
		if err != nil {
			return 0, 0, fmt.Errorf("stream: reading dimensions: %w", err)
		}
		v := 0
		for _, ch := range t {
			if ch < '0' || ch > '9' {
				return 0, 0, fmt.Errorf("stream: invalid dimension %q", t)
			}
			v = v*10 + int(ch-'0')
			if v > maxDimension {
				return 0, 0, fmt.Errorf("stream: dimension %q too large", t)
			}
		}
		*dst = v
	}
	return w, h, nil
}

func writeHeader(w io.Writer, width, height, components int) error {
	if _, err := io.WriteString(w, Magic); err != nil {
		return err
	}
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(width))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(height))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(components))
	_, err := w.Write(hdr)
	return err
}

// WriteLabels encodes an in-memory label map as a CCL1 label stream with
// component count n in the header — the same format LabelPBM produces, so
// services can hand in-memory labelings to consumers of the streaming
// labeler's output.
func WriteLabels(out io.Writer, lm *binimg.LabelMap, n int) error {
	bw := bufio.NewWriterSize(out, 1<<16)
	if err := writeHeader(bw, lm.Width, lm.Height, n); err != nil {
		return err
	}
	rowBytes := make([]byte, 4*lm.Width)
	for y := 0; y < lm.Height; y++ {
		row := lm.L[y*lm.Width : (y+1)*lm.Width]
		for x, v := range row {
			binary.LittleEndian.PutUint32(rowBytes[4*x:], uint32(v))
		}
		if _, err := bw.Write(rowBytes); err != nil {
			return fmt.Errorf("stream: writing row %d: %w", y, err)
		}
	}
	return bw.Flush()
}

// ReadLabels decodes a CCL1 label stream into a label map, returning the map
// and the component count from the header.
func ReadLabels(r io.Reader) (*binimg.LabelMap, int, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, 0, fmt.Errorf("stream: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, 0, fmt.Errorf("stream: bad magic %q", magic)
	}
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, 0, fmt.Errorf("stream: reading header: %w", err)
	}
	w := int(binary.LittleEndian.Uint32(hdr[0:]))
	h := int(binary.LittleEndian.Uint32(hdr[4:]))
	n := int(binary.LittleEndian.Uint32(hdr[8:]))
	if w > maxDimension || h > maxDimension {
		return nil, 0, fmt.Errorf("stream: dimensions %dx%d too large", w, h)
	}
	lm := binimg.NewLabelMap(w, h)
	buf := make([]byte, 4*w)
	for y := 0; y < h; y++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, 0, fmt.Errorf("stream: reading row %d: %w", y, err)
		}
		for x := 0; x < w; x++ {
			lm.L[y*w+x] = Label(binary.LittleEndian.Uint32(buf[4*x:]))
		}
	}
	return lm, n, nil
}
