package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	paremsp "repro"
	"repro/internal/band"
	"repro/internal/faultinject"
)

// Typed engine errors. The HTTP layer maps ErrQueueFull to 429 and ErrClosed
// to 503; library callers can match them with errors.Is.
var (
	// ErrQueueFull reports that the engine's queue held QueueDepth pending
	// requests already and the new one was rejected (backpressure).
	ErrQueueFull = errors.New("service: request queue full")
	// ErrClosed reports a Label call after Close.
	ErrClosed = errors.New("service: engine closed")
	// ErrWorkerPanic reports that the labeling panicked on the worker. The
	// panic is contained to the one job (the worker survives, the panicking
	// job's pooled buffers are quarantined) and surfaces as a wrapped
	// ErrWorkerPanic — the HTTP layer maps it to 500.
	ErrWorkerPanic = errors.New("service: worker panicked")
)

// Config sizes an Engine.
type Config struct {
	// Workers is the number of labeling goroutines (the in-flight bound).
	// 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth is how many requests may wait beyond the in-flight ones
	// before Label rejects with ErrQueueFull. 0 selects 2*Workers.
	QueueDepth int
	// Threads is the default PAREMSP thread count per request when the
	// request does not pin its own. 0 selects GOMAXPROCS/Workers (at least
	// 1), so a fully busy pool does not oversubscribe the CPUs.
	Threads int
	// OnPanic, when non-nil, observes every worker panic with the recovered
	// value and the panicking goroutine's stack (the HTTP layer logs them).
	// It runs on the worker goroutine; keep it fast and non-panicking.
	OnPanic func(v any, stack []byte)
}

// Engine runs labelings on a bounded worker pool. Create one with NewEngine;
// the zero value is not usable.
type Engine struct {
	workers    int
	queueDepth int
	threads    int
	queue      chan *job
	wg         sync.WaitGroup
	metrics    metrics

	mu     sync.RWMutex // guards closed vs. queue sends
	closed bool

	// draining makes workers reject still-queued jobs with context.Canceled
	// so a drain only waits for jobs that had already started.
	draining atomic.Bool

	// onPanic is Config.OnPanic (may be nil).
	onPanic func(v any, stack []byte)

	imgPool  sync.Pool // *paremsp.Image
	bmPool   sync.Pool // *paremsp.Bitmap
	lmPool   sync.Pool // *paremsp.LabelMap
	scPool   sync.Pool // *paremsp.Scratch
	grayPool sync.Pool // *paremsp.GrayImage
	volPool  sync.Pool // *paremsp.Volume
	lvPool   sync.Pool // *paremsp.LabelVolumeMap

	// run performs one labeling; tests substitute it to control timing. The
	// context is the request's: the labeling polls it between row blocks and
	// returns its error when canceled.
	run func(ctx context.Context, img *paremsp.Image, dst *paremsp.LabelMap, sc *paremsp.Scratch, opt paremsp.Options) (*paremsp.Result, error)
	// runBM is run for bit-packed jobs (LabelBitmap requests).
	runBM func(ctx context.Context, bm *paremsp.Bitmap, dst *paremsp.LabelMap, sc *paremsp.Scratch, opt paremsp.Options) (*paremsp.Result, error)
	// runGray is run for gray-level jobs (modes gray and gray-delta).
	runGray func(ctx context.Context, img *paremsp.GrayImage, dst *paremsp.LabelMap, sc *paremsp.Scratch, opt paremsp.Options) (*paremsp.Result, error)
	// runVol is run for volumetric jobs (mode volume).
	runVol func(ctx context.Context, vol *paremsp.Volume, dst *paremsp.LabelVolumeMap, sc *paremsp.Scratch, opt paremsp.Options) (*paremsp.VolumeResult, error)
}

// job carries one request; exactly one of img, bm, gray, vol and stream is
// non-nil. stream jobs run the out-of-core band labeler on the worker (the
// thunk reads the request body itself), so they obey the same in-flight
// bound and queue backpressure as raster labelings.
type job struct {
	ctx    context.Context
	img    *paremsp.Image
	bm     *paremsp.Bitmap
	gray   *paremsp.GrayImage
	vol    *paremsp.Volume
	stream func() (*band.Result, error)
	opt    paremsp.Options
	done   chan jobResult
	// enqueued is when the job was admitted to the queue; the worker's
	// dequeue time minus this is the queue wait.
	enqueued time.Time
	// onStart, when non-nil, is called by the worker that dequeues the job
	// just before it starts computing (the async job API uses it to flip
	// queued → running).
	onStart func()
}

type jobResult struct {
	res  *paremsp.Result
	bres *band.Result
	vres *paremsp.VolumeResult
	err  error
	// wait is the time the job sat in the queue before a worker picked it
	// up. It rides the result channel back so the HTTP layer can fill the
	// request trace from its own goroutine — the worker never touches a
	// Trace, which keeps pooled trace records race-free under cancellation.
	wait time.Duration
}

// NewEngine starts a worker pool per cfg. Callers must Close it to stop the
// workers.
func NewEngine(cfg Config) *Engine {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 2 * workers
	}
	threads := cfg.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0) / workers
		if threads < 1 {
			threads = 1
		}
	}
	e := &Engine{
		workers:    workers,
		queueDepth: depth,
		threads:    threads,
		queue:      make(chan *job, depth),
		onPanic:    cfg.OnPanic,
		run:        paremsp.LabelIntoCtx,
		runBM:      paremsp.LabelBitmapIntoCtx,
		runGray:    paremsp.LabelGrayIntoCtx,
		runVol:     paremsp.LabelVolumeIntoCtx,
	}
	// Pool miss accounting lives in the New closures: a pool Get that finds
	// nothing to reuse is exactly one New call, so gets − misses = hits.
	e.imgPool.New = func() any { e.metrics.poolMisses[poolImage].Add(1); return &paremsp.Image{} }
	e.bmPool.New = func() any { e.metrics.poolMisses[poolBitmap].Add(1); return &paremsp.Bitmap{} }
	e.lmPool.New = func() any { e.metrics.poolMisses[poolLabelMap].Add(1); return &paremsp.LabelMap{} }
	e.scPool.New = func() any { e.metrics.poolMisses[poolScratch].Add(1); return &paremsp.Scratch{} }
	e.grayPool.New = func() any { e.metrics.poolMisses[poolGray].Add(1); return &paremsp.GrayImage{} }
	e.volPool.New = func() any { e.metrics.poolMisses[poolVolume].Add(1); return &paremsp.Volume{} }
	e.lvPool.New = func() any { e.metrics.poolMisses[poolLabelVol].Add(1); return &paremsp.LabelVolumeMap{} }
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

// Workers returns the size of the worker pool.
func (e *Engine) Workers() int { return e.workers }

// QueueDepth returns the queue capacity beyond in-flight requests.
func (e *Engine) QueueDepth() int { return e.queueDepth }

// GetImage borrows a binary image from the raster pool; decode into it with
// the DecodeInto helpers and hand it to Label, which consumes it. If the
// image never reaches Label (e.g. decoding failed), return it with PutImage.
func (e *Engine) GetImage() *paremsp.Image {
	e.metrics.poolGets[poolImage].Add(1)
	return e.imgPool.Get().(*paremsp.Image)
}

// PutImage returns a borrowed image to the raster pool.
func (e *Engine) PutImage(img *paremsp.Image) {
	if img != nil {
		e.imgPool.Put(img)
	}
}

// GetBitmap borrows a bit-packed raster from the bitmap pool; decode raw PBM
// into it with pnm.DecodePBMBitmapInto and hand it to LabelBitmap, which
// consumes it. If the bitmap never reaches LabelBitmap (e.g. decoding
// failed), return it with PutBitmap.
func (e *Engine) GetBitmap() *paremsp.Bitmap {
	e.metrics.poolGets[poolBitmap].Add(1)
	return e.bmPool.Get().(*paremsp.Bitmap)
}

// PutBitmap returns a borrowed bitmap to the bitmap pool.
func (e *Engine) PutBitmap(bm *paremsp.Bitmap) {
	if bm != nil {
		e.bmPool.Put(bm)
	}
}

// PutResult returns a Label result's label map to the raster pool. Call it
// after the response has been written; the result must not be used afterward.
func (e *Engine) PutResult(res *paremsp.Result) {
	if res != nil && res.Labels != nil {
		e.lmPool.Put(res.Labels)
		res.Labels = nil
	}
}

// GetGray borrows a gray raster from the gray pool; decode into it with
// pnm.DecodeGrayInto and hand it to LabelGray, which consumes it. If it
// never reaches LabelGray, return it with PutGray.
func (e *Engine) GetGray() *paremsp.GrayImage {
	e.metrics.poolGets[poolGray].Add(1)
	return e.grayPool.Get().(*paremsp.GrayImage)
}

// PutGray returns a borrowed gray raster to the gray pool.
func (e *Engine) PutGray(img *paremsp.GrayImage) {
	if img != nil {
		e.grayPool.Put(img)
	}
}

// GetVolume borrows a voxel volume from the volume pool; decode into it with
// pnm.DecodeVolumeInto and hand it to LabelVolume, which consumes it. If it
// never reaches LabelVolume, return it with PutVolume.
func (e *Engine) GetVolume() *paremsp.Volume {
	e.metrics.poolGets[poolVolume].Add(1)
	return e.volPool.Get().(*paremsp.Volume)
}

// PutVolume returns a borrowed volume to the volume pool.
func (e *Engine) PutVolume(vol *paremsp.Volume) {
	if vol != nil {
		e.volPool.Put(vol)
	}
}

// PutVolumeResult returns a LabelVolume result's label volume to its pool.
func (e *Engine) PutVolumeResult(res *paremsp.VolumeResult) {
	if res != nil && res.Labels != nil {
		e.lvPool.Put(res.Labels)
		res.Labels = nil
	}
}

// Label labels img with the engine's worker pool and per-request options,
// blocking until the labeling completes, ctx is done, or the request is
// rejected. Backpressure: if Workers labelings are in flight and QueueDepth
// more are queued, it fails immediately with ErrQueueFull.
//
// Label consumes img: on every path (success, rejection, cancellation) the
// engine returns it to the raster pool, possibly after Label itself has
// returned — so the caller must not touch img afterward; read any per-image
// facts (dimensions, density) before calling. The returned result's label
// map is pool-owned; release it with PutResult.
func (e *Engine) Label(ctx context.Context, img *paremsp.Image, opt paremsp.Options) (*paremsp.Result, error) {
	r := e.submit(&job{ctx: ctx, img: img, opt: opt, done: make(chan jobResult, 1)})
	return r.res, r.err
}

// LabelBitmap is Label for a bit-packed raster (algorithms AlgBREMSP /
// AlgPBREMSP, see paremsp.LabelBitmapInto). It consumes bm under the same
// contract Label applies to img: on every path the engine returns it to the
// bitmap pool, so read any per-raster facts before calling.
func (e *Engine) LabelBitmap(ctx context.Context, bm *paremsp.Bitmap, opt paremsp.Options) (*paremsp.Result, error) {
	r := e.submit(&job{ctx: ctx, bm: bm, opt: opt, done: make(chan jobResult, 1)})
	return r.res, r.err
}

// LabelGray is Label for a gray raster (modes gray and gray-delta, see
// paremsp.LabelGrayIntoCtx). It consumes img under the same contract Label
// applies to its raster: on every path the engine returns it to the gray
// pool, so read any per-image facts before calling.
func (e *Engine) LabelGray(ctx context.Context, img *paremsp.GrayImage, opt paremsp.Options) (*paremsp.Result, error) {
	r := e.submit(&job{ctx: ctx, gray: img, opt: opt, done: make(chan jobResult, 1)})
	return r.res, r.err
}

// LabelVolume is Label for a binary voxel volume (mode volume, see
// paremsp.LabelVolumeIntoCtx); it consumes vol under the raster contract.
// The returned result's label volume is pool-owned; release it with
// PutVolumeResult.
func (e *Engine) LabelVolume(ctx context.Context, vol *paremsp.Volume, opt paremsp.Options) (*paremsp.VolumeResult, error) {
	r := e.submit(&job{ctx: ctx, vol: vol, opt: opt, done: make(chan jobResult, 1)})
	return r.vres, r.err
}

// Stats streams src through the out-of-core band labeler on the worker pool
// and returns its component statistics. Unlike Label there is no raster to
// pool: src is read incrementally on the worker goroutine, so the caller
// must keep the underlying reader open until Stats returns — and Stats
// always waits for the worker even when ctx fires, so an HTTP handler can
// safely hand it a request body (the body is never touched after the
// handler returns). A canceled job that is still queued is rejected by the
// worker without reading src; one already streaming finishes early when
// cancellation makes the source's reads fail. Backpressure (ErrQueueFull)
// and Close (ErrClosed) behave as for Label. Note the pool implication:
// a stream job occupies its worker for as long as the source delivers
// bands, so slow uploads hold labeling capacity — deployments should bound
// request read time (server timeouts) alongside MaxImageBytes.
func (e *Engine) Stats(ctx context.Context, src band.Source, opt band.Options) (*band.Result, error) {
	j := &job{
		ctx:    ctx,
		stream: func() (*band.Result, error) { return band.Stream(src, opt) },
		done:   make(chan jobResult, 1),
	}
	r := e.submit(j)
	return r.bres, r.err
}

// Submitted is a labeling admitted to the queue by one of the Submit
// methods: the request sits in the engine queue (or on a worker) and its
// outcome arrives via Wait. The async job API builds on this path.
type Submitted struct {
	pos  int
	done chan jobResult
}

// QueuePosition reports approximately how many requests sat in the engine
// queue — including this one — at the moment the job was admitted. It is a
// point-in-time observation, not a live position.
func (s *Submitted) QueuePosition() int { return s.pos }

// Wait blocks until the job finishes. Exactly one of the results is non-nil
// on success: the raster result for SubmitLabel/SubmitBitmap/SubmitGray,
// the streaming result for SubmitStats, the volume result for SubmitVolume.
// Wait must be called exactly once.
func (s *Submitted) Wait() (*paremsp.Result, *band.Result, *paremsp.VolumeResult, error) {
	r := <-s.done
	return r.res, r.bres, r.vres, r.err
}

// SubmitLabel is the asynchronous form of Label: it admits img to the queue
// and returns immediately with the job's queue position; the caller
// collects the outcome with Wait. onStart, when non-nil, runs on the worker
// just before the labeling starts. The img consumption contract matches
// Label. Backpressure is unchanged: a full queue rejects with ErrQueueFull
// at submit time.
func (e *Engine) SubmitLabel(ctx context.Context, img *paremsp.Image, opt paremsp.Options, onStart func()) (*Submitted, error) {
	j := &job{ctx: ctx, img: img, opt: opt, onStart: onStart, done: make(chan jobResult, 1)}
	pos, err := e.enqueue(j)
	if err != nil {
		return nil, err
	}
	return &Submitted{pos: pos, done: j.done}, nil
}

// SubmitBitmap is SubmitLabel for a bit-packed raster (see LabelBitmap).
func (e *Engine) SubmitBitmap(ctx context.Context, bm *paremsp.Bitmap, opt paremsp.Options, onStart func()) (*Submitted, error) {
	j := &job{ctx: ctx, bm: bm, opt: opt, onStart: onStart, done: make(chan jobResult, 1)}
	pos, err := e.enqueue(j)
	if err != nil {
		return nil, err
	}
	return &Submitted{pos: pos, done: j.done}, nil
}

// SubmitGray is SubmitLabel for a gray raster (see LabelGray).
func (e *Engine) SubmitGray(ctx context.Context, img *paremsp.GrayImage, opt paremsp.Options, onStart func()) (*Submitted, error) {
	j := &job{ctx: ctx, gray: img, opt: opt, onStart: onStart, done: make(chan jobResult, 1)}
	pos, err := e.enqueue(j)
	if err != nil {
		return nil, err
	}
	return &Submitted{pos: pos, done: j.done}, nil
}

// SubmitVolume is SubmitLabel for a voxel volume (see LabelVolume).
func (e *Engine) SubmitVolume(ctx context.Context, vol *paremsp.Volume, opt paremsp.Options, onStart func()) (*Submitted, error) {
	j := &job{ctx: ctx, vol: vol, opt: opt, onStart: onStart, done: make(chan jobResult, 1)}
	pos, err := e.enqueue(j)
	if err != nil {
		return nil, err
	}
	return &Submitted{pos: pos, done: j.done}, nil
}

// SubmitStats is the asynchronous form of Stats. Unlike Stats, the source
// must stay readable until Wait returns — async callers hand it an
// in-memory buffer, not a request body.
func (e *Engine) SubmitStats(ctx context.Context, src band.Source, opt band.Options, onStart func()) (*Submitted, error) {
	j := &job{
		ctx:     ctx,
		stream:  func() (*band.Result, error) { return band.Stream(src, opt) },
		onStart: onStart,
		done:    make(chan jobResult, 1),
	}
	pos, err := e.enqueue(j)
	if err != nil {
		return nil, err
	}
	return &Submitted{pos: pos, done: j.done}, nil
}

// RetryAfter estimates how long a client shed with ErrQueueFull should wait
// before retrying: the expected time for the current backlog (queued plus
// in-flight requests) to drain through the pool at the observed mean
// per-job latency, clamped to [1s, 60s]. The mean covers raster labelings
// only — stream jobs run at the client's upload pace, and a few slow
// uploads would otherwise inflate every backoff hint to the cap. Before
// any raster job has completed the estimate is the 1-second floor.
func (e *Engine) RetryAfter() time.Duration {
	done := e.metrics.jobsTimed.Load()
	if done == 0 {
		return time.Second
	}
	mean := time.Duration(e.metrics.jobNs.Load() / done)
	backlog := int64(len(e.queue)) + e.metrics.inFlight.Load()
	est := mean * time.Duration(backlog+1) / time.Duration(e.workers)
	if est < time.Second {
		return time.Second
	}
	if est > time.Minute {
		return time.Minute
	}
	return est
}

// reclaimInput returns the job's raster (whichever kind it carries, if any)
// to its pool.
func (e *Engine) reclaimInput(j *job) {
	switch {
	case j.img != nil:
		e.imgPool.Put(j.img)
	case j.bm != nil:
		e.bmPool.Put(j.bm)
	case j.gray != nil:
		e.grayPool.Put(j.gray)
	case j.vol != nil:
		e.volPool.Put(j.vol)
	}
}

// enqueue admits j to the queue and returns its approximate queue position
// (the queue length just after insertion, so including the job itself). It
// is the shared front half of the synchronous and asynchronous submit
// paths; on rejection the input raster is reclaimed.
func (e *Engine) enqueue(j *job) (int, error) {
	e.metrics.requests.Add(1)
	if faultinject.Fire(faultinject.QueueFull) {
		e.metrics.rejected.Add(1)
		e.reclaimInput(j)
		return 0, ErrQueueFull
	}
	if j.opt.Threads == 0 {
		j.opt.Threads = e.threads
	}
	j.enqueued = time.Now()

	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		e.metrics.rejected.Add(1)
		e.reclaimInput(j)
		return 0, ErrClosed
	}
	select {
	case e.queue <- j:
		pos := len(e.queue)
		e.mu.RUnlock()
		return pos, nil
	default:
		e.mu.RUnlock()
		e.metrics.rejected.Add(1)
		e.reclaimInput(j)
		return 0, ErrQueueFull
	}
}

func (e *Engine) submit(j *job) jobResult {
	if _, err := e.enqueue(j); err != nil {
		return jobResult{err: err}
	}
	ctx := j.ctx

	// Stream jobs read their source (an HTTP request body) on the worker, so
	// returning before the worker finishes would let the engine touch the
	// body after the handler has returned. Wait unconditionally: a queued
	// job with a dead ctx is rejected by the worker's precheck, and a
	// running one stops at the first failed read.
	if j.stream != nil {
		r := <-j.done
		if tr := traceFrom(ctx); tr != nil {
			tr.QueueNs = r.wait.Nanoseconds()
		}
		return r
	}

	// Once enqueued, the worker owns the raster and returns it to its pool.
	select {
	case r := <-j.done:
		// The channel receive orders the worker's writes before this
		// caller-side trace fill; on the cancellation path below the trace
		// is left untouched, so a worker finishing late never races the
		// (pooled, recycled) record.
		if tr := traceFrom(ctx); tr != nil {
			tr.QueueNs = r.wait.Nanoseconds()
		}
		return r
	case <-ctx.Done():
		e.metrics.canceled.Add(1)
		// The worker may still pick the job up (and is the one holding the
		// raster); reclaim the label map when it finishes so the pool stays
		// warm.
		go func() {
			r := <-j.done
			if r.res != nil {
				e.PutResult(r.res)
			}
			if r.vres != nil {
				e.PutVolumeResult(r.vres)
			}
		}()
		return jobResult{err: ctx.Err()}
	}
}

// Close stops accepting work and waits for in-flight and queued labelings to
// drain. Subsequent Label calls return ErrClosed; Close is idempotent and
// always waits for the workers, so calling it after a timed-out Drain (whose
// stragglers the caller has since canceled) picks up the remaining exits.
func (e *Engine) Close() {
	e.closeQueue()
	e.wg.Wait()
}

// closeQueue marks the engine closed and closes the queue channel exactly
// once; subsequent submissions fail with ErrClosed.
func (e *Engine) closeQueue() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.queue)
	}
	e.mu.Unlock()
}

// Drain shuts the engine down gracefully: admission stops (new submissions
// fail with ErrClosed), jobs still sitting in the queue are rejected with
// context.Canceled without running, and jobs already on a worker run to
// completion. It reports whether every worker exited within timeout; on
// false the caller should cancel the jobs' base context and then Close,
// which waits for the now-canceled stragglers.
func (e *Engine) Drain(timeout time.Duration) bool {
	e.draining.Store(true)
	e.closeQueue()
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Draining reports whether Drain has begun.
func (e *Engine) Draining() bool { return e.draining.Load() }

// recoverPanic converts a panic on the calling goroutine into a wrapped
// ErrWorkerPanic in *errp, counts it, and reports it to OnPanic with the
// stack. It must be the direct deferred function of the compute it guards.
func (e *Engine) recoverPanic(errp *error) {
	v := recover()
	if v == nil {
		return
	}
	stack := debug.Stack()
	e.metrics.panics.Add(1)
	if e.onPanic != nil {
		e.onPanic(v, stack)
	}
	*errp = fmt.Errorf("%w: %v", ErrWorkerPanic, v)
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first. Used by
// the worker-stall failpoint so an injected stall still honors cancellation.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// injectWorkerFaults runs the worker-stall and worker-panic failpoints. The
// panic deliberately escapes into the compute helpers' recoverPanic so the
// chaos suite exercises the same containment path a real panic takes.
func injectWorkerFaults(ctx context.Context) {
	if !faultinject.Armed() {
		return
	}
	if d := faultinject.Delay(faultinject.WorkerStall); d > 0 {
		sleepCtx(ctx, d)
	}
	if faultinject.Fire(faultinject.WorkerPanic) {
		panic("faultinject: worker-panic")
	}
}

// computeRaster runs one raster labeling with panic containment: a panic in
// the labeling (or an injected one) surfaces as a wrapped ErrWorkerPanic
// instead of killing the worker goroutine.
func (e *Engine) computeRaster(j *job, lm *paremsp.LabelMap, sc *paremsp.Scratch) (res *paremsp.Result, npix int, err error) {
	defer e.recoverPanic(&err)
	injectWorkerFaults(j.ctx)
	switch {
	case j.img != nil:
		npix = len(j.img.Pix)
		res, err = e.run(j.ctx, j.img, lm, sc, j.opt)
	case j.gray != nil:
		npix = len(j.gray.Pix)
		res, err = e.runGray(j.ctx, j.gray, lm, sc, j.opt)
	default:
		npix = j.bm.Width * j.bm.Height
		res, err = e.runBM(j.ctx, j.bm, lm, sc, j.opt)
	}
	return res, npix, err
}

// computeVolume is computeRaster for voxel-volume jobs.
func (e *Engine) computeVolume(j *job, lv *paremsp.LabelVolumeMap, sc *paremsp.Scratch) (vres *paremsp.VolumeResult, npix int, err error) {
	defer e.recoverPanic(&err)
	injectWorkerFaults(j.ctx)
	npix = len(j.vol.Vox)
	vres, err = e.runVol(j.ctx, j.vol, lv, sc, j.opt)
	return vres, npix, err
}

// computeStream is computeRaster for band-streaming jobs.
func (e *Engine) computeStream(j *job) (bres *band.Result, err error) {
	defer e.recoverPanic(&err)
	injectWorkerFaults(j.ctx)
	return j.stream()
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for j := range e.queue {
		if err := j.ctx.Err(); err != nil || e.draining.Load() {
			// Dead context or a drain in progress: reject without running.
			// Drain closes the queue first, so everything a worker still
			// sees here was queued before admission stopped.
			if err == nil {
				err = context.Canceled
			}
			e.metrics.errors.Add(1)
			e.reclaimInput(j)
			j.done <- jobResult{err: err}
			continue
		}
		e.metrics.inFlight.Add(1)
		if j.onStart != nil {
			j.onStart()
		}
		start := time.Now()
		wait := start.Sub(j.enqueued)
		e.metrics.queueWaitHist.observe(wait.Nanoseconds())
		if j.stream != nil {
			// Stream durations are dominated by how fast the client's
			// source delivers bands, not by compute, so they stay out of
			// the jobNs mean that RetryAfter is derived from (and out of
			// the service-time histogram, for the same reason). They do
			// count as busy time: the worker is occupied either way.
			bres, err := e.computeStream(j)
			e.metrics.busyNs.Add(time.Since(start).Nanoseconds())
			e.metrics.inFlight.Add(-1)
			if err != nil {
				e.metrics.errors.Add(1)
				j.done <- jobResult{err: err, wait: wait}
				continue
			}
			e.metrics.completed.Add(1)
			e.metrics.pixels.Add(int64(bres.Width) * int64(bres.Height))
			e.metrics.components.Add(int64(bres.NumComponents))
			j.done <- jobResult{bres: bres, wait: wait}
			continue
		}
		if j.vol != nil {
			// Volume jobs mirror the raster path with a 3-D label buffer and
			// no phase breakdown (the slab labeler does not time phases).
			e.metrics.poolGets[poolLabelVol].Add(1)
			lv := e.lvPool.Get().(*paremsp.LabelVolumeMap)
			e.metrics.poolGets[poolScratch].Add(1)
			sc := e.scPool.Get().(*paremsp.Scratch)
			vres, npix, err := e.computeVolume(j, lv, sc)
			panicked := errors.Is(err, ErrWorkerPanic)
			if !panicked {
				e.scPool.Put(sc)
				e.reclaimInput(j)
			}
			elapsed := time.Since(start).Nanoseconds()
			e.metrics.busyNs.Add(elapsed)
			e.metrics.inFlight.Add(-1)
			if err != nil {
				if !panicked {
					e.lvPool.Put(lv)
				}
				e.metrics.errors.Add(1)
				j.done <- jobResult{err: err, wait: wait}
				continue
			}
			e.metrics.completed.Add(1)
			e.metrics.jobNs.Add(elapsed)
			e.metrics.jobsTimed.Add(1)
			e.metrics.pixels.Add(int64(npix))
			e.metrics.components.Add(int64(vres.NumComponents))
			e.metrics.jobHist.observe(elapsed)
			j.done <- jobResult{vres: vres, wait: wait}
			continue
		}
		e.metrics.poolGets[poolLabelMap].Add(1)
		lm := e.lmPool.Get().(*paremsp.LabelMap)
		e.metrics.poolGets[poolScratch].Add(1)
		sc := e.scPool.Get().(*paremsp.Scratch)
		res, npix, err := e.computeRaster(j, lm, sc)
		panicked := errors.Is(err, ErrWorkerPanic)
		if !panicked {
			// A panicking labeling may have left lm, sc and the input raster
			// mid-mutation; quarantine them (drop instead of pooling) so the
			// next request never sees a half-written buffer.
			e.scPool.Put(sc)
			e.reclaimInput(j)
		}
		elapsed := time.Since(start).Nanoseconds()
		e.metrics.busyNs.Add(elapsed)
		e.metrics.inFlight.Add(-1)
		if err != nil {
			if !panicked {
				e.lmPool.Put(lm)
			}
			e.metrics.errors.Add(1)
			j.done <- jobResult{err: err, wait: wait}
			continue
		}
		e.metrics.completed.Add(1)
		e.metrics.jobNs.Add(elapsed)
		e.metrics.jobsTimed.Add(1)
		e.metrics.pixels.Add(int64(npix))
		e.metrics.components.Add(int64(res.NumComponents))
		e.metrics.scanNs.Add(res.Phases.Scan.Nanoseconds())
		e.metrics.mergeNs.Add(res.Phases.Merge.Nanoseconds())
		e.metrics.flattenNs.Add(res.Phases.Flatten.Nanoseconds())
		e.metrics.relabelNs.Add(res.Phases.Relabel.Nanoseconds())
		// Histogram observes are two uncontended atomic adds each; the
		// six of them cost tens of nanoseconds against a job measured in
		// micro- to milliseconds, keeping hot-path overhead under the 2%
		// budget with nothing allocated.
		e.metrics.jobHist.observe(elapsed)
		e.metrics.phaseHist[phaseScan].observe(res.Phases.Scan.Nanoseconds())
		e.metrics.phaseHist[phaseMerge].observe(res.Phases.Merge.Nanoseconds())
		e.metrics.phaseHist[phaseFlatten].observe(res.Phases.Flatten.Nanoseconds())
		e.metrics.phaseHist[phaseRelabel].observe(res.Phases.Relabel.Nanoseconds())
		j.done <- jobResult{res: res, wait: wait}
	}
}
