package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"slices"
	"strconv"
	"time"

	paremsp "repro"
	"repro/internal/band"
	"repro/internal/jobs"
	"repro/internal/pnm"
)

// The asynchronous job API. POST /v1/jobs accepts a single image body (the
// same formats /v1/label takes) or a multipart/form-data batch of images,
// creates one job per image and answers 202 immediately; clients then poll
// GET /v1/jobs/{id}, fetch GET /v1/jobs/{id}/result once the job is done,
// and DELETE /v1/jobs/{id} when they no longer need the result (otherwise
// the store's TTL evicts it).
//
// Jobs are deduplicated by content hash: an identical submission — same
// input bytes, algorithm, connectivity, binarization level and output kind
// — returns the existing job's ID with "dedup": true instead of
// recomputing, whether that job is still queued, running, or already done.
// Failed jobs do not dedup, so a client may retry a failed submission.

// jobJSON is the wire form of a job in submit responses and status bodies.
type jobJSON struct {
	ID            string        `json:"id,omitempty"`
	Kind          string        `json:"kind,omitempty"`
	State         string        `json:"state"`
	Dedup         bool          `json:"dedup,omitempty"`
	QueuePosition int           `json:"queue_position,omitempty"`
	Error         string        `json:"error,omitempty"`
	CreatedAt     *time.Time    `json:"created_at,omitempty"`
	StartedAt     *time.Time    `json:"started_at,omitempty"`
	FinishedAt    *time.Time    `json:"finished_at,omitempty"`
	ExpiresAt     *time.Time    `json:"expires_at,omitempty"`
	Width         int           `json:"width,omitempty"`
	Height        int           `json:"height,omitempty"`
	Depth         int           `json:"depth,omitempty"`
	NumComponents int           `json:"num_components,omitempty"`
	Phases        *phasesJSON   `json:"phases,omitempty"`
	Trace         *jobTraceJSON `json:"trace,omitempty"`
}

// jobTraceJSON is the span-like timing breakdown embedded in a started
// job's status: where the job's wall time went, from submission through
// queue wait, decode, the labeling run (with per-phase splits via the
// sibling phases object) to completion. It is derived from the store's
// transition timestamps, so it needs no extra bookkeeping on the hot path.
type jobTraceJSON struct {
	QueueWaitNs int64 `json:"queue_wait_ns"`
	DecodeNs    int64 `json:"decode_ns,omitempty"`
	RunNs       int64 `json:"run_ns,omitempty"`
	TotalNs     int64 `json:"total_ns,omitempty"`
}

type jobsSubmitResponse struct {
	Jobs []jobJSON `json:"jobs"`
}

// maxBatchParts bounds one multipart submission. Together with the shared
// -max-bytes body cap it bounds how many store entries a single request
// can create (a boundary line costs only tens of bytes, so the byte cap
// alone would admit millions of empty parts).
const maxBatchParts = 256

func jobJSONFrom(j jobs.Job, dedup bool) jobJSON {
	out := jobJSON{
		ID:            j.ID,
		Kind:          string(j.Kind),
		State:         string(j.State),
		Dedup:         dedup,
		QueuePosition: j.QueuePos,
		Error:         j.Err,
	}
	if !j.Created.IsZero() {
		out.CreatedAt = &j.Created
	}
	if !j.Started.IsZero() {
		out.StartedAt = &j.Started
	}
	if !j.Finished.IsZero() {
		out.FinishedAt = &j.Finished
	}
	if !j.ExpiresAt.IsZero() {
		out.ExpiresAt = &j.ExpiresAt
	}
	if !j.Started.IsZero() {
		tr := &jobTraceJSON{QueueWaitNs: j.Started.Sub(j.Created).Nanoseconds()}
		if !j.Finished.IsZero() {
			tr.RunNs = j.Finished.Sub(j.Started).Nanoseconds()
			tr.TotalNs = j.Finished.Sub(j.Created).Nanoseconds()
		}
		out.Trace = tr
	}
	if info := j.Info; info != nil {
		out.Width, out.Height, out.NumComponents = info.Width, info.Height, info.NumComponents
		out.Depth = info.Depth
		if out.Trace != nil {
			out.Trace.DecodeNs = info.DecodeNs
		}
		if info.Phases.Total() > 0 {
			out.Phases = &phasesJSON{
				ScanNs:    info.Phases.Scan.Nanoseconds(),
				MergeNs:   info.Phases.Merge.Nanoseconds(),
				FlattenNs: info.Phases.Flatten.Nanoseconds(),
				RelabelNs: info.Phases.Relabel.Nanoseconds(),
			}
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", ctJSON)
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// batchSizeError writes the failure for a multipart read error, wording
// the over-cap case for the whole batch (decodeError's message is
// per-image).
func (h *Handler) batchSizeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge, codePayloadTooLarge,
			fmt.Sprintf("batch exceeds %d bytes in total (all parts share one -max-bytes cap; split the batch)",
				tooBig.Limit))
		return
	}
	writeError(w, http.StatusBadRequest, codeInvalidArgument, err.Error())
}

// parseBandRows parses a ?band= value (band height in rows, 0 = default).
func parseBandRows(v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid band %q (want rows >= 0)", v)
	}
	return n, nil
}

// jobsSubmit handles POST /v1/jobs. Query parameters: kind (labels —
// default — stats, contours, gray, or volume), plus the shared spec
// parameters (alg, threads, conn, level, mode, delta, band). When kind is
// absent it follows the spec — mode=gray|gray-delta selects gray jobs,
// mode=volume volume jobs, contours=true contours jobs. A body of
// Content-Type multipart/form-data is a batch: every part is one payload
// and gets its own job; anything else is a single payload. Payloads that
// fail to decode still become jobs — ones that fail immediately,
// observable via their status — so one bad image never voids the rest of
// a batch.
func (h *Handler) jobsSubmit(w http.ResponseWriter, r *http.Request) {
	if h.draining.Load() {
		h.rejectDraining(w)
		return
	}
	spec, aerr := h.parseSpec(r)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	kind, aerr := jobKindFor(r.URL.Query().Get("kind"), spec)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}

	mediatype := ""
	params := map[string]string{}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		if mt, p, err := mime.ParseMediaType(ct); err == nil {
			mediatype, params = mt, p
		}
	}

	// One MaxBytesReader caps the whole submission — for a batch, all
	// parts together — because every payload is buffered in memory before
	// its job is created; a per-part cap would let one request pin
	// parts x -max-bytes. Batches larger than the cap must be split.
	type payload struct {
		ct   string
		data []byte
	}
	var payloads []payload
	body := http.MaxBytesReader(w, r.Body, h.maxBytes)
	if mediatype == "multipart/form-data" {
		mr := multipart.NewReader(body, params["boundary"])
		for {
			p, err := mr.NextPart()
			if err == io.EOF {
				break
			}
			if err != nil {
				h.batchSizeError(w, err)
				return
			}
			if len(payloads) == maxBatchParts {
				p.Close()
				writeError(w, http.StatusBadRequest, codeInvalidArgument,
					fmt.Sprintf("batch has more than %d parts; split it", maxBatchParts))
				return
			}
			b, err := io.ReadAll(p)
			p.Close()
			if err != nil {
				h.batchSizeError(w, err)
				return
			}
			payloads = append(payloads, payload{ct: p.Header.Get("Content-Type"), data: b})
		}
		if len(payloads) == 0 {
			writeError(w, http.StatusBadRequest, codeInvalidArgument, "empty batch: no multipart parts")
			return
		}
	} else {
		b, err := io.ReadAll(body)
		if err != nil {
			h.decodeError(w, err)
			return
		}
		if len(b) == 0 {
			writeError(w, http.StatusBadRequest, codeInvalidArgument, "empty request body")
			return
		}
		payloads = []payload{{ct: r.Header.Get("Content-Type"), data: b}}
	}

	resp := jobsSubmitResponse{Jobs: make([]jobJSON, len(payloads))}
	full, closed := 0, 0
	for i, b := range payloads {
		entry, shedErr := h.submitJob(b.data, b.ct, kind, spec)
		resp.Jobs[i] = entry
		switch {
		case errors.Is(shedErr, ErrQueueFull):
			full++
		case errors.Is(shedErr, ErrClosed):
			closed++
		}
	}
	if full+closed == len(resp.Jobs) {
		// Every image was shed: answer like the synchronous endpoints —
		// 503 on shutdown, 429 with a backoff hint on backpressure.
		if closed > 0 {
			writeError(w, http.StatusServiceUnavailable, codeUnavailable, ErrClosed.Error())
		} else {
			h.rejectBusy(w, ErrQueueFull)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// jobKindFor resolves a submission's job kind from the explicit ?kind=
// and the parsed spec, rejecting contradictory combinations (kind=stats
// with mode=gray, contours=true on a volume job, ...). With kind absent
// the spec decides: gray modes map to gray jobs, volume to volume jobs,
// contours=true to contours jobs, else labels.
func jobKindFor(kindParam string, spec requestSpec) (jobs.Kind, *apiError) {
	kind := jobs.Kind(kindParam)
	if kindParam == "" {
		switch {
		case spec.mode == paremsp.ModeGray || spec.mode == paremsp.ModeGrayDelta:
			kind = jobs.KindGray
		case spec.mode == paremsp.ModeVolume:
			kind = jobs.KindVolume
		case spec.contours:
			kind = jobs.KindContours
		default:
			kind = jobs.KindLabels
		}
	}
	// Modes each kind accepts; binary (the default when ?mode= is absent)
	// is always accepted and means "the kind's natural mode".
	var okModes []paremsp.Mode
	switch kind {
	case jobs.KindLabels, jobs.KindStats, jobs.KindContours:
		okModes = []paremsp.Mode{paremsp.ModeBinary}
	case jobs.KindGray:
		okModes = []paremsp.Mode{paremsp.ModeBinary, paremsp.ModeGray, paremsp.ModeGrayDelta}
	case jobs.KindVolume:
		okModes = []paremsp.Mode{paremsp.ModeBinary, paremsp.ModeVolume}
	default:
		return "", badParam("invalid kind %q (want %s, %s, %s, %s or %s)", kindParam,
			jobs.KindLabels, jobs.KindStats, jobs.KindContours, jobs.KindGray, jobs.KindVolume)
	}
	if !slices.Contains(okModes, spec.mode) {
		return "", badParam("kind %s conflicts with mode %s", kind, spec.mode)
	}
	if spec.contours && kind != jobs.KindContours {
		return "", badParam("contours=true requires kind %s", jobs.KindContours)
	}
	return kind, nil
}

// submitJob creates (or dedups to) the job for one payload — ct is its
// declared Content-Type ("" sniffs, matching /v1/label's rules) — and
// hands new work to the engine via admitJob. shedErr is non-nil
// (ErrQueueFull or ErrClosed) when the engine rejected the payload; the
// job is then marked failed — not removed, since a concurrent identical
// submission may already have dedup'd to its ID — and failed jobs are
// replaced on resubmission.
func (h *Handler) submitJob(body []byte, ct string, kind jobs.Kind, spec requestSpec) (entry jobJSON, shedErr error) {
	// A gray job submitted without ?mode= labels exact gray levels; a
	// volume job's mode is implied by its kind. Pinning the mode here keeps
	// the journaled Params and the job key identical however the request
	// spelled it.
	mode := spec.mode
	switch {
	case kind == jobs.KindGray && mode == paremsp.ModeBinary:
		mode = paremsp.ModeGray
	case kind == jobs.KindVolume:
		mode = paremsp.ModeVolume
	}
	// paremsp.JobKeyMode owns the key normalization (default algorithm,
	// the mode's connectivity, the delta slot for gray-delta jobs, level
	// zeroed where binarization cannot matter), so client-side precomputed
	// IDs match the server's and equivalent submissions dedup.
	id := paremsp.JobKeyMode(kind, mode, spec.opt.Algorithm, spec.opt.Connectivity, spec.level, spec.opt.Delta, body)
	p := jobs.Params{
		Alg:         string(spec.opt.Algorithm),
		Conn:        spec.opt.Connectivity,
		Level:       spec.level,
		Threads:     spec.opt.Threads,
		BandRows:    spec.bandRows,
		ContentType: ct,
		Delta:       spec.opt.Delta,
	}
	if mode != paremsp.ModeBinary {
		p.Mode = string(mode)
	}

	j, existed := h.jobs.CreateOrGet(id, kind, p, body)
	if existed {
		return jobJSONFrom(j, true), nil
	}
	gen := j.Gen
	if err := h.admitJob(id, gen, kind, body, p); err != nil {
		// Decode failure, queue backpressure or shutdown: fail the
		// placeholder rather than removing it — a concurrent identical
		// submission may already hold this ID, and a failed job is
		// observable (then replaced on retry) where a vanished one would
		// 404. Only engine rejections count as shed for the batch verdict.
		h.jobs.Fail(id, gen, err)
		j, _ := h.jobs.Get(id)
		if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrClosed) {
			return jobJSONFrom(j, false), err
		}
		return jobJSONFrom(j, false), nil
	}
	j, _ = h.jobs.Get(id)
	return jobJSONFrom(j, false), nil
}

// admitJob decodes one job's payload and admits it to the engine queue,
// wiring the completion callback that lands the terminal state in the
// store. It is the shared admission path for fresh submissions and for
// recovery resubmission after a restart (RecoverJobs), which is why it
// takes the store-journaled Params rather than parsed request state. It
// does not transition the job on error — callers decide between Fail
// (submission) and Cancel (recovery).
//
// The job's lifetime exceeds the HTTP request's, so it runs under the
// server-lifetime base context — not the request's, which dies when the
// 202 is written, and not Background, which a drain could never cancel —
// bounded by -job-timeout when configured. The context is always
// cancelable and registered with the store, so DELETE on a queued or
// running job aborts the computation and releases its worker. Every
// transition targets this entry's generation, so if the job is deleted
// and recreated under the same ID these callbacks cannot touch the
// replacement.
func (h *Handler) admitJob(id string, gen uint64, kind jobs.Kind, body []byte, p jobs.Params) error {
	opt := paremsp.Options{
		Algorithm:    paremsp.Algorithm(p.Alg),
		Connectivity: p.Conn,
		Threads:      p.Threads,
		Mode:         paremsp.Mode(p.Mode),
		Delta:        p.Delta,
	}
	switch kind {
	case jobs.KindGray:
		if opt.Mode == "" {
			opt.Mode = paremsp.ModeGray
		}
	case jobs.KindVolume:
		opt.Mode = paremsp.ModeVolume
	}
	onStart := func() { h.jobs.Start(id, gen) }
	jctx, jcancel := context.WithCancel(h.baseCtx)
	if h.jobTimeout > 0 {
		jctx, jcancel = context.WithTimeout(h.baseCtx, h.jobTimeout)
	}
	var (
		sub                  *Submitted
		err                  error
		width, height, depth int
		density              float64
	)
	decodeStart := time.Now()
	switch kind {
	case jobs.KindStats:
		src, derr := pnm.NewBandReaderBytes(body, p.Level)
		if derr != nil {
			jcancel()
			return derr
		}
		width, height = src.Width(), src.Height()
		sub, err = h.engine.SubmitStats(jctx, src, band.Options{BandRows: p.BandRows, Ctx: jctx}, onStart)
	case jobs.KindVolume:
		vol := h.engine.GetVolume()
		if derr := pnm.DecodeVolumeInto(bytes.NewReader(body), p.Level, vol); derr != nil {
			h.engine.PutVolume(vol)
			jcancel()
			return derr
		}
		width, height, depth = vol.W, vol.H, vol.D
		if len(vol.Vox) > 0 {
			density = float64(vol.ForegroundCount()) / float64(len(vol.Vox))
		}
		sub, err = h.engine.SubmitVolume(jctx, vol, opt, onStart)
	case jobs.KindGray:
		br := bufio.NewReader(bytes.NewReader(body))
		bkind, derr := bodyKind(p.ContentType, br)
		if derr != nil {
			jcancel()
			return derr
		}
		g, derr := h.decodeGray(bkind, br)
		if derr != nil {
			jcancel()
			return derr
		}
		width, height, density = g.Width, g.Height, 1
		sub, err = h.engine.SubmitGray(jctx, g, opt, onStart)
	default: // labels and contours share the binary raster path
		br := bufio.NewReader(bytes.NewReader(body))
		bkind, derr := bodyKind(p.ContentType, br)
		if derr == nil {
			var d decoded
			if d, derr = h.decodeRaster(bkind, br, opt.Algorithm, p.Level); derr == nil {
				width, height, density = d.width, d.height, d.density
				if d.bm != nil {
					sub, err = h.engine.SubmitBitmap(jctx, d.bm, opt, onStart)
				} else {
					sub, err = h.engine.SubmitLabel(jctx, d.img, opt, onStart)
				}
			}
		}
		if derr != nil {
			jcancel()
			return derr
		}
	}
	if err != nil {
		jcancel()
		return err
	}
	decodeNs := time.Since(decodeStart).Nanoseconds()
	// Registered after a successful submit: the store now owns firing
	// jcancel on DELETE, and drops the registration on any terminal
	// transition.
	h.jobs.RegisterCancel(id, gen, jcancel)
	h.jobs.SetQueuePos(id, gen, sub.QueuePosition())

	go func() {
		res, bres, vres, werr := sub.Wait()
		var contours []paremsp.Contour
		if werr == nil && kind == jobs.KindContours {
			// Trace under jctx — still live here, and fired by DELETE or the
			// job timeout — so an abandoned contours job stops tracing too.
			contours, werr = paremsp.TraceContoursCtx(jctx, res.Labels, res.NumComponents)
			if werr != nil {
				// The labeling succeeded but the trace was canceled; the
				// label map is unneeded, back to the pool with it.
				h.engine.PutResult(res)
			}
		}
		// Release the timeout timer only after the outcome is in: jctx must
		// stay live while the job sits in the queue and runs.
		jcancel()
		if werr != nil {
			// A context error is a cancellation (client gave up via timeout,
			// DELETE canceled the job, or the server drained), not a
			// computation failure; land the job in the canceled terminal
			// state so clients and metrics can tell the two apart.
			// Resubmitting a canceled job re-runs it.
			if errors.Is(werr, context.Canceled) || errors.Is(werr, context.DeadlineExceeded) {
				h.jobs.Cancel(id, gen, werr)
			} else {
				h.jobs.Fail(id, gen, werr)
			}
			return
		}
		jr := &jobs.Result{ResultInfo: jobs.ResultInfo{
			Width: width, Height: height, Depth: depth, Density: density, DecodeNs: decodeNs,
		}}
		switch {
		case bres != nil:
			jr.Stats = bres
			jr.BandRows = p.BandRows
			jr.Width, jr.Height, jr.NumComponents = bres.Width, bres.Height, bres.NumComponents
			if px := int64(bres.Width) * int64(bres.Height); px > 0 {
				jr.Density = float64(bres.ForegroundPixels) / float64(px)
			}
		case vres != nil:
			// Only the component summary is retained — the labeled voxel
			// grid would dwarf the input — so the label volume goes straight
			// back to its pool.
			jr.NumComponents = vres.NumComponents
			jr.VolumeSizes = paremsp.VolumeComponentSizes(vres.Labels, vres.NumComponents)
			h.engine.PutVolumeResult(vres)
		default:
			// The label map is kept out of the engine pool for as long as
			// the job lives; eviction or deletion releases it to the GC.
			// Component statistics are computed once here, so result
			// fetches serve them without rescanning the raster.
			jr.Labels = res.Labels
			jr.Components = paremsp.ComponentsOf(res.Labels)
			jr.NumComponents = res.NumComponents
			jr.Phases = res.Phases
			jr.Contours = contours
		}
		h.jobs.Complete(id, gen, jr)
	}()
	return nil
}

// RecoverJobs resubmits every queued job the durable store replayed from
// its journal — including jobs that were running when the process died,
// which replay as queued — through the normal admission path. Jobs whose
// input is gone or that the engine refuses are canceled with a "recovery:"
// reason, a documented terminal state clients can observe. It returns how
// many jobs were requeued and how many canceled; on the memory backend
// both are zero. Call it after the engine is up and before serving.
func (h *Handler) RecoverJobs() (requeued, canceled int) {
	return h.jobs.Recover(func(j jobs.Job, input []byte) error {
		return h.admitJob(j.ID, j.Gen, j.Kind, input, j.Params)
	})
}

// jobStatus handles GET /v1/jobs/{id}: the job's state, timestamps, queue
// position at admission, and — once done — its dimensions and per-phase
// timings.
func (h *Handler) jobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := h.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, codeNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, jobJSONFrom(j, false))
}

// jobResult handles GET /v1/jobs/{id}/result. Done labels, contours and
// gray jobs render in the negotiated format (JSON statistics, PGM/PNG
// label map, or a CCL1 stream; ?components=false omits per-component
// statistics from JSON, and contours jobs carry their boundary polylines
// in JSON); done stats and volume jobs are JSON only. Any other state
// answers 409 with the status body, so pollers can distinguish "not yet"
// from "never existed" (404).
func (h *Handler) jobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := h.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, codeNotFound, "unknown job")
		return
	}
	if j.State != jobs.StateDone {
		writeJSON(w, http.StatusConflict, jobJSONFrom(j, false))
		return
	}
	// The payload lives in the store's blob backend (RAM, or disk when the
	// durable backend spilled it), not on the job snapshot.
	res, err := h.jobs.Result(j.ID)
	if err != nil {
		if errors.Is(err, jobs.ErrNoBlob) {
			// The job was evicted or deleted between the Get and the fetch.
			writeError(w, http.StatusNotFound, codeNotFound, "unknown job")
			return
		}
		writeError(w, http.StatusInternalServerError, codeInternal, fmt.Sprintf("read result: %v", err))
		return
	}
	if res.Stats != nil || res.Labels == nil {
		// Stats and volume results have no raster to negotiate: JSON only.
		if accept, ok := negotiateAccept(r.Header.Get("Accept")); !ok || accept != ctJSON {
			writeError(w, http.StatusNotAcceptable, codeNotAcceptable,
				fmt.Sprintf("unsupported Accept %q (this result is %s)",
					r.Header.Get("Accept"), ctJSON))
			return
		}
		w.Header().Set("Content-Type", ctJSON)
		if res.Stats != nil {
			json.NewEncoder(w).Encode(statsResponseFrom(res.Stats, res.BandRows))
			return
		}
		json.NewEncoder(w).Encode(volumeResponse{
			Width: res.Width, Height: res.Height, Depth: res.Depth,
			NumComponents:  res.NumComponents,
			ComponentSizes: res.VolumeSizes,
		})
		return
	}
	accept, ok := negotiateAccept(r.Header.Get("Accept"))
	if !ok {
		writeError(w, http.StatusNotAcceptable, codeNotAcceptable,
			fmt.Sprintf("unsupported Accept %q (want %s, %s, %s or %s)",
				r.Header.Get("Accept"), ctJSON, ctPGM, ctPNG, ctCCL))
		return
	}
	wantComps := true
	v := r.URL.Query().Get("components")
	if v == "" {
		v = r.URL.Query().Get("stats") // deprecated alias, one release
	}
	if v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeInvalidArgument, fmt.Sprintf("invalid components %q", v))
			return
		}
		wantComps = b
	}
	var comps []paremsp.Component
	if wantComps {
		comps = res.Components
	}
	writeLabeling(w, accept, res.Width, res.Height, res.Density, res.Labels, res.NumComponents, res.Phases, comps, res.Contours)
}

// jobDelete handles DELETE /v1/jobs/{id}: the job and its retained result
// are dropped immediately instead of waiting for TTL eviction. Deleting a
// queued or running job also cancels its computation — the store fires the
// context registered at admission, so a queued job never reaches a worker
// and a running one aborts at its next cancellation poll, releasing the
// worker for other requests.
func (h *Handler) jobDelete(w http.ResponseWriter, r *http.Request) {
	if !h.jobs.Remove(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, codeNotFound, "unknown job")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
