package service

import (
	"bytes"
	"context"
	"math"
	rtmetrics "runtime/metrics"
	"strings"
	"testing"

	paremsp "repro"
)

func TestWriteRuntimeHistogram(t *testing.T) {
	// Runtime layout: open lower edge, two finite buckets (one empty), open
	// upper edge with hits.
	h := &rtmetrics.Float64Histogram{
		Counts:  []uint64{2, 3, 0, 1},
		Buckets: []float64{math.Inf(-1), 1e-6, 1e-5, 1e-4, math.Inf(1)},
	}
	var buf bytes.Buffer
	if _, err := writeRuntimeHistogram(&buf, "test_seconds", "help.", h); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP ccserve_test_seconds help.\n",
		"# TYPE ccserve_test_seconds histogram\n",
		`ccserve_test_seconds_bucket{le="1e-06"} 2` + "\n",
		`ccserve_test_seconds_bucket{le="1e-05"} 5` + "\n",
		`ccserve_test_seconds_bucket{le="+Inf"} 6` + "\n",
		"ccserve_test_seconds_count 6\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The empty 1e-05..1e-04 bucket is elided, and the open-ended top bucket
	// appears only as +Inf.
	if strings.Contains(out, `le="0.0001"`) {
		t.Fatalf("empty bucket not elided:\n%s", out)
	}
	if strings.Count(out, `le="+Inf"`) != 1 {
		t.Fatalf("+Inf emitted more than once:\n%s", out)
	}
	// Midpoint sum: 2·(1e-6) [open low edge → finite edge] + 3·(5.5e-6) +
	// 1·(1e-4) [open high edge → finite edge]; prefix match tolerates float
	// accumulation dust.
	if !strings.Contains(out, "ccserve_test_seconds_sum 0.0001185") {
		t.Fatalf("approximate sum wrong:\n%s", out)
	}
}

func TestWriteRuntimeMetricsLive(t *testing.T) {
	var buf bytes.Buffer
	if _, err := writeRuntimeMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE ccserve_go_goroutines gauge",
		"# TYPE ccserve_go_heap_objects_bytes gauge",
		"# TYPE ccserve_go_gc_pause_seconds histogram",
		"ccserve_go_gc_pause_seconds_count ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("runtime exposition missing %q:\n%s", want, out)
		}
	}
}

// TestSnapshotPoolsAndBusy drives real labelings through the engine and
// checks the pool census and worker-busy accounting that feed /metrics.
func TestSnapshotPoolsAndBusy(t *testing.T) {
	eng := NewEngine(Config{Workers: 1})
	defer eng.Close()
	for i := 0; i < 3; i++ {
		img := eng.GetImage()
		*img = paremsp.Image{Width: 4, Height: 4, Pix: make([]uint8, 16)}
		img.Pix[5] = 1
		res, err := eng.Label(context.Background(), img, paremsp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		eng.PutResult(res)
	}
	s := eng.Snapshot()
	byName := map[string]PoolSnapshot{}
	for _, p := range s.Pools {
		byName[p.Name] = p
	}
	for _, name := range []string{"image", "labelmap", "scratch"} {
		p := byName[name]
		if p.Gets != 3 {
			t.Errorf("pool %s gets = %d, want 3", name, p.Gets)
		}
		if p.Misses < 1 || p.Misses > p.Gets {
			t.Errorf("pool %s misses = %d, want within [1, %d]", name, p.Misses, p.Gets)
		}
	}
	// No exact reuse assertion: sync.Pool may drop items at will (the race
	// detector does so deliberately), so only the gets/misses bounds above
	// are contractual.
	if p := byName["bitmap"]; p.Gets != 0 || p.Misses != 0 {
		t.Errorf("bitmap pool touched without bitmap traffic: %+v", p)
	}
	if s.BusyNs <= 0 {
		t.Errorf("worker busy ns = %d, want > 0", s.BusyNs)
	}
	if s.BusyNs < s.JobNs {
		t.Errorf("busy ns %d < raster job ns %d: busy must cover every job", s.BusyNs, s.JobNs)
	}
}
