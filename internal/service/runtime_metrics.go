package service

import (
	"fmt"
	"io"
	"math"
	rtmetrics "runtime/metrics"
	"strconv"
)

// Runtime gauge metrics sampled from runtime/metrics on every scrape: the
// names here are the stable runtime/metrics identifiers, the exposition
// names the ccserve_go_* families they render as.
var runtimeGauges = []struct {
	sample     string
	name, help string
}{
	{"/sched/goroutines:goroutines", "go_goroutines",
		"Live goroutines (runtime/metrics /sched/goroutines)."},
	{"/memory/classes/heap/objects:bytes", "go_heap_objects_bytes",
		"Bytes occupied by live heap objects plus unswept dead ones (runtime/metrics /memory/classes/heap/objects)."},
	{"/gc/heap/goal:bytes", "go_gc_heap_goal_bytes",
		"Heap size target of the next GC cycle (runtime/metrics /gc/heap/goal)."},
}

// runtimePauseSample is the GC stop-the-world pause distribution.
const runtimePauseSample = "/sched/pauses/total/gc:seconds"

// writeRuntimeMetrics renders the Go runtime's own health gauges — goroutine
// count, heap bytes, GC heap goal, and the GC pause histogram — in the
// Prometheus text exposition. Sampling is done per scrape (runtime/metrics
// reads are cheap and lock-free); metrics the running toolchain does not
// export are skipped rather than rendered as zero.
func writeRuntimeMetrics(w io.Writer) (int64, error) {
	samples := make([]rtmetrics.Sample, 0, len(runtimeGauges)+1)
	for _, g := range runtimeGauges {
		samples = append(samples, rtmetrics.Sample{Name: g.sample})
	}
	samples = append(samples, rtmetrics.Sample{Name: runtimePauseSample})
	rtmetrics.Read(samples)

	var total int64
	for i, g := range runtimeGauges {
		var v int64
		switch samples[i].Value.Kind() {
		case rtmetrics.KindUint64:
			v = int64(samples[i].Value.Uint64())
		case rtmetrics.KindFloat64:
			v = int64(samples[i].Value.Float64())
		default:
			continue
		}
		n, err := writeProm(w, []promMetric{{"gauge", g.name, g.help, v}})
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	pauses := samples[len(samples)-1]
	if pauses.Value.Kind() == rtmetrics.KindFloat64Histogram {
		n, err := writeRuntimeHistogram(w, "go_gc_pause_seconds",
			"Distribution of individual GC stop-the-world pause latencies in seconds (runtime/metrics "+runtimePauseSample+").",
			pauses.Value.Float64Histogram())
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// writeRuntimeHistogram renders a runtime/metrics Float64Histogram as a
// Prometheus histogram: cumulative bucket counts with le taken from the
// runtime's bucket upper bounds, eliding buckets that add nothing so the
// runtime's ~100-bucket layout does not bloat every scrape. The runtime does
// not track an exact sum, so _sum is approximated from bucket midpoints
// (infinite edges fall back to the finite edge) — good enough for rate()
// dashboards, and the count/bucket lines stay exact.
func writeRuntimeHistogram(w io.Writer, name, help string, h *rtmetrics.Float64Histogram) (int64, error) {
	var total int64
	n, err := fmt.Fprintf(w, "# HELP ccserve_%s %s\n# TYPE ccserve_%s histogram\n", name, help, name)
	total += int64(n)
	if err != nil {
		return total, err
	}
	var count uint64
	var sum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		count += c
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := (lo + hi) / 2
		switch {
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		}
		sum += mid * float64(c)
		if math.IsInf(hi, 1) {
			// The closing +Inf line below carries this bucket's count.
			continue
		}
		n, err := fmt.Fprintf(w, "ccserve_%s_bucket{le=%q} %d\n",
			name, strconv.FormatFloat(hi, 'g', -1, 64), count)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	n, err = fmt.Fprintf(w, "ccserve_%s_bucket{le=\"+Inf\"} %d\nccserve_%s_sum %g\nccserve_%s_count %d\n",
		name, count, name, sum, name, count)
	total += int64(n)
	return total, err
}
