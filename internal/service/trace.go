package service

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is the span-like timing record of one HTTP request: where its wall
// time went, phase by phase (queue wait, decode, the labeling phases,
// encode), plus enough request identity (ID, endpoint, algorithm, status)
// to find it again. Every request gets one; finished traces are copied into
// a fixed-size ring buffer served by GET /debug/requests for tail-latency
// forensics, and the labeling phases are surfaced live as the Server-Timing
// header on /v1/label responses.
//
// A Trace is written only by the goroutine serving its request (the engine
// reports queue wait through the job result, not by touching the Trace), so
// the record needs no internal locking and recycles through a pool without
// racing canceled workers.
type Trace struct {
	Seq       uint64    `json:"seq"`
	ID        string    `json:"id"`
	Method    string    `json:"method"`
	Path      string    `json:"path"`
	Endpoint  string    `json:"endpoint"`
	Alg       string    `json:"alg,omitempty"`
	Status    int       `json:"status"`
	Bytes     int64     `json:"bytes"`
	Pixels    int64     `json:"pixels,omitempty"`
	Start     time.Time `json:"start"`
	QueueNs   int64     `json:"queue_wait_ns"`
	DecodeNs  int64     `json:"decode_ns"`
	ScanNs    int64     `json:"scan_ns"`
	MergeNs   int64     `json:"merge_ns"`
	FlattenNs int64     `json:"flatten_ns"`
	RelabelNs int64     `json:"relabel_ns"`
	EncodeNs  int64     `json:"encode_ns"`
	TotalNs   int64     `json:"total_ns"`
}

// setPhases copies a labeling's phase durations into the trace.
func (t *Trace) setPhases(scan, merge, flatten, relabel time.Duration) {
	t.ScanNs = scan.Nanoseconds()
	t.MergeNs = merge.Nanoseconds()
	t.FlattenNs = flatten.Nanoseconds()
	t.RelabelNs = relabel.Nanoseconds()
}

// traceKey is the context key under which the middleware parks the
// request's *Trace for the handlers (and the engine submit path) to fill.
type traceKey struct{}

// traceFrom returns the request-scoped trace, nil outside the middleware
// (library callers driving the Engine directly, async jobs running under
// the background context).
func traceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// traceRing is the fixed-size ring the finished traces land in. Writers
// claim a slot with one atomic increment and copy the record under that
// slot's mutex; slot mutexes are uncontended unless the ring wraps faster
// than a reader copies one slot, so capture stays cheap under load and
// never allocates.
type traceRing struct {
	next  atomic.Uint64
	slots []traceSlot
}

type traceSlot struct {
	mu  sync.Mutex
	rec Trace
}

// newTraceRing builds a ring with n slots (rounded up to a power of two so
// slot selection is a mask; n <= 0 selects 256).
func newTraceRing(n int) *traceRing {
	if n <= 0 {
		n = 256
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &traceRing{slots: make([]traceSlot, size)}
}

// put copies rec into the next slot, stamping its sequence number.
func (r *traceRing) put(rec *Trace) {
	seq := r.next.Add(1)
	s := &r.slots[(seq-1)&uint64(len(r.slots)-1)]
	s.mu.Lock()
	s.rec = *rec
	s.rec.Seq = seq
	s.mu.Unlock()
}

// dump returns up to n most recent traces, newest first; a non-empty id
// keeps only records with that request ID. The copy allocates, which is
// fine — this is the debug path, not the request path.
func (r *traceRing) dump(n int, id string) []Trace {
	if n <= 0 || n > len(r.slots) {
		n = len(r.slots)
	}
	newest := r.next.Load()
	out := make([]Trace, 0, n)
	for i := uint64(0); i < uint64(len(r.slots)) && len(out) < n; i++ {
		seq := newest - i
		if seq == 0 {
			break
		}
		s := &r.slots[(seq-1)&uint64(len(r.slots)-1)]
		s.mu.Lock()
		rec := s.rec
		s.mu.Unlock()
		// A slot overwritten by a racing writer carries a newer sequence
		// than the one this walk expected; skip it rather than report a
		// duplicate out of order.
		if rec.Seq != seq {
			continue
		}
		if id != "" && rec.ID != id {
			continue
		}
		out = append(out, rec)
	}
	return out
}

// appendServerTiming renders the trace's phases as a Server-Timing header
// value (durations in milliseconds, per the spec) into b. total is the
// request's elapsed time at header-write time; encode cannot appear — it
// happens after the headers are on the wire — and lives only in the ring
// record.
func appendServerTiming(b []byte, t *Trace, total time.Duration) []byte {
	b = appendTimingEntry(b, "queue", t.QueueNs)
	b = appendTimingEntry(b, "decode", t.DecodeNs)
	b = appendTimingEntry(b, "scan", t.ScanNs)
	b = appendTimingEntry(b, "merge", t.MergeNs)
	b = appendTimingEntry(b, "flatten", t.FlattenNs)
	b = appendTimingEntry(b, "relabel", t.RelabelNs)
	b = appendTimingEntry(b, "total", total.Nanoseconds())
	return b
}

// appendTimingEntry appends `name;dur=1.234` (ns rendered as ms), comma
// separated after the first entry.
func appendTimingEntry(b []byte, name string, ns int64) []byte {
	if len(b) > 0 {
		b = append(b, ", "...)
	}
	b = append(b, name...)
	b = append(b, ";dur="...)
	return strconv.AppendFloat(b, float64(ns)/1e6, 'f', 3, 64)
}
