package service

// The chaos suite: arm every failpoint at once, hammer the service with
// concurrent synchronous and asynchronous traffic, and assert the
// fault-tolerance invariants the PR promises — every accepted job reaches a
// terminal state, the worker-panic metric exactly matches the injected
// panic count, the pool keeps serving after every kind of fault, and the
// server still drains cleanly. Run it under -race (CI does): the failpoints
// deliberately widen the windows where cancellation, panic recovery and
// drain interleave. Goroutine leaks are caught by the package's TestMain
// leak check.

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	paremsp "repro"
	"repro/internal/faultinject"
	"repro/internal/jobs"
)

// chaosImage builds a small deterministic random raster; distinct seeds give
// distinct payloads, so async submissions do not all dedup to one job.
func chaosImage(seed int64) *paremsp.Image {
	rng := rand.New(rand.NewSource(seed))
	img := &paremsp.Image{Width: 24, Height: 24, Pix: make([]byte, 24*24)}
	for i := range img.Pix {
		if rng.Intn(2) == 1 {
			img.Pix[i] = 1
		}
	}
	return img
}

func TestChaosFaultInjection(t *testing.T) {
	defer faultinject.Reset()
	// Every failpoint armed at once, at staggered primes so their firings
	// interleave rather than synchronize.
	faultinject.Arm(faultinject.DecodeError, faultinject.Spec{Every: 11})
	faultinject.Arm(faultinject.WorkerStall, faultinject.Spec{Every: 5, Delay: 2 * time.Millisecond})
	faultinject.Arm(faultinject.WorkerPanic, faultinject.Spec{Every: 7})
	faultinject.Arm(faultinject.EncodeSlow, faultinject.Spec{Every: 13, Delay: time.Millisecond})
	faultinject.Arm(faultinject.QueueFull, faultinject.Spec{Every: 17})

	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	store := newTestJobStore(t, jobs.Options{TTL: time.Hour})
	eng := NewEngine(Config{Workers: 4, QueueDepth: 16, Threads: 1})
	h := NewHandler(eng, HandlerConfig{
		Jobs:           store,
		Obs:            NewObs(nil, 64),
		RequestTimeout: 5 * time.Second,
		JobTimeout:     5 * time.Second,
		BaseContext:    baseCtx,
	})
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
		store.Close()
	})

	const clients, perClient = 8, 25
	var (
		mu     sync.Mutex
		jobIDs []string
		wg     sync.WaitGroup
	)
	status := map[int]int{}
	record := func(code int) {
		mu.Lock()
		status[code]++
		mu.Unlock()
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				seed := int64(c*perClient + i)
				body := pbmBody(t, chaosImage(seed))
				if i%2 == 0 { // synchronous label
					resp := post(t, srv.URL+"/v1/label", ctPBM, ctJSON, body)
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					record(resp.StatusCode)
				} else { // async job
					resp := post(t, srv.URL+"/v1/jobs", ctPBM, ctJSON, body)
					record(resp.StatusCode)
					if resp.StatusCode == http.StatusAccepted {
						var out jobsSubmitResponse
						if err := json.NewDecoder(resp.Body).Decode(&out); err == nil {
							mu.Lock()
							for _, j := range out.Jobs {
								jobIDs = append(jobIDs, j.ID)
							}
							mu.Unlock()
						}
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(c)
	}
	wg.Wait()

	// Under chaos the only acceptable outcomes are the documented failure
	// modes; anything else (e.g. a 502 from a dead worker) is a bug.
	allowed := map[int]bool{
		http.StatusOK: true, http.StatusAccepted: true,
		http.StatusBadRequest:          true, // injected decode errors
		http.StatusTooManyRequests:     true, // injected + real queue-full
		http.StatusInternalServerError: true, // injected worker panics
		http.StatusGatewayTimeout:      true, // stalls crossing the request timeout
		http.StatusServiceUnavailable:  true,
	}
	for code, n := range status {
		if !allowed[code] {
			t.Fatalf("unexpected status %d (%d times) under chaos", code, n)
		}
	}
	if status[http.StatusOK]+status[http.StatusAccepted] == 0 {
		t.Fatal("no request succeeded under chaos; the faults were supposed to be partial")
	}

	// Every accepted async job must reach a terminal state — nothing may
	// wedge in queued/running once the traffic stops.
	deadline := time.Now().Add(20 * time.Second)
	for _, id := range jobIDs {
		for {
			j, ok := store.Get(id)
			if !ok {
				break // evicted/replaced by a colliding resubmission
			}
			if j.State.Finished() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s wedged in state %q after chaos", id, j.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// The panic containment must account exactly: every injected panic is
	// one counted recovery — none escaped, none double-counted.
	snap := eng.Snapshot()
	if fired := faultinject.Fired(faultinject.WorkerPanic); snap.Panics != fired {
		t.Fatalf("worker_panics_total = %d, injected %d", snap.Panics, fired)
	}
	if snap.Panics == 0 {
		t.Fatal("no panics were injected; chaos coverage hole")
	}
	if snap.InFlight != 0 {
		t.Fatalf("in_flight = %d after traffic stopped, want 0", snap.InFlight)
	}

	// And after all that abuse, a clean labeling still works...
	faultinject.Reset()
	resp := post(t, srv.URL+"/v1/label", ctPBM, ctJSON, pbmBody(t, chaosImage(999)))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos label = %d, want 200", resp.StatusCode)
	}

	// ...and the server drains cleanly within the timeout.
	h.StartDrain()
	if !eng.Drain(10 * time.Second) {
		t.Fatal("server failed to drain after chaos")
	}
	baseCancel()
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(hb), "draining") {
		t.Fatalf("post-drain healthz = %d %q, want 503 draining", hresp.StatusCode, hb)
	}
}

// TestChaosQueueFullBursts: the queue-full failpoint alone, firing often,
// must surface as well-formed 429s with Retry-After hints and exact
// rejection accounting — the shed path allocates no partial state.
func TestChaosQueueFullBursts(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(faultinject.QueueFull, faultinject.Spec{Every: 2})
	eng, srv := newTestServer(t, Config{Workers: 2, Threads: 1}, HandlerConfig{})

	before := eng.Snapshot().Rejected
	var got429 int
	for i := 0; i < 20; i++ {
		resp := post(t, srv.URL+"/v1/label", ctPBM, ctJSON, pbmBody(t, chaosImage(int64(i))))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			got429++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		case http.StatusOK:
		default:
			t.Fatalf("status %d, want 200 or 429", resp.StatusCode)
		}
	}
	fired := faultinject.Fired(faultinject.QueueFull)
	if int64(got429) != fired {
		t.Fatalf("got %d 429s, injected %d queue-full rejections", got429, fired)
	}
	if rej := eng.Snapshot().Rejected - before; rej != fired {
		t.Fatalf("rejected_total grew by %d, want %d", rej, fired)
	}
}

// TestChaosStallRespectsCancellation: a stalled worker (the worker-stall
// failpoint with a long delay) must still honor the request timeout — the
// stall sleeps under the job's context, so cancellation cuts it short.
func TestChaosStallRespectsCancellation(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(faultinject.WorkerStall, faultinject.Spec{Delay: time.Hour})
	_, srv := newTestServer(t, Config{Workers: 1, Threads: 1},
		HandlerConfig{RequestTimeout: 50 * time.Millisecond})

	start := time.Now()
	resp := post(t, srv.URL+"/v1/label", ctPBM, ctJSON, pbmBody(t, chaosImage(1)))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled request took %v; the stall ignored cancellation", elapsed)
	}
	// The worker must come back without waiting out the hour.
	faultinject.Disarm(faultinject.WorkerStall)
	resp = post(t, srv.URL+"/v1/label", ctPBM, ctJSON, pbmBody(t, chaosImage(2)))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-stall status = %d, want 200", resp.StatusCode)
	}
}
