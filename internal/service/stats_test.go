package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/band"
	"repro/internal/pnm"
)

type statsBody struct {
	Width         int     `json:"width"`
	Height        int     `json:"height"`
	NumComponents int     `json:"num_components"`
	Density       float64 `json:"density"`
	BandRows      int     `json:"band_rows"`
	Components    []struct {
		Label    int32      `json:"label"`
		Area     int64      `json:"area"`
		BBox     [4]int     `json:"bbox"`
		Centroid [2]float64 `json:"centroid"`
		Runs     int64      `json:"runs"`
	} `json:"components"`
}

func TestStatsJSONFromPBM(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{})
	img := testImage(t)
	for _, bandParam := range []string{"", "?band=1", "?band=2"} {
		resp := post(t, srv.URL+"/v1/stats"+bandParam, "image/x-portable-bitmap", "", pbmBody(t, img))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("band %q: status %d", bandParam, resp.StatusCode)
		}
		var body statsBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if body.Width != img.Width || body.Height != img.Height {
			t.Fatalf("band %q: shape %dx%d, want %dx%d", bandParam, body.Width, body.Height, img.Width, img.Height)
		}
		if body.NumComponents != 5 || len(body.Components) != 5 {
			t.Fatalf("band %q: %d components (%d listed), want 5", bandParam, body.NumComponents, len(body.Components))
		}
		var area int64
		for _, c := range body.Components {
			area += c.Area
			if c.Runs < 1 {
				t.Fatalf("band %q: component %d has %d runs", bandParam, c.Label, c.Runs)
			}
		}
		wantArea := int64(img.ForegroundCount())
		if area != wantArea {
			t.Fatalf("band %q: total area %d, want %d", bandParam, area, wantArea)
		}
		wantDensity := float64(wantArea) / float64(img.Width*img.Height)
		if body.Density != wantDensity {
			t.Fatalf("band %q: density %v, want %v", bandParam, body.Density, wantDensity)
		}
	}
}

func TestStatsRejectsNonRawInput(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{})
	resp := post(t, srv.URL+"/v1/stats", "image/png", "", pngBody(t, testImage(t)))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PNG body: status %d, want 400", resp.StatusCode)
	}
}

func TestStatsBadOptions(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{})
	for _, q := range []string{"?band=-1", "?band=x", "?level=1.5", "?level=abc"} {
		resp := post(t, srv.URL+"/v1/stats"+q, "image/x-portable-bitmap", "", pbmBody(t, testImage(t)))
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestStatsNotAcceptable(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{})
	resp := post(t, srv.URL+"/v1/stats", "image/x-portable-bitmap", "image/png", pbmBody(t, testImage(t)))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotAcceptable {
		t.Fatalf("status %d, want 406", resp.StatusCode)
	}
}

func TestStatsOversizedBody(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{MaxImageBytes: 4})
	resp := post(t, srv.URL+"/v1/stats", "image/x-portable-bitmap", "", pbmBody(t, testImage(t)))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestStatsTruncatedBody(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{})
	body := pbmBody(t, testImage(t))
	resp := post(t, srv.URL+"/v1/stats", "image/x-portable-bitmap", "", body[:len(body)-2])
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestStatsCanceledContext covers the stream-job cancellation contract:
// Stats must not return before the worker is finished with the source (the
// HTTP handler hands it the request body), so a pre-canceled context is
// rejected by the worker without reading a single byte.
func TestStatsCanceledContext(t *testing.T) {
	eng := NewEngine(Config{Workers: 1})
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src, err := pnm.NewBandReaderBytes(pbmBody(t, testImage(t)), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Stats(ctx, src, band.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestServiceConcurrentLabelAndStats is the race/stress coverage for one
// Engine serving both endpoints at once: mixed /v1/label and /v1/stats
// requests from many goroutines must all succeed with the right counts
// while sharing the worker pool, the raster pools, and the metrics.
func TestServiceConcurrentLabelAndStats(t *testing.T) {
	eng, srv := newTestServer(t, Config{Workers: 4, QueueDepth: 256}, HandlerConfig{})
	img := testImage(t)
	body := pbmBody(t, img)

	const clients = 8
	const perClient = 20
	var failures atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				path := "/v1/label"
				if (c+i)%2 == 0 {
					path = fmt.Sprintf("/v1/stats?band=%d", 1+i%3)
				}
				resp, err := http.Post(srv.URL+path, "image/x-portable-bitmap", bytes.NewReader(body))
				if err != nil {
					t.Errorf("%s: %v", path, err)
					failures.Add(1)
					continue
				}
				var got struct {
					NumComponents int `json:"num_components"`
				}
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK || got.NumComponents != 5 {
					t.Errorf("%s: status %d, components %d, err %v", path, resp.StatusCode, got.NumComponents, err)
					failures.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d of %d requests failed", failures.Load(), clients*perClient)
	}
	snap := eng.Snapshot()
	if snap.Completed != clients*perClient {
		t.Fatalf("engine completed %d requests, want %d", snap.Completed, clients*perClient)
	}
}
