package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
)

func TestHistBucketsAndQuantiles(t *testing.T) {
	var h hist
	if got := h.quantile(0.5); got != 0 {
		t.Fatalf("empty hist quantile = %d, want 0", got)
	}
	h.observe(0)       // bucket 0
	h.observe(1)       // bucket 1
	h.observe(2)       // bucket 2
	h.observe(3)       // bucket 2
	h.observe(1000)    // bucket 10 (bound 1023)
	h.observe(-5)      // clamps to 0 → bucket 0
	h.observe(1 << 50) // overflow slot
	b, count := h.snapshot()
	if count != 7 {
		t.Fatalf("count = %d, want 7", count)
	}
	if b[0] != 2 || b[1] != 1 || b[2] != 2 || b[10] != 1 || b[histFinite] != 1 {
		t.Fatalf("bucket counts = %v", b)
	}
	if got := h.quantile(0.5); got != bucketBound(2) {
		t.Fatalf("p50 = %d, want %d", got, bucketBound(2))
	}
	// The overflow hit dominates the extreme tail and must report the first
	// out-of-range power of two, not a finite bound that lies.
	if got := h.quantile(1.0); got != int64(1)<<uint(histFinite) {
		t.Fatalf("p100 = %d, want 2^%d", got, histFinite)
	}
}

func TestWritePromHistCumulative(t *testing.T) {
	var h hist
	for _, v := range []int64{0, 1, 1, 5, 5, 5, 900} {
		h.observe(v)
	}
	var buf bytes.Buffer
	if _, err := writePromHist(&buf, "x_ns", "help text.", []histSeries{{h: &h}}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP ccserve_x_ns help text.\n",
		"# TYPE ccserve_x_ns histogram\n",
		`ccserve_x_ns_bucket{le="0"} 1` + "\n",
		`ccserve_x_ns_bucket{le="1"} 3` + "\n",
		`ccserve_x_ns_bucket{le="7"} 6` + "\n",
		`ccserve_x_ns_bucket{le="+Inf"} 7` + "\n",
		"ccserve_x_ns_sum 917\n",
		"ccserve_x_ns_count 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestInstrumentationAllocFree pins the hot-path instrumentation cost:
// histogram observes and trace-ring captures must not allocate.
func TestInstrumentationAllocFree(t *testing.T) {
	var h hist
	if n := testing.AllocsPerRun(1000, func() { h.observe(123456) }); n != 0 {
		t.Fatalf("hist.observe allocates %.1f objects/op, want 0", n)
	}
	ring := newTraceRing(64)
	tr := Trace{ID: "alloc-probe", Method: "POST", Path: "/v1/label", TotalNs: 42}
	if n := testing.AllocsPerRun(1000, func() { ring.put(&tr) }); n != 0 {
		t.Fatalf("traceRing.put allocates %.1f objects/op, want 0", n)
	}
}

// promSample is one parsed exposition line for the validator.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

func parsePromLine(t *testing.T, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.name = line[:i]
		j := strings.IndexByte(line, '}')
		if j < i {
			t.Fatalf("malformed sample line %q", line)
		}
		for _, pair := range strings.Split(line[i+1:j], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				t.Fatalf("malformed label %q in %q", pair, line)
			}
			s.labels[k] = strings.Trim(v, `"`)
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		name, v, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		s.name = name
		rest = v
	}
	val, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("bad value in %q: %v", line, err)
	}
	s.value = val
	return s
}

// labelKey renders a sample's labels minus le, for grouping histogram
// series.
func labelKey(labels map[string]string) string {
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		if k == "le" {
			continue
		}
		parts = append(parts, k+"="+v)
	}
	// Tiny maps; insertion-sort keeps the key deterministic.
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return strings.Join(parts, ",")
}

// TestPromExpositionValid scrapes a live /metrics after real traffic and
// validates the exposition: every sample's family has HELP and TYPE,
// histogram buckets are cumulative and non-decreasing, and the +Inf bucket
// of every series equals its _count.
func TestPromExpositionValid(t *testing.T) {
	store := newTestJobStore(t, jobs.Options{TTL: time.Minute})
	eng := NewEngine(Config{Workers: 2})
	srv := httptest.NewServer(NewHandler(eng, HandlerConfig{Jobs: store}))
	defer func() { srv.Close(); eng.Close(); store.Close() }()

	body := pbmBody(t, testImage(t))
	for i := 0; i < 3; i++ {
		resp := post(t, srv.URL+"/v1/label", ctPBM, ctJSON, body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	sub := submitJobs(t, srv.URL+"/v1/jobs", ctPBM, body)
	pollJob(t, srv.URL, sub.Jobs[0].ID, string(jobs.StateDone))
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)

	for _, family := range []string{
		"ccserve_http_request_duration_ns", "ccserve_queue_wait_ns",
		"ccserve_job_service_ns", "ccserve_phase_duration_ns",
		"ccserve_job_latency_p50_ns", "ccserve_jobs_submitted_total",
		"ccserve_pool_get_total", "ccserve_pool_miss_total",
		"ccserve_worker_busy_ns_total", "ccserve_workers_busy",
		"ccserve_go_goroutines", "ccserve_go_heap_objects_bytes",
		"ccserve_go_gc_pause_seconds",
	} {
		if !strings.Contains(text, "# TYPE "+family+" ") {
			t.Fatalf("missing family %s in exposition:\n%s", family, text)
		}
	}
	if !regexp.MustCompile(`ccserve_http_request_duration_ns_bucket\{endpoint="label",le="\+Inf"\} [1-9]`).MatchString(text) {
		t.Fatalf("label endpoint histogram recorded no requests:\n%s", text)
	}
	// The raster traffic above borrowed from the image, labelmap and scratch
	// pools; their get counters must be live (the bitmap pool stays 0 — no
	// bit-packed requests were sent).
	for _, pool := range []string{"image", "labelmap", "scratch"} {
		if !regexp.MustCompile(`ccserve_pool_get_total\{pool="` + pool + `"\} [1-9]`).MatchString(text) {
			t.Fatalf("pool %s recorded no gets:\n%s", pool, text)
		}
	}
	if !regexp.MustCompile(`ccserve_worker_busy_ns_total [1-9]`).MatchString(text) {
		t.Fatalf("worker busy time not recorded:\n%s", text)
	}
	if !regexp.MustCompile(`ccserve_go_goroutines [1-9]`).MatchString(text) {
		t.Fatalf("goroutine gauge missing or zero:\n%s", text)
	}

	help := map[string]bool{}
	typ := map[string]string{}
	type seriesState struct {
		prev    float64
		infSeen bool
		inf     float64
	}
	buckets := map[string]*seriesState{} // family + "|" + labelKey
	counts := map[string]float64{}

	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, h, ok := strings.Cut(rest, " ")
			if !ok || h == "" {
				t.Fatalf("HELP line without text: %q", line)
			}
			help[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, _ := strings.Cut(rest, " ")
			typ[name] = kind
			continue
		}
		s := parsePromLine(t, line)
		family := s.name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(s.name, suffix); ok && typ[base] == "histogram" {
				family = base
				break
			}
		}
		if !help[family] {
			t.Fatalf("sample %q has no # HELP for family %q", line, family)
		}
		if typ[family] == "" {
			t.Fatalf("sample %q has no # TYPE for family %q", line, family)
		}
		if typ[family] == "histogram" {
			key := family + "|" + labelKey(s.labels)
			switch {
			case strings.HasSuffix(s.name, "_bucket"):
				st := buckets[key]
				if st == nil {
					st = &seriesState{}
					buckets[key] = st
				}
				if s.value < st.prev {
					t.Fatalf("bucket counts decrease in series %s: %v after %v", key, s.value, st.prev)
				}
				st.prev = s.value
				if s.labels["le"] == "+Inf" {
					st.infSeen, st.inf = true, s.value
				}
			case strings.HasSuffix(s.name, "_count"):
				counts[key] = s.value
			}
		}
	}
	if len(buckets) == 0 {
		t.Fatal("validator saw no histogram series")
	}
	for key, st := range buckets {
		if !st.infSeen {
			t.Fatalf("series %s has no le=\"+Inf\" bucket", key)
		}
		c, ok := counts[key]
		if !ok {
			t.Fatalf("series %s has buckets but no _count", key)
		}
		if st.inf != c {
			t.Fatalf("series %s: le=\"+Inf\" bucket %v != _count %v", key, st.inf, c)
		}
	}
}

func TestRequestIDEchoAndServerTiming(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{})
	body := pbmBody(t, testImage(t))

	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/label", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ctPBM)
	req.Header.Set("Accept", ctJSON)
	req.Header.Set(headerRequestID, "my-custom-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(headerRequestID); got != "my-custom-id-42" {
		t.Fatalf("inbound request ID not echoed: got %q", got)
	}
	st := resp.Header.Get("Server-Timing")
	for _, field := range []string{"queue;dur=", "decode;dur=", "scan;dur=", "merge;dur=", "flatten;dur=", "relabel;dur=", "total;dur="} {
		if !strings.Contains(st, field) {
			t.Fatalf("Server-Timing %q missing %q", st, field)
		}
	}

	// Without an inbound ID the service mints one: 16 hex characters.
	resp2 := post(t, srv.URL+"/v1/label", ctPBM, ctJSON, body)
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	id := resp2.Header.Get(headerRequestID)
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Fatalf("generated request ID = %q, want 16 hex chars", id)
	}
}

func TestDebugRequestsAndPprof(t *testing.T) {
	obs := NewObs(nil, 64)
	eng := NewEngine(Config{})
	srv := httptest.NewServer(NewHandler(eng, HandlerConfig{Obs: obs}))
	dbg := httptest.NewServer(NewDebugHandler(obs))
	defer func() { srv.Close(); dbg.Close(); eng.Close() }()

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/label", bytes.NewReader(pbmBody(t, testImage(t))))
	req.Header.Set("Content-Type", ctPBM)
	req.Header.Set("Accept", ctJSON)
	req.Header.Set(headerRequestID, "trace-me-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	dresp, err := http.Get(dbg.URL + "/debug/requests?n=50&id=trace-me-1")
	if err != nil {
		t.Fatal(err)
	}
	var traces []Trace
	if err := json.NewDecoder(dresp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if len(traces) != 1 {
		t.Fatalf("got %d traces for id=trace-me-1, want 1", len(traces))
	}
	tr := traces[0]
	if tr.ID != "trace-me-1" || tr.Endpoint != "label" || tr.Status != http.StatusOK {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.TotalNs <= 0 || tr.Pixels != 20 || tr.Bytes <= 0 {
		t.Fatalf("trace missing measurements: %+v", tr)
	}
	if tr.ScanNs < 0 || tr.QueueNs < 0 || tr.DecodeNs < 0 {
		t.Fatalf("negative phase duration: %+v", tr)
	}

	if dresp, err = http.Get(dbg.URL + "/debug/requests?n=bogus"); err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ?n= status = %d, want 400", dresp.StatusCode)
	}

	if dresp, err = http.Get(dbg.URL + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d, want 200", dresp.StatusCode)
	}
}

// syncWriter serializes slog output so the test can read the buffer while
// the server goroutine writes log lines.
type syncWriter struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

func TestAccessLogFields(t *testing.T) {
	var out syncWriter
	obs := NewObs(slog.New(slog.NewJSONHandler(&out, &slog.HandlerOptions{Level: slog.LevelInfo})), 0)
	eng := NewEngine(Config{})
	srv := httptest.NewServer(NewHandler(eng, HandlerConfig{Obs: obs}))
	defer func() { srv.Close(); eng.Close() }()

	resp := post(t, srv.URL+"/v1/label", ctPBM, ctJSON, pbmBody(t, testImage(t)))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// The access line is emitted after the handler returns; the client can
	// observe the response a hair earlier, so poll briefly.
	var entry map[string]any
	deadline := time.Now().Add(2 * time.Second)
	for {
		for _, line := range strings.Split(out.String(), "\n") {
			if line == "" {
				continue
			}
			var m map[string]any
			if err := json.Unmarshal([]byte(line), &m); err != nil {
				t.Fatalf("access log line is not JSON: %q (%v)", line, err)
			}
			if m["msg"] == "request" && m["path"] == "/v1/label" {
				entry = m
			}
		}
		if entry != nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if entry == nil {
		t.Fatalf("no access log line for /v1/label in:\n%s", out.String())
	}
	if entry["method"] != "POST" || entry["status"] != float64(http.StatusOK) {
		t.Fatalf("access entry = %v", entry)
	}
	if entry["alg"] != "paremsp" || entry["pixels"] != float64(20) {
		t.Fatalf("access entry missing alg/pixels: %v", entry)
	}
	if id, _ := entry["id"].(string); len(id) != 16 {
		t.Fatalf("access entry id = %v, want generated 16-char ID", entry["id"])
	}
	if _, ok := entry["duration"]; !ok {
		t.Fatalf("access entry has no duration: %v", entry)
	}
}

// TestJobStatusTrace asserts the async job status embeds the timing trace
// derived from the store's transition timestamps.
func TestJobStatusTrace(t *testing.T) {
	_, _, srv := newJobsServer(t, Config{}, jobs.Options{TTL: time.Minute})
	sub := submitJobs(t, srv.URL+"/v1/jobs", ctPBM, pbmBody(t, testImage(t)))
	j := pollJob(t, srv.URL, sub.Jobs[0].ID, string(jobs.StateDone))
	if j.Trace == nil {
		t.Fatalf("done job has no trace: %+v", j)
	}
	if j.Trace.QueueWaitNs < 0 || j.Trace.RunNs <= 0 || j.Trace.TotalNs < j.Trace.RunNs {
		t.Fatalf("job trace = %+v", j.Trace)
	}
	if j.Trace.DecodeNs <= 0 {
		t.Fatalf("job trace missing decode time: %+v", j.Trace)
	}
}

// TestObservabilityStress hammers the instrumented surface from many
// goroutines at once — labeling, job submission and polling, metrics
// scrapes, and debug trace dumps — so `go test -race -run Observability`
// exercises the lock-free histograms, the trace ring, and the pooled
// request state under real contention.
func TestObservabilityStress(t *testing.T) {
	var logs syncWriter
	obs := NewObs(slog.New(slog.NewJSONHandler(&logs, &slog.HandlerOptions{Level: slog.LevelDebug})), 64)
	store := newTestJobStore(t, jobs.Options{TTL: time.Minute})
	eng := NewEngine(Config{Workers: 4})
	srv := httptest.NewServer(NewHandler(eng, HandlerConfig{Jobs: store, Obs: obs}))
	dbg := httptest.NewServer(NewDebugHandler(obs))
	defer func() { srv.Close(); dbg.Close(); eng.Close(); store.Close() }()

	body := pbmBody(t, testImage(t))
	const workers = 8
	const iters = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 4 {
				case 0:
					resp := post(t, srv.URL+"/v1/label", ctPBM, ctJSON, body)
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				case 1:
					resp := post(t, srv.URL+"/v1/jobs", ctPBM, "", body)
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				case 2:
					resp, err := http.Get(srv.URL + "/metrics")
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				case 3:
					resp, err := http.Get(dbg.URL + "/debug/requests?n=20")
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()

	if got := len(obs.DumpTraces(0)); got == 0 {
		t.Fatal("stress run left no traces in the ring")
	}
}

func BenchmarkHistObserve(b *testing.B) {
	var h hist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.observe(int64(i))
	}
}

func BenchmarkTraceRingPut(b *testing.B) {
	ring := newTraceRing(256)
	tr := Trace{ID: "bench", Method: "POST", Path: "/v1/label", TotalNs: 1234}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ring.put(&tr)
	}
}
