package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	paremsp "repro"
	"repro/internal/jobs"
)

// newTestJobStore builds a job store for a test, honoring
// CCSERVE_TEST_JOB_STORE=sqlite so CI can run the whole service suite
// against the durable backend; unset or "memory" keeps the in-memory
// default.
func newTestJobStore(t *testing.T, jopt jobs.Options) *jobs.Store {
	t.Helper()
	if b := os.Getenv("CCSERVE_TEST_JOB_STORE"); b != "" {
		jopt.Backend = b
	}
	if jopt.Backend != "" && jopt.Backend != jobs.BackendMemory {
		jopt.Dir = t.TempDir()
	}
	store, err := jobs.Open(jopt)
	if err != nil {
		t.Fatalf("open job store: %v", err)
	}
	return store
}

// newJobsServer is newTestServer with the async job API enabled.
func newJobsServer(t *testing.T, ecfg Config, jopt jobs.Options) (*Engine, *jobs.Store, *httptest.Server) {
	t.Helper()
	store := newTestJobStore(t, jopt)
	eng := NewEngine(ecfg)
	srv := httptest.NewServer(NewHandler(eng, HandlerConfig{Jobs: store}))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
		store.Close()
	})
	return eng, store, srv
}

// submitJobs POSTs body to /v1/jobs and decodes the 202 response.
func submitJobs(t *testing.T, url, contentType string, body []byte) jobsSubmitResponse {
	t.Helper()
	resp := post(t, url, contentType, ctJSON, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit status %d: %s", resp.StatusCode, b)
	}
	var out jobsSubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) == 0 {
		t.Fatal("submit response listed no jobs")
	}
	return out
}

// getJobStatus fetches GET /v1/jobs/{id}, reporting the HTTP status too.
func getJobStatus(t *testing.T, base, id string) (jobJSON, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return jobJSON{}, resp.StatusCode
	}
	var j jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j, resp.StatusCode
}

// pollJob polls the status endpoint until the job reaches wantState. An
// unexpected failed state aborts the test with the job's error.
func pollJob(t *testing.T, base, id, wantState string) jobJSON {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, code := getJobStatus(t, base, id)
		if code == http.StatusOK {
			if j.State == wantState {
				return j
			}
			if j.State == string(jobs.StateFailed) && wantState != string(jobs.StateFailed) {
				t.Fatalf("job %s failed: %s", id, j.Error)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %q (last status %d, state %q)", id, wantState, code, j.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// multipartBody builds a multipart/form-data batch, one file part per image.
func multipartBody(t *testing.T, parts ...[]byte) (string, []byte) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for i, p := range parts {
		fw, err := mw.CreateFormFile(fmt.Sprintf("image%d", i), fmt.Sprintf("img%d.pbm", i))
		if err != nil {
			t.Fatal(err)
		}
		fw.Write(p)
	}
	mw.Close()
	return mw.FormDataContentType(), buf.Bytes()
}

func TestJobsDisabledWithoutStore(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{}) // no Jobs store
	resp := post(t, srv.URL+"/v1/jobs", ctPBM, "", pbmBody(t, testImage(t)))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404 when jobs are disabled", resp.StatusCode)
	}
}

// TestJobLifecycle is the e2e acceptance path: a submitted job is
// observable through queued → running → done, its result is fetchable in
// the negotiated formats, and DELETE removes it.
func TestJobLifecycle(t *testing.T) {
	eng, _, srv := newJobsServer(t, Config{Workers: 1, QueueDepth: 4, Threads: 1}, jobs.Options{TTL: time.Hour})
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	eng.run = func(ctx context.Context, img *paremsp.Image, dst *paremsp.LabelMap, sc *paremsp.Scratch, opt paremsp.Options) (*paremsp.Result, error) {
		started <- struct{}{}
		<-block
		return paremsp.LabelInto(img, dst, sc, opt)
	}

	img := testImage(t)
	// Job A occupies the single worker; job B (a different image) queues.
	a := submitJobs(t, srv.URL+"/v1/jobs", ctPBM, pbmBody(t, img)).Jobs[0]
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never started job A")
	}
	big := paremsp.NewImage(64, 32)
	for i := range big.Pix {
		big.Pix[i] = 1
	}
	b := submitJobs(t, srv.URL+"/v1/jobs", ctPBM, pbmBody(t, big)).Jobs[0]
	if a.ID == b.ID {
		t.Fatal("distinct images produced the same job ID")
	}

	// While the worker is blocked: A is running, B is queued with a
	// recorded queue position.
	if j := pollJob(t, srv.URL, a.ID, "running"); j.StartedAt == nil {
		t.Fatalf("running job missing started_at: %+v", j)
	}
	jb, _ := getJobStatus(t, srv.URL, b.ID)
	if jb.State != "queued" {
		t.Fatalf("job B state %q, want queued", jb.State)
	}
	if jb.QueuePosition < 1 {
		t.Fatalf("job B queue_position = %d, want >= 1", jb.QueuePosition)
	}
	if jb.CreatedAt == nil || jb.StartedAt != nil || jb.FinishedAt != nil {
		t.Fatalf("queued job timestamps wrong: %+v", jb)
	}

	close(block)
	ja := pollJob(t, srv.URL, a.ID, "done")
	pollJob(t, srv.URL, b.ID, "done")
	if ja.Width != img.Width || ja.Height != img.Height || ja.NumComponents != 5 {
		t.Fatalf("done status = %+v, want 5x4 with 5 components", ja)
	}
	if ja.Phases == nil || ja.Phases.ScanNs <= 0 {
		t.Fatalf("done status missing phase timings: %+v", ja.Phases)
	}
	if ja.FinishedAt == nil || ja.ExpiresAt == nil {
		t.Fatalf("done job missing finished_at/expires_at: %+v", ja)
	}

	// Result in JSON with per-component statistics.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + a.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var lr labelResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || lr.NumComponents != 5 || len(lr.Components) != 5 {
		t.Fatalf("result status %d, body %+v", resp.StatusCode, lr)
	}
	var area int
	for _, c := range lr.Components {
		area += c.Area
	}
	if area != img.ForegroundCount() {
		t.Fatalf("component areas sum to %d, want %d", area, img.ForegroundCount())
	}

	// Result as a PGM label map: the mask must round-trip.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs/"+a.ID+"/result", nil)
	req.Header.Set("Accept", ctPGM)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != ctPGM {
		t.Fatalf("PGM result: status %d, type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// DELETE drops the job; both endpoints answer 404 afterwards.
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+a.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d, want 204", resp.StatusCode)
	}
	if _, code := getJobStatus(t, srv.URL, a.ID); code != http.StatusNotFound {
		t.Fatalf("status after delete = %d, want 404", code)
	}
	resp, err = http.Get(srv.URL + "/v1/jobs/" + a.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("result after delete = %d, want 404", resp.StatusCode)
	}
	// Deleting again is a 404, not an error.
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+a.ID, nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete status %d, want 404", resp.StatusCode)
	}
}

// TestJobDedupHit resubmits an identical request and must get the same job
// ID back without recomputing.
func TestJobDedupHit(t *testing.T) {
	eng, store, srv := newJobsServer(t, Config{Workers: 2}, jobs.Options{TTL: time.Hour})
	body := pbmBody(t, testImage(t))

	first := submitJobs(t, srv.URL+"/v1/jobs", ctPBM, body).Jobs[0]
	if first.Dedup {
		t.Fatal("first submission reported dedup")
	}
	// The exported JobKey must reproduce the server-assigned ID, default
	// normalization included (empty alg, conn 0, level irrelevant for P4).
	if want := paremsp.JobKey(paremsp.JobLabels, "", 0, 0.5, body); first.ID != want {
		t.Fatalf("server ID %s, JobKey computes %s", first.ID, want)
	}
	pollJob(t, srv.URL, first.ID, "done")

	second := submitJobs(t, srv.URL+"/v1/jobs", ctPBM, body).Jobs[0]
	if second.ID != first.ID {
		t.Fatalf("dedup returned ID %s, want %s", second.ID, first.ID)
	}
	if !second.Dedup || second.State != "done" {
		t.Fatalf("dedup hit = %+v, want dedup:true state:done", second)
	}
	if got := eng.Snapshot().Completed; got != 1 {
		t.Fatalf("engine completed %d labelings, want 1 (dedup must not recompute)", got)
	}
	if got := store.Counts().DedupHits; got != 1 {
		t.Fatalf("dedup hits = %d, want 1", got)
	}

	// A different algorithm is a different job.
	third := submitJobs(t, srv.URL+"/v1/jobs?alg=bremsp", ctPBM, body).Jobs[0]
	if third.ID == first.ID {
		t.Fatal("different algorithm deduplicated to the same job")
	}
}

func TestJobTTLExpiry(t *testing.T) {
	_, _, srv := newJobsServer(t, Config{Workers: 1},
		jobs.Options{TTL: 50 * time.Millisecond, SweepEvery: 10 * time.Millisecond})
	id := submitJobs(t, srv.URL+"/v1/jobs", ctPBM, pbmBody(t, testImage(t))).Jobs[0].ID
	pollJob(t, srv.URL, id, "done")

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, code := getJobStatus(t, srv.URL, id); code == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// An expired job is recomputable: resubmission is not a dedup hit.
	again := submitJobs(t, srv.URL+"/v1/jobs", ctPBM, pbmBody(t, testImage(t))).Jobs[0]
	if again.Dedup {
		t.Fatal("resubmission after expiry reported dedup")
	}
	pollJob(t, srv.URL, again.ID, "done")
}

// TestJobBatchMixedValidity submits a multipart batch where one part is not
// an image: the bad part becomes an immediately-failed job while the rest
// label normally, and a duplicate part dedups within the batch.
func TestJobBatchMixedValidity(t *testing.T) {
	_, _, srv := newJobsServer(t, Config{Workers: 2}, jobs.Options{TTL: time.Hour})
	img := testImage(t)
	big := paremsp.NewImage(48, 48)
	for i := range big.Pix {
		big.Pix[i] = uint8(i % 2)
	}
	good1, good2 := pbmBody(t, img), pbmBody(t, big)
	ct, body := multipartBody(t, good1, []byte("this is not an image"), good2, good1)

	out := submitJobs(t, srv.URL+"/v1/jobs", ct, body)
	if len(out.Jobs) != 4 {
		t.Fatalf("batch created %d jobs, want 4", len(out.Jobs))
	}
	bad := out.Jobs[1]
	if bad.State != "failed" || bad.Error == "" {
		t.Fatalf("invalid part = %+v, want an immediately-failed job", bad)
	}
	if dup := out.Jobs[3]; !dup.Dedup || dup.ID != out.Jobs[0].ID {
		t.Fatalf("duplicate part = %+v, want dedup to %s", dup, out.Jobs[0].ID)
	}
	j1 := pollJob(t, srv.URL, out.Jobs[0].ID, "done")
	j2 := pollJob(t, srv.URL, out.Jobs[2].ID, "done")
	if j1.NumComponents != 5 {
		t.Fatalf("first image: %d components, want 5", j1.NumComponents)
	}
	if j2.Width != 48 || j2.Height != 48 {
		t.Fatalf("second image: %dx%d, want 48x48", j2.Width, j2.Height)
	}
	// The failed job's result endpoint reports the failure, not a result.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + bad.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("failed job result status %d, want 409", resp.StatusCode)
	}
	// Failed jobs do not dedup: resubmitting the bad bytes makes a fresh job.
	ct2, body2 := multipartBody(t, []byte("this is not an image"))
	if retry := submitJobs(t, srv.URL+"/v1/jobs", ct2, body2).Jobs[0]; retry.Dedup {
		t.Fatal("failed job deduplicated on retry")
	}
}

// TestJobStatsKind runs an asynchronous streaming-stats job.
func TestJobStatsKind(t *testing.T) {
	_, _, srv := newJobsServer(t, Config{Workers: 1}, jobs.Options{TTL: time.Hour})
	img := testImage(t)
	id := submitJobs(t, srv.URL+"/v1/jobs?kind=stats&band=2", ctPBM, pbmBody(t, img)).Jobs[0].ID
	if want := paremsp.JobKey(paremsp.JobStats, "pbremsp", 0, 0.5, pbmBody(t, img)); id != want {
		t.Fatalf("stats job ID %s, JobKey computes %s (alg/conn must not matter for stats)", id, want)
	}

	j := pollJob(t, srv.URL, id, "done")
	if j.Kind != "stats" || j.NumComponents != 5 {
		t.Fatalf("stats job status = %+v", j)
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var body statsBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || body.NumComponents != 5 || len(body.Components) != 5 {
		t.Fatalf("stats result: status %d, body %+v", resp.StatusCode, body)
	}
	if body.BandRows != 2 {
		t.Fatalf("band_rows = %d, want the submitted 2", body.BandRows)
	}
	var area int64
	for _, c := range body.Components {
		area += c.Area
	}
	if area != int64(img.ForegroundCount()) {
		t.Fatalf("stats areas sum to %d, want %d", area, img.ForegroundCount())
	}

	// Stats results are JSON only.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs/"+id+"/result", nil)
	req.Header.Set("Accept", ctPNG)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotAcceptable {
		t.Fatalf("PNG-accept stats result: status %d, want 406", resp.StatusCode)
	}

	// A labels job over the same bytes is a different job (kind is in the key).
	lab := submitJobs(t, srv.URL+"/v1/jobs", ctPBM, pbmBody(t, img)).Jobs[0]
	if lab.ID == id {
		t.Fatal("labels and stats jobs share an ID")
	}
}

// TestJobBitPackedSubmit covers the packed-ingest submit path (raw PBM +
// bit-packed algorithm) and CCL1 result rendering.
func TestJobBitPackedSubmit(t *testing.T) {
	_, _, srv := newJobsServer(t, Config{Workers: 1}, jobs.Options{TTL: time.Hour})
	id := submitJobs(t, srv.URL+"/v1/jobs?alg=pbremsp", ctPBM, pbmBody(t, testImage(t))).Jobs[0].ID
	j := pollJob(t, srv.URL, id, "done")
	if j.NumComponents != 5 || j.Phases == nil {
		t.Fatalf("bit-packed job status = %+v", j)
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs/"+id+"/result", nil)
	req.Header.Set("Accept", ctCCL)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != ctCCL {
		t.Fatalf("CCL1 result: status %d, type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
}

// TestJobResultNotReady asserts the 409 contract for queued/running jobs.
func TestJobResultNotReady(t *testing.T) {
	eng, _, srv := newJobsServer(t, Config{Workers: 1, QueueDepth: 4, Threads: 1}, jobs.Options{TTL: time.Hour})
	block := make(chan struct{})
	started := make(chan struct{}, 4)
	eng.run = func(ctx context.Context, img *paremsp.Image, dst *paremsp.LabelMap, sc *paremsp.Scratch, opt paremsp.Options) (*paremsp.Result, error) {
		started <- struct{}{}
		<-block
		return paremsp.LabelInto(img, dst, sc, opt)
	}
	id := submitJobs(t, srv.URL+"/v1/jobs", ctPBM, pbmBody(t, testImage(t))).Jobs[0].ID
	<-started

	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var j jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || j.State != "running" {
		t.Fatalf("not-ready result: status %d, state %q; want 409/running", resp.StatusCode, j.State)
	}
	close(block)
	pollJob(t, srv.URL, id, "done")
}

// TestJobQueueFullRetryAfter fills the pool and checks that a shed job
// submission answers 429 with a numeric Retry-After, and that the
// placeholder job is left behind as failed — observable by concurrent
// dedup'd clients — rather than deduplicating a retry.
func TestJobQueueFullRetryAfter(t *testing.T) {
	eng, store, srv := newJobsServer(t, Config{Workers: 1, QueueDepth: 1, Threads: 1}, jobs.Options{TTL: time.Hour})
	block := make(chan struct{})
	started := make(chan struct{}, 4)
	eng.run = func(ctx context.Context, img *paremsp.Image, dst *paremsp.LabelMap, sc *paremsp.Scratch, opt paremsp.Options) (*paremsp.Result, error) {
		started <- struct{}{}
		<-block
		return paremsp.LabelInto(img, dst, sc, opt)
	}

	imgs := make([][]byte, 3)
	for i := range imgs {
		im := paremsp.NewImage(8+i, 8)
		for p := range im.Pix {
			im.Pix[p] = 1
		}
		imgs[i] = pbmBody(t, im)
	}
	submitJobs(t, srv.URL+"/v1/jobs", ctPBM, imgs[0])
	<-started
	submitJobs(t, srv.URL+"/v1/jobs", ctPBM, imgs[1]) // occupies the queue slot
	deadline := time.Now().Add(5 * time.Second)
	for len(eng.queue) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second job never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	resp := post(t, srv.URL+"/v1/jobs", ctPBM, "", imgs[2])
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed submission: status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", ra)
	}
	// The shed image's placeholder stays behind as a failed job (a client
	// that dedup'd to it mid-submission must not see a 404), and failed
	// jobs do not dedup, so a retry resubmits for real.
	if store.Len() != 3 {
		t.Fatalf("store holds %d jobs after shed submission, want 3 (failed placeholder retained)", store.Len())
	}
	if c := store.Counts(); c.Failed != 1 {
		t.Fatalf("failed gauge = %d, want 1", c.Failed)
	}
	shedID := jobs.Key(jobs.KindLabels, "paremsp", 8, 0, imgs[2])
	sj, code := getJobStatus(t, srv.URL, shedID)
	if code != http.StatusOK || sj.State != "failed" || sj.Error == "" {
		t.Fatalf("shed placeholder = %+v (status %d), want an observable failed job", sj, code)
	}
	close(block)
	// With the pool drained, the retry replaces the failed placeholder.
	retry := submitJobs(t, srv.URL+"/v1/jobs", ctPBM, imgs[2]).Jobs[0]
	if retry.Dedup || retry.ID != shedID {
		t.Fatalf("retry = %+v, want a fresh (non-dedup) job under the same ID", retry)
	}
	pollJob(t, srv.URL, retry.ID, "done")
}

// TestRetryAfterEstimate pins the Retry-After arithmetic: backlog drain
// time at the observed mean latency, clamped to [1s, 60s].
func TestRetryAfterEstimate(t *testing.T) {
	eng := NewEngine(Config{Workers: 2, QueueDepth: 8})
	defer eng.Close()

	if got := eng.RetryAfter(); got != time.Second {
		t.Fatalf("no completed jobs: RetryAfter = %v, want the 1s floor", got)
	}
	// 4 timed jobs at a 10s mean; empty queue, nothing in flight:
	// (0+1) * 10s / 2 workers = 5s.
	eng.metrics.jobsTimed.Store(4)
	eng.metrics.jobNs.Store(4 * (10 * time.Second).Nanoseconds())
	if got := eng.RetryAfter(); got != 5*time.Second {
		t.Fatalf("RetryAfter = %v, want 5s", got)
	}
	// Fast jobs floor at 1s.
	eng.metrics.jobNs.Store(4 * (20 * time.Millisecond).Nanoseconds())
	if got := eng.RetryAfter(); got != time.Second {
		t.Fatalf("fast jobs: RetryAfter = %v, want 1s floor", got)
	}
	// Slow jobs cap at 60s.
	eng.metrics.jobNs.Store(4 * (10 * time.Minute).Nanoseconds())
	if got := eng.RetryAfter(); got != time.Minute {
		t.Fatalf("slow jobs: RetryAfter = %v, want 60s cap", got)
	}
}

// TestJobHonorsDeclaredContentType: like /v1/label, a declared body type
// wins over magic sniffing — PNG bytes declared as PBM fail to decode
// (asynchronously, as an immediately-failed job).
func TestJobHonorsDeclaredContentType(t *testing.T) {
	_, _, srv := newJobsServer(t, Config{}, jobs.Options{})
	out := submitJobs(t, srv.URL+"/v1/jobs", ctPNG, pbmBody(t, testImage(t)))
	if j := out.Jobs[0]; j.State != "failed" || j.Error == "" {
		t.Fatalf("PBM-as-PNG = %+v, want an immediately-failed job", j)
	}
}

// TestJobBatchPartsCap: a batch with more parts than maxBatchParts is
// rejected outright (with the shared byte cap this bounds store entries
// per request).
func TestJobBatchPartsCap(t *testing.T) {
	_, _, srv := newJobsServer(t, Config{}, jobs.Options{})
	parts := make([][]byte, maxBatchParts+1)
	for i := range parts {
		parts[i] = []byte{byte(i)}
	}
	ct, body := multipartBody(t, parts...)
	resp := post(t, srv.URL+"/v1/jobs", ct, "", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", resp.StatusCode)
	}
}

func TestJobSubmitBadRequests(t *testing.T) {
	_, _, srv := newJobsServer(t, Config{}, jobs.Options{})
	body := pbmBody(t, testImage(t))
	for name, tc := range map[string]struct {
		query string
		body  []byte
	}{
		"bad-kind":  {"?kind=frobnicate", body},
		"bad-alg":   {"?alg=nonsense", body},
		"bad-band":  {"?kind=stats&band=-2", body},
		"bad-level": {"?level=7", body},
		"empty":     {"", nil},
	} {
		resp := post(t, srv.URL+"/v1/jobs"+tc.query, ctPBM, "", tc.body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestJobMetricsExposition(t *testing.T) {
	_, _, srv := newJobsServer(t, Config{Workers: 1}, jobs.Options{TTL: time.Hour})
	body := pbmBody(t, testImage(t))
	id := submitJobs(t, srv.URL+"/v1/jobs", ctPBM, body).Jobs[0].ID
	pollJob(t, srv.URL, id, "done")
	submitJobs(t, srv.URL+"/v1/jobs", ctPBM, body) // dedup hit

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"ccserve_jobs_done 1",
		"ccserve_jobs_submitted_total 1",
		"ccserve_jobs_dedup_hits_total 1",
		"ccserve_jobs_queued 0",
		"ccserve_jobs_running 0",
		"ccserve_jobs_failed 0",
		"ccserve_jobs_evicted_total 0",
		"ccserve_job_latency_ns_total",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestJobConcurrentStress is the -race target for the job subsystem: many
// clients submitting a small set of images (so dedup races are constant),
// polling, fetching results and deleting, all against one engine and store.
func TestJobConcurrentStress(t *testing.T) {
	_, _, srv := newJobsServer(t, Config{Workers: 2, QueueDepth: 256, Threads: 1},
		jobs.Options{Shards: 4, TTL: 40 * time.Millisecond, SweepEvery: 10 * time.Millisecond})

	bodies := make([][]byte, 3)
	for i := range bodies {
		im := paremsp.NewImage(16+8*i, 16)
		for p := range im.Pix {
			im.Pix[p] = uint8((p + i) % 2)
		}
		bodies[i] = pbmBody(t, im)
	}

	const clients = 8
	const perClient = 15
	var failures atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				kindQ := ""
				if (c+i)%3 == 0 {
					kindQ = "?kind=stats"
				}
				resp := post(t, srv.URL+"/v1/jobs"+kindQ, ctPBM, ctJSON, bodies[i%len(bodies)])
				if resp.StatusCode == http.StatusTooManyRequests {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					continue // backpressure is a valid outcome under load
				}
				var out jobsSubmitResponse
				err := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusAccepted || len(out.Jobs) != 1 {
					t.Errorf("submit: status %d, err %v", resp.StatusCode, err)
					failures.Add(1)
					continue
				}
				id := out.Jobs[0].ID
				// Poll a few times; the job may finish, expire, or be
				// deleted by a sibling — all are legitimate under stress.
				for p := 0; p < 5; p++ {
					j, code := getJobStatus(t, srv.URL, id)
					if code == http.StatusNotFound {
						break
					}
					if code != http.StatusOK {
						t.Errorf("status poll: %d", code)
						failures.Add(1)
						break
					}
					if j.State == "failed" {
						t.Errorf("job %s failed: %s", id, j.Error)
						failures.Add(1)
						break
					}
					if j.State == "done" {
						r, err := http.Get(srv.URL + "/v1/jobs/" + id + "/result")
						if err != nil {
							t.Error(err)
							failures.Add(1)
							break
						}
						io.Copy(io.Discard, r.Body)
						r.Body.Close()
						if r.StatusCode != http.StatusOK && r.StatusCode != http.StatusNotFound &&
							r.StatusCode != http.StatusConflict {
							t.Errorf("result fetch: status %d", r.StatusCode)
							failures.Add(1)
						}
						break
					}
					time.Sleep(time.Millisecond)
				}
				if (c+i)%5 == 0 {
					req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
					r, err := http.DefaultClient.Do(req)
					if err != nil {
						t.Error(err)
						failures.Add(1)
						continue
					}
					r.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d stress operations failed", failures.Load())
	}
}
