package service

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/jobs"
)

// Phase indices for the per-phase duration histograms.
const (
	phaseScan = iota
	phaseMerge
	phaseFlatten
	phaseRelabel
	phaseCount
)

// phaseNames maps phase indices to the `phase` label values on
// ccserve_phase_duration_ns.
var phaseNames = [phaseCount]string{"scan", "merge", "flatten", "relabel"}

// Pool indices for the per-pool hit/miss counters.
const (
	poolImage = iota
	poolBitmap
	poolLabelMap
	poolScratch
	poolGray
	poolVolume
	poolLabelVol
	poolCount
)

// poolNames maps pool indices to the `pool` label values on
// ccserve_pool_get_total / ccserve_pool_miss_total.
var poolNames = [poolCount]string{
	"image", "bitmap", "labelmap", "scratch", "gray", "volume", "labelvol",
}

// metrics is the engine's live counter set. Everything is atomic so the hot
// path never takes a lock to account a request; the histograms are atomic
// log₂-bucket arrays (see hist), so distribution tracking is equally
// lock- and allocation-free.
type metrics struct {
	requests   atomic.Int64 // Label calls, admitted or not
	completed  atomic.Int64 // successful labelings
	rejected   atomic.Int64 // ErrQueueFull + ErrClosed rejections
	errors     atomic.Int64 // failed labelings (bad options, canceled jobs)
	canceled   atomic.Int64 // callers that gave up waiting (ctx done)
	inFlight   atomic.Int64 // labelings running right now
	pixels     atomic.Int64 // pixels labeled, cumulative
	components atomic.Int64 // components found, cumulative
	scanNs     atomic.Int64 // cumulative PhaseTimes.Scan
	mergeNs    atomic.Int64 // cumulative PhaseTimes.Merge
	flattenNs  atomic.Int64 // cumulative PhaseTimes.Flatten
	relabelNs  atomic.Int64 // cumulative PhaseTimes.Relabel
	jobNs      atomic.Int64 // cumulative wall time of completed raster jobs (RetryAfter's mean)
	jobsTimed  atomic.Int64 // completions accounted in jobNs (stream jobs excluded)
	busyNs     atomic.Int64 // cumulative wall time workers spent on jobs, every kind and outcome
	panics     atomic.Int64 // worker panics contained by recoverPanic

	poolGets   [poolCount]atomic.Int64 // sync.Pool Gets per pool
	poolMisses [poolCount]atomic.Int64 // Gets that had to allocate (pool New calls)

	queueWaitHist hist             // enqueue → worker-dequeue wait, all jobs
	jobHist       hist             // worker service time, raster jobs
	phaseHist     [phaseCount]hist // per-phase durations, raster jobs
}

// PoolSnapshot is the reuse census of one of the engine's rasters/scratch
// sync.Pools: Gets is every borrow, Misses the borrows that had to allocate,
// so Gets − Misses is the hit count (GC-emptied pools show up as misses).
type PoolSnapshot struct {
	Name   string `json:"name"`
	Gets   int64  `json:"gets"`
	Misses int64  `json:"misses"`
}

// Snapshot is a point-in-time copy of the engine's counters, plus
// approximate job-latency quantiles read from the service-time histogram
// (exact within the 2× log₂-bucket resolution).
type Snapshot struct {
	Requests   int64 `json:"requests"`
	Completed  int64 `json:"completed"`
	Rejected   int64 `json:"rejected"`
	Errors     int64 `json:"errors"`
	Canceled   int64 `json:"canceled"`
	InFlight   int64 `json:"in_flight"`
	QueueDepth int64 `json:"queue_depth"`
	Workers    int64 `json:"workers"`
	Pixels     int64 `json:"pixels"`
	Components int64 `json:"components"`
	ScanNs     int64 `json:"scan_ns"`
	MergeNs    int64 `json:"merge_ns"`
	FlattenNs  int64 `json:"flatten_ns"`
	RelabelNs  int64 `json:"relabel_ns"`
	JobNs      int64 `json:"job_ns"`
	JobP50Ns   int64 `json:"job_latency_p50_ns"`
	JobP95Ns   int64 `json:"job_latency_p95_ns"`
	JobP99Ns   int64 `json:"job_latency_p99_ns"`
	Panics     int64 `json:"worker_panics"`

	BusyNs int64                   `json:"worker_busy_ns"`
	Pools  [poolCount]PoolSnapshot `json:"pools"`
}

// Snapshot copies the current counters. QueueDepth is the number of requests
// waiting in the queue at the instant of the call.
func (e *Engine) Snapshot() Snapshot {
	var pools [poolCount]PoolSnapshot
	for i := range pools {
		pools[i] = PoolSnapshot{
			Name:   poolNames[i],
			Gets:   e.metrics.poolGets[i].Load(),
			Misses: e.metrics.poolMisses[i].Load(),
		}
	}
	return Snapshot{
		Requests:   e.metrics.requests.Load(),
		Completed:  e.metrics.completed.Load(),
		Rejected:   e.metrics.rejected.Load(),
		Errors:     e.metrics.errors.Load(),
		Canceled:   e.metrics.canceled.Load(),
		InFlight:   e.metrics.inFlight.Load(),
		QueueDepth: int64(len(e.queue)),
		Workers:    int64(e.workers),
		Pixels:     e.metrics.pixels.Load(),
		Components: e.metrics.components.Load(),
		ScanNs:     e.metrics.scanNs.Load(),
		MergeNs:    e.metrics.mergeNs.Load(),
		FlattenNs:  e.metrics.flattenNs.Load(),
		RelabelNs:  e.metrics.relabelNs.Load(),
		JobNs:      e.metrics.jobNs.Load(),
		JobP50Ns:   e.metrics.jobHist.quantile(0.50),
		JobP95Ns:   e.metrics.jobHist.quantile(0.95),
		JobP99Ns:   e.metrics.jobHist.quantile(0.99),
		Panics:     e.metrics.panics.Load(),
		BusyNs:     e.metrics.busyNs.Load(),
		Pools:      pools,
	}
}

// writeHistograms renders the engine's latency histograms — queue wait,
// raster service time, and the per-phase family — in Prometheus histogram
// exposition. Shared-package plumbing for the /metrics handler.
func (e *Engine) writeHistograms(w io.Writer) {
	writePromHist(w, "queue_wait_ns",
		"Time requests waited in the engine queue before a worker picked them up, in nanoseconds (log2 buckets).",
		[]histSeries{{h: &e.metrics.queueWaitHist}})
	writePromHist(w, "job_service_ns",
		"Worker service time of completed raster labelings (queue wait excluded), in nanoseconds (log2 buckets).",
		[]histSeries{{h: &e.metrics.jobHist}})
	series := make([]histSeries, 0, phaseCount)
	for i := range e.metrics.phaseHist {
		series = append(series, histSeries{labels: `phase="` + phaseNames[i] + `"`, h: &e.metrics.phaseHist[i]})
	}
	writePromHist(w, "phase_duration_ns",
		"Per-request duration of each labeling phase, in nanoseconds (log2 buckets).", series)
}

// promMetric is one metric of the ccserve_* text exposition.
type promMetric struct {
	kind, name, help string
	v                int64
}

// writeProm renders metrics in the Prometheus text exposition format under
// the ccserve_ prefix — HELP and TYPE for every metric; shared by the
// engine snapshot and the job census.
func writeProm(w io.Writer, ms []promMetric) (int64, error) {
	var total int64
	for _, m := range ms {
		n, err := fmt.Fprintf(w, "# HELP ccserve_%s %s\n# TYPE ccserve_%s %s\nccserve_%s %d\n",
			m.name, m.help, m.name, m.kind, m.name, m.v)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// promSeries is one labeled sample of a labeled metric family.
type promSeries struct {
	labels string // rendered label list without braces, e.g. `pool="image"`
	v      int64
}

// writePromLabeled renders one labeled counter/gauge family: HELP and TYPE
// once, then one sample line per series.
func writePromLabeled(w io.Writer, kind, name, help string, series []promSeries) (int64, error) {
	var total int64
	n, err := fmt.Fprintf(w, "# HELP ccserve_%s %s\n# TYPE ccserve_%s %s\n", name, help, name, kind)
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, s := range series {
		n, err := fmt.Fprintf(w, "ccserve_%s{%s} %d\n", name, s.labels, s.v)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// WriteTo renders the snapshot in the Prometheus text exposition format.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := writeProm(w, []promMetric{
		{"counter", "requests_total", "Labeling requests received, admitted or not.", s.Requests},
		{"counter", "completed_total", "Labelings that completed successfully.", s.Completed},
		{"counter", "rejected_total", "Requests shed by queue backpressure or engine shutdown.", s.Rejected},
		{"counter", "errors_total", "Labelings that failed (bad options, canceled jobs).", s.Errors},
		{"counter", "canceled_total", "Callers that gave up waiting before their labeling finished.", s.Canceled},
		{"gauge", "in_flight", "Labelings running on workers right now.", s.InFlight},
		{"gauge", "queue_depth", "Requests waiting in the engine queue right now.", s.QueueDepth},
		{"gauge", "workers", "Size of the labeling worker pool.", s.Workers},
		{"counter", "pixels_total", "Pixels labeled, cumulative.", s.Pixels},
		{"counter", "components_total", "Connected components found, cumulative.", s.Components},
		{"counter", "phase_scan_ns_total", "Cumulative scan-phase nanoseconds.", s.ScanNs},
		{"counter", "phase_merge_ns_total", "Cumulative merge-phase nanoseconds.", s.MergeNs},
		{"counter", "phase_flatten_ns_total", "Cumulative flatten-phase nanoseconds.", s.FlattenNs},
		{"counter", "phase_relabel_ns_total", "Cumulative relabel-phase nanoseconds.", s.RelabelNs},
		{"counter", "job_latency_ns_total", "Cumulative wall time of completed raster labelings.", s.JobNs},
		{"gauge", "job_latency_p50_ns", "Approximate median raster service time (log2-bucket upper bound).", s.JobP50Ns},
		{"gauge", "job_latency_p95_ns", "Approximate 95th-percentile raster service time (log2-bucket upper bound).", s.JobP95Ns},
		{"gauge", "job_latency_p99_ns", "Approximate 99th-percentile raster service time (log2-bucket upper bound).", s.JobP99Ns},
		{"counter", "worker_panics_total", "Labeling panics contained by the worker's recover (the job failed, the worker survived, its buffers were quarantined).", s.Panics},
		{"counter", "worker_busy_ns_total", "Cumulative wall time workers spent executing jobs (every kind and outcome); divide the rate by ccserve_workers for pool utilization.", s.BusyNs},
		{"gauge", "workers_busy", "Workers executing a job right now.", s.InFlight},
	})
	total += n
	if err != nil {
		return total, err
	}
	gets := make([]promSeries, 0, poolCount)
	misses := make([]promSeries, 0, poolCount)
	for _, p := range s.Pools {
		label := `pool="` + p.Name + `"`
		gets = append(gets, promSeries{labels: label, v: p.Gets})
		misses = append(misses, promSeries{labels: label, v: p.Misses})
	}
	n, err = writePromLabeled(w, "counter", "pool_get_total",
		"Borrows from the engine's raster/labelmap/scratch sync.Pools.", gets)
	total += n
	if err != nil {
		return total, err
	}
	n, err = writePromLabeled(w, "counter", "pool_miss_total",
		"Pool borrows that had to allocate (gets minus misses = reuse hits).", misses)
	total += n
	return total, err
}

// writeJobsMetrics renders the job store's census — per-state gauges plus
// the cumulative submission, dedup-hit and eviction counters — after the
// engine snapshot.
func writeJobsMetrics(w io.Writer, c jobs.Counts) (int64, error) {
	return writeProm(w, []promMetric{
		{"gauge", "jobs_queued", "Async jobs waiting for a worker.", c.Queued},
		{"gauge", "jobs_running", "Async jobs running right now.", c.Running},
		{"gauge", "jobs_done", "Finished async jobs whose results are retained.", c.Done},
		{"gauge", "jobs_failed", "Failed async jobs retained for inspection.", c.Failed},
		{"gauge", "jobs_canceled", "Canceled async jobs (client timeout, job timeout or server drain) retained for inspection.", c.Canceled},
		{"gauge", "jobs_result_bytes", "Estimated memory pinned by retained job results.", c.ResultBytes},
		{"gauge", "jobs_store_mem_bytes", "Estimated resident memory held by the job store (entry overhead plus in-RAM result payloads); equals ccserve_jobs_result_bytes, split out for symmetry with the disk gauge.", c.ResultBytes},
		{"gauge", "jobs_store_disk_bytes", "Bytes the durable job store holds on disk (result and pending-input blobs); 0 on the memory backend.", c.DiskBytes},
		{"counter", "jobs_submitted_total", "Async jobs created (dedup hits excluded).", c.Submitted},
		{"counter", "jobs_dedup_hits_total", "Submissions answered by an existing identical job.", c.DedupHits},
		{"counter", "jobs_evicted_total", "Jobs evicted by TTL or the result-byte cap.", c.Evicted},
		{"counter", "jobs_spilled_total", "Result payloads the durable store spilled from RAM to disk under the result-byte cap.", c.Spilled},
		{"counter", "jobs_recovered_total", "Jobs resubmitted to the engine during startup recovery.", c.Recovered},
		{"counter", "jobs_recovery_canceled_total", "Journaled jobs canceled during startup recovery (input lost or engine refused).", c.RecoveryCanceled},
		{"counter", "jobs_journal_errors_total", "Durable job-journal append failures (write or fsync); nonzero means the journal has diverged and restart recovery may lose or resurrect jobs. 0 on the memory backend.", c.JournalErrors},
	})
}
