package service

import (
	"fmt"
	"io"
	"sync/atomic"
)

// metrics is the engine's live counter set. Everything is atomic so the hot
// path never takes a lock to account a request.
type metrics struct {
	requests   atomic.Int64 // Label calls, admitted or not
	completed  atomic.Int64 // successful labelings
	rejected   atomic.Int64 // ErrQueueFull + ErrClosed rejections
	errors     atomic.Int64 // failed labelings (bad options, canceled jobs)
	canceled   atomic.Int64 // callers that gave up waiting (ctx done)
	inFlight   atomic.Int64 // labelings running right now
	pixels     atomic.Int64 // pixels labeled, cumulative
	components atomic.Int64 // components found, cumulative
	scanNs     atomic.Int64 // cumulative PhaseTimes.Scan
	mergeNs    atomic.Int64 // cumulative PhaseTimes.Merge
	flattenNs  atomic.Int64 // cumulative PhaseTimes.Flatten
	relabelNs  atomic.Int64 // cumulative PhaseTimes.Relabel
}

// Snapshot is a point-in-time copy of the engine's counters.
type Snapshot struct {
	Requests   int64 `json:"requests"`
	Completed  int64 `json:"completed"`
	Rejected   int64 `json:"rejected"`
	Errors     int64 `json:"errors"`
	Canceled   int64 `json:"canceled"`
	InFlight   int64 `json:"in_flight"`
	QueueDepth int64 `json:"queue_depth"`
	Workers    int64 `json:"workers"`
	Pixels     int64 `json:"pixels"`
	Components int64 `json:"components"`
	ScanNs     int64 `json:"scan_ns"`
	MergeNs    int64 `json:"merge_ns"`
	FlattenNs  int64 `json:"flatten_ns"`
	RelabelNs  int64 `json:"relabel_ns"`
}

// Snapshot copies the current counters. QueueDepth is the number of requests
// waiting in the queue at the instant of the call.
func (e *Engine) Snapshot() Snapshot {
	return Snapshot{
		Requests:   e.metrics.requests.Load(),
		Completed:  e.metrics.completed.Load(),
		Rejected:   e.metrics.rejected.Load(),
		Errors:     e.metrics.errors.Load(),
		Canceled:   e.metrics.canceled.Load(),
		InFlight:   e.metrics.inFlight.Load(),
		QueueDepth: int64(len(e.queue)),
		Workers:    int64(e.workers),
		Pixels:     e.metrics.pixels.Load(),
		Components: e.metrics.components.Load(),
		ScanNs:     e.metrics.scanNs.Load(),
		MergeNs:    e.metrics.mergeNs.Load(),
		FlattenNs:  e.metrics.flattenNs.Load(),
		RelabelNs:  e.metrics.relabelNs.Load(),
	}
}

// WriteTo renders the snapshot in the Prometheus text exposition format.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	var total int64
	emit := func(kind, name string, v int64) error {
		n, err := fmt.Fprintf(w, "# TYPE ccserve_%s %s\nccserve_%s %d\n", name, kind, name, v)
		total += int64(n)
		return err
	}
	for _, m := range []struct {
		kind, name string
		v          int64
	}{
		{"counter", "requests_total", s.Requests},
		{"counter", "completed_total", s.Completed},
		{"counter", "rejected_total", s.Rejected},
		{"counter", "errors_total", s.Errors},
		{"counter", "canceled_total", s.Canceled},
		{"gauge", "in_flight", s.InFlight},
		{"gauge", "queue_depth", s.QueueDepth},
		{"gauge", "workers", s.Workers},
		{"counter", "pixels_total", s.Pixels},
		{"counter", "components_total", s.Components},
		{"counter", "phase_scan_ns_total", s.ScanNs},
		{"counter", "phase_merge_ns_total", s.MergeNs},
		{"counter", "phase_flatten_ns_total", s.FlattenNs},
		{"counter", "phase_relabel_ns_total", s.RelabelNs},
	} {
		if err := emit(m.kind, m.name, m.v); err != nil {
			return total, err
		}
	}
	return total, nil
}
