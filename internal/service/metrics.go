package service

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/jobs"
)

// metrics is the engine's live counter set. Everything is atomic so the hot
// path never takes a lock to account a request.
type metrics struct {
	requests   atomic.Int64 // Label calls, admitted or not
	completed  atomic.Int64 // successful labelings
	rejected   atomic.Int64 // ErrQueueFull + ErrClosed rejections
	errors     atomic.Int64 // failed labelings (bad options, canceled jobs)
	canceled   atomic.Int64 // callers that gave up waiting (ctx done)
	inFlight   atomic.Int64 // labelings running right now
	pixels     atomic.Int64 // pixels labeled, cumulative
	components atomic.Int64 // components found, cumulative
	scanNs     atomic.Int64 // cumulative PhaseTimes.Scan
	mergeNs    atomic.Int64 // cumulative PhaseTimes.Merge
	flattenNs  atomic.Int64 // cumulative PhaseTimes.Flatten
	relabelNs  atomic.Int64 // cumulative PhaseTimes.Relabel
	jobNs      atomic.Int64 // cumulative wall time of completed raster jobs (RetryAfter's mean)
	jobsTimed  atomic.Int64 // completions accounted in jobNs (stream jobs excluded)
}

// Snapshot is a point-in-time copy of the engine's counters.
type Snapshot struct {
	Requests   int64 `json:"requests"`
	Completed  int64 `json:"completed"`
	Rejected   int64 `json:"rejected"`
	Errors     int64 `json:"errors"`
	Canceled   int64 `json:"canceled"`
	InFlight   int64 `json:"in_flight"`
	QueueDepth int64 `json:"queue_depth"`
	Workers    int64 `json:"workers"`
	Pixels     int64 `json:"pixels"`
	Components int64 `json:"components"`
	ScanNs     int64 `json:"scan_ns"`
	MergeNs    int64 `json:"merge_ns"`
	FlattenNs  int64 `json:"flatten_ns"`
	RelabelNs  int64 `json:"relabel_ns"`
	JobNs      int64 `json:"job_ns"`
}

// Snapshot copies the current counters. QueueDepth is the number of requests
// waiting in the queue at the instant of the call.
func (e *Engine) Snapshot() Snapshot {
	return Snapshot{
		Requests:   e.metrics.requests.Load(),
		Completed:  e.metrics.completed.Load(),
		Rejected:   e.metrics.rejected.Load(),
		Errors:     e.metrics.errors.Load(),
		Canceled:   e.metrics.canceled.Load(),
		InFlight:   e.metrics.inFlight.Load(),
		QueueDepth: int64(len(e.queue)),
		Workers:    int64(e.workers),
		Pixels:     e.metrics.pixels.Load(),
		Components: e.metrics.components.Load(),
		ScanNs:     e.metrics.scanNs.Load(),
		MergeNs:    e.metrics.mergeNs.Load(),
		FlattenNs:  e.metrics.flattenNs.Load(),
		RelabelNs:  e.metrics.relabelNs.Load(),
		JobNs:      e.metrics.jobNs.Load(),
	}
}

// promMetric is one line pair of the ccserve_* text exposition.
type promMetric struct {
	kind, name string
	v          int64
}

// writeProm renders metrics in the Prometheus text exposition format under
// the ccserve_ prefix; shared by the engine snapshot and the job census.
func writeProm(w io.Writer, ms []promMetric) (int64, error) {
	var total int64
	for _, m := range ms {
		n, err := fmt.Fprintf(w, "# TYPE ccserve_%s %s\nccserve_%s %d\n", m.name, m.kind, m.name, m.v)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// WriteTo renders the snapshot in the Prometheus text exposition format.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	return writeProm(w, []promMetric{
		{"counter", "requests_total", s.Requests},
		{"counter", "completed_total", s.Completed},
		{"counter", "rejected_total", s.Rejected},
		{"counter", "errors_total", s.Errors},
		{"counter", "canceled_total", s.Canceled},
		{"gauge", "in_flight", s.InFlight},
		{"gauge", "queue_depth", s.QueueDepth},
		{"gauge", "workers", s.Workers},
		{"counter", "pixels_total", s.Pixels},
		{"counter", "components_total", s.Components},
		{"counter", "phase_scan_ns_total", s.ScanNs},
		{"counter", "phase_merge_ns_total", s.MergeNs},
		{"counter", "phase_flatten_ns_total", s.FlattenNs},
		{"counter", "phase_relabel_ns_total", s.RelabelNs},
		{"counter", "job_latency_ns_total", s.JobNs},
	})
}

// writeJobsMetrics renders the job store's census — per-state gauges plus
// the cumulative submission, dedup-hit and eviction counters — after the
// engine snapshot.
func writeJobsMetrics(w io.Writer, c jobs.Counts) (int64, error) {
	return writeProm(w, []promMetric{
		{"gauge", "jobs_queued", c.Queued},
		{"gauge", "jobs_running", c.Running},
		{"gauge", "jobs_done", c.Done},
		{"gauge", "jobs_failed", c.Failed},
		{"gauge", "jobs_result_bytes", c.ResultBytes},
		{"counter", "jobs_submitted_total", c.Submitted},
		{"counter", "jobs_dedup_hits_total", c.DedupHits},
		{"counter", "jobs_evicted_total", c.Evicted},
	})
}
