package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	paremsp "repro"
	"repro/internal/band"
	"repro/internal/faultinject"
	"repro/internal/jobs"
	"repro/internal/pnm"
	"repro/internal/stream"
)

// Media types the service speaks.
const (
	ctPBM  = "image/x-portable-bitmap"
	ctPGM  = "image/x-portable-graymap"
	ctPNM  = "image/x-portable-anymap"
	ctPNG  = "image/png"
	ctCCL  = "application/x-ccl"
	ctJSON = "application/json"
)

// HandlerConfig configures NewHandler.
type HandlerConfig struct {
	// MaxImageBytes caps the request body; larger uploads get 413.
	// 0 selects 64 MiB.
	MaxImageBytes int64
	// Level is the default binarization threshold for grayscale input
	// (im2bw semantics); requests override it with ?level=. 0 selects the
	// paper's 0.5.
	Level float64
	// DefaultAlgorithm is used when a request does not pin ?alg=. Empty
	// selects the library default (paremsp). Selecting a bit-packed
	// algorithm (bremsp/pbremsp) makes raw-PBM uploads take the packed
	// ingest path by default.
	DefaultAlgorithm paremsp.Algorithm
	// Jobs, when non-nil, enables the asynchronous job API (POST /v1/jobs
	// and the /v1/jobs/{id} endpoints) backed by this store. The handler
	// does not own the store; the caller closes it.
	Jobs *jobs.Store
	// Obs carries the request-observability state: the structured logger,
	// the per-endpoint latency histograms, and the trace ring that
	// NewDebugHandler dumps. nil creates a private, non-logging Obs (the
	// histograms and /metrics exposition still work).
	Obs *Obs
	// RequestTimeout bounds a synchronous labeling request's labeling (queue
	// wait + compute + result wait). A request that exceeds it has its job
	// canceled and answers 504. 0 disables the server-side timeout.
	RequestTimeout time.Duration
	// JobTimeout bounds an async job from submission to terminal state; a
	// job that exceeds it is canceled (terminal state "canceled"). 0
	// disables the timeout.
	JobTimeout time.Duration
	// BaseContext, when non-nil, parents every async job's context so that
	// canceling it (server drain/shutdown) cancels queued and running jobs.
	// nil selects context.Background(), restoring fire-and-forget jobs.
	BaseContext context.Context
}

// Handler is the service's HTTP surface — an http.Handler that additionally
// exposes the drain lifecycle (StartDrain/Draining). Create it with
// NewHandler.
type Handler struct {
	engine     *Engine
	maxBytes   int64
	level      float64
	defaultAlg paremsp.Algorithm
	jobs       *jobs.Store
	obs        *Obs
	reqTimeout time.Duration
	jobTimeout time.Duration
	baseCtx    context.Context

	// draining makes admission endpoints answer 503 and flips /healthz to
	// "draining" once StartDrain is called.
	draining atomic.Bool

	// root is the observability-wrapped mux ServeHTTP delegates to.
	root http.Handler
}

// NewHandler wraps an Engine in the service's HTTP surface: POST /v1/label,
// POST /v1/stats, GET /healthz, GET /metrics, and — when cfg.Jobs is set —
// the asynchronous job API POST /v1/jobs, GET /v1/jobs/{id},
// GET /v1/jobs/{id}/result, DELETE /v1/jobs/{id}. Every route runs inside
// the observability middleware: responses carry X-Request-ID (inbound IDs
// are honored, otherwise one is minted), access lines go to the Obs
// logger, per-endpoint latency feeds the /metrics histograms, and each
// request leaves a phase trace in the Obs ring buffer.
func NewHandler(e *Engine, cfg HandlerConfig) *Handler {
	h := &Handler{
		engine:     e,
		maxBytes:   cfg.MaxImageBytes,
		level:      cfg.Level,
		defaultAlg: cfg.DefaultAlgorithm,
		jobs:       cfg.Jobs,
		obs:        cfg.Obs,
		reqTimeout: cfg.RequestTimeout,
		jobTimeout: cfg.JobTimeout,
		baseCtx:    cfg.BaseContext,
	}
	if h.maxBytes <= 0 {
		h.maxBytes = 64 << 20
	}
	if h.level == 0 {
		h.level = 0.5
	}
	if h.obs == nil {
		h.obs = NewObs(nil, 0)
	}
	if h.baseCtx == nil {
		h.baseCtx = context.Background()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/label", h.label)
	mux.HandleFunc("POST /v1/stats", h.stats)
	mux.HandleFunc("POST /v1/volume", h.volume)
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /metrics", h.metrics)
	if h.jobs != nil {
		mux.HandleFunc("POST /v1/jobs", h.jobsSubmit)
		mux.HandleFunc("GET /v1/jobs/{id}", h.jobStatus)
		mux.HandleFunc("GET /v1/jobs/{id}/result", h.jobResult)
		mux.HandleFunc("DELETE /v1/jobs/{id}", h.jobDelete)
	}
	h.root = h.obs.middleware(mux)
	return h
}

// ServeHTTP dispatches to the handler's observability-wrapped mux.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.root.ServeHTTP(w, r) }

// StartDrain flips the handler into drain mode: admission endpoints
// (/v1/label, /v1/stats, POST /v1/jobs) answer 503 with a Retry-After hint
// and /healthz reports "draining" with 503 so load balancers take the
// instance out of rotation. Read endpoints (job status/result, /metrics)
// keep working so in-flight outcomes stay fetchable during the drain
// window. Idempotent; there is no undo.
func (h *Handler) StartDrain() { h.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (h *Handler) Draining() bool { return h.draining.Load() }

// rejectDraining answers an admission attempt made during drain.
func (h *Handler) rejectDraining(w http.ResponseWriter) {
	secs := int(math.Ceil(h.engine.RetryAfter().Seconds()))
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusServiceUnavailable, codeUnavailable, "server is draining")
}

// labelCtx derives the context a synchronous labeling runs under: the
// request's, deadline-bounded when RequestTimeout is configured.
func (h *Handler) labelCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if h.reqTimeout > 0 {
		return context.WithTimeout(r.Context(), h.reqTimeout)
	}
	return r.Context(), func() {}
}

func (h *Handler) healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if h.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	h.engine.Snapshot().WriteTo(w)
	h.engine.writeHistograms(w)
	h.obs.writeRequestHists(w)
	writeRuntimeMetrics(w)
	if h.jobs != nil {
		writeJobsMetrics(w, h.jobs.Counts())
	}
}

// rejectBusy writes the 429 for a full queue, with a Retry-After derived
// from the engine's observed mean job latency and current backlog instead
// of a fixed guess.
func (h *Handler) rejectBusy(w http.ResponseWriter, err error) {
	secs := int(math.Ceil(h.engine.RetryAfter().Seconds()))
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests, codeQueueFull, err.Error())
}

// writeEngineError maps an engine/labeling error to its envelope: 429 on
// backpressure (Retry-After set), 503 on shutdown or client cancellation,
// 500 for a contained worker panic, 504 for a lapsed deadline, 413 for a
// body that ran over the cap mid-stream, 400 for option-validation
// failures. Shared by every endpoint that runs work on the engine.
func (h *Handler) writeEngineError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	switch {
	case errors.Is(err, ErrQueueFull):
		h.rejectBusy(w, err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, codeUnavailable, err.Error())
	case errors.Is(err, ErrWorkerPanic):
		// Contained worker panic: this one job failed, the server is
		// healthy — a retry may well succeed.
		writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		// The -request-timeout budget (or the client's own deadline)
		// lapsed; the labeling was canceled at its next poll point.
		writeError(w, http.StatusGatewayTimeout, codeTimeout, err.Error())
	case errors.Is(err, context.Canceled):
		// Client gave up; nothing useful to write.
		writeError(w, http.StatusServiceUnavailable, codeUnavailable, err.Error())
	case errors.As(err, &tooBig):
		// The body ran over the cap mid-stream, after labeling began.
		writeError(w, http.StatusRequestEntityTooLarge, codePayloadTooLarge,
			fmt.Sprintf("image exceeds %d bytes", tooBig.Limit))
	default:
		// Engine labeling errors are option-validation failures
		// (unknown algorithm, unsupported connectivity or mode).
		writeError(w, http.StatusBadRequest, codeInvalidArgument, err.Error())
	}
}

// labelResponse is the JSON body of a successful /v1/label request.
type labelResponse struct {
	Width         int             `json:"width"`
	Height        int             `json:"height"`
	NumComponents int             `json:"num_components"`
	Density       float64         `json:"density"`
	Phases        *phasesJSON     `json:"phases,omitempty"`
	Components    []componentJSON `json:"components,omitempty"`
	Contours      []contourJSON   `json:"contours,omitempty"`
}

type phasesJSON struct {
	ScanNs    int64 `json:"scan_ns"`
	MergeNs   int64 `json:"merge_ns"`
	FlattenNs int64 `json:"flatten_ns"`
	RelabelNs int64 `json:"relabel_ns"`
}

type componentJSON struct {
	Label    int32      `json:"label"`
	Area     int        `json:"area"`
	BBox     [4]int     `json:"bbox"` // min_x, min_y, max_x, max_y (inclusive)
	Centroid [2]float64 `json:"centroid"`
}

// contourJSON is one component's outer boundary polyline: clockwise
// boundary pixels as [x, y] pairs (Moore tracing, 8-connectivity).
type contourJSON struct {
	Label  int32    `json:"label"`
	Points [][2]int `json:"points"`
}

func contoursJSONFrom(cs []paremsp.Contour) []contourJSON {
	out := make([]contourJSON, len(cs))
	for i, c := range cs {
		pts := make([][2]int, len(c.Points))
		for j, p := range c.Points {
			pts[j] = [2]int{p.X, p.Y}
		}
		out[i] = contourJSON{Label: int32(c.Label), Points: pts}
	}
	return out
}

// label handles POST /v1/label for the 2-D modes. mode=binary (default)
// takes PBM/PGM/PNG and binarizes grayscale at ?level=; mode=gray and
// mode=gray-delta take PGM/PNG and label the gray levels directly
// (exact-value components, or delta-tolerant ones). ?contours=true
// additionally traces each component's outer boundary into the JSON
// response (JSON only). mode=volume is served by POST /v1/volume.
func (h *Handler) label(w http.ResponseWriter, r *http.Request) {
	if h.draining.Load() {
		h.rejectDraining(w)
		return
	}
	spec, aerr := h.parseSpec(r)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	if spec.mode == paremsp.ModeVolume {
		writeError(w, http.StatusBadRequest, codeInvalidArgument,
			"mode volume is served by POST /v1/volume")
		return
	}
	accept, ok := negotiateAccept(r.Header.Get("Accept"))
	if !ok {
		writeError(w, http.StatusNotAcceptable, codeNotAcceptable,
			fmt.Sprintf("unsupported Accept %q (want %s, %s, %s or %s)",
				r.Header.Get("Accept"), ctJSON, ctPGM, ctPNG, ctCCL))
		return
	}
	if spec.contours && accept != ctJSON {
		writeError(w, http.StatusNotAcceptable, codeNotAcceptable,
			fmt.Sprintf("contours are %s only", ctJSON))
		return
	}
	tr := traceFrom(r.Context())
	if tr != nil {
		tr.Alg = string(spec.opt.Algorithm)
		if tr.Alg == "" {
			tr.Alg = string(paremsp.AlgPAREMSP)
		}
	}

	body := bufio.NewReader(http.MaxBytesReader(w, r.Body, h.maxBytes))
	kind, err := bodyKind(r.Header.Get("Content-Type"), body)
	if err != nil {
		writeError(w, http.StatusUnsupportedMediaType, codeUnsupportedMedia, err.Error())
		return
	}

	gray := spec.mode == paremsp.ModeGray || spec.mode == paremsp.ModeGrayDelta
	decodeStart := time.Now()
	var (
		d    decoded
		gimg *paremsp.GrayImage
	)
	if gray {
		gimg, err = h.decodeGray(kind, body)
		if err == nil {
			// Gray labeling has no background: every pixel belongs to a
			// component, so the foreground density is definitionally 1.
			d = decoded{width: gimg.Width, height: gimg.Height, density: 1}
		}
	} else {
		d, err = h.decodeRaster(kind, body, spec.opt.Algorithm, spec.level)
	}
	if err != nil {
		h.decodeError(w, err)
		return
	}
	width, height, density := d.width, d.height, d.density
	if tr != nil {
		tr.DecodeNs = time.Since(decodeStart).Nanoseconds()
		tr.Pixels = int64(width) * int64(height)
	}
	ctx, cancel := h.labelCtx(r)
	defer cancel()
	var res *paremsp.Result
	switch {
	case gray:
		res, err = h.engine.LabelGray(ctx, gimg, spec.opt)
	case d.bm != nil:
		res, err = h.engine.LabelBitmap(ctx, d.bm, spec.opt)
	default:
		res, err = h.engine.Label(ctx, d.img, spec.opt)
	}
	if err != nil {
		h.writeEngineError(w, err)
		return
	}
	defer h.engine.PutResult(res)

	var comps []paremsp.Component
	if spec.components && accept == ctJSON {
		comps = paremsp.ComponentsOf(res.Labels)
	}
	var contours []paremsp.Contour
	if spec.contours {
		// Tracing runs on the request goroutine under the request context:
		// it is output shaping, not labeling, so it does not hold a worker.
		contours, err = paremsp.TraceContoursCtx(ctx, res.Labels, res.NumComponents)
		if err != nil {
			h.writeEngineError(w, err)
			return
		}
	}
	encodeStart := time.Now()
	if tr != nil {
		tr.setPhases(res.Phases.Scan, res.Phases.Merge, res.Phases.Flatten, res.Phases.Relabel)
		// Server-Timing must precede the body; encode time therefore lives
		// only in the /debug/requests trace record.
		w.Header().Set("Server-Timing", string(appendServerTiming(nil, tr, encodeStart.Sub(tr.Start))))
	}
	writeLabeling(w, accept, width, height, density, res.Labels, res.NumComponents, res.Phases, comps, contours)
	if tr != nil {
		tr.EncodeNs = time.Since(encodeStart).Nanoseconds()
	}
}

// writeLabeling renders a finished labeling in the negotiated format; a
// nil comps omits the per-component list from JSON, a nil contours the
// boundary polylines (raster formats carry neither). It is shared by the
// synchronous /v1/label response (which computes comps on demand) and the
// async job result endpoint (which serves them precomputed).
func writeLabeling(w http.ResponseWriter, accept string, width, height int, density float64,
	lm *paremsp.LabelMap, numComponents int, phases paremsp.PhaseTimes, comps []paremsp.Component,
	contours []paremsp.Contour) {
	if d := faultinject.Delay(faultinject.EncodeSlow); d > 0 {
		time.Sleep(d)
	}
	switch accept {
	case ctJSON:
		resp := labelResponse{
			Width:         width,
			Height:        height,
			NumComponents: numComponents,
			Density:       density,
		}
		if phases.Total() > 0 {
			resp.Phases = &phasesJSON{
				ScanNs:    phases.Scan.Nanoseconds(),
				MergeNs:   phases.Merge.Nanoseconds(),
				FlattenNs: phases.Flatten.Nanoseconds(),
				RelabelNs: phases.Relabel.Nanoseconds(),
			}
		}
		if comps != nil {
			resp.Components = make([]componentJSON, len(comps))
			for i, c := range comps {
				resp.Components[i] = componentJSON{
					Label:    c.Label,
					Area:     c.Area,
					BBox:     [4]int{c.MinX, c.MinY, c.MaxX, c.MaxY},
					Centroid: [2]float64{c.CentroidX, c.CentroidY},
				}
			}
		}
		if contours != nil {
			resp.Contours = contoursJSONFrom(contours)
		}
		w.Header().Set("Content-Type", ctJSON)
		json.NewEncoder(w).Encode(resp)
	case ctPGM:
		w.Header().Set("Content-Type", ctPGM)
		paremsp.EncodeLabelsPGM(w, lm)
	case ctPNG:
		w.Header().Set("Content-Type", ctPNG)
		paremsp.EncodeLabelsPNG(w, lm)
	case ctCCL:
		w.Header().Set("Content-Type", ctCCL)
		stream.WriteLabels(w, lm, numComponents)
	}
}

// statsResponse is the JSON body of a successful /v1/stats request.
type statsResponse struct {
	Width         int                  `json:"width"`
	Height        int                  `json:"height"`
	NumComponents int                  `json:"num_components"`
	Density       float64              `json:"density"`
	BandRows      int                  `json:"band_rows"`
	Components    []statsComponentJSON `json:"components"`
}

type statsComponentJSON struct {
	Label    int32      `json:"label"`
	Area     int64      `json:"area"`
	BBox     [4]int     `json:"bbox"` // min_x, min_y, max_x, max_y (inclusive)
	Centroid [2]float64 `json:"centroid"`
	Runs     int64      `json:"runs"`
}

// stats handles POST /v1/stats: the request body (raw PBM P4 or raw PGM P5)
// is streamed through the out-of-core band labeler, so arbitrarily tall
// images — chunked uploads included — are labeled in O(band) memory and
// only their component statistics come back. Query parameters: level
// (binarization threshold for P5), band (band height in rows, 0 = default).
// The response is always JSON; there is no label raster to return.
func (h *Handler) stats(w http.ResponseWriter, r *http.Request) {
	if h.draining.Load() {
		h.rejectDraining(w)
		return
	}
	if accept, ok := negotiateAccept(r.Header.Get("Accept")); !ok || accept != ctJSON {
		writeError(w, http.StatusNotAcceptable, codeNotAcceptable,
			fmt.Sprintf("unsupported Accept %q (stats responses are %s)",
				r.Header.Get("Accept"), ctJSON))
		return
	}
	spec, aerr := h.parseSpec(r)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	if spec.mode != paremsp.ModeBinary {
		writeError(w, http.StatusBadRequest, codeInvalidArgument,
			fmt.Sprintf("stats supports only mode=%s (the band labeler streams binary rasters)", paremsp.ModeBinary))
		return
	}

	decodeStart := time.Now()
	src, err := pnm.NewBandReader(http.MaxBytesReader(w, r.Body, h.maxBytes), spec.level)
	if err != nil {
		h.decodeError(w, err)
		return
	}
	tr := traceFrom(r.Context())
	if tr != nil {
		// Only the header parse happens up front — band decoding is
		// interleaved with labeling on the worker — so DecodeNs here is
		// the header cost and the streamed pass lands in queue+total.
		tr.DecodeNs = time.Since(decodeStart).Nanoseconds()
		tr.Alg = "band"
		tr.Pixels = int64(src.Width()) * int64(src.Height())
	}
	ctx, cancel := h.labelCtx(r)
	defer cancel()
	res, err := h.engine.Stats(ctx, src, band.Options{BandRows: spec.bandRows, Ctx: ctx})
	if err != nil {
		h.writeEngineError(w, err)
		return
	}

	w.Header().Set("Content-Type", ctJSON)
	json.NewEncoder(w).Encode(statsResponseFrom(res, spec.bandRows))
}

// volumeResponse is the JSON body of a successful /v1/volume request (and
// of a done volume job's result). The labeled voxel grid itself is not
// returned — at W*H*D*4 bytes it dwarfs the input — only the component
// summary; ?components=false drops the per-component voxel counts too.
type volumeResponse struct {
	Width          int   `json:"width"`
	Height         int   `json:"height"`
	Depth          int   `json:"depth"`
	NumComponents  int   `json:"num_components"`
	ComponentSizes []int `json:"component_sizes,omitempty"`
}

// volume handles POST /v1/volume: the body is a stack of concatenated
// raw-PGM (P5) frames — every frame one z-slice, all with identical
// dimensions — binarized at ?level= and labeled as one 3-D volume with
// 26-connectivity, slab-parallel per the paper's chunked scheme. The
// response is always JSON.
func (h *Handler) volume(w http.ResponseWriter, r *http.Request) {
	if h.draining.Load() {
		h.rejectDraining(w)
		return
	}
	if accept, ok := negotiateAccept(r.Header.Get("Accept")); !ok || accept != ctJSON {
		writeError(w, http.StatusNotAcceptable, codeNotAcceptable,
			fmt.Sprintf("unsupported Accept %q (volume responses are %s)",
				r.Header.Get("Accept"), ctJSON))
		return
	}
	spec, aerr := h.parseSpec(r)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	switch spec.mode {
	case paremsp.ModeBinary:
		// mode= absent: the endpoint itself selects the volume workload.
		spec.mode = paremsp.ModeVolume
		spec.opt.Mode = paremsp.ModeVolume
	case paremsp.ModeVolume:
	default:
		writeError(w, http.StatusBadRequest, codeInvalidArgument,
			fmt.Sprintf("mode %s is served by POST /v1/label", spec.mode))
		return
	}

	decodeStart := time.Now()
	vol := h.engine.GetVolume()
	if err := pnm.DecodeVolumeInto(http.MaxBytesReader(w, r.Body, h.maxBytes), spec.level, vol); err != nil {
		h.engine.PutVolume(vol)
		h.decodeError(w, err)
		return
	}
	width, height, depth := vol.W, vol.H, vol.D
	tr := traceFrom(r.Context())
	if tr != nil {
		tr.DecodeNs = time.Since(decodeStart).Nanoseconds()
		tr.Alg = string(spec.opt.Algorithm)
		if tr.Alg == "" {
			tr.Alg = string(paremsp.AlgPAREMSP)
		}
		tr.Pixels = int64(width) * int64(height) * int64(depth)
	}
	ctx, cancel := h.labelCtx(r)
	defer cancel()
	res, err := h.engine.LabelVolume(ctx, vol, spec.opt)
	if err != nil {
		h.writeEngineError(w, err)
		return
	}
	defer h.engine.PutVolumeResult(res)

	resp := volumeResponse{
		Width: width, Height: height, Depth: depth,
		NumComponents: res.NumComponents,
	}
	if spec.components {
		resp.ComponentSizes = paremsp.VolumeComponentSizes(res.Labels, res.NumComponents)
	}
	w.Header().Set("Content-Type", ctJSON)
	json.NewEncoder(w).Encode(resp)
}

// statsResponseFrom builds the JSON body for a streaming-stats result; it
// is shared by /v1/stats and the async job result endpoint.
func statsResponseFrom(res *band.Result, bandRows int) statsResponse {
	resp := statsResponse{
		Width:         res.Width,
		Height:        res.Height,
		NumComponents: res.NumComponents,
		BandRows:      bandRows,
		Components:    make([]statsComponentJSON, len(res.Components)),
	}
	if resp.BandRows == 0 {
		resp.BandRows = band.DefaultBandRows
	}
	if px := int64(res.Width) * int64(res.Height); px > 0 {
		resp.Density = float64(res.ForegroundPixels) / float64(px)
	}
	for i, c := range res.Components {
		resp.Components[i] = statsComponentJSON{
			Label:    c.Label,
			Area:     c.Area,
			BBox:     [4]int{c.MinX, c.MinY, c.MaxX, c.MaxY},
			Centroid: [2]float64{c.CentroidX, c.CentroidY},
			Runs:     c.Runs,
		}
	}
	return resp
}

// decoded is one request image decoded into a pooled raster: exactly one
// of img and bm is non-nil. The engine consumes the raster (it may return
// it to the pool after a cancellation while a worker still reads it), so
// the dimensions and density are captured here, before any engine call.
type decoded struct {
	img           *paremsp.Image
	bm            *paremsp.Bitmap
	width, height int
	density       float64
}

// decodeRaster decodes an image body of the given kind ("pnm" or "png")
// into a pooled raster. Raw PBM paired with a bit-packed algorithm takes
// the packed ingest path — P4 rows are already 1 bit per pixel, so the
// byte raster is never materialized; everything else decodes into a byte
// Image. On error the borrowed raster is already back in its pool. Shared
// by the synchronous label path and the async job submit path.
func (h *Handler) decodeRaster(kind string, body *bufio.Reader, alg paremsp.Algorithm, level float64) (decoded, error) {
	if faultinject.Fire(faultinject.DecodeError) {
		return decoded{}, errors.New("faultinject: decode-error")
	}
	if kind == "pnm" && bitPackedAlg(alg) && sniffP4(body) {
		bm := h.engine.GetBitmap()
		if err := pnm.DecodePBMBitmapInto(body, bm); err != nil {
			h.engine.PutBitmap(bm)
			return decoded{}, err
		}
		return decoded{bm: bm, width: bm.Width, height: bm.Height, density: bm.Density()}, nil
	}
	img := h.engine.GetImage()
	var err error
	switch kind {
	case "pnm":
		err = pnm.DecodeInto(body, level, img)
	case "png":
		err = pnm.DecodePNGInto(body, level, img)
	}
	if err != nil {
		h.engine.PutImage(img)
		return decoded{}, err
	}
	return decoded{img: img, width: img.Width, height: img.Height, density: img.Density()}, nil
}

// decodeGray decodes a gray-mode body ("pnm" = PGM, or PNG) into a pooled
// gray raster; maxval scaling maps every input onto the 0..255 intensity
// domain the gray labelers compare. On error the raster is already back in
// its pool. Shared by the synchronous label path and the async gray jobs.
func (h *Handler) decodeGray(kind string, body *bufio.Reader) (*paremsp.GrayImage, error) {
	if faultinject.Fire(faultinject.DecodeError) {
		return nil, errors.New("faultinject: decode-error")
	}
	g := h.engine.GetGray()
	var err error
	switch kind {
	case "pnm":
		err = pnm.DecodeGrayInto(body, g)
	case "png":
		err = pnm.DecodePNGGrayInto(body, g)
	}
	if err != nil {
		h.engine.PutGray(g)
		return nil, err
	}
	return g, nil
}

// decodeError writes the HTTP failure for a request-body decode error:
// 413 when the body ran over the size cap, 400 otherwise.
func (h *Handler) decodeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge, codePayloadTooLarge,
			fmt.Sprintf("image exceeds %d bytes", tooBig.Limit))
		return
	}
	writeError(w, http.StatusBadRequest, codeInvalidArgument, err.Error())
}

// bitPackedAlg reports whether alg consumes a packed bitmap natively.
func bitPackedAlg(alg paremsp.Algorithm) bool {
	return alg == paremsp.AlgBREMSP || alg == paremsp.AlgPBREMSP
}

// sniffP4 reports whether the body starts with the raw-PBM magic.
func sniffP4(body *bufio.Reader) bool {
	magic, err := body.Peek(2)
	return err == nil && magic[0] == 'P' && magic[1] == '4'
}

// bodyKind resolves the request body codec ("pnm" or "png") from the
// Content-Type, falling back to magic-number sniffing for an absent or
// generic type.
func bodyKind(contentType string, body *bufio.Reader) (string, error) {
	ct := contentType
	if ct != "" {
		if parsed, _, err := mime.ParseMediaType(ct); err == nil {
			ct = parsed
		}
	}
	switch ct {
	case ctPBM, ctPGM, ctPNM:
		return "pnm", nil
	case ctPNG:
		return "png", nil
	case "", "application/octet-stream", "application/x-www-form-urlencoded":
		// The last is curl's --data-binary default; nobody posts real form
		// data here, so sniff it like an untyped upload.
		magic, err := body.Peek(2)
		if err != nil {
			return "", fmt.Errorf("cannot sniff image format: %v", err)
		}
		if magic[0] == 0x89 {
			return "png", nil
		}
		if magic[0] == 'P' && magic[1] >= '1' && magic[1] <= '5' {
			return "pnm", nil
		}
		return "", fmt.Errorf("unrecognized image format (magic %q)", magic)
	default:
		return "", fmt.Errorf("unsupported Content-Type %q (want %s, %s or %s)", contentType, ctPBM, ctPGM, ctPNG)
	}
}

// negotiateAccept picks the response format from an Accept header: the first
// supported media range wins, an empty header (or */*) selects JSON, and a
// header offering nothing the service speaks reports !ok (406).
func negotiateAccept(header string) (string, bool) {
	if strings.TrimSpace(header) == "" {
		return ctJSON, true
	}
	for _, part := range strings.Split(header, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		switch mt {
		case ctJSON, "application/*", "*/*":
			return ctJSON, true
		case ctPGM, ctPNM:
			return ctPGM, true
		case ctPNG, "image/*":
			return ctPNG, true
		case ctCCL:
			return ctCCL, true
		}
	}
	return "", false
}
