package service

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
)

// hist is a lock-free latency histogram with log₂-spaced buckets: bucket i
// counts observations whose value has an i-bit binary representation, i.e.
// v in [2^(i-1), 2^i - 1] (bucket 0 holds exact zeros). Everything is an
// atomic add, so observe costs two uncontended atomic ops and never
// allocates — cheap enough for the engine's per-job hot path. The last
// bucket is the overflow catch-all, exposed only through the +Inf line of
// the Prometheus exposition, so finite bucket bounds never lie about
// values beyond them.
//
// Values are nanoseconds throughout the service; the highest finite bound
// (2^38 - 1 ns ≈ 4.6 min) comfortably covers any request the HTTP timeouts
// would let live.
type hist struct {
	sum     atomic.Int64
	buckets [histSlots]atomic.Int64
}

const (
	// histSlots is the bucket array size; the final slot is overflow.
	histSlots = 40
	// histFinite is the number of finite buckets (indices 0..histFinite-1);
	// observations needing more bits land in the overflow slot.
	histFinite = histSlots - 1
)

// bucketBound is bucket i's inclusive upper bound (2^i - 1; 0 for i = 0).
func bucketBound(i int) int64 { return int64(1)<<uint(i) - 1 }

// observe accounts one value. Negative values (a clock step) clamp to 0.
func (h *hist) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i > histFinite {
		i = histFinite
	}
	h.buckets[i].Add(1)
	h.sum.Add(ns)
}

// snapshot copies the buckets and derives the total count. The copy is not
// atomic across buckets — a scrape racing observes may see a count one off
// from sum — which Prometheus tolerates and quantile estimation shrugs at.
func (h *hist) snapshot() (b [histSlots]int64, count int64) {
	for i := range h.buckets {
		b[i] = h.buckets[i].Load()
		count += b[i]
	}
	return b, count
}

// quantile approximates the q-th quantile (q in [0, 1]) as the upper bound
// of the bucket where the cumulative count crosses q·total — exact within
// the 2× bucket resolution. An empty histogram reports 0; overflow-bucket
// hits report the first out-of-range power of two.
func (h *hist) quantile(q float64) int64 {
	b, count := h.snapshot()
	if count == 0 {
		return 0
	}
	target := int64(q*float64(count) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range b {
		cum += b[i]
		if cum >= target {
			if i >= histFinite {
				return int64(1) << uint(histFinite)
			}
			return bucketBound(i)
		}
	}
	return int64(1) << uint(histFinite)
}

// histSeries is one labeled series of a histogram family: labels is the
// rendered Prometheus label list without braces (e.g. `endpoint="label"`),
// empty for an unlabeled family.
type histSeries struct {
	labels string
	h      *hist
}

// writePromHist renders one histogram family — HELP and TYPE once, then
// every series' cumulative buckets, sum and count — in the Prometheus text
// exposition under the ccserve_ prefix. Empty trailing buckets are elided
// (the +Inf bucket carries the total regardless), keeping scrapes compact.
func writePromHist(w io.Writer, name, help string, series []histSeries) (int64, error) {
	var total int64
	n, err := fmt.Fprintf(w, "# HELP ccserve_%s %s\n# TYPE ccserve_%s histogram\n", name, help, name)
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, s := range series {
		b, count := s.h.snapshot()
		last := -1
		for i := 0; i < histFinite; i++ {
			if b[i] != 0 {
				last = i
			}
		}
		sep := ""
		if s.labels != "" {
			sep = ","
		}
		var cum int64
		for i := 0; i <= last; i++ {
			cum += b[i]
			n, err = fmt.Fprintf(w, "ccserve_%s_bucket{%s%sle=\"%d\"} %d\n", name, s.labels, sep, bucketBound(i), cum)
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
		n, err = fmt.Fprintf(w, "ccserve_%s_bucket{%s%sle=\"+Inf\"} %d\n", name, s.labels, sep, count)
		total += int64(n)
		if err != nil {
			return total, err
		}
		curly := ""
		if s.labels != "" {
			curly = "{" + s.labels + "}"
		}
		n, err = fmt.Fprintf(w, "ccserve_%s_sum%s %d\nccserve_%s_count%s %d\n", name, curly, s.sumLoad(), name, curly, count)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// sumLoad reads the series' sum; split out so the fmt call above stays on
// one line per exposition row.
func (s histSeries) sumLoad() int64 { return s.h.sum.Load() }
