package service

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	paremsp "repro"
	"repro/internal/jobs"
)

// fetchResultBytes GETs a done job's result in the default format and
// returns the payload.
func fetchResultBytes(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s = %d: %s", id, resp.StatusCode, b)
	}
	return b
}

// TestServiceRecoveryAfterReopen drives the full restart contract at the
// service layer against the durable backend: a done job's result survives
// a store reopen byte-identical, and a job that was running when the
// first process "died" (its terminal transition never reached the
// journal) replays as queued, is resubmitted by RecoverJobs through the
// normal admission path, and completes under the second handler.
func TestServiceRecoveryAfterReopen(t *testing.T) {
	dir := t.TempDir()
	jopt := jobs.Options{TTL: time.Hour, Backend: jobs.BackendSQLite, Dir: dir}

	// First life. The handler gets a cancelable base context standing in
	// for the process lifetime.
	store1, err := jobs.Open(jopt)
	if err != nil {
		t.Fatal(err)
	}
	eng1 := NewEngine(Config{Workers: 1, Threads: 1})
	base1, cancel1 := context.WithCancel(context.Background())
	srv1 := httptest.NewServer(NewHandler(eng1, HandlerConfig{Jobs: store1, BaseContext: base1}))

	done := submitJobs(t, srv1.URL+"/v1/jobs", ctPBM, pbmBody(t, testImage(t))).Jobs[0]
	pollJob(t, srv1.URL, done.ID, string(jobs.StateDone))
	want := fetchResultBytes(t, srv1.URL, done.ID)

	// Park the next run on its context so a second job is mid-run at the
	// "crash".
	started := make(chan struct{}, 1)
	var parked atomic.Int32
	eng1.run = func(ctx context.Context, img *paremsp.Image, dst *paremsp.LabelMap, sc *paremsp.Scratch, opt paremsp.Options) (*paremsp.Result, error) {
		if parked.Add(1) == 1 {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return paremsp.LabelIntoCtx(ctx, img, dst, sc, opt)
	}
	other, err := paremsp.ParseImage("#.#\n.#.\n#.#")
	if err != nil {
		t.Fatal(err)
	}
	interrupted := submitJobs(t, srv1.URL+"/v1/jobs", ctPBM, pbmBody(t, other)).Jobs[0]
	<-started

	// Crash: close the journal first, so the Cancel the unwinding job
	// goroutine lands after base-context cancellation never reaches disk —
	// exactly the state a SIGKILL leaves behind. Only then tear down the
	// first server and engine.
	store1.Close()
	cancel1()
	srv1.Close()
	eng1.Close()

	// Second life: reopen the store, build a fresh engine and handler, and
	// recover before serving.
	store2, err := jobs.Open(jopt)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	eng2 := NewEngine(Config{Workers: 1, Threads: 1})
	h2 := NewHandler(eng2, HandlerConfig{Jobs: store2})
	srv2 := httptest.NewServer(h2)
	t.Cleanup(func() {
		srv2.Close()
		eng2.Close()
		store2.Close()
	})

	requeued, canceled := h2.RecoverJobs()
	if requeued != 1 || canceled != 0 {
		t.Fatalf("RecoverJobs = (%d, %d), want (1, 0)", requeued, canceled)
	}

	// The pre-crash done job must be served byte-identical without
	// recomputation.
	if got := fetchResultBytes(t, srv2.URL, done.ID); !bytes.Equal(got, want) {
		t.Fatalf("recovered result differs: %d bytes vs %d before the restart", len(got), len(want))
	}
	// The interrupted job runs to done on the new engine and its result is
	// fetchable; the ID is stable because the key is content-derived.
	pollJob(t, srv2.URL, interrupted.ID, string(jobs.StateDone))
	fetchResultBytes(t, srv2.URL, interrupted.ID)

	if c := store2.Counts(); c.Recovered != 1 || c.RecoveryCanceled != 0 {
		t.Fatalf("recovery counters = (%d, %d), want (1, 0)", c.Recovered, c.RecoveryCanceled)
	}
}
