package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"slices"
	"strconv"

	paremsp "repro"
)

// The service's one request-parsing path. Every /v1/* admission endpoint —
// /v1/label, /v1/stats, /v1/volume, POST /v1/jobs — parses its query
// string through parseSpec, so a parameter means the same thing, takes the
// same values, and fails with the same error code and wording everywhere.
// Adding a parameter here adds it to every endpoint at once.

// Error codes of the structured error envelope. Every non-2xx response on
// a /v1/* endpoint is {"error":{"code":..., "message":...}}; the code is
// the stable, machine-matchable vocabulary (messages may be reworded).
const (
	codeInvalidArgument  = "invalid_argument"       // 400: bad parameter or body
	codeUnsupportedMedia = "unsupported_media_type" // 415: Content-Type not spoken
	codeNotAcceptable    = "not_acceptable"         // 406: Accept not satisfiable
	codePayloadTooLarge  = "payload_too_large"      // 413: body over -max-bytes
	codeQueueFull        = "queue_full"             // 429: backpressure shed
	codeUnavailable      = "unavailable"            // 503: draining, closed, canceled
	codeTimeout          = "timeout"                // 504: request/job deadline lapsed
	codeInternal         = "internal"               // 500: contained worker panic, store fault
	codeNotFound         = "not_found"              // 404: unknown job
)

// errorJSON is the wire form of the error envelope.
type errorJSON struct {
	Error errorBodyJSON `json:"error"`
}

type errorBodyJSON struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeError writes the structured error envelope. Headers that must
// accompany the status (Retry-After on 429/503) are set by the caller
// before this call.
func writeError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", ctJSON)
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorJSON{Error: errorBodyJSON{Code: code, Message: message}})
}

// apiError is a request-validation failure carrying its HTTP status and
// envelope code, so parse errors surface identically on every endpoint.
type apiError struct {
	status  int
	code    string
	message string
}

func (e *apiError) Error() string { return e.message }

func badParam(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: codeInvalidArgument, message: fmt.Sprintf(format, args...)}
}

// writeAPIError renders an apiError (or any error, defaulting to 400
// invalid_argument) as the envelope.
func writeAPIError(w http.ResponseWriter, err error) {
	if ae, ok := err.(*apiError); ok {
		writeError(w, ae.status, ae.code, ae.message)
		return
	}
	writeError(w, http.StatusBadRequest, codeInvalidArgument, err.Error())
}

// requestSpec is the parsed, validated form of a /v1/* request's query
// parameters: the workload mode, the labeling options, and the
// endpoint-shared knobs. One parser, one validation path, one error
// vocabulary — every admission endpoint builds exactly this.
type requestSpec struct {
	// mode is the workload: binary (default), gray, gray-delta, or volume.
	mode paremsp.Mode
	// opt carries Algorithm/Threads/Connectivity/Mode/Delta, ready to hand
	// to the engine.
	opt paremsp.Options
	// level is the binarization threshold for grayscale input (binary and
	// volume modes; gray modes label intensities directly and ignore it).
	level float64
	// bandRows is ?band= (stats jobs; 0 selects the default band height).
	bandRows int
	// components is ?components= (include per-component statistics in JSON
	// responses; default true). The pre-rename ?stats= is accepted as a
	// deprecated alias for one release and logged at warn.
	components bool
	// contours is ?contours= on /v1/label: also trace each component's
	// outer boundary polyline into the JSON response.
	contours bool
}

// parseSpec parses and validates the query parameters shared by the
// admission endpoints. Connectivity is validated against the mode's
// neighborhood (binary: 4/8, gray: 8, volume: 26); 0 always selects the
// mode's default.
func (h *Handler) parseSpec(r *http.Request) (requestSpec, *apiError) {
	q := r.URL.Query()
	spec := requestSpec{mode: paremsp.ModeBinary, level: h.level, components: true}
	spec.opt.Algorithm = h.defaultAlg

	if v := q.Get("mode"); v != "" {
		m := paremsp.Mode(v)
		if !slices.Contains(paremsp.Modes(), m) {
			return spec, badParam("unknown mode %q (want one of %v)", v, paremsp.Modes())
		}
		spec.mode = m
	}
	spec.opt.Mode = spec.mode

	if v := q.Get("alg"); v != "" {
		a := paremsp.Algorithm(v)
		if !slices.Contains(paremsp.Algorithms(), a) {
			return spec, badParam("unknown algorithm %q", v)
		}
		spec.opt.Algorithm = a
	}
	if v := q.Get("threads"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return spec, badParam("invalid threads %q", v)
		}
		spec.opt.Threads = n
	}
	if v := q.Get("conn"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || !connValidFor(spec.mode, n) {
			return spec, badParam("invalid conn %q (mode %s wants %s)", v, spec.mode, connWant(spec.mode))
		}
		spec.opt.Connectivity = n
	}
	if v := q.Get("level"); v != "" {
		lv, err := strconv.ParseFloat(v, 64)
		if err != nil || lv < 0 || lv >= 1 {
			return spec, badParam("invalid level %q (want [0, 1))", v)
		}
		spec.level = lv
	}
	if v := q.Get("delta"); v != "" {
		if spec.mode != paremsp.ModeGrayDelta {
			return spec, badParam("delta requires mode=%s", paremsp.ModeGrayDelta)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n > 255 {
			return spec, badParam("invalid delta %q (want 0..255)", v)
		}
		spec.opt.Delta = uint8(n)
	}
	if v := q.Get("band"); v != "" {
		n, err := parseBandRows(v)
		if err != nil {
			return spec, badParam("%s", err.Error())
		}
		spec.bandRows = n
	}
	if v := q.Get("components"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return spec, badParam("invalid components %q", v)
		}
		spec.components = b
	} else if v := q.Get("stats"); v != "" {
		// Renamed to ?components= (the response field it controls); the old
		// name is honored for one release.
		h.obs.log.Warn("deprecated query parameter", "param", "stats", "use", "components")
		b, err := strconv.ParseBool(v)
		if err != nil {
			return spec, badParam("invalid stats %q", v)
		}
		spec.components = b
	}
	if v := q.Get("contours"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return spec, badParam("invalid contours %q", v)
		}
		spec.contours = b
	}
	return spec, nil
}

// connValidFor reports whether conn is a valid ?conn= for the mode; 0
// (unset) always is and selects the mode's default.
func connValidFor(mode paremsp.Mode, conn int) bool {
	switch mode {
	case paremsp.ModeGray, paremsp.ModeGrayDelta:
		return conn == 0 || conn == 8
	case paremsp.ModeVolume:
		return conn == 0 || conn == 26
	default:
		return conn == 4 || conn == 8
	}
}

// connWant words the valid ?conn= values per mode for error messages.
func connWant(mode paremsp.Mode) string {
	switch mode {
	case paremsp.ModeGray, paremsp.ModeGrayDelta:
		return "8"
	case paremsp.ModeVolume:
		return "26"
	default:
		return "4 or 8"
	}
}
