package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"image"
	"image/png"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	paremsp "repro"
	"repro/internal/pnm"
	"repro/internal/stream"
)

// testArt has 5 8-connected components (same fixture as the root API tests).
const testArt = `
	##..#
	##..#
	.....
	#.#.#`

func testImage(t *testing.T) *paremsp.Image {
	t.Helper()
	img, err := paremsp.ParseImage(testArt)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func pbmBody(t *testing.T, img *paremsp.Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := pnm.EncodePBM(&buf, img, true); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func pngBody(t *testing.T, img *paremsp.Image) []byte {
	t.Helper()
	gray := image.NewGray(image.Rect(0, 0, img.Width, img.Height))
	for i, v := range img.Pix {
		if v != 0 {
			gray.Pix[i] = 255 // white = above the 0.5 threshold = foreground
		}
	}
	var buf bytes.Buffer
	if err := png.Encode(&buf, gray); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, ecfg Config, hcfg HandlerConfig) (*Engine, *httptest.Server) {
	t.Helper()
	eng := NewEngine(ecfg)
	srv := httptest.NewServer(NewHandler(eng, hcfg))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return eng, srv
}

func post(t *testing.T, url, contentType, accept string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestLabelJSONFromPBM(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{})
	img := testImage(t)
	resp := post(t, srv.URL+"/v1/label", ctPBM, ctJSON, pbmBody(t, img))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var got labelResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Width != img.Width || got.Height != img.Height {
		t.Fatalf("dims %dx%d, want %dx%d", got.Width, got.Height, img.Width, img.Height)
	}
	if got.NumComponents != 5 {
		t.Fatalf("num_components = %d, want 5", got.NumComponents)
	}
	if len(got.Components) != 5 {
		t.Fatalf("components list has %d entries, want 5", len(got.Components))
	}
	if got.Phases == nil {
		t.Fatal("phases missing for default (paremsp) algorithm")
	}
	var area int
	for _, c := range got.Components {
		area += c.Area
	}
	if area != img.ForegroundCount() {
		t.Fatalf("component areas sum to %d, want %d", area, img.ForegroundCount())
	}
}

func TestLabelJSONFromPNG(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{})
	img := testImage(t)
	resp := post(t, srv.URL+"/v1/label", ctPNG, "", pngBody(t, img))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var got labelResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.NumComponents != 5 {
		t.Fatalf("num_components = %d, want 5", got.NumComponents)
	}
}

func TestLabelSniffsOctetStream(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{})
	img := testImage(t)
	for name, ct := range map[string]string{
		"octet-stream": "application/octet-stream",
		"curl-default": "application/x-www-form-urlencoded",
		"absent":       "",
	} {
		resp := post(t, srv.URL+"/v1/label", ct, "", pbmBody(t, img))
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, b)
		}
	}
	for name, body := range map[string][]byte{"png": pngBody(t, img)} {
		resp := post(t, srv.URL+"/v1/label", "application/octet-stream", "", body)
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, b)
		}
	}
}

func TestLabelAcceptPGM(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{})
	img := testImage(t)
	resp := post(t, srv.URL+"/v1/label", ctPBM, ctPGM, pbmBody(t, img))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ctPGM {
		t.Fatalf("Content-Type = %q, want %q", ct, ctPGM)
	}
	// The PGM palette maps every label to >= 64, so binarizing at a low
	// threshold recovers exactly the foreground mask.
	decoded, err := pnm.Decode(resp.Body, 0.1)
	if err != nil {
		t.Fatalf("response is not a decodable PGM: %v", err)
	}
	if !decoded.Equal(img) {
		t.Fatalf("PGM label-map mask:\n%v\nwant:\n%v", decoded, img)
	}
}

func TestLabelAcceptPNG(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{})
	img := testImage(t)
	resp := post(t, srv.URL+"/v1/label", ctPBM, ctPNG, pbmBody(t, img))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	decoded, err := pnm.DecodePNG(resp.Body, 0.1)
	if err != nil {
		t.Fatalf("response is not a decodable PNG: %v", err)
	}
	if !decoded.Equal(img) {
		t.Fatalf("PNG label-map mask mismatch")
	}
}

func TestLabelAcceptCCL(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{})
	img := testImage(t)
	resp := post(t, srv.URL+"/v1/label", ctPBM, ctCCL, pbmBody(t, img))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	lm, n, err := stream.ReadLabels(resp.Body)
	if err != nil {
		t.Fatalf("response is not a decodable CCL1 stream: %v", err)
	}
	if n != 5 {
		t.Fatalf("CCL1 header reports %d components, want 5", n)
	}
	if err := paremsp.Validate(img, lm, n, true); err != nil {
		t.Fatalf("CCL1 labels are not a valid labeling: %v", err)
	}
}

func TestLabelNotAcceptable(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{})
	resp := post(t, srv.URL+"/v1/label", ctPBM, "text/csv", pbmBody(t, testImage(t)))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotAcceptable {
		t.Fatalf("status %d, want 406", resp.StatusCode)
	}
}

func TestLabelUnsupportedContentType(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{})
	resp := post(t, srv.URL+"/v1/label", "image/tiff", "", []byte("II*\x00"))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("status %d, want 415", resp.StatusCode)
	}
}

func TestLabelBadOptions(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{})
	body := pbmBody(t, testImage(t))
	for _, query := range []string{"?alg=nonsense", "?conn=6", "?threads=-1", "?level=2", "?conn=4"} {
		resp := post(t, srv.URL+"/v1/label"+query, ctPBM, "", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", query, resp.StatusCode)
		}
	}
	// conn=4 works when paired with an algorithm that supports it.
	resp := post(t, srv.URL+"/v1/label?conn=4&alg=floodfill", ctPBM, "", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("conn=4&alg=floodfill: status %d, want 200", resp.StatusCode)
	}
}

func TestLabelOversizedBody(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{MaxImageBytes: 128})
	big := paremsp.NewImage(64, 64) // raw P4 is 8 bytes per row + header
	resp := post(t, srv.URL+"/v1/label", ctPBM, "", pbmBody(t, big))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

// TestQueueFull429 fills the pool (1 worker + 1 queue slot) with blocked
// requests, checks that the next request is shed with 429 while the admitted
// ones complete once unblocked, and that /metrics accounts all of it.
func TestQueueFull429(t *testing.T) {
	eng, srv := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Threads: 1}, HandlerConfig{})
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	eng.run = func(ctx context.Context, img *paremsp.Image, dst *paremsp.LabelMap, sc *paremsp.Scratch, opt paremsp.Options) (*paremsp.Result, error) {
		started <- struct{}{}
		<-block
		return paremsp.LabelInto(img, dst, sc, opt)
	}

	body := pbmBody(t, testImage(t))
	type outcome struct {
		status int
		comps  int
	}
	results := make(chan outcome, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := post(t, srv.URL+"/v1/label", ctPBM, ctJSON, body)
			defer resp.Body.Close()
			var lr labelResponse
			json.NewDecoder(resp.Body).Decode(&lr)
			results <- outcome{resp.StatusCode, lr.NumComponents}
		}()
		if i == 0 {
			// Wait for the worker to pick up the first request so the second
			// deterministically lands in the queue.
			select {
			case <-started:
			case <-time.After(5 * time.Second):
				t.Fatal("worker never started the first request")
			}
		}
	}
	// Wait until the second request occupies the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for len(eng.queue) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	resp := post(t, srv.URL+"/v1/label", ctPBM, "", body)
	rejectedBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429 (%s)", resp.StatusCode, rejectedBody)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}

	close(block)
	wg.Wait()
	close(results)
	for r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("admitted request: status %d, want 200", r.status)
		}
		if r.comps != 5 {
			t.Fatalf("admitted request labeled %d components, want 5", r.comps)
		}
	}

	s := eng.Snapshot()
	if s.Requests != 3 || s.Completed != 2 || s.Rejected != 1 {
		t.Fatalf("snapshot requests/completed/rejected = %d/%d/%d, want 3/2/1",
			s.Requests, s.Completed, s.Rejected)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metricsText, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"ccserve_requests_total 3",
		"ccserve_completed_total 2",
		"ccserve_rejected_total 1",
		"ccserve_workers 1",
	} {
		if !strings.Contains(string(metricsText), want) {
			t.Errorf("/metrics missing %q:\n%s", want, metricsText)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if strings.TrimSpace(string(b)) != "ok" {
		t.Fatalf("body %q, want ok", b)
	}
}

func TestMetricsPhaseTimings(t *testing.T) {
	eng, srv := newTestServer(t, Config{}, HandlerConfig{})
	img := paremsp.NewImage(256, 256)
	for i := range img.Pix {
		img.Pix[i] = uint8(i % 2)
	}
	resp := post(t, srv.URL+"/v1/label?stats=false", ctPBM, "", pbmBody(t, img))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	s := eng.Snapshot()
	if s.Pixels != 256*256 {
		t.Fatalf("pixels = %d, want %d", s.Pixels, 256*256)
	}
	if s.ScanNs <= 0 {
		t.Fatalf("cumulative scan time = %d ns, want > 0", s.ScanNs)
	}
}

func TestEngineClosedRejects(t *testing.T) {
	eng := NewEngine(Config{Workers: 1})
	eng.Close()
	eng.Close() // idempotent
	_, err := eng.Label(context.Background(), testImage(t), paremsp.Options{})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Label after Close: %v, want ErrClosed", err)
	}
	if _, err := eng.SubmitLabel(context.Background(), testImage(t), paremsp.Options{}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitLabel after Close: %v, want ErrClosed", err)
	}
}

// TestEngineSequentialAlgorithms exercises per-request algorithm selection
// through the pool, including buffer reuse across differently sized images.
func TestEngineSequentialAlgorithms(t *testing.T) {
	eng := NewEngine(Config{Workers: 2})
	defer eng.Close()
	small := testImage(t)
	large := paremsp.NewImage(100, 80)
	for i := range large.Pix {
		large.Pix[i] = uint8((i / 7) % 2)
	}
	for _, alg := range paremsp.Algorithms() {
		for _, img := range []*paremsp.Image{small, large, small} {
			// Label consumes its image, so hand it a pooled copy.
			borrowed := eng.GetImage()
			borrowed.Reset(img.Width, img.Height)
			copy(borrowed.Pix, img.Pix)
			res, err := eng.Label(context.Background(), borrowed, paremsp.Options{Algorithm: alg})
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			if err := paremsp.Validate(img, res.Labels, res.NumComponents, true); err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			eng.PutResult(res)
		}
	}
}

func TestLabelConcurrentLoad(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2, QueueDepth: 64, Threads: 1}, HandlerConfig{})
	body := pbmBody(t, testImage(t))
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := post(t, srv.URL+"/v1/label", ctPBM, ctJSON, body)
			defer resp.Body.Close()
			var lr labelResponse
			if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK || lr.NumComponents != 5 {
				errs <- fmt.Errorf("status %d, components %d", resp.StatusCode, lr.NumComponents)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestLabelBitPackedFastPath posts raw PBM with the bit-packed algorithms
// selected: the handler decodes straight into a pooled Bitmap and the engine
// labels it without ever materializing the byte raster. Responses must match
// the byte-raster path.
func TestLabelBitPackedFastPath(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{})
	img := testImage(t)
	body := pbmBody(t, img)
	for _, alg := range []string{"bremsp", "pbremsp"} {
		resp := post(t, srv.URL+"/v1/label?alg="+alg, ctPBM, ctJSON, body)
		var got labelResponse
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", alg, resp.StatusCode)
		}
		if got.NumComponents != 5 || got.Width != img.Width || got.Height != img.Height {
			t.Fatalf("%s: got %+v", alg, got)
		}
		if got.Density == 0 {
			t.Fatalf("%s: density not computed from the bitmap", alg)
		}
		if alg == "pbremsp" && got.Phases == nil {
			t.Fatal("pbremsp: phase times missing")
		}
	}
}

// TestLabelBitPackedPoolReuse cycles differently-sized P4 uploads through the
// pooled bitmaps to catch stale-word leaks across Reset.
func TestLabelBitPackedPoolReuse(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1}, HandlerConfig{})
	big := paremsp.NewImage(130, 40) // 3 words per row
	for i := range big.Pix {
		big.Pix[i] = 1
	}
	small := testImage(t)
	for i, img := range []*paremsp.Image{big, small, big, small} {
		want := 5
		if img == big {
			want = 1
		}
		resp := post(t, srv.URL+"/v1/label?alg=pbremsp", ctPBM, ctJSON, pbmBody(t, img))
		var got labelResponse
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got.NumComponents != want {
			t.Fatalf("request %d: num_components = %d, want %d", i, got.NumComponents, want)
		}
	}
}

// TestLabelBitPackedFallsBackForNonP4 checks that a bit-packed algorithm
// still labels plain-PBM and PNG bodies through the byte-raster decode.
func TestLabelBitPackedFallsBackForNonP4(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{})
	img := testImage(t)
	var plain bytes.Buffer
	if err := pnm.EncodePBM(&plain, img, false); err != nil {
		t.Fatal(err)
	}
	for name, tc := range map[string]struct {
		ct   string
		body []byte
	}{
		"plain-pbm": {ctPBM, plain.Bytes()},
		"png":       {ctPNG, pngBody(t, img)},
	} {
		resp := post(t, srv.URL+"/v1/label?alg=bremsp", tc.ct, ctJSON, tc.body)
		var got labelResponse
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || got.NumComponents != 5 {
			t.Fatalf("%s: status %d, num_components %d", name, resp.StatusCode, got.NumComponents)
		}
	}
}

// TestLabelDefaultAlgorithmConfig checks that HandlerConfig.DefaultAlgorithm
// applies when ?alg= is absent and that ?alg= still overrides it.
func TestLabelDefaultAlgorithmConfig(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{DefaultAlgorithm: paremsp.AlgPBREMSP})
	img := testImage(t)
	resp := post(t, srv.URL+"/v1/label", ctPBM, ctJSON, pbmBody(t, img))
	var got labelResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.NumComponents != 5 || got.Phases == nil {
		t.Fatalf("default pbremsp: %+v", got)
	}
	resp = post(t, srv.URL+"/v1/label?alg=floodfill", ctPBM, ctJSON, pbmBody(t, img))
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.NumComponents != 5 {
		t.Fatalf("alg override: num_components = %d, want 5", got.NumComponents)
	}
}

// TestLabelBitPackedTruncatedP4 checks the packed decode path's error
// handling: a truncated raw PBM is a 400, and the borrowed bitmap goes back
// to the pool (no worker ever sees it).
func TestLabelBitPackedTruncatedP4(t *testing.T) {
	_, srv := newTestServer(t, Config{}, HandlerConfig{})
	resp := post(t, srv.URL+"/v1/label?alg=bremsp", ctPBM, ctJSON, []byte("P4\n64 64\nxx"))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}
