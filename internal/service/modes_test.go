package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	paremsp "repro"
	"repro/internal/faultinject"
	"repro/internal/jobs"
	"repro/internal/pnm"
)

// grayBody builds a deterministic pseudo-random raw-PGM (P5) gray raster.
func grayBody(t *testing.T, w, h int, seed int64) ([]byte, *paremsp.GrayImage) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	img := paremsp.NewGrayImage(w, h)
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(4) * 60)
	}
	var buf bytes.Buffer
	if err := pnm.EncodeGrayPGM(&buf, img); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), img
}

// volumeBody builds d concatenated P5 frames — the /v1/volume wire format —
// and the volume they binarize to at level 0.5.
func volumeBody(t *testing.T, w, h, d int, seed int64) ([]byte, *paremsp.Volume) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vol := paremsp.NewVolume(w, h, d)
	var buf bytes.Buffer
	for z := 0; z < d; z++ {
		frame := paremsp.NewGrayImage(w, h)
		for i := range frame.Pix {
			if rng.Intn(2) == 1 {
				frame.Pix[i] = 255
				vol.Vox[z*w*h+i] = 1
			}
		}
		if err := pnm.EncodeGrayPGM(&buf, frame); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes(), vol
}

// envelopeOf decodes and closes an error response, asserting the expected
// status and envelope code; it returns the message.
func envelopeOf(t *testing.T, resp *http.Response, wantStatus int, wantCode string) string {
	t.Helper()
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("status = %d (%s), want %d", resp.StatusCode, raw, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ctJSON {
		t.Fatalf("error Content-Type = %q, want %q (body %s)", ct, ctJSON, raw)
	}
	var env errorJSON
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("error body %q is not the envelope: %v", raw, err)
	}
	if env.Error.Code != wantCode {
		t.Fatalf("error code = %q (%s), want %q", env.Error.Code, raw, wantCode)
	}
	if env.Error.Message == "" {
		t.Fatal("error envelope has an empty message")
	}
	return env.Error.Message
}

// TestSpecValidationUniform pins the one-parser contract: a bad parameter
// fails with the same status, envelope code, and message on /v1/label,
// /v1/stats, /v1/volume and POST /v1/jobs.
func TestSpecValidationUniform(t *testing.T) {
	_, store, srv := newJobsServer(t, Config{Workers: 1}, jobs.Options{})
	_ = store
	endpoints := []string{"/v1/label", "/v1/stats", "/v1/volume", "/v1/jobs"}
	cases := []struct {
		name  string
		query string
	}{
		{"bad-alg", "?alg=nope"},
		{"bad-conn", "?conn=5"},
		{"level-high", "?level=1.5"},
		{"level-negative", "?level=-0.1"},
		{"bad-threads", "?threads=-2"},
		{"bad-mode", "?mode=tesseract"},
		{"delta-without-mode", "?delta=9"},
		{"bad-band", "?band=-1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msgs := map[string]string{}
			for _, ep := range endpoints {
				resp := post(t, srv.URL+ep+tc.query, ctPBM, ctJSON, pbmBody(t, testImage(t)))
				msgs[ep] = envelopeOf(t, resp, http.StatusBadRequest, codeInvalidArgument)
			}
			for _, ep := range endpoints[1:] {
				if msgs[ep] != msgs[endpoints[0]] {
					t.Fatalf("message differs between %s (%q) and %s (%q)",
						endpoints[0], msgs[endpoints[0]], ep, msgs[ep])
				}
			}
		})
	}
}

// TestErrorEnvelopeStatusPaths drives one request down each error path and
// asserts the envelope shape (and that 429/503 keep their Retry-After).
func TestErrorEnvelopeStatusPaths(t *testing.T) {
	t.Run("415-unsupported-media", func(t *testing.T) {
		_, srv := newTestServer(t, Config{Workers: 1}, HandlerConfig{})
		resp := post(t, srv.URL+"/v1/label", "text/csv", ctJSON, []byte("a,b"))
		envelopeOf(t, resp, http.StatusUnsupportedMediaType, codeUnsupportedMedia)
	})
	t.Run("406-bad-accept", func(t *testing.T) {
		_, srv := newTestServer(t, Config{Workers: 1}, HandlerConfig{})
		resp := post(t, srv.URL+"/v1/label", ctPBM, "text/csv", pbmBody(t, testImage(t)))
		envelopeOf(t, resp, http.StatusNotAcceptable, codeNotAcceptable)
	})
	t.Run("413-payload-too-large", func(t *testing.T) {
		_, srv := newTestServer(t, Config{Workers: 1}, HandlerConfig{MaxImageBytes: 4})
		resp := post(t, srv.URL+"/v1/label", ctPBM, ctJSON, pbmBody(t, testImage(t)))
		envelopeOf(t, resp, http.StatusRequestEntityTooLarge, codePayloadTooLarge)
	})
	t.Run("400-bad-body", func(t *testing.T) {
		_, srv := newTestServer(t, Config{Workers: 1}, HandlerConfig{})
		resp := post(t, srv.URL+"/v1/label", ctPBM, ctJSON, []byte("P1 garbage"))
		envelopeOf(t, resp, http.StatusBadRequest, codeInvalidArgument)
	})
	t.Run("404-unknown-job", func(t *testing.T) {
		_, _, srv := newJobsServer(t, Config{Workers: 1}, jobs.Options{})
		resp, err := http.Get(srv.URL + "/v1/jobs/deadbeef")
		if err != nil {
			t.Fatal(err)
		}
		envelopeOf(t, resp, http.StatusNotFound, codeNotFound)
	})
	t.Run("504-timeout", func(t *testing.T) {
		eng, srv := newTestServer(t, Config{Workers: 1, Threads: 1},
			HandlerConfig{RequestTimeout: 50 * time.Millisecond})
		started := make(chan struct{}, 1)
		blockFirstRun(eng, started)
		resp := post(t, srv.URL+"/v1/label", ctPBM, ctJSON, pbmBody(t, testImage(t)))
		envelopeOf(t, resp, http.StatusGatewayTimeout, codeTimeout)
	})
	t.Run("503-draining-keeps-retry-after", func(t *testing.T) {
		eng, srv := newTestServer(t, Config{Workers: 1}, HandlerConfig{})
		_ = eng
		resp := post(t, srv.URL+"/healthz", "", "", nil) // warm; then drain
		resp.Body.Close()
		h := srv.Config.Handler.(*Handler)
		h.StartDrain()
		resp = post(t, srv.URL+"/v1/label", ctPBM, ctJSON, pbmBody(t, testImage(t)))
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("draining 503 lost its Retry-After header")
		}
		envelopeOf(t, resp, http.StatusServiceUnavailable, codeUnavailable)
	})
	t.Run("429-queue-full-keeps-retry-after", func(t *testing.T) {
		defer faultinject.Reset()
		faultinject.Arm(faultinject.QueueFull, faultinject.Spec{Every: 1})
		_, srv := newTestServer(t, Config{Workers: 1}, HandlerConfig{})
		resp := post(t, srv.URL+"/v1/label", ctPBM, ctJSON, pbmBody(t, testImage(t)))
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 lost its Retry-After header")
		}
		envelopeOf(t, resp, http.StatusTooManyRequests, codeQueueFull)
	})
}

// TestLabelGrayHTTPDifferential: /v1/label?mode=gray must agree with the
// library's gray labeler — component count over JSON, the label raster
// over PGM — and mode=gray-delta with the delta labeler.
func TestLabelGrayHTTPDifferential(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2}, HandlerConfig{})
	body, img := grayBody(t, 67, 43, 21)
	_, wantN := paremsp.LabelGray(img)

	t.Run("json", func(t *testing.T) {
		resp := post(t, srv.URL+"/v1/label?mode=gray", ctPGM, ctJSON, body)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("status = %d: %s", resp.StatusCode, raw)
		}
		var out labelResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if out.NumComponents != wantN {
			t.Fatalf("num_components = %d, want %d (library)", out.NumComponents, wantN)
		}
		if out.Width != img.Width || out.Height != img.Height {
			t.Fatalf("dims %dx%d, want %dx%d", out.Width, out.Height, img.Width, img.Height)
		}
		if len(out.Components) != wantN {
			t.Fatalf("components len %d, want %d", len(out.Components), wantN)
		}
	})

	t.Run("pgm-raster", func(t *testing.T) {
		resp := post(t, srv.URL+"/v1/label?mode=gray", ctPGM, ctPGM, body)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("status = %d: %s", resp.StatusCode, raw)
		}
		got := paremsp.NewGrayImage(0, 0)
		if err := pnm.DecodeGrayInto(resp.Body, got); err != nil {
			t.Fatal(err)
		}
		if got.Width != img.Width || got.Height != img.Height {
			t.Fatalf("raster dims %dx%d, want %dx%d", got.Width, got.Height, img.Width, img.Height)
		}
		// Gray mode has no background: every pixel is labeled, so the
		// palette never emits the background byte 0.
		for i, v := range got.Pix {
			if v == 0 {
				t.Fatalf("pixel %d rendered as background; gray mode labels every pixel", i)
			}
		}
	})

	t.Run("gray-delta", func(t *testing.T) {
		_, wantDN := paremsp.LabelGrayDelta(img, 60)
		resp := post(t, srv.URL+"/v1/label?mode=gray-delta&delta=60", ctPGM, ctJSON, body)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("status = %d: %s", resp.StatusCode, raw)
		}
		var out labelResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if out.NumComponents != wantDN {
			t.Fatalf("delta num_components = %d, want %d (library)", out.NumComponents, wantDN)
		}
	})

	t.Run("volume-mode-rejected", func(t *testing.T) {
		resp := post(t, srv.URL+"/v1/label?mode=volume", ctPGM, ctJSON, body)
		msg := envelopeOf(t, resp, http.StatusBadRequest, codeInvalidArgument)
		if !strings.Contains(msg, "/v1/volume") {
			t.Fatalf("message %q does not point at /v1/volume", msg)
		}
	})
}

// TestVolumeHTTPDifferential: POST /v1/volume must agree with the library's
// 3-D labeler on the same decoded stack.
func TestVolumeHTTPDifferential(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2}, HandlerConfig{})
	body, vol := volumeBody(t, 19, 11, 7, 22)
	wantLv, wantN := paremsp.LabelVolume(vol)
	wantSizes := paremsp.VolumeComponentSizes(wantLv, wantN)

	resp := post(t, srv.URL+"/v1/volume", ctPGM, ctJSON, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var out volumeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Width != vol.W || out.Height != vol.H || out.Depth != vol.D {
		t.Fatalf("dims %dx%dx%d, want %dx%dx%d", out.Width, out.Height, out.Depth, vol.W, vol.H, vol.D)
	}
	if out.NumComponents != wantN {
		t.Fatalf("num_components = %d, want %d (library)", out.NumComponents, wantN)
	}
	if len(out.ComponentSizes) != len(wantSizes) {
		t.Fatalf("component_sizes len %d, want %d", len(out.ComponentSizes), len(wantSizes))
	}
	for i := range wantSizes {
		if out.ComponentSizes[i] != wantSizes[i] {
			t.Fatalf("component_sizes[%d] = %d, want %d", i, out.ComponentSizes[i], wantSizes[i])
		}
	}

	t.Run("components-false", func(t *testing.T) {
		resp := post(t, srv.URL+"/v1/volume?components=false", ctPGM, ctJSON, body)
		defer resp.Body.Close()
		var out volumeResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if out.ComponentSizes != nil {
			t.Fatal("components=false still returned component_sizes")
		}
	})
}

// TestContoursHTTPDifferential: ?contours=true must return exactly the
// polylines the library traces on the same labeling.
func TestContoursHTTPDifferential(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2}, HandlerConfig{})
	img := testImage(t)
	res, err := paremsp.Label(img, paremsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := paremsp.TraceContours(res.Labels, res.NumComponents)

	resp := post(t, srv.URL+"/v1/label?contours=true", ctPBM, ctJSON, pbmBody(t, img))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var out labelResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Contours) != len(want) {
		t.Fatalf("contours len %d, want %d", len(out.Contours), len(want))
	}
	for i, c := range want {
		if out.Contours[i].Label != int32(c.Label) {
			t.Fatalf("contour %d label %d, want %d", i, out.Contours[i].Label, c.Label)
		}
		if len(out.Contours[i].Points) != len(c.Points) {
			t.Fatalf("contour %d has %d points, want %d", i, len(out.Contours[i].Points), len(c.Points))
		}
		for j, p := range c.Points {
			if out.Contours[i].Points[j] != [2]int{p.X, p.Y} {
				t.Fatalf("contour %d point %d = %v, want %v", i, j, out.Contours[i].Points[j], p)
			}
		}
	}

	t.Run("contours-json-only", func(t *testing.T) {
		resp := post(t, srv.URL+"/v1/label?contours=true", ctPBM, ctPGM, pbmBody(t, img))
		envelopeOf(t, resp, http.StatusNotAcceptable, codeNotAcceptable)
	})
}

// TestDeprecatedStatsAlias: ?stats= (renamed to ?components=) is honored
// for one release — identical behavior, logged at warn.
func TestDeprecatedStatsAlias(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1}, HandlerConfig{})
	for _, q := range []string{"?stats=false", "?components=false"} {
		resp := post(t, srv.URL+"/v1/label"+q, ctPBM, ctJSON, pbmBody(t, testImage(t)))
		var out labelResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if out.Components != nil {
			t.Fatalf("%s still returned components", q)
		}
	}
}

// TestEngineGrayCancel: a gray labeling canceled mid-run returns the
// context error and releases its (single) worker; the pooled gray buffers
// must produce a correct labeling on the next call.
func TestEngineGrayCancel(t *testing.T) {
	eng := NewEngine(Config{Workers: 1, Threads: 1})
	defer eng.Close()
	var calls atomic.Int32
	started := make(chan struct{}, 1)
	eng.runGray = func(ctx context.Context, img *paremsp.GrayImage, dst *paremsp.LabelMap, sc *paremsp.Scratch, opt paremsp.Options) (*paremsp.Result, error) {
		if calls.Add(1) == 1 {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return paremsp.LabelGrayIntoCtx(ctx, img, dst, sc, opt)
	}

	mkGray := func(seed int64) *paremsp.GrayImage {
		g := eng.GetGray()
		_, src := grayBody(t, 31, 17, seed)
		g.Reset(src.Width, src.Height)
		copy(g.Pix, src.Pix)
		return g
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := eng.LabelGray(ctx, mkGray(31), paremsp.Options{Mode: paremsp.ModeGray})
		errCh <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("LabelGray after cancel: err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("LabelGray did not return after cancellation")
	}

	_, src := grayBody(t, 31, 17, 32)
	wantLm, wantN := paremsp.LabelGray(src)
	g := eng.GetGray()
	g.Reset(src.Width, src.Height)
	copy(g.Pix, src.Pix)
	res, err := eng.LabelGray(context.Background(), g, paremsp.Options{Mode: paremsp.ModeGray})
	if err != nil {
		t.Fatalf("follow-up LabelGray: %v", err)
	}
	if res.NumComponents != wantN {
		t.Fatalf("follow-up NumComponents = %d, want %d", res.NumComponents, wantN)
	}
	if err := paremsp.Equivalent(wantLm, res.Labels); err != nil {
		t.Fatalf("follow-up labeling wrong (stale pooled state?): %v", err)
	}
	eng.PutResult(res)

	// Pre-canceled: rejected on the worker's dead-context path, input
	// reclaimed, error is the context's.
	dead, dcancel := context.WithCancel(context.Background())
	dcancel()
	if _, err := eng.LabelGray(dead, mkGray(33), paremsp.Options{Mode: paremsp.ModeGray}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled LabelGray: err = %v, want context.Canceled", err)
	}
}

// TestEngineVolumeCancel: same contract for the 3-D path, including the
// pooled LabelVolumeMap.
func TestEngineVolumeCancel(t *testing.T) {
	eng := NewEngine(Config{Workers: 1, Threads: 1})
	defer eng.Close()
	var calls atomic.Int32
	started := make(chan struct{}, 1)
	eng.runVol = func(ctx context.Context, vol *paremsp.Volume, dst *paremsp.LabelVolumeMap, sc *paremsp.Scratch, opt paremsp.Options) (*paremsp.VolumeResult, error) {
		if calls.Add(1) == 1 {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return paremsp.LabelVolumeIntoCtx(ctx, vol, dst, sc, opt)
	}

	mkVol := func(seed int64) *paremsp.Volume {
		v := eng.GetVolume()
		_, src := volumeBody(t, 9, 7, 5, seed)
		v.Reset(src.W, src.H, src.D)
		copy(v.Vox, src.Vox)
		return v
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := eng.LabelVolume(ctx, mkVol(41), paremsp.Options{Mode: paremsp.ModeVolume})
		errCh <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("LabelVolume after cancel: err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("LabelVolume did not return after cancellation")
	}

	_, src := volumeBody(t, 9, 7, 5, 42)
	_, wantN := paremsp.LabelVolume(src)
	v := eng.GetVolume()
	v.Reset(src.W, src.H, src.D)
	copy(v.Vox, src.Vox)
	res, err := eng.LabelVolume(context.Background(), v, paremsp.Options{Mode: paremsp.ModeVolume})
	if err != nil {
		t.Fatalf("follow-up LabelVolume: %v", err)
	}
	if res.NumComponents != wantN {
		t.Fatalf("follow-up NumComponents = %d, want %d", res.NumComponents, wantN)
	}
	eng.PutVolumeResult(res)

	dead, dcancel := context.WithCancel(context.Background())
	dcancel()
	if _, err := eng.LabelVolume(dead, mkVol(43), paremsp.Options{Mode: paremsp.ModeVolume}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled LabelVolume: err = %v, want context.Canceled", err)
	}
}

// waitJobDone polls a job's status until it reaches done (or fails).
func waitJobDone(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var j jobJSON
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch j.State {
		case "done":
			return
		case "failed", "canceled":
			t.Fatalf("job %s reached state %s: %s", id, j.State, j.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, j.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobModesDistinctAndDedup: one body submitted under different modes
// creates distinct jobs; resubmitting under the same mode dedups. Runs
// against whichever store backend CCSERVE_TEST_JOB_STORE selects.
func TestJobModesDistinctAndDedup(t *testing.T) {
	_, _, srv := newJobsServer(t, Config{Workers: 2}, jobs.Options{})
	body, _ := grayBody(t, 23, 19, 51)

	ids := map[string]string{}
	for _, q := range []string{"", "?kind=gray", "?mode=gray-delta&delta=40", "?kind=stats", "?kind=contours"} {
		out := submitJobs(t, srv.URL+"/v1/jobs"+q, ctPGM, body)
		if out.Jobs[0].Dedup {
			t.Fatalf("first submission %q dedup'd", q)
		}
		for prev, id := range ids {
			if id == out.Jobs[0].ID {
				t.Fatalf("submissions %q and %q share job %s", q, prev, id)
			}
		}
		ids[q] = out.Jobs[0].ID
	}

	// Same body, same mode → same job, dedup'd.
	for _, q := range []string{"?kind=gray", "?mode=gray-delta&delta=40"} {
		out := submitJobs(t, srv.URL+"/v1/jobs"+q, ctPGM, body)
		if !out.Jobs[0].Dedup || out.Jobs[0].ID != ids[q] {
			t.Fatalf("resubmission %q: dedup=%v id=%s, want dedup of %s", q, out.Jobs[0].Dedup, out.Jobs[0].ID, ids[q])
		}
	}
	// A different delta is a different job.
	out := submitJobs(t, srv.URL+"/v1/jobs?mode=gray-delta&delta=41", ctPGM, body)
	if out.Jobs[0].ID == ids["?mode=gray-delta&delta=40"] {
		t.Fatal("different delta dedup'd to the same job")
	}
	// mode=gray with no kind routes to the gray job too.
	out = submitJobs(t, srv.URL+"/v1/jobs?mode=gray", ctPGM, body)
	if out.Jobs[0].ID != ids["?kind=gray"] {
		t.Fatal("?mode=gray and ?kind=gray built different job IDs")
	}
}

// TestJobNewKindsLifecycle runs a gray, a volume, and a contours job to
// done and asserts each result's shape — including that results agree with
// the library on the same inputs.
func TestJobNewKindsLifecycle(t *testing.T) {
	_, _, srv := newJobsServer(t, Config{Workers: 2}, jobs.Options{})

	t.Run("gray", func(t *testing.T) {
		body, img := grayBody(t, 29, 31, 61)
		_, wantN := paremsp.LabelGray(img)
		out := submitJobs(t, srv.URL+"/v1/jobs?kind=gray", ctPGM, body)
		id := out.Jobs[0].ID
		waitJobDone(t, srv.URL, id)
		resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var res labelResponse
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		if res.NumComponents != wantN {
			t.Fatalf("gray job num_components = %d, want %d", res.NumComponents, wantN)
		}
	})

	t.Run("volume", func(t *testing.T) {
		body, vol := volumeBody(t, 13, 9, 6, 62)
		wantLv, wantN := paremsp.LabelVolume(vol)
		wantSizes := paremsp.VolumeComponentSizes(wantLv, wantN)
		out := submitJobs(t, srv.URL+"/v1/jobs?kind=volume", ctPGM, body)
		id := out.Jobs[0].ID
		waitJobDone(t, srv.URL, id)
		resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var res volumeResponse
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		if res.NumComponents != wantN || res.Depth != vol.D {
			t.Fatalf("volume job = %d comps depth %d, want %d comps depth %d", res.NumComponents, res.Depth, wantN, vol.D)
		}
		if fmt.Sprint(res.ComponentSizes) != fmt.Sprint(wantSizes) {
			t.Fatalf("volume job sizes %v, want %v", res.ComponentSizes, wantSizes)
		}
	})

	t.Run("contours", func(t *testing.T) {
		img := testImage(t)
		res0, err := paremsp.Label(img, paremsp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := paremsp.TraceContours(res0.Labels, res0.NumComponents)
		out := submitJobs(t, srv.URL+"/v1/jobs?kind=contours", ctPBM, pbmBody(t, img))
		id := out.Jobs[0].ID
		waitJobDone(t, srv.URL, id)
		resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var res labelResponse
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		if len(res.Contours) != len(want) {
			t.Fatalf("contours job returned %d contours, want %d", len(res.Contours), len(want))
		}
		if res.NumComponents != res0.NumComponents {
			t.Fatalf("contours job num_components = %d, want %d", res.NumComponents, res0.NumComponents)
		}
	})

	t.Run("kind-conflicts", func(t *testing.T) {
		body, _ := grayBody(t, 8, 8, 63)
		for _, q := range []string{"?kind=stats&mode=gray", "?kind=labels&mode=volume", "?kind=volume&contours=true"} {
			resp := post(t, srv.URL+"/v1/jobs"+q, ctPGM, ctJSON, body)
			envelopeOf(t, resp, http.StatusBadRequest, codeInvalidArgument)
		}
	})
}
