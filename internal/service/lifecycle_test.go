package service

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	paremsp "repro"
	"repro/internal/jobs"
)

// blockFirstRun substitutes eng.run so the first call parks on its context
// (simulating a labeling that reached a poll point and saw the cancellation)
// and every later call delegates to the real labeling. started receives one
// value per parked call.
func blockFirstRun(eng *Engine, started chan<- struct{}) {
	var calls atomic.Int32
	eng.run = func(ctx context.Context, img *paremsp.Image, dst *paremsp.LabelMap, sc *paremsp.Scratch, opt paremsp.Options) (*paremsp.Result, error) {
		if calls.Add(1) == 1 {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return paremsp.LabelIntoCtx(ctx, img, dst, sc, opt)
	}
}

// TestEngineLabelCancelMidRun cancels a labeling that is already on a
// worker: Label must return the context error promptly, the worker must be
// released for new work, and the pooled buffers must still produce a
// correct labeling on the very next request.
func TestEngineLabelCancelMidRun(t *testing.T) {
	eng := NewEngine(Config{Workers: 1, Threads: 1})
	defer eng.Close()
	started := make(chan struct{}, 1)
	blockFirstRun(eng, started)

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := eng.Label(ctx, testImage(t), paremsp.Options{})
		errCh <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Label after cancel: err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Label did not return after cancellation")
	}

	// The single worker must be free again, and the recycled LabelMap and
	// Scratch must not leak state from the aborted run.
	res, err := eng.Label(context.Background(), testImage(t), paremsp.Options{})
	if err != nil {
		t.Fatalf("follow-up Label: %v", err)
	}
	if res.NumComponents != 5 {
		t.Fatalf("follow-up NumComponents = %d, want 5 (stale pooled state?)", res.NumComponents)
	}
	eng.PutResult(res)
}

// TestLabelRequestTimeout504: a synchronous request that outlives
// -request-timeout is canceled server-side and answered 504; the next
// request on the same (single) worker succeeds.
func TestLabelRequestTimeout504(t *testing.T) {
	eng, srv := newTestServer(t, Config{Workers: 1, Threads: 1},
		HandlerConfig{RequestTimeout: 50 * time.Millisecond})
	started := make(chan struct{}, 1)
	blockFirstRun(eng, started)

	resp := post(t, srv.URL+"/v1/label", ctPBM, ctJSON, pbmBody(t, testImage(t)))
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Fatalf("body %q does not mention the deadline", body)
	}

	resp = post(t, srv.URL+"/v1/label", ctPBM, ctJSON, pbmBody(t, testImage(t)))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status = %d, want 200 (worker not released?)", resp.StatusCode)
	}
}

// TestDrainLifecycle drives the full drain contract over HTTP: before the
// drain everything admits; after StartDrain, /healthz flips to 503
// "draining", every admission endpoint sheds with 503 + Retry-After while
// read endpoints keep answering, and Engine.Drain finishes promptly when
// the running job completes.
func TestDrainLifecycle(t *testing.T) {
	store := newTestJobStore(t, jobs.Options{TTL: time.Hour})
	eng := NewEngine(Config{Workers: 1, Threads: 1})
	h := NewHandler(eng, HandlerConfig{Jobs: store})
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
		store.Close()
	})

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(b)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthy healthz = %d %q, want 200 ok", code, body)
	}

	// Park a job on the worker so the drain has something to wait for.
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	var calls atomic.Int32
	eng.run = func(ctx context.Context, img *paremsp.Image, dst *paremsp.LabelMap, sc *paremsp.Scratch, opt paremsp.Options) (*paremsp.Result, error) {
		if calls.Add(1) == 1 {
			started <- struct{}{}
			<-release
		}
		return paremsp.LabelIntoCtx(ctx, img, dst, sc, opt)
	}
	inflight := make(chan *http.Response, 1)
	go func() {
		inflight <- post(t, srv.URL+"/v1/label", ctPBM, ctJSON, pbmBody(t, testImage(t)))
	}()
	<-started

	h.StartDrain()
	if !h.Draining() {
		t.Fatal("Draining() = false after StartDrain")
	}
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining healthz = %d %q, want 503 draining", code, body)
	}
	for _, ep := range []string{"/v1/label", "/v1/stats", "/v1/jobs"} {
		resp := post(t, srv.URL+ep, ctPBM, ctJSON, pbmBody(t, testImage(t)))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("POST %s during drain = %d, want 503", ep, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("POST %s during drain has no Retry-After", ep)
		}
	}
	// Read endpoints stay up during the drain window.
	if code, _ := get("/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics during drain = %d, want 200", code)
	}

	// The in-flight request is still running; let it finish and assert the
	// drain completes promptly and the client got its full response.
	drained := make(chan bool, 1)
	go func() { drained <- eng.Drain(10 * time.Second) }()
	close(release)
	select {
	case ok := <-drained:
		if !ok {
			t.Fatal("Drain timed out despite the job finishing")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain never returned")
	}
	resp := <-inflight
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request during drain = %d (%s), want 200", resp.StatusCode, b)
	}
}

// TestDrainRejectsQueuedJobs: jobs sitting in the queue when the drain
// begins are rejected with context.Canceled instead of running.
func TestDrainRejectsQueuedJobs(t *testing.T) {
	eng := NewEngine(Config{Workers: 1, QueueDepth: 2, Threads: 1})
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	var calls atomic.Int32
	eng.run = func(ctx context.Context, img *paremsp.Image, dst *paremsp.LabelMap, sc *paremsp.Scratch, opt paremsp.Options) (*paremsp.Result, error) {
		if calls.Add(1) == 1 {
			started <- struct{}{}
			<-release
		}
		return paremsp.LabelIntoCtx(ctx, img, dst, sc, opt)
	}

	// One job on the worker, one parked in the queue.
	running, err := eng.SubmitLabel(context.Background(), testImage(t), paremsp.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := eng.SubmitLabel(context.Background(), testImage(t), paremsp.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan bool, 1)
	go func() { drained <- eng.Drain(10 * time.Second) }()
	// Only release the worker once the drain has begun, so the queued job is
	// guaranteed to be dequeued under drain mode.
	for !eng.Draining() {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if ok := <-drained; !ok {
		t.Fatal("Drain timed out")
	}
	if res, _, _, err := running.Wait(); err != nil {
		t.Fatalf("running job failed during drain: %v", err)
	} else {
		eng.PutResult(res)
	}
	if _, _, _, err := queued.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued job err = %v, want context.Canceled", err)
	}
	if _, err := eng.Label(context.Background(), testImage(t), paremsp.Options{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-drain Label err = %v, want ErrClosed", err)
	}
	eng.Close()
}

// TestWorkerPanicIsolation: a panicking labeling answers 500, increments
// worker_panics_total, reports through OnPanic with a stack, and leaves the
// worker alive for the next request.
func TestWorkerPanicIsolation(t *testing.T) {
	type panicReport struct {
		v     any
		stack string
	}
	reports := make(chan panicReport, 1)
	eng := NewEngine(Config{Workers: 1, Threads: 1, OnPanic: func(v any, stack []byte) {
		reports <- panicReport{v: v, stack: string(stack)}
	}})
	srv := httptest.NewServer(NewHandler(eng, HandlerConfig{}))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	var calls atomic.Int32
	eng.run = func(ctx context.Context, img *paremsp.Image, dst *paremsp.LabelMap, sc *paremsp.Scratch, opt paremsp.Options) (*paremsp.Result, error) {
		if calls.Add(1) == 1 {
			panic("labeling exploded")
		}
		return paremsp.LabelIntoCtx(ctx, img, dst, sc, opt)
	}

	resp := post(t, srv.URL+"/v1/label", ctPBM, ctJSON, pbmBody(t, testImage(t)))
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d (%s), want 500", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "worker panicked") {
		t.Fatalf("body %q does not identify the panic", body)
	}
	select {
	case r := <-reports:
		if r.v != "labeling exploded" {
			t.Fatalf("OnPanic value = %v", r.v)
		}
		if !strings.Contains(r.stack, "computeRaster") {
			t.Fatalf("OnPanic stack does not show the compute frame:\n%s", r.stack)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnPanic was never called")
	}
	if got := eng.Snapshot().Panics; got != 1 {
		t.Fatalf("Snapshot.Panics = %d, want 1", got)
	}

	// The worker survived and its quarantined buffers were replaced.
	resp = post(t, srv.URL+"/v1/label", ctPBM, ctJSON, pbmBody(t, testImage(t)))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic status = %d, want 200 (worker died?)", resp.StatusCode)
	}

	// And the metric is on the exposition surface.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mb), "ccserve_worker_panics_total 1") {
		t.Fatal("/metrics does not report ccserve_worker_panics_total 1")
	}
}

// TestJobTimeoutCancelsAndResubmitReruns: an async job that exceeds
// -job-timeout lands in the canceled terminal state (not failed), and a
// resubmission of the identical payload replaces it instead of deduping.
func TestJobTimeoutCancelsAndResubmitReruns(t *testing.T) {
	store := newTestJobStore(t, jobs.Options{TTL: time.Hour})
	eng := NewEngine(Config{Workers: 1, Threads: 1})
	srv := httptest.NewServer(NewHandler(eng, HandlerConfig{
		Jobs:       store,
		JobTimeout: 50 * time.Millisecond,
	}))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
		store.Close()
	})
	started := make(chan struct{}, 1)
	blockFirstRun(eng, started)

	body := pbmBody(t, testImage(t))
	first := submitJobs(t, srv.URL+"/v1/jobs", ctPBM, body).Jobs[0]
	<-started
	got := pollJob(t, srv.URL, first.ID, string(jobs.StateCanceled))
	if !strings.Contains(got.Error, "deadline") {
		t.Fatalf("canceled job error %q does not mention the deadline", got.Error)
	}

	second := submitJobs(t, srv.URL+"/v1/jobs", ctPBM, body).Jobs[0]
	if second.Dedup {
		t.Fatal("resubmission deduped to a canceled job")
	}
	if second.ID != first.ID {
		t.Fatalf("resubmission ID %q != original %q (content hash changed?)", second.ID, first.ID)
	}
	done := pollJob(t, srv.URL, second.ID, string(jobs.StateDone))
	if done.NumComponents != 5 {
		t.Fatalf("rerun NumComponents = %d, want 5", done.NumComponents)
	}
}

// TestJobDrainCancelsViaBaseContext: canceling the handler's BaseContext —
// ccserve's force-cancel step after a drain timeout — cancels both the
// queued async job (rejected at its worker precheck) and the running one
// (stopped at its next poll point); both land in the canceled state.
func TestJobDrainCancelsViaBaseContext(t *testing.T) {
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	store := newTestJobStore(t, jobs.Options{TTL: time.Hour})
	eng := NewEngine(Config{Workers: 1, QueueDepth: 2, Threads: 1})
	srv := httptest.NewServer(NewHandler(eng, HandlerConfig{
		Jobs:        store,
		BaseContext: baseCtx,
	}))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
		store.Close()
	})
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	var calls atomic.Int32
	eng.run = func(ctx context.Context, img *paremsp.Image, dst *paremsp.LabelMap, sc *paremsp.Scratch, opt paremsp.Options) (*paremsp.Result, error) {
		if calls.Add(1) == 1 {
			started <- struct{}{}
			<-release
		}
		return paremsp.LabelIntoCtx(ctx, img, dst, sc, opt)
	}

	// First job occupies the worker; the second sits in the queue with the
	// base context as its lifetime.
	blocker := submitJobs(t, srv.URL+"/v1/jobs", ctPBM, pbmBody(t, testImage(t))).Jobs[0]
	<-started
	big, err := paremsp.ParseImage("#.#\n.#.\n#.#")
	if err != nil {
		t.Fatal(err)
	}
	queued := submitJobs(t, srv.URL+"/v1/jobs", ctPBM, pbmBody(t, big)).Jobs[0]

	baseCancel() // the force-cancel
	close(release)
	pollJob(t, srv.URL, queued.ID, string(jobs.StateCanceled))
	pollJob(t, srv.URL, blocker.ID, string(jobs.StateCanceled))
}

// TestJobDeleteReleasesWorker pins the DELETE-cancellation contract:
// deleting a queued or running job cancels its computation, not just the
// bookkeeping. One worker: job A parks on its context mid-run, job B
// queues behind it. Deleting B then A must unblock the worker without
// ever running B, and the next synchronous request must find the worker
// free — before cancel-on-Remove, A burned the worker until its context
// timed out and B ran pointlessly afterwards.
func TestJobDeleteReleasesWorker(t *testing.T) {
	eng, _, srv := newJobsServer(t, Config{Workers: 1, Threads: 1}, jobs.Options{TTL: time.Hour})
	started := make(chan struct{}, 1)
	var runs atomic.Int32
	eng.run = func(ctx context.Context, img *paremsp.Image, dst *paremsp.LabelMap, sc *paremsp.Scratch, opt paremsp.Options) (*paremsp.Result, error) {
		if runs.Add(1) == 1 {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return paremsp.LabelIntoCtx(ctx, img, dst, sc, opt)
	}

	a := submitJobs(t, srv.URL+"/v1/jobs", ctPBM, pbmBody(t, testImage(t))).Jobs[0]
	<-started
	b := submitJobs(t, srv.URL+"/v1/jobs?conn=4", ctPBM, pbmBody(t, testImage(t))).Jobs[0]
	if a.ID == b.ID {
		t.Fatal("connectivity did not split the job key")
	}

	for _, id := range []string{b.ID, a.ID} {
		req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("DELETE %s = %d, want 204", id, resp.StatusCode)
		}
	}

	// Deleting A fired its context, so the parked run returns and releases
	// the single worker; B's dead context makes the worker skip it without
	// running. If DELETE did not cancel, this request would wait on the
	// worker until the test timeout.
	resp := post(t, srv.URL+"/v1/label", ctPBM, ctJSON, pbmBody(t, testImage(t)))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up label = %d, want 200 (worker not released?)", resp.StatusCode)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("run called %d times, want 2 (parked A + follow-up; deleted queued B must never run)", got)
	}
}
