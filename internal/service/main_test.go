package service

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if any engine worker, job-completion goroutine
// or drain waiter outlives the tests — the robustness features this package
// grew (cancellation, drain, panic containment) are exactly the kind of code
// that leaks goroutines when a path is missed.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
