// Package service is the operational layer around the labeling algorithms: a
// long-lived Engine that runs paremsp.LabelInto on a bounded worker pool with
// a request queue, backpressure, and sync.Pool-based reuse of image and
// label-map rasters, plus an http.Handler exposing it as a labeling service.
//
// The engine admits at most Workers in-flight labelings plus QueueDepth
// queued ones; beyond that, Label fails fast with ErrQueueFull so callers
// (and the HTTP layer, which maps it to 429) shed load instead of queuing
// unboundedly. Rasters and union-find scratch flow through pools, so
// sustained traffic does not re-allocate per request: a request borrows an
// image from the pool, decodes into it, labels into a pooled LabelMap via
// the buffer-reusing *Into entry points, and returns both when the response
// has been written.
//
// The HTTP surface is:
//
//	POST /v1/label  body = PBM/PGM (Netpbm) or PNG, negotiated via
//	                Content-Type (sniffed when absent); query parameters
//	                alg, threads, conn, level select per-request options.
//	                The response format follows Accept: JSON component
//	                stats (default), a PGM or PNG label map, or a CCL1
//	                label stream (application/x-ccl).
//	POST /v1/stats  body = raw PBM (P4) or raw PGM (P5), streamed through
//	                the out-of-core band labeler (internal/band) on the
//	                same worker pool: arbitrarily tall images are labeled
//	                in O(band) memory and only JSON component statistics
//	                (area, bbox, centroid, run count) come back. Query
//	                parameters: level, band (band height in rows).
//	GET  /healthz   liveness probe.
//	GET  /metrics   Prometheus-style text: requests, completions,
//	                rejections, queue depth, and cumulative per-phase
//	                scan/merge/flatten/relabel nanoseconds.
package service
