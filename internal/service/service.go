// Package service is the operational layer around the labeling algorithms: a
// long-lived Engine that runs paremsp.LabelInto on a bounded worker pool with
// a request queue, backpressure, and sync.Pool-based reuse of image and
// label-map rasters, plus an http.Handler exposing it as a labeling service.
//
// The engine admits at most Workers in-flight labelings plus QueueDepth
// queued ones; beyond that, Label fails fast with ErrQueueFull so callers
// (and the HTTP layer, which maps it to 429) shed load instead of queuing
// unboundedly. Rasters and union-find scratch flow through pools, so
// sustained traffic does not re-allocate per request: a request borrows an
// image from the pool, decodes into it, labels into a pooled LabelMap via
// the buffer-reusing *Into entry points, and returns both when the response
// has been written.
//
// The HTTP surface is:
//
//	POST /v1/label  body = PBM/PGM (Netpbm) or PNG, negotiated via
//	                Content-Type (sniffed when absent); query parameters
//	                alg, threads, conn, level select per-request options.
//	                The response format follows Accept: JSON component
//	                stats (default), a PGM or PNG label map, or a CCL1
//	                label stream (application/x-ccl).
//	POST /v1/stats  body = raw PBM (P4) or raw PGM (P5), streamed through
//	                the out-of-core band labeler (internal/band) on the
//	                same worker pool: arbitrarily tall images are labeled
//	                in O(band) memory and only JSON component statistics
//	                (area, bbox, centroid, run count) come back. Query
//	                parameters: level, band (band height in rows).
//	GET  /healthz   liveness probe.
//	GET  /metrics   Prometheus-style text: requests, completions,
//	                rejections, queue depth, cumulative per-phase
//	                scan/merge/flatten/relabel nanoseconds, and log₂-bucket
//	                latency histograms (per-endpoint request duration,
//	                queue wait, job service time, per-phase durations)
//	                with approximate p50/p95/p99 gauges.
//
// # Observability
//
// Every request is wrapped by Obs middleware: the X-Request-ID header is
// honored when present (generated otherwise) and echoed on the response;
// end-to-end latency lands in a lock-free per-endpoint histogram; and a
// per-request Trace — queue wait, decode, scan, merge, flatten, relabel,
// encode — is captured into a fixed-size ring buffer. /v1/label responses
// carry the trace live as a Server-Timing header; async job status bodies
// embed a trace derived from the store's transition timestamps. The
// instrumentation is allocation-free on the hot path (pooled request
// state, atomic histogram adds, in-place ring copies).
//
// NewDebugHandler serves the operator-only surface — net/http/pprof under
// /debug/pprof/ and the trace-ring dump under GET /debug/requests?n=50
// (filter one request with ?id=) — as a separate handler so deployments
// bind it to a loopback listener (ccserve -debug-addr), never the public
// address. Structured logs (access lines, job lifecycle) flow through the
// slog.Logger given to NewObs; a nil logger disables logging without
// disabling the histograms or the trace ring.
package service
