package service

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"
)

// Endpoint indices for the per-endpoint request-latency histograms. The
// set is closed — the mux's route table is fixed — so the histograms live
// in a flat array and classification is a switch, not a map lookup.
const (
	epLabel = iota
	epStats
	epVolume
	epJobsSubmit
	epJobStatus
	epJobResult
	epJobDelete
	epHealthz
	epMetrics
	epOther
	epCount
)

// epNames maps endpoint indices to the `endpoint` label values on
// ccserve_http_request_duration_ns.
var epNames = [epCount]string{
	"label", "stats", "volume", "jobs_submit", "job_status", "job_result",
	"job_delete", "healthz", "metrics", "other",
}

// endpointOf classifies a served request by the ServeMux pattern that
// matched it (available on the request after dispatch, Go 1.23+).
func endpointOf(pattern string) int {
	switch pattern {
	case "POST /v1/label":
		return epLabel
	case "POST /v1/stats":
		return epStats
	case "POST /v1/volume":
		return epVolume
	case "POST /v1/jobs":
		return epJobsSubmit
	case "GET /v1/jobs/{id}":
		return epJobStatus
	case "GET /v1/jobs/{id}/result":
		return epJobResult
	case "DELETE /v1/jobs/{id}":
		return epJobDelete
	case "GET /healthz":
		return epHealthz
	case "GET /metrics":
		return epMetrics
	default:
		return epOther
	}
}

// Obs is the service's observability state: the structured logger, the
// per-endpoint latency histograms, and the ring buffer of per-request
// phase traces. One Obs is shared between the public handler (which feeds
// it) and the debug handler (which dumps it); NewHandler creates a silent
// one when the caller does not supply its own.
type Obs struct {
	log   *slog.Logger
	ring  *traceRing
	req   [epCount]hist
	state sync.Pool // *reqState
}

// NewObs builds the observability state. logger nil disables logging (the
// histograms and trace ring still work); traceDepth is the trace ring size
// (rounded up to a power of two, 0 selects 256).
func NewObs(logger *slog.Logger, traceDepth int) *Obs {
	if logger == nil {
		logger = slog.New(noopLogHandler{})
	}
	o := &Obs{log: logger, ring: newTraceRing(traceDepth)}
	o.state.New = func() any { return new(reqState) }
	return o
}

// Logger returns the Obs's structured logger (never nil).
func (o *Obs) Logger() *slog.Logger { return o.log }

// DumpTraces returns up to n most recent request traces, newest first.
func (o *Obs) DumpTraces(n int) []Trace { return o.ring.dump(n, "") }

// noopLogHandler is the disabled slog backend behind NewObs(nil, ...).
// (slog.DiscardHandler needs Go 1.24; this module still builds on 1.23.)
type noopLogHandler struct{}

func (noopLogHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (noopLogHandler) Handle(context.Context, slog.Record) error { return nil }
func (noopLogHandler) WithAttrs([]slog.Attr) slog.Handler        { return noopLogHandler{} }
func (noopLogHandler) WithGroup(string) slog.Handler             { return noopLogHandler{} }

// reqState is the pooled per-request scratch: the trace record plus the
// status/byte-counting response writer, recycled so the middleware adds no
// steady-state allocations beyond the context value.
type reqState struct {
	tr Trace
	rw countingWriter
}

// countingWriter wraps the ResponseWriter to capture the status code and
// body bytes for the access log and the trace record.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *countingWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *countingWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Unwrap exposes the underlying writer to http.ResponseController, so
// flushes and deadlines pass through the wrapper.
func (w *countingWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// headerRequestID is the request-ID header the service honors and echoes.
const headerRequestID = "X-Request-ID"

// genRequestID mints a 16-hex-character request ID for requests that
// arrive without one. math/rand/v2's global state is cheap, concurrency
// safe, and plenty for trace correlation (this is not a security token).
func genRequestID() string {
	var b [8]byte
	u := rand.Uint64()
	for i := range b {
		b[i] = byte(u >> (8 * i))
	}
	return hex.EncodeToString(b[:])
}

// middleware wraps the service mux with the request-scoped observability:
// it assigns (or honors) the request ID and echoes it on the response,
// parks a Trace in the context for the handlers to fill, and — once the
// handler returns — observes the end-to-end latency histogram for the
// matched endpoint, pushes the trace into the ring, and emits the access
// log line. Probe and scrape endpoints log at Debug so a tight scrape
// interval does not drown real traffic in the log.
func (o *Obs) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(headerRequestID)
		if id == "" {
			id = genRequestID()
		}
		w.Header().Set(headerRequestID, id)

		st := o.state.Get().(*reqState)
		st.tr = Trace{ID: id, Method: r.Method, Path: r.URL.Path, Start: start}
		st.rw = countingWriter{ResponseWriter: w}

		// The mux stamps the matched pattern on the request it serves, so
		// keep the context-carrying copy to read r2.Pattern afterwards.
		r2 := r.WithContext(context.WithValue(r.Context(), traceKey{}, &st.tr))
		next.ServeHTTP(&st.rw, r2)

		ep := endpointOf(r2.Pattern)
		total := time.Since(start)
		st.tr.Endpoint = epNames[ep]
		st.tr.Status = st.rw.status
		st.tr.Bytes = st.rw.bytes
		st.tr.TotalNs = total.Nanoseconds()
		o.req[ep].observe(st.tr.TotalNs)
		o.ring.put(&st.tr)

		level := slog.LevelInfo
		if ep == epHealthz || ep == epMetrics {
			level = slog.LevelDebug
		}
		if o.log.Enabled(r.Context(), level) {
			attrs := make([]slog.Attr, 0, 8)
			attrs = append(attrs,
				slog.String("id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", st.rw.status),
				slog.Int64("bytes", st.rw.bytes),
				slog.Duration("duration", total),
			)
			if st.tr.Alg != "" {
				attrs = append(attrs, slog.String("alg", st.tr.Alg))
			}
			if st.tr.Pixels > 0 {
				attrs = append(attrs, slog.Int64("pixels", st.tr.Pixels))
			}
			o.log.LogAttrs(r.Context(), level, "request", attrs...)
		}
		st.rw.ResponseWriter = nil
		o.state.Put(st)
	})
}

// writeRequestHists renders the per-endpoint latency histogram family.
func (o *Obs) writeRequestHists(w io.Writer) {
	series := make([]histSeries, 0, epCount)
	for i := range o.req {
		series = append(series, histSeries{labels: `endpoint="` + epNames[i] + `"`, h: &o.req[i]})
	}
	writePromHist(w, "http_request_duration_ns",
		"End-to-end request latency per endpoint in nanoseconds (log2 buckets).", series)
}

// NewDebugHandler serves the operator-only debug surface: the net/http/pprof
// profiling endpoints under /debug/pprof/ and the trace-ring dump under
// GET /debug/requests. It is deliberately a separate handler from
// NewHandler so deployments bind it to a loopback/ops listener (ccserve
// -debug-addr) and never expose it on the public address.
func NewDebugHandler(obs *Obs) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/requests", obs.debugRequests)
	return mux
}

// debugRequests handles GET /debug/requests?n=50[&id=...]: the most recent
// request traces, newest first, as a JSON array. ?id= filters to one
// request ID, which is how "where did that slow request spend its time"
// gets answered after the fact.
func (o *Obs) debugRequests(w http.ResponseWriter, r *http.Request) {
	n := 50
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			http.Error(w, "invalid n (want a positive integer)", http.StatusBadRequest)
			return
		}
		n = parsed
	}
	w.Header().Set("Content-Type", ctJSON)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(o.ring.dump(n, r.URL.Query().Get("id")))
}
