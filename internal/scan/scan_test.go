package scan_test

import (
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/binimg"
	"repro/internal/core"
	"repro/internal/scan"
	"repro/internal/stats"
	"repro/internal/unionfind"
)

// runScan executes one scan strategy with a REM sink and returns the final
// consecutive labeling.
func runScan(t *testing.T, img *binimg.Image,
	f func(*binimg.Image, *binimg.LabelMap, scan.Sink, int, int), cap int) (*binimg.LabelMap, int) {
	t.Helper()
	lm := binimg.NewLabelMap(img.Width, img.Height)
	sink := core.NewRemSink(cap)
	f(img, lm, sink, 0, img.Height)
	n := unionfind.Flatten(sink.Parents(), sink.Count())
	for i, v := range lm.L {
		if v != 0 {
			lm.L[i] = sink.Parents()[v]
		}
	}
	return lm, int(n)
}

// enumerate builds a small image whose pixels are the low bits of mask in
// raster order.
func enumerate(w, h int, mask uint32) *binimg.Image {
	im := binimg.New(w, h)
	for i := range im.Pix {
		im.Pix[i] = uint8((mask >> i) & 1)
	}
	return im
}

// TestDecisionTreeExhaustiveMask verifies the decision-tree scan against
// flood fill on every 3x2 pixel configuration — this covers all 16 neighbor
// configurations (a,b,c,d) of a foreground e plus every background-e case.
func TestDecisionTreeExhaustiveMask(t *testing.T) {
	for mask := uint32(0); mask < 1<<6; mask++ {
		img := enumerate(3, 2, mask)
		lm, n := runScan(t, img, scan.DecisionTree, scan.MaxProvisionalLabels(3, 2))
		ref, nRef := baseline.FloodFill(img, baseline.Conn8)
		if n != nRef {
			t.Fatalf("mask %06b: n = %d, want %d\nimage:\n%s\ngot:\n%s\nwant:\n%s",
				mask, n, nRef, img, lm, ref)
		}
		if err := stats.Equivalent(lm, ref); err != nil {
			t.Fatalf("mask %06b: %v\nimage:\n%s", mask, err, img)
		}
	}
}

// TestDecisionTreeExhaustive4x3 widens the exhaustive window so decisions
// interact across columns and rows (4096 images).
func TestDecisionTreeExhaustive4x3(t *testing.T) {
	for mask := uint32(0); mask < 1<<12; mask++ {
		img := enumerate(4, 3, mask)
		lm, n := runScan(t, img, scan.DecisionTree, scan.MaxProvisionalLabels(4, 3))
		ref, nRef := baseline.FloodFill(img, baseline.Conn8)
		if n != nRef {
			t.Fatalf("mask %012b: n = %d, want %d\nimage:\n%s", mask, n, nRef, img)
		}
		if err := stats.Equivalent(lm, ref); err != nil {
			t.Fatalf("mask %012b: %v\nimage:\n%s", mask, err, img)
		}
	}
}

// TestPairRowsExhaustiveMask verifies the two-rows-at-a-time scan against
// flood fill on every 3x3 configuration (512 images), covering the full
// Fig. 1b mask (a,b,c / d,e / f,g) including both e-foreground and
// e-background branches of Alg. 6.
func TestPairRowsExhaustiveMask(t *testing.T) {
	for mask := uint32(0); mask < 1<<9; mask++ {
		img := enumerate(3, 3, mask)
		lm, n := runScan(t, img, scan.PairRows, scan.MaxProvisionalLabels(3, 3))
		ref, nRef := baseline.FloodFill(img, baseline.Conn8)
		if n != nRef {
			t.Fatalf("mask %09b: n = %d, want %d\nimage:\n%s\ngot:\n%s\nwant:\n%s",
				mask, n, nRef, img, lm, ref)
		}
		if err := stats.Equivalent(lm, ref); err != nil {
			t.Fatalf("mask %09b: %v\nimage:\n%s", mask, err, img)
		}
	}
}

// TestPairRowsExhaustive4x4 exercises pair interactions across two row pairs
// and odd columns (65536 images).
func TestPairRowsExhaustive4x4(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 4x4 sweep skipped in -short mode")
	}
	for mask := uint32(0); mask < 1<<16; mask++ {
		img := enumerate(4, 4, mask)
		lm, n := runScan(t, img, scan.PairRows, scan.MaxProvisionalLabels(4, 4))
		ref, nRef := baseline.FloodFill(img, baseline.Conn8)
		if n != nRef {
			t.Fatalf("mask %016b: n = %d, want %d\nimage:\n%s", mask, n, nRef, img)
		}
		if err := stats.Equivalent(lm, ref); err != nil {
			t.Fatalf("mask %016b: %v\nimage:\n%s", mask, err, img)
		}
	}
}

// TestPairRowsOddHeight checks the final unpaired row handling on exhaustive
// 3-wide, 5-tall images (odd row count means the last row scans alone).
func TestPairRowsOddHeight(t *testing.T) {
	for trial := 0; trial < 2000; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		img := binimg.New(3, 5)
		for i := range img.Pix {
			img.Pix[i] = uint8(rng.Intn(2))
		}
		lm, n := runScan(t, img, scan.PairRows, scan.MaxProvisionalLabels(3, 5))
		ref, nRef := baseline.FloodFill(img, baseline.Conn8)
		if n != nRef {
			t.Fatalf("trial %d: n = %d, want %d\nimage:\n%s", trial, n, nRef, img)
		}
		if err := stats.Equivalent(lm, ref); err != nil {
			t.Fatalf("trial %d: %v\nimage:\n%s", trial, err, img)
		}
	}
}

// TestAllNeighborsScansMatchFloodFill covers the classic scans.
func TestAllNeighborsScansMatchFloodFill(t *testing.T) {
	for trial := 0; trial < 500; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		w, h := 1+rng.Intn(12), 1+rng.Intn(12)
		img := binimg.New(w, h)
		for i := range img.Pix {
			img.Pix[i] = uint8(rng.Intn(2))
		}
		lm8, n8 := runScan(t, img, scan.AllNeighbors8, scan.MaxProvisionalLabels(w, h))
		ref8, nRef8 := baseline.FloodFill(img, baseline.Conn8)
		if n8 != nRef8 {
			t.Fatalf("trial %d (8-conn): n = %d, want %d\nimage:\n%s", trial, n8, nRef8, img)
		}
		if err := stats.Equivalent(lm8, ref8); err != nil {
			t.Fatalf("trial %d (8-conn): %v", trial, err)
		}
		lm4, n4 := runScan(t, img, scan.AllNeighbors4, scan.MaxProvisionalLabels4(w, h))
		ref4, nRef4 := baseline.FloodFill(img, baseline.Conn4)
		if n4 != nRef4 {
			t.Fatalf("trial %d (4-conn): n = %d, want %d\nimage:\n%s", trial, n4, nRef4, img)
		}
		if err := stats.Equivalent(lm4, ref4); err != nil {
			t.Fatalf("trial %d (4-conn): %v", trial, err)
		}
	}
}

// TestScanRangeIgnoresRowsAbove: scanning rows [2, h) must behave as if row 2
// were the top of the image — the contract PAREMSP's chunking relies on.
func TestScanRangeIgnoresRowsAbove(t *testing.T) {
	full := binimg.MustParse(`
		#####
		#####
		..#..
		.###.`)
	sub := binimg.MustParse(`
		..#..
		.###.`)
	for _, tc := range []struct {
		name string
		f    func(*binimg.Image, *binimg.LabelMap, scan.Sink, int, int)
	}{
		{"DecisionTree", scan.DecisionTree},
		{"PairRows", scan.PairRows},
		{"AllNeighbors8", scan.AllNeighbors8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			lmFull := binimg.NewLabelMap(5, 4)
			sink := core.NewRemSink(scan.MaxProvisionalLabels(5, 4))
			tc.f(full, lmFull, sink, 2, 4)
			// Rows 0-1 untouched.
			for i := 0; i < 10; i++ {
				if lmFull.L[i] != 0 {
					t.Fatalf("row above range was written: %v", lmFull.L[:10])
				}
			}
			// Rows 2-3 labeled exactly like a standalone scan of sub.
			lmSub := binimg.NewLabelMap(5, 2)
			sink2 := core.NewRemSink(scan.MaxProvisionalLabels(5, 2))
			tc.f(sub, lmSub, sink2, 0, 2)
			for i := 0; i < 10; i++ {
				if (lmFull.L[10+i] == 0) != (lmSub.L[i] == 0) {
					t.Fatalf("chunked scan differs from standalone at %d", i)
				}
			}
		})
	}
}

// TestMaxProvisionalLabelsBound empirically validates the label-count bound
// on the adversarial patterns (isolated-pixel grid for 8-conn scans,
// checkerboard for the 4-conn scan).
func TestMaxProvisionalLabelsBound(t *testing.T) {
	// Isolated pixels at even coordinates: the 8-conn worst case.
	img := binimg.New(21, 17)
	for y := 0; y < 17; y += 2 {
		for x := 0; x < 21; x += 2 {
			img.Set(x, y, 1)
		}
	}
	want := 11 * 9
	if got := scan.MaxProvisionalLabels(21, 17); got != want {
		t.Fatalf("MaxProvisionalLabels(21,17) = %d, want %d", got, want)
	}
	for _, f := range []func(*binimg.Image, *binimg.LabelMap, scan.Sink, int, int){
		scan.DecisionTree, scan.PairRows, scan.AllNeighbors8,
	} {
		lm := binimg.NewLabelMap(21, 17)
		sink := core.NewRemSink(want)
		f(img, lm, sink, 0, 17) // would panic on overflow of the parent array
		if int(sink.Count()) != want {
			t.Fatalf("isolated grid created %d labels, want %d", sink.Count(), want)
		}
	}
	// Checkerboard: the 4-conn worst case exceeds the 8-conn bound.
	cb := binimg.New(8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if (x+y)%2 == 0 {
				cb.Set(x, y, 1)
			}
		}
	}
	lm := binimg.NewLabelMap(8, 8)
	sink := core.NewRemSink(scan.MaxProvisionalLabels4(8, 8))
	scan.AllNeighbors4(cb, lm, sink, 0, 8)
	if int(sink.Count()) != 32 {
		t.Fatalf("checkerboard 4-conn created %d labels, want 32", sink.Count())
	}
}

// TestRowPairLabelStride pins the stride used for disjoint chunk ranges.
func TestRowPairLabelStride(t *testing.T) {
	for _, tc := range []struct{ w, want int }{{1, 1}, {2, 1}, {3, 2}, {8, 4}, {9, 5}} {
		if got := scan.RowPairLabelStride(tc.w); got != tc.want {
			t.Errorf("RowPairLabelStride(%d) = %d, want %d", tc.w, got, tc.want)
		}
	}
}

// TestScansOnEmptyAndFull covers degenerate inputs.
func TestScansOnEmptyAndFull(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func(*binimg.Image, *binimg.LabelMap, scan.Sink, int, int)
	}{
		{"DecisionTree", scan.DecisionTree},
		{"PairRows", scan.PairRows},
		{"AllNeighbors8", scan.AllNeighbors8},
		{"AllNeighbors4", scan.AllNeighbors4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			empty := binimg.New(7, 5)
			lm, n := runScan(t, empty, tc.f, scan.MaxProvisionalLabels4(7, 5))
			if n != 0 || lm.Max() != 0 {
				t.Fatalf("empty image: n = %d, max = %d", n, lm.Max())
			}
			full := binimg.New(7, 5)
			full.Fill(1)
			lm, n = runScan(t, full, tc.f, scan.MaxProvisionalLabels4(7, 5))
			if n != 1 {
				t.Fatalf("full image: n = %d, want 1", n)
			}
			for _, v := range lm.L {
				if v != 1 {
					t.Fatalf("full image not uniformly labeled 1:\n%s", lm)
				}
			}
		})
	}
}
