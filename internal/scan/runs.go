package scan

import "repro/internal/binimg"

// Run aliases the repository-wide run record (a [Start, End) span of
// foreground pixels in one row plus its provisional label).
type Run = binimg.Run

// RunSet records the labeled foreground runs of a contiguous row range — the
// run-granular analogue of the provisional-label raster the pixel scans
// produce. Runs of a row are stored contiguously, rows in order, so the whole
// structure is two flat slices that a Scratch can retain across labelings.
type RunSet struct {
	// Row0 is the absolute index of the first row covered.
	Row0 int
	// Runs holds every run of the range in row order.
	Runs []Run

	rowIdx []int // rowIdx[i]..rowIdx[i+1] bounds row Row0+i's runs
}

// Reset empties the set and re-anchors it at absolute row row0, keeping the
// underlying buffers.
func (rs *RunSet) Reset(row0 int) {
	rs.Row0 = row0
	rs.Runs = rs.Runs[:0]
	rs.rowIdx = append(rs.rowIdx[:0], 0)
}

// Rows returns the number of rows recorded so far.
func (rs *RunSet) Rows() int { return len(rs.rowIdx) - 1 }

// RowRuns returns the runs of absolute row y. It panics when y is outside
// the recorded range.
func (rs *RunSet) RowRuns(y int) []Run {
	i := y - rs.Row0
	return rs.Runs[rs.rowIdx[i]:rs.rowIdx[i+1]]
}

// Runs is the bit-packed run-based first pass (BREMSP/PBREMSP phase I) over
// rows [rowStart, rowEnd) of bm. Rows above rowStart are never read, which is
// what chunked parallel callers need. The labeled runs are recorded into rs
// (reset to rowStart first); unlike the pixel scans no label raster is
// written — the relabel pass fills the LabelMap run-by-run from rs.
//
// For each foreground run [s, e) the scan unions, via sink, with every run of
// the previous row overlapping [s-1, e+1) (8-connectivity). Runs of adjacent
// rows are both sorted, so one two-pointer sweep finds all overlaps; sink
// calls happen only per run and per overlap, never per pixel.
func Runs(bm *binimg.Bitmap, sink Sink, rowStart, rowEnd int, rs *RunSet) {
	RunsUntil(bm, sink, rowStart, rowEnd, rs, nil)
}

// RunsUntil is Runs with cooperative cancellation: every pollRows rows it
// polls done and, if the channel is closed, abandons the scan and reports
// false. A nil done never cancels. On a stop rs holds only the rows scanned
// so far — callers must discard the labeling.
func RunsUntil(bm *binimg.Bitmap, sink Sink, rowStart, rowEnd int, rs *RunSet, done <-chan struct{}) bool {
	rs.Reset(rowStart)
	prevLo, prevHi := 0, 0
	for y := rowStart; y < rowEnd; y++ {
		if done != nil && (y-rowStart)%pollRows == 0 && stopRequested(done) {
			return false
		}
		lo := len(rs.Runs)
		rs.Runs = bm.AppendRowRuns(rs.Runs, y)
		cur := rs.Runs[lo:]
		prev := rs.Runs[prevLo:prevHi]
		pi := 0
		for ci := range cur {
			s, e := cur[ci].Start, cur[ci].End
			// A previous-row run [ps, pe) overlaps [s-1, e+1) iff pe >= s and
			// ps <= e. Runs with pe < s are dead for every later cur run too
			// (s only grows), so pi advances monotonically.
			for pi < len(prev) && prev[pi].End < s {
				pi++
			}
			var le Label
			for j := pi; j < len(prev) && prev[j].Start <= e; j++ {
				if le == 0 {
					le = prev[j].Label
				} else if prev[j].Label != le {
					le = sink.Merge(le, prev[j].Label)
				}
			}
			if le == 0 {
				le = sink.NewLabel()
			}
			cur[ci].Label = le
		}
		prevLo, prevHi = lo, len(rs.Runs)
		rs.rowIdx = append(rs.rowIdx, len(rs.Runs))
	}
	return true
}

// MergeRuns unites every run of cur with every overlapping (8-connectivity)
// run of prev, where prev is the row immediately above cur's row. PBREMSP's
// boundary phase calls it with the concurrent merger: cur is the first row of
// a chunk, prev the last row of the chunk above.
func MergeRuns(cur, prev []Run, merge func(x, y Label)) {
	pi := 0
	for _, cr := range cur {
		for pi < len(prev) && prev[pi].End < cr.Start {
			pi++
		}
		for j := pi; j < len(prev) && prev[j].Start <= cr.End; j++ {
			merge(cr.Label, prev[j].Label)
		}
	}
}

// RunLabelStride returns the per-row provisional-label budget of the
// run-based scan: a row has at most ceil(w/2) runs and every run can be a new
// label, so a chunk starting at row r draws labels from base = r *
// RunLabelStride(w) + 1 and no two chunks overlap.
func RunLabelStride(w int) int {
	return (w + 1) / 2
}

// MaxRunLabels bounds the provisional labels the run-based scan can create
// over a w x h raster: one per run, at most ceil(w/2) runs per row.
func MaxRunLabels(w, h int) int {
	return RunLabelStride(w) * h
}
