package scan_test

import (
	"testing"

	"repro/internal/binimg"
	"repro/internal/scan"
	"repro/internal/unionfind"
)

// runSink is a minimal REM-style sink over a private parent array.
type runSink struct {
	p     []scan.Label
	count scan.Label
}

func newRunSink(max int) *runSink { return &runSink{p: make([]scan.Label, max+1)} }

func (s *runSink) NewLabel() scan.Label {
	s.count++
	s.p[s.count] = s.count
	return s.count
}

func (s *runSink) Merge(x, y scan.Label) scan.Label {
	return unionfind.MergeRemSP(s.p, x, y)
}

// runsComponents labels art with the run scan and returns the component count.
func runsComponents(t *testing.T, art string) int {
	t.Helper()
	im := binimg.MustParse(art)
	bm := &binimg.Bitmap{}
	bm.FromImage(im)
	sink := newRunSink(scan.MaxRunLabels(im.Width, im.Height))
	rs := &scan.RunSet{}
	scan.Runs(bm, sink, 0, im.Height, rs)
	return int(unionfind.Flatten(sink.p, sink.count))
}

func TestRunsComponents(t *testing.T) {
	cases := []struct {
		name string
		art  string
		want int
	}{
		{"single", `#`, 1},
		{"empty", `.`, 0},
		{"two blocks", `
			##..#
			##..#
			.....
			#.#.#`, 5},
		{"diagonal joins", `
			#.#
			.#.
			#.#`, 1},
		{"u shape", `
			#.#
			#.#
			###`, 1},
		{"stairs merge", `
			##....
			.##...
			..##..
			...##.`, 1},
		{"spiral", `
			#####
			....#
			###.#
			#...#
			#####`, 1},
		{"checkerboard", `
			#.#.#
			.#.#.
			#.#.#`, 1},
		{"separated columns", `
			#.#.#
			#.#.#
			#.#.#`, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := runsComponents(t, tc.art); got != tc.want {
				t.Fatalf("got %d components, want %d", got, tc.want)
			}
		})
	}
}

// TestRunsMatchesDecisionTree checks that the run scan finds the same
// partition as the decision-tree scan on random rasters (the two-pointer
// overlap walk versus per-pixel neighbor tests).
func TestRunsMatchesDecisionTree(t *testing.T) {
	for _, w := range []int{1, 3, 63, 64, 65, 100} {
		for _, h := range []int{1, 2, 7, 32} {
			for seed := int64(0); seed < 3; seed++ {
				im := randomBits(w, h, seed)
				bm := &binimg.Bitmap{}
				bm.FromImage(im)

				rsink := newRunSink(scan.MaxRunLabels(w, h))
				rs := &scan.RunSet{}
				scan.Runs(bm, rsink, 0, h, rs)
				nRuns := int(unionfind.Flatten(rsink.p, rsink.count))

				dsink := newRunSink(scan.MaxProvisionalLabels(w, h))
				lm := binimg.NewLabelMap(w, h)
				scan.DecisionTree(im, lm, dsink, 0, h)
				nTree := int(unionfind.Flatten(dsink.p, dsink.count))

				if nRuns != nTree {
					t.Fatalf("%dx%d seed %d: run scan %d components, decision tree %d\n%s",
						w, h, seed, nRuns, nTree, im)
				}
			}
		}
	}
}

// randomBits builds a deterministic pseudo-random raster without math/rand
// (xorshift keeps the fixture stable across Go releases).
func randomBits(w, h int, seed int64) *binimg.Image {
	im := binimg.New(w, h)
	s := uint64(seed)*2654435761 + 1
	for i := range im.Pix {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		im.Pix[i] = uint8(s & 1)
	}
	return im
}

// TestRunSetRowRuns checks the per-row indexing of a chunked scan.
func TestRunSetRowRuns(t *testing.T) {
	im := binimg.MustParse(`
		##.##
		.....
		#####`)
	bm := &binimg.Bitmap{}
	bm.FromImage(im)
	sink := newRunSink(scan.MaxRunLabels(im.Width, im.Height))
	rs := &scan.RunSet{}
	scan.Runs(bm, sink, 1, 3, rs) // chunked: skip row 0
	if rs.Row0 != 1 || rs.Rows() != 2 {
		t.Fatalf("Row0=%d Rows=%d, want 1, 2", rs.Row0, rs.Rows())
	}
	if got := rs.RowRuns(1); len(got) != 0 {
		t.Fatalf("row 1: %d runs, want 0", len(got))
	}
	got := rs.RowRuns(2)
	if len(got) != 1 || got[0].Start != 0 || got[0].End != 5 || got[0].Label == 0 {
		t.Fatalf("row 2 runs = %v, want one labeled [0,5)", got)
	}
}
