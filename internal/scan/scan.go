// Package scan implements the first-pass ("scanning step") strategies that
// the paper's two-pass CCL algorithms are assembled from:
//
//   - DecisionTree: the Wu-Otoo-Suzuki decision tree (paper Fig. 2) over the
//     forward scan mask of Fig. 1a — used by CCLLRPC and CCLREMSP.
//   - PairRows: the He-Chao-Suzuki two-rows-at-a-time scan (paper Alg. 6)
//     over the mask of Fig. 1b — used by ARUN, AREMSP and PAREMSP.
//   - AllNeighbors8 / AllNeighbors4: the classic Rosenfeld scan that examines
//     every already-visited neighbor — the scan-strategy ablation baseline.
//
// Every scan is parameterized by a Sink that owns provisional-label creation
// and label-equivalence recording; pairing one scan with different sinks is
// exactly how the paper composes its algorithms (scan strategy x union-find).
// Sink calls happen only on new-label and merge events, which are rare
// relative to pixel visits, so the interface indirection does not distort the
// scan-vs-scan comparisons.
package scan

import "repro/internal/binimg"

// Label aliases the repository-wide label type.
type Label = binimg.Label

// Sink records provisional labels and their equivalences during a scan.
type Sink interface {
	// NewLabel creates and returns a fresh provisional label (>= 1).
	NewLabel() Label
	// Merge records that x and y label the same component and returns a
	// label of the united set.
	Merge(x, y Label) Label
}

// pollRows is how many rows a cancelable scan processes between polls of its
// done channel. 64 rows amortizes the poll to well under the cost of scanning
// one row, so an armed channel is ~free and a nil channel costs one predicted
// branch per row.
const pollRows = 64

// stopRequested reports whether done is closed without blocking. A nil done
// never stops, so the non-cancelable entry points stay zero-cost.
func stopRequested(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// DecisionTree runs the Wu-Otoo-Suzuki decision-tree scan over rows
// [rowStart, rowEnd) of img, writing provisional labels into lm. Rows above
// rowStart are never read (rowStart behaves like the top of the image), which
// is what chunked parallel callers need.
//
// Mask (Fig. 1a): a, b, c are the row-above neighbors at x-1, x, x+1; d is
// the left neighbor. The tree order is: b; else c (merging with a or d);
// else a; else d; else new label. Two-argument copies are the only merge
// sites — the tree guarantees all other configurations are already
// equivalent.
func DecisionTree(img *binimg.Image, lm *binimg.LabelMap, sink Sink, rowStart, rowEnd int) {
	DecisionTreeUntil(img, lm, sink, rowStart, rowEnd, nil)
}

// DecisionTreeUntil is DecisionTree with cooperative cancellation: every
// pollRows rows it polls done and, if the channel is closed, abandons the
// scan and reports false. A nil done never cancels. Labels written before the
// stop remain in lm but the scan is incomplete — callers must discard the
// labeling.
func DecisionTreeUntil(img *binimg.Image, lm *binimg.LabelMap, sink Sink, rowStart, rowEnd int, done <-chan struct{}) bool {
	w := img.Width
	pix := img.Pix
	lab := lm.L
	for y := rowStart; y < rowEnd; y++ {
		if done != nil && (y-rowStart)%pollRows == 0 && stopRequested(done) {
			return false
		}
		row := y * w
		up := row - w
		hasUp := y > rowStart
		for x := 0; x < w; x++ {
			if pix[row+x] == 0 {
				continue
			}
			var a, b, c, d uint8
			if hasUp {
				b = pix[up+x]
				if x > 0 {
					a = pix[up+x-1]
				}
				if x+1 < w {
					c = pix[up+x+1]
				}
			}
			if x > 0 {
				d = pix[row+x-1]
			}
			var le Label
			switch {
			case b != 0:
				le = lab[up+x]
			case c != 0:
				switch {
				case a != 0:
					le = sink.Merge(lab[up+x+1], lab[up+x-1])
				case d != 0:
					le = sink.Merge(lab[up+x+1], lab[row+x-1])
				default:
					le = lab[up+x+1]
				}
			case a != 0:
				le = lab[up+x-1]
			case d != 0:
				le = lab[row+x-1]
			default:
				le = sink.NewLabel()
			}
			lab[row+x] = le
		}
	}
	return true
}

// PairRows runs the He-Chao-Suzuki two-rows-at-a-time scan (paper Alg. 6,
// mask Fig. 1b) over rows [rowStart, rowEnd) of img, writing provisional
// labels into lm. Rows above rowStart are never read. When the range has an
// odd number of rows the final row is processed alone (no g row).
//
// For each column x the scan labels e = (x, r) and g = (x, r+1) together.
// Mask: a, b, c = row r-1 at x-1, x, x+1; d = (x-1, r); f = (x-1, r+1).
//
// Two pseudo-code typos in the paper's Alg. 6 are corrected here (see
// DESIGN.md §3): line 14 merges label(e) with label(a), and the new-label
// assignment in the e==0 branch goes to g. The trailing "if image(g):
// label(g) = label(e)" applies to every e==1 case.
func PairRows(img *binimg.Image, lm *binimg.LabelMap, sink Sink, rowStart, rowEnd int) {
	PairRowsUntil(img, lm, sink, rowStart, rowEnd, nil)
}

// PairRowsUntil is PairRows with cooperative cancellation: every pollRows
// row pairs it polls done and, if the channel is closed, abandons the scan
// and reports false. A nil done never cancels.
func PairRowsUntil(img *binimg.Image, lm *binimg.LabelMap, sink Sink, rowStart, rowEnd int, done <-chan struct{}) bool {
	w := img.Width
	pix := img.Pix
	lab := lm.L
	for r := rowStart; r < rowEnd; r += 2 {
		if done != nil && (r-rowStart)%(2*pollRows) == 0 && stopRequested(done) {
			return false
		}
		row := r * w
		up := row - w
		down := row + w
		hasUp := r > rowStart
		hasG := r+1 < rowEnd
		for x := 0; x < w; x++ {
			e := pix[row+x]
			var g uint8
			if hasG {
				g = pix[down+x]
			}
			if e != 0 {
				var a, b, c, d, f uint8
				if hasUp {
					b = pix[up+x]
					if x > 0 {
						a = pix[up+x-1]
					}
					if x+1 < w {
						c = pix[up+x+1]
					}
				}
				if x > 0 {
					d = pix[row+x-1]
					if hasG {
						f = pix[down+x-1]
					}
				}
				var le Label
				if d == 0 {
					switch {
					case b != 0:
						le = lab[up+x]
						if f != 0 {
							le = sink.Merge(le, lab[down+x-1])
						}
					case f != 0:
						le = lab[down+x-1]
						if a != 0 {
							le = sink.Merge(le, lab[up+x-1])
						}
						if c != 0 {
							le = sink.Merge(le, lab[up+x+1])
						}
					case a != 0:
						le = lab[up+x-1]
						if c != 0 {
							le = sink.Merge(le, lab[up+x+1])
						}
					case c != 0:
						le = lab[up+x+1]
					default:
						le = sink.NewLabel()
					}
				} else {
					le = lab[row+x-1]
					if b == 0 && c != 0 {
						le = sink.Merge(le, lab[up+x+1])
					}
				}
				lab[row+x] = le
				if g != 0 {
					lab[down+x] = le
				}
			} else if g != 0 {
				var lg Label
				switch {
				case x > 0 && pix[row+x-1] != 0: // d
					lg = lab[row+x-1]
				case x > 0 && pix[down+x-1] != 0: // f
					lg = lab[down+x-1]
				default:
					lg = sink.NewLabel()
				}
				lab[down+x] = lg
			}
		}
	}
	return true
}

// AllNeighbors8 is the classic Rosenfeld 8-connected forward scan: every
// already-visited neighbor (d, a, b, c) of a foreground pixel is examined and
// all distinct labels among them are merged. Paired with the same sink as
// DecisionTree it isolates the decision tree's benefit (scan ablation).
func AllNeighbors8(img *binimg.Image, lm *binimg.LabelMap, sink Sink, rowStart, rowEnd int) {
	w := img.Width
	pix := img.Pix
	lab := lm.L
	for y := rowStart; y < rowEnd; y++ {
		row := y * w
		up := row - w
		hasUp := y > rowStart
		for x := 0; x < w; x++ {
			if pix[row+x] == 0 {
				continue
			}
			var le Label
			take := func(idx int) {
				if pix[idx] == 0 {
					return
				}
				if le == 0 {
					le = lab[idx]
				} else if lab[idx] != le {
					le = sink.Merge(le, lab[idx])
				}
			}
			if x > 0 {
				take(row + x - 1)
			}
			if hasUp {
				if x > 0 {
					take(up + x - 1)
				}
				take(up + x)
				if x+1 < w {
					take(up + x + 1)
				}
			}
			if le == 0 {
				le = sink.NewLabel()
			}
			lab[row+x] = le
		}
	}
}

// AllNeighbors4 is the 4-connected variant of AllNeighbors8: only the left
// and top neighbors are examined. The paper's algorithms are 8-connected
// only; this scan exists so the library covers both standard
// connectivities.
func AllNeighbors4(img *binimg.Image, lm *binimg.LabelMap, sink Sink, rowStart, rowEnd int) {
	w := img.Width
	pix := img.Pix
	lab := lm.L
	for y := rowStart; y < rowEnd; y++ {
		row := y * w
		up := row - w
		hasUp := y > rowStart
		for x := 0; x < w; x++ {
			if pix[row+x] == 0 {
				continue
			}
			var le Label
			if x > 0 && pix[row+x-1] != 0 {
				le = lab[row+x-1]
			}
			if hasUp && pix[up+x] != 0 {
				if le == 0 {
					le = lab[up+x]
				} else if lab[up+x] != le {
					le = sink.Merge(le, lab[up+x])
				}
			}
			if le == 0 {
				le = sink.NewLabel()
			}
			lab[row+x] = le
		}
	}
}

// MaxProvisionalLabels returns a safe upper bound on the number of
// provisional labels the 8-connected scans (DecisionTree, PairRows,
// AllNeighbors8) can create over a w x h raster. A pixel receives a new
// label only when all of its already-visited neighbors are background, so
// new-label pixels form an independent set in the 8-connectivity
// (king-graph) sense, of which there are at most ceil(w/2) * ceil(h/2).
func MaxProvisionalLabels(w, h int) int {
	return ((w + 1) / 2) * ((h + 1) / 2)
}

// MaxProvisionalLabels4 is the bound for the 4-connected scan
// (AllNeighbors4): no two new-label pixels can be horizontally adjacent, but
// a checkerboard makes every foreground pixel a new label vertically, so the
// bound is ceil(w/2) per row.
func MaxProvisionalLabels4(w, h int) int {
	return ((w + 1) / 2) * h
}

// RowPairLabelStride returns the per-row-pair provisional-label budget used
// by the parallel algorithm to keep chunk label ranges disjoint: a chunk
// starting at row r draws labels from base = (r/2)*RowPairLabelStride(w) + 1.
func RowPairLabelStride(w int) int {
	return (w + 1) / 2
}
