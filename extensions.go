package paremsp

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"repro/internal/contour"
	"repro/internal/grayccl"
	"repro/internal/pnm"
	"repro/internal/vol3d"
)

// Contour is the ordered outer boundary of one component.
type Contour = contour.Contour

// Point is a pixel coordinate on a contour.
type Point = contour.Point

// TraceContours extracts the outer boundary of every component of a label
// map with consecutive labels 1..n (Moore neighborhood tracing).
func TraceContours(lm *LabelMap, n int) []Contour { return contour.TraceAll(lm, n) }

// TraceContoursCtx is TraceContours with cooperative cancellation: the seed
// scan polls ctx per row block and after each traced component, aborting
// with ctx.Err().
func TraceContoursCtx(ctx context.Context, lm *LabelMap, n int) ([]Contour, error) {
	if lm == nil {
		return nil, fmt.Errorf("paremsp: nil label map")
	}
	return contour.TraceAllCtx(ctx, lm, n)
}

// ContourPerimeter returns the crack-length perimeter estimate of a traced
// contour (unit steps count 1, diagonal steps sqrt(2)).
func ContourPerimeter(points []Point) float64 { return contour.Perimeter(points) }

// GrayImage is a grayscale raster (one byte per pixel) for the gray-level
// labeling extension.
type GrayImage = grayccl.Image

// Volume is a 3D binary voxel grid for the volumetric labeling extension.
type Volume = vol3d.Volume

// LabelVolumeMap is the labeling result for a Volume; 0 is background.
type LabelVolumeMap = vol3d.LabelVolume

// NewGrayImage returns a zeroed grayscale image.
func NewGrayImage(width, height int) *GrayImage { return grayccl.New(width, height) }

// extAlg resolves the algorithm selection for the gray and volume modes,
// which run the paper's pair-scan machinery only: AlgPAREMSP (the default)
// selects the chunk-parallel labeler, AlgAREMSP the sequential one. Every
// other algorithm name is rejected — the baselines have no gray or 3D form.
func extAlg(mode Mode, alg Algorithm) (parallel bool, err error) {
	switch alg {
	case "", AlgPAREMSP:
		return true, nil
	case AlgAREMSP:
		return false, nil
	default:
		return false, fmt.Errorf("paremsp: algorithm %q does not support mode %q (want %q or %q)",
			alg, mode, AlgPAREMSP, AlgAREMSP)
	}
}

// LabelGray computes gray-level connected components (adjacent pixels with
// equal values, 8-connectivity) with the paper's pair-scan + REMSP
// machinery. Every pixel is labeled; labels are consecutive 1..n.
func LabelGray(img *GrayImage) (*LabelMap, int) { return grayccl.Label(img) }

// LabelGrayParallel is LabelGray with PAREMSP-style chunked parallelism.
func LabelGrayParallel(img *GrayImage, threads int) (*LabelMap, int) {
	return grayccl.PLabel(img, threads)
}

// LabelGrayDelta labels components under the tolerance predicate
// |v(p)-v(q)| <= delta between adjacent pixels (transitive closure).
func LabelGrayDelta(img *GrayImage, delta uint8) (*LabelMap, int) {
	return grayccl.LabelDelta(img, delta)
}

// LabelGrayInto is LabelGrayIntoCtx without cancellation.
func LabelGrayInto(img *GrayImage, dst *LabelMap, sc *Scratch, opt Options) (*Result, error) {
	return LabelGrayIntoCtx(context.Background(), img, dst, sc, opt)
}

// LabelGrayIntoCtx labels the gray-level connected components of img into
// caller-provided buffers with cooperative cancellation, under the same
// dst/sc contract as LabelIntoCtx: dst is reshaped with Reset, sc supplies
// the equivalence buffers (shared with the binary algorithms — one Scratch
// serves every mode), and either may be nil. opt.Mode selects the predicate:
// ModeGray (the default here) labels maximal equal-value regions;
// ModeGrayDelta labels the transitive closure of |v(p)-v(q)| <= opt.Delta.
// Gray labeling is 8-connected only. The scan and relabel passes poll ctx
// per row block; a canceled labeling leaves dst and sc reusable but its
// contents undefined.
func LabelGrayIntoCtx(ctx context.Context, img *GrayImage, dst *LabelMap, sc *Scratch, opt Options) (*Result, error) {
	if img == nil {
		return nil, fmt.Errorf("paremsp: nil gray image")
	}
	mode := opt.Mode
	if mode == "" {
		mode = ModeGray
	}
	if mode != ModeGray && mode != ModeGrayDelta {
		return nil, fmt.Errorf("paremsp: LabelGrayIntoCtx supports modes %q and %q, got %q",
			ModeGray, ModeGrayDelta, mode)
	}
	if opt.Connectivity != 0 && opt.Connectivity != 8 {
		return nil, fmt.Errorf("paremsp: mode %q supports only 8-connectivity, got %d", mode, opt.Connectivity)
	}
	parallel, err := extAlg(mode, opt.Algorithm)
	if err != nil {
		return nil, err
	}
	if dst == nil {
		dst = &LabelMap{}
	}
	if sc == nil {
		sc = &Scratch{}
	}
	p := sc.Parents(grayccl.MaxLabels(img.Width, img.Height))
	res := &Result{Labels: dst}
	var n int
	switch {
	case mode == ModeGrayDelta:
		// The tolerance predicate is not transitive; only the exhaustive
		// sequential scan exists.
		n, err = grayccl.LabelDeltaIntoCtx(ctx, img, dst, p, opt.Delta)
	case parallel:
		threads := opt.Threads
		if threads <= 0 {
			threads = runtime.GOMAXPROCS(0)
		}
		n, err = grayccl.PLabelIntoCtx(ctx, img, dst, p, sc.LockTable(0), threads)
	default:
		n, err = grayccl.LabelIntoCtx(ctx, img, dst, p)
	}
	if err != nil {
		return nil, err
	}
	res.NumComponents = n
	return res, nil
}

// NewVolume returns a zeroed 3D binary volume.
func NewVolume(w, h, d int) *Volume { return vol3d.NewVolume(w, h, d) }

// VolumeResult is the outcome of a volumetric labeling.
type VolumeResult struct {
	// Labels is the final label volume: consecutive labels 1..NumComponents,
	// background 0.
	Labels *LabelVolumeMap
	// NumComponents is the number of 26-connected components found.
	NumComponents int
}

// LabelVolume computes 26-connected components of a binary volume with the
// sequential two-pass algorithm; labels are consecutive 1..n.
func LabelVolume(vol *Volume) (*LabelVolumeMap, int) { return vol3d.Label(vol) }

// LabelVolumeParallel is LabelVolume with z-slab parallelism (the PAREMSP
// construction applied along the z axis).
func LabelVolumeParallel(vol *Volume, threads int) (*LabelVolumeMap, int) {
	return vol3d.PLabel(vol, threads)
}

// LabelVolumeInto is LabelVolumeIntoCtx without cancellation.
func LabelVolumeInto(vol *Volume, dst *LabelVolumeMap, sc *Scratch, opt Options) (*VolumeResult, error) {
	return LabelVolumeIntoCtx(context.Background(), vol, dst, sc, opt)
}

// LabelVolumeIntoCtx labels the 26-connected components of vol into caller-
// provided buffers with cooperative cancellation: dst is reshaped with
// Reset, sc supplies the equivalence buffers (shared with the 2D modes),
// and either may be nil. opt.Mode must be ModeVolume or empty; volumetric
// labeling is 26-connected, so opt.Connectivity must be 0 or 26. The scan
// and relabel passes poll ctx per raster-row block (the parallel labeler
// slabs the volume along z exactly as PAREMSP chunks rows); a canceled
// labeling leaves dst and sc reusable but its contents undefined.
func LabelVolumeIntoCtx(ctx context.Context, vol *Volume, dst *LabelVolumeMap, sc *Scratch, opt Options) (*VolumeResult, error) {
	if vol == nil {
		return nil, fmt.Errorf("paremsp: nil volume")
	}
	mode := opt.Mode
	if mode == "" {
		mode = ModeVolume
	}
	if mode != ModeVolume {
		return nil, fmt.Errorf("paremsp: LabelVolumeIntoCtx supports mode %q, got %q", ModeVolume, mode)
	}
	if opt.Connectivity != 0 && opt.Connectivity != 26 {
		return nil, fmt.Errorf("paremsp: mode %q supports only 26-connectivity, got %d", mode, opt.Connectivity)
	}
	parallel, err := extAlg(mode, opt.Algorithm)
	if err != nil {
		return nil, err
	}
	if dst == nil {
		dst = &LabelVolumeMap{}
	}
	if sc == nil {
		sc = &Scratch{}
	}
	p := sc.Parents(vol3d.MaxLabels3D(vol.W, vol.H, vol.D))
	res := &VolumeResult{Labels: dst}
	var n int
	if parallel {
		threads := opt.Threads
		if threads <= 0 {
			threads = runtime.GOMAXPROCS(0)
		}
		n, err = vol3d.PLabelIntoCtx(ctx, vol, dst, p, sc.LockTable(0), threads)
	} else {
		n, err = vol3d.LabelIntoCtx(ctx, vol, dst, p)
	}
	if err != nil {
		return nil, err
	}
	res.NumComponents = n
	return res, nil
}

// VolumeComponentSizes returns the voxel count of each component of a label
// volume with consecutive labels 1..n, indexed by label-1.
func VolumeComponentSizes(lv *LabelVolumeMap, n int) []int {
	return vol3d.ComponentSizes(lv, n)
}

// DecodeGrayPNM reads a PGM (P2/P5) stream into a gray image, preserving
// gray values instead of binarizing (16-bit samples scale to 8 bits).
func DecodeGrayPNM(r io.Reader) (*GrayImage, error) {
	img := &GrayImage{}
	if err := pnm.DecodeGrayInto(r, img); err != nil {
		return nil, err
	}
	return img, nil
}

// DecodeVolumePNM reads a multi-frame raw-PGM stream — concatenated P5
// graymaps, one per z-slice, identical dimensions — binarizing each slice at
// level (im2bw semantics; 0 selects the paper's 0.5).
func DecodeVolumePNM(r io.Reader, level float64) (*Volume, error) {
	if level == 0 {
		level = 0.5
	}
	vol := &Volume{}
	if err := pnm.DecodeVolumeInto(r, level, vol); err != nil {
		return nil, err
	}
	return vol, nil
}
