package paremsp

import (
	"repro/internal/contour"
	"repro/internal/grayccl"
	"repro/internal/vol3d"
)

// Contour is the ordered outer boundary of one component.
type Contour = contour.Contour

// Point is a pixel coordinate on a contour.
type Point = contour.Point

// TraceContours extracts the outer boundary of every component of a label
// map with consecutive labels 1..n (Moore neighborhood tracing).
func TraceContours(lm *LabelMap, n int) []Contour { return contour.TraceAll(lm, n) }

// ContourPerimeter returns the crack-length perimeter estimate of a traced
// contour (unit steps count 1, diagonal steps sqrt(2)).
func ContourPerimeter(points []Point) float64 { return contour.Perimeter(points) }

// GrayImage is a grayscale raster (one byte per pixel) for the gray-level
// labeling extension.
type GrayImage = grayccl.Image

// Volume is a 3D binary voxel grid for the volumetric labeling extension.
type Volume = vol3d.Volume

// LabelVolumeMap is the labeling result for a Volume; 0 is background.
type LabelVolumeMap = vol3d.LabelVolume

// NewGrayImage returns a zeroed grayscale image.
func NewGrayImage(width, height int) *GrayImage { return grayccl.New(width, height) }

// LabelGray computes gray-level connected components (adjacent pixels with
// equal values, 8-connectivity) with the paper's pair-scan + REMSP
// machinery. Every pixel is labeled; labels are consecutive 1..n.
func LabelGray(img *GrayImage) (*LabelMap, int) { return grayccl.Label(img) }

// LabelGrayParallel is LabelGray with PAREMSP-style chunked parallelism.
func LabelGrayParallel(img *GrayImage, threads int) (*LabelMap, int) {
	return grayccl.PLabel(img, threads)
}

// LabelGrayDelta labels components under the tolerance predicate
// |v(p)-v(q)| <= delta between adjacent pixels (transitive closure).
func LabelGrayDelta(img *GrayImage, delta uint8) (*LabelMap, int) {
	return grayccl.LabelDelta(img, delta)
}

// NewVolume returns a zeroed 3D binary volume.
func NewVolume(w, h, d int) *Volume { return vol3d.NewVolume(w, h, d) }

// LabelVolume computes 26-connected components of a binary volume with the
// sequential two-pass algorithm; labels are consecutive 1..n.
func LabelVolume(vol *Volume) (*LabelVolumeMap, int) { return vol3d.Label(vol) }

// LabelVolumeParallel is LabelVolume with z-slab parallelism (the PAREMSP
// construction applied along the z axis).
func LabelVolumeParallel(vol *Volume, threads int) (*LabelVolumeMap, int) {
	return vol3d.PLabel(vol, threads)
}
