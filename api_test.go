package paremsp_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	paremsp "repro"
)

func testImage(t *testing.T) *paremsp.Image {
	t.Helper()
	img, err := paremsp.ParseImage(`
		##..#
		##..#
		.....
		#.#.#`)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestLabelDefaultAlgorithm(t *testing.T) {
	img := testImage(t)
	res, err := paremsp.Label(img, paremsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumComponents != 5 {
		t.Fatalf("NumComponents = %d, want 5", res.NumComponents)
	}
	if err := paremsp.Validate(img, res.Labels, res.NumComponents, true); err != nil {
		t.Fatal(err)
	}
}

func TestLabelEveryAlgorithmAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	img := paremsp.NewImage(57, 43)
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(2))
	}
	ref, err := paremsp.Label(img, paremsp.Options{Algorithm: paremsp.AlgFloodFill})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range paremsp.Algorithms() {
		res, err := paremsp.Label(img, paremsp.Options{Algorithm: alg, Threads: 6})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.NumComponents != ref.NumComponents {
			t.Fatalf("%s: %d components, reference %d", alg, res.NumComponents, ref.NumComponents)
		}
		if err := paremsp.Equivalent(res.Labels, ref.Labels); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}

func TestLabelPAREMSPPhases(t *testing.T) {
	img := testImage(t)
	res, err := paremsp.Label(img, paremsp.Options{Algorithm: paremsp.AlgPAREMSP, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases.Total() <= 0 {
		t.Fatalf("phases not recorded: %+v", res.Phases)
	}
	if res.Phases.LocalMerge() != res.Phases.Scan+res.Phases.Merge {
		t.Fatalf("LocalMerge mismatch: %+v", res.Phases)
	}
}

func TestLabelCASMerger(t *testing.T) {
	img := testImage(t)
	a, err := paremsp.Label(img, paremsp.Options{Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := paremsp.Label(img, paremsp.Options{Threads: 3, UseCASMerger: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := paremsp.Equivalent(a.Labels, b.Labels); err != nil {
		t.Fatal(err)
	}
}

func TestLabel4Connectivity(t *testing.T) {
	img, _ := paremsp.ParseImage("#.\n.#")
	res, err := paremsp.Label(img, paremsp.Options{Algorithm: paremsp.AlgFloodFill, Connectivity: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumComponents != 2 {
		t.Fatalf("4-conn components = %d, want 2", res.NumComponents)
	}
	res8, err := paremsp.Label(img, paremsp.Options{Algorithm: paremsp.AlgAREMSP})
	if err != nil {
		t.Fatal(err)
	}
	if res8.NumComponents != 1 {
		t.Fatalf("8-conn components = %d, want 1", res8.NumComponents)
	}
}

func TestLabelErrors(t *testing.T) {
	img := testImage(t)
	if _, err := paremsp.Label(nil, paremsp.Options{}); err == nil {
		t.Error("nil image accepted")
	}
	if _, err := paremsp.Label(img, paremsp.Options{Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := paremsp.Label(img, paremsp.Options{Connectivity: 6}); err == nil {
		t.Error("connectivity 6 accepted")
	}
	if _, err := paremsp.Label(img, paremsp.Options{Algorithm: paremsp.AlgAREMSP, Connectivity: 4}); err == nil {
		t.Error("AREMSP with 4-connectivity accepted")
	}
}

func TestAlgorithmsSortedAndComplete(t *testing.T) {
	algs := paremsp.Algorithms()
	if len(algs) != 12 {
		t.Fatalf("Algorithms() returned %d entries, want 12", len(algs))
	}
	for i := 1; i < len(algs); i++ {
		if algs[i-1] >= algs[i] {
			t.Fatalf("Algorithms() not sorted: %v", algs)
		}
	}
}

func TestCountComponents(t *testing.T) {
	img := testImage(t)
	if n := paremsp.CountComponents(img); n != 5 {
		t.Fatalf("CountComponents = %d, want 5", n)
	}
}

func TestComponentsOf(t *testing.T) {
	img := testImage(t)
	res, _ := paremsp.Label(img, paremsp.Options{Algorithm: paremsp.AlgAREMSP})
	comps := paremsp.ComponentsOf(res.Labels)
	if len(comps) != 5 {
		t.Fatalf("len = %d, want 5", len(comps))
	}
	total := 0
	for _, c := range comps {
		total += c.Area
	}
	if total != img.ForegroundCount() {
		t.Fatalf("areas sum to %d, want %d", total, img.ForegroundCount())
	}
}

func TestFromGray(t *testing.T) {
	img, err := paremsp.FromGray(2, 1, []uint8{10, 250}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if img.Pix[0] != 0 || img.Pix[1] != 1 {
		t.Fatalf("FromGray wrong: %v", img.Pix)
	}
}

func TestPNMRoundTripViaFacade(t *testing.T) {
	img := testImage(t)
	var buf bytes.Buffer
	if err := paremsp.EncodePBM(&buf, img, true); err != nil {
		t.Fatal(err)
	}
	back, err := paremsp.DecodePNM(&buf, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(img) {
		t.Fatal("facade PBM round trip failed")
	}
}

func TestEncodeLabelOutputs(t *testing.T) {
	img := testImage(t)
	res, _ := paremsp.Label(img, paremsp.Options{Algorithm: paremsp.AlgAREMSP})
	var pgm, png bytes.Buffer
	if err := paremsp.EncodeLabelsPGM(&pgm, res.Labels); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(pgm.String(), "P5\n") {
		t.Fatal("PGM output missing magic")
	}
	if err := paremsp.EncodeLabelsPNG(&png, res.Labels); err != nil {
		t.Fatal(err)
	}
	if png.Len() == 0 {
		t.Fatal("PNG output empty")
	}
	back, err := paremsp.DecodePNG(&png, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(img) {
		t.Fatal("PNG label mask does not reproduce the image")
	}
}

func TestLabelIntoMatchesLabel(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	img := paremsp.NewImage(64, 48)
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(2))
	}
	dst := &paremsp.LabelMap{}
	sc := &paremsp.Scratch{}
	for _, alg := range paremsp.Algorithms() {
		want, err := paremsp.Label(img, paremsp.Options{Algorithm: alg, Threads: 3})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		got, err := paremsp.LabelInto(img, dst, sc, paremsp.Options{Algorithm: alg, Threads: 3})
		if err != nil {
			t.Fatalf("%s: LabelInto: %v", alg, err)
		}
		if got.Labels != dst {
			t.Fatalf("%s: LabelInto did not label into dst", alg)
		}
		if got.NumComponents != want.NumComponents {
			t.Fatalf("%s: LabelInto found %d components, Label found %d",
				alg, got.NumComponents, want.NumComponents)
		}
		if err := paremsp.Equivalent(got.Labels, want.Labels); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}

func TestLabelIntoReusesBuffers(t *testing.T) {
	big := paremsp.NewImage(50, 40)
	small := paremsp.NewImage(20, 10)
	for _, im := range []*paremsp.Image{big, small} {
		for i := range im.Pix {
			im.Pix[i] = uint8((i / 3) % 2)
		}
	}
	dst := &paremsp.LabelMap{}
	sc := &paremsp.Scratch{}
	if _, err := paremsp.LabelInto(big, dst, sc, paremsp.Options{}); err != nil {
		t.Fatal(err)
	}
	bigBuf := &dst.L[0]
	res, err := paremsp.LabelInto(small, dst, sc, paremsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if &dst.L[0] != bigBuf {
		t.Fatal("labeling a smaller image reallocated the label buffer")
	}
	if dst.Width != small.Width || dst.Height != small.Height {
		t.Fatalf("dst reshaped to %dx%d, want %dx%d", dst.Width, dst.Height, small.Width, small.Height)
	}
	if err := paremsp.Validate(small, res.Labels, res.NumComponents, true); err != nil {
		t.Fatal(err)
	}
}

func TestLabelBitmap(t *testing.T) {
	img := testImage(t)
	var buf bytes.Buffer
	if err := paremsp.EncodePBM(&buf, img, true); err != nil {
		t.Fatal(err)
	}
	bm, err := paremsp.DecodePBMBitmap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := paremsp.Label(img, paremsp.Options{Algorithm: paremsp.AlgAREMSP})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []paremsp.Algorithm{"", paremsp.AlgBREMSP, paremsp.AlgPBREMSP} {
		res, err := paremsp.LabelBitmap(bm, paremsp.Options{Algorithm: alg, Threads: 2})
		if err != nil {
			t.Fatalf("%q: %v", alg, err)
		}
		if res.NumComponents != ref.NumComponents {
			t.Fatalf("%q: %d components, want %d", alg, res.NumComponents, ref.NumComponents)
		}
		if err := paremsp.Equivalent(res.Labels, ref.Labels); err != nil {
			t.Fatalf("%q: %v", alg, err)
		}
	}
	if res, err := paremsp.LabelBitmap(bm, paremsp.Options{Algorithm: paremsp.AlgPBREMSP, Threads: 2}); err != nil {
		t.Fatal(err)
	} else if res.Phases.Total() <= 0 {
		t.Fatalf("PBREMSP phases not recorded: %+v", res.Phases)
	}
}

func TestLabelBitmapErrors(t *testing.T) {
	bm := paremsp.NewBitmap(4, 4)
	if _, err := paremsp.LabelBitmap(nil, paremsp.Options{}); err == nil {
		t.Error("nil bitmap accepted")
	}
	if _, err := paremsp.LabelBitmap(bm, paremsp.Options{Algorithm: paremsp.AlgClassic}); err == nil {
		t.Error("byte-raster algorithm accepted for a packed bitmap")
	}
	if _, err := paremsp.LabelBitmap(bm, paremsp.Options{Connectivity: 4}); err == nil {
		t.Error("4-connectivity accepted for bit-packed labeling")
	}
}

func TestLabelStream(t *testing.T) {
	img := testImage(t)
	var pbm bytes.Buffer
	if err := paremsp.EncodePBM(&pbm, img, true); err != nil {
		t.Fatal(err)
	}
	for _, bandRows := range []int{0, 1, 2} {
		res, err := paremsp.LabelStream(bytes.NewReader(pbm.Bytes()), paremsp.StreamOptions{BandRows: bandRows})
		if err != nil {
			t.Fatalf("band %d: %v", bandRows, err)
		}
		if res.Width != img.Width || res.Height != img.Height {
			t.Fatalf("band %d: shape %dx%d, want %dx%d", bandRows, res.Width, res.Height, img.Width, img.Height)
		}
		ref, err := paremsp.Label(img, paremsp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumComponents != ref.NumComponents {
			t.Fatalf("band %d: %d components, want %d", bandRows, res.NumComponents, ref.NumComponents)
		}
		var area int64
		for _, c := range res.Components {
			area += c.Area
		}
		if got := int64(img.ForegroundCount()); area != got || res.ForegroundPixels != got {
			t.Fatalf("band %d: area sum %d / foreground %d, want %d", bandRows, area, res.ForegroundPixels, got)
		}
	}
	if _, err := paremsp.LabelStream(strings.NewReader("P1\n1 1\n1\n"), paremsp.StreamOptions{}); err == nil {
		t.Error("plain PBM accepted by the band streamer")
	}
}
