package paremsp_test

import (
	"math/rand"
	"testing"

	paremsp "repro"
)

func TestLabelGrayFacade(t *testing.T) {
	img := paremsp.NewGrayImage(8, 6)
	for i := range img.Pix {
		img.Pix[i] = uint8((i % 8) / 4 * 100) // left half 0, right half 100
	}
	lm, n := paremsp.LabelGray(img)
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
	lmPar, nPar := paremsp.LabelGrayParallel(img, 3)
	if nPar != 2 {
		t.Fatalf("parallel n = %d, want 2", nPar)
	}
	if err := paremsp.Equivalent(lm, lmPar); err != nil {
		t.Fatal(err)
	}
	if _, n := paremsp.LabelGrayDelta(img, 100); n != 1 {
		t.Fatal("delta 100 must join both halves")
	}
}

func TestTraceContoursFacade(t *testing.T) {
	img, _ := paremsp.ParseImage(`
		.###.
		.###.
		.....
		#....`)
	res, err := paremsp.Label(img, paremsp.Options{Algorithm: paremsp.AlgAREMSP})
	if err != nil {
		t.Fatal(err)
	}
	cs := paremsp.TraceContours(res.Labels, res.NumComponents)
	if len(cs) != 2 {
		t.Fatalf("traced %d contours, want 2", len(cs))
	}
	if p := paremsp.ContourPerimeter(cs[0].Points); p <= 0 {
		t.Fatalf("rectangle perimeter = %v", p)
	}
	if len(cs[1].Points) != 1 {
		t.Fatalf("dot contour has %d points, want 1", len(cs[1].Points))
	}
}

func TestRelabelByAreaFacade(t *testing.T) {
	img, _ := paremsp.ParseImage("#...\n..##")
	res, err := paremsp.Label(img, paremsp.Options{Algorithm: paremsp.AlgFloodFill})
	if err != nil {
		t.Fatal(err)
	}
	paremsp.RelabelByArea(res.Labels, res.NumComponents)
	comps := paremsp.ComponentsOf(res.Labels)
	if comps[0].Area != 2 || comps[1].Area != 1 {
		t.Fatalf("areas after relabel: %d, %d", comps[0].Area, comps[1].Area)
	}
}

func TestLabelVolumeFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	vol := paremsp.NewVolume(9, 8, 7)
	for i := range vol.Vox {
		vol.Vox[i] = uint8(rng.Intn(2))
	}
	lv, n := paremsp.LabelVolume(vol)
	lvPar, nPar := paremsp.LabelVolumeParallel(vol, 4)
	if n != nPar {
		t.Fatalf("sequential %d vs parallel %d components", n, nPar)
	}
	// Pointwise zero/non-zero agreement plus bijection.
	ab := map[int32]int32{}
	for i := range lv.L {
		a, b := lv.L[i], lvPar.L[i]
		if (a == 0) != (b == 0) {
			t.Fatal("foreground mismatch")
		}
		if a == 0 {
			continue
		}
		if m, ok := ab[a]; ok && m != b {
			t.Fatal("label maps not bijective")
		}
		ab[a] = b
	}
	if lv.At(0, 0, 0) != lv.L[0] {
		t.Fatal("LabelVolumeMap.At inconsistent")
	}
}
