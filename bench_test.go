// Benchmarks regenerating the paper's evaluation (one benchmark family per
// table/figure; see DESIGN.md §5) plus the design-choice ablations of
// DESIGN.md §6. The same image specs back cmd/paperbench, which prints the
// tables in the paper's format; these benches expose the raw numbers to
// `go test -bench` tooling.
//
// Bench images are built at benchScale of the paper's sizes so the default
// sweep completes quickly; run cmd/paperbench with a larger -scale for
// paper-sized measurements.
package paremsp_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	paremsp "repro"
	"repro/internal/baseline"
	"repro/internal/binimg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/pnm"
	"repro/internal/scan"
	"repro/internal/unionfind"
)

const benchScale = 0.02

var (
	benchOnce    sync.Once
	benchClasses map[string][]*binimg.Image
	benchNLCD    []*binimg.Image
)

func benchImages() (map[string][]*binimg.Image, []*binimg.Image) {
	benchOnce.Do(func() {
		benchClasses = map[string][]*binimg.Image{}
		for class, specs := range experiments.SmallClasses(benchScale) {
			for _, spec := range specs {
				benchClasses[class] = append(benchClasses[class], spec.Build())
			}
		}
		for _, spec := range experiments.NLCDImages(benchScale) {
			benchNLCD = append(benchNLCD, spec.Build())
		}
	})
	return benchClasses, benchNLCD
}

func pixels(imgs []*binimg.Image) int64 {
	var n int64
	for _, im := range imgs {
		n += int64(len(im.Pix))
	}
	return n
}

// BenchmarkTable2 regenerates Table II: the four sequential algorithms over
// each dataset class. Bytes/op-style throughput is reported as pixels/s via
// b.SetBytes (one pixel = one byte).
func BenchmarkTable2(b *testing.B) {
	classes, nlcd := benchImages()
	all := map[string][]*binimg.Image{
		"Aerial": classes["Aerial"], "Texture": classes["Texture"],
		"Misc": classes["Misc"], "NLCD": nlcd,
	}
	for _, class := range experiments.ClassOrder {
		imgs := all[class]
		for _, alg := range experiments.SequentialAlgs {
			b.Run(fmt.Sprintf("%s/%s", class, alg.Name), func(b *testing.B) {
				b.SetBytes(pixels(imgs))
				for i := 0; i < b.N; i++ {
					for _, img := range imgs {
						alg.Run(img)
					}
				}
			})
		}
	}
}

// BenchmarkTable4 regenerates Table IV: PAREMSP over each class at the
// paper's thread counts.
func BenchmarkTable4(b *testing.B) {
	classes, nlcd := benchImages()
	all := map[string][]*binimg.Image{
		"Aerial": classes["Aerial"], "Texture": classes["Texture"],
		"Misc": classes["Misc"], "NLCD": nlcd,
	}
	for _, class := range experiments.ClassOrder {
		imgs := all[class]
		for _, threads := range experiments.Table4Threads {
			b.Run(fmt.Sprintf("%s/threads=%d", class, threads), func(b *testing.B) {
				b.SetBytes(pixels(imgs))
				for i := 0; i < b.N; i++ {
					for _, img := range imgs {
						core.PAREMSP(img, threads)
					}
				}
			})
		}
	}
}

// BenchmarkFig4 regenerates Figure 4's underlying measurements: PAREMSP on
// the small classes across the figure's thread axis (speedup = the
// threads=0(seq) time divided by the threads=N time).
func BenchmarkFig4(b *testing.B) {
	classes, _ := benchImages()
	for _, class := range []string{"Aerial", "Misc", "Texture"} {
		imgs := classes[class]
		b.Run(fmt.Sprintf("%s/sequential", class), func(b *testing.B) {
			b.SetBytes(pixels(imgs))
			for i := 0; i < b.N; i++ {
				for _, img := range imgs {
					core.AREMSP(img)
				}
			}
		})
		for _, threads := range experiments.Fig4Threads {
			b.Run(fmt.Sprintf("%s/threads=%d", class, threads), func(b *testing.B) {
				b.SetBytes(pixels(imgs))
				for i := 0; i < b.N; i++ {
					for _, img := range imgs {
						core.PAREMSP(img, threads)
					}
				}
			})
		}
	}
}

// BenchmarkFig5 regenerates Figure 5's underlying measurements: per NLCD
// image and thread count, the local (scan) and local+merge phase times are
// reported as custom metrics alongside the full run time.
func BenchmarkFig5(b *testing.B) {
	_, nlcd := benchImages()
	for i, img := range nlcd {
		name := fmt.Sprintf("image_%d_%.0fMB", i+1, experiments.NLCDSizesMB[i])
		for _, threads := range []int{1, 2, 6, 16, 24} {
			b.Run(fmt.Sprintf("%s/threads=%d", name, threads), func(b *testing.B) {
				b.SetBytes(int64(len(img.Pix)))
				var scanNs, mergeNs float64
				for i := 0; i < b.N; i++ {
					_, _, times := core.PAREMSPTimed(img, core.Options{Threads: threads})
					scanNs += float64(times.Scan.Nanoseconds())
					mergeNs += float64(times.Merge.Nanoseconds())
				}
				b.ReportMetric(scanNs/float64(b.N), "local-ns/op")
				b.ReportMetric((scanNs+mergeNs)/float64(b.N), "local+merge-ns/op")
			})
		}
	}
}

// BenchmarkAblationUnionFind holds the scan strategy fixed (pair-row) and
// varies the equivalence machinery: REMSP (the paper's choice) vs
// link-by-rank+PC vs the He rtable — isolating the union-find contribution
// claimed in Table II.
func BenchmarkAblationUnionFind(b *testing.B) {
	_, nlcd := benchImages()
	img := nlcd[len(nlcd)-1]
	b.Run("pairscan/remsp", func(b *testing.B) {
		b.SetBytes(int64(len(img.Pix)))
		for i := 0; i < b.N; i++ {
			core.AREMSP(img)
		}
	})
	b.Run("pairscan/rankpc", func(b *testing.B) {
		b.SetBytes(int64(len(img.Pix)))
		for i := 0; i < b.N; i++ {
			lm := binimg.NewLabelMap(img.Width, img.Height)
			sink := baseline.NewRankPCSink(scan.MaxProvisionalLabels(img.Width, img.Height))
			scan.PairRows(img, lm, sink, 0, img.Height)
			sink.Flatten()
			for j, v := range lm.L {
				if v != 0 {
					lm.L[j] = sink.Lookup(v)
				}
			}
		}
	})
	b.Run("pairscan/hetable", func(b *testing.B) {
		b.SetBytes(int64(len(img.Pix)))
		for i := 0; i < b.N; i++ {
			baseline.ARUN(img)
		}
	})
}

// BenchmarkAblationScan holds the union-find fixed (REMSP) and varies the
// scan strategy: pair-row (AREMSP) vs decision tree (CCLREMSP) vs the
// classic all-neighbor scan — isolating the scan contribution.
func BenchmarkAblationScan(b *testing.B) {
	_, nlcd := benchImages()
	img := nlcd[len(nlcd)-1]
	b.Run("pairscan", func(b *testing.B) {
		b.SetBytes(int64(len(img.Pix)))
		for i := 0; i < b.N; i++ {
			core.AREMSP(img)
		}
	})
	b.Run("decisiontree", func(b *testing.B) {
		b.SetBytes(int64(len(img.Pix)))
		for i := 0; i < b.N; i++ {
			core.CCLREMSP(img)
		}
	})
	b.Run("allneighbors", func(b *testing.B) {
		b.SetBytes(int64(len(img.Pix)))
		for i := 0; i < b.N; i++ {
			lm := binimg.NewLabelMap(img.Width, img.Height)
			sink := core.NewRemSink(scan.MaxProvisionalLabels(img.Width, img.Height))
			scan.AllNeighbors8(img, lm, sink, 0, img.Height)
			unionfind.Flatten(sink.Parents(), sink.Count())
			p := sink.Parents()
			for j, v := range lm.L {
				if v != 0 {
					lm.L[j] = p[v]
				}
			}
		}
	})
}

// BenchmarkAblationMerger compares the paper's lock-based boundary MERGER
// with the lock-free CAS variant inside full PAREMSP runs.
func BenchmarkAblationMerger(b *testing.B) {
	_, nlcd := benchImages()
	img := nlcd[len(nlcd)-1]
	for _, kind := range []core.MergerKind{core.MergerLocked, core.MergerCAS} {
		b.Run(kind.String(), func(b *testing.B) {
			b.SetBytes(int64(len(img.Pix)))
			for i := 0; i < b.N; i++ {
				core.PAREMSPTimed(img, core.Options{Threads: 24, Merger: kind})
			}
		})
	}
}

// BenchmarkAblationBoundary compares parallel vs sequential chunk-boundary
// merging (the paper parallelizes it; this quantifies the gain).
func BenchmarkAblationBoundary(b *testing.B) {
	_, nlcd := benchImages()
	img := nlcd[len(nlcd)-1]
	for _, seq := range []bool{false, true} {
		name := "parallel"
		if seq {
			name = "sequential"
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(img.Pix)))
			for i := 0; i < b.N; i++ {
				core.PAREMSPTimed(img, core.Options{Threads: 24, SequentialBoundary: seq})
			}
		})
	}
}

// BenchmarkAblationRelabel compares parallel vs sequential final labeling
// passes.
func BenchmarkAblationRelabel(b *testing.B) {
	_, nlcd := benchImages()
	img := nlcd[len(nlcd)-1]
	for _, seq := range []bool{false, true} {
		name := "parallel"
		if seq {
			name = "sequential"
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(img.Pix)))
			for i := 0; i < b.N; i++ {
				core.PAREMSPTimed(img, core.Options{Threads: 24, SequentialRelabel: seq})
			}
		})
	}
}

// BenchmarkAblationDecomposition compares the paper's row-chunk
// decomposition against 2D tile grids at equal parallelism.
func BenchmarkAblationDecomposition(b *testing.B) {
	_, nlcd := benchImages()
	img := nlcd[len(nlcd)-1]
	b.Run("rows=24", func(b *testing.B) {
		b.SetBytes(int64(len(img.Pix)))
		for i := 0; i < b.N; i++ {
			core.PAREMSP(img, 24)
		}
	})
	for _, grid := range [][2]int{{4, 6}, {6, 4}, {24, 1}, {1, 24}} {
		b.Run(fmt.Sprintf("tiles=%dx%d", grid[0], grid[1]), func(b *testing.B) {
			b.SetBytes(int64(len(img.Pix)))
			for i := 0; i < b.N; i++ {
				core.PAREMSP2D(img, grid[0], grid[1], 24)
			}
		})
	}
}

// BenchmarkAblationLockStripes sweeps the striped-lock table size of the
// boundary MERGER (the paper locks per node; striping trades memory for
// contention).
func BenchmarkAblationLockStripes(b *testing.B) {
	_, nlcd := benchImages()
	img := nlcd[len(nlcd)-1]
	for _, stripes := range []int{1, 64, 1 << 10, 1 << 14, 1 << 18} {
		b.Run(fmt.Sprintf("stripes=%d", stripes), func(b *testing.B) {
			b.SetBytes(int64(len(img.Pix)))
			for i := 0; i < b.N; i++ {
				core.PAREMSPTimed(img, core.Options{Threads: 24, LockStripes: stripes})
			}
		})
	}
}

// BenchmarkUnionFindVariants micro-benchmarks the DSU family on a fixed
// random union/find workload (the Patwary-Blair-Manne comparison underlying
// the paper's REMSP choice).
func BenchmarkUnionFindVariants(b *testing.B) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(1))
	type op struct{ x, y unionfind.Label }
	ops := make([]op, 3*n)
	for i := range ops {
		ops[i] = op{unionfind.Label(rng.Intn(n)), unionfind.Label(rng.Intn(n))}
	}
	for _, variant := range unionfind.AllVariants() {
		if variant == unionfind.VariantQuickFind {
			continue // O(n) unions: not comparable
		}
		b.Run(variant, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := unionfind.MustNew(variant, n)
				for j := 0; j < n; j++ {
					d.MakeSet()
				}
				for _, o := range ops {
					d.Union(o.x, o.y)
				}
			}
		})
	}
}

// BenchmarkConcurrentMergers micro-benchmarks the two concurrent unions on
// the boundary-merge access pattern (pre-merged chunks, cross-seam edges).
func BenchmarkConcurrentMergers(b *testing.B) {
	const n = 1 << 16
	build := func() []unionfind.Label {
		p := make([]unionfind.Label, n)
		for i := range p {
			p[i] = unionfind.Label(i)
		}
		// Pre-merge 64-element chunks (the per-chunk scan result).
		for c := 0; c < n/64; c++ {
			for i := 1; i < 64; i++ {
				unionfind.MergeRemSP(p, unionfind.Label(c*64), unionfind.Label(c*64+i))
			}
		}
		return p
	}
	b.Run("locked", func(b *testing.B) {
		lt := unionfind.NewLockTable(0)
		p := build()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(7))
			for pb.Next() {
				x := unionfind.Label(rng.Intn(n))
				y := unionfind.Label(rng.Intn(n))
				unionfind.MergeLocked(p, lt, x, y)
			}
		})
	})
	b.Run("cas", func(b *testing.B) {
		p := build()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(7))
			for pb.Next() {
				x := unionfind.Label(rng.Intn(n))
				y := unionfind.Label(rng.Intn(n))
				unionfind.MergeCAS(p, x, y)
			}
		})
	})
}

// BenchmarkDatasetGenerators tracks generator cost (they bound how large a
// -scale the paperbench sweep can use).
func BenchmarkDatasetGenerators(b *testing.B) {
	const w, h = 512, 512
	gens := map[string]func() *binimg.Image{
		"noise":      func() *binimg.Image { return dataset.UniformNoise(w, h, 0.5, 1) },
		"landcover":  func() *binimg.Image { return dataset.LandCover(w, h, 64, 0.5, 1) },
		"aerial":     func() *binimg.Image { return dataset.Aerial(w, h, 1) },
		"texture":    func() *binimg.Image { return dataset.Texture(w, h, 1) },
		"misc":       func() *binimg.Image { return dataset.Misc(w, h, 1) },
		"serpentine": func() *binimg.Image { return dataset.Serpentine(w, h, 2, 3) },
	}
	for name, gen := range gens {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(w * h)
			for i := 0; i < b.N; i++ {
				gen()
			}
		})
	}
}

// BenchmarkLabelInto compares the allocating Label entry point against the
// buffer-reusing LabelInto on a 1024x1024 landcover image (PAREMSP, 4
// threads). Label pays for the 4 MiB label raster, the ~2 MiB parent array
// and the 128 KiB merger lock table on every call — measured at ~5.4 MB/op
// (29 allocs/op) — while LabelInto retains all three across calls and
// amortizes to ~28 KB/op (24 allocs/op, the residue being per-call goroutine
// and closure overhead): a ~190x reduction in allocated bytes per request,
// which is what lets the service layer's pooled engine label sustained
// traffic without per-request raster allocation.
func BenchmarkLabelInto(b *testing.B) {
	img := dataset.LandCover(1024, 1024, 32, 0.5, 1)
	opt := paremsp.Options{Threads: 4}
	b.Run("label", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(img.Pix)))
		for i := 0; i < b.N; i++ {
			if _, err := paremsp.Label(img, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("labelinto", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(img.Pix)))
		dst := &paremsp.LabelMap{}
		sc := &paremsp.Scratch{}
		for i := 0; i < b.N; i++ {
			if _, err := paremsp.LabelInto(img, dst, sc, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBitScan compares the byte-per-pixel scans against the bit-packed
// word-parallel run-scan pipeline. The landcover raster is the mid-density
// (~0.5) regime of the paper's NLCD class; the noise sweep covers the density
// classes from nearly-empty to nearly-full, where run lengths (and so the
// bit-scan advantage) vary the most.
func BenchmarkBitScan(b *testing.B) {
	seqAlgs := []struct {
		name string
		run  func(*binimg.Image) (*binimg.LabelMap, int)
	}{
		{"cclremsp", core.CCLREMSP},
		{"aremsp", core.AREMSP},
		{"bremsp", core.BREMSP},
	}
	land := dataset.LandCover(1024, 1024, 32, 0.5, 1)
	for _, alg := range seqAlgs {
		b.Run("landcover1024/"+alg.name, func(b *testing.B) {
			b.SetBytes(int64(len(land.Pix)))
			for i := 0; i < b.N; i++ {
				alg.run(land)
			}
		})
	}
	for _, density := range []float64{0.01, 0.10, 0.50, 0.90, 0.99} {
		img := dataset.UniformNoise(1024, 512, density, 9)
		for _, alg := range seqAlgs {
			b.Run(fmt.Sprintf("noise/density=%.2f/%s", density, alg.name), func(b *testing.B) {
				b.SetBytes(int64(len(img.Pix)))
				for i := 0; i < b.N; i++ {
					alg.run(img)
				}
			})
		}
	}
	for _, threads := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("landcover1024/paremsp/threads=%d", threads), func(b *testing.B) {
			b.SetBytes(int64(len(land.Pix)))
			for i := 0; i < b.N; i++ {
				core.PAREMSP(land, threads)
			}
		})
		b.Run(fmt.Sprintf("landcover1024/pbremsp/threads=%d", threads), func(b *testing.B) {
			b.SetBytes(int64(len(land.Pix)))
			for i := 0; i < b.N; i++ {
				core.PBREMSP(land, threads)
			}
		})
	}
}

// BenchmarkBitScanPhases isolates the scan phase the paper's Fig. 5a plots
// ("local" speedup): PBREMSP's packed run scan against PAREMSP's pair-row
// byte scan at equal thread counts, reported via PhaseTimes.
func BenchmarkBitScanPhases(b *testing.B) {
	img := dataset.LandCover(1024, 1024, 32, 0.5, 1)
	for _, threads := range []int{1, 4} {
		b.Run(fmt.Sprintf("paremsp/threads=%d", threads), func(b *testing.B) {
			b.SetBytes(int64(len(img.Pix)))
			var scanNs float64
			for i := 0; i < b.N; i++ {
				_, _, times := core.PAREMSPTimed(img, core.Options{Threads: threads})
				scanNs += float64(times.Scan.Nanoseconds())
			}
			b.ReportMetric(scanNs/float64(b.N), "local-ns/op")
		})
		b.Run(fmt.Sprintf("pbremsp/threads=%d", threads), func(b *testing.B) {
			b.SetBytes(int64(len(img.Pix)))
			var scanNs float64
			for i := 0; i < b.N; i++ {
				_, _, times := core.PBREMSPTimed(img, core.Options{Threads: threads})
				scanNs += float64(times.Scan.Nanoseconds())
			}
			b.ReportMetric(scanNs/float64(b.N), "local-ns/op")
		})
	}
}

// BenchmarkP4Ingest compares the two raw-PBM decode paths feeding the
// service: unpack-to-bytes (pnm.DecodeInto) vs packed-to-packed
// (pnm.DecodePBMBitmapInto).
func BenchmarkP4Ingest(b *testing.B) {
	img := dataset.LandCover(1024, 1024, 32, 0.5, 1)
	var buf bytes.Buffer
	if err := pnm.EncodePBM(&buf, img, true); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.Run("bytes", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		dst := &binimg.Image{}
		for i := 0; i < b.N; i++ {
			if err := pnm.DecodeInto(bytes.NewReader(raw), 0.5, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bitmap", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		dst := &binimg.Bitmap{}
		for i := 0; i < b.N; i++ {
			if err := pnm.DecodePBMBitmapInto(bytes.NewReader(raw), dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}
