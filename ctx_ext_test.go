package paremsp_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	paremsp "repro"
)

// randGray builds a deterministic pseudo-random gray image tall enough that
// every gray labeler crosses at least one poll boundary (polls are every
// 128 raster rows).
func randGray(w, h int, seed int64) *paremsp.GrayImage {
	rng := rand.New(rand.NewSource(seed))
	img := paremsp.NewGrayImage(w, h)
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(4) * 50)
	}
	return img
}

// randVolume builds a deterministic pseudo-random voxel volume with enough
// total rows to cross the labelers' poll boundaries.
func randVolume(w, h, d int, seed int64) *paremsp.Volume {
	rng := rand.New(rand.NewSource(seed))
	vol := paremsp.NewVolume(w, h, d)
	for i := range vol.Vox {
		if rng.Intn(2) == 1 {
			vol.Vox[i] = 1
		}
	}
	return vol
}

// TestLabelGrayIntoCtxMatchesPlain: with a live context the Ctx entry point
// must agree with the plain facades for every gray mode and both
// sequential and parallel algorithms.
func TestLabelGrayIntoCtxMatchesPlain(t *testing.T) {
	img := randGray(131, 300, 1)
	plain, n := paremsp.LabelGray(img)

	for _, tc := range []struct {
		name string
		opt  paremsp.Options
	}{
		{"gray-parallel", paremsp.Options{Mode: paremsp.ModeGray, Threads: 3}},
		{"gray-sequential", paremsp.Options{Mode: paremsp.ModeGray, Algorithm: paremsp.AlgAREMSP}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := paremsp.LabelGrayIntoCtx(context.Background(), img, &paremsp.LabelMap{}, &paremsp.Scratch{}, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if res.NumComponents != n {
				t.Fatalf("NumComponents = %d, want %d", res.NumComponents, n)
			}
			if err := paremsp.Equivalent(plain, res.Labels); err != nil {
				t.Fatal(err)
			}
		})
	}

	t.Run("gray-delta", func(t *testing.T) {
		dplain, dn := paremsp.LabelGrayDelta(img, 50)
		res, err := paremsp.LabelGrayIntoCtx(context.Background(), img, &paremsp.LabelMap{}, &paremsp.Scratch{},
			paremsp.Options{Mode: paremsp.ModeGrayDelta, Delta: 50})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumComponents != dn {
			t.Fatalf("delta NumComponents = %d, want %d", res.NumComponents, dn)
		}
		if err := paremsp.Equivalent(dplain, res.Labels); err != nil {
			t.Fatal(err)
		}
	})
}

// TestLabelVolumeIntoCtxMatchesPlain: ditto for the 3-D labeler, both
// slab-parallel and sequential.
func TestLabelVolumeIntoCtxMatchesPlain(t *testing.T) {
	vol := randVolume(17, 13, 40, 2)
	_, n := paremsp.LabelVolume(vol)
	for _, tc := range []struct {
		name string
		opt  paremsp.Options
	}{
		{"parallel", paremsp.Options{Mode: paremsp.ModeVolume, Threads: 3}},
		{"sequential", paremsp.Options{Mode: paremsp.ModeVolume, Algorithm: paremsp.AlgAREMSP}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := paremsp.LabelVolumeIntoCtx(context.Background(), vol, &paremsp.LabelVolumeMap{}, &paremsp.Scratch{}, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if res.NumComponents != n {
				t.Fatalf("NumComponents = %d, want %d", res.NumComponents, n)
			}
			sizes := paremsp.VolumeComponentSizes(res.Labels, res.NumComponents)
			total := 0
			for _, s := range sizes {
				total += s
			}
			if total != vol.ForegroundCount() {
				t.Fatalf("component sizes sum to %d, want %d foreground voxels", total, vol.ForegroundCount())
			}
		})
	}
}

// TestExtCtxPreCanceled: a dead context stops every new-mode entry point at
// its first poll with the context's error.
func TestExtCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	img := randGray(128, 300, 3)
	for _, opt := range []paremsp.Options{
		{Mode: paremsp.ModeGray},
		{Mode: paremsp.ModeGray, Algorithm: paremsp.AlgAREMSP},
		{Mode: paremsp.ModeGrayDelta, Delta: 10},
	} {
		if _, err := paremsp.LabelGrayIntoCtx(ctx, img, &paremsp.LabelMap{}, &paremsp.Scratch{}, opt); !errors.Is(err, context.Canceled) {
			t.Fatalf("gray %+v: err = %v, want context.Canceled", opt, err)
		}
	}

	vol := randVolume(16, 16, 40, 4)
	for _, opt := range []paremsp.Options{
		{Mode: paremsp.ModeVolume},
		{Mode: paremsp.ModeVolume, Algorithm: paremsp.AlgAREMSP},
	} {
		if _, err := paremsp.LabelVolumeIntoCtx(ctx, vol, &paremsp.LabelVolumeMap{}, &paremsp.Scratch{}, opt); !errors.Is(err, context.Canceled) {
			t.Fatalf("volume %+v: err = %v, want context.Canceled", opt, err)
		}
	}

	bin, _ := paremsp.ParseImage("###\n###")
	res, err := paremsp.Label(bin, paremsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := paremsp.TraceContoursCtx(ctx, res.Labels, res.NumComponents); !errors.Is(err, context.Canceled) {
		t.Fatalf("contours: err = %v, want context.Canceled", err)
	}
}

// TestExtCtxBuffersReusableAfterCancel: a canceled gray or volume labeling
// leaves its destination and Scratch reusable — the next call with a live
// context must be fully correct from the same buffers.
func TestExtCtxBuffersReusableAfterCancel(t *testing.T) {
	dead, cancel := context.WithCancel(context.Background())
	cancel()

	t.Run("gray", func(t *testing.T) {
		poison, img := randGray(200, 280, 5), randGray(131, 300, 6)
		lm, sc := &paremsp.LabelMap{}, &paremsp.Scratch{}
		if _, err := paremsp.LabelGrayIntoCtx(dead, poison, lm, sc, paremsp.Options{Mode: paremsp.ModeGray}); !errors.Is(err, context.Canceled) {
			t.Fatalf("poison run: err = %v", err)
		}
		plain, n := paremsp.LabelGray(img)
		res, err := paremsp.LabelGrayIntoCtx(context.Background(), img, lm, sc, paremsp.Options{Mode: paremsp.ModeGray})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumComponents != n {
			t.Fatalf("reuse NumComponents = %d, want %d", res.NumComponents, n)
		}
		if err := paremsp.Equivalent(plain, res.Labels); err != nil {
			t.Fatalf("reuse after cancel left stale state: %v", err)
		}
	})

	t.Run("volume", func(t *testing.T) {
		poison, vol := randVolume(20, 20, 30, 7), randVolume(17, 13, 40, 8)
		lv, sc := &paremsp.LabelVolumeMap{}, &paremsp.Scratch{}
		if _, err := paremsp.LabelVolumeIntoCtx(dead, poison, lv, sc, paremsp.Options{Mode: paremsp.ModeVolume}); !errors.Is(err, context.Canceled) {
			t.Fatalf("poison run: err = %v", err)
		}
		_, n := paremsp.LabelVolume(vol)
		res, err := paremsp.LabelVolumeIntoCtx(context.Background(), vol, lv, sc, paremsp.Options{Mode: paremsp.ModeVolume})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumComponents != n {
			t.Fatalf("reuse NumComponents = %d, want %d", res.NumComponents, n)
		}
	})
}

// TestModeValidation: every entry point rejects a mode that is not its
// own, and connectivity is validated against the mode's neighborhood.
func TestModeValidation(t *testing.T) {
	bin, _ := paremsp.ParseImage("#.\n.#")
	if _, err := paremsp.Label(bin, paremsp.Options{Mode: paremsp.ModeGray}); err == nil {
		t.Fatal("Label accepted mode gray")
	}
	img := randGray(8, 8, 9)
	if _, err := paremsp.LabelGrayIntoCtx(context.Background(), img, &paremsp.LabelMap{}, &paremsp.Scratch{},
		paremsp.Options{Mode: paremsp.ModeVolume}); err == nil {
		t.Fatal("LabelGrayIntoCtx accepted mode volume")
	}
	if _, err := paremsp.LabelGrayIntoCtx(context.Background(), img, &paremsp.LabelMap{}, &paremsp.Scratch{},
		paremsp.Options{Mode: paremsp.ModeGray, Connectivity: 4}); err == nil {
		t.Fatal("LabelGrayIntoCtx accepted conn 4")
	}
	vol := randVolume(4, 4, 4, 10)
	if _, err := paremsp.LabelVolumeIntoCtx(context.Background(), vol, &paremsp.LabelVolumeMap{}, &paremsp.Scratch{},
		paremsp.Options{Mode: paremsp.ModeGray}); err == nil {
		t.Fatal("LabelVolumeIntoCtx accepted mode gray")
	}
	if _, err := paremsp.LabelVolumeIntoCtx(context.Background(), vol, &paremsp.LabelVolumeMap{}, &paremsp.Scratch{},
		paremsp.Options{Mode: paremsp.ModeVolume, Connectivity: 6}); err == nil {
		t.Fatal("LabelVolumeIntoCtx accepted conn 6")
	}
}

// TestJobKeyModeDistinct: one body, five workloads, five distinct job IDs —
// and equal parameters rebuild equal IDs (the dedup contract).
func TestJobKeyModeDistinct(t *testing.T) {
	body := []byte("P5\n4 4\n255\n0123456789abcdef")
	keys := map[string]string{}
	for name, key := range map[string]string{
		"labels":     paremsp.JobKeyMode(paremsp.JobLabels, paremsp.ModeBinary, "", 0, 0.5, 0, body),
		"stats":      paremsp.JobKeyMode(paremsp.JobStats, paremsp.ModeBinary, "", 0, 0.5, 0, body),
		"contours":   paremsp.JobKeyMode(paremsp.JobContours, paremsp.ModeBinary, "", 0, 0.5, 0, body),
		"gray":       paremsp.JobKeyMode(paremsp.JobGray, paremsp.ModeGray, "", 0, 0.5, 0, body),
		"gray-delta": paremsp.JobKeyMode(paremsp.JobGray, paremsp.ModeGrayDelta, "", 0, 0.5, 12, body),
		"volume":     paremsp.JobKeyMode(paremsp.JobVolume, paremsp.ModeVolume, "", 0, 0.5, 0, body),
	} {
		for prev, k := range keys {
			if k == key {
				t.Fatalf("%s and %s share job key %s", name, prev, k)
			}
		}
		keys[name] = key
	}
	// Same parameters → same ID (client-side precomputation must agree).
	if paremsp.JobKeyMode(paremsp.JobGray, paremsp.ModeGray, "", 0, 0.5, 0, body) != keys["gray"] {
		t.Fatal("gray job key is not deterministic")
	}
	// A different delta is a different labeling → a different ID.
	if paremsp.JobKeyMode(paremsp.JobGray, paremsp.ModeGrayDelta, "", 0, 0.5, 13, body) == keys["gray-delta"] {
		t.Fatal("delta value does not contribute to the gray-delta job key")
	}
	// Gray keys ignore level (gray modes never binarize).
	if paremsp.JobKeyMode(paremsp.JobGray, paremsp.ModeGray, "", 0, 0.25, 0, body) != keys["gray"] {
		t.Fatal("level leaked into the gray job key")
	}
	// The labels key must match the pre-redesign JobKey so existing client
	// IDs stay valid.
	if paremsp.JobKey(paremsp.JobLabels, "", 0, 0.5, body) != keys["labels"] {
		t.Fatal("JobKeyMode(labels) diverged from JobKey")
	}
}
