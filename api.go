package paremsp

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"

	"repro/internal/band"
	"repro/internal/baseline"
	"repro/internal/binimg"
	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/pnm"
	"repro/internal/stats"
)

// Image is a binary raster: Pix holds Width*Height bytes row-major, each 0
// (background) or 1 (object pixel).
type Image = binimg.Image

// LabelMap is the labeling result raster: L holds Width*Height labels
// row-major; 0 is background, components are numbered 1..NumComponents.
type LabelMap = binimg.LabelMap

// LabelID is the element type of LabelMap.L and Component.Label (int32).
type LabelID = binimg.Label

// Bitmap is the bit-packed binary raster (1 bit per pixel, 64-bit words,
// rows padded to whole words) consumed natively by the bit-packed algorithms
// AlgBREMSP and AlgPBREMSP.
type Bitmap = binimg.Bitmap

// Component carries per-component statistics (area, bounding box, centroid).
type Component = stats.Component

// PhaseTimes reports PAREMSP's per-phase wall time (scan / merge / flatten /
// relabel); the paper's "local" speedup is Scan, "local + merge" is
// Scan+Merge.
type PhaseTimes = core.PhaseTimes

// NewImage returns a zeroed binary image.
func NewImage(width, height int) *Image { return binimg.New(width, height) }

// NewBitmap returns a zeroed bit-packed binary raster.
func NewBitmap(width, height int) *Bitmap { return binimg.NewBitmap(width, height) }

// ParseImage builds an image from ASCII art ('#'/'1' foreground, '.'/'0'/' '
// background), convenient in tests and examples.
func ParseImage(art string) (*Image, error) { return binimg.Parse(art) }

// FromGray binarizes a grayscale raster with MATLAB im2bw semantics
// (luminance strictly greater than level*255 becomes foreground); the paper
// binarizes all of its datasets with level 0.5.
func FromGray(width, height int, gray []uint8, level float64) (*Image, error) {
	return binimg.FromGray(width, height, gray, level)
}

// DecodePNM reads a PBM (P1/P4) or PGM (P2/P5) stream; grayscale input is
// binarized at level.
func DecodePNM(r io.Reader, level float64) (*Image, error) { return pnm.Decode(r, level) }

// DecodePNG reads a PNG stream and binarizes its luminance at level.
func DecodePNG(r io.Reader, level float64) (*Image, error) { return pnm.DecodePNG(r, level) }

// DecodePBMBitmap reads a raw PBM (P4) stream straight into a bit-packed
// bitmap — P4 rows are already packed, so no byte raster is materialized.
// Pair it with LabelBitmap for the all-packed ingest path.
func DecodePBMBitmap(r io.Reader) (*Bitmap, error) {
	bm := &Bitmap{}
	if err := pnm.DecodePBMBitmapInto(r, bm); err != nil {
		return nil, err
	}
	return bm, nil
}

// EncodePBM writes an image as PBM (raw P4 if raw, else plain P1).
func EncodePBM(w io.Writer, img *Image, raw bool) error { return pnm.EncodePBM(w, img, raw) }

// EncodeLabelsPGM writes a label map as a raw PGM for visual inspection.
func EncodeLabelsPGM(w io.Writer, lm *LabelMap) error { return pnm.EncodePGM(w, lm) }

// EncodeLabelsPNG writes a label map as a grayscale PNG.
func EncodeLabelsPNG(w io.Writer, lm *LabelMap) error { return pnm.EncodePNG(w, lm) }

// Algorithm selects a labeling algorithm.
type Algorithm string

// Algorithms implemented by this library. The first three are the paper's
// contributions; the rest are the baselines it evaluates against, plus the
// flood-fill reference.
const (
	// AlgPAREMSP is the paper's parallel algorithm (default).
	AlgPAREMSP Algorithm = "paremsp"
	// AlgAREMSP is the paper's best sequential algorithm: pair-row scan +
	// REM's union-find with splicing.
	AlgAREMSP Algorithm = "aremsp"
	// AlgCCLREMSP is the paper's second sequential algorithm: decision-tree
	// scan + REM's union-find with splicing.
	AlgCCLREMSP Algorithm = "cclremsp"
	// AlgBREMSP is the bit-packed sequential algorithm (beyond the paper):
	// 1-bit-per-pixel raster, word-parallel run extraction, union-find calls
	// per run, run-by-run final labeling.
	AlgBREMSP Algorithm = "bremsp"
	// AlgPBREMSP is the parallel bit-packed algorithm: BREMSP chunk scans
	// with PAREMSP's disjoint label ranges, run-granular boundary merges and
	// parallel run-by-run labeling.
	AlgPBREMSP Algorithm = "pbremsp"
	// AlgCCLLRPC is Wu-Otoo-Suzuki: decision-tree scan + link-by-rank with
	// path compression.
	AlgCCLLRPC Algorithm = "ccllrpc"
	// AlgARUN is He-Chao-Suzuki 2012: pair-row scan + rtable equivalences.
	AlgARUN Algorithm = "arun"
	// AlgRUN is He-Chao-Suzuki 2008: run-based two-scan.
	AlgRUN Algorithm = "run"
	// AlgClassic is the Rosenfeld all-neighbor two-pass scan.
	AlgClassic Algorithm = "classic"
	// AlgMultiPass is the repeated forward/backward propagation algorithm.
	AlgMultiPass Algorithm = "multipass"
	// AlgSuzuki is the Suzuki-Horiba-Sugie table-accelerated multi-pass
	// algorithm.
	AlgSuzuki Algorithm = "suzuki"
	// AlgFloodFill is the explicit-stack reference labeler.
	AlgFloodFill Algorithm = "floodfill"
)

// Algorithms returns every algorithm name, sorted, for CLI -help output and
// sweep drivers.
func Algorithms() []Algorithm {
	out := []Algorithm{
		AlgPAREMSP, AlgAREMSP, AlgCCLREMSP, AlgBREMSP, AlgPBREMSP,
		AlgCCLLRPC, AlgARUN, AlgRUN,
		AlgClassic, AlgMultiPass, AlgSuzuki, AlgFloodFill,
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Mode selects the labeling predicate a request runs under. The binary mode
// is the paper's subject; the others are the extension workloads
// (gray-level, gray-tolerance, 3D volume) served by the same REMSP
// machinery. Each mode has its own entry point — LabelIntoCtx for
// ModeBinary, LabelGrayIntoCtx for ModeGray/ModeGrayDelta,
// LabelVolumeIntoCtx for ModeVolume — and each entry point rejects the
// modes it does not implement.
type Mode string

// Labeling modes.
const (
	// ModeBinary labels foreground components of a binary raster
	// (the default; 4- or 8-connectivity per Options.Connectivity).
	ModeBinary Mode = "binary"
	// ModeGray labels maximal equal-value regions of a gray raster
	// (8-connectivity; every pixel is labeled).
	ModeGray Mode = "gray"
	// ModeGrayDelta labels the transitive closure of |v(p)-v(q)| <= Delta
	// over adjacent pixels of a gray raster (8-connectivity).
	ModeGrayDelta Mode = "gray-delta"
	// ModeVolume labels 26-connected components of a binary voxel volume.
	ModeVolume Mode = "volume"
)

// Modes returns every mode name, sorted, for CLI -help output and the
// service's request validation.
func Modes() []Mode {
	return []Mode{ModeBinary, ModeGray, ModeGrayDelta, ModeVolume}
}

// Options configures Label and the per-mode entry points.
type Options struct {
	// Algorithm to run; default AlgPAREMSP. The gray and volume modes run
	// the paper's pair-scan machinery only: AlgPAREMSP selects their
	// chunk-parallel labeler, AlgAREMSP the sequential one, and every other
	// name is rejected.
	Algorithm Algorithm
	// Mode is the labeling predicate; empty means the entry point's native
	// mode (ModeBinary for Label/LabelInto/LabelIntoCtx).
	Mode Mode
	// Threads used by AlgPAREMSP (default: all CPUs). Ignored by the
	// sequential algorithms.
	Threads int
	// Connectivity: 8 (default) or 4. Only AlgClassic, AlgMultiPass and
	// AlgFloodFill support 4-connectivity; the paper's algorithms are
	// 8-connected and return an error for 4. ModeVolume is 26-connected
	// (0 or 26 accepted); the gray modes are 8-connected only.
	Connectivity int
	// Delta is ModeGrayDelta's adjacency tolerance; ignored by every other
	// mode.
	Delta uint8
	// UseCASMerger switches PAREMSP's boundary phase to the lock-free CAS
	// union instead of the paper's lock-based MERGER.
	UseCASMerger bool
}

// Result is a labeling outcome.
type Result struct {
	// Labels is the final label map: consecutive labels 1..NumComponents,
	// background 0.
	Labels *LabelMap
	// NumComponents is the number of connected components found.
	NumComponents int
	// Phases holds the per-phase times of the parallel algorithms (PAREMSP
	// and PBREMSP); zero for the sequential algorithms and baselines.
	Phases PhaseTimes
}

// Label runs the selected algorithm over img.
func Label(img *Image, opt Options) (*Result, error) {
	return LabelInto(img, nil, nil, opt)
}

// Scratch holds reusable labeling state (the union-find equivalence arrays)
// for LabelInto. A zero Scratch is ready to use; a Scratch must not be shared
// by concurrent labelings.
type Scratch = core.Scratch

// LabelInto is Label writing its result into caller-provided buffers: dst is
// reshaped with Reset (so its label buffer is reused when large enough) and
// sc supplies the equivalence arrays. Either may be nil, in which case fresh
// buffers are allocated, making LabelInto(img, nil, nil, opt) identical to
// Label(img, opt). Reusing dst and sc across calls makes sustained labeling
// with the paper's algorithms (PAREMSP, AREMSP, CCLREMSP) allocation-free;
// for the baseline algorithms the labeling still allocates internally and
// the result is copied into dst.
func LabelInto(img *Image, dst *LabelMap, sc *Scratch, opt Options) (*Result, error) {
	return LabelIntoCtx(context.Background(), img, dst, sc, opt)
}

// LabelIntoCtx is LabelInto with cooperative cancellation: the paper
// algorithms and their bit-packed variants (AlgPAREMSP, AlgAREMSP,
// AlgCCLREMSP, AlgBREMSP, AlgPBREMSP) poll ctx per row block during their
// scan and relabel passes and abort with ctx.Err(); the check is
// allocation-free and costs one predicted branch per row when ctx can never
// be canceled. The baseline algorithms are not cancelable mid-run — ctx is
// only checked before they start. A canceled labeling leaves dst and sc in
// an undefined but reusable state.
func LabelIntoCtx(ctx context.Context, img *Image, dst *LabelMap, sc *Scratch, opt Options) (*Result, error) {
	if img == nil {
		return nil, fmt.Errorf("paremsp: nil image")
	}
	if opt.Mode != "" && opt.Mode != ModeBinary {
		return nil, fmt.Errorf("paremsp: LabelIntoCtx supports mode %q, got %q (use LabelGrayIntoCtx or LabelVolumeIntoCtx)",
			ModeBinary, opt.Mode)
	}
	alg := opt.Algorithm
	if alg == "" {
		alg = AlgPAREMSP
	}
	conn := opt.Connectivity
	if conn == 0 {
		conn = 8
	}
	if conn != 4 && conn != 8 {
		return nil, fmt.Errorf("paremsp: connectivity must be 4 or 8, got %d", conn)
	}
	if conn == 4 {
		switch alg {
		case AlgClassic, AlgMultiPass, AlgSuzuki, AlgFloodFill:
		default:
			return nil, fmt.Errorf("paremsp: algorithm %q supports only 8-connectivity", alg)
		}
	}

	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
	}

	var (
		lm  *LabelMap
		n   int
		err error
	)
	res := &Result{}
	switch alg {
	case AlgPAREMSP:
		threads := opt.Threads
		if threads <= 0 {
			threads = runtime.GOMAXPROCS(0)
		}
		copt := core.Options{Threads: threads}
		if opt.UseCASMerger {
			copt.Merger = core.MergerCAS
		}
		if dst == nil {
			dst = &LabelMap{}
		}
		var times core.PhaseTimes
		n, times, err = core.PAREMSPTimedIntoCtx(ctx, img, dst, sc, copt)
		lm = dst
		res.Phases = times
	case AlgAREMSP:
		if dst == nil {
			dst = &LabelMap{}
		}
		n, err = core.AREMSPIntoCtx(ctx, img, dst, sc)
		lm = dst
	case AlgCCLREMSP:
		if dst == nil {
			dst = &LabelMap{}
		}
		n, err = core.CCLREMSPIntoCtx(ctx, img, dst, sc)
		lm = dst
	case AlgBREMSP:
		if dst == nil {
			dst = &LabelMap{}
		}
		n, err = core.BREMSPIntoCtx(ctx, img, dst, sc)
		lm = dst
	case AlgPBREMSP:
		copt := core.Options{Threads: opt.Threads}
		if opt.UseCASMerger {
			copt.Merger = core.MergerCAS
		}
		if dst == nil {
			dst = &LabelMap{}
		}
		var times core.PhaseTimes
		n, times, err = core.PBREMSPTimedIntoCtx(ctx, img, dst, sc, copt)
		lm = dst
		res.Phases = times
	case AlgCCLLRPC:
		lm, n = baseline.CCLLRPC(img)
	case AlgARUN:
		lm, n = baseline.ARUN(img)
	case AlgRUN:
		lm, n = baseline.RUN(img)
	case AlgClassic:
		if conn == 4 {
			lm, n = baseline.Classic4(img)
		} else {
			lm, n = baseline.Classic8(img)
		}
	case AlgMultiPass:
		lm, n = baseline.MultiPass(img, baseline.Connectivity(conn))
	case AlgSuzuki:
		lm, n = baseline.Suzuki(img, baseline.Connectivity(conn))
	case AlgFloodFill:
		lm, n = baseline.FloodFill(img, baseline.Connectivity(conn))
	default:
		return nil, fmt.Errorf("paremsp: unknown algorithm %q", alg)
	}
	if err != nil {
		return nil, err
	}
	if dst != nil && lm != dst {
		// A baseline labeled into its own fresh map; honor the dst contract.
		// Reshape without Reset's clear — the copy overwrites every label.
		if cap(dst.L) < len(lm.L) {
			dst.L = make([]LabelID, len(lm.L))
		} else {
			dst.L = dst.L[:len(lm.L)]
		}
		dst.Width, dst.Height = lm.Width, lm.Height
		copy(dst.L, lm.L)
		lm = dst
	}
	res.Labels = lm
	res.NumComponents = n
	return res, nil
}

// LabelBitmap runs a bit-packed algorithm directly over a packed bitmap.
func LabelBitmap(bm *Bitmap, opt Options) (*Result, error) {
	return LabelBitmapInto(bm, nil, nil, opt)
}

// LabelBitmapInto is LabelBitmap writing into caller-provided buffers (see
// LabelInto for the dst/sc contract). Only the bit-packed algorithms accept a
// packed raster: Algorithm must be AlgBREMSP or AlgPBREMSP (default
// AlgPBREMSP), and connectivity must be 8. For any other algorithm, unpack
// with Bitmap.ToImage and call LabelInto.
func LabelBitmapInto(bm *Bitmap, dst *LabelMap, sc *Scratch, opt Options) (*Result, error) {
	return LabelBitmapIntoCtx(context.Background(), bm, dst, sc, opt)
}

// LabelBitmapIntoCtx is LabelBitmapInto with cooperative cancellation (see
// LabelIntoCtx; both bit-packed algorithms poll ctx per row block).
func LabelBitmapIntoCtx(ctx context.Context, bm *Bitmap, dst *LabelMap, sc *Scratch, opt Options) (*Result, error) {
	if bm == nil {
		return nil, fmt.Errorf("paremsp: nil bitmap")
	}
	if opt.Mode != "" && opt.Mode != ModeBinary {
		return nil, fmt.Errorf("paremsp: LabelBitmapIntoCtx supports mode %q, got %q", ModeBinary, opt.Mode)
	}
	alg := opt.Algorithm
	if alg == "" {
		alg = AlgPBREMSP
	}
	if opt.Connectivity != 0 && opt.Connectivity != 8 {
		return nil, fmt.Errorf("paremsp: algorithm %q supports only 8-connectivity", alg)
	}
	if dst == nil {
		dst = &LabelMap{}
	}
	res := &Result{Labels: dst}
	var err error
	switch alg {
	case AlgBREMSP:
		res.NumComponents, err = core.BREMSPBitmapIntoCtx(ctx, bm, dst, sc)
	case AlgPBREMSP:
		copt := core.Options{Threads: opt.Threads}
		if opt.UseCASMerger {
			copt.Merger = core.MergerCAS
		}
		var times core.PhaseTimes
		res.NumComponents, times, err = core.PBREMSPBitmapTimedIntoCtx(ctx, bm, dst, sc, copt)
		res.Phases = times
	default:
		return nil, fmt.Errorf("paremsp: algorithm %q cannot label a packed bitmap (want %q or %q)",
			alg, AlgBREMSP, AlgPBREMSP)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// StreamOptions configures LabelStream.
type StreamOptions struct {
	// BandRows is the streaming band height in rows; 0 selects
	// band.DefaultBandRows. Peak memory scales with BandRows (bitmap, run
	// set and equivalence table for one band), never with the image height.
	BandRows int
	// Level is the binarization threshold for raw PGM (P5) input (im2bw
	// semantics, like DecodePNM); 0 selects the paper's 0.5. Ignored for
	// raw PBM (P4) input.
	Level float64
}

// StreamResult is the outcome of LabelStream: the component count and
// per-component statistics of the streamed image. No label raster is
// produced; use Label when the full LabelMap is needed and fits in memory.
type StreamResult = band.Result

// ComponentStats is the per-component statistics record LabelStream
// produces: area, bounding box, centroid, and foreground run count.
type ComponentStats = band.ComponentStats

// LabelStream labels a raw PBM (P4) or raw PGM (P5) stream out-of-core:
// the image is consumed as fixed-height row bands, each labeled with the
// bit-packed run scan and stitched to its predecessor by unioning the runs
// of the seam rows, while per-component statistics accumulate run-by-run.
// Peak memory is O(one band + equivalence table), independent of image
// height — a 100k-row raster streams through a few megabytes.
func LabelStream(r io.Reader, opt StreamOptions) (*StreamResult, error) {
	level := opt.Level
	if level == 0 {
		level = 0.5
	}
	src, err := pnm.NewBandReader(r, level)
	if err != nil {
		return nil, err
	}
	return band.Stream(src, band.Options{BandRows: opt.BandRows})
}

// JobState is the lifecycle state of an asynchronous labeling job in the
// HTTP service's job API: a job is created JobQueued, moves to JobRunning
// when a pool worker picks it up, and finishes JobDone (result retained
// until its TTL lapses), JobFailed, or JobCanceled (the job's context was
// canceled — client timeout, server drain, or -job-timeout — before it
// completed).
type JobState = jobs.State

// Job lifecycle states.
const (
	JobQueued   JobState = jobs.StateQueued
	JobRunning  JobState = jobs.StateRunning
	JobDone     JobState = jobs.StateDone
	JobFailed   JobState = jobs.StateFailed
	JobCanceled JobState = jobs.StateCanceled
)

// JobKind selects what an asynchronous job computes: a full labeling
// (renderable as JSON, PGM, PNG or a CCL1 stream), streaming component
// statistics (JSON only, computed out-of-core by the band labeler), a
// labeling with per-component boundary polylines (JSON only), a gray-level
// labeling (JSON or PGM), or a volumetric labeling (JSON only).
type JobKind = jobs.Kind

// Job kinds.
const (
	JobLabels   JobKind = jobs.KindLabels
	JobStats    JobKind = jobs.KindStats
	JobContours JobKind = jobs.KindContours
	JobGray     JobKind = jobs.KindGray
	JobVolume   JobKind = jobs.KindVolume
)

// JobStoreOptions configures the service's asynchronous job store: the
// backend (Backend "memory" — the default — keeps everything in sharded
// in-process maps; "sqlite" journals job metadata and persists result
// blobs under Dir so finished jobs survive a restart and interrupted ones
// are recovered), the number of mutex-sharded job maps, how long finished
// results are retained before the background sweeper evicts them, and the
// sweep period. The zero value selects the memory backend, 16 shards, a
// 15-minute TTL and a TTL/4 sweep.
type JobStoreOptions = jobs.Options

// Job store backends for JobStoreOptions.Backend.
const (
	JobStoreMemory = jobs.BackendMemory
	JobStoreSQLite = jobs.BackendSQLite
)

// JobKey derives the job API's deduplication key (which doubles as the job
// ID) for a request tuple: the SHA-256 of the output kind, algorithm,
// connectivity, binarization level and raw input bytes, truncated to its
// first 128 bits (32 hex characters). It applies exactly
// the normalization the service applies before hashing — an empty algorithm
// means the default (AlgPAREMSP), connectivity 0 means 8, stats jobs always
// key as the band labeler (their algorithm and connectivity inputs are
// ignored), and the level is zeroed for raw PBM (P4) bodies, which no level
// can affect — so the returned ID matches what POST /v1/jobs assigns to the
// same submission.
func JobKey(kind JobKind, alg Algorithm, connectivity int, level float64, body []byte) string {
	if len(body) >= 2 && body[0] == 'P' && body[1] == '4' {
		level = 0
	}
	if kind == JobStats {
		return jobs.Key(kind, "stream", 8, level, body)
	}
	if alg == "" {
		alg = AlgPAREMSP
	}
	if connectivity == 0 {
		connectivity = 8
	}
	return jobs.Key(kind, string(alg), connectivity, level, body)
}

// JobKeyMode is JobKey for the mode-polymorphic job kinds, applying the
// per-mode normalization the service applies before hashing. The kind is
// part of the hash, so the same body submitted under different modes always
// yields distinct job IDs. Normalization per kind:
//
//   - JobGray (ModeGray): algorithm defaults to AlgPAREMSP; connectivity is
//     pinned to 8 and the level to 0 (gray labeling never binarizes).
//   - JobGray (ModeGrayDelta): the algorithm slot holds "delta=<delta>" —
//     the tolerance scan has a single implementation, so only the tolerance
//     differentiates submissions.
//   - JobVolume: algorithm defaults to AlgPAREMSP; connectivity is pinned
//     to 26; the level participates (volume slices are binarized).
//   - JobContours: binary-labeling normalization exactly as JobKey (the
//     traced labeling is a binary labeling).
//
// Kinds without mode-specific normalization fall through to JobKey.
func JobKeyMode(kind JobKind, mode Mode, alg Algorithm, connectivity int, level float64, delta uint8, body []byte) string {
	if alg == "" {
		alg = AlgPAREMSP
	}
	switch kind {
	case JobGray:
		if mode == ModeGrayDelta {
			return jobs.Key(kind, fmt.Sprintf("delta=%d", delta), 8, 0, body)
		}
		return jobs.Key(kind, string(alg), 8, 0, body)
	case JobVolume:
		return jobs.Key(kind, string(alg), 26, level, body)
	case JobContours:
		if connectivity == 0 {
			connectivity = 8
		}
		if len(body) >= 2 && body[0] == 'P' && body[1] == '4' {
			level = 0
		}
		return jobs.Key(kind, string(alg), connectivity, level, body)
	default:
		return JobKey(kind, alg, connectivity, level, body)
	}
}

// CountComponents labels img with AREMSP and returns only the component
// count.
func CountComponents(img *Image) int {
	_, n := core.AREMSP(img)
	return n
}

// ComponentsOf computes per-component statistics from a label map produced
// by Label.
func ComponentsOf(lm *LabelMap) []Component { return stats.Components(lm) }

// Validate checks that lm is a structurally correct labeling of img with the
// claimed component count (conn8 selects the connectivity to verify under).
func Validate(img *Image, lm *LabelMap, claimed int, conn8 bool) error {
	return stats.Validate(img, lm, claimed, conn8)
}

// Equivalent reports whether two labelings encode the same partition (label
// numbering may differ).
func Equivalent(a, b *LabelMap) error { return stats.Equivalent(a, b) }

// RelabelByArea renumbers a consecutive labeling in place so label 1 is the
// largest component, label 2 the next, and so on.
func RelabelByArea(lm *LabelMap, n int) { stats.RelabelByArea(lm, n) }
